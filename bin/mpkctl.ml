(* mpkctl — command-line driver for the libmpk reproduction.

     mpkctl list                 show the available experiments
     mpkctl run [ID ...]         run experiments (default: all)
     mpkctl attack [STRATEGY]    run the JIT race attack under a W^X strategy
     mpkctl audit [OPTIONS]      randomized stress run with the invariant
                                 auditor enabled after every operation
     mpkctl faults [OPTIONS]     the same stress run with deterministic
                                 fault injection armed (--spec), checking
                                 that every injected failure leaves the
                                 stack consistent *)

open Cmdliner

let list_cmd =
  let doc = "List the paper's tables and figures that can be regenerated." in
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-8s %s\n" e.Mpk_experiments.Report.id e.Mpk_experiments.Report.title)
      Mpk_experiments.Report.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run experiments by id (all of them when none is given)." in
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"experiment ids, e.g. fig8 table1")
  in
  let run ids =
    match ids with
    | [] ->
        Mpk_experiments.Report.run_all ();
        `Ok ()
    | ids ->
        let ok =
          List.for_all
            (fun id ->
              let found = Mpk_experiments.Report.run_one id in
              if not found then Printf.eprintf "unknown experiment %S (try `mpkctl list`)\n" id;
              found)
            ids
        in
        if ok then `Ok () else `Error (false, "unknown experiment id")
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(ret (const run $ ids))

let strategy_conv =
  let parse = function
    | "none" -> Ok Mpk_jit.Wx.No_wx
    | "mprotect" -> Ok Mpk_jit.Wx.Mprotect
    | "key-per-page" | "key/page" -> Ok Mpk_jit.Wx.Key_per_page
    | "key-per-process" | "key/process" -> Ok Mpk_jit.Wx.Key_per_process
    | "sdcg" -> Ok Mpk_jit.Wx.Sdcg
    | s -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Mpk_jit.Wx.to_string s))

let attack_cmd =
  let doc = "Run the JIT race-condition attack under a W^X strategy." in
  let strategy =
    Arg.(
      value
      & pos 0 strategy_conv Mpk_jit.Wx.Mprotect
      & info [] ~docv:"STRATEGY"
          ~doc:"one of: none, mprotect, key-per-page, key-per-process, sdcg")
  in
  let run strategy =
    match Mpk_jit.Attack.run ~strategy () with
    | Mpk_jit.Attack.Injected v ->
        Printf.printf "VULNERABLE: attacker shellcode executed (0x%x)\n" v
    | Mpk_jit.Attack.Blocked reason -> Printf.printf "blocked: %s\n" reason
  in
  Cmd.v (Cmd.info "attack" ~doc) Term.(const run $ strategy)

let maps_cmd =
  let doc =
    "Show a /proc-style memory map of a demo process with libmpk groups (note the \
     protection-key tags and per-area residency)."
  in
  let run () =
    let machine = Mpk_hw.Machine.create ~cores:2 ~mem_mib:64 () in
    let proc = Mpk_kernel.Proc.create machine in
    let task = Mpk_kernel.Proc.spawn proc ~core_id:0 () in
    let mpk = Libmpk.init ~evict_rate:1.0 proc task in
    let a = Libmpk.mpk_mmap mpk task ~vkey:1 ~len:16384 ~prot:Mpk_hw.Perm.rw in
    ignore (Libmpk.mpk_mmap mpk task ~vkey:2 ~len:4096 ~prot:Mpk_hw.Perm.rwx);
    Libmpk.mpk_mprotect mpk task ~vkey:2 ~prot:Mpk_hw.Perm.x_only;
    Libmpk.mpk_begin mpk task ~vkey:1 ~prot:Mpk_hw.Perm.rw;
    Mpk_hw.Mmu.write_byte (Mpk_kernel.Proc.mmu proc) (Mpk_kernel.Task.core task) ~addr:a 'x';
    Libmpk.mpk_end mpk task ~vkey:1;
    print_string (Mpk_kernel.Mm.show_maps (Mpk_kernel.Proc.mm proc));
    Format.printf "\nlibmpk stats: %a\n" Libmpk.pp_stats (Libmpk.stats mpk)
  in
  Cmd.v (Cmd.info "maps" ~doc) Term.(const run $ const ())

let audit_cmd =
  let doc =
    "Run the randomized stress driver with the cross-layer invariant auditor enabled \
     after every operation. Exits 0 when every audit passes; on a violation, prints \
     the replayable seed and a minimized failing op trace and exits nonzero."
  in
  let ops =
    Arg.(value & opt int 1000 & info [ "ops" ] ~docv:"N" ~doc:"number of operations")
  in
  let seed =
    Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed (replayable)")
  in
  let hw_keys =
    Arg.(
      value & opt int 15
      & info [ "hw-keys" ] ~docv:"K" ~doc:"hardware keys in circulation (1-15)")
  in
  let tasks =
    Arg.(value & opt int 2 & info [ "tasks" ] ~docv:"T" ~doc:"interleaved tasks")
  in
  let evict_rate =
    Arg.(
      value & opt float 1.0
      & info [ "evict-rate" ] ~docv:"P" ~doc:"mpk_mprotect eviction probability")
  in
  let run ops seed hw_keys tasks evict_rate =
    let cfg =
      { Mpk_check.Stress.default_config with seed; hw_keys; tasks; evict_rate }
    in
    let op_list = Mpk_check.Stress.gen_ops cfg ops in
    match Mpk_check.Stress.run cfg op_list with
    | Mpk_check.Stress.Passed { applied; benign_errors } ->
        Printf.printf
          "audit OK: %d ops (seed %Ld, %d hw keys, %d tasks), %d benign API errors, \
           all invariants held after every operation\n"
          applied seed hw_keys tasks benign_errors;
        `Ok ()
    | Mpk_check.Stress.Failed failure ->
        let minimized = Mpk_check.Stress.minimize cfg op_list in
        print_string (Mpk_check.Stress.report cfg ~ops_total:ops failure minimized);
        `Error (false, "invariant violation")
  in
  Cmd.v (Cmd.info "audit" ~doc)
    Term.(ret (const run $ ops $ seed $ hw_keys $ tasks $ evict_rate))

let faults_cmd =
  let doc =
    "Run the stress driver with deterministic fault injection armed: frame exhaustion, \
     pkey_alloc ENOSPC, key-cache refusal, forced preemption. The invariant auditor \
     runs after every operation, so a fault that leaves libmpk inconsistent fails the \
     run. With no --spec, every registered failure point is exercised in its own run \
     (fire once, first hit)."
  in
  let ops =
    Arg.(value & opt int 500 & info [ "ops" ] ~docv:"N" ~doc:"number of operations")
  in
  let seed =
    Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed (replayable)")
  in
  let hw_keys =
    Arg.(
      value & opt int 15
      & info [ "hw-keys" ] ~docv:"K" ~doc:"hardware keys in circulation (1-15)")
  in
  let tasks =
    Arg.(value & opt int 2 & info [ "tasks" ] ~docv:"T" ~doc:"interleaved tasks")
  in
  let evict_rate =
    Arg.(
      value & opt float 1.0
      & info [ "evict-rate" ] ~docv:"P" ~doc:"mpk_mprotect eviction probability")
  in
  let spec =
    Arg.(
      value
      & opt (some string) None
      & info [ "spec" ] ~docv:"SPEC" ~doc:("failure schedule: " ^ Mpk_faultinj.spec_grammar))
  in
  let run ops seed hw_keys tasks evict_rate spec =
    let schedules =
      match spec with
      | Some s -> Result.map (fun fs -> [ fs ]) (Mpk_faultinj.parse_spec s)
      | None ->
          (* one run per registered point, firing on its first hit *)
          Ok (List.map (fun p -> [ p, Mpk_faultinj.Once 0 ]) (Mpk_faultinj.points ()))
    in
    match schedules with
    | Error e -> `Error (false, e)
    | Ok [] -> `Error (false, "no failure points registered")
    | Ok schedules ->
        let failures = ref 0 in
        List.iter
          (fun faults ->
            let label =
              String.concat ","
                (List.map (fun (n, p) -> n ^ Mpk_faultinj.plan_to_string p) faults)
            in
            let cfg =
              { Mpk_check.Stress.default_config with seed; hw_keys; tasks; evict_rate; faults }
            in
            let op_list = Mpk_check.Stress.gen_ops cfg ops in
            match Mpk_check.Stress.run cfg op_list with
            | Mpk_check.Stress.Passed { applied; benign_errors } ->
                let fired =
                  Mpk_check.Stress.last_fault_stats ()
                  |> List.map (fun s ->
                         Printf.sprintf "%s hit:%d fired:%d" s.Mpk_faultinj.name
                           s.Mpk_faultinj.hits s.Mpk_faultinj.fired)
                  |> String.concat "  "
                in
                Printf.printf "faults OK [%s]: %d ops, %d benign errors | %s\n" label
                  applied benign_errors fired
            | Mpk_check.Stress.Failed failure ->
                incr failures;
                Printf.printf "faults FAILED [%s]:\n" label;
                let minimized = Mpk_check.Stress.minimize cfg op_list in
                print_string (Mpk_check.Stress.report cfg ~ops_total:ops failure minimized))
          schedules;
        if !failures = 0 then `Ok ()
        else `Error (false, Printf.sprintf "%d fault schedule(s) violated invariants" !failures)
  in
  Cmd.v (Cmd.info "faults" ~doc)
    Term.(ret (const run $ ops $ seed $ hw_keys $ tasks $ evict_rate $ spec))

let () =
  let doc = "libmpk (USENIX ATC'19) reproduction on a simulated MPK machine" in
  let info = Cmd.info "mpkctl" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; attack_cmd; maps_cmd; audit_cmd; faults_cmd ]))
