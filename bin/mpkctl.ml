(* mpkctl — command-line driver for the libmpk reproduction.

     mpkctl list                 show the available experiments
     mpkctl run [ID ...]         run experiments (default: all)
     mpkctl attack [STRATEGY]    run the JIT race attack under a W^X strategy
     mpkctl audit [OPTIONS]      randomized stress run with the invariant
                                 auditor enabled after every operation
     mpkctl faults [OPTIONS]     the same stress run with deterministic
                                 fault injection armed (--spec), checking
                                 that every injected failure leaves the
                                 stack consistent
     mpkctl lint [OPTIONS]       static domain-safety analysis of the
                                 case-study apps' libmpk protocols, with
                                 optional witness replay (--confirm);
                                 --concurrency switches to the kernel
                                 locking protocol (lockset races,
                                 lock-order cycles vs dynamic lockdep,
                                 atomicity windows) with schedule-search
                                 witness replay
     mpkctl scale [OPTIONS]      kvstore throughput/latency vs core count,
                                 batched do_pkey_sync IPIs vs the
                                 per-update broadcast, auditor-validated
     mpkctl profile ID           one experiment under the cycle-attribution
                                 profiler, exactness-checked; `profile diff`
                                 prints the per-frame delta against a
                                 committed BENCH baseline
     mpkctl bench run|diff       multi-trial seed-varied baselines
                                 (BENCH_<id>.json) and the noise-aware
                                 regression gate with differential cycle
                                 attribution (--plant for gate self-tests)

   Every subcommand returns an explicit exit code through [Cmd.eval']:
   0 success, 1 a check failed (invariant violation, ERROR finding),
   2 usage error (unknown id, bad --spec, bad --plant). *)

open Cmdliner

let list_cmd =
  let doc = "List the paper's tables and figures that can be regenerated." in
  let run () =
    List.iter
      (fun e ->
        Printf.printf "%-8s %s\n" e.Mpk_experiments.Report.id e.Mpk_experiments.Report.title)
      Mpk_experiments.Report.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let run_cmd =
  let doc = "Run experiments by id (all of them when none is given)." in
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"experiment ids, e.g. fig8 table1")
  in
  let run ids =
    match ids with
    | [] ->
        Mpk_experiments.Report.run_all ();
        0
    | ids ->
        let ok =
          List.for_all
            (fun id ->
              let found = Mpk_experiments.Report.run_one id in
              if not found then Printf.eprintf "unknown experiment %S (try `mpkctl list`)\n" id;
              found)
            ids
        in
        if ok then 0 else 2
  in
  Cmd.v (Cmd.info "run" ~doc) Term.(const run $ ids)

let strategy_conv =
  let parse = function
    | "none" -> Ok Mpk_jit.Wx.No_wx
    | "mprotect" -> Ok Mpk_jit.Wx.Mprotect
    | "key-per-page" | "key/page" -> Ok Mpk_jit.Wx.Key_per_page
    | "key-per-process" | "key/process" -> Ok Mpk_jit.Wx.Key_per_process
    | "sdcg" -> Ok Mpk_jit.Wx.Sdcg
    | s -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Mpk_jit.Wx.to_string s))

let attack_cmd =
  let doc = "Run the JIT race-condition attack under a W^X strategy." in
  let strategy =
    Arg.(
      value
      & pos 0 strategy_conv Mpk_jit.Wx.Mprotect
      & info [] ~docv:"STRATEGY"
          ~doc:"one of: none, mprotect, key-per-page, key-per-process, sdcg")
  in
  let run strategy =
    (match Mpk_jit.Attack.run ~strategy () with
    | Mpk_jit.Attack.Injected v ->
        Printf.printf "VULNERABLE: attacker shellcode executed (0x%x)\n" v
    | Mpk_jit.Attack.Blocked reason -> Printf.printf "blocked: %s\n" reason);
    0
  in
  Cmd.v (Cmd.info "attack" ~doc) Term.(const run $ strategy)

let maps_cmd =
  let doc =
    "Show a /proc-style memory map of a demo process with libmpk groups (note the \
     protection-key tags and per-area residency)."
  in
  let run () =
    let machine = Mpk_hw.Machine.create ~cores:2 ~mem_mib:64 () in
    let proc = Mpk_kernel.Proc.create machine in
    let task = Mpk_kernel.Proc.spawn proc ~core_id:0 () in
    let mpk = Libmpk.init ~evict_rate:1.0 proc task in
    let a = Libmpk.mpk_mmap mpk task ~vkey:1 ~len:16384 ~prot:Mpk_hw.Perm.rw in
    ignore (Libmpk.mpk_mmap mpk task ~vkey:2 ~len:4096 ~prot:Mpk_hw.Perm.rwx);
    Libmpk.mpk_mprotect mpk task ~vkey:2 ~prot:Mpk_hw.Perm.x_only;
    Libmpk.mpk_begin mpk task ~vkey:1 ~prot:Mpk_hw.Perm.rw;
    Mpk_hw.Mmu.write_byte (Mpk_kernel.Proc.mmu proc) (Mpk_kernel.Task.core task) ~addr:a 'x';
    Libmpk.mpk_end mpk task ~vkey:1;
    print_string (Mpk_kernel.Mm.show_maps (Mpk_kernel.Proc.mm proc));
    Format.printf "\nlibmpk stats: %a\n" Libmpk.pp_stats (Libmpk.stats mpk);
    0
  in
  Cmd.v (Cmd.info "maps" ~doc) Term.(const run $ const ())

let audit_cmd =
  let doc =
    "Run the randomized stress driver with the cross-layer invariant auditor enabled \
     after every operation. Exits 0 when every audit passes; on a violation, prints \
     the replayable seed and a minimized failing op trace and exits nonzero."
  in
  let ops =
    Arg.(value & opt int 1000 & info [ "ops" ] ~docv:"N" ~doc:"number of operations")
  in
  let seed =
    Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed (replayable)")
  in
  let hw_keys =
    Arg.(
      value & opt int 15
      & info [ "hw-keys" ] ~docv:"K" ~doc:"hardware keys in circulation (1-15)")
  in
  let tasks =
    Arg.(value & opt int 2 & info [ "tasks" ] ~docv:"T" ~doc:"interleaved tasks")
  in
  let evict_rate =
    Arg.(
      value & opt float 1.0
      & info [ "evict-rate" ] ~docv:"P" ~doc:"mpk_mprotect eviction probability")
  in
  let run ops seed hw_keys tasks evict_rate =
    let cfg =
      { Mpk_check.Stress.default_config with seed; hw_keys; tasks; evict_rate }
    in
    let op_list = Mpk_check.Stress.gen_ops cfg ops in
    match Mpk_check.Stress.run cfg op_list with
    | Mpk_check.Stress.Passed { applied; benign_errors } ->
        Printf.printf
          "audit OK: %d ops (seed %Ld, %d hw keys, %d tasks), %d benign API errors, \
           all invariants held after every operation\n"
          applied seed hw_keys tasks benign_errors;
        0
    | Mpk_check.Stress.Failed failure ->
        let minimized = Mpk_check.Stress.minimize cfg op_list in
        print_string (Mpk_check.Stress.report cfg ~ops_total:ops failure minimized);
        Printf.eprintf "mpkctl: audit: invariant violation\n";
        1
  in
  Cmd.v (Cmd.info "audit" ~doc)
    Term.(const run $ ops $ seed $ hw_keys $ tasks $ evict_rate)

let faults_cmd =
  let doc =
    "Run the stress driver with deterministic fault injection armed: frame exhaustion, \
     pkey_alloc ENOSPC, key-cache refusal, forced preemption. The invariant auditor \
     runs after every operation, so a fault that leaves libmpk inconsistent fails the \
     run. With no --spec, every registered failure point is exercised in its own run \
     (fire once, first hit)."
  in
  let ops =
    Arg.(value & opt int 500 & info [ "ops" ] ~docv:"N" ~doc:"number of operations")
  in
  let seed =
    Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed (replayable)")
  in
  let hw_keys =
    Arg.(
      value & opt int 15
      & info [ "hw-keys" ] ~docv:"K" ~doc:"hardware keys in circulation (1-15)")
  in
  let tasks =
    Arg.(value & opt int 2 & info [ "tasks" ] ~docv:"T" ~doc:"interleaved tasks")
  in
  let evict_rate =
    Arg.(
      value & opt float 1.0
      & info [ "evict-rate" ] ~docv:"P" ~doc:"mpk_mprotect eviction probability")
  in
  let spec =
    Arg.(
      value
      & opt (some string) None
      & info [ "spec" ] ~docv:"SPEC" ~doc:("failure schedule: " ^ Mpk_faultinj.spec_grammar))
  in
  let run ops seed hw_keys tasks evict_rate spec =
    let schedules =
      match spec with
      | Some s -> Result.map (fun fs -> [ fs ]) (Mpk_faultinj.parse_spec s)
      | None ->
          (* one run per registered point, firing on its first hit *)
          Ok (List.map (fun p -> [ p, Mpk_faultinj.Once 0 ]) (Mpk_faultinj.points ()))
    in
    match schedules with
    | Error e ->
        Printf.eprintf "mpkctl: faults: %s\n" e;
        2
    | Ok [] ->
        Printf.eprintf "mpkctl: faults: no failure points registered\n";
        2
    | Ok schedules ->
        let failures = ref 0 in
        List.iter
          (fun faults ->
            let label =
              String.concat ","
                (List.map (fun (n, p) -> n ^ Mpk_faultinj.plan_to_string p) faults)
            in
            let cfg =
              { Mpk_check.Stress.default_config with seed; hw_keys; tasks; evict_rate; faults }
            in
            let op_list = Mpk_check.Stress.gen_ops cfg ops in
            match Mpk_check.Stress.run cfg op_list with
            | Mpk_check.Stress.Passed { applied; benign_errors } ->
                let fired =
                  Mpk_check.Stress.last_fault_stats ()
                  |> List.map (fun s ->
                         Printf.sprintf "%s hit:%d fired:%d" s.Mpk_faultinj.name
                           s.Mpk_faultinj.hits s.Mpk_faultinj.fired)
                  |> String.concat "  "
                in
                Printf.printf "faults OK [%s]: %d ops, %d benign errors | %s\n" label
                  applied benign_errors fired
            | Mpk_check.Stress.Failed failure ->
                incr failures;
                Printf.printf "faults FAILED [%s]:\n" label;
                let minimized = Mpk_check.Stress.minimize cfg op_list in
                print_string (Mpk_check.Stress.report cfg ~ops_total:ops failure minimized))
          schedules;
        if !failures = 0 then 0
        else begin
          Printf.eprintf "mpkctl: faults: %d fault schedule(s) violated invariants\n"
            !failures;
          1
        end
  in
  Cmd.v (Cmd.info "faults" ~doc)
    Term.(const run $ ops $ seed $ hw_keys $ tasks $ evict_rate $ spec)

(* --- trace / profile: the observability layer --- *)

(* A short deterministic libmpk workout (the [maps] demo plus a heap op
   and an access denial) used as the `trace demo` scenario. *)
let trace_demo_scenario () =
  let machine = Mpk_hw.Machine.create ~cores:2 ~mem_mib:64 () in
  let proc = Mpk_kernel.Proc.create machine in
  let task = Mpk_kernel.Proc.spawn proc ~core_id:0 () in
  let mpk = Libmpk.init ~evict_rate:1.0 proc task in
  let a = Libmpk.mpk_mmap mpk task ~vkey:1 ~len:16384 ~prot:Mpk_hw.Perm.rw in
  ignore (Libmpk.mpk_mmap mpk task ~vkey:2 ~len:4096 ~prot:Mpk_hw.Perm.rwx);
  Libmpk.mpk_mprotect mpk task ~vkey:2 ~prot:Mpk_hw.Perm.x_only;
  Libmpk.mpk_begin mpk task ~vkey:1 ~prot:Mpk_hw.Perm.rw;
  Mpk_hw.Mmu.write_byte (Mpk_kernel.Proc.mmu proc) (Mpk_kernel.Task.core task) ~addr:a 'x';
  Libmpk.mpk_end mpk task ~vkey:1;
  ignore (Libmpk.mpk_malloc mpk task ~vkey:1 ~size:256);
  (* a denied read, so the trace shows fault + signal delivery *)
  (match
     Mpk_hw.Mmu.read_byte (Mpk_kernel.Proc.mmu proc) (Mpk_kernel.Task.core task) ~addr:a
   with
  | (_ : char) -> ()
  | exception Mpk_kernel.Signal.Killed _ -> ())

let trace_stress_scenario () =
  let cfg = Mpk_check.Stress.default_config in
  let ops = Mpk_check.Stress.gen_ops cfg 300 in
  ignore (Mpk_check.Stress.run cfg ops)

(* Every JSON artifact goes through Bench.Io: serialize, strict re-parse,
   schema-check, and only then write — shared by the profile, scale,
   trace and bench paths. *)
let write_validated_perfetto path events =
  match
    Mpk_bench.Io.write_string ~path Mpk_bench.Io.Perfetto
      (Mpk_trace.Export.perfetto_string ~indent:1 events)
  with
  | Ok () ->
      Printf.printf "wrote %s (%d trace events)\n" path (List.length events);
      true
  | Error e ->
      Printf.eprintf "mpkctl: %s: %s\n" path e;
      false

let trace_cmd =
  let doc =
    "Record a cross-layer event trace of a scenario (demo: a short libmpk workout; \
     stress: a randomized stress run) and export it as Perfetto/Chrome trace_event \
     JSON. Prints an event summary and the tail of the ring. Exits 1 when the \
     scenario emitted no events or the export fails validation."
  in
  let scenario =
    Arg.(
      value
      & pos 0 (Arg.enum [ "demo", `Demo; "stress", `Stress ]) `Demo
      & info [] ~docv:"SCENARIO" ~doc:"one of: demo, stress")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Perfetto JSON output (default TRACE_$(docv).json)")
  in
  let last =
    Arg.(value & opt int 32 & info [ "last" ] ~docv:"N" ~doc:"tail events to print")
  in
  let run scenario out last =
    let name = match scenario with `Demo -> "demo" | `Stress -> "stress" in
    let path = match out with Some p -> p | None -> Printf.sprintf "TRACE_%s.json" name in
    Mpk_trace.Metrics.reset ();
    Mpk_trace.Tracer.clear ();
    Mpk_trace.Tracer.enable ();
    (match scenario with `Demo -> trace_demo_scenario () | `Stress -> trace_stress_scenario ());
    let events = Mpk_trace.Tracer.events () in
    let ok =
      if events = [] then begin
        Printf.eprintf "mpkctl: trace: scenario %s emitted no events\n" name;
        false
      end
      else begin
        Printf.printf "trace %s: %d events emitted, %d retained, cores %s\n" name
          (Mpk_trace.Tracer.emitted ())
          (Mpk_trace.Tracer.retained ())
          (String.concat ","
             (List.map string_of_int (Mpk_trace.Tracer.cores ())));
        let by_kind = Hashtbl.create 16 in
        List.iter
          (fun (e : Mpk_trace.Event.t) ->
            let k = Mpk_trace.Event.kind e.Mpk_trace.Event.ev in
            Hashtbl.replace by_kind k (1 + Option.value ~default:0 (Hashtbl.find_opt by_kind k)))
          events;
        Hashtbl.fold (fun k n acc -> (k, n) :: acc) by_kind []
        |> List.sort (fun (_, a) (_, b) -> compare (b : int) a)
        |> List.iter (fun (k, n) -> Printf.printf "  %-22s %d\n" k n);
        Printf.printf "last %d events:\n" (min last (List.length events));
        List.iter
          (fun e -> print_endline ("  " ^ Mpk_trace.Event.to_line e))
          (Mpk_trace.Tracer.recent last);
        write_validated_perfetto path events
      end
    in
    Mpk_trace.Tracer.disable ();
    Mpk_trace.Tracer.clear ();
    if ok then 0 else 1
  in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const run $ scenario $ out $ last)

let profile_run_term =
  let id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"experiment id, e.g. fig8 or table1 (see `mpkctl list`)")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"metrics JSON output (default PROFILE_$(docv).json)")
  in
  let perfetto_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "perfetto" ] ~docv:"FILE"
          ~doc:"also record an event trace and write Perfetto JSON to $(docv)")
  in
  let folded_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~docv:"FILE"
          ~doc:"write folded stacks ($(b,flamegraph.pl) input) to $(docv)")
  in
  let run id json_out perfetto_out folded_out =
    match Mpk_experiments.Report.find id with
    | None ->
        Printf.eprintf "mpkctl: profile: unknown experiment %S (try `mpkctl list`)\n" id;
        2
    | Some e ->
        let json_path =
          match json_out with Some p -> p | None -> Printf.sprintf "PROFILE_%s.json" id
        in
        Mpk_trace.Metrics.reset ();
        Mpk_trace.Tracer.clear ();
        if perfetto_out <> None then Mpk_trace.Tracer.enable ();
        Mpk_trace.Prof.reset ();
        Mpk_trace.Prof.enable ();
        Mpk_hw.Cpu.reset_total_charged ();
        let rendered = e.Mpk_experiments.Report.run () in
        Mpk_trace.Prof.disable ();
        let attributed = Mpk_trace.Prof.total_recorded () in
        let charged = Mpk_hw.Cpu.total_charged () in
        print_string rendered;
        print_newline ();
        print_string (Mpk_trace.Prof.render ());
        (* [charge] feeds both totals with the same additions from the
           same reset point, so any difference at all means a charge
           escaped attribution. *)
        let exact = Float.equal attributed charged in
        Printf.printf "attributed %.1f cycles, machine charged %.1f cycles: %s\n"
          attributed charged
          (if exact then "exact match" else "MISMATCH");
        let snap = Mpk_trace.Prof.snapshot () in
        let json =
          Mpk_trace.Json.Obj
            [
              "experiment", Mpk_trace.Json.String id;
              "cycles_charged", Mpk_trace.Json.Float charged;
              "cycles_attributed", Mpk_trace.Json.Float attributed;
              "attribution_exact", Mpk_trace.Json.Bool exact;
              "profile", Mpk_trace.Prof.json_of_snapshot snap;
              "metrics", Mpk_trace.Metrics.export_json ();
            ]
        in
        let json_ok =
          match Mpk_bench.Io.write ~path:json_path Mpk_bench.Io.Profile json with
          | Ok () ->
              Printf.printf "wrote %s\n" json_path;
              true
          | Error err ->
              Printf.eprintf "mpkctl: profile: %s\n" err;
              false
        in
        (match folded_out with
        | None -> ()
        | Some p ->
            let oc = open_out p in
            output_string oc (Mpk_trace.Prof.folded ());
            close_out oc;
            Printf.printf "wrote %s\n" p);
        let perfetto_ok =
          match perfetto_out with
          | None -> true
          | Some p ->
              let ok = write_validated_perfetto p (Mpk_trace.Tracer.events ()) in
              Mpk_trace.Tracer.disable ();
              Mpk_trace.Tracer.clear ();
              ok
        in
        if exact && json_ok && perfetto_ok then 0 else 1
  in
  Term.(const run $ id $ json_out $ perfetto_out $ folded_out)

(* Shared by `profile diff` and `bench diff`: parse LABEL:CYCLES. *)
let plant_conv =
  let parse s =
    match String.rindex_opt s ':' with
    | None -> Error (`Msg "expected LABEL:CYCLES, e.g. wrpkru:40")
    | Some i -> (
        let label = String.sub s 0 i in
        let rest = String.sub s (i + 1) (String.length s - i - 1) in
        match float_of_string_opt rest with
        | Some extra when Float.is_finite extra && extra >= 0.0 && label <> "" ->
            Ok (label, extra)
        | Some _ | None ->
            Error (`Msg "expected LABEL:CYCLES with finite CYCLES >= 0"))
  in
  Arg.conv (parse, fun fmt (l, c) -> Format.fprintf fmt "%s:%g" l c)

let plant_arg =
  Arg.(
    value
    & opt (some plant_conv) None
    & info [ "plant" ] ~docv:"LABEL:CYCLES"
        ~doc:
          "inject $(i,CYCLES) extra cycles into every charge carrying \
           $(i,LABEL) — a self-test that the diff catches and correctly \
           attributes a real slowdown (e.g. $(b,wrpkru:40))")

let with_plant plant f =
  match plant with
  | None -> f ()
  | Some p ->
      Mpk_hw.Cpu.set_plant_slowdown (Some p);
      Fun.protect ~finally:(fun () -> Mpk_hw.Cpu.set_plant_slowdown None) f

let profile_diff_cmd =
  let doc =
    "Differential profiling: re-run one benchmark scenario at the committed \
     baseline's seed and align the fresh attribution tree against the baseline's \
     by label path, reporting per-node self/total-cycle and call-count deltas \
     (added/removed/renamed nodes flagged explicitly). Exits 2 when the baseline \
     is missing or malformed."
  in
  let id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"bench id: fig8, table1, scale or fig14")
  in
  let baseline =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:"baseline bench report (default BENCH_$(i,ID).json)")
  in
  let run id baseline plant =
    let path =
      match baseline with Some p -> p | None -> Printf.sprintf "BENCH_%s.json" id
    in
    match
      Result.bind (Mpk_bench.Io.read ~path Mpk_bench.Io.Bench) Mpk_bench.Runner.of_json
    with
    | Error e ->
        Printf.eprintf "mpkctl: profile diff: %s\n" e;
        2
    | Ok base -> (
        let fresh =
          with_plant plant @@ fun () ->
          Mpk_bench.Runner.run ~id ~trials:1 ~seed:base.Mpk_bench.Runner.r_seed
            ~smoke:base.Mpk_bench.Runner.r_smoke
        in
        match fresh with
        | Error e ->
            Printf.eprintf "mpkctl: profile diff: %s\n" e;
            1
        | Ok fresh ->
            let deltas =
              Mpk_bench.Tree.diff ~base:base.Mpk_bench.Runner.r_profile
                ~cur:fresh.Mpk_bench.Runner.r_profile
            in
            Printf.printf "profile diff %s vs %s (trial 0, seed %d)\n" id path
              base.Mpk_bench.Runner.r_seed;
            print_string (Mpk_bench.Tree.render deltas);
            0)
  in
  Cmd.v (Cmd.info "diff" ~doc) Term.(const run $ id $ baseline $ plant_arg)

let profile_cmd =
  let doc =
    "Run one experiment under the cycle-attribution profiler: every Cpu.charge is \
     attributed to a labeled node under the enclosing spans. Prints the experiment \
     output and the attribution tree, checks that the attributed total equals the \
     machine's cycle counter exactly (bit-for-bit float equality), and writes \
     per-figure metrics JSON. Exits 1 on attribution mismatch or invalid export. \
     The $(b,diff) subcommand compares attribution trees across runs."
  in
  Cmd.group ~default:profile_run_term (Cmd.info "profile" ~doc) [ profile_diff_cmd ]

(* --- scale: multi-core throughput/latency curves --- *)

let scale_cmd =
  let doc =
    "Multi-core scale-out of the kvstore: one point per core count, each a fresh \
     sharded server (one shard per worker core) driven by the zipfian closed-loop \
     load generator. Every point is measured twice from the same seed — batched \
     do_pkey_sync IPIs versus the per-update broadcast — and validated: the \
     cross-layer auditor must be clean after each concurrent run and the batched \
     run must emit strictly fewer Ipi trace events. Writes throughput, p50/p95/p99 \
     latency, and per-core IPI counters as validated JSON. Exits 1 on any \
     validation failure or invalid export."
  in
  let cores_arg =
    Arg.(
      value
      & opt (list int) [ 1; 2; 4 ]
      & info [ "cores" ] ~docv:"N,N,..." ~doc:"worker core counts to sweep (>= 1 each)")
  in
  let mode_arg =
    let modes =
      [
        "sync", Mpk_kvstore.Server.Sync;
        "domain", Mpk_kvstore.Server.Domain;
        "baseline", Mpk_kvstore.Server.Baseline;
        "mprotect", Mpk_kvstore.Server.Mprotect_sys;
      ]
    in
    Arg.(
      value
      & opt (enum modes) Mpk_kvstore.Server.Sync
      & info [ "mode" ] ~docv:"MODE"
          ~doc:"protection mode: $(b,sync) (mpk_mprotect, the IPI-heavy one), \
                $(b,domain), $(b,baseline), or $(b,mprotect)")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ] ~doc:"CI-sized run: small store, few connections")
  in
  let seed_arg =
    Arg.(value & opt int 0xC0FE & info [ "seed" ] ~docv:"SEED" ~doc:"workload PRNG seed")
  in
  let open_loop_arg =
    Arg.(
      value
      & opt (list int) []
      & info [ "open-loop" ] ~docv:"RATE,RATE,..."
          ~doc:"also sweep these open-loop arrival rates (connections/s) at the \
                largest core count and report the latency knee — the first rate \
                whose p99 doubles the lowest rate's or that drops > 1% of offered \
                connections")
  in
  let json_arg =
    Arg.(
      value
      & opt string "SCALE_report.json"
      & info [ "json" ] ~docv:"FILE" ~doc:"metrics JSON output")
  in
  let run cores mode smoke seed open_rates json_path =
    if cores = [] || List.exists (fun c -> c < 1) cores then begin
      Printf.eprintf "mpkctl: scale: --cores needs a non-empty list of counts >= 1\n";
      2
    end
    else if List.exists (fun r -> r < 1) open_rates then begin
      Printf.eprintf "mpkctl: scale: --open-loop rates must be >= 1\n";
      2
    end
    else begin
      Mpk_trace.Metrics.reset ();
      let report =
        Mpk_kvstore.Scale.run ~mode ~cores ~open_rates ~smoke
          ~seed:(Int64.of_int seed) ()
      in
      List.iter
        (fun (p : Mpk_kvstore.Scale.point) ->
          let b = p.Mpk_kvstore.Scale.batched in
          let u = p.Mpk_kvstore.Scale.per_update in
          Printf.printf
            "cores=%d  batched: %.0f req/s p50=%.0f p99=%.0f cycles ipi_events=%d | \
             per-update: %.0f req/s p99=%.0f ipi_events=%d\n"
            p.Mpk_kvstore.Scale.cores b.Mpk_kvstore.Loadgen.s_throughput_rps
            b.Mpk_kvstore.Loadgen.p50_cycles b.Mpk_kvstore.Loadgen.p99_cycles
            p.Mpk_kvstore.Scale.ipi_events_batched u.Mpk_kvstore.Loadgen.s_throughput_rps
            u.Mpk_kvstore.Loadgen.p99_cycles p.Mpk_kvstore.Scale.ipi_events_per_update)
        report.Mpk_kvstore.Scale.points;
      (match report.Mpk_kvstore.Scale.open_loop with
      | None -> ()
      | Some s ->
          List.iter
            (fun (p : Mpk_kvstore.Scale.open_point) ->
              let r = p.Mpk_kvstore.Scale.op_result in
              Printf.printf
                "open-loop rate=%d  %.0f req/s p50=%.0f p99=%.0f cycles \
                 dropped=%d/%d\n"
                p.Mpk_kvstore.Scale.op_rate r.Mpk_kvstore.Loadgen.s_throughput_rps
                r.Mpk_kvstore.Loadgen.p50_cycles r.Mpk_kvstore.Loadgen.p99_cycles
                r.Mpk_kvstore.Loadgen.s_dropped_conns
                r.Mpk_kvstore.Loadgen.s_offered_conns)
            s.Mpk_kvstore.Scale.os_points;
          (match s.Mpk_kvstore.Scale.os_knee with
          | Some rate ->
              Printf.printf "open-loop latency knee: %d conns/s (%d cores)\n" rate
                s.Mpk_kvstore.Scale.os_cores
          | None ->
              Printf.printf "open-loop latency knee: beyond swept range (%d cores)\n"
                s.Mpk_kvstore.Scale.os_cores));
      let problems = Mpk_kvstore.Scale.problems report in
      List.iter (fun m -> Printf.eprintf "mpkctl: scale: %s\n" m) problems;
      let json =
        Mpk_trace.Json.Obj
          (match Mpk_kvstore.Scale.to_json report with
          | Mpk_trace.Json.Obj fields ->
              fields
              @ [
                  ( "valid",
                    Mpk_trace.Json.Bool (problems = []) );
                  "metrics", Mpk_trace.Metrics.export_json ();
                ]
          | other -> [ "report", other ])
      in
      let json_ok =
        match Mpk_bench.Io.write ~path:json_path Mpk_bench.Io.Scale_report json with
        | Ok () ->
            Printf.printf "wrote %s\n" json_path;
            true
        | Error err ->
            Printf.eprintf "mpkctl: scale: %s\n" err;
            false
      in
      if problems = [] && json_ok then 0 else 1
    end
  in
  Cmd.v (Cmd.info "scale" ~doc)
    Term.(
      const run $ cores_arg $ mode_arg $ smoke_arg $ seed_arg $ open_loop_arg
      $ json_arg)

(* --- bench: multi-trial perf baselines and the noise-aware gate --- *)

let bench_ids_arg =
  Arg.(
    value
    & opt (list string) Mpk_bench.Scenario.ids
    & info [ "ids" ] ~docv:"ID,ID,..."
        ~doc:"benchmark ids to run (default: fig8,table1,scale,fig14)")

let check_bench_ids ids =
  List.filter (fun id -> not (Mpk_bench.Scenario.known id)) ids

let print_bench_report (r : Mpk_bench.Runner.report) =
  let cy = Mpk_util.Table.float_cell in
  Printf.printf "bench %s: %d trial%s, base seed %d%s\n" r.Mpk_bench.Runner.r_id
    r.Mpk_bench.Runner.r_trials
    (if r.Mpk_bench.Runner.r_trials = 1 then "" else "s")
    r.Mpk_bench.Runner.r_seed
    (if r.Mpk_bench.Runner.r_smoke then " (smoke)" else "");
  print_string
    (Mpk_util.Table.render
       ~aligns:Mpk_util.Table.[ Left; Left; Right; Right; Right; Right; Right ]
       ~header:[ "metric"; "dir"; "mean"; "stddev"; "ci95"; "min"; "max" ]
       (List.map
          (fun (ms : Mpk_bench.Runner.metric_stats) ->
            let s = ms.Mpk_bench.Runner.ms_stats in
            [
              ms.Mpk_bench.Runner.ms_name;
              (match ms.Mpk_bench.Runner.ms_direction with
              | Mpk_bench.Noise.Lower_better -> "lower"
              | Mpk_bench.Noise.Higher_better -> "higher");
              cy s.Mpk_bench.Noise.mean;
              cy s.Mpk_bench.Noise.stddev;
              cy s.Mpk_bench.Noise.ci95;
              cy s.Mpk_bench.Noise.minimum;
              cy s.Mpk_bench.Noise.maximum;
            ])
          r.Mpk_bench.Runner.r_metrics));
  Printf.printf "\nattribution: %s\n"
    (if r.Mpk_bench.Runner.r_attribution_exact then "exact" else "MISMATCH")

let bench_run_cmd =
  let doc =
    "Re-run each benchmark scenario across --trials seeds under the \
     cycle-attribution profiler and write BENCH_$(i,ID).json: per-metric \
     mean/stddev/CI (the baseline's own noise model), the trial-0 attribution \
     tree, and the metrics-registry export. Exits 1 on a scenario failure, \
     attribution mismatch, or invalid export."
  in
  let trials =
    Arg.(value & opt int 3 & info [ "trials" ] ~docv:"N" ~doc:"trials per id (>= 1)")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"SEED" ~doc:"base seed; trial t runs at SEED+t")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ] ~doc:"CI-sized scenarios (committed baselines use this)")
  in
  let out_dir =
    Arg.(
      value & opt string "."
      & info [ "out-dir" ] ~docv:"DIR" ~doc:"directory for BENCH_*.json")
  in
  let run ids trials seed smoke out_dir =
    match check_bench_ids ids with
    | _ :: _ as bad ->
        Printf.eprintf "mpkctl: bench: unknown ids: %s\n" (String.concat ", " bad);
        2
    | [] ->
        if trials < 1 then begin
          Printf.eprintf "mpkctl: bench: --trials must be >= 1\n";
          2
        end
        else
          let ok =
            List.for_all
              (fun id ->
                match Mpk_bench.Runner.run ~id ~trials ~seed ~smoke with
                | Error e ->
                    Printf.eprintf "mpkctl: bench: %s: %s\n" id e;
                    false
                | Ok r -> (
                    print_bench_report r;
                    let path = Filename.concat out_dir ("BENCH_" ^ id ^ ".json") in
                    match
                      Mpk_bench.Io.write ~path Mpk_bench.Io.Bench
                        (Mpk_bench.Runner.to_json r)
                    with
                    | Ok () ->
                        Printf.printf "wrote %s\n" path;
                        r.Mpk_bench.Runner.r_attribution_exact
                    | Error e ->
                        Printf.eprintf "mpkctl: bench: %s\n" e;
                        false))
              ids
          in
          if ok then 0 else 1
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ bench_ids_arg $ trials $ seed $ smoke $ out_dir)

let bench_diff_cmd =
  let doc =
    "Noise-aware perf regression gate: re-run each scenario with the trials, seed \
     and smoke mode recorded in its committed baseline, then compare every metric \
     against the baseline's noise model — threshold = max(rel-floor * |mean|, \
     sigma * stddev) — and diff the attribution trees so a regression names the \
     offending frame. Writes a machine-readable verdict report. Exits 0 when \
     nothing regressed, 1 on any $(b,regressed) verdict (or metric-set drift), \
     2 on a missing or malformed baseline."
  in
  let baseline_dir =
    Arg.(
      value & opt string "."
      & info [ "baseline" ] ~docv:"DIR" ~doc:"directory holding BENCH_*.json baselines")
  in
  let sigma =
    Arg.(
      value & opt float 3.0
      & info [ "threshold-sigma" ] ~docv:"K"
          ~doc:"flag a metric only beyond K standard deviations of its baseline")
  in
  let rel_floor =
    Arg.(
      value & opt float 0.01
      & info [ "rel-floor" ] ~docv:"F"
          ~doc:
            "absolute threshold floor as a fraction of the baseline mean — keeps \
             deterministic (stddev 0) metrics from tripping on sub-percent drift")
  in
  let report_arg =
    Arg.(
      value & opt string "BENCH_diff.json"
      & info [ "report" ] ~docv:"FILE" ~doc:"machine-readable diff report output")
  in
  let run ids baseline_dir sigma rel_floor plant report_path =
    match check_bench_ids ids with
    | _ :: _ as bad ->
        Printf.eprintf "mpkctl: bench: unknown ids: %s\n" (String.concat ", " bad);
        2
    | [] ->
        if sigma <= 0.0 || rel_floor < 0.0 then begin
          Printf.eprintf
            "mpkctl: bench: --threshold-sigma must be > 0 and --rel-floor >= 0\n";
          2
        end
        else begin
          let usage_error = ref false in
          let failures = ref false in
          let diffs =
            List.filter_map
              (fun id ->
                let path = Filename.concat baseline_dir ("BENCH_" ^ id ^ ".json") in
                match
                  Result.bind
                    (Mpk_bench.Io.read ~path Mpk_bench.Io.Bench)
                    Mpk_bench.Runner.of_json
                with
                | Error e ->
                    Printf.eprintf "mpkctl: bench diff: %s\n" e;
                    usage_error := true;
                    None
                | Ok base -> (
                    let fresh =
                      with_plant plant @@ fun () ->
                      Mpk_bench.Runner.run ~id
                        ~trials:base.Mpk_bench.Runner.r_trials
                        ~seed:base.Mpk_bench.Runner.r_seed
                        ~smoke:base.Mpk_bench.Runner.r_smoke
                    in
                    match fresh with
                    | Error e ->
                        Printf.eprintf "mpkctl: bench diff: %s: %s\n" id e;
                        failures := true;
                        None
                    | Ok fresh ->
                        let d =
                          Mpk_bench.Gate.diff ~baseline:base ~fresh ~sigma ~rel_floor
                        in
                        print_string (Mpk_bench.Gate.render d);
                        print_newline ();
                        Some d))
              ids
          in
          let regressed =
            List.exists (fun d -> d.Mpk_bench.Gate.d_regressed) diffs
          in
          let report =
            Mpk_trace.Json.Obj
              [
                "schema", Mpk_trace.Json.String "bench-diff/1";
                "sigma", Mpk_trace.Json.Float sigma;
                "rel_floor", Mpk_trace.Json.Float rel_floor;
                ( "planted",
                  match plant with
                  | None -> Mpk_trace.Json.Null
                  | Some (l, c) ->
                      Mpk_trace.Json.Obj
                        [
                          "label", Mpk_trace.Json.String l;
                          "extra_cycles", Mpk_trace.Json.Float c;
                        ] );
                ( "results",
                  Mpk_trace.Json.List (List.map Mpk_bench.Gate.to_json diffs) );
                ( "attribution",
                  Mpk_trace.Json.List
                    (List.map Mpk_bench.Gate.attribution_json diffs) );
                "regressed", Mpk_trace.Json.Bool regressed;
              ]
          in
          (match Mpk_bench.Io.write ~path:report_path Mpk_bench.Io.Bench_diff report with
          | Ok () -> Printf.printf "wrote %s\n" report_path
          | Error e ->
              Printf.eprintf "mpkctl: bench diff: %s\n" e;
              failures := true);
          if !usage_error then 2
          else if regressed || !failures then 1
          else 0
        end
  in
  Cmd.v (Cmd.info "diff" ~doc)
    Term.(
      const run $ bench_ids_arg $ baseline_dir $ sigma $ rel_floor $ plant_arg
      $ report_arg)

let bench_cmd =
  let doc =
    "Perf regression observatory: multi-trial baselines with per-metric noise \
     models ($(b,bench run)) and the noise-aware diff/gate against them \
     ($(b,bench diff))."
  in
  Cmd.group (Cmd.info "bench" ~doc) [ bench_run_cmd; bench_diff_cmd ]

(* --- torture: deterministic interleaving explorer --- *)

let torture_cmd =
  let doc =
    "Deterministic interleaving torture of the VMA locking protocol: concurrent \
     fibers of mmap/munmap/lookup/protect traffic, interleaved by seeded schedules \
     of preemption decisions at the same $(b,sched.preempt) point fault injection \
     uses, with the lockdep validator recording. A failing schedule is ddmin-shrunk \
     and replayed byte-identically from (seed, schedule); $(b,--plant) disables one \
     safety mechanism to prove the harness finds the resulting bug. Exits 0 on a \
     clean sweep, 1 when a failure is found (expected under --plant)."
  in
  let tasks =
    Arg.(value & opt int 4 & info [ "tasks" ] ~docv:"N" ~doc:"concurrent fibers")
  in
  let ops =
    Arg.(value & opt int 48 & info [ "ops" ] ~docv:"N" ~doc:"operations per fiber")
  in
  let slots =
    Arg.(
      value & opt int 4
      & info [ "slots" ] ~docv:"N" ~doc:"shared mapping slots the fibers collide on")
  in
  let seed =
    Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc:"base PRNG seed")
  in
  let seeds =
    Arg.(value & opt int 8 & info [ "seeds" ] ~docv:"N" ~doc:"seeds to sweep")
  in
  let rounds =
    Arg.(
      value & opt int 16
      & info [ "rounds" ] ~docv:"N" ~doc:"random schedules per seed")
  in
  let points =
    Arg.(
      value & opt int 48
      & info [ "points" ] ~docv:"N" ~doc:"switch decisions per schedule")
  in
  let plant =
    Arg.(
      value & opt string "none"
      & info [ "plant" ] ~docv:"BUG"
          ~doc:
            "planted bug: $(b,recycle) (skip the lookup protocol's recycle \
             re-validation), $(b,lock-order) (acquire against the established \
             order), $(b,release-held) (release a lock that is not held), or \
             $(b,none)")
  in
  let schedule_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "schedule" ] ~docv:"AT:TARGET,..."
          ~doc:
            "replay one run with this exact preemption schedule instead of \
             sweeping (use the schedule a failure report prints)")
  in
  let smoke =
    Arg.(value & flag & info [ "smoke" ] ~doc:"CI-sized sweep: fewer ops and rounds")
  in
  let out =
    Arg.(
      value
      & opt string "TORTURE_failure.txt"
      & info [ "out" ] ~docv:"FILE" ~doc:"failure report written here (CI artifact)")
  in
  let run tasks ops slots seed seeds rounds points plant schedule smoke out =
    match Mpk_check.Torture.plant_of_string plant with
    | None ->
        Printf.eprintf
          "mpkctl: torture: unknown plant %S (recycle, lock-order, release-held, \
           none)\n"
          plant;
        2
    | Some plant -> (
        let ops = if smoke then min ops 32 else ops in
        let rounds = if smoke then min rounds 8 else rounds in
        let cfg = { Mpk_check.Torture.tasks; ops; slots; seed; plant } in
        match schedule with
        | Some sched_str -> (
            match Mpk_check.Torture.schedule_of_string sched_str with
            | Error e ->
                Printf.eprintf "mpkctl: torture: %s\n" e;
                2
            | Ok sched ->
                let o = Mpk_check.Torture.run_once cfg ~schedule:sched () in
                Printf.printf
                  "replay (seed %Ld, %d switches): %s — %d ops, %d benign races, \
                   %d preemption points, %.0f cycles\n"
                  seed (List.length sched)
                  (if o.Mpk_check.Torture.ok then "CLEAN" else "FAILED")
                  o.Mpk_check.Torture.ops_applied o.Mpk_check.Torture.benign
                  o.Mpk_check.Torture.points o.Mpk_check.Torture.cycles;
                (match o.Mpk_check.Torture.reason with
                | Some r -> Printf.printf "  reason: %s\n" r
                | None -> ());
                List.iter
                  (fun f -> Printf.printf "  finding: %s\n" f)
                  o.Mpk_check.Torture.findings;
                if o.Mpk_check.Torture.ok then 0 else 1)
        | None -> (
            let result =
              Mpk_check.Torture.sweep ~entries:points ~rounds ~seeds cfg
            in
            let st = result.Mpk_check.Torture.stats in
            Printf.printf
              "torture sweep: %d runs (%d seeds x %d rounds, plant %s), %d ops, \
               %d benign races, %d vma recycles, up to %d preemption points/run\n"
              st.Mpk_check.Torture.runs seeds rounds
              (Mpk_check.Torture.plant_to_string plant)
              st.Mpk_check.Torture.ops_applied st.Mpk_check.Torture.benign
              st.Mpk_check.Torture.recycled st.Mpk_check.Torture.max_points;
            match result.Mpk_check.Torture.failure with
            | None ->
                Printf.printf
                  "torture OK: no lockdep findings, no oracle violations, no \
                   deadlocks\n";
                0
            | Some rep ->
                let report = Mpk_check.Torture.render_report rep in
                print_string report;
                let oc = open_out out in
                output_string oc report;
                close_out oc;
                Printf.printf "wrote %s\n" out;
                Printf.eprintf "mpkctl: torture: failure found\n";
                1))
  in
  Cmd.v (Cmd.info "torture" ~doc)
    Term.(
      const run $ tasks $ ops $ slots $ seed $ seeds $ rounds $ points $ plant
      $ schedule_arg $ smoke $ out)

(* --- lint: the static domain-safety analyzer --- *)

type app = Jit | Secstore | Kvstore

let app_name = function Jit -> "jit" | Secstore -> "secstore" | Kvstore -> "kvstore"

(* Each app accepts its own planted-violation kinds; anything else is a
   usage error naming the valid plants. *)
let program_for app plant =
  match app, plant with
  | Jit, None -> Ok (Mpk_jit.Jit_model.program ())
  | Jit, Some "wx" -> Ok (Mpk_jit.Jit_model.program ~plant:`Wx ())
  | Jit, Some "gadget" -> Ok (Mpk_jit.Jit_model.program ~plant:`Gadget ())
  | Secstore, None -> Ok (Mpk_secstore.Secstore_model.program ())
  | Secstore, Some "uaf" ->
      Ok (Mpk_secstore.Secstore_model.program ~plant:`Use_after_free ())
  | Secstore, Some "double-free" ->
      Ok (Mpk_secstore.Secstore_model.program ~plant:`Double_free ())
  | Secstore, Some "leak" -> Ok (Mpk_secstore.Secstore_model.program ~plant:`Leak ())
  | Kvstore, None -> Ok (Mpk_kvstore.Kvstore_model.program ())
  | Kvstore, Some "unbalanced" ->
      Ok (Mpk_kvstore.Kvstore_model.program ~plant:`Unbalanced ())
  | Kvstore, Some "toctou" -> Ok (Mpk_kvstore.Kvstore_model.program ~plant:`Toctou ())
  | app, Some k ->
      Error
        (Printf.sprintf
           "plant %S does not apply to app %s (jit: wx, gadget; secstore: uaf, \
            double-free, leak; kvstore: unbalanced, toctou)"
           k (app_name app))

(* Print one program's findings (optionally replaying each witness) and
   return whether any was an Error. [confirm_finding] is Replay.confirm
   for the sequential apps, Witness.confirm for the concurrency model. *)
let lint_report ~tag ~confirm ~confirm_finding (p : Mpk_analysis.Ir.program) findings =
  Printf.printf "== lint %s: %d node(s), %d finding(s) ==\n" tag
    (Array.length p.Mpk_analysis.Ir.nodes)
    (List.length findings);
  List.iter
    (fun f ->
      Format.printf "%a@." Mpk_analysis.Lint.pp_finding f;
      Format.printf "  witness:@.%a" Mpk_analysis.Lint.pp_witness f;
      if confirm then confirm_finding f)
    findings;
  Mpk_analysis.Lint.has_errors findings

(* The concurrency-mode cross-check (ISSUE 9 acceptance): run the
   torture harness once with the matching plant so dynamic lockdep
   observes the same protocol, then require every dynamic inversion
   (both directions of a class pair present in the observed order
   graph) to lie inside some static lock-order cycle. *)
let lint_crosscheck plant program =
  let torture_plant =
    match plant with
    | Some `Lock_order -> Mpk_check.Torture.Plant_lock_order
    | Some `Recycle | Some `Window -> Mpk_check.Torture.Plant_recycle
    | None -> Mpk_check.Torture.No_plant
  in
  let cfg =
    {
      Mpk_check.Torture.tasks = 2;
      ops = 16;
      slots = 2;
      seed = 1L;
      plant = torture_plant;
    }
  in
  let (_ : Mpk_check.Torture.outcome) =
    Mpk_check.Torture.run_once cfg ~schedule:[] ()
  in
  let dyn_edges = Mpk_check.Lockdep.order_edges () in
  let known = Mpk_kernel.Lock.known_classes () in
  let unknown_classes =
    List.filter (fun c -> not (List.mem c known)) Mpk_check.Mm_model.lock_classes
  in
  let inversions =
    List.filter
      (fun (a, b) -> a < b && List.mem (b, a) dyn_edges)
      dyn_edges
  in
  let cycles = Mpk_analysis.Lint.static_lock_cycles program in
  let uncovered =
    List.filter
      (fun (a, b) ->
        not (List.exists (fun c -> List.mem a c && List.mem b c) cycles))
      inversions
  in
  Printf.printf "cross-check: dynamic order edges: %s\n"
    (match dyn_edges with
    | [] -> "(none)"
    | es -> String.concat ", " (List.map (fun (a, b) -> a ^ " -> " ^ b) es));
  Printf.printf "cross-check: dynamic inversions: %d, static cycles: %d\n"
    (List.length inversions) (List.length cycles);
  List.iter
    (fun c ->
      Printf.printf
        "cross-check: model lock class %S unknown to the kernel lock layer\n" c)
    unknown_classes;
  List.iter
    (fun (a, b) ->
      Printf.printf
        "cross-check: FAIL: dynamic inversion {%s, %s} not covered by any \
         static lock-order cycle\n"
        a b)
    uncovered;
  if uncovered = [] && unknown_classes = [] then begin
    Printf.printf "cross-check: static cycle set covers dynamic inversions: ok\n";
    true
  end
  else false

let lint_cmd =
  let doc =
    "Statically analyze the case-study apps' libmpk protocols: key-lifecycle \
     typestate, begin/end balance on all paths, W^X, ERIM-style WRPKRU gadget scan, \
     and the lazy do_pkey_sync TOCTOU hazard. With --concurrency, analyze the \
     kernel's per-VMA locking protocol instead: Eraser-style lockset races, \
     all-paths lock-order cycles (cross-checked against dynamic lockdep), and \
     read-check-act atomicity windows; --confirm then compiles each witness to a \
     torture-harness schedule and searches for a confirming interleaving. Exits \
     nonzero on any ERROR finding."
  in
  let app_conv =
    Arg.enum [ "jit", Jit; "secstore", Secstore; "kvstore", Kvstore ]
  in
  let app_arg =
    Arg.(
      value
      & opt (some app_conv) None
      & info [ "app" ] ~docv:"APP" ~doc:"analyze one app: jit, secstore, kvstore (default: all)")
  in
  let plant =
    Arg.(
      value
      & opt (some string) None
      & info [ "plant" ] ~docv:"KIND"
          ~doc:
            "plant a known violation in the model (requires --app or --concurrency): \
             jit: wx, gadget; secstore: uaf, double-free, leak; kvstore: unbalanced, \
             toctou; concurrency: recycle, lock-order, window")
  in
  let confirm =
    Arg.(
      value & flag
      & info [ "confirm" ]
          ~doc:"replay each finding's witness on the simulator and classify it")
  in
  let concurrency =
    Arg.(
      value & flag
      & info [ "concurrency" ]
          ~doc:
            "analyze the kernel per-VMA locking protocol (lockset, lock-order, \
             atomicity passes) instead of the case-study apps")
  in
  let pass_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "pass" ] ~docv:"NAME"
          ~doc:"run only the named pass (see $(b,--pass help) for the list)")
  in
  let run app plant confirm concurrency pass =
    let passes_or_err =
      match pass with
      | None -> Ok None
      | Some "help" | Some "list" ->
          Printf.printf "passes: %s\n"
            (String.concat ", " Mpk_analysis.Lint.pass_names);
          Error 0
      | Some name when List.mem name Mpk_analysis.Lint.pass_names -> Ok (Some [ name ])
      | Some name ->
          Printf.eprintf "mpkctl: lint: unknown pass %S (valid: %s)\n" name
            (String.concat ", " Mpk_analysis.Lint.pass_names);
          Error 2
    in
    match passes_or_err with
    | Error code -> code
    | Ok passes_filter -> (
        let analyze ~default_passes p =
          let passes = Option.value passes_filter ~default:default_passes in
          Mpk_analysis.Lint.analyze_with ~passes p
        in
        if concurrency then begin
          if app <> None then begin
            Printf.eprintf "mpkctl: lint: --concurrency does not take --app\n";
            2
          end
          else
            match Option.map Mpk_check.Mm_model.plant_of_string plant with
            | Some None ->
                Printf.eprintf
                  "mpkctl: lint: unknown concurrency plant %S (valid: recycle, \
                   lock-order, window)\n"
                  (Option.get plant);
                2
            | (None | Some (Some _)) as outer ->
                let mplant = Option.join outer in
                let p = Mpk_check.Mm_model.program ?plant:mplant () in
                let findings = analyze ~default_passes:Mpk_analysis.Lint.pass_names p in
                let tag =
                  "concurrency"
                  ^ match mplant with
                    | None -> ""
                    | Some pl -> "+" ^ Mpk_check.Mm_model.plant_to_string pl
                in
                let any_error =
                  lint_report ~tag ~confirm
                    ~confirm_finding:(fun f ->
                      Format.printf "  replay: %a@." Mpk_check.Witness.pp_outcome
                        (Mpk_check.Witness.confirm f))
                    p findings
                in
                let covered = lint_crosscheck mplant p in
                if any_error then begin
                  Printf.eprintf "mpkctl: lint: ERROR finding(s) present\n";
                  1
                end
                else if not covered then begin
                  Printf.eprintf "mpkctl: lint: lockdep cross-check failed\n";
                  1
                end
                else 0
        end
        else if plant <> None && app = None then begin
          Printf.eprintf "mpkctl: lint: --plant requires --app or --concurrency\n";
          2
        end
        else begin
          let apps = match app with Some a -> [ a ] | None -> [ Jit; Secstore; Kvstore ] in
          let programs =
            List.map (fun a -> Result.map (fun p -> (a, p)) (program_for a plant)) apps
          in
          match List.filter_map (function Error e -> Some e | Ok _ -> None) programs with
          | e :: _ ->
              Printf.eprintf "mpkctl: lint: %s\n" e;
              2
          | [] ->
              let any_error = ref false in
              List.iter
                (fun (a, p) ->
                  let findings =
                    analyze
                      ~default_passes:(List.map fst Mpk_analysis.Lint.classic_passes)
                      p
                  in
                  if
                    lint_report ~tag:(app_name a) ~confirm
                      ~confirm_finding:(fun f ->
                        Format.printf "  replay: %a@." Mpk_check.Replay.pp_outcome
                          (Mpk_check.Replay.confirm f))
                      p findings
                  then any_error := true)
                (List.map Result.get_ok programs);
              if !any_error then begin
                Printf.eprintf "mpkctl: lint: ERROR finding(s) present\n";
                1
              end
              else 0
        end)
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(const run $ app_arg $ plant $ confirm $ concurrency $ pass_arg)

(* -------- coredump: crash forensics for protected memory -------- *)

let default_sentinel = "SENTINEL-TLS-PRIVATE-KEY-0xDEADBEEF"

type crash_kind = Crash_none | Crash_pkey | Crash_oom

(* The demo crash scenario every coredump subcommand shares: a Protected
   keystore holding a known sentinel secret in a pkey-tagged page, one
   ordinary page with a clear marker, and an optional injected fault
   that kills the task through the default-disposition path. *)
let coredump_scenario ~crash ~sentinel =
  let machine = Mpk_hw.Machine.create ~cores:2 ~mem_mib:64 () in
  let proc = Mpk_kernel.Proc.create machine in
  let task = Mpk_kernel.Proc.spawn proc ~core_id:0 () in
  Mpk_trace.Tracer.enable ();
  let mpk = Libmpk.init ~evict_rate:1.0 proc task in
  let ks =
    Mpk_secstore.Keystore.create ~mode:Mpk_secstore.Keystore.Protected proc task ~mpk ()
  in
  let secret_addr = Mpk_secstore.Keystore.store_opaque ks task (Bytes.of_string sentinel) in
  let clear_addr = Mpk_kernel.Syscall.mmap proc task ~len:4096 ~prot:Mpk_hw.Perm.rw () in
  Mpk_hw.Mmu.write_bytes (Mpk_kernel.Proc.mmu proc) (Mpk_kernel.Task.core task)
    ~addr:clear_addr (Bytes.of_string "mpkctl-coredump-clear-page");
  Mpk_kernel.Signal.clear_last_crash ();
  (match crash with
  | Crash_none -> ()
  | Crash_pkey -> (
      (* The keystore's write window is closed, so PKRU denies the
         domain: an unwrapped read faults SEGV_PKUERR and the task dies. *)
      try
        ignore
          (Mpk_hw.Mmu.read_byte (Mpk_kernel.Proc.mmu proc) (Mpk_kernel.Task.core task)
             ~addr:secret_addr)
      with Mpk_kernel.Signal.Killed _ -> ())
  | Crash_oom ->
      Mpk_faultinj.arm "physmem.alloc_frame" (Mpk_faultinj.Once 0);
      let a = Mpk_kernel.Syscall.mmap proc task ~len:4096 ~prot:Mpk_hw.Perm.rw () in
      (try
         Mpk_hw.Mmu.write_byte (Mpk_kernel.Proc.mmu proc) (Mpk_kernel.Task.core task)
           ~addr:a 'x'
       with Mpk_kernel.Signal.Killed _ -> ());
      Mpk_faultinj.disarm "physmem.alloc_frame");
  (proc, task, mpk)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let key_arg =
  Cmdliner.Arg.(
    value
    & opt (some string) None
    & info [ "key" ] ~docv:"HEX" ~doc:"dump key (64 hex chars; default: derived from the seed)")

let decode_key = function
  | None -> Ok None
  | Some h -> (
      match Mpk_util.Hex.decode h with
      | Error e -> Error (Printf.sprintf "--key: %s" e)
      | Ok k when Bytes.length k <> Mpk_crypto.Aead.key_bytes ->
          Error
            (Printf.sprintf "--key: expected %d bytes, got %d" Mpk_crypto.Aead.key_bytes
               (Bytes.length k))
      | Ok k -> Ok (Some k))

let coredump_capture_cmd =
  let doc =
    "Run the demo crash scenario (a protected keystore holding a sentinel secret), \
     optionally kill the task with an injected fault, and capture a sealed core dump."
  in
  let policy_arg =
    Arg.(
      value
      & opt string "redact"
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:
            "what happens to protected pages: redact (drop, leave a marker), encrypt \
             (AEAD under the dump key), or none (leak in the clear — only for proving \
             the scanner notices)")
  in
  let seed_arg =
    Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc:"run seed (in the dump id)")
  in
  let crash_arg =
    Arg.(
      value
      & opt (enum [ "pkey", Crash_pkey; "oom", Crash_oom; "none", Crash_none ]) Crash_pkey
      & info [ "crash" ] ~docv:"KIND"
          ~doc:"how the task dies: pkey (PKRU-denied read), oom (frame exhaustion), none")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"output path (default CORE_<task>_<seed>.json)")
  in
  let sentinel_arg =
    Arg.(
      value
      & opt string default_sentinel
      & info [ "sentinel" ] ~docv:"STR" ~doc:"the secret planted in the protected page")
  in
  let run policy_s seed crash key_hex out sentinel =
    match Mpk_coredump.Dump.policy_of_string policy_s with
    | Error e ->
        Printf.eprintf "mpkctl: coredump: %s\n" e;
        2
    | Ok policy -> (
        match decode_key key_hex with
        | Error e ->
            Printf.eprintf "mpkctl: coredump: %s\n" e;
            2
        | Ok key_opt -> (
            let key =
              match key_opt with
              | Some k -> k
              | None -> Mpk_coredump.Capture.default_key ~seed
            in
            let proc, task, mpk = coredump_scenario ~crash ~sentinel in
            match Mpk_coredump.Capture.capture ~proc ~task ~mpk ~key ~seed ~policy () with
            | Error e ->
                Printf.eprintf "mpkctl: coredump: %s\n" e;
                1
            | Ok dump ->
                let path =
                  match out with Some p -> p | None -> Mpk_coredump.Dump.filename dump
                in
                let oc = open_out path in
                output_string oc (Mpk_coredump.Dump.to_string dump);
                close_out oc;
                Printf.printf "wrote %s (%d sections, policy %s)\n" path
                  (List.length dump.Mpk_coredump.Dump.sections)
                  (Mpk_coredump.Dump.policy_to_string policy);
                if key_opt = None then
                  Printf.printf "key: %s (derived from seed %Ld)\n"
                    (Mpk_util.Hex.encode key) seed;
                0))
  in
  Cmd.v (Cmd.info "capture" ~doc)
    Term.(const run $ policy_arg $ seed_arg $ crash_arg $ key_arg $ out_arg $ sentinel_arg)

let coredump_inspect_cmd =
  let doc =
    "Parse a dump, verify every HMAC, and print the fault report without exposing \
     protected plaintext. With --key, also decrypt encrypted sections and check the \
     plaintext digests. Exits 1 on any integrity/decrypt failure, 2 if the file does \
     not parse."
  in
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"the dump file")
  in
  let run file key_hex =
    match decode_key key_hex with
    | Error e ->
        Printf.eprintf "mpkctl: coredump: %s\n" e;
        2
    | Ok key -> (
        match read_file file with
        | exception Sys_error e ->
            Printf.eprintf "mpkctl: coredump: %s\n" e;
            2
        | raw -> (
            match Mpk_coredump.Inspect.run ?key raw with
            | Error e ->
                Printf.eprintf "mpkctl: coredump: %s: %s\n" file e;
                2
            | Ok o ->
                print_string o.Mpk_coredump.Inspect.report;
                if o.Mpk_coredump.Inspect.failures = [] then 0
                else begin
                  List.iter
                    (fun f -> Printf.eprintf "mpkctl: coredump: %s\n" f)
                    o.Mpk_coredump.Inspect.failures;
                  1
                end))
  in
  Cmd.v (Cmd.info "inspect" ~doc) Term.(const run $ file_arg $ key_arg)

let coredump_scan_cmd =
  let doc =
    "Search a dump for secret bytes: the raw document text plus every base64 payload \
     decoded. Exits 1 when the sentinel is found (the dump leaks), 0 when clean."
  in
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"the dump file")
  in
  let sentinel_arg =
    Arg.(
      value
      & opt string default_sentinel
      & info [ "sentinel" ] ~docv:"STR" ~doc:"the secret to look for")
  in
  let run file sentinel =
    match read_file file with
    | exception Sys_error e ->
        Printf.eprintf "mpkctl: coredump: %s\n" e;
        2
    | raw -> (
        match Mpk_coredump.Dump.scan ~sentinel raw with
        | [] ->
            Printf.printf "%s: clean (sentinel not present, encoded or raw)\n" file;
            0
        | hits ->
            List.iter (fun h -> Printf.printf "%s: LEAK: %s\n" file h) hits;
            1)
  in
  Cmd.v (Cmd.info "scan" ~doc) Term.(const run $ file_arg $ sentinel_arg)

let coredump_cmd =
  let doc =
    "Crash forensics for protected memory: capture redacted/encrypted core dumps of \
     the demo crash scenario and inspect them offline."
  in
  Cmd.group (Cmd.info "coredump" ~doc)
    [ coredump_capture_cmd; coredump_inspect_cmd; coredump_scan_cmd ]

let () =
  let doc = "libmpk (USENIX ATC'19) reproduction on a simulated MPK machine" in
  let info = Cmd.info "mpkctl" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            list_cmd;
            run_cmd;
            attack_cmd;
            maps_cmd;
            audit_cmd;
            faults_cmd;
            lint_cmd;
            trace_cmd;
            profile_cmd;
            scale_cmd;
            bench_cmd;
            torture_cmd;
            coredump_cmd;
          ]))
