(** Virtual protection keys.

    Unlike hardware keys (16), virtual keys are unbounded. Applications
    pass them as hardcoded integer constants; libmpk maps them to hardware
    keys behind the scenes and never exposes which hardware key backs a
    group. *)

type t = int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
