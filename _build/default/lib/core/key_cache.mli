(** The virtual-key → hardware-key cache (paper Fig 6).

    Hardware keys are treated like cache slots for virtual keys: a lookup
    hit returns the mapped key cheaply; a miss either takes a free key,
    evicts the least-recently-used unpinned mapping, or reports the cache
    full (every key pinned by an active [mpk_begin]). *)

open Mpk_hw

type t

(** Victim-selection policy. The paper uses LRU; FIFO and random are
    provided for the eviction-policy ablation. *)
type policy = Lru | Fifo | Random

(** [create ~keys] with the hardware keys handed over by [mpk_init].
    [seed] only matters for [Random]. *)
val create : ?policy:policy -> ?seed:int64 -> keys:Pkey.t list -> unit -> t

val policy : t -> policy

(** Permanently withdraw one key from circulation (the execute-only
    reserve). Prefers a free key; evicts an unpinned LRU mapping if
    needed; [None] when everything is pinned. Returns the key plus the
    evicted vkey, if any. *)
val reserve : t -> (Pkey.t * Vkey.t option) option

type acquire_result =
  | Hit of Pkey.t  (** vkey already mapped *)
  | Fresh of Pkey.t  (** mapped to a previously free key *)
  | Evicted of Pkey.t * Vkey.t  (** mapped after evicting the LRU victim *)
  | Full  (** no free key and eviction unavailable *)

(** [acquire t vkey ~may_evict] maps (or finds) a hardware key for [vkey],
    updating LRU order and hit/miss/eviction statistics. With
    [may_evict:false] a miss with no free key reports [Full] instead of
    evicting (the eviction-rate fallback of [mpk_mprotect]). On [Evicted]
    the caller must do the memory-side work of the eviction. *)
val acquire : t -> ?may_evict:bool -> Vkey.t -> acquire_result

(** Return a previously reserved key to the free pool. *)
val add_key : t -> Pkey.t -> unit

(** [lookup t vkey] — non-mutating except for the LRU bump; no stats. *)
val lookup : t -> Vkey.t -> Pkey.t option

(** Pin/unpin a mapping against eviction (nested: counted). *)
val pin : t -> Vkey.t -> unit

val unpin : t -> Vkey.t -> unit
val pinned : t -> Vkey.t -> bool

(** [release t vkey] drops the mapping, returning the key to the free
    list. No-op when unmapped. *)
val release : t -> Vkey.t -> unit

val capacity : t -> int
val in_use : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int
val reset_stats : t -> unit

(** Mappings as (vkey, pkey, pinned) triples, LRU first. *)
val dump : t -> (Vkey.t * Pkey.t * bool) list
