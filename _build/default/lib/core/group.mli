(** Page-group metadata: one record per virtual key (paper §4.2).

    A group is either [Mapped] to a hardware key — its pages are tagged
    with that key and per-thread access is gated by PKRU — or [Unmapped]
    (key 0), protected purely by page permissions. *)

open Mpk_hw

type state = Unmapped | Mapped of Pkey.t

type t = {
  vkey : Vkey.t;
  base : int;  (** base address *)
  pages : int;
  mutable prot : Perm.t;  (** the group's current logical permission *)
  max_prot : Perm.t;
      (** the permission the group was created with: the ceiling
          [mpk_begin] may grant, regardless of later global locking via
          [mpk_mprotect] *)
  mutable state : state;
  mutable begin_depth : int;  (** total open mpk_begin calls, all threads *)
  begin_holders : (int, int) Hashtbl.t;
      (** task id -> that task's open begin count: a thread's PKRU rights
          drop at *its* outermost mpk_end, independent of other threads *)
  mutable isolated : bool;
      (** true for domain-style groups: when evicted their pages drop to
          PROT_NONE; false for mprotect-style groups whose page
          permissions carry the protection while unmapped *)
  mutable xonly : bool;
      (** true while the group is execute-only, sharing the reserved
          execute-only key outside the cache *)
}

val make : vkey:Vkey.t -> base:int -> pages:int -> prot:Perm.t -> t

val len : t -> int

val pkey : t -> Pkey.t option

(** Serialized size of one group record in the protected metadata region —
    32 bytes, as reported in the paper's memory-overhead paragraph. *)
val metadata_bytes : int

(** [serialize t] — 32-byte record (vkey, base, pages, prot, pkey). *)
val serialize : t -> bytes

val deserialize : bytes -> (Vkey.t * int * int * Perm.t * int) option
