(** libmpk's protected metadata region (paper §4.3).

    One physical region is conceptually mapped twice: a read-only user
    view (fast reads, no syscall) and a kernel-writable alias. In the
    simulator the user view is an ordinary read-only mapping and kernel
    updates go through the privileged (PKRU- and permission-bypassing)
    kernel write path, piggybacked on the syscalls libmpk already makes —
    so metadata maintenance adds no extra domain switches.

    A userspace write to the region faults: an attacker with an
    arbitrary-write primitive cannot corrupt group records or the
    vkey→pkey mappings. *)

open Mpk_hw
open Mpk_kernel

type t

(** [create proc task] maps the initial 32 KiB read-only region (the
    paper's pre-allocated hashmap) and returns the store. *)
val create : Proc.t -> Task.t -> t

val base : t -> int
val capacity_slots : t -> int
val used_slots : t -> int

(** [alloc_slot t group] persists a 32-byte group record via the kernel
    alias, growing (doubling) the region when full. Returns the slot. *)
val alloc_slot : t -> Task.t -> Group.t -> int

(** [update_slot t task slot group] rewrites an existing record. *)
val update_slot : t -> Task.t -> slot:int -> Group.t -> unit

val free_slot : t -> Task.t -> slot:int -> unit

(** [read_slot t task ~slot] — plain user-mode read (the fast path an
    application uses); raises [Mmu.Fault] only if the region was somehow
    corrupted. *)
val read_slot : t -> Task.t -> slot:int -> (Vkey.t * int * int * Perm.t * int) option

(** Address of a slot, for fault-injection tests. *)
val slot_addr : t -> slot:int -> int
