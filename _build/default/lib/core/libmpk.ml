(** libmpk: a secure, scalable, semantic-gap-mitigated software
    abstraction for (simulated) Intel Memory Protection Keys.

    The main API lives here (see {!Api}); the building blocks are exposed
    as submodules for tests, experiments and advanced users. *)

module Vkey = Vkey
module Group = Group
module Key_cache = Key_cache
module Metadata = Metadata
module Mpk_heap = Mpk_heap
include Api
