open Mpk_hw

type state = Unmapped | Mapped of Pkey.t

type t = {
  vkey : Vkey.t;
  base : int;
  pages : int;
  mutable prot : Perm.t;
  max_prot : Perm.t;
  mutable state : state;
  mutable begin_depth : int;
  begin_holders : (int, int) Hashtbl.t;
  mutable isolated : bool;
  mutable xonly : bool;
}

let make ~vkey ~base ~pages ~prot =
  {
    vkey;
    base;
    pages;
    prot;
    max_prot = prot;
    state = Unmapped;
    begin_depth = 0;
    begin_holders = Hashtbl.create 4;
    isolated = true;
    xonly = false;
  }

let len t = t.pages * Physmem.page_size

let pkey t = match t.state with Unmapped -> None | Mapped k -> Some k

let metadata_bytes = 32

let prot_to_int (p : Perm.t) =
  (if p.read then 1 else 0) lor (if p.write then 2 else 0) lor if p.exec then 4 else 0

let prot_of_int v : Perm.t =
  { read = v land 1 <> 0; write = v land 2 <> 0; exec = v land 4 <> 0 }

let serialize t =
  let b = Bytes.make metadata_bytes '\000' in
  Bytes.set_int64_le b 0 (Int64.of_int t.vkey);
  Bytes.set_int64_le b 8 (Int64.of_int t.base);
  Bytes.set_int64_le b 16 (Int64.of_int t.pages);
  Bytes.set_int32_le b 24 (Int32.of_int (prot_to_int t.prot));
  let pk = match t.state with Unmapped -> 0 | Mapped k -> Pkey.to_int k in
  Bytes.set_int32_le b 28 (Int32.of_int pk);
  b

let deserialize b =
  if Bytes.length b <> metadata_bytes then None
  else
    let vkey = Int64.to_int (Bytes.get_int64_le b 0) in
    let base = Int64.to_int (Bytes.get_int64_le b 8) in
    let pages = Int64.to_int (Bytes.get_int64_le b 16) in
    let prot = prot_of_int (Int32.to_int (Bytes.get_int32_le b 24)) in
    let pk = Int32.to_int (Bytes.get_int32_le b 28) in
    Some (vkey, base, pages, prot, pk)
