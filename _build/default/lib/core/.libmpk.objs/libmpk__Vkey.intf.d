lib/core/vkey.mli: Format
