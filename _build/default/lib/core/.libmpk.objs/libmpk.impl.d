lib/core/libmpk.ml: Api Group Key_cache Metadata Mpk_heap Vkey
