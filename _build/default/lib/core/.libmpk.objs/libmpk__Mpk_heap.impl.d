lib/core/mpk_heap.ml: Hashtbl List
