lib/core/api.ml: Array Cpu Errno Float Format Group Hashtbl Key_cache List Logs Metadata Mm Mpk_heap Mpk_hw Mpk_kernel Mpk_util Option Perm Physmem Pkey Pkru Proc Syscall Task Vkey
