lib/core/mpk_heap.mli:
