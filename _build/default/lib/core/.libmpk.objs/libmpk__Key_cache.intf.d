lib/core/key_cache.mli: Mpk_hw Pkey Vkey
