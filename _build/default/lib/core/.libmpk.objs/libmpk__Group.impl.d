lib/core/group.ml: Bytes Hashtbl Int32 Int64 Mpk_hw Perm Physmem Pkey Vkey
