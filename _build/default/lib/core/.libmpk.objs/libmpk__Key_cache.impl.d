lib/core/key_cache.ml: Hashtbl List Mpk_hw Mpk_util Pkey Vkey
