lib/core/group.mli: Hashtbl Mpk_hw Perm Pkey Vkey
