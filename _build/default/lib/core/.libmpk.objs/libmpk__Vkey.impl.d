lib/core/vkey.ml: Format Hashtbl Int
