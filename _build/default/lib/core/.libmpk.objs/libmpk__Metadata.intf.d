lib/core/metadata.mli: Group Mpk_hw Mpk_kernel Perm Proc Task Vkey
