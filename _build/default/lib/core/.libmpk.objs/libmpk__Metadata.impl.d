lib/core/metadata.ml: Array Bytes Group Mmu Mpk_hw Mpk_kernel Perm Proc Syscall Task
