lib/core/api.mli: Format Group Key_cache Logs Metadata Mpk_hw Mpk_kernel Perm Pkey Proc Task Vkey
