let granule = 16

type t = {
  base : int;
  len : int;
  mutable free_list : (int * int) list;  (* (addr, size), sorted by addr *)
  blocks : (int, int) Hashtbl.t;  (* addr -> size *)
  mutable allocated : int;
}

let create ~base ~len =
  if len <= 0 then invalid_arg "Mpk_heap.create: empty heap";
  { base; len; free_list = [ base, len ]; blocks = Hashtbl.create 64; allocated = 0 }

let base t = t.base
let len t = t.len

let round_up size = (size + granule - 1) / granule * granule

let alloc t ~size =
  if size <= 0 then invalid_arg "Mpk_heap.alloc: size must be positive";
  let size = round_up size in
  let rec take acc = function
    | [] -> None
    | (addr, avail) :: rest when avail >= size ->
        let remainder = if avail > size then [ addr + size, avail - size ] else [] in
        t.free_list <- List.rev_append acc (remainder @ rest);
        Hashtbl.replace t.blocks addr size;
        t.allocated <- t.allocated + size;
        Some addr
    | chunk :: rest -> take (chunk :: acc) rest
  in
  take [] t.free_list

let free t ~addr =
  match Hashtbl.find_opt t.blocks addr with
  | None -> invalid_arg "Mpk_heap.free: not an allocated block"
  | Some size ->
      Hashtbl.remove t.blocks addr;
      t.allocated <- t.allocated - size;
      (* Insert sorted, coalescing with both neighbours. *)
      let rec insert = function
        | [] -> [ addr, size ]
        | (a, s) :: rest when a + s = addr -> coalesce_left a s rest
        | (a, s) :: rest when addr + size = a -> (addr, size + s) :: rest
        | (a, s) :: rest when a > addr -> (addr, size) :: (a, s) :: rest
        | chunk :: rest -> chunk :: insert rest
      and coalesce_left a s rest =
        match rest with
        | (a2, s2) :: rest2 when addr + size = a2 -> (a, s + size + s2) :: rest2
        | _ -> (a, s + size) :: rest
      in
      t.free_list <- insert t.free_list

let block_size t ~addr = Hashtbl.find_opt t.blocks addr

let allocated_bytes t = t.allocated

let free_bytes t = List.fold_left (fun acc (_, s) -> acc + s) 0 t.free_list

let live_blocks t = Hashtbl.length t.blocks

let invariant t =
  let sorted_disjoint =
    let rec check = function
      | (a1, s1) :: ((a2, _) :: _ as rest) ->
          (* strict <: adjacency would mean a missed coalesce *)
          s1 > 0 && a1 + s1 < a2 && check rest
      | [ (_, s) ] -> s > 0
      | [] -> true
    in
    check t.free_list
  in
  let in_range =
    List.for_all (fun (a, s) -> a >= t.base && a + s <= t.base + t.len) t.free_list
    && Hashtbl.fold
         (fun a s acc -> acc && a >= t.base && a + s <= t.base + t.len)
         t.blocks true
  in
  let conserved = free_bytes t + t.allocated = t.len in
  let blocks_disjoint =
    (* Every block must not intersect any free chunk. *)
    Hashtbl.fold
      (fun a s acc ->
        acc
        && List.for_all (fun (fa, fs) -> a + s <= fa || fa + fs <= a) t.free_list)
      t.blocks true
  in
  sorted_disjoint && in_range && conserved && blocks_disjoint
