(** A simple heap over one page group (backs [mpk_malloc]/[mpk_free]).

    First-fit free list with coalescing; 16-byte alignment. Allocator
    metadata lives library-side — conceptually in libmpk's protected
    metadata region, never in the unprotected application heap. *)

type t

val create : base:int -> len:int -> t

val base : t -> int
val len : t -> int

(** [alloc t ~size] — address of a fresh block, or [None] when no block
    fits. [size] is rounded up to the 16-byte granule. *)
val alloc : t -> size:int -> int option

(** [free t ~addr] releases a block previously returned by [alloc].
    Raises [Invalid_argument] on a bad or double free. *)
val free : t -> addr:int -> unit

(** Size actually reserved for the block at [addr]. *)
val block_size : t -> addr:int -> int option

val allocated_bytes : t -> int
val free_bytes : t -> int
val live_blocks : t -> int

(** Allocator soundness: free list sorted/ disjoint/coalesced, blocks
    disjoint, free + allocated = total. *)
val invariant : t -> bool
