open Mpk_hw
open Mpk_kernel

type point = { pages : int; contiguous : float; sparse : float }

let page = Physmem.page_size
let sizes = [ 1; 2; 5; 10; 20; 50; 100; 200; 500; 1000 ]

let flip i = if i land 1 = 0 then Perm.r else Perm.rw

let contiguous_cost pages =
  let env = Env.make () in
  let task = Env.main env in
  let proc = env.Env.proc in
  let addr = Syscall.mmap proc task ~len:(pages * page) ~prot:Perm.rw () in
  Env.mean_cycles ~reps:100 task (fun i ->
      Syscall.mprotect proc task ~addr ~len:(pages * page) ~prot:(flip i))

let sparse_cost pages =
  let env = Env.make () in
  let task = Env.main env in
  let proc = env.Env.proc in
  let addrs =
    Array.init pages (fun _ -> Syscall.mmap proc task ~len:page ~prot:Perm.rw ())
  in
  (* protecting sparse memory needs one mprotect per mapping *)
  Env.mean_cycles ~reps:20 task (fun i ->
      Array.iter (fun addr -> Syscall.mprotect proc task ~addr ~len:page ~prot:(flip i)) addrs)

let points () =
  List.map
    (fun pages -> { pages; contiguous = contiguous_cost pages; sparse = sparse_cost pages })
    sizes

let render () =
  Mpk_util.Table.series
    ~title:
      "Figure 3: mprotect() on contiguous vs sparse pages (cycles per permission change)"
    ~x_label:"pages"
    ~y_labels:[ "contiguous (1 mmap)"; "sparse (n mmaps)"; "sparse/contig" ]
    (List.map
       (fun p ->
         ( string_of_int p.pages,
           [ p.contiguous; p.sparse; p.sparse /. p.contiguous ] ))
       (points ()))
