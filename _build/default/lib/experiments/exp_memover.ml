open Mpk_hw

type row = { groups : int; metadata_bytes : int; bytes_per_group : float }

let page = Physmem.page_size

let counts = [ 1; 10; 100; 1000; 1024; 2000; 4000 ]

let rows () =
  let env = Env.make ~mem_mib:512 () in
  let task = Env.main env in
  let mpk = Libmpk.init ~evict_rate:1.0 env.Env.proc task in
  let created = ref 0 in
  List.map
    (fun groups ->
      while !created < groups do
        incr created;
        ignore (Libmpk.mpk_mmap mpk task ~vkey:!created ~len:page ~prot:Perm.rw)
      done;
      let metadata_bytes =
        Libmpk.Metadata.capacity_slots (Libmpk.metadata mpk) * Libmpk.Group.metadata_bytes
      in
      { groups; metadata_bytes; bytes_per_group = float_of_int metadata_bytes /. float_of_int groups })
    counts

let render () =
  "Memory overhead (paper §6.2): 32 B of protected metadata per page group,\n\
   32 KiB pre-allocated, doubling when full\n"
  ^ Mpk_util.Table.render
      ~header:[ "page groups"; "metadata bytes"; "bytes/group" ]
      (List.map
         (fun r ->
           [
             string_of_int r.groups;
             string_of_int r.metadata_bytes;
             Mpk_util.Table.float_cell r.bytes_per_group;
           ])
         (rows ()))
