(** The paper's §6.2 memory-overhead paragraph, as a measurement: 32
    bytes of protected metadata per page group, a pre-allocated 32 KiB
    region, automatic doubling when it fills. *)

type row = { groups : int; metadata_bytes : int; bytes_per_group : float }

val rows : unit -> row list
val render : unit -> string
