open Mpk_jit

type engine_result = {
  engine : Engine.profile;
  per_program : (string * float * float * float) list;
  totals : float * float * float;
}

let engines = [ Engine.Spidermonkey; Engine.Chakracore ]

let result_for engine =
  let runs =
    List.map
      (fun prog ->
        let reference = Octane.measure engine Wx.No_wx prog in
        let score strategy = (Octane.run_program engine strategy ~reference prog).Octane.score in
        ( prog.Octane.name,
          score Wx.Mprotect,
          score Wx.Key_per_page,
          score Wx.Key_per_process ))
      Octane.programs
  in
  let total proj =
    Octane.total_score
      (List.map (fun (name, a, b, c) ->
           { Octane.program = name; cycles = 0.0; score = proj (a, b, c) })
          runs)
  in
  {
    engine;
    per_program = runs;
    totals = (total (fun (a, _, _) -> a), total (fun (_, b, _) -> b), total (fun (_, _, c) -> c));
  }

let results () = List.map result_for engines

let render () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "Figure 12: Octane scores (10,000 = same engine without W^X)\n";
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "-- %s --\n" (Engine.profile_name r.engine));
      let rows =
        List.map
          (fun (name, mp, kpage, kproc) ->
            [
              name;
              Mpk_util.Table.float_cell mp;
              Mpk_util.Table.float_cell kpage;
              Mpk_util.Table.float_cell kproc;
              Printf.sprintf "%+.2f%%" ((kpage -. mp) /. mp *. 100.0);
              Printf.sprintf "%+.2f%%" ((kproc -. mp) /. mp *. 100.0);
            ])
          r.per_program
      in
      let tmp, tkpage, tkproc = r.totals in
      let total_row =
        [
          "TOTAL";
          Mpk_util.Table.float_cell tmp;
          Mpk_util.Table.float_cell tkpage;
          Mpk_util.Table.float_cell tkproc;
          Printf.sprintf "%+.2f%%" ((tkpage -. tmp) /. tmp *. 100.0);
          Printf.sprintf "%+.2f%%" ((tkproc -. tmp) /. tmp *. 100.0);
        ]
      in
      Buffer.add_string buf
        (Mpk_util.Table.render
           ~aligns:[ Mpk_util.Table.Left; Right; Right; Right; Right; Right ]
           ~header:
             [ "program"; "mprotect"; "key/page"; "key/process"; "k/page vs mp"; "k/proc vs mp" ]
           (rows @ [ total_row ]));
      Buffer.add_char buf '\n')
    (results ());
  Buffer.contents buf
