(** Paper Fig 13: Octane scores of original v8 (no W⊕X), v8 + SDCG
    (out-of-process code emission) and v8 + libmpk (key/process). The
    paper: SDCG costs 6.68% overall, libmpk 0.81%. *)

type row = { program : string; original : float; sdcg : float; libmpk : float }

val rows : unit -> row list

(** overall (geomean) overhead percentages: (sdcg, libmpk). *)
val overall_overhead : unit -> float * float

val render : unit -> string
