open Mpk_hw
open Mpk_kernel

type point = { pages : int; threads : int; mpk : float; mprotect : float }

let page = Physmem.page_size
let page_counts = [ 1; 10; 100; 1000 ]
let thread_counts = [ 2; 4; 8 ]
let vkey = 1

let flip i = if i land 1 = 0 then Perm.r else Perm.rw

let mpk_cost ~pages ~threads =
  let env = Env.make ~threads () in
  let task = Env.main env in
  let proc = env.Env.proc in
  let mpk = Libmpk.init ~evict_rate:1.0 proc task in
  ignore (Libmpk.mpk_mmap mpk task ~vkey ~len:(pages * page) ~prot:Perm.rw);
  Libmpk.mpk_mprotect mpk task ~vkey ~prot:Perm.rw;  (* warm the cache *)
  Env.mean_cycles ~reps:100 task (fun i -> Libmpk.mpk_mprotect mpk task ~vkey ~prot:(flip i))

let mprotect_cost ~pages ~threads =
  let env = Env.make ~threads () in
  let task = Env.main env in
  let proc = env.Env.proc in
  let addr = Syscall.mmap proc task ~len:(pages * page) ~prot:Perm.rw () in
  (* the paper's microbenchmark protects fresh mappings; Linux only
     rewrites present PTEs, so leave the range untouched *)
  Env.mean_cycles ~reps:100 task (fun i ->
      Syscall.mprotect proc task ~addr ~len:(pages * page) ~prot:(flip i))

let points () =
  List.concat_map
    (fun threads ->
      List.map
        (fun pages ->
          {
            pages;
            threads;
            mpk = mpk_cost ~pages ~threads;
            mprotect = mprotect_cost ~pages ~threads;
          })
        page_counts)
    thread_counts

let render () =
  let pts = points () in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "Figure 10: inter-thread permission synchronization latency (cycles)\n";
  List.iter
    (fun threads ->
      Buffer.add_string buf (Printf.sprintf "-- %d threads --\n" threads);
      Buffer.add_string buf
        (Mpk_util.Table.render
           ~header:[ "pages"; "mpk_mprotect"; "mprotect"; "speedup" ]
           (List.filter_map
              (fun p ->
                if p.threads <> threads then None
                else
                  Some
                    [
                      string_of_int p.pages;
                      Mpk_util.Table.float_cell p.mpk;
                      Mpk_util.Table.float_cell p.mprotect;
                      Printf.sprintf "%.2fx" (p.mprotect /. p.mpk);
                    ])
              pts));
      Buffer.add_char buf '\n')
    thread_counts;
  Buffer.contents buf
