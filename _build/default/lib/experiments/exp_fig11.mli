(** Paper Fig 11: throughput of the TLS-terminating server (httpd +
    OpenSSL stand-in) with the original keystore vs the libmpk-protected
    one, across response sizes. ApacheBench-style: 4 concurrent clients,
    1000 requests. *)

type point = {
  size_kb : int;
  original_rps : float;
  libmpk_rps : float;
  overhead_pct : float;
}

val points : unit -> point list
val render : unit -> string
