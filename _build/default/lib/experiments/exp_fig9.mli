(** Paper Fig 9: average permission-update time while a ChakraCore-style
    engine JIT-compiles an increasing number of hot functions (one page
    and one virtual key each, nine permission switches per page),
    comparing the original mprotect-based W⊕X with libmpk key-per-page.
    Past 15 virtual keys the libmpk curve steepens: cache eviction. *)

type point = { hot_functions : int; mprotect_cycles : float; libmpk_cycles : float }

val points : unit -> point list
val render : unit -> string
