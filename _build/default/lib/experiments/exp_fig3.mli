(** Paper Fig 3: mprotect cost on contiguous (one mmap, one VMA) versus
    sparse (one mmap per page) memory, as page count grows. *)

type point = { pages : int; contiguous : float; sparse : float }

val points : unit -> point list
val render : unit -> string
