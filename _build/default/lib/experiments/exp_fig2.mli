(** Paper Fig 2: effect of WRPKRU serialization — total cycles of [n] ADD
    instructions executed before (W1) vs after (W2) a WRPKRU. *)

type point = { adds : int; w1 : float; w2 : float }

val points : unit -> point list
val render : unit -> string
