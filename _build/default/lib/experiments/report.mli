(** Orchestrates the full paper reproduction: runs every table/figure
    experiment and prints its output with a section banner. *)

type experiment = { id : string; title : string; run : unit -> string }

(** All experiments in paper order. *)
val all : experiment list

val find : string -> experiment option

(** [run_all ~out ()] executes everything, writing to [out] (default
    stdout) as results arrive. *)
val run_all : ?out:out_channel -> unit -> unit

val run_one : ?out:out_channel -> string -> bool
