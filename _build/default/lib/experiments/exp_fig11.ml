open Mpk_secstore

type point = {
  size_kb : int;
  original_rps : float;
  libmpk_rps : float;
  overhead_pct : float;
}

let sizes_kb = [ 1; 4; 16; 64; 128; 256; 512 ]
let clients = 4

(* The paper sends 1000 requests; 400 keeps the host-side RSA cost of
   this experiment short without changing the simulated means. *)
let requests = 400

let throughput mode ~size =
  let env = Env.make ~threads:4 ~mem_mib:256 () in
  let main = Env.main env in
  let proc = env.Env.proc in
  let mpk =
    match mode with
    | Keystore.Protected -> Some (Libmpk.init ~evict_rate:1.0 proc main)
    | Keystore.Insecure -> None
  in
  let server = Tls_server.create ~mode proc main ?mpk ~seed:0x11L () in
  let result =
    Loadgen.run server (Array.to_list env.Env.tasks) ~clients ~requests ~size ()
  in
  result.Loadgen.throughput_rps

let points () =
  List.map
    (fun size_kb ->
      let size = size_kb * 1024 in
      let original_rps = throughput Keystore.Insecure ~size in
      let libmpk_rps = throughput Keystore.Protected ~size in
      {
        size_kb;
        original_rps;
        libmpk_rps;
        overhead_pct = (original_rps -. libmpk_rps) /. original_rps *. 100.0;
      })
    sizes_kb

let render () =
  Mpk_util.Table.series
    ~title:
      "Figure 11: httpd+OpenSSL throughput, original vs libmpk-hardened\n\
       (4 concurrent clients, 1000 requests; paper: <=0.58% overhead)"
    ~x_label:"resp KB"
    ~y_labels:[ "original req/s"; "libmpk req/s"; "overhead %" ]
    (List.map
       (fun p ->
         string_of_int p.size_kb, [ p.original_rps; p.libmpk_rps; p.overhead_pct ])
       (points ()))
