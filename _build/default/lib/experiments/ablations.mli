(** Ablation studies on libmpk's design choices (DESIGN.md §6) — beyond
    the paper's own figures:

    - lazy vs eager inter-thread PKRU synchronization (the design of §4.4
      against the synchronous strawman it rejects);
    - key-cache eviction policy (the paper's LRU vs FIFO vs random);
    - hardware key count (what if the ISA had fewer than 16 keys);
    - the per-PTE-update cost constant (the Fig 10 / Fig 14 calibration
      tension made explicit). *)

val render_sync : unit -> string
val render_policy : unit -> string
val render_key_count : unit -> string
val render_pte_cost : unit -> string

(** All four, concatenated. *)
val render : unit -> string
