(** Paper Table 3: summary of the three real-world applications — what
    each protects, with how many hardware/virtual keys. Regenerated from
    the live application configurations rather than hardcoded prose. *)

type row = {
  application : string;
  protection : string;
  protected_data : string;
  pkeys : string;
  vkeys : string;
}

val rows : unit -> row list
val render : unit -> string
