lib/experiments/ablations.ml: Array Costs Env Libmpk List Machine Mm Mpk_hw Mpk_jit Mpk_kernel Mpk_util Perm Physmem Pkru Printf Proc Sched String Syscall Task
