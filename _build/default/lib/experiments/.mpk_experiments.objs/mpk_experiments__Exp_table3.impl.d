lib/experiments/exp_table3.ml: Bytes Env Libmpk List Machine Mpk_crypto Mpk_hw Mpk_jit Mpk_kernel Mpk_kvstore Mpk_secstore Mpk_util Printf Proc Task
