lib/experiments/exp_fig9.ml: Codecache Engine Env Libmpk List Mpk_jit Mpk_util Wx
