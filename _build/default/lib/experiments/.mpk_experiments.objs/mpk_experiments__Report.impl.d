lib/experiments/report.ml: Ablations Exp_fig10 Exp_fig11 Exp_fig12 Exp_fig13 Exp_fig14 Exp_fig2 Exp_fig3 Exp_fig8 Exp_fig9 Exp_memover Exp_table1 Exp_table3 List Printf String Unix
