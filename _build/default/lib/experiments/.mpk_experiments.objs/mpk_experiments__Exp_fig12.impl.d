lib/experiments/exp_fig12.ml: Buffer Engine List Mpk_jit Mpk_util Octane Printf Wx
