lib/experiments/exp_fig10.ml: Buffer Env Libmpk List Mpk_hw Mpk_kernel Mpk_util Perm Physmem Printf Syscall
