lib/experiments/env.ml: Array Cpu Machine Mpk_hw Mpk_kernel Proc Task
