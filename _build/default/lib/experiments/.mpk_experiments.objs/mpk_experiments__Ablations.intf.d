lib/experiments/ablations.mli:
