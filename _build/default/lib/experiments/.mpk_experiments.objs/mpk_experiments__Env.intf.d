lib/experiments/env.mli: Mpk_kernel Proc Task
