lib/experiments/exp_fig14.mli: Mpk_kvstore
