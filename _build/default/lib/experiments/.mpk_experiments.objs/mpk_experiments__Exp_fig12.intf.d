lib/experiments/exp_fig12.mli: Mpk_jit
