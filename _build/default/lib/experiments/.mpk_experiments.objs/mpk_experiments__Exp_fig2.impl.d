lib/experiments/exp_fig2.ml: Cpu List Mpk_hw Mpk_util
