lib/experiments/exp_fig13.mli:
