lib/experiments/report.mli:
