lib/experiments/exp_fig3.ml: Array Env List Mpk_hw Mpk_kernel Mpk_util Perm Physmem Syscall
