lib/experiments/exp_table1.ml: Cpu Env List Mm Mpk_hw Mpk_kernel Mpk_util Perm Pkru Proc Syscall Task
