lib/experiments/exp_fig14.ml: Float List Loadgen Mpk_kvstore Mpk_util Printf Server
