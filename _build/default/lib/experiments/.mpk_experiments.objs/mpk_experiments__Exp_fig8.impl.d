lib/experiments/exp_fig8.ml: Buffer Env Libmpk List Mm Mpk_hw Mpk_kernel Mpk_util Perm Physmem Printf Proc Syscall Task
