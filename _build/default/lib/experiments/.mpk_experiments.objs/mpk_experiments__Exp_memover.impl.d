lib/experiments/exp_memover.ml: Env Libmpk List Mpk_hw Mpk_util Perm Physmem
