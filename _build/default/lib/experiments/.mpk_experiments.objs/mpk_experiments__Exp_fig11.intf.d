lib/experiments/exp_fig11.mli:
