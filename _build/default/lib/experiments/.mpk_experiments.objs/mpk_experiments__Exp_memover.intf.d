lib/experiments/exp_memover.mli:
