lib/experiments/exp_fig13.ml: Engine List Mpk_jit Mpk_util Octane Printf Wx
