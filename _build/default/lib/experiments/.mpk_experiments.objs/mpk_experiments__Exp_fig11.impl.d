lib/experiments/exp_fig11.ml: Array Env Keystore Libmpk List Loadgen Mpk_secstore Mpk_util Tls_server
