open Mpk_hw
open Mpk_kernel

let page = Physmem.page_size

(* --- lazy vs eager PKRU synchronization ------------------------------- *)

let sync_cost ~threads ~eager ~descheduled =
  let env = Env.make ~threads () in
  let task = Env.main env in
  let proc = env.Env.proc in
  let k = Syscall.pkey_alloc proc task ~init_rights:Pkru.Read_write in
  let sched = Proc.sched proc in
  let others = List.filteri (fun i _ -> i > 0) (Array.to_list env.Env.tasks) in
  let rec deschedule n = function
    | t :: rest when n > 0 ->
        Sched.schedule_out sched t;
        deschedule (n - 1) rest
    | _ -> ()
  in
  Env.mean_cycles ~reps:50 task (fun i ->
      deschedule descheduled others;
      let rights = if i land 1 = 0 then Pkru.Read_only else Pkru.Read_write in
      Syscall.pkey_sync proc task ~eager ~pkey:k rights)

let render_sync () =
  let rows =
    List.concat_map
      (fun threads ->
        List.map
          (fun descheduled ->
            let lazy_c = sync_cost ~threads ~eager:false ~descheduled in
            let eager_c = sync_cost ~threads ~eager:true ~descheduled in
            [
              string_of_int threads;
              string_of_int descheduled;
              Mpk_util.Table.float_cell lazy_c;
              Mpk_util.Table.float_cell eager_c;
              Printf.sprintf "%.2fx" (eager_c /. lazy_c);
            ])
          (if threads > 2 then [ 0; (threads - 1) / 2; threads - 1 ] else [ 0; 1 ]))
      [ 2; 4; 8 ]
  in
  "Ablation: lazy (task_work) vs eager (synchronous handshake) PKRU sync\n\
   cost of one do_pkey_sync call, caller's cycles\n"
  ^ Mpk_util.Table.render
      ~header:[ "threads"; "off-cpu"; "lazy"; "eager"; "eager/lazy" ]
      rows

(* --- eviction policy --------------------------------------------------- *)

(* A skewed workload: 80% of mpk_mprotect calls hit 10 hot groups, 20%
   sweep 30 cold ones. LRU should keep the hot set mapped. *)
let policy_run policy =
  let env = Env.make () in
  let task = Env.main env in
  let proc = env.Env.proc in
  let mpk = Libmpk.init ~policy ~evict_rate:1.0 ~seed:0xAB1L proc task in
  for v = 1 to 40 do
    ignore (Libmpk.mpk_mmap mpk task ~vkey:v ~len:page ~prot:Perm.rw)
  done;
  let prng = Mpk_util.Prng.create ~seed:0x90L in
  let cycles =
    Env.mean_cycles ~reps:500 task (fun i ->
        let vkey =
          if Mpk_util.Prng.float prng < 0.8 then 1 + Mpk_util.Prng.int prng 10
          else 11 + Mpk_util.Prng.int prng 30
        in
        let prot = if i land 1 = 0 then Perm.r else Perm.rw in
        Libmpk.mpk_mprotect mpk task ~vkey ~prot)
  in
  let s = Libmpk.stats mpk in
  cycles, s.Libmpk.cache_hits, s.Libmpk.cache_evictions

let render_policy () =
  let rows =
    List.map
      (fun (name, policy) ->
        let cycles, hits, evictions = policy_run policy in
        [
          name;
          Mpk_util.Table.float_cell cycles;
          string_of_int hits;
          string_of_int evictions;
        ])
      [
        "LRU (paper)", Libmpk.Key_cache.Lru;
        "FIFO", Libmpk.Key_cache.Fifo;
        "random", Libmpk.Key_cache.Random;
      ]
  in
  "Ablation: key-cache eviction policy (skewed access: 80% over 10 hot vkeys,\n\
   20% over 30 cold vkeys; 500 mpk_mprotect calls)\n"
  ^ Mpk_util.Table.render
      ~aligns:[ Mpk_util.Table.Left; Right; Right; Right ]
      ~header:[ "policy"; "cycles/op"; "hits"; "evictions" ]
      rows

(* --- hardware key count ------------------------------------------------ *)

(* A JIT patching 20 hot functions in *random* order (one page and one
   vkey each), with the ISA shrunk to [hw_keys] keys: the hit rate — and
   with it the cost — tracks how much of the working set the key file
   can hold. Sequential per-function access (as in Fig 9) would mask
   this: each function's nine switches reuse its freshly-mapped key. *)
let key_count_run hw_keys =
  let env = Env.make ~mem_mib:512 () in
  let task = Env.main env in
  let proc = env.Env.proc in
  let mpk = Libmpk.init ~hw_keys ~evict_rate:1.0 proc task in
  let engine =
    Mpk_jit.Engine.create Mpk_jit.Engine.Chakracore Mpk_jit.Wx.Key_per_page proc task ~mpk
      ~cache_pages:24 ()
  in
  let names =
    Array.init 20 (fun i -> Mpk_jit.Engine.compile engine task ~ops:60 ~seed:i ~pad_to:3900 ())
  in
  let prng = Mpk_util.Prng.create ~seed:0x4CL in
  Mpk_jit.Codecache.reset_perm_switch_cycles (Mpk_jit.Engine.cache engine);
  for _ = 1 to 300 do
    Mpk_jit.Engine.patch engine task names.(Mpk_util.Prng.int prng 20)
  done;
  let s = Libmpk.stats mpk in
  Mpk_jit.Codecache.perm_switch_cycles (Mpk_jit.Engine.cache engine), s.Libmpk.cache_evictions

let render_key_count () =
  let rows =
    List.map
      (fun hw_keys ->
        let cycles, evictions = key_count_run hw_keys in
        [ string_of_int hw_keys; Mpk_util.Table.float_cell cycles; string_of_int evictions ])
      [ 2; 4; 8; 12; 15 ]
  in
  "Ablation: hardware key count (20 hot JIT pages patched in random order, 300 events)\n"
  ^ Mpk_util.Table.render ~header:[ "hw keys"; "switch cycles"; "evictions" ] rows

(* --- per-PTE-update cost ------------------------------------------------ *)

(* The calibration tension documented in EXPERIMENTS.md: one constant
   drives both Fig 10's modest mprotect growth (untouched pages) and
   Fig 14's collapse (populated pages). *)
let pte_cost_run pte_update =
  let costs = { Costs.default with Costs.pte_update } in
  let machine = Machine.create ~costs ~cores:2 ~mem_mib:512 () in
  let proc = Proc.create machine in
  let task = Proc.spawn proc ~core_id:0 () in
  let flip i = if i land 1 = 0 then Perm.r else Perm.rw in
  let cost ~pages ~populate =
    let addr = Syscall.mmap proc task ~len:(pages * page) ~prot:Perm.rw () in
    if populate then Mm.populate (Proc.mm proc) (Task.core task) ~addr ~len:(pages * page);
    Env.mean_cycles ~reps:20 task (fun i ->
        Syscall.mprotect proc task ~addr ~len:(pages * page) ~prot:(flip i))
  in
  let untouched_1000 = cost ~pages:1000 ~populate:false in
  let populated_64mib = cost ~pages:(64 * 256) ~populate:true in
  untouched_1000, populated_64mib

let render_pte_cost () =
  let rows =
    List.map
      (fun pte ->
        let untouched, populated = pte_cost_run pte in
        [
          Mpk_util.Table.float_cell pte;
          Mpk_util.Table.float_cell untouched;
          Mpk_util.Table.float_cell populated;
        ])
      [ 1.0; 4.0; 14.0; 28.0 ]
  in
  "Ablation: per-PTE-update cost (default 14) — mprotect on 1000 untouched pages\n\
   (the Fig 10 microbenchmark) vs a populated 64 MiB region (the Fig 14 regime)\n"
  ^ Mpk_util.Table.render
      ~header:[ "pte_update"; "untouched 1000p"; "populated 64MiB" ]
      rows

let render () =
  String.concat "\n"
    [ render_sync (); render_policy (); render_key_count (); render_pte_cost () ]
