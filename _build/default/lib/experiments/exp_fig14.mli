(** Paper Fig 14: Memcached throughput and unhandled connections at
    increasing connection rates, for the original server and the three
    protected variants (mpk_begin / mpk_mprotect / mprotect), with ~1 GiB
    of slab memory resident. *)

type point = {
  mode : Mpk_kvstore.Server.mode;
  conn_rate : int;
  data_mb_s : float;
  unhandled : int;
}

val points : ?slab_mib:int -> unit -> point list
val render : ?slab_mib:int -> unit -> string
