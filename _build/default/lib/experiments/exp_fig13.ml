open Mpk_jit

type row = { program : string; original : float; sdcg : float; libmpk : float }

let rows () =
  List.map
    (fun prog ->
      let reference = Octane.measure Engine.V8 Wx.No_wx prog in
      let score strategy = (Octane.run_program Engine.V8 strategy ~reference prog).Octane.score in
      {
        program = prog.Octane.name;
        original = score Wx.No_wx;
        sdcg = score Wx.Sdcg;
        libmpk = score Wx.Key_per_process;
      })
    Octane.programs

let geomean proj rows =
  exp (List.fold_left (fun acc r -> acc +. log (proj r)) 0.0 rows /. float_of_int (List.length rows))

let overall_overhead () =
  let rs = rows () in
  let orig = geomean (fun r -> r.original) rs in
  let sdcg = geomean (fun r -> r.sdcg) rs in
  let mpk = geomean (fun r -> r.libmpk) rs in
  (orig -. sdcg) /. orig *. 100.0, (orig -. mpk) /. orig *. 100.0

let render () =
  let rs = rows () in
  let sdcg_oh, mpk_oh = overall_overhead () in
  let rows_txt =
    List.map
      (fun r ->
        [
          r.program;
          Mpk_util.Table.float_cell r.original;
          Mpk_util.Table.float_cell r.sdcg;
          Mpk_util.Table.float_cell r.libmpk;
        ])
      rs
  in
  Printf.sprintf
    "Figure 13: v8 Octane scores — original vs SDCG vs libmpk (key/process)\n%s\n\
     Overall overhead: SDCG %.2f%% (paper 6.68%%), libmpk %.2f%% (paper 0.81%%)\n"
    (Mpk_util.Table.render
       ~aligns:[ Mpk_util.Table.Left; Right; Right; Right ]
       ~header:[ "program"; "v8 original"; "v8+SDCG"; "v8+libmpk" ]
       rows_txt)
    sdcg_oh mpk_oh
