open Mpk_jit

type point = { hot_functions : int; mprotect_cycles : float; libmpk_cycles : float }

let switches_per_function = 9

let counts = [ 1; 3; 5; 8; 10; 12; 15; 18; 20; 25; 30; 35 ]

let needs_mpk = function
  | Wx.Key_per_page | Wx.Key_per_process -> true
  | Wx.No_wx | Wx.Mprotect | Wx.Sdcg -> false

(* total permission-switch time for n hot functions under one strategy *)
let switch_time strategy n =
  let env = Env.make ~mem_mib:512 () in
  let task = Env.main env in
  let proc = env.Env.proc in
  let mpk =
    if needs_mpk strategy then Some (Libmpk.init ~evict_rate:1.0 proc task) else None
  in
  let engine =
    Engine.create Engine.Chakracore strategy proc task ?mpk ~cache_pages:(n + 2) ()
  in
  (* ~3.9 KB of code per function: one page (and one virtual key) each *)
  let names = List.init n (fun i -> Engine.compile engine task ~ops:60 ~seed:i ~pad_to:3900 ()) in
  Codecache.reset_perm_switch_cycles (Engine.cache engine);
  (* The nine switches on a page happen while its function is being
     (re)compiled, i.e. consecutively — so past 15 keys each function
     costs one eviction plus eight cache hits, not nine misses. *)
  List.iter
    (fun name ->
      for _ = 1 to switches_per_function do
        Engine.patch engine task name
      done)
    names;
  Codecache.perm_switch_cycles (Engine.cache engine)

let points () =
  List.map
    (fun n ->
      {
        hot_functions = n;
        mprotect_cycles = switch_time Wx.Mprotect n;
        libmpk_cycles = switch_time Wx.Key_per_page n;
      })
    counts

let render () =
  Mpk_util.Table.series
    ~title:
      "Figure 9: total permission-update cost vs #hot functions (ChakraCore, key/page;\n\
       9 switches per function; libmpk eviction begins past 15 virtual keys)"
    ~x_label:"#hot fn" ~y_labels:[ "mprotect (orig)"; "libmpk key/page"; "speedup" ]
    (List.map
       (fun p ->
         ( string_of_int p.hot_functions,
           [ p.mprotect_cycles; p.libmpk_cycles; p.mprotect_cycles /. p.libmpk_cycles ] ))
       (points ()))
