type experiment = { id : string; title : string; run : unit -> string }

let all =
  [
    { id = "table1"; title = "Table 1: MPK primitive latencies"; run = Exp_table1.render };
    { id = "fig2"; title = "Figure 2: WRPKRU serialization"; run = Exp_fig2.render };
    { id = "fig3"; title = "Figure 3: mprotect contiguous vs sparse"; run = Exp_fig3.render };
    { id = "fig8"; title = "Figure 8: key cache latency"; run = Exp_fig8.render };
    { id = "fig9"; title = "Figure 9: ChakraCore permission-update time"; run = Exp_fig9.render };
    { id = "fig10"; title = "Figure 10: inter-thread synchronization latency"; run = Exp_fig10.render };
    { id = "fig11"; title = "Figure 11: httpd/OpenSSL throughput"; run = Exp_fig11.render };
    { id = "fig12"; title = "Figure 12: Octane, SpiderMonkey & ChakraCore"; run = Exp_fig12.render };
    { id = "fig13"; title = "Figure 13: Octane, v8 vs SDCG vs libmpk"; run = Exp_fig13.render };
    { id = "fig14"; title = "Figure 14: Memcached throughput"; run = (fun () -> Exp_fig14.render ()) };
    { id = "table3"; title = "Table 3: application summary"; run = Exp_table3.render };
    { id = "memover"; title = "Memory overhead of libmpk metadata (paper §6.2)"; run = Exp_memover.render };
    { id = "ablations"; title = "Ablations: sync mode, eviction policy, key count, PTE cost"; run = Ablations.render };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let banner title =
  let bar = String.make 78 '=' in
  Printf.sprintf "%s\n%s\n%s\n" bar title bar

let run_experiment out e =
  output_string out (banner e.title);
  let t0 = Unix.gettimeofday () in
  output_string out (e.run ());
  Printf.fprintf out "[%s completed in %.1fs]\n\n" e.id (Unix.gettimeofday () -. t0);
  flush out

let run_all ?(out = stdout) () = List.iter (run_experiment out) all

let run_one ?(out = stdout) id =
  match find id with
  | Some e ->
      run_experiment out e;
      true
  | None -> false
