(** Paper Fig 10: latency of inter-thread permission synchronization —
    [mpk_mprotect] (lazy PKRU sync, page-count independent) versus
    [mprotect] (VMA + PTE work plus TLB shootdown) across memory sizes
    and thread counts. *)

type point = { pages : int; threads : int; mpk : float; mprotect : float }

val points : unit -> point list
val render : unit -> string
