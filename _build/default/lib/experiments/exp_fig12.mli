(** Paper Fig 12: Octane scores for SpiderMonkey and ChakraCore with the
    original (mprotect-based) W⊕X versus the two libmpk approaches.
    Scores are normalized so the engine *without* W⊕X scores 10,000 per
    program; the paper's claims are relative improvements of libmpk over
    mprotect. *)

type engine_result = {
  engine : Mpk_jit.Engine.profile;
  per_program : (string * float * float * float) list;
      (** program, mprotect, key/page, key/process *)
  totals : float * float * float;
}

val results : unit -> engine_result list
val render : unit -> string
