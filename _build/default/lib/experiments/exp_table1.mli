(** Paper Table 1: latency (cycles) of the MPK instructions, syscalls and
    glibc APIs, with the mprotect / register-move reference rows. *)

type row = { name : string; cycles : float; paper : float; description : string }

val rows : unit -> row list

(** Rendered table plus per-row deviation from the paper's measurement. *)
val render : unit -> string
