open Mpk_hw

type point = { adds : int; w1 : float; w2 : float }

let counts = [ 0; 1; 2; 4; 8; 12; 16; 20; 24; 32 ]

let points () =
  List.map
    (fun adds ->
      let run order =
        let cpu = Cpu.create ~id:0 () in
        snd
          (Cpu.measure cpu (fun () ->
               match order with
               | `Before ->
                   Cpu.exec_adds cpu adds;
                   Cpu.wrpkru cpu (Cpu.pkru cpu)
               | `After ->
                   Cpu.wrpkru cpu (Cpu.pkru cpu);
                   Cpu.exec_adds cpu adds))
      in
      { adds; w1 = run `Before; w2 = run `After })
    counts

let render () =
  let pts = points () in
  Mpk_util.Table.series
    ~title:
      "Figure 2: WRPKRU serialization — ADDs before (W1) vs after (W2) WRPKRU (cycles)"
    ~x_label:"#ADDs" ~y_labels:[ "W1 (adds;wrpkru)"; "W2 (wrpkru;adds)"; "gap" ]
    (List.map
       (fun p -> string_of_int p.adds, [ p.w1; p.w2; p.w2 -. p.w1 ])
       pts)
