(** Paper Fig 8: latency of libmpk's key cache under varying hit rates,
    eviction rates and thread counts, with the mprotect reference line.
    [mpk_mprotect] is invoked on one 4 KB page. *)

type cell = {
  hit_rate : int;  (** percent *)
  evict_rate : int;  (** percent *)
  threads : int;
  cycles : float;
}

val grid : unit -> cell list

(** mprotect latency on the same page with the given thread count. *)
val mprotect_reference : threads:int -> float

val render : unit -> string
