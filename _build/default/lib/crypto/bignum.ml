(* Little-endian arrays of base-2^26 digits, normalized (no trailing
   zeros). 26-bit digits keep every intermediate product within OCaml's
   63-bit native int. *)

let base_bits = 26
let base = 1 lsl base_bits
let base_mask = base - 1

type t = int array

let zero : t = [||]
let one : t = [| 1 |]
let two : t = [| 2 |]

let normalize (a : int array) : t =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = Array.length a then a else Array.sub a 0 !n

let of_int n =
  if n < 0 then invalid_arg "Bignum.of_int: negative";
  let rec digits n acc = if n = 0 then List.rev acc else digits (n lsr base_bits) ((n land base_mask) :: acc) in
  Array.of_list (digits n [])

let is_zero t = Array.length t = 0

let compare a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then Int.compare la lb
  else begin
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then Int.compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)
  end

let equal a b = compare a b = 0

let bits t =
  let n = Array.length t in
  if n = 0 then 0
  else begin
    let top = t.(n - 1) in
    let rec width v acc = if v = 0 then acc else width (v lsr 1) (acc + 1) in
    ((n - 1) * base_bits) + width top 0
  end

let to_int t =
  if bits t > 62 then None
  else begin
    let v = ref 0 in
    for i = Array.length t - 1 downto 0 do
      v := (!v lsl base_bits) lor t.(i)
    done;
    Some !v
  end

let testbit t i =
  let d = i / base_bits and b = i mod base_bits in
  d < Array.length t && (t.(d) lsr b) land 1 = 1

let add a b =
  let la = Array.length a and lb = Array.length b in
  let n = max la lb + 1 in
  let out = Array.make n 0 in
  let carry = ref 0 in
  for i = 0 to n - 1 do
    let s = (if i < la then a.(i) else 0) + (if i < lb then b.(i) else 0) + !carry in
    out.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  normalize out

let sub a b =
  if compare a b < 0 then invalid_arg "Bignum.sub: would be negative";
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let d = a.(i) - (if i < lb then b.(i) else 0) - !borrow in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  normalize out

let mul a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 || lb = 0 then zero
  else begin
    let out = Array.make (la + lb) 0 in
    for i = 0 to la - 1 do
      let carry = ref 0 in
      let ai = a.(i) in
      for j = 0 to lb - 1 do
        let v = out.(i + j) + (ai * b.(j)) + !carry in
        out.(i + j) <- v land base_mask;
        carry := v lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let v = out.(!k) + !carry in
        out.(!k) <- v land base_mask;
        carry := v lsr base_bits;
        incr k
      done
    done;
    normalize out
  end

let shift_left t k =
  if is_zero t || k = 0 then t
  else begin
    let dig = k / base_bits and bit = k mod base_bits in
    let la = Array.length t in
    let out = Array.make (la + dig + 1) 0 in
    for i = 0 to la - 1 do
      let v = t.(i) lsl bit in
      out.(i + dig) <- out.(i + dig) lor (v land base_mask);
      out.(i + dig + 1) <- out.(i + dig + 1) lor (v lsr base_bits)
    done;
    normalize out
  end

let shift_right t k =
  if is_zero t || k = 0 then t
  else begin
    let dig = k / base_bits and bit = k mod base_bits in
    let la = Array.length t in
    if dig >= la then zero
    else begin
      let n = la - dig in
      let out = Array.make n 0 in
      for i = 0 to n - 1 do
        let lo = t.(i + dig) lsr bit in
        let hi = if i + dig + 1 < la && bit > 0 then (t.(i + dig + 1) lsl (base_bits - bit)) land base_mask else 0 in
        out.(i) <- lo lor hi
      done;
      normalize out
    end
  end

(* Shift-and-subtract long division: O(bits(a) * digits(b)); plenty for
   the <=1024-bit operands the RSA substrate uses. *)
let divmod a b =
  if is_zero b then raise Division_by_zero;
  if compare a b < 0 then zero, a
  else begin
    let shift = bits a - bits b in
    let q = Array.make (shift / base_bits + 1) 0 in
    let r = ref a in
    for i = shift downto 0 do
      let d = shift_left b i in
      if compare !r d >= 0 then begin
        r := sub !r d;
        q.(i / base_bits) <- q.(i / base_bits) lor (1 lsl (i mod base_bits))
      end
    done;
    normalize q, !r
  end

let rem a b = snd (divmod a b)

let mod_pow ~base:b ~exp ~modulus =
  if is_zero modulus then raise Division_by_zero;
  if equal modulus one then zero
  else begin
    let result = ref one in
    let acc = ref (rem b modulus) in
    let nbits = bits exp in
    for i = 0 to nbits - 1 do
      if testbit exp i then result := rem (mul !result !acc) modulus;
      if i < nbits - 1 then acc := rem (mul !acc !acc) modulus
    done;
    !result
  end

let gcd a b =
  let rec go a b = if is_zero b then a else go b (rem a b) in
  if compare a b >= 0 then go a b else go b a

(* Extended Euclid with (sign, magnitude) coefficient tracking. *)
let invmod a m =
  if is_zero m || equal m one then None
  else begin
    let a = rem a m in
    if is_zero a then None
    else begin
      (* signed helpers: (sign, mag) with sign = 1 or -1, mag a natural *)
      let s_sub (sx, x) (sy, y) =
        (* x - y *)
        if sx = sy then
          if compare x y >= 0 then sx, sub x y else -sx, sub y x
        else sx, add x y
      in
      let s_mul_nat (sx, x) n = sx, mul x n in
      let rec go (old_r : t) (r : t) old_s s =
        if is_zero r then old_r, old_s
        else begin
          let q, rr = divmod old_r r in
          let new_s = s_sub old_s (s_mul_nat s q) in
          go r rr s new_s
        end
      in
      let g, (sign, x) = go m a (1, zero) (1, one) in
      if not (equal g one) then None
      else
        (* a*x ≡ 1 (mod m); fold the sign back into [0, m) *)
        let x = rem x m in
        if sign >= 0 || is_zero x then Some x else Some (sub m x)
    end
  end

let of_bytes b =
  let n = Bytes.length b in
  let acc = ref zero in
  for i = 0 to n - 1 do
    acc := add (shift_left !acc 8) (of_int (Char.code (Bytes.get b i)))
  done;
  !acc

let to_bytes t =
  if is_zero t then Bytes.make 1 '\000'
  else begin
    let nbytes = (bits t + 7) / 8 in
    let out = Bytes.make nbytes '\000' in
    let v = ref t in
    for i = nbytes - 1 downto 0 do
      let byte =
        match to_int (rem !v (of_int 256)) with Some x -> x | None -> assert false
      in
      Bytes.set out i (Char.chr byte);
      v := shift_right !v 8
    done;
    out
  end

let to_bytes_padded t ~len =
  let raw = to_bytes t in
  let n = Bytes.length raw in
  if is_zero t then Bytes.make len '\000'
  else if n > len then invalid_arg "Bignum.to_bytes_padded: does not fit"
  else begin
    let out = Bytes.make len '\000' in
    Bytes.blit raw 0 out (len - n) n;
    out
  end

let random prng ~bits:nbits =
  if nbits <= 0 then invalid_arg "Bignum.random: bits must be positive";
  let ndigits = (nbits + base_bits - 1) / base_bits in
  let out = Array.make ndigits 0 in
  for i = 0 to ndigits - 1 do
    out.(i) <- Mpk_util.Prng.int prng base
  done;
  (* clamp to exactly nbits: clear above, set the top bit *)
  let top = nbits - 1 in
  let top_digit = top / base_bits and top_bit = top mod base_bits in
  out.(top_digit) <- (out.(top_digit) land ((1 lsl (top_bit + 1)) - 1)) lor (1 lsl top_bit);
  for i = top_digit + 1 to ndigits - 1 do
    out.(i) <- 0
  done;
  normalize out

let to_hex t =
  if is_zero t then "0"
  else begin
    let b = to_bytes t in
    let buf = Buffer.create (Bytes.length b * 2) in
    Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) b;
    (* strip a single leading zero nibble if present *)
    let s = Buffer.contents buf in
    if String.length s > 1 && s.[0] = '0' then String.sub s 1 (String.length s - 1) else s
  end

let pp fmt t = Format.fprintf fmt "0x%s" (to_hex t)
