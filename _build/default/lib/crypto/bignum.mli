(** Arbitrary-precision natural numbers, built from scratch for the RSA
    substrate (no zarith in the sealed environment).

    Values are immutable. All operations are on naturals; [sub] requires
    [a >= b]. *)

type t

val zero : t
val one : t
val two : t

(** [of_int n] for [n >= 0]. *)
val of_int : int -> t

(** [to_int t] when it fits, else [None]. *)
val to_int : t -> int option

val equal : t -> t -> bool
val compare : t -> t -> int
val is_zero : t -> bool

(** Number of significant bits (0 for zero). *)
val bits : t -> int

val testbit : t -> int -> bool

val add : t -> t -> t

(** [sub a b] requires [a >= b]; raises [Invalid_argument] otherwise. *)
val sub : t -> t -> t

val mul : t -> t -> t

(** [divmod a b] is [(a / b, a mod b)]; raises [Division_by_zero]. *)
val divmod : t -> t -> t * t

val rem : t -> t -> t

val shift_left : t -> int -> t
val shift_right : t -> int -> t

(** [mod_pow ~base ~exp ~modulus] — modular exponentiation
    (square-and-multiply). *)
val mod_pow : base:t -> exp:t -> modulus:t -> t

(** [invmod a m] — modular inverse of [a] mod [m], when gcd(a,m)=1. *)
val invmod : t -> t -> t option

val gcd : t -> t -> t

(** Big-endian byte conversion. *)
val of_bytes : bytes -> t

val to_bytes : t -> bytes

(** [to_bytes_padded t ~len] — big-endian, left-padded with zeros; raises
    [Invalid_argument] if [t] needs more than [len] bytes. *)
val to_bytes_padded : t -> len:int -> bytes

(** [random prng ~bits] — uniform with exactly [bits] bits (msb set). *)
val random : Mpk_util.Prng.t -> bits:int -> t

val to_hex : t -> string
val pp : Format.formatter -> t -> unit
