(** HMAC-SHA256 (RFC 2104) — key derivation and integrity for the
    TLS-like substrate. *)

(** 32-byte MAC. *)
val sha256 : key:bytes -> bytes -> bytes

(** Simple HKDF-like expansion: [derive ~secret ~label ~len]. *)
val derive : secret:bytes -> label:string -> len:int -> bytes
