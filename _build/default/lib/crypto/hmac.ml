let block_size = 64

let sha256 ~key msg =
  let key = if Bytes.length key > block_size then Sha256.digest key else key in
  let pad c =
    let b = Bytes.make block_size c in
    Bytes.iteri (fun i k -> Bytes.set b i (Char.chr (Char.code k lxor Char.code c))) key;
    b
  in
  let ipad = pad '\x36' and opad = pad '\x5c' in
  Sha256.digest (Bytes.cat opad (Sha256.digest (Bytes.cat ipad msg)))

let derive ~secret ~label ~len =
  let out = Buffer.create len in
  let counter = ref 0 in
  while Buffer.length out < len do
    incr counter;
    let info = Bytes.of_string (Printf.sprintf "%s:%d" label !counter) in
    Buffer.add_bytes out (sha256 ~key:secret info)
  done;
  Bytes.sub (Buffer.to_bytes out) 0 len
