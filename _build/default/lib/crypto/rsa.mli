(** Textbook RSA over {!Bignum} — the public-key piece of the TLS-like
    handshake. Key sizes here are deliberately small (test-speed), and the
    scheme is unpadded: this is a substrate for the isolation experiments,
    not production cryptography. *)

type public = { n : Bignum.t; e : Bignum.t }

type secret = { n : Bignum.t; d : Bignum.t }
(** The private exponent — the data the paper's OpenSSL case study
    isolates with libmpk. *)

type keypair = { public : public; secret : secret }

(** [generate prng ~bits] — modulus of roughly [bits] bits (two
    [bits/2]-bit primes), e = 65537. *)
val generate : Mpk_util.Prng.t -> bits:int -> keypair

(** [encrypt pub m] — [m] must be < n. *)
val encrypt : public -> Bignum.t -> Bignum.t

val decrypt : secret -> Bignum.t -> Bignum.t

(** Byte-level convenience: message length must be < modulus bytes. *)
val encrypt_bytes : public -> bytes -> bytes

val decrypt_bytes : secret -> bytes -> bytes

(** [decrypt_bytes_padded sec ct ~len] — like [decrypt_bytes] but
    left-padded to exactly [len] bytes (plain [Bignum.to_bytes] strips
    leading zero bytes, which would corrupt fixed-length plaintexts). *)
val decrypt_bytes_padded : secret -> bytes -> len:int -> bytes

(** [sign sec msg] — hash-then-sign: SHA-256 of [msg], interpreted as a
    number mod n, raised to the private exponent. *)
val sign : secret -> bytes -> bytes

(** [verify pub ~msg ~signature] — recompute and compare. *)
val verify : public -> msg:bytes -> signature:bytes -> bool

(** Miller-Rabin with [rounds] bases (exposed for tests). *)
val probably_prime : Mpk_util.Prng.t -> ?rounds:int -> Bignum.t -> bool
