lib/crypto/bignum.ml: Array Buffer Bytes Char Format Int List Mpk_util Printf String
