lib/crypto/hmac.mli:
