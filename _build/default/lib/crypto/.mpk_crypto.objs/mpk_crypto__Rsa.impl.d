lib/crypto/rsa.ml: Bignum Bytes List Sha256
