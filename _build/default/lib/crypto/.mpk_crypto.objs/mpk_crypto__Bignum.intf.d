lib/crypto/bignum.mli: Format Mpk_util
