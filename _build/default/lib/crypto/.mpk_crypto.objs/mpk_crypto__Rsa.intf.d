lib/crypto/rsa.mli: Bignum Mpk_util
