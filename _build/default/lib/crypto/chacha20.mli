(** ChaCha20 stream cipher (RFC 8439), the session cipher of the TLS-like
    substrate. Encryption and decryption are the same operation. *)

(** [crypt ~key ~nonce ~counter data] — [key] is 32 bytes, [nonce] 12
    bytes. Raises [Invalid_argument] on bad sizes. *)
val crypt : key:bytes -> nonce:bytes -> ?counter:int -> bytes -> bytes

(** Raw 64-byte keystream block (for tests against RFC vectors). *)
val block : key:bytes -> nonce:bytes -> counter:int -> bytes
