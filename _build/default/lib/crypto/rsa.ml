type public = { n : Bignum.t; e : Bignum.t }
type secret = { n : Bignum.t; d : Bignum.t }
type keypair = { public : public; secret : secret }

let small_primes =
  [ 2; 3; 5; 7; 11; 13; 17; 19; 23; 29; 31; 37; 41; 43; 47; 53; 59; 61; 67; 71; 73; 79; 83; 89; 97 ]

let divisible_by_small n =
  List.exists
    (fun p ->
      let bp = Bignum.of_int p in
      Bignum.compare n bp > 0 && Bignum.is_zero (Bignum.rem n bp))
    small_primes

let probably_prime prng ?(rounds = 16) n =
  if Bignum.compare n Bignum.two < 0 then false
  else if Bignum.equal n Bignum.two then true
  else if not (Bignum.testbit n 0) then false
  else if List.exists (fun p -> Bignum.equal n (Bignum.of_int p)) small_primes then true
  else if divisible_by_small n then false
  else begin
    (* n - 1 = d * 2^r *)
    let n1 = Bignum.sub n Bignum.one in
    let rec strip d r = if Bignum.testbit d 0 then d, r else strip (Bignum.shift_right d 1) (r + 1) in
    let d, r = strip n1 0 in
    let witness a =
      let x = ref (Bignum.mod_pow ~base:a ~exp:d ~modulus:n) in
      if Bignum.equal !x Bignum.one || Bignum.equal !x n1 then false
      else begin
        let composite = ref true in
        (try
           for _ = 1 to r - 1 do
             x := Bignum.rem (Bignum.mul !x !x) n;
             if Bignum.equal !x n1 then begin
               composite := false;
               raise Exit
             end
           done
         with Exit -> ());
        !composite
      end
    in
    let nbits = Bignum.bits n in
    let rec rounds_ok i =
      if i >= rounds then true
      else begin
        let a = Bignum.add Bignum.two (Bignum.rem (Bignum.random prng ~bits:(max 2 (nbits - 1))) (Bignum.sub n (Bignum.of_int 3))) in
        if witness a then false else rounds_ok (i + 1)
      end
    in
    rounds_ok 0
  end

let gen_prime prng ~bits =
  let rec loop () =
    let cand = Bignum.random prng ~bits in
    (* force odd *)
    let cand = if Bignum.testbit cand 0 then cand else Bignum.add cand Bignum.one in
    if probably_prime prng cand then cand else loop ()
  in
  loop ()

let generate prng ~bits =
  let half = max 16 (bits / 2) in
  let e = Bignum.of_int 65537 in
  let rec loop () =
    let p = gen_prime prng ~bits:half in
    let q = gen_prime prng ~bits:half in
    if Bignum.equal p q then loop ()
    else begin
      let n = Bignum.mul p q in
      let phi = Bignum.mul (Bignum.sub p Bignum.one) (Bignum.sub q Bignum.one) in
      match Bignum.invmod e phi with
      | Some d -> { public = { n; e }; secret = { n; d } }
      | None -> loop ()
    end
  in
  loop ()

let encrypt (pub : public) m =
  if Bignum.compare m pub.n >= 0 then invalid_arg "Rsa.encrypt: message too large";
  Bignum.mod_pow ~base:m ~exp:pub.e ~modulus:pub.n

let decrypt (sec : secret) c = Bignum.mod_pow ~base:c ~exp:sec.d ~modulus:sec.n

let encrypt_bytes (pub : public) msg =
  let m = Bignum.of_bytes msg in
  let nbytes = (Bignum.bits pub.n + 7) / 8 in
  if Bytes.length msg >= nbytes then invalid_arg "Rsa.encrypt_bytes: message too long";
  Bignum.to_bytes_padded (encrypt pub m) ~len:nbytes

let decrypt_bytes sec ct = Bignum.to_bytes (decrypt sec (Bignum.of_bytes ct))

let decrypt_bytes_padded sec ct ~len =
  Bignum.to_bytes_padded (decrypt sec (Bignum.of_bytes ct)) ~len

(* The digest is reduced mod n before signing so small test moduli work;
   verification recomputes the same reduction. *)
let digest_mod n msg = Bignum.rem (Bignum.of_bytes (Sha256.digest msg)) n

let sign (sec : secret) msg =
  let nbytes = (Bignum.bits sec.n + 7) / 8 in
  Bignum.to_bytes_padded
    (Bignum.mod_pow ~base:(digest_mod sec.n msg) ~exp:sec.d ~modulus:sec.n)
    ~len:nbytes

let verify (pub : public) ~msg ~signature =
  let s = Bignum.of_bytes signature in
  Bignum.compare s pub.n < 0
  && Bignum.equal
       (Bignum.mod_pow ~base:s ~exp:pub.e ~modulus:pub.n)
       (digest_mod pub.n msg)
