(** SHA-256 (FIPS 180-4), implemented from scratch for the TLS-like
    substrate. *)

(** 32-byte digest. *)
val digest : bytes -> bytes

val digest_string : string -> bytes

(** Lowercase hex of [digest]. *)
val hex : bytes -> string
