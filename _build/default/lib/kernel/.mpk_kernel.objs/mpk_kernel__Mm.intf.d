lib/kernel/mm.mli: Cpu Mmu Mpk_hw Page_table Perm Physmem Pkey Vma
