lib/kernel/task.mli: Cpu Mpk_hw Pkru
