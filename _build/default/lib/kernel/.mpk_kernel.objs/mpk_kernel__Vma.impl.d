lib/kernel/vma.ml: Int List Map Mpk_hw Perm Pkey Seq
