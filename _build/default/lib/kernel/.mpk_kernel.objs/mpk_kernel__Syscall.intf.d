lib/kernel/syscall.mli: Mpk_hw Perm Pkey Pkru Proc Task
