lib/kernel/vma.mli: Mpk_hw Perm Pkey
