lib/kernel/pkey_bitmap.mli: Mpk_hw Pkey
