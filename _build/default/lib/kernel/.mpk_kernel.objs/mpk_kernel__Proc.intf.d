lib/kernel/proc.mli: Machine Mm Mmu Mpk_hw Pkey Pkey_bitmap Sched Task
