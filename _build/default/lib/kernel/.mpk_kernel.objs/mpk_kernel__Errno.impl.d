lib/kernel/errno.ml: Printf
