lib/kernel/proc.ml: Machine Mm Mpk_hw Pkey Pkey_bitmap Sched Task
