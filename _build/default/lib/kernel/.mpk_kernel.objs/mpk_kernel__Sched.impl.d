lib/kernel/sched.ml: Cpu Machine Mpk_hw Task Tlb
