lib/kernel/task.ml: Cpu Mpk_hw Pkru Queue
