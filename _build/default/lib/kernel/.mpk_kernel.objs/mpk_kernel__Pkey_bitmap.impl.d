lib/kernel/pkey_bitmap.ml: Errno Mpk_hw Pkey
