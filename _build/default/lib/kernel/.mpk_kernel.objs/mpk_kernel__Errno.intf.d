lib/kernel/errno.mli:
