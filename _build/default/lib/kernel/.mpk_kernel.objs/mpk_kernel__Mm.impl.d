lib/kernel/mm.ml: Array Buffer Costs Cpu Errno List Mmu Mpk_hw Page_table Perm Physmem Pkey Printf Pte Tlb Vma
