lib/kernel/sched.mli: Machine Mpk_hw Task
