lib/kernel/syscall.ml: Cpu Errno List Mm Mpk_hw Perm Pkey Pkey_bitmap Pkru Proc Sched Task
