open Mpk_hw

module IntMap = Map.Make (Int)

type attrs = { prot : Perm.t; pkey : Pkey.t }

type vma = { start : int; pages : int; attrs : attrs }

type t = { mutable areas : vma IntMap.t }

let attrs_equal a b = Perm.equal a.prot b.prot && Pkey.equal a.pkey b.pkey

let create () = { areas = IntMap.empty }

let count t = IntMap.cardinal t.areas

let to_list t = IntMap.fold (fun _ v acc -> v :: acc) t.areas [] |> List.rev

let vend v = v.start + v.pages

(* Last area starting at or before [vpn]. *)
let floor_area t vpn =
  match IntMap.find_last_opt (fun s -> s <= vpn) t.areas with
  | Some (_, v) -> Some v
  | None -> None

let find t vpn =
  match floor_area t vpn with
  | Some v when vpn < vend v -> Some v
  | Some _ | None -> None

let overlapping t ~start ~pages =
  let stop = start + pages in
  let seq = IntMap.to_seq t.areas in
  Seq.filter_map
    (fun (_, v) -> if v.start < stop && vend v > start then Some v else None)
    seq
  |> List.of_seq

let covered t ~start ~pages =
  let rec check vpn =
    if vpn >= start + pages then true
    else
      match find t vpn with
      | None -> false
      | Some v -> check (vend v)
  in
  pages > 0 && check start

let insert t v = t.areas <- IntMap.add v.start v t.areas

let delete t v = t.areas <- IntMap.remove v.start t.areas

let add t ~start ~pages attrs =
  if pages <= 0 then invalid_arg "Vma.add: pages must be positive";
  (match overlapping t ~start ~pages with
  | [] -> ()
  | _ -> invalid_arg "Vma.add: overlaps an existing area");
  (* Merge with adjacent equal-attribute neighbours, as Linux does for
     compatible anonymous mappings. *)
  let start, pages =
    match find t (start - 1) with
    | Some left when vend left = start && attrs_equal left.attrs attrs ->
        delete t left;
        left.start, left.pages + pages
    | Some _ | None -> start, pages
  in
  let pages =
    match IntMap.find_opt (start + pages) t.areas with
    | Some right when attrs_equal right.attrs attrs ->
        delete t right;
        pages + right.pages
    | Some _ | None -> pages
  in
  insert t { start; pages; attrs }

(* Split [v] so that [vpn] starts a new area; returns nothing if [vpn] is
   already a boundary. *)
let split_at t vpn =
  match find t vpn with
  | Some v when v.start < vpn ->
      delete t v;
      insert t { v with pages = vpn - v.start };
      insert t { start = vpn; pages = vend v - vpn; attrs = v.attrs };
      true
  | Some _ | None -> false

let remove_range t ~start ~pages =
  if pages <= 0 then invalid_arg "Vma.remove_range: pages must be positive";
  let stop = start + pages in
  ignore (split_at t start);
  ignore (split_at t stop);
  let doomed = overlapping t ~start ~pages in
  List.iter (delete t) doomed;
  doomed

let merge_neighbours t vpn =
  (* Try to merge the area containing [vpn] with its left neighbour. *)
  match find t vpn with
  | None -> false
  | Some v -> (
      match find t (v.start - 1) with
      | Some left when vend left = v.start && attrs_equal left.attrs v.attrs ->
          delete t left;
          delete t v;
          insert t { left with pages = left.pages + v.pages };
          true
      | Some _ | None -> false)

let set_attrs t ~start ~pages f =
  if pages <= 0 then invalid_arg "Vma.set_attrs: pages must be positive";
  if not (covered t ~start ~pages) then
    invalid_arg "Vma.set_attrs: range not fully covered";
  let stop = start + pages in
  let splits = ref 0 in
  if split_at t start then incr splits;
  if split_at t stop then incr splits;
  let targets = overlapping t ~start ~pages in
  List.iter
    (fun v ->
      delete t v;
      insert t { v with attrs = f v.attrs })
    targets;
  let touched = List.length targets in
  let merges = ref 0 in
  (* Merge across the whole affected neighbourhood, including both edges. *)
  List.iter
    (fun vpn -> if merge_neighbours t vpn then incr merges)
    (start :: List.map (fun v -> v.start) targets @ [ stop ]);
  touched, !splits, !merges

let invariant t =
  let ok = ref true in
  let prev = ref None in
  IntMap.iter
    (fun start v ->
      if start <> v.start || v.pages <= 0 then ok := false;
      (match !prev with
      | Some p ->
          if vend p > v.start then ok := false;
          if vend p = v.start && attrs_equal p.attrs v.attrs then ok := false
      | None -> ());
      prev := Some v)
    t.areas;
  !ok
