open Mpk_hw

type t = { machine : Machine.t; mutable tasks : Task.t list; mutable next_id : int }

let create machine = { machine; tasks = []; next_id = 0 }

let machine t = t.machine

let return_to_user task = Task.work_run task

let schedule_in _t task =
  match Task.state task with
  | Task.On_cpu -> ()
  | Task.Off_cpu ->
      let core = Task.core task in
      Cpu.charge core (Cpu.costs core).context_switch;
      Cpu.set_pkru_direct core (Task.saved_pkru task);
      Task.set_state task On_cpu;
      return_to_user task

let schedule_out _t task =
  match Task.state task with
  | Task.Off_cpu -> ()
  | Task.On_cpu ->
      let core = Task.core task in
      Cpu.charge core (Cpu.costs core).context_switch;
      Task.set_saved_pkru task (Cpu.pkru core);
      Task.set_state task Off_cpu

let spawn t ~core_id =
  let core = Machine.core t.machine core_id in
  let task = Task.create ~id:t.next_id ~core () in
  t.next_id <- t.next_id + 1;
  t.tasks <- t.tasks @ [ task ];
  schedule_in t task;
  task

let tasks t = t.tasks

let kick _t ~from target =
  let sender = Task.core from in
  Cpu.charge sender (Cpu.costs sender).ipi_send;
  match Task.state target with
  | Task.Off_cpu -> ()  (* lazy: work runs when it is next scheduled *)
  | Task.On_cpu ->
      let core = Task.core target in
      Cpu.charge core (Cpu.costs core).ipi_receive;
      return_to_user target

let shootdown _t ~from target =
  match Task.state target with
  | Task.Off_cpu -> ()
  | Task.On_cpu ->
      let sender = Task.core from in
      let costs = Cpu.costs sender in
      (* The initiator spin-waits for the acknowledgement. *)
      Cpu.charge sender (costs.ipi_send +. costs.ipi_receive);
      let core = Task.core target in
      Cpu.charge core (Cpu.costs core).ipi_receive;
      Tlb.flush_all (Cpu.tlb core)
