open Mpk_hw

type state = On_cpu | Off_cpu

type t = {
  id : int;
  core : Cpu.t;
  mutable state : state;
  mutable saved_pkru : Pkru.t;
  work : (t -> unit) Queue.t;
}

let create ~id ~core () =
  { id; core; state = Off_cpu; saved_pkru = Pkru.init; work = Queue.create () }

let id t = t.id
let core t = t.core
let state t = t.state
let set_state t s = t.state <- s

let pkru t =
  match t.state with
  | On_cpu -> Cpu.pkru t.core
  | Off_cpu -> t.saved_pkru

let set_pkru t v =
  match t.state with
  | On_cpu -> Cpu.set_pkru_direct t.core v
  | Off_cpu -> t.saved_pkru <- v

let saved_pkru t = t.saved_pkru
let set_saved_pkru t v = t.saved_pkru <- v

let work_add t f = Queue.add f t.work

let work_pending t = Queue.length t.work

let work_run t =
  let costs = Cpu.costs t.core in
  while not (Queue.is_empty t.work) do
    let f = Queue.pop t.work in
    Cpu.charge t.core costs.task_work_run;
    f t
  done
