(** A process: one address space, a protection-key bitmap, and its tasks.
    The simulated machine can host several processes (used by the SDCG
    comparison), each with private page tables. *)

open Mpk_hw

type t

val create : Machine.t -> t

val machine : t -> Machine.t
val mm : t -> Mm.t
val mmu : t -> Mmu.t
val sched : t -> Sched.t
val pkey_bitmap : t -> Pkey_bitmap.t

(** Tasks of this process, in spawn order. *)
val tasks : t -> Task.t list

(** [spawn t ~core_id] creates a thread scheduled on the given core. The
    new thread inherits the PKRU value of [inherit_from] if given
    (Linux semantics: fork/clone copies PKRU). *)
val spawn : t -> ?inherit_from:Task.t -> core_id:int -> unit -> Task.t

(** The execute-only protection key, allocated lazily by the first
    [mprotect(PROT_EXEC)] (mirrors Linux's [execute_only_pkey]). *)
val xonly_key : t -> Pkey.t option

val set_xonly_key : t -> Pkey.t -> unit
