open Mpk_hw

type t = {
  machine : Machine.t;
  mm : Mm.t;
  sched : Sched.t;
  pkeys : Pkey_bitmap.t;
  mutable xonly : Pkey.t option;
}

let create machine =
  {
    machine;
    mm = Mm.create (Machine.mem machine);
    sched = Sched.create machine;
    pkeys = Pkey_bitmap.create ();
    xonly = None;
  }

let machine t = t.machine
let mm t = t.mm
let mmu t = Mm.mmu t.mm
let sched t = t.sched
let pkey_bitmap t = t.pkeys
let tasks t = Sched.tasks t.sched

let spawn t ?inherit_from ~core_id () =
  let task = Sched.spawn t.sched ~core_id in
  (match inherit_from with
  | Some parent -> Task.set_pkru task (Task.pkru parent)
  | None -> ());
  task

let xonly_key t = t.xonly
let set_xonly_key t k = t.xonly <- Some k
