(** Virtual memory areas: a sorted, non-overlapping interval map keyed by
    virtual page number, with the split/merge behaviour of Linux's VMA
    tree. [mprotect]'s cost profile (per-VMA work, split at partial
    overlaps, merge of equal neighbours) comes from here. *)

open Mpk_hw

type attrs = { prot : Perm.t; pkey : Pkey.t }

type vma = { start : int; pages : int; attrs : attrs }
(** [start] is a vpn; the area covers vpns [start, start + pages). *)

type t

val create : unit -> t

val count : t -> int
val to_list : t -> vma list

(** [add t ~start ~pages attrs] inserts a fresh area. Raises
    [Invalid_argument] if it overlaps an existing one. *)
val add : t -> start:int -> pages:int -> attrs -> unit

(** [find t vpn] is the area containing [vpn], if any. *)
val find : t -> int -> vma option

(** [overlapping t ~start ~pages] — areas intersecting the range,
    ascending. *)
val overlapping : t -> start:int -> pages:int -> vma list

(** [covered t ~start ~pages] — true when every page of the range belongs
    to some area. *)
val covered : t -> start:int -> pages:int -> bool

(** [remove_range t ~start ~pages] unmaps a range, splitting areas that
    straddle its edges. Returns the removed (sub)areas. *)
val remove_range : t -> start:int -> pages:int -> vma list

(** [set_attrs t ~start ~pages f] rewrites attributes over the range,
    splitting boundary areas as needed and merging equal neighbours
    afterwards. Returns [(vmas_touched, splits, merges)] for cost
    accounting. The range must be fully covered. *)
val set_attrs : t -> start:int -> pages:int -> (attrs -> attrs) -> int * int * int

(** Internal-consistency check: sorted, non-overlapping, positive length,
    no two mergeable neighbours. *)
val invariant : t -> bool
