type t = EINVAL | ENOMEM | ENOSPC | EACCES | ENOENT | EPERM

exception Error of t * string

let to_string = function
  | EINVAL -> "EINVAL"
  | ENOMEM -> "ENOMEM"
  | ENOSPC -> "ENOSPC"
  | EACCES -> "EACCES"
  | ENOENT -> "ENOENT"
  | EPERM -> "EPERM"

let fail errno fmt = Printf.ksprintf (fun msg -> raise (Error (errno, msg))) fmt
