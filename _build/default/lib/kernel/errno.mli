(** Kernel error codes surfaced by the simulated syscalls. *)

type t =
  | EINVAL  (** bad argument (unaligned address, bad key, ...) *)
  | ENOMEM  (** out of memory / address space *)
  | ENOSPC  (** no free protection key *)
  | EACCES  (** permission denied *)
  | ENOENT  (** no such mapping *)
  | EPERM  (** operation not permitted *)

exception Error of t * string

val to_string : t -> string

(** [fail errno fmt ...] raises [Error] with a formatted message. *)
val fail : t -> ('a, unit, string, 'b) format4 -> 'a
