(** ApacheBench-style load driver for {!Tls_server} (paper Fig 11).

    [clients] concurrent connections, [requests] total, one handshake per
    connection and [requests/clients] requests per connection. Each
    worker thread runs on its own simulated core; throughput is computed
    from the makespan of the busiest core. *)

open Mpk_kernel

type result = {
  requests : int;
  makespan_cycles : float;
  throughput_rps : float;  (** requests per second at [ghz] *)
  mb_per_s : float;  (** payload throughput *)
}

(** [run server workers ~clients ~requests ~size ()] — [workers] are the
    server's tasks (one per core). [per_conn] requests share one
    handshake (default 1: ApacheBench without keep-alive — a full TLS
    handshake per request). *)
val run :
  Tls_server.t -> Task.t list -> clients:int -> requests:int -> size:int ->
  ?per_conn:int -> ?ghz:float -> unit -> result
