lib/secstore/keystore.mli: Libmpk Mpk_crypto Mpk_kernel Proc Task
