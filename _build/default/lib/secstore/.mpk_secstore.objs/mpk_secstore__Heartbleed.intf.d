lib/secstore/heartbleed.mli: Keystore Mpk_kernel Task
