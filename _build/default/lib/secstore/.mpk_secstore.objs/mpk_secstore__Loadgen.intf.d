lib/secstore/loadgen.mli: Mpk_kernel Task Tls_server
