lib/secstore/keystore.ml: Bignum Bytes Libmpk Mmu Mpk_crypto Mpk_hw Mpk_kernel Perm Physmem Proc Rsa Syscall Task
