lib/secstore/tls_server.ml: Bytes Chacha20 Char Cpu Hmac Keystore Mpk_crypto Mpk_hw Mpk_kernel Mpk_util Proc Rsa Task
