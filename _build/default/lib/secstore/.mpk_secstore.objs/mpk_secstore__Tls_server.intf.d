lib/secstore/tls_server.mli: Keystore Libmpk Mpk_kernel Mpk_util Proc Task
