lib/secstore/heartbleed.ml: Bytes Keystore Mmu Mpk_crypto Mpk_hw Mpk_kernel Proc Task
