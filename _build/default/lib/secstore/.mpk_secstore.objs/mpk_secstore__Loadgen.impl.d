lib/secstore/loadgen.ml: Array Cpu Float List Mpk_hw Mpk_kernel Mpk_util Task Tls_server
