(** The paper's §6.1 Heartbleed re-creation: a heartbeat-style echo
    endpoint that trusts the client's claimed payload length. With the
    keystore in [Insecure] mode the over-read leaks the private key; in
    [Protected] mode it dies with a protection-key fault. *)

open Mpk_kernel

type outcome =
  | Leaked of bytes  (** the attacker got this many bytes back *)
  | Crashed of string  (** the fault that killed the request *)

(** [echo ks task ~payload ~claimed_len] — copies [payload] into a request
    buffer adjacent to the key material, then "echoes" [claimed_len]
    bytes starting at the buffer (the bug: no bounds check). *)
val echo : Keystore.t -> Task.t -> payload:bytes -> claimed_len:int -> outcome

(** [leaks_secret ks outcome] — true when the echoed bytes contain the
    serialized private key. *)
val leaks_secret : Keystore.t -> Task.t -> outcome -> bool
