open Mpk_hw
open Mpk_kernel

type result = {
  requests : int;
  makespan_cycles : float;
  throughput_rps : float;
  mb_per_s : float;
}

let run server workers ~clients ~requests ~size ?(per_conn = 1) ?(ghz = 2.4) () =
  (match workers with [] -> invalid_arg "Loadgen.run: no workers" | _ -> ());
  ignore clients;  (* concurrency is bounded by the worker pool *)
  let workers = Array.of_list workers in
  let nworkers = Array.length workers in
  let start = Array.map (fun w -> Cpu.cycles (Task.core w)) workers in
  let prng = Mpk_util.Prng.create ~seed:0x10adL in
  let served = ref 0 in
  let conn = ref 0 in
  while !served < requests do
    (* Least-loaded worker picks up the next connection. *)
    let w = ref 0 in
    for i = 1 to nworkers - 1 do
      if
        Cpu.cycles (Task.core workers.(i)) -. start.(i)
        < Cpu.cycles (Task.core workers.(!w)) -. start.(!w)
      then w := i
    done;
    let task = workers.(!w) in
    let blob, _ckey = Tls_server.client_hello server prng in
    let session = Tls_server.accept server task blob in
    let n = min per_conn (requests - !served) in
    for _ = 1 to n do
      ignore (Tls_server.serve server task session ~size)
    done;
    served := !served + n;
    incr conn
  done;
  let makespan =
    Array.to_list workers
    |> List.mapi (fun i w -> Cpu.cycles (Task.core w) -. start.(i))
    |> List.fold_left Float.max 0.0
  in
  let seconds = makespan /. (ghz *. 1e9) in
  {
    requests;
    makespan_cycles = makespan;
    throughput_rps = (if seconds > 0.0 then float_of_int requests /. seconds else 0.0);
    mb_per_s =
      (if seconds > 0.0 then float_of_int requests *. float_of_int size /. (seconds *. 1e6)
       else 0.0);
  }
