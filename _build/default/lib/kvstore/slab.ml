let slab_bytes = 1 lsl 20
let min_chunk = 64
let max_chunk = 64 * 1024

type slab_class = {
  chunk : int;
  mutable free_chunks : int list;
  mutable slabs : int;  (* slabs assigned to this class *)
}

type t = {
  base : int;
  len : int;
  mutable next_slab : int;  (* offset of the next virgin slab *)
  classes : slab_class array;
  live : (int, int) Hashtbl.t;  (* chunk addr -> class index *)
}

let class_count =
  let rec count c n = if c >= max_chunk then n + 1 else count (c * 2) (n + 1) in
  count min_chunk 0

let class_of_index i = min_chunk lsl i

let class_index_of_size size =
  let rec scan i = if class_of_index i >= size || i = class_count - 1 then i else scan (i + 1) in
  if size > max_chunk then invalid_arg "Slab: size exceeds the largest class";
  scan 0

let class_of_size size = class_of_index (class_index_of_size size)

let create ~base ~len =
  if len < slab_bytes then invalid_arg "Slab.create: region smaller than one slab";
  {
    base;
    len;
    next_slab = 0;
    classes = Array.init class_count (fun i -> { chunk = class_of_index i; free_chunks = []; slabs = 0 });
    live = Hashtbl.create 1024;
  }

(* Assign a virgin slab to a class, splitting it into chunks. *)
let grow_class t idx =
  if t.next_slab + slab_bytes > t.len then false
  else begin
    let cls = t.classes.(idx) in
    let slab_base = t.base + t.next_slab in
    t.next_slab <- t.next_slab + slab_bytes;
    cls.slabs <- cls.slabs + 1;
    let chunks = slab_bytes / cls.chunk in
    for i = chunks - 1 downto 0 do
      cls.free_chunks <- (slab_base + (i * cls.chunk)) :: cls.free_chunks
    done;
    true
  end

let alloc t ~size =
  if size <= 0 then invalid_arg "Slab.alloc: size must be positive";
  let idx = class_index_of_size size in
  let cls = t.classes.(idx) in
  let take () =
    match cls.free_chunks with
    | addr :: rest ->
        cls.free_chunks <- rest;
        Hashtbl.replace t.live addr idx;
        Some addr
    | [] -> None
  in
  match take () with
  | Some addr -> Some addr
  | None -> if grow_class t idx then take () else None

let free t ~addr =
  match Hashtbl.find_opt t.live addr with
  | None -> invalid_arg "Slab.free: not an allocated chunk"
  | Some idx ->
      Hashtbl.remove t.live addr;
      let cls = t.classes.(idx) in
      cls.free_chunks <- addr :: cls.free_chunks

let allocated_chunks t = Hashtbl.length t.live

let allocated_bytes t =
  Hashtbl.fold (fun _ idx acc -> acc + class_of_index idx) t.live 0

let slabs_in_use t = Array.fold_left (fun acc c -> acc + c.slabs) 0 t.classes

let invariant t =
  let in_region addr chunk = addr >= t.base && addr + chunk <= t.base + t.len in
  let live_ok =
    Hashtbl.fold (fun addr idx acc -> acc && in_region addr (class_of_index idx)) t.live true
  in
  (* no chunk is both live and free *)
  let free_ok =
    Array.for_all
      (fun cls -> List.for_all (fun a -> not (Hashtbl.mem t.live a) && in_region a cls.chunk) cls.free_chunks)
      t.classes
  in
  live_ok && free_ok && t.next_slab <= t.len
