(** A Memcached-style slab allocator over a region of simulated memory
    (paper §5.3: the slabs holding actual values are what libmpk
    protects).

    The region is carved into 1 MiB slabs, each dedicated to a power-of-
    two size class (64 B .. 64 KiB). Chunk bookkeeping lives library-side
    — the protected payload is the item data in simulated memory. *)

type t

val slab_bytes : int
val min_chunk : int
val max_chunk : int

(** [create ~base ~len] — manage [len] bytes starting at [base]. *)
val create : base:int -> len:int -> t

(** [alloc t ~size] — address of a chunk whose class fits [size], or
    [None] when the region is exhausted for that class. *)
val alloc : t -> size:int -> int option

(** [free t ~addr] — return a chunk; raises [Invalid_argument] on a bad
    or double free. *)
val free : t -> addr:int -> unit

(** The size class (chunk size) serving [size]. *)
val class_of_size : int -> int

val allocated_chunks : t -> int
val allocated_bytes : t -> int
val slabs_in_use : t -> int

(** Chunks never overlap and lie inside the region. *)
val invariant : t -> bool
