(** The Memcached text protocol (the subset twemperf exercises):
    [set]/[get]/[delete]/[stats], with [\r\n] framing. Parsing is what a
    real server does before touching the protected store, so the
    simulated request path has the same shape. *)

type request =
  | Set of { key : string; flags : int; exptime : int; data : bytes }
  | Get of string
  | Delete of string
  | Stats

type response =
  | Stored
  | Value of { key : string; flags : int; data : bytes }
  | Not_found
  | Deleted
  | End_
  | Stats_reply of (string * string) list
  | Server_error of string

(** [parse_request s] — one complete request (command line and, for
    [set], the data block). *)
val parse_request : string -> (request, string) result

val render_request : request -> string
val render_response : response -> string

(** [parse_response s] — for client-side tests. *)
val parse_response : string -> (response, string) result
