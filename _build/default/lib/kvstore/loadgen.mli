(** twemperf-style connection generator (paper Fig 14).

    Connections arrive at a fixed rate; each carries [reqs_per_conn]
    requests (the paper: 10). Arrivals go to the least-loaded worker; a
    connection that would wait longer than [max_delay_s] in the accept
    queue is dropped and counted unhandled — the figure's second panel. *)

type result = {
  offered_conns : int;
  handled_conns : int;
  unhandled_conns : int;
  requests : int;
  data_bytes : int;
  duration_s : float;
  throughput_rps : float;
  data_mb_s : float;
}

(** [run server ~conn_rate ~duration_s ~reqs_per_conn ~value_size ()] —
    90% gets / 10% sets over a working set preloaded by the caller. With
    [protocol:true] every request travels as Memcached text-protocol
    bytes through [Server.dispatch] (parse + TTL + LRU path) instead of
    the direct API. *)
val run :
  Server.t ->
  conn_rate:int ->
  ?duration_s:float ->
  ?reqs_per_conn:int ->
  ?value_size:int ->
  ?working_set:int ->
  ?max_delay_s:float ->
  ?ghz:float ->
  ?protocol:bool ->
  unit ->
  result
