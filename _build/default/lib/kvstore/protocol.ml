type request =
  | Set of { key : string; flags : int; exptime : int; data : bytes }
  | Get of string
  | Delete of string
  | Stats

type response =
  | Stored
  | Value of { key : string; flags : int; data : bytes }
  | Not_found
  | Deleted
  | End_
  | Stats_reply of (string * string) list
  | Server_error of string

let crlf = "\r\n"

(* Split off the first CRLF-terminated line; returns (line, rest). *)
let split_line s =
  match String.index_opt s '\r' with
  | Some i when i + 1 < String.length s && s.[i + 1] = '\n' ->
      Ok (String.sub s 0 i, String.sub s (i + 2) (String.length s - i - 2))
  | Some _ | None -> Error "missing CRLF"

let words line = String.split_on_char ' ' line |> List.filter (fun w -> w <> "")

let int_of w = match int_of_string_opt w with Some v -> Some v | None -> None

let valid_key k =
  String.length k > 0 && String.length k <= 250
  && String.for_all (fun c -> c > ' ' && c <> '\127') k

let parse_request s =
  match split_line s with
  | Error e -> Error e
  | Ok (line, rest) -> (
      match words line with
      | [ "get"; key ] when valid_key key -> Ok (Get key)
      | [ "delete"; key ] when valid_key key -> Ok (Delete key)
      | [ "stats" ] -> Ok Stats
      | [ "set"; key; flags; exptime; bytes ] when valid_key key -> (
          match int_of flags, int_of exptime, int_of bytes with
          | Some flags, Some exptime, Some n when n >= 0 ->
              if String.length rest < n + 2 then Error "truncated data block"
              else if String.sub rest n 2 <> crlf then Error "bad data terminator"
              else Ok (Set { key; flags; exptime; data = Bytes.of_string (String.sub rest 0 n) })
          | _ -> Error "bad set arguments")
      | cmd :: _ -> Error (Printf.sprintf "unknown or malformed command %S" cmd)
      | [] -> Error "empty command")

let render_request = function
  | Get key -> Printf.sprintf "get %s%s" key crlf
  | Delete key -> Printf.sprintf "delete %s%s" key crlf
  | Stats -> "stats" ^ crlf
  | Set { key; flags; exptime; data } ->
      Printf.sprintf "set %s %d %d %d%s%s%s" key flags exptime (Bytes.length data) crlf
        (Bytes.to_string data) crlf

let render_response = function
  | Stored -> "STORED" ^ crlf
  | Not_found -> "NOT_FOUND" ^ crlf
  | Deleted -> "DELETED" ^ crlf
  | End_ -> "END" ^ crlf
  | Server_error msg -> Printf.sprintf "SERVER_ERROR %s%s" msg crlf
  | Value { key; flags; data } ->
      Printf.sprintf "VALUE %s %d %d%s%s%sEND%s" key flags (Bytes.length data) crlf
        (Bytes.to_string data) crlf crlf
  | Stats_reply kvs ->
      String.concat ""
        (List.map (fun (k, v) -> Printf.sprintf "STAT %s %s%s" k v crlf) kvs)
      ^ "END" ^ crlf

let parse_response s =
  match split_line s with
  | Error e -> Error e
  | Ok (line, rest) -> (
      match words line with
      | [ "STORED" ] -> Ok Stored
      | [ "NOT_FOUND" ] -> Ok Not_found
      | [ "DELETED" ] -> Ok Deleted
      | [ "END" ] -> Ok End_
      | "SERVER_ERROR" :: msg -> Ok (Server_error (String.concat " " msg))
      | [ "VALUE"; key; flags; bytes ] -> (
          match int_of flags, int_of bytes with
          | Some flags, Some n when n >= 0 && String.length rest >= n ->
              Ok (Value { key; flags; data = Bytes.of_string (String.sub rest 0 n) })
          | _ -> Error "bad VALUE header")
      | "STAT" :: _ ->
          (* collect STAT lines up to END *)
          let rec collect acc s =
            match split_line s with
            | Error e -> Error e
            | Ok (line, rest) -> (
                match words line with
                | [ "END" ] -> Ok (Stats_reply (List.rev acc))
                | [ "STAT"; k; v ] -> collect ((k, v) :: acc) rest
                | _ -> Error "bad stats line")
          in
          collect [] s
      | w :: _ -> Error ("unknown response " ^ w)
      | [] -> Error "empty response")
