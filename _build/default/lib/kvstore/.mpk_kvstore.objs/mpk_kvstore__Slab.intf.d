lib/kvstore/slab.mli:
