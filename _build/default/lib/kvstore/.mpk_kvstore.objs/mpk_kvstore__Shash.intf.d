lib/kvstore/shash.mli: Mpk_kernel Proc Slab Task
