lib/kvstore/server.ml: Array Bytes Cpu Int32 Int64 Libmpk Machine Mm Mpk_hw Mpk_kernel Page_table Perm Physmem Printf Proc Protocol Pte Queue Shash Slab Syscall Task
