lib/kvstore/loadgen.mli: Server
