lib/kvstore/protocol.mli:
