lib/kvstore/shash.ml: Bytes Char Int32 Int64 Mmu Mpk_hw Mpk_kernel Proc Slab String Task
