lib/kvstore/slab.ml: Array Hashtbl List
