lib/kvstore/server.mli: Mpk_kernel Proc Task
