lib/kvstore/protocol.ml: Bytes List Printf String
