lib/kvstore/loadgen.ml: Array Bytes Cpu Float List Mpk_hw Mpk_kernel Mpk_util Printf Protocol Server Task
