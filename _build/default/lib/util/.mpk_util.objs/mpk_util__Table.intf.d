lib/util/table.mli:
