lib/util/stats.mli:
