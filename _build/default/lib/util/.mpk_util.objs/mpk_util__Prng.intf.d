lib/util/prng.mli:
