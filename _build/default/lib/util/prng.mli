(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic choice in the simulator draws from an explicit [t] so
    that experiments and tests are reproducible from a seed. *)

type t

val create : seed:int64 -> t

(** [copy t] is an independent generator with the same state as [t]. *)
val copy : t -> t

(** [next t] is the next raw 64-bit output. *)
val next : t -> int64

(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)
val int : t -> int -> int

(** [float t] is uniform in [\[0, 1)]. *)
val float : t -> float

(** [bool t ~p] is true with probability [p] (clamped to [\[0, 1\]]). *)
val bool : t -> p:float -> bool

(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [split t] derives a fresh, statistically independent generator. *)
val split : t -> t
