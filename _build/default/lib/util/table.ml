type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?aligns ~header rows =
  let ncols = List.length header in
  let aligns =
    match aligns with
    | Some a when List.length a = ncols -> Array.of_list a
    | _ -> Array.make ncols Right
  in
  let normalize row =
    let row = Array.of_list row in
    Array.init ncols (fun i -> if i < Array.length row then row.(i) else "")
  in
  let header = normalize header in
  let rows = List.map normalize rows in
  let widths = Array.map String.length header in
  let widen row = Array.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) row in
  List.iter widen rows;
  let line ch =
    let b = Buffer.create 80 in
    Buffer.add_char b '+';
    Array.iter
      (fun w ->
        Buffer.add_string b (String.make (w + 2) ch);
        Buffer.add_char b '+')
      widths;
    Buffer.contents b
  in
  let fmt_row row =
    let b = Buffer.create 80 in
    Buffer.add_char b '|';
    Array.iteri
      (fun i c ->
        Buffer.add_char b ' ';
        Buffer.add_string b (pad aligns.(i) widths.(i) c);
        Buffer.add_string b " |")
      row;
    Buffer.contents b
  in
  let b = Buffer.create 256 in
  Buffer.add_string b (line '-');
  Buffer.add_char b '\n';
  Buffer.add_string b (fmt_row header);
  Buffer.add_char b '\n';
  Buffer.add_string b (line '=');
  Buffer.add_char b '\n';
  List.iter
    (fun row ->
      Buffer.add_string b (fmt_row row);
      Buffer.add_char b '\n')
    rows;
  Buffer.add_string b (line '-');
  Buffer.contents b

let float_cell x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else if Float.abs x >= 1000.0 then Printf.sprintf "%.1f" x
  else Printf.sprintf "%.3f" x

let series ~title ~x_label ~y_labels points =
  let header = x_label :: y_labels in
  let rows =
    List.map (fun (x, ys) -> x :: List.map float_cell ys) points
  in
  Printf.sprintf "%s\n%s" title (render ~header rows)
