type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

let copy t = { state = t.state }

(* splitmix64 finalizer: Steele, Lea & Flood, "Fast splittable pseudorandom
   number generators" (OOPSLA 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let int t bound =
  assert (bound > 0);
  (* Keep 62 bits so the value fits OCaml's 63-bit int non-negatively. *)
  let r = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  r mod bound

let float t =
  let r = Int64.shift_right_logical (next t) 11 in
  Int64.to_float r /. 9007199254740992.0

let bool t ~p =
  if p >= 1.0 then true
  else if p <= 0.0 then false
  else float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let split t = { state = mix (next t) }
