(** ASCII table and series rendering for experiment reports. *)

type align = Left | Right

(** [render ~header rows] draws a boxed table. Column count is taken from
    [header]; rows shorter than the header are padded with blanks. Columns
    are right-aligned unless [aligns] overrides. *)
val render : ?aligns:align list -> header:string list -> string list list -> string

(** [series ~title ~x_label ~y_labels points] renders a figure-style data
    series: one row per x with one column per named series. *)
val series :
  title:string -> x_label:string -> y_labels:string list ->
  (string * float list) list -> string

(** Format a float compactly: 3 significant decimals, trimming noise. *)
val float_cell : float -> string
