(** A JavaScript-engine stand-in: compiles synthetic hot functions into
    the code cache, patches them (the permission-switch traffic the paper
    measures), and executes them through the MMU's instruction fetch.

    Profiles mirror the engines' mprotect behaviour:
    - [Spidermonkey] avoids unnecessary permission switches (batches
      them), per the Firefox developers' claim cited in §6.3.
    - [Chakracore] re-protects exactly one page per update.
    - [V8] (which originally ships no W⊕X) patches frequently. *)

open Mpk_kernel

type profile = Spidermonkey | Chakracore | V8

val profile_name : profile -> string

(** Fraction of update events that actually flip permissions under this
    profile (1.0 = every update). *)
val switch_ratio : profile -> float

type t

val create :
  profile -> Wx.t -> Proc.t -> Task.t -> ?mpk:Libmpk.t -> ?cache_pages:int -> unit -> t

val cache : t -> Codecache.t
val profile : t -> profile

(** [compile t task ~ops ~seed ?pad_to ()] — synthesize and JIT one hot
    function; returns its name. [pad_to] pads the emitted code to that
    many bytes (real JIT output — inline caches, guards, alignment — is
    far larger than our toy opcodes; the paper observes roughly one
    executable page per hot function). *)
val compile : t -> Task.t -> ops:int -> seed:int -> ?pad_to:int -> unit -> string

(** [patch t task name] — one recompile/patch event on the function's
    page (subject to the profile's switch ratio). *)
val patch : t -> Task.t -> string -> unit

(** [run t task name] — execute the compiled function. *)
val run : t -> Task.t -> string -> int

(** Reference result computed engine-side (for correctness checks). *)
val expected : t -> string -> int
