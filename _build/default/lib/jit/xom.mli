(** XOM-Switch-style execute-only memory (paper §8): harden already-
    loaded code so it can run but never be *read* — defeating the code
    disclosure step of JIT-ROP-style attacks — using libmpk's reserved
    execute-only key instead of raw (unsynchronized) kernel support.

    One virtual key per hardened module; all modules share libmpk's
    reserved execute-only hardware key, so hardening any number of
    modules costs a single key. *)

open Mpk_kernel

type t

type module_info = { name : string; vkey : Libmpk.Vkey.t; base : int; len : int }

val create : Libmpk.t -> t

(** [load t task ~name code] — place [code] into fresh pages (as a
    loader would), returning the module handle. Pages start rw for the
    "relocation" phase. *)
val load : t -> Task.t -> name:string -> bytes -> module_info

(** [seal t task m] — make the module execute-only: every thread can run
    it, no thread can read or write it. *)
val seal : t -> Task.t -> module_info -> unit

(** [unseal t task m] — back to rx (e.g. for re-instrumentation). *)
val unseal : t -> Task.t -> module_info -> unit

(** [execute t task m] — run the module's code through the MMU's
    instruction-fetch path. *)
val execute : t -> Task.t -> module_info -> int

val modules : t -> module_info list
