lib/jit/attack.mli: Wx
