lib/jit/wx.mli:
