lib/jit/codecache.mli: Libmpk Mpk_kernel Proc Task Wx
