lib/jit/xom.mli: Libmpk Mpk_kernel Task
