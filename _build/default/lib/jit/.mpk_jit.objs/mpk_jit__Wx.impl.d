lib/jit/wx.ml:
