lib/jit/octane.ml: Cpu Engine Libmpk List Machine Mpk_hw Mpk_kernel Proc Task Wx
