lib/jit/codecache.ml: Bytes Cpu Hashtbl Libmpk List Machine Mm Mmu Mpk_hw Mpk_kernel Perm Physmem Proc Syscall Task Wx
