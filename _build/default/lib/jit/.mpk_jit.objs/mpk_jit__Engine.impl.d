lib/jit/engine.ml: Bytecode Bytes Codecache Hashtbl Mpk_kernel Mpk_util Proc Task
