lib/jit/attack.ml: Bytecode Codecache Engine Libmpk Machine Mmu Mpk_hw Mpk_kernel Proc Task Wx
