lib/jit/bytecode.mli: Cpu Mmu Mpk_hw
