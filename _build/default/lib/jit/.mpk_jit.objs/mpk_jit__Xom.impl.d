lib/jit/xom.ml: Bytecode Bytes Libmpk Mmu Mpk_hw Mpk_kernel Perm Proc Task
