lib/jit/octane.mli: Engine Wx
