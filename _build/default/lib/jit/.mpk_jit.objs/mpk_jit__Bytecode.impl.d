lib/jit/bytecode.ml: Array Buffer Bytes Char Cpu Int64 List Mmu Mpk_hw Mpk_util Printf
