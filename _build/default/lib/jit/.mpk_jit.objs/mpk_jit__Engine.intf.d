lib/jit/engine.mli: Codecache Libmpk Mpk_kernel Proc Task Wx
