(** An Octane-like benchmark suite (paper Figs 12 and 13).

    Each program is a synthetic JIT workload parameterized by how many
    hot functions it compiles, how often it patches them, and how much it
    executes — the knobs that determine how much permission-switch
    traffic each W⊕X strategy sees. Profiles follow the behaviours the
    paper calls out: SplayLatency allocates many pages it rarely updates
    (bad for key-per-page eviction), Box2D patches a small working set
    intensely (great for libmpk), zlib commits many pages once (the extra
    pkey_mprotect hurts key-per-process). *)

type program = {
  name : string;
  hot_functions : int;  (** pages allocated (one function per page) *)
  patches_per_function : int;
  execs_per_function : int;
  ops : int;  (** instructions per function *)
  script_cycles : float;  (** non-JIT interpreter/GC work per program *)
}

(** The 17 Octane programs. *)
val programs : program list

val find : string -> program

type run = { program : string; cycles : float; score : float }

(** [run_program profile strategy ?reference prog] — execute one program
    under one configuration on a fresh simulated machine. The score is
    [10_000 * reference / cycles]; without an explicit [reference] the
    same program is first measured with no W⊕X protection (so the
    unprotected engine scores 10,000 by construction). *)
val run_program : Engine.profile -> Wx.t -> ?reference:float -> program -> run

(** [measure profile strategy prog] — raw engine-core cycles for one run
    (exposed so callers can share a reference across variants). *)
val measure : Engine.profile -> Wx.t -> program -> float

(** Total score across a list of runs (Octane-style geometric mean,
    scaled). *)
val total_score : run list -> float
