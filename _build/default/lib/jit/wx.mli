(** W⊕X strategies for the code cache (paper §5.2).

    - [No_wx] — the original v8: code pages stay writable+executable.
    - [Mprotect] — the original SpiderMonkey/ChakraCore defence: flip the
      page between rw and rx with [mprotect]; process-global, hence
      vulnerable to the SDCG race.
    - [Key_per_page] — one libmpk virtual key per code page; updates use
      [mpk_begin]/[mpk_end] (thread-local write window).
    - [Key_per_process] — a single virtual key guards the whole cache.
    - [Sdcg] — code emitted by a dedicated process; every update pays an
      RPC round trip (the paper's race-free baseline for v8). *)

type t = No_wx | Mprotect | Key_per_page | Key_per_process | Sdcg

val to_string : t -> string

(** Cycle cost of one SDCG RPC round trip (two context switches plus IPC
    copying). *)
val sdcg_rpc_cycles : float
