(** The JIT substrate's "native code": a tiny stack machine with locals
    and (backward/forward) branches, so hot functions can contain real
    loops.

    [compile] emits opcode bytes; [execute] *fetches* those bytes from
    simulated memory through the MMU (instruction-fetch permission
    checks apply — a non-executable or revoked code page faults), then
    interprets them. *)

open Mpk_hw

type instr =
  | Push of int  (** push a 32-bit immediate *)
  | Add
  | Sub
  | Mul
  | Dup
  | Swap
  | Load of int  (** push local[i], i in [0, 16) *)
  | Store of int  (** pop into local[i] *)
  | Jmp of int  (** absolute byte offset within the function *)
  | Jz of int  (** pop; jump when zero *)
  | Ret  (** return the top of stack *)

type func = { name : string; body : instr list }

val locals : int

(** Encoded size in bytes. *)
val code_size : func -> int

val compile : func -> bytes

(** [eval_host code] — interpret encoded code host-side (no simulated
    memory, no cycle charges): the reference result. *)
val eval_host : bytes -> int

(** [execute mmu cpu ~addr ~len] — fetch + interpret; returns the result.
    Raises [Mmu.Fault] when the page is not executable, and [Failure] on
    malformed code or when [fuel] interpreted instructions are exceeded
    (runaway loops, e.g. after an attacker corrupted the code). *)
val execute : ?fuel:int -> Mmu.t -> Cpu.t -> addr:int -> len:int -> int

(** [synth ~seed ~ops] — a deterministic pseudo-random straight-line
    function with roughly [ops] instructions. *)
val synth : seed:int -> ops:int -> func

(** [synth_loop ~seed ~iters ~body_ops] — a function whose hot loop runs
    [iters] times over [body_ops] arithmetic instructions: execution cost
    scales with [iters] while the code stays small, like real JIT code. *)
val synth_loop : seed:int -> iters:int -> body_ops:int -> func
