type t = No_wx | Mprotect | Key_per_page | Key_per_process | Sdcg

let to_string = function
  | No_wx -> "none"
  | Mprotect -> "mprotect"
  | Key_per_page -> "libmpk-key/page"
  | Key_per_process -> "libmpk-key/process"
  | Sdcg -> "sdcg"

(* Two context switches (~1k cycles each) + pipe/shared-memory transfer
   and wakeup latency. SDCG's measured overhead on Octane was 6.68%. *)
let sdcg_rpc_cycles = 3_700.0
