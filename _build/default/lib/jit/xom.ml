open Mpk_hw
open Mpk_kernel

type module_info = { name : string; vkey : Libmpk.Vkey.t; base : int; len : int }

type t = {
  mpk : Libmpk.t;
  mutable next_vkey : int;
  mutable loaded : module_info list;
}

let vkey_base = 5000  (* module vkeys live in their own namespace *)

let create mpk = { mpk; next_vkey = vkey_base; loaded = [] }

let load t task ~name code =
  let vkey = t.next_vkey in
  t.next_vkey <- t.next_vkey + 1;
  let len = Bytes.length code in
  let base = Libmpk.mpk_mmap t.mpk task ~vkey ~len ~prot:Perm.rw in
  Libmpk.mpk_begin t.mpk task ~vkey ~prot:Perm.rw;
  Mmu.write_bytes (Mpk_kernel.Proc.mmu (Libmpk.proc t.mpk)) (Task.core task) ~addr:base code;
  Libmpk.mpk_end t.mpk task ~vkey;
  let m = { name; vkey; base; len } in
  t.loaded <- m :: t.loaded;
  m

let seal t task m = Libmpk.mpk_mprotect t.mpk task ~vkey:m.vkey ~prot:Perm.x_only

let unseal t task m = Libmpk.mpk_mprotect t.mpk task ~vkey:m.vkey ~prot:Perm.rx

let execute t task m =
  Bytecode.execute (Proc.mmu (Libmpk.proc t.mpk)) (Task.core task) ~addr:m.base ~len:m.len

let modules t = t.loaded
