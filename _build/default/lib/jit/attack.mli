(** The SDCG race-condition attack on JIT code caches (paper §6.1).

    A compromised thread with arbitrary read/write primitives waits for
    the JIT compiler to open a write window on a code page and tries to
    plant shellcode in it. With [mprotect]-based W⊕X the window is
    process-global and the attack lands; with libmpk the window exists
    only in the compiler thread's PKRU and the write faults. *)

type outcome =
  | Injected of int  (** attacker's code executed and returned this *)
  | Blocked of string  (** the write faulted *)

(** [run ~strategy ()] — build a two-thread engine under [strategy],
    launch the racing write during a patch, then execute the function and
    report whether the attacker's payload took effect. *)
val run : strategy:Wx.t -> unit -> outcome

(** The value the attacker's shellcode returns when it wins. *)
val shellcode_marker : int
