(** Hardware protection keys.

    Intel MPK stores a 4-bit key in each PTE, so there are 16 keys. Key 0 is
    the default key assigned to every new page; keys 1-15 are allocatable
    (the paper: "only 15 groups are effective in general"). *)

type t = private int

val count : int

(** The default key carried by freshly mapped pages. *)
val default : t

(** [of_int k] validates [0 <= k < 16]. Raises [Invalid_argument]. *)
val of_int : int -> t

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int

(** All 15 allocatable keys, 1..15. *)
val allocatable : t list

val pp : Format.formatter -> t -> unit
