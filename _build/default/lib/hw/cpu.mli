(** A logical core (hyperthread): PKRU register, TLB, cycle counter, and a
    small pipeline model capturing WRPKRU's serializing behaviour. *)

type t

val create : ?costs:Costs.t -> id:int -> unit -> t

val id : t -> int
val costs : t -> Costs.t
val tlb : t -> Tlb.t

(** Elapsed simulated cycles on this core. *)
val cycles : t -> float

(** [charge t c] advances the core's clock by [c] cycles. *)
val charge : t -> float -> unit

(** [measure t f] is [f ()] together with the cycles it consumed. *)
val measure : t -> (unit -> 'a) -> 'a * float

(* PKRU access. *)

val pkru : t -> Pkru.t

(** [set_pkru_direct t v] updates PKRU without charging cycles — used by
    the kernel when restoring register state on a context switch. *)
val set_pkru_direct : t -> Pkru.t -> unit

(** WRPKRU: serializing write — charges latency and stalls the pipeline. *)
val wrpkru : t -> Pkru.t -> unit

(** RDPKRU: cheap read. *)
val rdpkru : t -> Pkru.t

(* Pipeline model for Fig 2. *)

(** [exec_adds t n] models [n] dependent-free ADD instructions, paying the
    post-serialization refill penalty when applicable. *)
val exec_adds : t -> int -> unit

(** Plain register move (Table 1 reference row). *)
val exec_reg_move : t -> unit
