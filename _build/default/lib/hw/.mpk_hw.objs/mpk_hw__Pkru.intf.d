lib/hw/pkru.mli: Format Perm Pkey
