lib/hw/pkey.ml: Format Int List Printf
