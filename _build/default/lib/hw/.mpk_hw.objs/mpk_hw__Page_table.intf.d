lib/hw/page_table.mli: Perm Pkey Pte
