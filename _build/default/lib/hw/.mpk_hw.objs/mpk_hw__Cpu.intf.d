lib/hw/cpu.mli: Costs Pkru Tlb
