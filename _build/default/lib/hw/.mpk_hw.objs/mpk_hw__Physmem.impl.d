lib/hw/physmem.ml: Bytes Hashtbl Option
