lib/hw/pkey.mli: Format
