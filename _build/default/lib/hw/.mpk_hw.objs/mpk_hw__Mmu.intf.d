lib/hw/mmu.mli: Cpu Page_table Physmem Pte
