lib/hw/costs.ml:
