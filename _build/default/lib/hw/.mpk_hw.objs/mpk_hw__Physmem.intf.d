lib/hw/physmem.mli:
