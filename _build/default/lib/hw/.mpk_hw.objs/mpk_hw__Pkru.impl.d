lib/hw/pkru.ml: Format Int Perm Pkey
