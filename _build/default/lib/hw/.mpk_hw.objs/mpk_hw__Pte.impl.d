lib/hw/pte.ml: Format Int64 Perm Pkey
