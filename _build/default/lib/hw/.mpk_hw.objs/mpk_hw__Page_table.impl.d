lib/hw/page_table.ml: Array Physmem Pkey Pte
