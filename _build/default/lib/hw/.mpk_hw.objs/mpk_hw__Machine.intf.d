lib/hw/machine.mli: Costs Cpu Physmem
