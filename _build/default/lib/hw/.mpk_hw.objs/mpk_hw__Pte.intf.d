lib/hw/pte.mli: Format Perm Physmem Pkey
