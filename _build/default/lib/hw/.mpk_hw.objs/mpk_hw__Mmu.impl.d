lib/hw/mmu.ml: Bytes Cpu Page_table Perm Physmem Pkru Printf Pte Tlb
