lib/hw/machine.ml: Array Costs Cpu Float Physmem Tlb
