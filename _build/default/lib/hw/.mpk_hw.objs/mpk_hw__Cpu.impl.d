lib/hw/cpu.ml: Costs Pkru Tlb
