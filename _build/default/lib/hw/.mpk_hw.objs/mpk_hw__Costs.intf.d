lib/hw/costs.mli:
