type t = int

let count = 16

let default = 0

let of_int k =
  if k < 0 || k >= count then
    invalid_arg (Printf.sprintf "Pkey.of_int: %d not in [0, %d)" k count);
  k

let to_int t = t
let equal = Int.equal
let compare = Int.compare

let allocatable = List.init (count - 1) (fun i -> i + 1)

let pp fmt t = Format.fprintf fmt "pkey:%d" t
