(** Simulated physical memory: a frame allocator plus byte storage.

    Frames are 4 KiB and lazily backed by [Bytes]; a multi-gigabyte
    "physical" memory only costs host RAM for frames actually written. *)

val page_size : int
val page_shift : int

type frame = int

type t

(** [create ~frames] makes a physical memory of [frames] 4 KiB frames. *)
val create : frames:int -> t

val total_frames : t -> int
val frames_in_use : t -> int

(** [alloc_frame t] grabs a zeroed frame with reference count 1. Raises
    [Out_of_memory]. *)
val alloc_frame : t -> frame

(** [ref_frame t f] — one more mapping shares the frame (shared memory
    across page tables). *)
val ref_frame : t -> frame -> unit

(** [free_frame t f] — drop one reference; the frame returns to the free
    list when the last reference dies. *)
val free_frame : t -> frame -> unit

val refcount : t -> frame -> int

val frame_to_int : frame -> int
val frame_of_int : t -> int -> frame

(** Byte access within a frame; [off] in [\[0, page_size)]. *)
val read_byte : t -> frame -> int -> char
val write_byte : t -> frame -> int -> char -> unit
val read_bytes : t -> frame -> int -> int -> bytes
val write_bytes : t -> frame -> int -> bytes -> int -> int -> unit

(** 64-bit little-endian access (must not cross the frame boundary). *)
val read_int64 : t -> frame -> int -> int64
val write_int64 : t -> frame -> int -> int64 -> unit
