type t = int64

let bit_present = 0
let bit_write = 1
let bit_read = 2  (* simulator-local: real x86 has no separate R bit *)
let bit_exec = 3  (* complement of NX, kept low for simplicity *)
let frame_shift = 12
let frame_mask = 0xFFFFFFFFFL (* 36 bits of frame number *)
let pkey_shift = 59
let pkey_mask = 0xFL

let absent = 0L

let bit b = Int64.shift_left 1L b
let test v b = Int64.logand v (bit b) <> 0L

let make ~frame ~perm ~pkey =
  let v = bit bit_present in
  let v = if (perm : Perm.t).read then Int64.logor v (bit bit_read) else v in
  let v = if perm.write then Int64.logor v (bit bit_write) else v in
  let v = if perm.exec then Int64.logor v (bit bit_exec) else v in
  let v =
    Int64.logor v
      (Int64.shift_left (Int64.logand (Int64.of_int frame) frame_mask) frame_shift)
  in
  Int64.logor v
    (Int64.shift_left (Int64.of_int (Pkey.to_int pkey)) pkey_shift)

let is_present t = test t bit_present

let frame t =
  Int64.to_int (Int64.logand (Int64.shift_right_logical t frame_shift) frame_mask)

let perm t : Perm.t =
  { read = test t bit_read; write = test t bit_write; exec = test t bit_exec }

let pkey t =
  Pkey.of_int
    (Int64.to_int (Int64.logand (Int64.shift_right_logical t pkey_shift) pkey_mask))

let with_perm t p = make ~frame:(frame t) ~perm:p ~pkey:(pkey t)
let with_pkey t k = make ~frame:(frame t) ~perm:(perm t) ~pkey:k

let to_int64 t = t
let of_int64 v = v

let pp fmt t =
  if not (is_present t) then Format.pp_print_string fmt "<absent>"
  else
    Format.fprintf fmt "frame:%d perm:%a %a" (frame t) Perm.pp (perm t) Pkey.pp (pkey t)
