(** The PKRU register: 2 bits per protection key.

    Bit [2k] is AD (access disable) and bit [2k+1] is WD (write disable) for
    key [k]. Rights per the paper: (AD,WD) = (0,0) read/write, (0,1)
    read-only, (1,_) no access. Instruction fetch never consults PKRU. *)

type t = private int

type rights = No_access | Read_only | Read_write

(** Linux's initial PKRU: key 0 read/write, keys 1-15 access-disabled
    (0x55555554). *)
val init : t

(** All keys read/write (0x0). *)
val all_access : t

val of_int : int -> t
val to_int : t -> int
val equal : t -> t -> bool

val rights : t -> Pkey.t -> rights
val set_rights : t -> Pkey.t -> rights -> t

(** [rights_of_perm p] maps a page-permission request to PKRU rights: write
    access requires read/write; read-only otherwise; no access when neither
    read nor write is requested. *)
val rights_of_perm : Perm.t -> rights

(** [allows r ~write] whether rights [r] permit a data access. *)
val allows : rights -> write:bool -> bool

val rights_to_string : rights -> string
val pp : Format.formatter -> t -> unit
