type t = { costs : Costs.t; mem : Physmem.t; cores : Cpu.t array }

let create ?(costs = Costs.default) ?(cores = 8) ?(mem_mib = 4096) () =
  if cores <= 0 then invalid_arg "Machine.create: cores must be positive";
  let frames = mem_mib * 1024 * 1024 / Physmem.page_size in
  {
    costs;
    mem = Physmem.create ~frames;
    cores = Array.init cores (fun id -> Cpu.create ~costs ~id ());
  }

let costs t = t.costs
let mem t = t.mem
let core_count t = Array.length t.cores

let core t i =
  if i < 0 || i >= Array.length t.cores then invalid_arg "Machine.core: bad index";
  t.cores.(i)

let cores t = t.cores

let now t = Array.fold_left (fun acc c -> Float.max acc (Cpu.cycles c)) 0.0 t.cores

let flush_all_tlbs t = Array.iter (fun c -> Tlb.flush_all (Cpu.tlb c)) t.cores
