(** Page permissions: the [PROT_READ]/[PROT_WRITE]/[PROT_EXEC] lattice. *)

type t = { read : bool; write : bool; exec : bool }

val none : t
val r : t
val rw : t
val rx : t
val rwx : t
val x_only : t
val w : t

(** Build from flags, mirroring [mprotect]'s [PROT_*] arguments. *)
val make : ?read:bool -> ?write:bool -> ?exec:bool -> unit -> t

val equal : t -> t -> bool

(** [subsumes a b]: every access allowed by [b] is allowed by [a]. *)
val subsumes : t -> t -> bool

(** "rwx"-style rendering, e.g. "rw-", "--x". *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
