(** The simulated machine: a set of logical cores sharing physical memory
    and one cost model. *)

type t

(** [create ~cores ~mem_mib ()] — defaults: 8 cores, 4 GiB. *)
val create : ?costs:Costs.t -> ?cores:int -> ?mem_mib:int -> unit -> t

val costs : t -> Costs.t
val mem : t -> Physmem.t
val core_count : t -> int
val core : t -> int -> Cpu.t
val cores : t -> Cpu.t array

(** Maximum cycle count across cores — the machine's wall clock. *)
val now : t -> float

(** Flush every core's TLB (e.g. after wholesale table swaps in tests). *)
val flush_all_tlbs : t -> unit
