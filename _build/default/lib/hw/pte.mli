(** Page table entries, encoded in 64 bits with the x86-64 MPK layout.

    Bit 0 present, bit 1 writable, bit 63 NX (we store an execute bit and
    encode its complement), bits 12-47 frame number, bits 59-62 the 4-bit
    protection key — the paper notes MPK reuses "previously unused four bits
    of each page table entry" (bits 59-62 of the PTE on real hardware; the
    paper's "32nd to 35th" refers to the PTE's high word). *)

type t = private int64

val absent : t

val make : frame:Physmem.frame -> perm:Perm.t -> pkey:Pkey.t -> t

val is_present : t -> bool
val frame : t -> Physmem.frame
val perm : t -> Perm.t
val pkey : t -> Pkey.t

val with_perm : t -> Perm.t -> t
val with_pkey : t -> Pkey.t -> t

val to_int64 : t -> int64
val of_int64 : int64 -> t
val pp : Format.formatter -> t -> unit
