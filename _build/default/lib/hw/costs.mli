(** Cycle-cost model of the simulated machine.

    Constants are calibrated so that the simulator's microbenchmarks
    reproduce the paper's Table 1 (Intel Xeon Gold 5115, Linux 4.14):
    WRPKRU 23.3 cycles, RDPKRU 0.5, pkey_alloc 186.3, pkey_free 137.2,
    pkey_mprotect 1104.9, mprotect 1094.0. Every field can be overridden to
    run cost-model ablations. *)

type t = {
  (* Instruction-level costs. *)
  add_pipelined : float;  (** amortized ADD cost with full ILP (4-wide) *)
  wrpkru : float;  (** WRPKRU base latency (serializing write) *)
  wrpkru_drain : float;  (** extra per-instruction penalty paid while the
                             pipeline refills after WRPKRU (Fig 2 gap) *)
  pipeline_refill_window : int;  (** instructions executed serially after a
                                     serializing instruction *)
  rdpkru : float;  (** RDPKRU latency, comparable to a register read *)
  reg_move : float;  (** plain register-to-register move *)
  (* Memory-system costs. *)
  tlb_hit : float;
  page_walk : float;  (** 4-level table walk on TLB miss *)
  mem_access : float;  (** cache/DRAM cost of the access itself *)
  tlb_flush_all : float;  (** full TLB invalidation *)
  tlb_flush_page : float;  (** single-page INVLPG *)
  tlb_flush_ceiling : int;  (** pages above which the kernel flushes the
                                whole TLB instead of per-page INVLPG *)
  (* Kernel-path costs. *)
  kernel_entry_exit : float;  (** user->kernel->user domain switch *)
  pkey_alloc_work : float;  (** bitmap scan + PKRU init inside the kernel *)
  pkey_free_work : float;  (** bitmap clear *)
  vma_find : float;  (** VMA tree lookup *)
  vma_split_merge : float;  (** one VMA split or merge *)
  vma_update : float;  (** flag/prot update of one VMA *)
  pte_scan : float;  (** visiting one page-table slot during
                         change_protection, present or not *)
  pte_update : float;  (** rewriting one *present* PTE — absent entries
                           cost only the scan, which is what makes
                           mprotect cheap on untouched mappings and
                           expensive on populated ones *)
  page_fault : float;  (** demand-paging fault: delivery + frame
                           allocation + PTE install *)
  (* Multi-thread machinery. *)
  ipi_send : float;  (** cost to the sender of one IPI *)
  ipi_receive : float;  (** cost to the receiver core *)
  task_work_add : float;  (** enqueue one task_work callback *)
  task_work_run : float;  (** run one callback at return-to-user *)
  context_switch : float;
}

(** Calibrated default (see DESIGN.md section 4). *)
val default : t

(** mprotect/pkey_mprotect kernel-side cost on [vmas] VMAs covering
    [pages] slots of which [present] hold live PTEs, excluding entry/exit,
    TLB flush and shootdown. *)
val change_protection : t -> vmas:int -> pages:int -> present:int -> float

(** TLB invalidation cost for a range of [pages] pages (per-page INVLPG up
    to [tlb_flush_ceiling], full flush beyond). *)
val tlb_invalidate : t -> pages:int -> float
