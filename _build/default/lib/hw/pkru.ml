type t = int

type rights = No_access | Read_only | Read_write

let init = 0x55555554
let all_access = 0x0

let of_int v = v land 0xFFFFFFFF
let to_int t = t
let equal = Int.equal

let ad_bit k = 2 * Pkey.to_int k
let wd_bit k = (2 * Pkey.to_int k) + 1

let rights t k =
  let ad = (t lsr ad_bit k) land 1 in
  let wd = (t lsr wd_bit k) land 1 in
  if ad = 1 then No_access else if wd = 1 then Read_only else Read_write

let set_rights t k r =
  let ad, wd =
    match r with
    | No_access -> 1, 0
    | Read_only -> 0, 1
    | Read_write -> 0, 0
  in
  let cleared = t land lnot ((1 lsl ad_bit k) lor (1 lsl wd_bit k)) in
  cleared lor (ad lsl ad_bit k) lor (wd lsl wd_bit k)

let rights_of_perm (p : Perm.t) =
  if p.write then Read_write
  else if p.read then Read_only
  else No_access

let allows r ~write =
  match r, write with
  | Read_write, _ -> true
  | Read_only, false -> true
  | Read_only, true -> false
  | No_access, _ -> false

let rights_to_string = function
  | No_access -> "--"
  | Read_only -> "r-"
  | Read_write -> "rw"

let pp fmt t = Format.fprintf fmt "PKRU:0x%08x" t
