(** A 4-level radix page table (x86-64 shape: 9 bits per level, 4 KiB
    pages, 48-bit virtual addresses). *)

type t

val create : unit -> t

(** Virtual page number of an address. *)
val vpn_of_addr : int -> int

val addr_of_vpn : int -> int

(** [set t ~vpn pte] installs (or clears, with [Pte.absent]) a leaf entry. *)
val set : t -> vpn:int -> Pte.t -> unit

(** [get t ~vpn] is the leaf entry, [Pte.absent] when unmapped. *)
val get : t -> vpn:int -> Pte.t

(** [update t ~vpn f] rewrites the entry at [vpn] by [f]; no-op when the
    entry is absent. Returns [true] when an entry was present. *)
val update : t -> vpn:int -> (Pte.t -> Pte.t) -> bool

(** [update_range t ~vpn ~pages f] applies [f] to every *present* entry
    in the range, skipping absent subtrees wholesale (this is what keeps
    GB-scale [mprotect] simulation fast). Returns the number of present
    entries rewritten. *)
val update_range : t -> vpn:int -> pages:int -> (Pte.t -> Pte.t) -> int

(** [protect_range t ~vpn ~pages perm] rewrites permission bits over a
    range; returns the number of present PTEs touched. *)
val protect_range : t -> vpn:int -> pages:int -> Perm.t -> int

(** [set_pkey_range t ~vpn ~pages pkey]; returns present PTEs touched. *)
val set_pkey_range : t -> vpn:int -> pages:int -> Pkey.t -> int

(** [fold t f init] over all present (vpn, pte) pairs, ascending vpn. *)
val fold : t -> (int -> Pte.t -> 'a -> 'a) -> 'a -> 'a

(** [count_with_pkey t pkey] counts present PTEs tagged with [pkey]. *)
val count_with_pkey : t -> Pkey.t -> int

(** Present-leaf count. *)
val mapped_pages : t -> int
