type t = {
  add_pipelined : float;
  wrpkru : float;
  wrpkru_drain : float;
  pipeline_refill_window : int;
  rdpkru : float;
  reg_move : float;
  tlb_hit : float;
  page_walk : float;
  mem_access : float;
  tlb_flush_all : float;
  tlb_flush_page : float;
  tlb_flush_ceiling : int;
  kernel_entry_exit : float;
  pkey_alloc_work : float;
  pkey_free_work : float;
  vma_find : float;
  vma_split_merge : float;
  vma_update : float;
  pte_scan : float;
  pte_update : float;
  page_fault : float;
  ipi_send : float;
  ipi_receive : float;
  task_work_add : float;
  task_work_run : float;
  context_switch : float;
}

(* Calibration targets (paper Table 1, measured on one touched page):
     pkey_alloc    = kernel_entry_exit + pkey_alloc_work          = 186.3
     pkey_free     = kernel_entry_exit + pkey_free_work           = 137.2
     mprotect 4KB  = entry + vma_find + vma_update + pte_scan
                     + pte_update + invlpg                        = 1094.0
     pkey_mprotect = mprotect + pkey bitmap check (charged in the
                     kernel's pkey layer)                         = 1104.9
   pte_update is sized so that mprotect over a *populated* 1 GiB region
   costs ~3.7M cycles, which reproduces the paper's Fig 14 Memcached
   collapse, while untouched mappings stay nearly flat (Fig 10). *)
let default =
  {
    add_pipelined = 0.25;
    wrpkru = 23.3;
    wrpkru_drain = 0.75;
    pipeline_refill_window = 16;
    rdpkru = 0.5;
    reg_move = 0.0;
    tlb_hit = 1.0;
    page_walk = 80.0;
    mem_access = 4.0;
    tlb_flush_all = 500.0;
    tlb_flush_page = 120.0;
    tlb_flush_ceiling = 33;
    kernel_entry_exit = 120.0;
    pkey_alloc_work = 66.3;
    pkey_free_work = 17.2;
    vma_find = 300.0;
    vma_split_merge = 450.0;
    vma_update = 539.5;
    pte_scan = 0.5;
    pte_update = 14.0;
    page_fault = 2000.0;
    ipi_send = 50.0;
    ipi_receive = 250.0;
    task_work_add = 50.0;
    task_work_run = 100.0;
    context_switch = 1000.0;
  }

let change_protection t ~vmas ~pages ~present =
  t.vma_find
  +. (float_of_int vmas *. t.vma_update)
  +. (float_of_int pages *. t.pte_scan)
  +. (float_of_int present *. t.pte_update)

let tlb_invalidate t ~pages =
  if pages <= 0 then 0.0
  else if pages <= t.tlb_flush_ceiling then float_of_int pages *. t.tlb_flush_page
  else t.tlb_flush_all
