(* Tests for mpk_hw: permissions, PKRU semantics, PTE encoding, page
   table, TLB, CPU pipeline model, MMU access checks (paper Fig 1). *)

open Mpk_hw

let qtest = QCheck_alcotest.to_alcotest

(* --- Perm --- *)

let test_perm_strings () =
  Alcotest.(check string) "rw" "rw-" (Perm.to_string Perm.rw);
  Alcotest.(check string) "none" "---" (Perm.to_string Perm.none);
  Alcotest.(check string) "x" "--x" (Perm.to_string Perm.x_only);
  Alcotest.(check string) "rwx" "rwx" (Perm.to_string Perm.rwx)

let test_perm_subsumes () =
  Alcotest.(check bool) "rwx >= rw" true (Perm.subsumes Perm.rwx Perm.rw);
  Alcotest.(check bool) "rw >= rwx" false (Perm.subsumes Perm.rw Perm.rwx);
  Alcotest.(check bool) "r >= none" true (Perm.subsumes Perm.r Perm.none);
  Alcotest.(check bool) "anything >= itself" true (Perm.subsumes Perm.rx Perm.rx);
  Alcotest.(check bool) "r >= x" false (Perm.subsumes Perm.r Perm.x_only)

(* --- Pkey --- *)

let test_pkey_range () =
  Alcotest.(check int) "default is 0" 0 (Pkey.to_int Pkey.default);
  Alcotest.(check int) "15 allocatable" 15 (List.length Pkey.allocatable);
  Alcotest.check_raises "16 rejected" (Invalid_argument "Pkey.of_int: 16 not in [0, 16)")
    (fun () -> ignore (Pkey.of_int 16));
  Alcotest.check_raises "-1 rejected" (Invalid_argument "Pkey.of_int: -1 not in [0, 16)")
    (fun () -> ignore (Pkey.of_int (-1)))

(* --- Pkru --- *)

let test_pkru_init_linux () =
  (* Linux boots threads with 0x55555554: key 0 rw, keys 1-15 denied. *)
  Alcotest.(check bool) "key0 rw" true (Pkru.rights Pkru.init Pkey.default = Pkru.Read_write);
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "key%d denied" (Pkey.to_int k))
        true
        (Pkru.rights Pkru.init k = Pkru.No_access))
    Pkey.allocatable

let test_pkru_set_get () =
  let k5 = Pkey.of_int 5 in
  let k7 = Pkey.of_int 7 in
  let v = Pkru.set_rights Pkru.init k5 Pkru.Read_only in
  Alcotest.(check bool) "k5 ro" true (Pkru.rights v k5 = Pkru.Read_only);
  Alcotest.(check bool) "k7 untouched" true (Pkru.rights v k7 = Pkru.No_access);
  let v = Pkru.set_rights v k5 Pkru.Read_write in
  Alcotest.(check bool) "k5 rw" true (Pkru.rights v k5 = Pkru.Read_write)

let test_pkru_allows () =
  Alcotest.(check bool) "rw allows write" true (Pkru.allows Pkru.Read_write ~write:true);
  Alcotest.(check bool) "ro blocks write" false (Pkru.allows Pkru.Read_only ~write:true);
  Alcotest.(check bool) "ro allows read" true (Pkru.allows Pkru.Read_only ~write:false);
  Alcotest.(check bool) "none blocks read" false (Pkru.allows Pkru.No_access ~write:false)

let test_pkru_rights_of_perm () =
  Alcotest.(check bool) "rw" true (Pkru.rights_of_perm Perm.rw = Pkru.Read_write);
  Alcotest.(check bool) "r" true (Pkru.rights_of_perm Perm.r = Pkru.Read_only);
  Alcotest.(check bool) "none" true (Pkru.rights_of_perm Perm.none = Pkru.No_access);
  Alcotest.(check bool) "x-only -> no data access" true
    (Pkru.rights_of_perm Perm.x_only = Pkru.No_access)

let pkru_roundtrip =
  QCheck.Test.make ~name:"pkru set/get roundtrip" ~count:500
    QCheck.(pair (int_bound 15) (int_bound 2))
    (fun (k, r) ->
      let key = Pkey.of_int k in
      let rights =
        match r with 0 -> Pkru.No_access | 1 -> Pkru.Read_only | _ -> Pkru.Read_write
      in
      let v = Pkru.set_rights Pkru.all_access key rights in
      Pkru.rights v key = rights)

let pkru_independence =
  QCheck.Test.make ~name:"pkru keys independent" ~count:500
    QCheck.(pair (int_bound 15) (int_bound 15))
    (fun (a, b) ->
      QCheck.assume (a <> b);
      let ka = Pkey.of_int a and kb = Pkey.of_int b in
      let v = Pkru.set_rights Pkru.init ka Pkru.Read_write in
      Pkru.rights v kb = Pkru.rights Pkru.init kb)

(* --- Pte --- *)

let pte_roundtrip =
  QCheck.Test.make ~name:"pte encode/decode roundtrip" ~count:1000
    QCheck.(triple (int_bound 0xFFFFF) (int_bound 7) (int_bound 15))
    (fun (frame, p, k) ->
      let perm = Perm.make ~read:(p land 1 <> 0) ~write:(p land 2 <> 0) ~exec:(p land 4 <> 0) () in
      let pkey = Pkey.of_int k in
      let pte = Pte.make ~frame ~perm ~pkey in
      Pte.is_present pte
      && Pte.frame pte = frame
      && Perm.equal (Pte.perm pte) perm
      && Pkey.equal (Pte.pkey pte) pkey)

let test_pte_absent () =
  Alcotest.(check bool) "absent not present" false (Pte.is_present Pte.absent)

let test_pte_with () =
  let pte = Pte.make ~frame:99 ~perm:Perm.rw ~pkey:(Pkey.of_int 3) in
  let pte2 = Pte.with_perm pte Perm.r in
  Alcotest.(check int) "frame preserved" 99 (Pte.frame pte2);
  Alcotest.(check int) "pkey preserved" 3 (Pkey.to_int (Pte.pkey pte2));
  Alcotest.(check string) "perm changed" "r--" (Perm.to_string (Pte.perm pte2));
  let pte3 = Pte.with_pkey pte (Pkey.of_int 11) in
  Alcotest.(check int) "pkey changed" 11 (Pkey.to_int (Pte.pkey pte3));
  Alcotest.(check string) "perm preserved" "rw-" (Perm.to_string (Pte.perm pte3))

(* --- Physmem --- *)

let test_physmem_alloc_free () =
  let m = Physmem.create ~frames:4 in
  let f1 = Physmem.alloc_frame m in
  let f2 = Physmem.alloc_frame m in
  Alcotest.(check bool) "distinct frames" true (f1 <> f2);
  Alcotest.(check int) "in use" 2 (Physmem.frames_in_use m);
  Physmem.free_frame m f1;
  Alcotest.(check int) "freed" 1 (Physmem.frames_in_use m);
  let f3 = Physmem.alloc_frame m in
  let f4 = Physmem.alloc_frame m in
  let f5 = Physmem.alloc_frame m in
  ignore (f3, f4, f5);
  Alcotest.check_raises "exhausted" Out_of_memory (fun () ->
      ignore (Physmem.alloc_frame m))

let test_physmem_zeroed_on_reuse () =
  let m = Physmem.create ~frames:2 in
  let f = Physmem.alloc_frame m in
  Physmem.write_byte m f 100 'Z';
  Physmem.free_frame m f;
  let f' = Physmem.alloc_frame m in
  Alcotest.(check char) "reused frame zeroed" '\000' (Physmem.read_byte m f' 100)

let test_physmem_bytes () =
  let m = Physmem.create ~frames:2 in
  let f = Physmem.alloc_frame m in
  Physmem.write_bytes m f 10 (Bytes.of_string "hello") 0 5;
  Alcotest.(check string) "readback" "hello" (Bytes.to_string (Physmem.read_bytes m f 10 5));
  Physmem.write_int64 m f 512 0x1122334455667788L;
  Alcotest.(check int64) "int64 readback" 0x1122334455667788L (Physmem.read_int64 m f 512)

let test_physmem_bounds () =
  let m = Physmem.create ~frames:1 in
  let f = Physmem.alloc_frame m in
  Alcotest.check_raises "off-end write"
    (Invalid_argument "Physmem: offset out of frame bounds") (fun () ->
      Physmem.write_byte m f 4096 'x')

(* --- Page_table --- *)

let test_page_table_set_get () =
  let pt = Page_table.create () in
  let pte = Pte.make ~frame:7 ~perm:Perm.rw ~pkey:Pkey.default in
  Page_table.set pt ~vpn:0x12345 pte;
  Alcotest.(check bool) "present" true (Pte.is_present (Page_table.get pt ~vpn:0x12345));
  Alcotest.(check int) "frame" 7 (Pte.frame (Page_table.get pt ~vpn:0x12345));
  Alcotest.(check bool) "absent elsewhere" false
    (Pte.is_present (Page_table.get pt ~vpn:0x12346));
  Alcotest.(check int) "mapped count" 1 (Page_table.mapped_pages pt)

let test_page_table_clear () =
  let pt = Page_table.create () in
  Page_table.set pt ~vpn:5 (Pte.make ~frame:1 ~perm:Perm.r ~pkey:Pkey.default);
  Page_table.set pt ~vpn:5 Pte.absent;
  Alcotest.(check bool) "cleared" false (Pte.is_present (Page_table.get pt ~vpn:5));
  Alcotest.(check int) "count back to zero" 0 (Page_table.mapped_pages pt)

let test_page_table_protect_range () =
  let pt = Page_table.create () in
  for v = 10 to 19 do
    Page_table.set pt ~vpn:v (Pte.make ~frame:v ~perm:Perm.rw ~pkey:Pkey.default)
  done;
  let touched = Page_table.protect_range pt ~vpn:12 ~pages:5 Perm.r in
  Alcotest.(check int) "touched 5" 5 touched;
  Alcotest.(check string) "inside changed" "r--"
    (Perm.to_string (Pte.perm (Page_table.get pt ~vpn:14)));
  Alcotest.(check string) "outside unchanged" "rw-"
    (Perm.to_string (Pte.perm (Page_table.get pt ~vpn:10)))

let test_page_table_pkey_range () =
  let pt = Page_table.create () in
  for v = 0 to 9 do
    Page_table.set pt ~vpn:v (Pte.make ~frame:v ~perm:Perm.rw ~pkey:Pkey.default)
  done;
  let k = Pkey.of_int 9 in
  ignore (Page_table.set_pkey_range pt ~vpn:3 ~pages:4 k);
  Alcotest.(check int) "count with pkey" 4 (Page_table.count_with_pkey pt k);
  Alcotest.(check int) "pkey set" 9 (Pkey.to_int (Pte.pkey (Page_table.get pt ~vpn:5)))

let test_page_table_fold_order () =
  let pt = Page_table.create () in
  List.iter
    (fun v -> Page_table.set pt ~vpn:v (Pte.make ~frame:v ~perm:Perm.r ~pkey:Pkey.default))
    [ 1000; 5; 0xFFFFF; 42 ];
  let vpns = List.rev (Page_table.fold pt (fun vpn _ acc -> vpn :: acc) []) in
  Alcotest.(check (list int)) "ascending" [ 5; 42; 1000; 0xFFFFF ] vpns

let page_table_model =
  QCheck.Test.make ~name:"page table matches model map" ~count:200
    QCheck.(small_list (pair (int_bound 100000) (int_bound 1)))
    (fun ops ->
      let pt = Page_table.create () in
      let model = Hashtbl.create 16 in
      List.iter
        (fun (vpn, op) ->
          if op = 0 then begin
            let pte = Pte.make ~frame:(vpn land 0xFFFF) ~perm:Perm.rw ~pkey:Pkey.default in
            Page_table.set pt ~vpn pte;
            Hashtbl.replace model vpn ()
          end
          else begin
            Page_table.set pt ~vpn Pte.absent;
            Hashtbl.remove model vpn
          end)
        ops;
      Page_table.mapped_pages pt = Hashtbl.length model
      && Hashtbl.fold
           (fun vpn () acc -> acc && Pte.is_present (Page_table.get pt ~vpn))
           model true)

(* --- Tlb --- *)

let mk_pte frame = Pte.make ~frame ~perm:Perm.rw ~pkey:Pkey.default

let test_tlb_hit_miss () =
  let tlb = Tlb.create ~sets:4 ~ways:2 () in
  Alcotest.(check bool) "cold miss" true (Tlb.lookup tlb ~vpn:1 = None);
  Tlb.insert tlb ~vpn:1 (mk_pte 10);
  (match Tlb.lookup tlb ~vpn:1 with
  | Some pte -> Alcotest.(check int) "hit frame" 10 (Pte.frame pte)
  | None -> Alcotest.fail "expected hit");
  Alcotest.(check int) "one hit" 1 (Tlb.hits tlb);
  Alcotest.(check int) "one miss" 1 (Tlb.misses tlb)

let test_tlb_flush_all () =
  let tlb = Tlb.create ~sets:4 ~ways:2 () in
  Tlb.insert tlb ~vpn:1 (mk_pte 1);
  Tlb.insert tlb ~vpn:2 (mk_pte 2);
  Tlb.flush_all tlb;
  Alcotest.(check bool) "gone" true (Tlb.lookup tlb ~vpn:1 = None);
  Alcotest.(check bool) "gone too" true (Tlb.lookup tlb ~vpn:2 = None);
  Alcotest.(check int) "flush counted" 1 (Tlb.flushes tlb)

let test_tlb_flush_page () =
  let tlb = Tlb.create ~sets:4 ~ways:2 () in
  Tlb.insert tlb ~vpn:1 (mk_pte 1);
  Tlb.insert tlb ~vpn:2 (mk_pte 2);
  Tlb.flush_page tlb ~vpn:1;
  Alcotest.(check bool) "flushed page gone" true (Tlb.lookup tlb ~vpn:1 = None);
  Alcotest.(check bool) "other survives" true (Tlb.lookup tlb ~vpn:2 <> None)

let test_tlb_lru_eviction () =
  let tlb = Tlb.create ~sets:1 ~ways:2 () in
  Tlb.insert tlb ~vpn:1 (mk_pte 1);
  Tlb.insert tlb ~vpn:2 (mk_pte 2);
  ignore (Tlb.lookup tlb ~vpn:1);  (* make 2 the LRU *)
  Tlb.insert tlb ~vpn:3 (mk_pte 3);
  Alcotest.(check bool) "1 survives (recently used)" true (Tlb.lookup tlb ~vpn:1 <> None);
  Alcotest.(check bool) "2 evicted" true (Tlb.lookup tlb ~vpn:2 = None)

let test_tlb_update_in_place () =
  let tlb = Tlb.create ~sets:1 ~ways:2 () in
  Tlb.insert tlb ~vpn:1 (mk_pte 1);
  Tlb.insert tlb ~vpn:1 (mk_pte 99);
  match Tlb.lookup tlb ~vpn:1 with
  | Some pte -> Alcotest.(check int) "updated" 99 (Pte.frame pte)
  | None -> Alcotest.fail "expected hit"

(* --- Cpu / pipeline (paper Fig 2 + Table 1) --- *)

let test_cpu_wrpkru_cost () =
  let cpu = Cpu.create ~id:0 () in
  let (), cycles = Cpu.measure cpu (fun () -> Cpu.wrpkru cpu Pkru.all_access) in
  Alcotest.(check (float 1e-9)) "wrpkru = 23.3" 23.3 cycles

let test_cpu_rdpkru_cost () =
  let cpu = Cpu.create ~id:0 () in
  let _, cycles = Cpu.measure cpu (fun () -> Cpu.rdpkru cpu) in
  Alcotest.(check (float 1e-9)) "rdpkru = 0.5" 0.5 cycles

let test_cpu_wrpkru_sets_value () =
  let cpu = Cpu.create ~id:0 () in
  Cpu.wrpkru cpu (Pkru.of_int 0xABCD);
  Alcotest.(check int) "pkru value" 0xABCD (Pkru.to_int (Cpu.pkru cpu))

let test_fig2_adds_after_slower () =
  (* W1: adds then WRPKRU; W2: WRPKRU then adds. W2 must be slower for
     every n > 0 (post-serialization refill), the paper's Fig 2 shape. *)
  let run_w1 n =
    let cpu = Cpu.create ~id:0 () in
    snd
      (Cpu.measure cpu (fun () ->
           Cpu.exec_adds cpu n;
           Cpu.wrpkru cpu Pkru.all_access))
  in
  let run_w2 n =
    let cpu = Cpu.create ~id:0 () in
    snd
      (Cpu.measure cpu (fun () ->
           Cpu.wrpkru cpu Pkru.all_access;
           Cpu.exec_adds cpu n))
  in
  List.iter
    (fun n ->
      let w1 = run_w1 n and w2 = run_w2 n in
      Alcotest.(check bool) (Printf.sprintf "W2 > W1 at n=%d" n) true (w2 > w1))
    [ 1; 2; 4; 8; 16; 32 ];
  (* The gap saturates once n exceeds the refill window. *)
  let gap n = run_w2 n -. run_w1 n in
  Alcotest.(check (float 1e-9)) "gap saturates" (gap 16) (gap 32)

let test_cpu_measure_isolated () =
  let cpu = Cpu.create ~id:0 () in
  Cpu.charge cpu 100.0;
  let _, c = Cpu.measure cpu (fun () -> Cpu.charge cpu 5.0) in
  Alcotest.(check (float 1e-9)) "only inner charge" 5.0 c;
  Alcotest.(check (float 1e-9)) "total" 105.0 (Cpu.cycles cpu)

(* --- Mmu (paper Fig 1 permission intersection) --- *)

let make_mmu () =
  let mem = Physmem.create ~frames:64 in
  let pt = Page_table.create () in
  let mmu = Mmu.create pt mem in
  let cpu = Cpu.create ~id:0 () in
  let map ~vpn ~perm ~pkey =
    let frame = Physmem.alloc_frame mem in
    Page_table.set pt ~vpn (Pte.make ~frame ~perm ~pkey)
  in
  mmu, cpu, map

let addr_of vpn = vpn * Physmem.page_size

let test_mmu_read_write () =
  let mmu, cpu, map = make_mmu () in
  map ~vpn:1 ~perm:Perm.rw ~pkey:Pkey.default;
  Mmu.write_byte mmu cpu ~addr:(addr_of 1 + 5) 'A';
  Alcotest.(check char) "readback" 'A' (Mmu.read_byte mmu cpu ~addr:(addr_of 1 + 5))

let expect_fault name cause f =
  match f () with
  | exception Mmu.Fault fault ->
      Alcotest.(check string) name (Mmu.cause_to_string cause)
        (Mmu.cause_to_string fault.Mmu.cause)
  | _ -> Alcotest.fail (name ^ ": expected fault")

let test_mmu_not_present () =
  let mmu, cpu, _ = make_mmu () in
  expect_fault "unmapped read" Mmu.Not_present (fun () ->
      Mmu.read_byte mmu cpu ~addr:(addr_of 9))

let test_mmu_page_perm () =
  let mmu, cpu, map = make_mmu () in
  map ~vpn:1 ~perm:Perm.r ~pkey:Pkey.default;
  ignore (Mmu.read_byte mmu cpu ~addr:(addr_of 1));
  expect_fault "write to read-only page" Mmu.Page_perm (fun () ->
      Mmu.write_byte mmu cpu ~addr:(addr_of 1) 'x')

let test_mmu_pkey_denied () =
  let mmu, cpu, map = make_mmu () in
  let k = Pkey.of_int 4 in
  map ~vpn:1 ~perm:Perm.rw ~pkey:k;
  (* init PKRU denies keys 1-15 *)
  expect_fault "pkey denies read" Mmu.Pkey_denied (fun () ->
      Mmu.read_byte mmu cpu ~addr:(addr_of 1));
  (* grant read-only *)
  Cpu.wrpkru cpu (Pkru.set_rights (Cpu.pkru cpu) k Pkru.Read_only);
  ignore (Mmu.read_byte mmu cpu ~addr:(addr_of 1));
  expect_fault "pkey denies write" Mmu.Pkey_denied (fun () ->
      Mmu.write_byte mmu cpu ~addr:(addr_of 1) 'x');
  (* grant rw *)
  Cpu.wrpkru cpu (Pkru.set_rights (Cpu.pkru cpu) k Pkru.Read_write);
  Mmu.write_byte mmu cpu ~addr:(addr_of 1) 'x'

let test_mmu_fetch_ignores_pkru () =
  (* Execute-only memory: page rx with a denied key. Fetch must succeed,
     read must fault — exactly Fig 1's "instruction fetch is independent
     of the PKRU". *)
  let mmu, cpu, map = make_mmu () in
  let k = Pkey.of_int 4 in
  map ~vpn:1 ~perm:Perm.rx ~pkey:k;
  ignore (Mmu.fetch mmu cpu ~addr:(addr_of 1) ~len:16);
  expect_fault "read denied" Mmu.Pkey_denied (fun () ->
      Mmu.read_byte mmu cpu ~addr:(addr_of 1))

let test_mmu_fetch_needs_exec () =
  let mmu, cpu, map = make_mmu () in
  map ~vpn:1 ~perm:Perm.rw ~pkey:Pkey.default;
  expect_fault "fetch from non-exec" Mmu.Page_perm (fun () ->
      ignore (Mmu.fetch mmu cpu ~addr:(addr_of 1) ~len:4))

let test_mmu_cross_page () =
  let mmu, cpu, map = make_mmu () in
  map ~vpn:1 ~perm:Perm.rw ~pkey:Pkey.default;
  map ~vpn:2 ~perm:Perm.rw ~pkey:Pkey.default;
  let addr = addr_of 2 - 3 in
  Mmu.write_bytes mmu cpu ~addr (Bytes.of_string "abcdef");
  Alcotest.(check string) "cross-page readback" "abcdef"
    (Bytes.to_string (Mmu.read_bytes mmu cpu ~addr ~len:6))

let test_mmu_cross_page_partial_fault () =
  let mmu, cpu, map = make_mmu () in
  map ~vpn:1 ~perm:Perm.rw ~pkey:Pkey.default;
  (* vpn 2 unmapped: the crossing write must fault *)
  expect_fault "second page missing" Mmu.Not_present (fun () ->
      Mmu.write_bytes mmu cpu ~addr:(addr_of 2 - 3) (Bytes.of_string "abcdef"))

let test_mmu_tlb_charges () =
  let mmu, cpu, map = make_mmu () in
  map ~vpn:1 ~perm:Perm.rw ~pkey:Pkey.default;
  let costs = Cpu.costs cpu in
  let _, first = Cpu.measure cpu (fun () -> Mmu.read_byte mmu cpu ~addr:(addr_of 1)) in
  let _, second = Cpu.measure cpu (fun () -> Mmu.read_byte mmu cpu ~addr:(addr_of 1)) in
  Alcotest.(check (float 1e-9)) "miss pays walk" (costs.Costs.page_walk +. costs.Costs.mem_access) first;
  Alcotest.(check (float 1e-9)) "hit pays tlb" (costs.Costs.tlb_hit +. costs.Costs.mem_access) second

let test_mmu_kernel_bypass () =
  let mmu, cpu, map = make_mmu () in
  let k = Pkey.of_int 3 in
  map ~vpn:1 ~perm:Perm.r ~pkey:k;
  (* user write faults on both page perm and pkey; kernel write works *)
  expect_fault "user blocked" Mmu.Page_perm (fun () ->
      Mmu.write_byte mmu cpu ~addr:(addr_of 1) 'x');
  Mmu.kernel_write_bytes mmu ~addr:(addr_of 1) (Bytes.of_string "K");
  Cpu.wrpkru cpu (Pkru.set_rights (Cpu.pkru cpu) k Pkru.Read_only);
  Alcotest.(check char) "kernel write visible" 'K' (Mmu.read_byte mmu cpu ~addr:(addr_of 1))

(* --- Costs helpers --- *)

let test_costs_change_protection () =
  let c = Costs.default in
  let base = Costs.change_protection c ~vmas:1 ~pages:1 ~present:1 in
  let more_pages = Costs.change_protection c ~vmas:1 ~pages:100 ~present:1 in
  let more_present = Costs.change_protection c ~vmas:1 ~pages:100 ~present:100 in
  Alcotest.(check bool) "scan cost is small" true (more_pages -. base < 100.0);
  (* pte_update / pte_scan = 28x by calibration *)
  Alcotest.(check bool) "present PTEs dominate" true
    (more_present -. more_pages > 20.0 *. (more_pages -. base))

let test_costs_tlb_invalidate () =
  let c = Costs.default in
  Alcotest.(check (float 1e-9)) "zero pages free" 0.0 (Costs.tlb_invalidate c ~pages:0);
  Alcotest.(check (float 1e-9)) "one page = one invlpg" c.Costs.tlb_flush_page
    (Costs.tlb_invalidate c ~pages:1);
  (* past the ceiling: a single full flush, cheaper than per-page *)
  let at_ceiling = Costs.tlb_invalidate c ~pages:c.Costs.tlb_flush_ceiling in
  let past_ceiling = Costs.tlb_invalidate c ~pages:(c.Costs.tlb_flush_ceiling + 1) in
  Alcotest.(check (float 1e-9)) "full flush past ceiling" c.Costs.tlb_flush_all past_ceiling;
  Alcotest.(check bool) "kernel's crossover" true (past_ceiling < at_ceiling)

let test_costs_table1_identity () =
  (* the calibration identity spelled out in costs.ml must actually hold *)
  let c = Costs.default in
  Alcotest.(check (float 1e-6)) "mprotect identity" 1094.0
    (c.Costs.kernel_entry_exit +. c.Costs.vma_find +. c.Costs.vma_update
    +. c.Costs.pte_scan +. c.Costs.pte_update +. c.Costs.tlb_flush_page);
  Alcotest.(check (float 1e-6)) "pkey_alloc identity" 186.3
    (c.Costs.kernel_entry_exit +. c.Costs.pkey_alloc_work);
  Alcotest.(check (float 1e-6)) "pkey_free identity" 137.2
    (c.Costs.kernel_entry_exit +. c.Costs.pkey_free_work)

(* --- more TLB behaviour --- *)

let test_tlb_set_isolation () =
  (* entries in different sets never evict each other *)
  let tlb = Tlb.create ~sets:4 ~ways:1 () in
  Tlb.insert tlb ~vpn:0 (mk_pte 0);
  Tlb.insert tlb ~vpn:1 (mk_pte 1);
  Tlb.insert tlb ~vpn:2 (mk_pte 2);
  Tlb.insert tlb ~vpn:3 (mk_pte 3);
  List.iter
    (fun vpn -> Alcotest.(check bool) (string_of_int vpn) true (Tlb.lookup tlb ~vpn <> None))
    [ 0; 1; 2; 3 ];
  (* vpn 4 maps to set 0 and evicts only vpn 0 *)
  Tlb.insert tlb ~vpn:4 (mk_pte 4);
  Alcotest.(check bool) "vpn 0 evicted" true (Tlb.lookup tlb ~vpn:0 = None);
  Alcotest.(check bool) "vpn 1 untouched" true (Tlb.lookup tlb ~vpn:1 <> None)

let test_tlb_stats_reset () =
  let tlb = Tlb.create () in
  ignore (Tlb.lookup tlb ~vpn:1);
  Tlb.insert tlb ~vpn:1 (mk_pte 1);
  ignore (Tlb.lookup tlb ~vpn:1);
  Tlb.reset_stats tlb;
  Alcotest.(check int) "hits" 0 (Tlb.hits tlb);
  Alcotest.(check int) "misses" 0 (Tlb.misses tlb);
  Alcotest.(check int) "flushes" 0 (Tlb.flushes tlb);
  (* entries survive a stats reset *)
  Alcotest.(check bool) "entry intact" true (Tlb.lookup tlb ~vpn:1 <> None)

(* --- physmem refcounting (shared memory substrate) --- *)

let test_physmem_refcount () =
  let m = Physmem.create ~frames:2 in
  let f = Physmem.alloc_frame m in
  Alcotest.(check int) "initial ref" 1 (Physmem.refcount m f);
  Physmem.ref_frame m f;
  Alcotest.(check int) "bumped" 2 (Physmem.refcount m f);
  Physmem.write_byte m f 0 'z';
  Physmem.free_frame m f;
  Alcotest.(check int) "still alive" 1 (Physmem.refcount m f);
  Alcotest.(check char) "data survives partial free" 'z' (Physmem.read_byte m f 0);
  Physmem.free_frame m f;
  Alcotest.(check int) "gone" 0 (Physmem.refcount m f);
  Alcotest.(check int) "not in use" 0 (Physmem.frames_in_use m)

let test_machine_flush_all_tlbs () =
  let m = Machine.create ~cores:2 ~mem_mib:16 () in
  Tlb.insert (Cpu.tlb (Machine.core m 0)) ~vpn:5 (mk_pte 5);
  Tlb.insert (Cpu.tlb (Machine.core m 1)) ~vpn:6 (mk_pte 6);
  Machine.flush_all_tlbs m;
  Alcotest.(check bool) "core0 flushed" true (Tlb.lookup (Cpu.tlb (Machine.core m 0)) ~vpn:5 = None);
  Alcotest.(check bool) "core1 flushed" true (Tlb.lookup (Cpu.tlb (Machine.core m 1)) ~vpn:6 = None)

let test_machine_basics () =
  let m = Machine.create ~cores:4 ~mem_mib:16 () in
  Alcotest.(check int) "core count" 4 (Machine.core_count m);
  Cpu.charge (Machine.core m 2) 500.0;
  Alcotest.(check (float 1e-9)) "now = max" 500.0 (Machine.now m);
  Alcotest.check_raises "bad core" (Invalid_argument "Machine.core: bad index") (fun () ->
      ignore (Machine.core m 4))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "mpk_hw"
    [
      ( "perm",
        [ tc "strings" `Quick test_perm_strings; tc "subsumes" `Quick test_perm_subsumes ] );
      ("pkey", [ tc "range" `Quick test_pkey_range ]);
      ( "pkru",
        [
          tc "linux init" `Quick test_pkru_init_linux;
          tc "set/get" `Quick test_pkru_set_get;
          tc "allows" `Quick test_pkru_allows;
          tc "rights of perm" `Quick test_pkru_rights_of_perm;
          qtest pkru_roundtrip;
          qtest pkru_independence;
        ] );
      ( "pte",
        [ qtest pte_roundtrip; tc "absent" `Quick test_pte_absent; tc "with_*" `Quick test_pte_with ] );
      ( "physmem",
        [
          tc "alloc/free" `Quick test_physmem_alloc_free;
          tc "zeroed on reuse" `Quick test_physmem_zeroed_on_reuse;
          tc "bytes" `Quick test_physmem_bytes;
          tc "bounds" `Quick test_physmem_bounds;
        ] );
      ( "page_table",
        [
          tc "set/get" `Quick test_page_table_set_get;
          tc "clear" `Quick test_page_table_clear;
          tc "protect range" `Quick test_page_table_protect_range;
          tc "pkey range" `Quick test_page_table_pkey_range;
          tc "fold order" `Quick test_page_table_fold_order;
          qtest page_table_model;
        ] );
      ( "tlb",
        [
          tc "hit/miss" `Quick test_tlb_hit_miss;
          tc "flush all" `Quick test_tlb_flush_all;
          tc "flush page" `Quick test_tlb_flush_page;
          tc "lru eviction" `Quick test_tlb_lru_eviction;
          tc "update in place" `Quick test_tlb_update_in_place;
        ] );
      ( "cpu",
        [
          tc "wrpkru cost" `Quick test_cpu_wrpkru_cost;
          tc "rdpkru cost" `Quick test_cpu_rdpkru_cost;
          tc "wrpkru sets value" `Quick test_cpu_wrpkru_sets_value;
          tc "fig2 serialization" `Quick test_fig2_adds_after_slower;
          tc "measure" `Quick test_cpu_measure_isolated;
        ] );
      ( "mmu",
        [
          tc "read/write" `Quick test_mmu_read_write;
          tc "not present" `Quick test_mmu_not_present;
          tc "page perm" `Quick test_mmu_page_perm;
          tc "pkey denied" `Quick test_mmu_pkey_denied;
          tc "fetch ignores pkru" `Quick test_mmu_fetch_ignores_pkru;
          tc "fetch needs exec" `Quick test_mmu_fetch_needs_exec;
          tc "cross page" `Quick test_mmu_cross_page;
          tc "cross page fault" `Quick test_mmu_cross_page_partial_fault;
          tc "tlb charges" `Quick test_mmu_tlb_charges;
          tc "kernel bypass" `Quick test_mmu_kernel_bypass;
        ] );
      ( "costs",
        [
          tc "change_protection" `Quick test_costs_change_protection;
          tc "tlb_invalidate" `Quick test_costs_tlb_invalidate;
          tc "table1 identities" `Quick test_costs_table1_identity;
        ] );
      ( "tlb_more",
        [
          tc "set isolation" `Quick test_tlb_set_isolation;
          tc "stats reset" `Quick test_tlb_stats_reset;
        ] );
      ("physmem_refs", [ tc "refcount" `Quick test_physmem_refcount ]);
      ( "machine",
        [
          tc "basics" `Quick test_machine_basics;
          tc "flush all tlbs" `Quick test_machine_flush_all_tlbs;
        ] );
    ]
