test/test_experiments.ml: Ablations Alcotest Exp_fig10 Exp_fig2 Exp_fig3 Exp_fig8 Exp_fig9 Exp_memover Exp_table1 Exp_table3 Float List Mpk_experiments Printf Report String
