test/test_libmpk.mli:
