test/test_hw.ml: Alcotest Bytes Costs Cpu Hashtbl List Machine Mmu Mpk_hw Page_table Perm Physmem Pkey Pkru Printf Pte QCheck QCheck_alcotest Tlb
