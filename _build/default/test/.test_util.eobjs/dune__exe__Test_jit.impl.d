test/test_jit.ml: Alcotest Attack Bytecode Bytes Codecache Cpu Engine Libmpk List Machine Mmu Mpk_hw Mpk_jit Mpk_kernel Octane Perm Printf Proc QCheck QCheck_alcotest Syscall Task Wx Xom
