test/test_util.ml: Alcotest Array Float List Mpk_util Prng Stats String Table
