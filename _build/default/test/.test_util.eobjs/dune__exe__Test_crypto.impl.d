test/test_crypto.ml: Alcotest Bignum Buffer Bytes Chacha20 Char Hmac List Mpk_crypto Mpk_util Printf QCheck QCheck_alcotest Rsa Sha256 String
