test/test_integration.ml: Alcotest Libmpk Machine Mm Mmu Mpk_hw Mpk_jit Mpk_kernel Mpk_secstore Mpk_util Option Perm Proc String Task
