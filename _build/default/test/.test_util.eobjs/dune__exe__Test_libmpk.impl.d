test/test_libmpk.ml: Alcotest Array Bytes Char Cpu Errno Libmpk List Machine Mmu Mpk_hw Mpk_kernel Option Perm Physmem Pkey Pkey_bitmap Printf Proc QCheck QCheck_alcotest Sched Task
