test/test_model.ml: Alcotest Array Char Errno Hashtbl Libmpk List Machine Mm Mmu Mpk_hw Mpk_kernel Option Page_table Perm Physmem Pkey Printf Proc Pte QCheck QCheck_alcotest String Task
