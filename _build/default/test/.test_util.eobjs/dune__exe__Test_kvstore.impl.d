test/test_kvstore.ml: Alcotest Bytes Hashtbl List Loadgen Mmu Mpk_hw Mpk_kernel Mpk_kvstore Option Printf Proc Protocol QCheck QCheck_alcotest Server Slab String Task
