test/test_extensions.ml: Alcotest Bytes Char Cpu Errno Format Libmpk List Machine Mmu Mpk_hw Mpk_kernel Page_table Perm Physmem Pkey Pkru Proc Pte QCheck QCheck_alcotest Sched String Syscall Task
