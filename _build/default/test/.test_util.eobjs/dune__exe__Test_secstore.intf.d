test/test_secstore.mli:
