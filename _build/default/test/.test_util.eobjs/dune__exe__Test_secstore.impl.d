test/test_secstore.ml: Alcotest Bytes Char Heartbleed Keystore Libmpk List Loadgen Mpk_crypto Mpk_hw Mpk_kernel Mpk_secstore Mpk_util Printf Proc String Task Tls_server
