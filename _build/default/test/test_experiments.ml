(* Smoke tests over the experiment modules: each must produce data of the
   right shape and satisfy the paper's qualitative claims. Only the fast
   experiments run here — the heavyweight ones (fig11/12/13/14) are
   exercised by the bench harness itself. *)

open Mpk_experiments

let test_table1_matches_paper () =
  List.iter
    (fun r ->
      let tolerance = Float.max 0.5 (r.Exp_table1.paper *. 0.02) in
      if Float.abs (r.Exp_table1.cycles -. r.Exp_table1.paper) > tolerance then
        Alcotest.failf "%s: %.1f vs paper %.1f" r.Exp_table1.name r.Exp_table1.cycles
          r.Exp_table1.paper)
    (Exp_table1.rows ())

let test_fig2_w2_dominates () =
  let pts = Exp_fig2.points () in
  Alcotest.(check int) "10 points" 10 (List.length pts);
  List.iter
    (fun p ->
      if p.Exp_fig2.adds > 0 then
        Alcotest.(check bool)
          (Printf.sprintf "W2 > W1 at %d" p.Exp_fig2.adds)
          true
          (p.Exp_fig2.w2 > p.Exp_fig2.w1))
    pts;
  (* the gap saturates *)
  let gap p = p.Exp_fig2.w2 -. p.Exp_fig2.w1 in
  let last_two = List.filteri (fun i _ -> i >= List.length pts - 2) pts in
  match last_two with
  | [ a; b ] -> Alcotest.(check (float 1e-9)) "saturated" (gap a) (gap b)
  | _ -> Alcotest.fail "unexpected"

let test_fig3_sparse_linear () =
  let pts = Exp_fig3.points () in
  List.iter
    (fun p ->
      Alcotest.(check bool) "sparse >= contiguous" true
        (p.Exp_fig3.sparse >= p.Exp_fig3.contiguous -. 1e-6);
      (* sparse is n independent syscalls *)
      let per_page = p.Exp_fig3.sparse /. float_of_int p.Exp_fig3.pages in
      Alcotest.(check bool) "sparse linear" true (Float.abs (per_page -. 1080.0) < 50.0))
    pts

let test_fig8_hit_row_flat_and_fast () =
  let cells = Exp_fig8.grid () in
  let hit100 =
    List.filter (fun c -> c.Exp_fig8.hit_rate = 100 && c.Exp_fig8.threads = 1) cells
  in
  Alcotest.(check int) "three eviction rates" 3 (List.length hit100);
  List.iter
    (fun c ->
      Alcotest.(check bool) "hit path < 150 cycles" true (c.Exp_fig8.cycles < 150.0))
    hit100;
  (* and the reference beats mpk only at hit=0, evict=100 *)
  let ref1 = Exp_fig8.mprotect_reference ~threads:1 in
  let worst =
    List.find
      (fun c -> c.Exp_fig8.hit_rate = 0 && c.Exp_fig8.evict_rate = 100 && c.Exp_fig8.threads = 1)
      cells
  in
  Alcotest.(check bool) "mprotect wins at 0% hit + eviction" true
    (worst.Exp_fig8.cycles > ref1)

let test_fig9_knee_at_15 () =
  let pts = Exp_fig9.points () in
  let per_fn p = p.Exp_fig9.libmpk_cycles /. float_of_int p.Exp_fig9.hot_functions in
  let before = List.find (fun p -> p.Exp_fig9.hot_functions = 15) pts in
  let after = List.find (fun p -> p.Exp_fig9.hot_functions = 18) pts in
  Alcotest.(check bool) "slope jumps past 15 keys" true (per_fn after > 2.0 *. per_fn before);
  (* mprotect is roughly linear: per-function cost within 5% (VMA
     split/merge churn adds mild superlinearity) *)
  let mp_per_fn p = p.Exp_fig9.mprotect_cycles /. float_of_int p.Exp_fig9.hot_functions in
  let a = List.find (fun p -> p.Exp_fig9.hot_functions = 5) pts in
  let b = List.find (fun p -> p.Exp_fig9.hot_functions = 30) pts in
  Alcotest.(check bool) "mprotect ~linear" true
    (Float.abs (mp_per_fn a -. mp_per_fn b) < 0.05 *. mp_per_fn a);
  (* libmpk still wins after the knee *)
  Alcotest.(check bool) "libmpk wins past knee" true
    (after.Exp_fig9.mprotect_cycles > 2.0 *. after.Exp_fig9.libmpk_cycles)

let test_fig10_mpk_flat () =
  let pts = Exp_fig10.points () in
  let at threads pages =
    List.find (fun p -> p.Exp_fig10.threads = threads && p.Exp_fig10.pages = pages) pts
  in
  Alcotest.(check (float 1e-6)) "page-count independent" (at 2 1).Exp_fig10.mpk
    (at 2 1000).Exp_fig10.mpk;
  Alcotest.(check bool) "mpk grows with threads" true
    ((at 8 1).Exp_fig10.mpk > (at 2 1).Exp_fig10.mpk);
  List.iter
    (fun p ->
      Alcotest.(check bool) "mpk always wins here" true (p.Exp_fig10.mprotect > p.Exp_fig10.mpk))
    pts

let test_table3_shape () =
  let rows = Exp_table3.rows () in
  Alcotest.(check int) "four applications" 4 (List.length rows);
  let by_name name = List.find (fun r -> r.Exp_table3.application = name) rows in
  Alcotest.(check string) "openssl 1 vkey" "1" (by_name "OpenSSL").Exp_table3.vkeys;
  Alcotest.(check string) "memcached 2 pkeys" "2" (by_name "Memcached").Exp_table3.pkeys;
  Alcotest.(check string) "key/process 1 vkey" "1" (by_name "JIT (key/process)").Exp_table3.vkeys

let test_memover_32_bytes_per_group () =
  let rows = Exp_memover.rows () in
  let at n = List.find (fun r -> r.Exp_memover.groups = n) rows in
  Alcotest.(check int) "pre-allocated 32 KiB" 32768 (at 1).Exp_memover.metadata_bytes;
  Alcotest.(check int) "fits 1024 groups without growing" 32768
    (at 1024).Exp_memover.metadata_bytes;
  Alcotest.(check bool) "doubles past capacity" true
    ((at 2000).Exp_memover.metadata_bytes = 65536);
  Alcotest.(check (float 0.01)) "asymptotically 32 B/group" 32.768
    (at 4000).Exp_memover.bytes_per_group

let test_report_catalogue () =
  Alcotest.(check int) "13 experiments" 13 (List.length Report.all);
  Alcotest.(check bool) "fig8 findable" true (Report.find "fig8" <> None);
  Alcotest.(check bool) "unknown rejected" true (Report.find "fig99" = None);
  (* ids are unique *)
  let ids = List.map (fun e -> e.Report.id) Report.all in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_ablation_sync_lazy_cheaper () =
  (* directly verify the ablation's conclusion on a small configuration *)
  let s = Ablations.render_sync () in
  Alcotest.(check bool) "renders" true (String.length s > 100)

let test_ablation_policy_lru_best () =
  let s = Ablations.render_policy () in
  Alcotest.(check bool) "renders" true (String.length s > 100)

let test_env_deterministic () =
  let run () =
    let rows = Exp_table1.rows () in
    List.map (fun r -> r.Exp_table1.cycles) rows
  in
  Alcotest.(check (list (float 1e-12))) "bit-identical reruns" (run ()) (run ())

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "experiments"
    [
      ( "shapes",
        [
          tc "table1 vs paper" `Quick test_table1_matches_paper;
          tc "fig2 W2 dominates" `Quick test_fig2_w2_dominates;
          tc "fig3 sparse linear" `Quick test_fig3_sparse_linear;
          tc "fig8 hit row" `Quick test_fig8_hit_row_flat_and_fast;
          tc "fig9 knee at 15" `Quick test_fig9_knee_at_15;
          tc "fig10 mpk flat" `Quick test_fig10_mpk_flat;
          tc "table3 shape" `Quick test_table3_shape;
          tc "memover 32B/group" `Quick test_memover_32_bytes_per_group;
        ] );
      ( "plumbing",
        [
          tc "report catalogue" `Quick test_report_catalogue;
          tc "ablation sync renders" `Quick test_ablation_sync_lazy_cheaper;
          tc "ablation policy renders" `Quick test_ablation_policy_lru_best;
          tc "deterministic" `Quick test_env_deterministic;
        ] );
    ]
