(* The JIT case study (paper §5.2/§6.1): W⊕X on a JIT code cache, and
   the SDCG race-condition attack — a compromised thread racing the
   compiler's write window to plant shellcode.

     dune exec examples/jit_wxorx.exe

   mprotect opens the window for *every* thread (attack lands); libmpk's
   window lives only in the compiler thread's PKRU (attack faults). *)

open Mpk_jit

let attack strategy =
  Printf.printf "%-22s " (Wx.to_string strategy);
  match Attack.run ~strategy () with
  | Attack.Injected v ->
      Printf.printf "VULNERABLE — attacker's shellcode executed (returned 0x%x)\n" v
  | Attack.Blocked reason -> Printf.printf "safe — %s\n" reason

let () =
  print_endline "JIT race-condition attack matrix (paper §6.1):\n";
  List.iter attack [ Wx.No_wx; Wx.Mprotect; Wx.Key_per_page; Wx.Key_per_process; Wx.Sdcg ];

  (* And the performance side: permission-switch cost per patch. *)
  print_endline "\npermission-switch cost of one code patch (simulated cycles):";
  let cost strategy =
    let machine = Mpk_hw.Machine.create ~cores:2 ~mem_mib:128 () in
    let proc = Mpk_kernel.Proc.create machine in
    let task = Mpk_kernel.Proc.spawn proc ~core_id:0 () in
    let mpk =
      match strategy with
      | Wx.Key_per_page | Wx.Key_per_process -> Some (Libmpk.init ~evict_rate:1.0 proc task)
      | _ -> None
    in
    let engine = Engine.create Engine.Chakracore strategy proc task ?mpk () in
    let name = Engine.compile engine task ~ops:30 ~seed:7 () in
    Codecache.reset_perm_switch_cycles (Engine.cache engine);
    Engine.patch engine task name;
    Codecache.perm_switch_cycles (Engine.cache engine)
  in
  List.iter
    (fun s -> Printf.printf "  %-22s %8.1f\n" (Wx.to_string s) (cost s))
    [ Wx.Mprotect; Wx.Key_per_page; Wx.Key_per_process; Wx.Sdcg ];
  print_endline "\njit_wxorx demo done."
