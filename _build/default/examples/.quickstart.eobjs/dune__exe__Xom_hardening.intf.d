examples/xom_hardening.mli:
