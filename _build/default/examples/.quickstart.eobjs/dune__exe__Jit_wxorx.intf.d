examples/jit_wxorx.mli:
