examples/jit_wxorx.ml: Attack Codecache Engine Libmpk List Mpk_hw Mpk_jit Mpk_kernel Printf Wx
