examples/quickstart.mli:
