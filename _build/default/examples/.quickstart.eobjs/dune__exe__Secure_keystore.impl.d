examples/secure_keystore.ml: Bytes Heartbleed Keystore Libmpk Mpk_hw Mpk_kernel Mpk_secstore Mpk_util Printf Proc String Tls_server
