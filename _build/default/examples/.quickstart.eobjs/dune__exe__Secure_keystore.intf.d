examples/secure_keystore.mli:
