examples/kvstore_demo.ml: Array Bytes Cpu List Mmu Mpk_hw Mpk_kernel Mpk_kvstore Option Printf Proc Server Task
