examples/quickstart.ml: Bytes Cpu Libmpk Machine Mmu Mpk_hw Mpk_kernel Perm Printf Proc Syscall Task
