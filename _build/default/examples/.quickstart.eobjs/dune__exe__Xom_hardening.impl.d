examples/xom_hardening.ml: Bytecode Format Libmpk List Machine Mm Mmu Mpk_hw Mpk_jit Mpk_kernel Printf Proc Task Xom
