(* The OpenSSL case study (paper §5.1/§6.1): a TLS-like server stores its
   RSA private key in an mpk-protected heap. A Heartbleed-style over-read
   leaks the key from the unprotected server; against the protected one
   it dies with a protection-key fault.

     dune exec examples/secure_keystore.exe *)

open Mpk_kernel
open Mpk_secstore

let line = String.make 70 '-'

let demo mode =
  Printf.printf "%s\nkeystore mode: %s\n%s\n" line
    (match mode with
    | Keystore.Insecure -> "INSECURE (stock OpenSSL layout)"
    | Keystore.Protected -> "PROTECTED (libmpk: keys in an isolated page group)")
    line;
  let machine = Mpk_hw.Machine.create ~cores:2 ~mem_mib:64 () in
  let proc = Proc.create machine in
  let task = Proc.spawn proc ~core_id:0 () in
  let mpk =
    match mode with
    | Keystore.Protected -> Some (Libmpk.init ~evict_rate:1.0 proc task)
    | Keystore.Insecure -> None
  in
  let server = Tls_server.create ~mode proc task ?mpk ~seed:0x5EC0L () in
  let ks = Tls_server.keystore server in

  (* Normal operation works in both modes: handshake + one request. *)
  let prng = Mpk_util.Prng.create ~seed:42L in
  let blob, client_key = Tls_server.client_hello server prng in
  let session = Tls_server.accept server task blob in
  Printf.printf "TLS handshake: session keys agree = %b\n"
    (Bytes.equal client_key (Tls_server.session_key session));
  ignore (Tls_server.serve server task session ~size:1024);
  print_endline "served a 1 KB response over the session";

  (* The attack: a heartbeat echo claiming far more bytes than it sent. *)
  print_endline "\nattacker sends: payload=\"ping\" claimed_len=8192 ...";
  (match Heartbleed.echo ks task ~payload:(Bytes.of_string "ping") ~claimed_len:8192 with
  | Heartbleed.Leaked data ->
      Printf.printf "server echoed %d bytes\n" (Bytes.length data);
      if Heartbleed.leaks_secret ks task (Heartbleed.Leaked data) then
        print_endline ">>> PRIVATE KEY LEAKED (the echoed bytes contain the RSA secret) <<<"
      else print_endline "over-read succeeded but missed the key"
  | Heartbleed.Crashed reason ->
      Printf.printf "request died: %s\n" reason;
      print_endline ">>> attack blocked: the over-read hit the protected page group <<<");
  print_newline ()

let () =
  demo Keystore.Insecure;
  demo Keystore.Protected;
  print_endline "secure_keystore demo done."
