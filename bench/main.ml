(* The benchmark harness.

   Two layers:

   1. The paper reproduction (default): every table and figure from the
      libmpk evaluation, regenerated on the deterministic simulator and
      printed with paper-value annotations. `--only <id>` runs one of
      table1 fig2 fig3 fig8 fig9 fig10 fig11 fig12 fig13 fig14 table3.

   2. A Bechamel suite (`--bechamel` to run alone; also run by default
      after the tables): one Test.make per table/figure measuring the
      host wall-clock cost of that experiment's innermost operation — a
      regression canary for the simulator itself. *)

open Bechamel
open Toolkit

let list_ids () =
  String.concat " " (List.map (fun e -> e.Mpk_experiments.Report.id) Mpk_experiments.Report.all)

(* --- Bechamel micro-suite: the innermost operation of each experiment --- *)

open Mpk_hw
open Mpk_kernel

let page = Physmem.page_size

let test_table1_pkey_mprotect () =
  let env = Mpk_experiments.Env.make () in
  let task = Mpk_experiments.Env.main env in
  let proc = env.Mpk_experiments.Env.proc in
  let addr = Syscall.mmap proc task ~len:page ~prot:Perm.rw () in
  Mm.populate (Proc.mm proc) (Task.core task) ~addr ~len:page;
  let k = Syscall.pkey_alloc proc task ~init_rights:Pkru.Read_write in
  Staged.stage (fun () ->
      Syscall.pkey_mprotect proc task ~addr ~len:page ~prot:Perm.rw ~pkey:k)

let test_fig2_wrpkru () =
  let cpu = Cpu.create ~id:0 () in
  Staged.stage (fun () ->
      Cpu.wrpkru cpu (Cpu.pkru cpu);
      Cpu.exec_adds cpu 16)

let test_fig3_mprotect_100 () =
  let env = Mpk_experiments.Env.make () in
  let task = Mpk_experiments.Env.main env in
  let proc = env.Mpk_experiments.Env.proc in
  let addr = Syscall.mmap proc task ~len:(100 * page) ~prot:Perm.rw () in
  let i = ref 0 in
  Staged.stage (fun () ->
      incr i;
      let prot = if !i land 1 = 0 then Perm.r else Perm.rw in
      Syscall.mprotect proc task ~addr ~len:(100 * page) ~prot)

let test_fig8_hit () =
  let env = Mpk_experiments.Env.make () in
  let task = Mpk_experiments.Env.main env in
  let mpk = Libmpk.init ~evict_rate:1.0 env.Mpk_experiments.Env.proc task in
  ignore (Libmpk.mpk_mmap mpk task ~vkey:1 ~len:page ~prot:Perm.rw);
  Libmpk.mpk_mprotect mpk task ~vkey:1 ~prot:Perm.rw;
  let i = ref 0 in
  Staged.stage (fun () ->
      incr i;
      Libmpk.mpk_mprotect mpk task ~vkey:1 ~prot:(if !i land 1 = 0 then Perm.r else Perm.rw))

let test_fig9_patch () =
  let env = Mpk_experiments.Env.make ~mem_mib:256 () in
  let task = Mpk_experiments.Env.main env in
  let proc = env.Mpk_experiments.Env.proc in
  let mpk = Libmpk.init ~evict_rate:1.0 proc task in
  let engine =
    Mpk_jit.Engine.create Mpk_jit.Engine.Chakracore Mpk_jit.Wx.Key_per_page proc task ~mpk ()
  in
  let name = Mpk_jit.Engine.compile engine task ~ops:50 ~seed:1 () in
  Staged.stage (fun () -> Mpk_jit.Engine.patch engine task name)

let test_fig10_sync () =
  let env = Mpk_experiments.Env.make ~threads:4 () in
  let task = Mpk_experiments.Env.main env in
  let mpk = Libmpk.init ~evict_rate:1.0 env.Mpk_experiments.Env.proc task in
  ignore (Libmpk.mpk_mmap mpk task ~vkey:1 ~len:page ~prot:Perm.rw);
  Libmpk.mpk_mprotect mpk task ~vkey:1 ~prot:Perm.rw;
  let i = ref 0 in
  Staged.stage (fun () ->
      incr i;
      Libmpk.mpk_mprotect mpk task ~vkey:1 ~prot:(if !i land 1 = 0 then Perm.r else Perm.rw))

let test_fig11_serve () =
  let env = Mpk_experiments.Env.make ~threads:1 ~mem_mib:256 () in
  let task = Mpk_experiments.Env.main env in
  let proc = env.Mpk_experiments.Env.proc in
  let mpk = Libmpk.init ~evict_rate:1.0 proc task in
  let server =
    Mpk_secstore.Tls_server.create ~mode:Mpk_secstore.Keystore.Protected proc task ~mpk
      ~seed:0x42L ()
  in
  let prng = Mpk_util.Prng.create ~seed:7L in
  let blob, _ = Mpk_secstore.Tls_server.client_hello server prng in
  let session = Mpk_secstore.Tls_server.accept server task blob in
  Staged.stage (fun () ->
      ignore (Mpk_secstore.Tls_server.serve server task session ~size:4096))

let test_fig12_engine_run () =
  let env = Mpk_experiments.Env.make ~mem_mib:256 () in
  let task = Mpk_experiments.Env.main env in
  let proc = env.Mpk_experiments.Env.proc in
  let mpk = Libmpk.init ~evict_rate:1.0 proc task in
  let engine =
    Mpk_jit.Engine.create Mpk_jit.Engine.Chakracore Mpk_jit.Wx.Key_per_process proc task ~mpk ()
  in
  let name = Mpk_jit.Engine.compile engine task ~ops:40 ~seed:2 () in
  Staged.stage (fun () -> ignore (Mpk_jit.Engine.run engine task name))

let test_fig13_sdcg_patch () =
  let env = Mpk_experiments.Env.make ~mem_mib:256 () in
  let task = Mpk_experiments.Env.main env in
  let proc = env.Mpk_experiments.Env.proc in
  let engine = Mpk_jit.Engine.create Mpk_jit.Engine.V8 Mpk_jit.Wx.Sdcg proc task () in
  let name = Mpk_jit.Engine.compile engine task ~ops:40 ~seed:3 () in
  Staged.stage (fun () -> Mpk_jit.Engine.patch engine task name)

let test_fig14_kv_get () =
  let srv =
    Mpk_kvstore.Server.create ~mode:Mpk_kvstore.Server.Domain ~workers:1 ~slab_mib:8
      ~buckets:1024 ()
  in
  ignore (Mpk_kvstore.Server.set srv ~worker:0 ~key:"bench" ~value:(Bytes.make 512 'v') : (unit, _) result);
  Staged.stage (fun () -> ignore (Mpk_kvstore.Server.get srv ~worker:0 ~key:"bench"))

let test_scale_sharded_set () =
  (* the `mpkctl scale` hot path: key-affine set through the sharded Sync
     server, regions opened/sealed with one batched mprotect pair each way *)
  let srv =
    Mpk_kvstore.Server.create ~mode:Mpk_kvstore.Server.Sync ~workers:4 ~shards:4
      ~slab_mib:16 ~buckets:1024 ()
  in
  let value = Bytes.make 128 'v' in
  let i = ref 0 in
  Staged.stage (fun () ->
      incr i;
      let key = Printf.sprintf "bench-%d" (!i land 255) in
      ignore
        (Mpk_kvstore.Server.set srv
           ~worker:(Mpk_kvstore.Server.shard_of_key srv key)
           ~key ~value
          : (unit, _) result))

let test_table3_begin_end () =
  let env = Mpk_experiments.Env.make () in
  let task = Mpk_experiments.Env.main env in
  let mpk = Libmpk.init ~evict_rate:1.0 env.Mpk_experiments.Env.proc task in
  ignore (Libmpk.mpk_mmap mpk task ~vkey:1 ~len:page ~prot:Perm.rw);
  Staged.stage (fun () ->
      Libmpk.mpk_begin mpk task ~vkey:1 ~prot:Perm.rw;
      Libmpk.mpk_end mpk task ~vkey:1)

let bechamel_tests () =
  Test.make_grouped ~name:"libmpk-sim"
    [
      Test.make ~name:"table1/pkey_mprotect" (test_table1_pkey_mprotect ());
      Test.make ~name:"fig2/wrpkru+adds" (test_fig2_wrpkru ());
      Test.make ~name:"fig3/mprotect-100p" (test_fig3_mprotect_100 ());
      Test.make ~name:"fig8/cache-hit" (test_fig8_hit ());
      Test.make ~name:"fig9/keypage-patch" (test_fig9_patch ());
      Test.make ~name:"fig10/sync-4t" (test_fig10_sync ());
      Test.make ~name:"fig11/tls-serve" (test_fig11_serve ());
      Test.make ~name:"fig12/jit-run" (test_fig12_engine_run ());
      Test.make ~name:"fig13/sdcg-patch" (test_fig13_sdcg_patch ());
      Test.make ~name:"fig14/kv-get" (test_fig14_kv_get ());
      Test.make ~name:"scale/sharded-set-sync" (test_scale_sharded_set ());
      Test.make ~name:"table3/begin-end" (test_table3_begin_end ());
    ]

let run_bechamel () =
  print_endline (String.make 78 '=');
  print_endline "Bechamel: host wall-clock of each experiment's innermost operation";
  print_endline (String.make 78 '=');
  let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:true () in
  let raw = Benchmark.all cfg instances (bechamel_tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with Some (e :: _) -> e | Some [] | None -> Float.nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  print_endline
    (Mpk_util.Table.render
       ~aligns:[ Mpk_util.Table.Left; Mpk_util.Table.Right ]
       ~header:[ "benchmark"; "ns/op (host)" ]
       (List.map (fun (n, ns) -> [ n; Printf.sprintf "%.0f" ns ]) rows))

let () =
  let args = Array.to_list Sys.argv in
  let only =
    let rec scan = function
      | "--only" :: id :: _ -> Some id
      | _ :: rest -> scan rest
      | [] -> None
    in
    scan args
  in
  let skip_bechamel = List.mem "--no-bechamel" args in
  let bechamel_only = List.mem "--bechamel" args in
  if bechamel_only then run_bechamel ()
  else
    match only with
    | Some id ->
        if not (Mpk_experiments.Report.run_one id) then begin
          Printf.eprintf "unknown experiment %S; available: %s\n" id (list_ids ());
          exit 1
        end
    | None ->
        Mpk_experiments.Report.run_all ();
        if not skip_bechamel then run_bechamel ()
