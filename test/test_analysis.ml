(* Tests for the static domain-safety analyzer (Mpk_analysis): the IR
   builder and dataflow engine, the five lint passes on hand-built
   micro-programs, the three app models (clean = zero findings, every
   planted violation found), and witness replay on the simulator
   (Mpk_check.Replay) — every non-[Maybe] finding on a planted app must
   come back [Confirmed]. *)

open Mpk_hw
open Mpk_analysis

let errors fs = List.filter (fun f -> f.Lint.severity = Lint.Error) fs

let has_detail pred fs = List.exists (fun f -> pred f.Lint.detail) fs

let show_findings fs =
  String.concat "; " (List.map (fun f -> Format.asprintf "%a" Lint.pp_finding f) fs)

let expect_detail what pred fs =
  if not (has_detail pred fs) then
    Alcotest.fail
      (Printf.sprintf "expected a %s finding, got [%s]" what (show_findings fs))

let expect_clean what fs =
  if fs <> [] then
    Alcotest.fail (Printf.sprintf "expected no findings for %s, got [%s]" what
                     (show_findings fs))

(* --- engine: interval domain and fixpoint termination --- *)

let test_interval () =
  let open Dataflow.Interval in
  Alcotest.(check bool) "zero" true (equal zero (0, 0));
  let rec bump iv n = if n = 0 then iv else bump (incr iv) (n - 1) in
  Alcotest.(check bool) "saturates at cap" true
    (equal (bump zero (cap + 5)) (cap, cap));
  Alcotest.(check bool) "decr floors at 0" true (equal (decr zero) zero);
  Alcotest.(check bool) "join widens" true
    (equal (join (1, 1) (0, 3)) (0, 3));
  Alcotest.(check string) "to_string range" "[0,2]" (to_string (0, 2))

let test_fixpoint_on_loop () =
  (* A begin/end balanced loop must reach a fixpoint (finite-height
     domain, saturating counters) and stay clean. *)
  let open Ir in
  let p =
    build ~name:"loop"
      ~main:
        [
          op (Mmap { vkey = 1; pages = 1; prot = Perm.rw });
          Loop
            ( "spin",
              [
                op (Begin { vkey = 1; prot = Perm.rw });
                op (Write { vkey = 1 });
                op (End { vkey = 1 });
              ] );
          op (Free { vkey = 1 });
        ]
      ()
  in
  expect_clean "balanced loop" (Lint.analyze p)

let test_of_trace_shape () =
  let open Ir in
  let p =
    of_trace ~name:"trace"
      [
        (0, Mmap { vkey = 1; pages = 1; prot = Perm.rw });
        (1, Begin { vkey = 1; prot = Perm.r });
        (0, Read { vkey = 1 });
        (1, End { vkey = 1 });
      ]
  in
  Alcotest.(check int) "two threads" 2 (List.length p.threads);
  let main_ops = List.map (fun n -> n.op) (thread_nodes p 0) in
  let spawns = List.filter (function Spawn _ -> true | _ -> false) main_ops in
  let joins = List.filter (function Join _ -> true | _ -> false) main_ops in
  Alcotest.(check int) "main spawns t1" 1 (List.length spawns);
  Alcotest.(check int) "main joins t1" 1 (List.length joins)

(* --- micro-programs, one per pass --- *)

let micro ?threads name main = Ir.build ~name ~main ?threads ()

let test_typestate_micro () =
  let open Ir in
  let fs =
    Lint.analyze
      (micro "uaf"
         [
           op (Mmap { vkey = 1; pages = 1; prot = Perm.rw });
           op (Free { vkey = 1 });
           op (Read { vkey = 1 });
           op (Free { vkey = 1 });
           op (Write { vkey = 2 });
         ])
  in
  expect_detail "use-after-free"
    (function Lint.Use_after_free { vkey = 1 } -> true | _ -> false)
    fs;
  expect_detail "double-free"
    (function Lint.Double_free { vkey = 1 } -> true | _ -> false)
    fs;
  expect_detail "use-unmapped"
    (function Lint.Use_unmapped { vkey = 2 } -> true | _ -> false)
    fs;
  let fs =
    Lint.analyze
      (micro "mmap-live"
         [
           op (Mmap { vkey = 3; pages = 1; prot = Perm.rw });
           op (Mmap { vkey = 3; pages = 1; prot = Perm.rw });
           op (Free { vkey = 3 });
         ])
  in
  expect_detail "mmap of live vkey"
    (function Lint.Mmap_live { vkey = 3 } -> true | _ -> false)
    fs

let test_balance_micro () =
  let open Ir in
  let fs =
    Lint.analyze
      (micro "underflow"
         [
           op (Mmap { vkey = 1; pages = 1; prot = Perm.rw });
           op (End { vkey = 1 });
           op (Free { vkey = 1 });
         ])
  in
  expect_detail "end underflow"
    (function Lint.End_underflow { vkey = 1 } -> true | _ -> false)
    fs;
  (* early return on one arm skips the end: unmatched on *some* path *)
  let fs =
    Lint.analyze
      (micro "early-return"
         [
           op (Mmap { vkey = 1; pages = 1; prot = Perm.rw });
           op (Begin { vkey = 1; prot = Perm.rw });
           If ("fast path?", [ label "reply early" ], [ op (End { vkey = 1 }) ]);
         ])
  in
  expect_detail "unbalanced on some path"
    (function Lint.Unbalanced { vkey = 1; definite = false } -> true | _ -> false)
    fs;
  let fs =
    Lint.analyze
      (micro "free-inside"
         [
           op (Mmap { vkey = 1; pages = 1; prot = Perm.rw });
           op (Begin { vkey = 1; prot = Perm.rw });
           op (Free { vkey = 1 });
         ])
  in
  expect_detail "free inside begin"
    (function Lint.Free_inside_begin { vkey = 1 } -> true | _ -> false)
    fs

let test_balance_signal_escape () =
  (* The handler forgets mpk_end: the escape edge (taken mid-read, before
     the body's own end) leaks the begin on the handler path. *)
  let open Ir in
  let fs =
    Lint.analyze
      (micro "escape-leak"
         [
           op (Mmap { vkey = 1; pages = 1; prot = Perm.rw });
           op (Begin { vkey = 1; prot = Perm.r });
           Guard
             ( [ op (Read { vkey = 1 }); op (End { vkey = 1 }) ],
               [ label "handler forgets end" ] );
           op (Free { vkey = 1 });
         ])
  in
  expect_detail "leak via signal escape"
    (function Lint.Unbalanced { vkey = 1; definite = false } -> true | _ -> false)
    fs;
  (* ... and a handler that does close the domain is clean. *)
  let fs =
    Lint.analyze
      (micro "escape-closed"
         [
           op (Mmap { vkey = 1; pages = 1; prot = Perm.rw });
           op (Begin { vkey = 1; prot = Perm.r });
           Guard
             ( [ op (Read { vkey = 1 }); op (End { vkey = 1 }) ],
               [ op (End { vkey = 1 }); label "drop request" ] );
           op (Free { vkey = 1 });
         ])
  in
  expect_clean "guard with balanced handler" fs

let test_wx_micro () =
  let open Ir in
  let fs =
    Lint.analyze
      (micro "wx-global"
         [
           op (Mmap { vkey = 1; pages = 1; prot = Perm.rwx });
           op (Mprotect { vkey = 1; prot = Perm.rwx });
           op (Exec { vkey = 1 });
           op (Free { vkey = 1 });
         ])
  in
  expect_detail "W^X mapping"
    (function Lint.Wx_mapping { vkey = 1 } -> true | _ -> false)
    fs;
  expect_detail "exec while globally writable"
    (function Lint.Wx_exec_writable { vkey = 1; window = false } -> true | _ -> false)
    fs;
  let fs =
    Lint.analyze
      (micro "wx-window"
         [
           op (Mmap { vkey = 1; pages = 1; prot = Perm.rwx });
           op (Begin { vkey = 1; prot = Perm.rw });
           op (Emit { vkey = 1; code = [ I_ret ] });
           op (Exec { vkey = 1 });
           op (End { vkey = 1 });
           op (Free { vkey = 1 });
         ])
  in
  expect_detail "exec inside own write window"
    (function Lint.Wx_exec_writable { vkey = 1; window = true } -> true | _ -> false)
    fs

let test_gadget_scan () =
  let open Ir in
  let checked = [ I_op "mov"; I_wrpkru; I_cmp_pkru; I_br_trusted; I_ret ] in
  Alcotest.(check (list int)) "checked WRPKRU is safe" []
    (Lint.Gadget.unsafe_offsets checked);
  Alcotest.(check (list int)) "bare WRPKRU flagged" [ 1 ]
    (Lint.Gadget.unsafe_offsets [ I_op "mov"; I_wrpkru; I_op "jmp"; I_ret ]);
  Alcotest.(check (list int)) "cmp without branch is not a full check" [ 0 ]
    (Lint.Gadget.unsafe_offsets [ I_wrpkru; I_cmp_pkru; I_ret ]);
  Alcotest.(check (list int)) "WRPKRU at stream end flagged" [ 2 ]
    (Lint.Gadget.unsafe_offsets [ I_op "a"; I_op "b"; I_wrpkru ])

let test_toctou_micro () =
  let open Ir in
  let fs =
    Lint.analyze
      (micro "toctou"
         ~threads:[ (1, [ Loop ("scan", [ op (Read { vkey = 1 }) ]) ]) ]
         [
           op (Mmap { vkey = 1; pages = 1; prot = Perm.rw });
           op (Mprotect { vkey = 1; prot = Perm.rw });
           op (Spawn { tid = 1 });
           op (Mprotect { vkey = 1; prot = Perm.none });
           op (Join { tid = 1 });
           op (Free { vkey = 1 });
         ])
  in
  expect_detail "revocation races bare reader"
    (function
      | Lint.Toctou { vkey = 1; victim = 1; access = Lint.A_read } -> true
      | _ -> false)
    fs;
  (* joining the reader before revoking removes the race *)
  let fs =
    Lint.analyze
      (micro "toctou-joined"
         ~threads:[ (1, [ op (Read { vkey = 1 }) ]) ]
         [
           op (Mmap { vkey = 1; pages = 1; prot = Perm.rw });
           op (Mprotect { vkey = 1; prot = Perm.rw });
           op (Spawn { tid = 1 });
           op (Join { tid = 1 });
           op (Mprotect { vkey = 1; prot = Perm.none });
           op (Free { vkey = 1 });
         ])
  in
  if
    List.exists
      (fun f -> match f.Lint.detail with Lint.Toctou _ -> true | _ -> false)
      (errors fs)
  then Alcotest.fail "toctou reported after the victim was joined"

(* --- app models: clean runs are silent, every plant is found --- *)

let test_apps_clean () =
  expect_clean "jit" (Lint.analyze (Mpk_jit.Jit_model.program ()));
  expect_clean "secstore" (Lint.analyze (Mpk_secstore.Secstore_model.program ()));
  expect_clean "kvstore" (Lint.analyze (Mpk_kvstore.Kvstore_model.program ()))

let test_planted_jit () =
  let fs = Lint.analyze (Mpk_jit.Jit_model.program ~plant:`Wx ()) in
  expect_detail "planted W^X mapping"
    (function Lint.Wx_mapping _ -> true | _ -> false)
    (errors fs);
  expect_detail "planted exec-while-writable"
    (function Lint.Wx_exec_writable _ -> true | _ -> false)
    (errors fs);
  let fs = Lint.analyze (Mpk_jit.Jit_model.program ~plant:`Gadget ()) in
  expect_detail "planted unchecked WRPKRU"
    (function Lint.Unsafe_wrpkru _ -> true | _ -> false)
    (errors fs)

let test_planted_secstore () =
  let fs = Lint.analyze (Mpk_secstore.Secstore_model.program ~plant:`Use_after_free ()) in
  expect_detail "planted use-after-free"
    (function Lint.Use_after_free _ -> true | _ -> false)
    (errors fs);
  let fs = Lint.analyze (Mpk_secstore.Secstore_model.program ~plant:`Double_free ()) in
  expect_detail "planted double-free"
    (function Lint.Double_free _ -> true | _ -> false)
    (errors fs);
  let fs = Lint.analyze (Mpk_secstore.Secstore_model.program ~plant:`Leak ()) in
  expect_detail "planted leak-on-exit"
    (function Lint.Leak_on_exit _ -> true | _ -> false)
    fs;
  if errors fs <> [] then
    Alcotest.fail "leak-on-exit must stay a warning, not an error"

let test_planted_kvstore () =
  let fs = Lint.analyze (Mpk_kvstore.Kvstore_model.program ~plant:`Unbalanced ()) in
  expect_detail "planted unbalanced fast path"
    (function Lint.Unbalanced { definite = false; _ } -> true | _ -> false)
    (errors fs);
  let fs = Lint.analyze (Mpk_kvstore.Kvstore_model.program ~plant:`Toctou ()) in
  expect_detail "planted lazy-sync TOCTOU"
    (function Lint.Toctou _ -> true | _ -> false)
    (errors fs)

(* --- witness replay: every concrete finding confirms on the simulator --- *)

let confirm_all what fs =
  List.iter
    (fun f ->
      match f.Lint.detail with
      | Lint.Maybe _ -> ()  (* imprecision-only; no concrete path to replay *)
      | _ -> (
          match Mpk_check.Replay.confirm f with
          | { Mpk_check.Replay.verdict = Mpk_check.Replay.Confirmed; _ } -> ()
          | { note; _ } ->
              Alcotest.fail
                (Format.asprintf "%s: unreproduced finding %a (%s)" what
                   Lint.pp_finding f note)))
    fs

let test_replay_confirms_plants () =
  confirm_all "jit/wx" (Lint.analyze (Mpk_jit.Jit_model.program ~plant:`Wx ()));
  confirm_all "jit/gadget" (Lint.analyze (Mpk_jit.Jit_model.program ~plant:`Gadget ()));
  confirm_all "secstore/uaf"
    (Lint.analyze (Mpk_secstore.Secstore_model.program ~plant:`Use_after_free ()));
  confirm_all "secstore/double-free"
    (Lint.analyze (Mpk_secstore.Secstore_model.program ~plant:`Double_free ()));
  confirm_all "secstore/leak"
    (Lint.analyze (Mpk_secstore.Secstore_model.program ~plant:`Leak ()));
  confirm_all "kvstore/unbalanced"
    (Lint.analyze (Mpk_kvstore.Kvstore_model.program ~plant:`Unbalanced ()));
  confirm_all "kvstore/toctou"
    (Lint.analyze (Mpk_kvstore.Kvstore_model.program ~plant:`Toctou ()))

(* --- stress-trace re-emission shares the lint vocabulary --- *)

let test_stress_trace_ir () =
  let ops = Mpk_check.Stress.gen_ops Mpk_check.Stress.default_config 40 in
  let p = Mpk_check.Stress.ir_of_trace ~name:"stress" ops in
  Alcotest.(check string) "program name" "stress" p.Ir.pname;
  (* every non-heap op appears as its IR counterpart *)
  let ir_ops =
    List.concat_map (fun (t : Ir.thread) ->
        List.map (fun (n : Ir.node) -> n.Ir.op) (Ir.thread_nodes p t.Ir.tid))
      p.Ir.threads
  in
  let count pred l = List.length (List.filter pred l) in
  let begins_src =
    count (function Mpk_check.Stress.Begin _ -> true | _ -> false) ops
  in
  let begins_ir = count (function Ir.Begin _ -> true | _ -> false) ir_ops in
  Alcotest.(check int) "begin ops preserved" begins_src begins_ir;
  (* the analyzer runs on the re-emitted trace without blowing up *)
  ignore (Lint.analyze p : Lint.finding list)

let () =
  Alcotest.run "analysis"
    [
      ( "engine",
        [
          Alcotest.test_case "interval domain saturates" `Quick test_interval;
          Alcotest.test_case "fixpoint on a balanced loop" `Quick test_fixpoint_on_loop;
          Alcotest.test_case "of_trace spawns and joins" `Quick test_of_trace_shape;
        ] );
      ( "passes",
        [
          Alcotest.test_case "typestate lifecycle" `Quick test_typestate_micro;
          Alcotest.test_case "begin/end balance" `Quick test_balance_micro;
          Alcotest.test_case "balance across signal escape" `Quick
            test_balance_signal_escape;
          Alcotest.test_case "W^X" `Quick test_wx_micro;
          Alcotest.test_case "WRPKRU gadget scan" `Quick test_gadget_scan;
          Alcotest.test_case "lazy-sync TOCTOU" `Quick test_toctou_micro;
        ] );
      ( "apps",
        [
          Alcotest.test_case "clean models are silent" `Quick test_apps_clean;
          Alcotest.test_case "jit plants found" `Quick test_planted_jit;
          Alcotest.test_case "secstore plants found" `Quick test_planted_secstore;
          Alcotest.test_case "kvstore plants found" `Quick test_planted_kvstore;
        ] );
      ( "replay",
        [
          Alcotest.test_case "planted findings confirm on the simulator" `Slow
            test_replay_confirms_plants;
        ] );
      ( "stress-ir",
        [
          Alcotest.test_case "random traces re-emit as IR" `Quick test_stress_trace_ir;
        ] );
    ]
