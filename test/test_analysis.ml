(* Tests for the static domain-safety analyzer (Mpk_analysis): the IR
   builder and dataflow engine, the five lint passes on hand-built
   micro-programs, the three app models (clean = zero findings, every
   planted violation found), and witness replay on the simulator
   (Mpk_check.Replay) — every non-[Maybe] finding on a planted app must
   come back [Confirmed]. *)

open Mpk_hw
open Mpk_analysis

let errors fs = List.filter (fun f -> f.Lint.severity = Lint.Error) fs

let has_detail pred fs = List.exists (fun f -> pred f.Lint.detail) fs

let show_findings fs =
  String.concat "; " (List.map (fun f -> Format.asprintf "%a" Lint.pp_finding f) fs)

let expect_detail what pred fs =
  if not (has_detail pred fs) then
    Alcotest.fail
      (Printf.sprintf "expected a %s finding, got [%s]" what (show_findings fs))

let expect_clean what fs =
  if fs <> [] then
    Alcotest.fail (Printf.sprintf "expected no findings for %s, got [%s]" what
                     (show_findings fs))

(* --- engine: interval domain and fixpoint termination --- *)

let test_interval () =
  let open Dataflow.Interval in
  Alcotest.(check bool) "zero" true (equal zero (0, 0));
  let rec bump iv n = if n = 0 then iv else bump (incr iv) (n - 1) in
  Alcotest.(check bool) "saturates at cap" true
    (equal (bump zero (cap + 5)) (cap, cap));
  Alcotest.(check bool) "decr floors at 0" true (equal (decr zero) zero);
  Alcotest.(check bool) "join widens" true
    (equal (join (1, 1) (0, 3)) (0, 3));
  Alcotest.(check string) "to_string range" "[0,2]" (to_string (0, 2))

let test_fixpoint_on_loop () =
  (* A begin/end balanced loop must reach a fixpoint (finite-height
     domain, saturating counters) and stay clean. *)
  let open Ir in
  let p =
    build ~name:"loop"
      ~main:
        [
          op (Mmap { vkey = 1; pages = 1; prot = Perm.rw });
          Loop
            ( "spin",
              [
                op (Begin { vkey = 1; prot = Perm.rw });
                op (Write { vkey = 1 });
                op (End { vkey = 1 });
              ] );
          op (Free { vkey = 1 });
        ]
      ()
  in
  expect_clean "balanced loop" (Lint.analyze p)

let test_of_trace_shape () =
  let open Ir in
  let p =
    of_trace ~name:"trace"
      [
        (0, Mmap { vkey = 1; pages = 1; prot = Perm.rw });
        (1, Begin { vkey = 1; prot = Perm.r });
        (0, Read { vkey = 1 });
        (1, End { vkey = 1 });
      ]
  in
  Alcotest.(check int) "two threads" 2 (List.length p.threads);
  let main_ops = List.map (fun n -> n.op) (thread_nodes p 0) in
  let spawns = List.filter (function Spawn _ -> true | _ -> false) main_ops in
  let joins = List.filter (function Join _ -> true | _ -> false) main_ops in
  Alcotest.(check int) "main spawns t1" 1 (List.length spawns);
  Alcotest.(check int) "main joins t1" 1 (List.length joins)

(* --- micro-programs, one per pass --- *)

let micro ?threads name main = Ir.build ~name ~main ?threads ()

let test_typestate_micro () =
  let open Ir in
  let fs =
    Lint.analyze
      (micro "uaf"
         [
           op (Mmap { vkey = 1; pages = 1; prot = Perm.rw });
           op (Free { vkey = 1 });
           op (Read { vkey = 1 });
           op (Free { vkey = 1 });
           op (Write { vkey = 2 });
         ])
  in
  expect_detail "use-after-free"
    (function Lint.Use_after_free { vkey = 1 } -> true | _ -> false)
    fs;
  expect_detail "double-free"
    (function Lint.Double_free { vkey = 1 } -> true | _ -> false)
    fs;
  expect_detail "use-unmapped"
    (function Lint.Use_unmapped { vkey = 2 } -> true | _ -> false)
    fs;
  let fs =
    Lint.analyze
      (micro "mmap-live"
         [
           op (Mmap { vkey = 3; pages = 1; prot = Perm.rw });
           op (Mmap { vkey = 3; pages = 1; prot = Perm.rw });
           op (Free { vkey = 3 });
         ])
  in
  expect_detail "mmap of live vkey"
    (function Lint.Mmap_live { vkey = 3 } -> true | _ -> false)
    fs

let test_balance_micro () =
  let open Ir in
  let fs =
    Lint.analyze
      (micro "underflow"
         [
           op (Mmap { vkey = 1; pages = 1; prot = Perm.rw });
           op (End { vkey = 1 });
           op (Free { vkey = 1 });
         ])
  in
  expect_detail "end underflow"
    (function Lint.End_underflow { vkey = 1 } -> true | _ -> false)
    fs;
  (* early return on one arm skips the end: unmatched on *some* path *)
  let fs =
    Lint.analyze
      (micro "early-return"
         [
           op (Mmap { vkey = 1; pages = 1; prot = Perm.rw });
           op (Begin { vkey = 1; prot = Perm.rw });
           If ("fast path?", [ label "reply early" ], [ op (End { vkey = 1 }) ]);
         ])
  in
  expect_detail "unbalanced on some path"
    (function Lint.Unbalanced { vkey = 1; definite = false } -> true | _ -> false)
    fs;
  let fs =
    Lint.analyze
      (micro "free-inside"
         [
           op (Mmap { vkey = 1; pages = 1; prot = Perm.rw });
           op (Begin { vkey = 1; prot = Perm.rw });
           op (Free { vkey = 1 });
         ])
  in
  expect_detail "free inside begin"
    (function Lint.Free_inside_begin { vkey = 1 } -> true | _ -> false)
    fs

let test_balance_signal_escape () =
  (* The handler forgets mpk_end: the escape edge (taken mid-read, before
     the body's own end) leaks the begin on the handler path. *)
  let open Ir in
  let fs =
    Lint.analyze
      (micro "escape-leak"
         [
           op (Mmap { vkey = 1; pages = 1; prot = Perm.rw });
           op (Begin { vkey = 1; prot = Perm.r });
           Guard
             ( [ op (Read { vkey = 1 }); op (End { vkey = 1 }) ],
               [ label "handler forgets end" ] );
           op (Free { vkey = 1 });
         ])
  in
  expect_detail "leak via signal escape"
    (function Lint.Unbalanced { vkey = 1; definite = false } -> true | _ -> false)
    fs;
  (* ... and a handler that does close the domain is clean. *)
  let fs =
    Lint.analyze
      (micro "escape-closed"
         [
           op (Mmap { vkey = 1; pages = 1; prot = Perm.rw });
           op (Begin { vkey = 1; prot = Perm.r });
           Guard
             ( [ op (Read { vkey = 1 }); op (End { vkey = 1 }) ],
               [ op (End { vkey = 1 }); label "drop request" ] );
           op (Free { vkey = 1 });
         ])
  in
  expect_clean "guard with balanced handler" fs

let test_wx_micro () =
  let open Ir in
  let fs =
    Lint.analyze
      (micro "wx-global"
         [
           op (Mmap { vkey = 1; pages = 1; prot = Perm.rwx });
           op (Mprotect { vkey = 1; prot = Perm.rwx });
           op (Exec { vkey = 1 });
           op (Free { vkey = 1 });
         ])
  in
  expect_detail "W^X mapping"
    (function Lint.Wx_mapping { vkey = 1 } -> true | _ -> false)
    fs;
  expect_detail "exec while globally writable"
    (function Lint.Wx_exec_writable { vkey = 1; window = false } -> true | _ -> false)
    fs;
  let fs =
    Lint.analyze
      (micro "wx-window"
         [
           op (Mmap { vkey = 1; pages = 1; prot = Perm.rwx });
           op (Begin { vkey = 1; prot = Perm.rw });
           op (Emit { vkey = 1; code = [ I_ret ] });
           op (Exec { vkey = 1 });
           op (End { vkey = 1 });
           op (Free { vkey = 1 });
         ])
  in
  expect_detail "exec inside own write window"
    (function Lint.Wx_exec_writable { vkey = 1; window = true } -> true | _ -> false)
    fs

let test_gadget_scan () =
  let open Ir in
  let checked = [ I_op "mov"; I_wrpkru; I_cmp_pkru; I_br_trusted; I_ret ] in
  Alcotest.(check (list int)) "checked WRPKRU is safe" []
    (Lint.Gadget.unsafe_offsets checked);
  Alcotest.(check (list int)) "bare WRPKRU flagged" [ 1 ]
    (Lint.Gadget.unsafe_offsets [ I_op "mov"; I_wrpkru; I_op "jmp"; I_ret ]);
  Alcotest.(check (list int)) "cmp without branch is not a full check" [ 0 ]
    (Lint.Gadget.unsafe_offsets [ I_wrpkru; I_cmp_pkru; I_ret ]);
  Alcotest.(check (list int)) "WRPKRU at stream end flagged" [ 2 ]
    (Lint.Gadget.unsafe_offsets [ I_op "a"; I_op "b"; I_wrpkru ])

let test_toctou_micro () =
  let open Ir in
  let fs =
    Lint.analyze
      (micro "toctou"
         ~threads:[ (1, [ Loop ("scan", [ op (Read { vkey = 1 }) ]) ]) ]
         [
           op (Mmap { vkey = 1; pages = 1; prot = Perm.rw });
           op (Mprotect { vkey = 1; prot = Perm.rw });
           op (Spawn { tid = 1 });
           op (Mprotect { vkey = 1; prot = Perm.none });
           op (Join { tid = 1 });
           op (Free { vkey = 1 });
         ])
  in
  expect_detail "revocation races bare reader"
    (function
      | Lint.Toctou { vkey = 1; victim = 1; access = Lint.A_read } -> true
      | _ -> false)
    fs;
  (* joining the reader before revoking removes the race *)
  let fs =
    Lint.analyze
      (micro "toctou-joined"
         ~threads:[ (1, [ op (Read { vkey = 1 }) ]) ]
         [
           op (Mmap { vkey = 1; pages = 1; prot = Perm.rw });
           op (Mprotect { vkey = 1; prot = Perm.rw });
           op (Spawn { tid = 1 });
           op (Join { tid = 1 });
           op (Mprotect { vkey = 1; prot = Perm.none });
           op (Free { vkey = 1 });
         ])
  in
  if
    List.exists
      (fun f -> match f.Lint.detail with Lint.Toctou _ -> true | _ -> false)
      (errors fs)
  then Alcotest.fail "toctou reported after the victim was joined"

(* --- app models: clean runs are silent, every plant is found --- *)

let test_apps_clean () =
  expect_clean "jit" (Lint.analyze (Mpk_jit.Jit_model.program ()));
  expect_clean "secstore" (Lint.analyze (Mpk_secstore.Secstore_model.program ()));
  expect_clean "kvstore" (Lint.analyze (Mpk_kvstore.Kvstore_model.program ()))

let test_planted_jit () =
  let fs = Lint.analyze (Mpk_jit.Jit_model.program ~plant:`Wx ()) in
  expect_detail "planted W^X mapping"
    (function Lint.Wx_mapping _ -> true | _ -> false)
    (errors fs);
  expect_detail "planted exec-while-writable"
    (function Lint.Wx_exec_writable _ -> true | _ -> false)
    (errors fs);
  let fs = Lint.analyze (Mpk_jit.Jit_model.program ~plant:`Gadget ()) in
  expect_detail "planted unchecked WRPKRU"
    (function Lint.Unsafe_wrpkru _ -> true | _ -> false)
    (errors fs)

let test_planted_secstore () =
  let fs = Lint.analyze (Mpk_secstore.Secstore_model.program ~plant:`Use_after_free ()) in
  expect_detail "planted use-after-free"
    (function Lint.Use_after_free _ -> true | _ -> false)
    (errors fs);
  let fs = Lint.analyze (Mpk_secstore.Secstore_model.program ~plant:`Double_free ()) in
  expect_detail "planted double-free"
    (function Lint.Double_free _ -> true | _ -> false)
    (errors fs);
  let fs = Lint.analyze (Mpk_secstore.Secstore_model.program ~plant:`Leak ()) in
  expect_detail "planted leak-on-exit"
    (function Lint.Leak_on_exit _ -> true | _ -> false)
    fs;
  if errors fs <> [] then
    Alcotest.fail "leak-on-exit must stay a warning, not an error"

let test_planted_kvstore () =
  let fs = Lint.analyze (Mpk_kvstore.Kvstore_model.program ~plant:`Unbalanced ()) in
  expect_detail "planted unbalanced fast path"
    (function Lint.Unbalanced { definite = false; _ } -> true | _ -> false)
    (errors fs);
  let fs = Lint.analyze (Mpk_kvstore.Kvstore_model.program ~plant:`Toctou ()) in
  expect_detail "planted lazy-sync TOCTOU"
    (function Lint.Toctou _ -> true | _ -> false)
    (errors fs)

(* --- witness replay: every concrete finding confirms on the simulator --- *)

let confirm_all what fs =
  List.iter
    (fun f ->
      match f.Lint.detail with
      | Lint.Maybe _ -> ()  (* imprecision-only; no concrete path to replay *)
      | _ -> (
          match Mpk_check.Replay.confirm f with
          | { Mpk_check.Replay.verdict = Mpk_check.Replay.Confirmed; _ } -> ()
          | { note; _ } ->
              Alcotest.fail
                (Format.asprintf "%s: unreproduced finding %a (%s)" what
                   Lint.pp_finding f note)))
    fs

let test_replay_confirms_plants () =
  confirm_all "jit/wx" (Lint.analyze (Mpk_jit.Jit_model.program ~plant:`Wx ()));
  confirm_all "jit/gadget" (Lint.analyze (Mpk_jit.Jit_model.program ~plant:`Gadget ()));
  confirm_all "secstore/uaf"
    (Lint.analyze (Mpk_secstore.Secstore_model.program ~plant:`Use_after_free ()));
  confirm_all "secstore/double-free"
    (Lint.analyze (Mpk_secstore.Secstore_model.program ~plant:`Double_free ()));
  confirm_all "secstore/leak"
    (Lint.analyze (Mpk_secstore.Secstore_model.program ~plant:`Leak ()));
  confirm_all "kvstore/unbalanced"
    (Lint.analyze (Mpk_kvstore.Kvstore_model.program ~plant:`Unbalanced ()));
  confirm_all "kvstore/toctou"
    (Lint.analyze (Mpk_kvstore.Kvstore_model.program ~plant:`Toctou ()))

(* --- stress-trace re-emission shares the lint vocabulary --- *)

let test_stress_trace_ir () =
  let ops = Mpk_check.Stress.gen_ops Mpk_check.Stress.default_config 40 in
  let p = Mpk_check.Stress.ir_of_trace ~name:"stress" ops in
  Alcotest.(check string) "program name" "stress" p.Ir.pname;
  (* every non-heap op appears as its IR counterpart *)
  let ir_ops =
    List.concat_map (fun (t : Ir.thread) ->
        List.map (fun (n : Ir.node) -> n.Ir.op) (Ir.thread_nodes p t.Ir.tid))
      p.Ir.threads
  in
  let count pred l = List.length (List.filter pred l) in
  let begins_src =
    count (function Mpk_check.Stress.Begin _ -> true | _ -> false) ops
  in
  let begins_ir = count (function Ir.Begin _ -> true | _ -> false) ir_ops in
  Alcotest.(check int) "begin ops preserved" begins_src begins_ir;
  (* the analyzer runs on the re-emitted trace without blowing up *)
  ignore (Lint.analyze p : Lint.finding list)

(* --- dataflow engine edge cases --- *)

let test_widening_terminates () =
  (* An unbalanced loop drives the saturating interval domain to its
     cap; the fixpoint must still terminate (finite-height domain) and
     the balance pass must flag the drift rather than diverge. *)
  let open Ir in
  let p =
    build ~name:"drift"
      ~main:
        [
          op (Mmap { vkey = 1; pages = 1; prot = Perm.rw });
          Loop ("drift", [ op (Begin { vkey = 1; prot = Perm.rw }) ]);
          op (Free { vkey = 1 });
        ]
      ()
  in
  let fs = Lint.analyze p in
  expect_detail "balance" (function Lint.Unbalanced _ -> true | _ -> false) fs

let test_unreachable_node_state () =
  (* Nodes of a thread never spawned from the analyzed entry are not
     reached by the fixpoint: their post-state is None, not init. *)
  let open Ir in
  let p =
    build ~name:"unreachable"
      ~main:[ op (Read { vkey = 1 }) ]
      ~threads:[ (1, [ op (Write { vkey = 1 }) ]) ]
      ()
  in
  let main = main_thread p in
  let r =
    Dataflow.forward p ~entry:main.entry ~init:0 ~equal:Int.equal ~join:max
      ~transfer:(fun _ s -> s + 1)
  in
  List.iter
    (fun (n : node) ->
      Alcotest.(check bool)
        (Printf.sprintf "thread-1 node %d unreachable" n.id)
        true
        (Dataflow.state r n.id = None))
    (thread_nodes p 1);
  Alcotest.(check bool) "main entry reached" true
    (Dataflow.state r main.entry <> None)

let test_spawn_empty_thread () =
  (* Spawning a thread with an empty body must build, analyze clean,
     and thread_runs must not choke on the trivial CFG. *)
  let open Ir in
  let p =
    build ~name:"empty-thread"
      ~main:[ op (Spawn { tid = 1 }); op (Join { tid = 1 }) ]
      ~threads:[ (1, []) ]
      ()
  in
  expect_clean "spawn of an empty thread" (Lint.analyze p)

(* --- concurrency passes: lockset, lock-order, atomicity --- *)

let lk cls = { Ir.lcls = cls; linst = 0 }

let locked_access ?(mode = Ir.Lk_excl) cls body =
  Ir.op (Ir.Lock { lk = lk cls; lmode = mode })
  :: (body @ [ Ir.op (Ir.Unlock { lk = lk cls; lmode = mode }) ])

let test_lockset_micro () =
  let open Ir in
  (* t1 writes vma[0] under the lock, t2 reads it bare: empty
     intersection, both live between spawn and join -> Race. *)
  let racy =
    micro "racy"
      [ op (Spawn { tid = 1 }); op (Spawn { tid = 2 });
        op (Join { tid = 1 }); op (Join { tid = 2 }) ]
      ~threads:
        [
          (1, locked_access "mm_lock" [ op (Store { loc = L_vma 0 }) ]);
          (2, [ op (Load { loc = L_vma 0 }) ]);
        ]
  in
  let fs = Lint.analyze racy in
  expect_detail "race" (function Lint.Race _ -> true | _ -> false) fs;
  Alcotest.(check bool) "race is an error" true (errors fs <> []);
  (* same program with the reader locked too: silent *)
  let clean =
    micro "locked"
      [ op (Spawn { tid = 1 }); op (Spawn { tid = 2 });
        op (Join { tid = 1 }); op (Join { tid = 2 }) ]
      ~threads:
        [
          (1, locked_access "mm_lock" [ op (Store { loc = L_vma 0 }) ]);
          (2, locked_access ~mode:Lk_shared "mm_lock" [ op (Load { loc = L_vma 0 }) ]);
        ]
  in
  expect_clean "common-lock discipline" (Lint.analyze clean)

let test_no_race_outside_spawn_window () =
  (* Main's unlocked writes before the spawn and after the join are not
     concurrent with the thread: no finding. *)
  let open Ir in
  let p =
    micro "window"
      ([ op (Store { loc = L_vma 0 }); op (Spawn { tid = 1 }); op (Join { tid = 1 }) ]
      @ [ op (Store { loc = L_vma 0 }) ])
      ~threads:[ (1, locked_access "mm_lock" [ op (Load { loc = L_vma 0 }) ]) ]
  in
  expect_clean "pre-spawn/post-join accesses" (Lint.analyze p)

let test_lockorder_micro () =
  let open Ir in
  let p =
    micro "abba"
      [ op (Spawn { tid = 1 }); op (Spawn { tid = 2 });
        op (Join { tid = 1 }); op (Join { tid = 2 }) ]
      ~threads:
        [
          (1, locked_access "a_lock" (locked_access "b_lock" []));
          (2, locked_access "b_lock" (locked_access "a_lock" []));
        ]
  in
  let fs = Lint.analyze p in
  expect_detail "deadlock cycle" (function Lint.Deadlock _ -> true | _ -> false) fs;
  (* consistent order in both threads: silent *)
  let clean =
    micro "abab"
      [ op (Spawn { tid = 1 }); op (Spawn { tid = 2 });
        op (Join { tid = 1 }); op (Join { tid = 2 }) ]
      ~threads:
        [
          (1, locked_access "a_lock" (locked_access "b_lock" []));
          (2, locked_access "a_lock" (locked_access "b_lock" []));
        ]
  in
  expect_clean "consistent order" (Lint.analyze clean)

let test_atomicity_micro () =
  let open Ir in
  let p =
    micro "rca"
      (locked_access ~mode:Lk_shared "mm_lock" [ op (Load { loc = L_vma 0 }) ]
      @ locked_access "mm_lock" [ op (Store { loc = L_vma 0 }) ])
  in
  let fs = Lint.analyze p in
  expect_detail "atomicity window" (function Lint.Atomicity _ -> true | _ -> false) fs;
  (* check and act under one hold: silent *)
  let clean =
    micro "atomic"
      (locked_access "mm_lock"
         [ op (Load { loc = L_vma 0 }); op (Store { loc = L_vma 0 }) ])
  in
  expect_clean "single critical section" (Lint.analyze clean)

let test_unlock_unheld_micro () =
  let open Ir in
  let fs =
    Lint.analyze
      (micro "unheld" [ op (Unlock { lk = lk "mm_lock"; lmode = Lk_excl }) ])
  in
  expect_detail "unlock-unheld" (function Lint.Unlock_unheld _ -> true | _ -> false) fs

let test_pass_filter () =
  let open Ir in
  let p =
    micro "abba"
      [ op (Spawn { tid = 1 }); op (Spawn { tid = 2 });
        op (Join { tid = 1 }); op (Join { tid = 2 }) ]
      ~threads:
        [
          (1, locked_access "a_lock" (locked_access "b_lock" []));
          (2, locked_access "b_lock" (locked_access "a_lock" []));
        ]
  in
  expect_clean "lockset-only run hides the cycle"
    (Lint.analyze_with ~passes:[ "lockset" ] p);
  expect_detail "lockorder-only run finds it"
    (function Lint.Deadlock _ -> true | _ -> false)
    (Lint.analyze_with ~passes:[ "lockorder" ] p);
  Alcotest.(check bool) "pass registry lists all eight" true
    (List.length Lint.pass_names = 8)

let test_finding_order_stable () =
  (* analyze output is sorted severity-then-tid-then-node: ranks must be
     non-decreasing, so CI diffs of lint output are stable. *)
  let fs = Lint.analyze (Mpk_check.Mm_model.program ~plant:`Recycle ()) in
  let rank f =
    ( (match f.Lint.severity with Lint.Error -> 0 | Lint.Warning -> 1 | Lint.Info -> 2),
      f.Lint.tid, f.Lint.node )
  in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> rank a <= rank b && non_decreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (non_decreasing fs)

(* --- the mm protocol model --- *)

let test_mm_model_clean () =
  expect_clean "clean mm protocol (all passes)"
    (Lint.analyze (Mpk_check.Mm_model.program ()))

let test_mm_model_plants () =
  let expect_plant plant what pred =
    let fs = Lint.analyze (Mpk_check.Mm_model.program ~plant ()) in
    expect_detail what pred fs;
    Alcotest.(check int)
      (Printf.sprintf "exactly one error for %s" what)
      1 (List.length (errors fs))
  in
  expect_plant `Recycle "race" (function Lint.Race _ -> true | _ -> false);
  expect_plant `Lock_order "deadlock" (function Lint.Deadlock _ -> true | _ -> false);
  expect_plant `Window "atomicity" (function Lint.Atomicity _ -> true | _ -> false)

let test_mm_model_static_order () =
  (* The clean protocol's may-held graph is exactly mm_lock -> vma_lock,
     acyclic; the lock-order plant adds the reverse edge and one cycle. *)
  let clean = Mpk_check.Mm_model.program () in
  Alcotest.(check (list (pair string string)))
    "clean edges"
    [ ("mm_lock", "vma_lock") ]
    (Lint.static_lock_edges clean);
  Alcotest.(check int) "clean is acyclic" 0
    (List.length (Lint.static_lock_cycles clean));
  let planted = Mpk_check.Mm_model.program ~plant:`Lock_order () in
  Alcotest.(check bool) "planted has the reverse edge" true
    (List.mem ("vma_lock", "mm_lock") (Lint.static_lock_edges planted));
  Alcotest.(check int) "planted has one cycle" 1
    (List.length (Lint.static_lock_cycles planted))

(* --- lifting kernel lock trace events --- *)

let test_lift_lock_events () =
  let open Mpk_trace in
  let mk seq ev = { Event.seq; ts = 0.0; core = 0; task = 0; span = 0; ev } in
  let evs =
    [
      mk 0 (Event.Lock_acquire { cls = "mm_lock"; excl = true; actor = 0 });
      mk 1 (Event.Lock_acquire { cls = "vma_lock"; excl = false; actor = 1 });
      mk 2 (Event.Lock_release { cls = "vma_lock"; excl = false; actor = 1 });
      mk 3 (Event.Lock_release { cls = "mm_lock"; excl = true; actor = 0 });
      mk 4 (Event.Marker { name = "not a lock event" });
    ]
  in
  let p = Ir.of_trace_events ~name:"lifted" evs in
  Alcotest.(check int) "two threads" 2 (List.length p.Ir.threads);
  (* node ids are not program order (the builder lowers back-to-front):
     walk the Seq chain from the thread entry. *)
  let ops tid =
    let t = Option.get (Ir.find_thread p tid) in
    let rec go id acc =
      let n = Ir.node p id in
      let acc =
        match n.Ir.op with
        | (Ir.Lock _ | Ir.Unlock _) as o -> Ir.op_to_string o :: acc
        | _ -> acc
      in
      match n.Ir.succs with (Ir.Seq, next) :: _ -> go next acc | _ -> List.rev acc
    in
    go t.Ir.entry []
  in
  Alcotest.(check (list string))
    "main got the mm_lock pair"
    [ "lock mm_lock excl"; "unlock mm_lock excl" ]
    (ops 0);
  Alcotest.(check (list string))
    "thread 1 got the vma_lock pair"
    [ "lock vma_lock shared"; "unlock vma_lock shared" ]
    (ops 1);
  (* the lifted program is analyzable and clean *)
  expect_clean "lifted trace" (Lint.analyze p)

let () =
  Alcotest.run "analysis"
    [
      ( "engine",
        [
          Alcotest.test_case "interval domain saturates" `Quick test_interval;
          Alcotest.test_case "fixpoint on a balanced loop" `Quick test_fixpoint_on_loop;
          Alcotest.test_case "of_trace spawns and joins" `Quick test_of_trace_shape;
          Alcotest.test_case "widening terminates on an unbalanced loop" `Quick
            test_widening_terminates;
          Alcotest.test_case "unreachable nodes have no state" `Quick
            test_unreachable_node_state;
          Alcotest.test_case "spawn of an empty thread" `Quick test_spawn_empty_thread;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "lockset race" `Quick test_lockset_micro;
          Alcotest.test_case "no race outside the spawn window" `Quick
            test_no_race_outside_spawn_window;
          Alcotest.test_case "AB/BA lock-order cycle" `Quick test_lockorder_micro;
          Alcotest.test_case "read-check-act window" `Quick test_atomicity_micro;
          Alcotest.test_case "unlock of an unheld lock" `Quick test_unlock_unheld_micro;
          Alcotest.test_case "--pass filter" `Quick test_pass_filter;
          Alcotest.test_case "finding order is stable" `Quick test_finding_order_stable;
          Alcotest.test_case "mm protocol model is clean" `Quick test_mm_model_clean;
          Alcotest.test_case "mm protocol plants found" `Quick test_mm_model_plants;
          Alcotest.test_case "static lock-order graph" `Quick test_mm_model_static_order;
          Alcotest.test_case "kernel lock events lift to IR" `Quick
            test_lift_lock_events;
        ] );
      ( "passes",
        [
          Alcotest.test_case "typestate lifecycle" `Quick test_typestate_micro;
          Alcotest.test_case "begin/end balance" `Quick test_balance_micro;
          Alcotest.test_case "balance across signal escape" `Quick
            test_balance_signal_escape;
          Alcotest.test_case "W^X" `Quick test_wx_micro;
          Alcotest.test_case "WRPKRU gadget scan" `Quick test_gadget_scan;
          Alcotest.test_case "lazy-sync TOCTOU" `Quick test_toctou_micro;
        ] );
      ( "apps",
        [
          Alcotest.test_case "clean models are silent" `Quick test_apps_clean;
          Alcotest.test_case "jit plants found" `Quick test_planted_jit;
          Alcotest.test_case "secstore plants found" `Quick test_planted_secstore;
          Alcotest.test_case "kvstore plants found" `Quick test_planted_kvstore;
        ] );
      ( "replay",
        [
          Alcotest.test_case "planted findings confirm on the simulator" `Slow
            test_replay_confirms_plants;
        ] );
      ( "stress-ir",
        [
          Alcotest.test_case "random traces re-emit as IR" `Quick test_stress_trace_ir;
        ] );
    ]
