(* Tests for the perf regression observatory (lib/bench): attribution
   tree diffing, the noise-aware threshold model, the benchmark schema
   validator, runner determinism, and the end-to-end gate verdict on a
   planted slowdown. *)

module Noise = Mpk_bench.Noise
module Tree = Mpk_bench.Tree
module Io = Mpk_bench.Io
module Runner = Mpk_bench.Runner
module Gate = Mpk_bench.Gate
module Prof = Mpk_trace.Prof
module J = Mpk_trace.Json

let node ?(children = []) label ~self ~calls =
  let total = self +. List.fold_left (fun a c -> a +. c.Prof.total) 0.0 children in
  { Prof.label; self; calls; total; children }

let base_tree () =
  node "root" ~self:0.0 ~calls:0
    ~children:
      [
        node "mpk_begin" ~self:10.0 ~calls:4
          ~children:
            [ node "wrpkru" ~self:23.3 ~calls:1; node "libmpk_user" ~self:60.0 ~calls:1 ];
        node "mpk_end" ~self:5.0 ~calls:2;
      ]

(* --- Tree diff --- *)

let test_tree_identity () =
  let t = base_tree () in
  let deltas = Tree.diff ~base:t ~cur:t in
  Alcotest.(check int) "4 nodes" 4 (List.length deltas);
  List.iter
    (fun d ->
      Alcotest.(check bool) "matched" true (d.Tree.status = Tree.Matched);
      Alcotest.(check (float 0.0)) "self delta zero" 0.0 (d.Tree.cur_self -. d.Tree.base_self);
      Alcotest.(check (float 0.0))
        "total delta zero" 0.0
        (d.Tree.cur_total -. d.Tree.base_total);
      Alcotest.(check int) "call delta zero" 0 (d.Tree.cur_calls - d.Tree.base_calls))
    deltas

let find_path deltas p =
  match List.find_opt (fun d -> d.Tree.path = p) deltas with
  | Some d -> d
  | None -> Alcotest.failf "no delta for path %s" (String.concat "/" p)

let test_tree_added_removed () =
  let base = base_tree () in
  let cur =
    node "root" ~self:0.0 ~calls:0
      ~children:
        [
          node "mpk_begin" ~self:10.0 ~calls:4
            ~children:[ node "wrpkru" ~self:23.3 ~calls:1 ];
          node "mpk_mprotect" ~self:90.0 ~calls:3
            ~children:[ node "tlb_flush" ~self:40.0 ~calls:3 ];
        ]
  in
  let deltas = Tree.diff ~base ~cur in
  let added = find_path deltas [ "mpk_mprotect" ] in
  Alcotest.(check bool) "added" true (added.Tree.status = Tree.Added);
  (* an Added row covers its whole subtree: total includes tlb_flush *)
  Alcotest.(check (float 1e-9)) "added subtree total" 130.0 added.Tree.cur_total;
  Alcotest.(check (float 0.0)) "added base total" 0.0 added.Tree.base_total;
  let removed_user = find_path deltas [ "mpk_begin"; "libmpk_user" ] in
  Alcotest.(check bool) "removed" true (removed_user.Tree.status = Tree.Removed);
  Alcotest.(check (float 0.0)) "removed cur total" 0.0 removed_user.Tree.cur_total;
  let removed_end = find_path deltas [ "mpk_end" ] in
  Alcotest.(check bool) "removed sibling" true (removed_end.Tree.status = Tree.Removed)

let test_tree_renamed () =
  let base =
    node "root" ~self:0.0 ~calls:0
      ~children:[ node "pkey_sync" ~self:42.0 ~calls:7 ]
  in
  let cur =
    node "root" ~self:0.0 ~calls:0
      ~children:[ node "pkey_sync_batched" ~self:42.0 ~calls:7 ]
  in
  match Tree.diff ~base ~cur with
  | [ d ] ->
      Alcotest.(check bool) "renamed" true (d.Tree.status = Tree.Renamed "pkey_sync");
      Alcotest.(check (float 0.0)) "no self delta" 0.0 (d.Tree.cur_self -. d.Tree.base_self)
  | ds -> Alcotest.failf "expected 1 delta, got %d" (List.length ds)

let test_tree_rename_needs_identical_cost () =
  (* same shape but different self cycles: not a rename, an add + remove *)
  let base =
    node "root" ~self:0.0 ~calls:0 ~children:[ node "a" ~self:10.0 ~calls:1 ]
  in
  let cur =
    node "root" ~self:0.0 ~calls:0 ~children:[ node "b" ~self:11.0 ~calls:1 ]
  in
  let deltas = Tree.diff ~base ~cur in
  Alcotest.(check bool) "b added" true ((find_path deltas [ "b" ]).Tree.status = Tree.Added);
  Alcotest.(check bool)
    "a removed" true
    ((find_path deltas [ "a" ]).Tree.status = Tree.Removed)

let test_pct_change_zero_base () =
  Alcotest.(check bool) "zero base is None" true (Tree.pct_change ~base:0.0 ~cur:5.0 = None);
  Alcotest.(check bool)
    "nonzero base is Some" true
    (Tree.pct_change ~base:10.0 ~cur:15.0 = Some 50.0)

(* --- Noise model --- *)

let stats_of samples =
  match Noise.of_samples samples with
  | Ok s -> s
  | Error e -> Alcotest.failf "of_samples: %s" e

let test_noise_of_samples () =
  let s = stats_of [ 10.0; 12.0; 14.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 12.0 s.Noise.mean;
  Alcotest.(check (float 1e-9)) "stddev" 2.0 s.Noise.stddev;
  Alcotest.(check (float 1e-9)) "min" 10.0 s.Noise.minimum;
  Alcotest.(check (float 1e-9)) "max" 14.0 s.Noise.maximum;
  Alcotest.(check bool) "empty errors" true (Result.is_error (Noise.of_samples []));
  Alcotest.(check bool)
    "nan errors" true
    (Result.is_error (Noise.of_samples [ 1.0; Float.nan ]))

let test_classify_deterministic_floor () =
  (* stddev 0: the relative floor is the only guard. 0.5% drift on a
     lower-better metric stays unchanged; 2% is regressed. *)
  let s = stats_of [ 100.0; 100.0; 100.0 ] in
  let v, _ = Noise.classify Noise.Lower_better ~baseline:s ~fresh:100.5 ~sigma:3.0 ~rel_floor:0.01 in
  Alcotest.(check bool) "small drift unchanged" true (v = Noise.Unchanged);
  let v, _ = Noise.classify Noise.Lower_better ~baseline:s ~fresh:102.0 ~sigma:3.0 ~rel_floor:0.01 in
  Alcotest.(check bool) "2% slower regressed" true (v = Noise.Regressed);
  let v, _ = Noise.classify Noise.Lower_better ~baseline:s ~fresh:98.0 ~sigma:3.0 ~rel_floor:0.01 in
  Alcotest.(check bool) "2% faster improved" true (v = Noise.Improved)

let test_classify_sigma_band () =
  (* noisy metric: mean 100, stddev 10 -> 3-sigma band is +-30, wider
     than the 1% floor. A 2-sigma move is noise; a 4-sigma move is real. *)
  let s = stats_of [ 90.0; 100.0; 110.0 ] in
  Alcotest.(check bool) "stddev 10" true (Float.abs (s.Noise.stddev -. 10.0) < 1e-9);
  let v, th = Noise.classify Noise.Lower_better ~baseline:s ~fresh:120.0 ~sigma:3.0 ~rel_floor:0.01 in
  Alcotest.(check (float 1e-9)) "threshold is 3 sigma" 30.0 th;
  Alcotest.(check bool) "2-sigma move is noise" true (v = Noise.Unchanged);
  let v, _ = Noise.classify Noise.Lower_better ~baseline:s ~fresh:141.0 ~sigma:3.0 ~rel_floor:0.01 in
  Alcotest.(check bool) "4-sigma move regressed" true (v = Noise.Regressed)

let test_classify_higher_better () =
  let s = stats_of [ 1000.0; 1000.0 ] in
  let v, _ =
    Noise.classify Noise.Higher_better ~baseline:s ~fresh:900.0 ~sigma:3.0 ~rel_floor:0.01
  in
  Alcotest.(check bool) "throughput drop regressed" true (v = Noise.Regressed);
  let v, _ =
    Noise.classify Noise.Higher_better ~baseline:s ~fresh:1100.0 ~sigma:3.0 ~rel_floor:0.01
  in
  Alcotest.(check bool) "throughput gain improved" true (v = Noise.Improved)

let test_classify_zero_baseline () =
  (* mean 0, stddev 0: threshold degenerates to 0 and any harmful delta
     regresses, with no division anywhere. *)
  let s = stats_of [ 0.0; 0.0 ] in
  let v, th = Noise.classify Noise.Lower_better ~baseline:s ~fresh:1.0 ~sigma:3.0 ~rel_floor:0.01 in
  Alcotest.(check (float 0.0)) "zero threshold" 0.0 th;
  Alcotest.(check bool) "any growth regressed" true (v = Noise.Regressed);
  let v, _ = Noise.classify Noise.Lower_better ~baseline:s ~fresh:0.0 ~sigma:3.0 ~rel_floor:0.01 in
  Alcotest.(check bool) "exact zero unchanged" true (v = Noise.Unchanged)

(* --- Prof snapshot JSON round-trip --- *)

let rec snapshot_equal a b =
  a.Prof.label = b.Prof.label
  && Float.equal a.Prof.self b.Prof.self
  && Float.equal a.Prof.total b.Prof.total
  && a.Prof.calls = b.Prof.calls
  && List.length a.Prof.children = List.length b.Prof.children
  && List.for_all2 snapshot_equal a.Prof.children b.Prof.children

let test_snapshot_roundtrip () =
  let t = base_tree () in
  match Prof.snapshot_of_json (Prof.json_of_snapshot t) with
  | Ok t' -> Alcotest.(check bool) "round-trips" true (snapshot_equal t t')
  | Error e -> Alcotest.failf "round-trip failed: %s" e

let test_snapshot_of_json_rejects_garbage () =
  Alcotest.(check bool)
    "missing label" true
    (Result.is_error (Prof.snapshot_of_json (J.Obj [ "self_cycles", J.Float 1.0 ])));
  Alcotest.(check bool) "non-object" true (Result.is_error (Prof.snapshot_of_json (J.Int 3)))

(* --- Io schema validation --- *)

let test_io_validate_rejects () =
  let check_err kind j =
    Alcotest.(check bool) "rejected" true (Result.is_error (Io.validate kind j))
  in
  check_err Io.Perfetto (J.Obj [ "traceEvents", J.List [] ]);
  check_err Io.Bench (J.Obj [ "schema", J.String "bench/2" ]);
  check_err Io.Bench_diff (J.Obj [ "schema", J.String "bench-diff/1" ]);
  check_err Io.Profile (J.Obj [ "experiment", J.String "fig8" ]);
  (* a verdict string outside the enum is caught inside results[] *)
  let bad_diff =
    J.Obj
      [
        "schema", J.String "bench-diff/1";
        "sigma", J.Float 3.0;
        "regressed", J.Bool false;
        ( "results",
          J.List
            [
              J.Obj
                [
                  "experiment", J.String "fig8";
                  ( "verdicts",
                    J.List [ J.Obj [ "name", J.String "m"; "verdict", J.String "meh" ] ] );
                  "regressed", J.Bool false;
                ];
            ] );
        "attribution", J.List [];
      ]
  in
  check_err Io.Bench_diff bad_diff

let test_io_write_read_roundtrip () =
  match Runner.run ~id:"table1" ~trials:2 ~seed:7 ~smoke:true with
  | Error e -> Alcotest.failf "runner: %s" e
  | Ok r -> (
      let path = Filename.temp_file "bench_io" ".json" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          (match Io.write ~path Io.Bench (Runner.to_json r) with
          | Ok () -> ()
          | Error e -> Alcotest.failf "write: %s" e);
          match Io.read ~path Io.Bench with
          | Error e -> Alcotest.failf "read: %s" e
          | Ok j -> (
              match Runner.of_json j with
              | Error e -> Alcotest.failf "of_json: %s" e
              | Ok r' ->
                  Alcotest.(check string) "id" r.Runner.r_id r'.Runner.r_id;
                  Alcotest.(check int) "trials" r.Runner.r_trials r'.Runner.r_trials;
                  let means rep =
                    List.map
                      (fun m -> m.Runner.ms_name, m.Runner.ms_stats.Noise.mean)
                      rep.Runner.r_metrics
                  in
                  Alcotest.(check bool) "means survive" true (means r = means r');
                  Alcotest.(check bool)
                    "profile survives" true
                    (snapshot_equal r.Runner.r_profile r'.Runner.r_profile))))

(* --- Runner determinism + gate end-to-end --- *)

let test_runner_deterministic () =
  let run () =
    match Runner.run ~id:"fig8" ~trials:2 ~seed:3 ~smoke:true with
    | Ok r -> r
    | Error e -> Alcotest.failf "runner: %s" e
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "attribution exact" true a.Runner.r_attribution_exact;
  List.iter2
    (fun (ma : Runner.metric_stats) (mb : Runner.metric_stats) ->
      Alcotest.(check string) "same metric" ma.Runner.ms_name mb.Runner.ms_name;
      Alcotest.(check bool)
        ("identical samples for " ^ ma.Runner.ms_name)
        true
        (List.for_all2 Float.equal ma.Runner.ms_stats.Noise.samples
           mb.Runner.ms_stats.Noise.samples))
    a.Runner.r_metrics b.Runner.r_metrics;
  Alcotest.(check bool)
    "identical profile" true
    (snapshot_equal a.Runner.r_profile b.Runner.r_profile)

let test_gate_unchanged_on_identical_runs () =
  match Runner.run ~id:"table1" ~trials:2 ~seed:5 ~smoke:true with
  | Error e -> Alcotest.failf "runner: %s" e
  | Ok r ->
      let d = Gate.diff ~baseline:r ~fresh:r ~sigma:3.0 ~rel_floor:0.01 in
      Alcotest.(check bool) "not regressed" false d.Gate.d_regressed;
      List.iter
        (fun v ->
          Alcotest.(check bool)
            ("unchanged: " ^ v.Gate.v_name)
            true
            (v.Gate.v_verdict = Noise.Unchanged))
        d.Gate.d_verdicts;
      Alcotest.(check (list string)) "no drift" [] d.Gate.d_missing

let with_plant plant f =
  Mpk_hw.Cpu.set_plant_slowdown (Some plant);
  Fun.protect ~finally:(fun () -> Mpk_hw.Cpu.set_plant_slowdown None) f

let test_gate_catches_planted_slowdown () =
  let baseline =
    match Runner.run ~id:"table1" ~trials:2 ~seed:5 ~smoke:true with
    | Ok r -> r
    | Error e -> Alcotest.failf "baseline: %s" e
  in
  let fresh =
    with_plant ("wrpkru", 40.0) (fun () ->
        match Runner.run ~id:"table1" ~trials:2 ~seed:5 ~smoke:true with
        | Ok r -> r
        | Error e -> Alcotest.failf "planted run: %s" e)
  in
  let d = Gate.diff ~baseline ~fresh ~sigma:3.0 ~rel_floor:0.01 in
  Alcotest.(check bool) "regressed" true d.Gate.d_regressed;
  let wrpkru_verdict =
    List.find (fun v -> v.Gate.v_name = "table1.pkey_set_wrpkru_cycles") d.Gate.d_verdicts
  in
  Alcotest.(check bool)
    "wrpkru metric regressed" true
    (wrpkru_verdict.Gate.v_verdict = Noise.Regressed);
  Alcotest.(check (float 1e-6)) "delta is the plant" 40.0 wrpkru_verdict.Gate.v_delta;
  (* attribution names a frame ending in wrpkru *)
  let frames = Gate.hot_frames d in
  Alcotest.(check bool) "has attribution" true (frames <> []);
  Alcotest.(check bool)
    "top frame is wrpkru" true
    (match frames with
    | f :: _ -> List.exists (fun l -> l = "wrpkru") f.Tree.path
    | [] -> false)

let test_gate_metric_set_drift_regresses () =
  match Runner.run ~id:"table1" ~trials:1 ~seed:5 ~smoke:true with
  | Error e -> Alcotest.failf "runner: %s" e
  | Ok r ->
      let truncated = { r with Runner.r_metrics = List.tl r.Runner.r_metrics } in
      let d = Gate.diff ~baseline:r ~fresh:truncated ~sigma:3.0 ~rel_floor:0.01 in
      Alcotest.(check bool) "drift regresses" true d.Gate.d_regressed;
      Alcotest.(check bool)
        "drift named" true
        (List.exists
           (fun s -> String.length s > 13 && String.sub s 0 13 = "baseline-only")
           d.Gate.d_missing)

let () =
  Alcotest.run "bench"
    [
      ( "tree",
        [
          Alcotest.test_case "identical trees diff to zero" `Quick test_tree_identity;
          Alcotest.test_case "added/removed reported" `Quick test_tree_added_removed;
          Alcotest.test_case "rename detected" `Quick test_tree_renamed;
          Alcotest.test_case "rename needs identical cost" `Quick
            test_tree_rename_needs_identical_cost;
          Alcotest.test_case "pct_change zero base" `Quick test_pct_change_zero_base;
        ] );
      ( "noise",
        [
          Alcotest.test_case "of_samples stats" `Quick test_noise_of_samples;
          Alcotest.test_case "deterministic floor" `Quick test_classify_deterministic_floor;
          Alcotest.test_case "sigma band" `Quick test_classify_sigma_band;
          Alcotest.test_case "higher-better direction" `Quick test_classify_higher_better;
          Alcotest.test_case "zero baseline no div" `Quick test_classify_zero_baseline;
        ] );
      ( "schema",
        [
          Alcotest.test_case "snapshot json round-trip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "snapshot rejects garbage" `Quick
            test_snapshot_of_json_rejects_garbage;
          Alcotest.test_case "validate rejects" `Quick test_io_validate_rejects;
          Alcotest.test_case "write/read round-trip" `Quick test_io_write_read_roundtrip;
        ] );
      ( "gate",
        [
          Alcotest.test_case "runner deterministic" `Quick test_runner_deterministic;
          Alcotest.test_case "identical runs unchanged" `Quick
            test_gate_unchanged_on_identical_runs;
          Alcotest.test_case "planted slowdown caught" `Quick
            test_gate_catches_planted_slowdown;
          Alcotest.test_case "metric-set drift regresses" `Quick
            test_gate_metric_set_drift_regresses;
        ] );
    ]
