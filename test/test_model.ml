(* Model-based fuzzing of libmpk: drive random API sequences from two
   threads and, after EVERY operation, check the security invariants the
   paper promises:

   I1 (isolation): a thread that is not inside mpk_begin for a group can
      access it exactly as the group's *global* permission allows —
      never more.
   I2 (domain): a thread inside mpk_begin sees at least what it asked
      for.
   I3 (bookkeeping): hardware keys in use never exceed 15; every Mapped
      group's PTEs carry its hardware key; every Unmapped group's pages
      are back on key 0.
   I4 (data integrity): a group's bytes survive arbitrary interleavings
      of eviction, re-attachment and permission changes. *)

open Mpk_hw
open Mpk_kernel

let page = Physmem.page_size

type op =
  | Mmap of int  (* vkey *)
  | Munmap of int
  | Begin of int * int  (* vkey, thread *)
  | End of int * int
  | Mprotect of int * int  (* vkey, prot selector *)
  | Touch of int * int  (* vkey, thread: benign read attempt *)

let show_op = function
  | Mmap v -> Printf.sprintf "mmap %d" v
  | Munmap v -> Printf.sprintf "munmap %d" v
  | Begin (v, t) -> Printf.sprintf "begin %d @t%d" v t
  | End (v, t) -> Printf.sprintf "end %d @t%d" v t
  | Mprotect (v, p) -> Printf.sprintf "mprotect %d p%d" v p
  | Touch (v, t) -> Printf.sprintf "touch %d @t%d" v t

let gen_op =
  QCheck.Gen.(
    let vkey = int_range 1 6 in
    let thread = int_range 0 1 in
    oneof
      [
        map (fun v -> Mmap v) vkey;
        map (fun v -> Munmap v) vkey;
        map2 (fun v t -> Begin (v, t)) vkey thread;
        map2 (fun v t -> End (v, t)) vkey thread;
        map2 (fun v p -> Mprotect (v, p)) vkey (int_range 0 2);
        map2 (fun v t -> Touch (v, t)) vkey thread;
      ])

let arb_ops = QCheck.make ~print:(fun l -> String.concat "; " (List.map show_op l))
    QCheck.Gen.(list_size (int_range 1 60) gen_op)

(* The model: what we believe each group's state is. *)
type mgroup = {
  addr : int;
  mutable global_prot : Perm.t option;  (* None = domain-only (locked) *)
  mutable open_by : (int, int) Hashtbl.t;  (* thread -> depth *)
  mutable payload : char;
}

let prot_of_selector = function 0 -> Perm.none | 1 -> Perm.r | _ -> Perm.rw

let run_sequence ?(hw_keys = 15) ops =
  let machine = Machine.create ~cores:3 ~mem_mib:128 () in
  let proc = Proc.create machine in
  let t0 = Proc.spawn proc ~core_id:0 () in
  let t1 = Proc.spawn proc ~core_id:1 () in
  let threads = [| t0; t1 |] in
  let mpk = Libmpk.init ~hw_keys ~evict_rate:1.0 proc t0 in
  let mmu = Proc.mmu proc in
  let model : (int, mgroup) Hashtbl.t = Hashtbl.create 8 in
  let fail op msg = failwith (Printf.sprintf "[%s] %s" (show_op op) msg) in

  let readable_by g thread =
    (* what the model says this thread may read *)
    let tid = Task.id threads.(thread) in
    let open_here = Option.value ~default:0 (Hashtbl.find_opt g.open_by tid) > 0 in
    open_here
    || match g.global_prot with Some p -> p.Perm.read | None -> false
  in
  let check_invariants op =
    (* I3: key usage bound *)
    if Libmpk.Key_cache.in_use (Libmpk.cache mpk) > 15 then fail op "more than 15 keys";
    Hashtbl.iter
      (fun vkey g ->
        (* I3: PTE tags consistent with the group state *)
        (match Libmpk.find_group mpk vkey with
        | None -> fail op "model has a group libmpk lost"
        | Some lg -> (
            let vpn = Page_table.vpn_of_addr g.addr in
            let pte = Page_table.get (Mm.page_table (Proc.mm proc)) ~vpn in
            match lg.Libmpk.Group.state, Pte.is_present pte with
            | Libmpk.Group.Mapped k, true ->
                if not (Pkey.equal (Pte.pkey pte) k) then fail op "Mapped group PTE tag mismatch"
            | Libmpk.Group.Unmapped, true ->
                if Pkey.to_int (Pte.pkey pte) <> 0 then fail op "Unmapped group keeps a key"
            | _, false -> ()));
        (* I1/I2: per-thread readability matches the model *)
        Array.iteri
          (fun i task ->
            let expect = readable_by g i in
            let got =
              match Mmu.read_byte mmu (Task.core task) ~addr:g.addr with
              | c -> Some c
              | exception Signal.Killed _ -> None
            in
            match expect, got with
            | true, Some c ->
                (* I4: the data is the model's data *)
                if c <> g.payload then fail op "payload corrupted"
            | true, None -> fail op (Printf.sprintf "thread %d lost expected access" i)
            | false, Some _ -> fail op (Printf.sprintf "thread %d has forbidden access" i)
            | false, None -> ())
          threads)
      model
  in

  List.iter
    (fun op ->
      (match op with
      | Mmap vkey ->
          if not (Hashtbl.mem model vkey) then begin
            let addr = Libmpk.mpk_mmap mpk t0 ~vkey ~len:page ~prot:Perm.rw in
            (* write an identifying byte through a temporary domain; under
               extreme key pressure the begin may legitimately fail, in
               which case the group keeps its zeroed contents *)
            let payload =
              match Libmpk.mpk_begin mpk t0 ~vkey ~prot:Perm.rw with
              | () ->
                  let payload = Char.chr (65 + (vkey mod 26)) in
                  Mmu.write_byte mmu (Task.core t0) ~addr payload;
                  Libmpk.mpk_end mpk t0 ~vkey;
                  payload
              | exception Libmpk.Key_exhausted -> '\000'
            in
            Hashtbl.replace model vkey
              { addr; global_prot = None; open_by = Hashtbl.create 2; payload }
          end
      | Munmap vkey -> (
          match Hashtbl.find_opt model vkey with
          | Some g when Hashtbl.fold (fun _ d acc -> acc + d) g.open_by 0 = 0 ->
              Libmpk.mpk_munmap mpk t0 ~vkey;
              Hashtbl.remove model vkey
          | Some _ | None -> ())
      | Begin (vkey, thread) -> (
          match Hashtbl.find_opt model vkey with
          | Some g -> (
              let task = threads.(thread) in
              match Libmpk.mpk_begin mpk task ~vkey ~prot:Perm.rw with
              | () ->
                  let tid = Task.id task in
                  Hashtbl.replace g.open_by tid
                    (1 + Option.value ~default:0 (Hashtbl.find_opt g.open_by tid))
              | exception Libmpk.Key_exhausted -> ())
          | None -> ())
      | End (vkey, thread) -> (
          match Hashtbl.find_opt model vkey with
          | Some g -> (
              let task = threads.(thread) in
              let tid = Task.id task in
              let depth = Option.value ~default:0 (Hashtbl.find_opt g.open_by tid) in
              match Libmpk.mpk_end mpk task ~vkey with
              | () ->
                  if depth = 0 then failwith "mpk_end accepted without begin";
                  if depth = 1 then Hashtbl.remove g.open_by tid
                  else Hashtbl.replace g.open_by tid (depth - 1)
              | exception Errno.Error (Errno.EINVAL, _) ->
                  if depth > 0 then failwith "mpk_end rejected a legitimate end")
          | None -> ())
      | Mprotect (vkey, sel) -> (
          match Hashtbl.find_opt model vkey with
          | Some g
            when Hashtbl.fold (fun _ d acc -> acc + d) g.open_by 0 = 0 ->
              let prot = prot_of_selector sel in
              Libmpk.mpk_mprotect mpk t0 ~vkey ~prot;
              g.global_prot <- Some prot
          | Some _ | None -> ())
      | Touch (vkey, thread) -> (
          match Hashtbl.find_opt model vkey with
          | Some g ->
              ignore
                (match Mmu.read_byte mmu (Task.core threads.(thread)) ~addr:g.addr with
                | (_ : char) -> ()
                | exception Signal.Killed _ -> ())
          | None -> ()));
      check_invariants op)
    ops;
  true

let model_fuzz =
  QCheck.Test.make ~name:"libmpk invariants hold under random API sequences" ~count:500
    arb_ops
    (fun ops -> run_sequence ops)

(* Two hardware keys for six groups: nearly every begin evicts, so the
   recycle/scrub/retag paths run constantly. *)
let model_fuzz_key_pressure =
  QCheck.Test.make ~name:"invariants hold under extreme key pressure (2 hw keys)"
    ~count:500 arb_ops
    (fun ops -> run_sequence ~hw_keys:2 ops)

let () =
  Alcotest.run "model"
    [
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest model_fuzz;
          QCheck_alcotest.to_alcotest model_fuzz_key_pressure;
        ] );
    ]
