(* Tests for the cross-layer invariant auditor (Mpk_check.Audit) and the
   randomized stress driver (Mpk_check.Stress): the auditor must stay
   silent on every legal API sequence, and it must speak up when we
   tamper with hardware state behind libmpk's back. *)

open Mpk_hw
open Mpk_kernel

let page = Physmem.page_size

let make_env ?(threads = 1) ?hw_keys () =
  let machine = Machine.create ~cores:threads ~mem_mib:128 () in
  let proc = Proc.create machine in
  let tasks = Array.init threads (fun i -> Proc.spawn proc ~core_id:i ()) in
  let mpk = Libmpk.init ?hw_keys ~evict_rate:1.0 proc tasks.(0) in
  (mpk, proc, tasks)

let check_clean what mpk =
  match Mpk_check.Audit.run mpk with
  | [] -> ()
  | vs ->
      let msgs =
        String.concat "; "
          (List.map (fun v -> Format.asprintf "%a" Mpk_check.Audit.pp_violation v) vs)
      in
      Alcotest.fail (Printf.sprintf "audit after %s: %s" what msgs)

let invariants vs = List.sort_uniq compare (List.map (fun v -> v.Mpk_check.Audit.invariant) vs)

let check_flags what invariant mpk =
  let vs = Mpk_check.Audit.run mpk in
  if not (List.mem invariant (invariants vs)) then
    Alcotest.fail
      (Printf.sprintf "expected I%d violation after %s, got [%s]" invariant what
         (String.concat ";" (List.map string_of_int (invariants vs))))

(* --- the auditor is silent along a scripted happy path --- *)

let test_scripted_lifecycle () =
  let mpk, proc, tasks = make_env ~threads:2 () in
  let t0 = tasks.(0) and t1 = tasks.(1) in
  check_clean "init" mpk;
  let a = Libmpk.mpk_mmap mpk t0 ~vkey:1 ~len:(2 * page) ~prot:Perm.rw in
  check_clean "mmap v1" mpk;
  ignore (Libmpk.mpk_mmap mpk t1 ~vkey:2 ~len:page ~prot:Perm.rwx);
  check_clean "mmap v2" mpk;
  Libmpk.mpk_begin mpk t0 ~vkey:1 ~prot:Perm.rw;
  check_clean "begin v1" mpk;
  Mmu.write_byte (Proc.mmu proc) (Task.core t0) ~addr:a 'x';
  check_clean "write inside domain" mpk;
  Libmpk.mpk_end mpk t0 ~vkey:1;
  check_clean "end v1" mpk;
  Libmpk.mpk_mprotect mpk t1 ~vkey:2 ~prot:Perm.rx;
  check_clean "mprotect v2" mpk;
  let b = Libmpk.mpk_malloc mpk t0 ~vkey:3 ~size:256 in
  check_clean "malloc v3" mpk;
  Libmpk.mpk_free mpk t0 ~vkey:3 ~addr:b;
  check_clean "free v3" mpk;
  Libmpk.mpk_munmap mpk t0 ~vkey:1;
  check_clean "munmap v1" mpk;
  Libmpk.mpk_munmap mpk t1 ~vkey:2;
  Libmpk.mpk_munmap mpk t0 ~vkey:3;
  check_clean "teardown" mpk;
  Alcotest.(check int) "all keys back on the free list" (Libmpk.hw_keys mpk)
    (List.length (Libmpk.Key_cache.free_keys (Libmpk.cache mpk)))

(* --- lazy TLB shootdown stays coherent across the off-CPU window --- *)

let test_lazy_shootdown_audited () =
  (* A sibling caches a translation for a group's page, gets descheduled,
     and the group is unmapped (pkey_unmap_group retags the PTEs and lazily
     shoots the sibling down). The auditor's I4 must hold through the whole
     window: while the task sleeps — the idle core's stale entries are
     dropped for free — and after it reschedules and pays for the deferred
     flush. *)
  let mpk, proc, tasks = make_env ~threads:2 ~hw_keys:4 () in
  let t0 = tasks.(0) and t1 = tasks.(1) in
  let a = Libmpk.mpk_mmap mpk t0 ~vkey:1 ~len:page ~prot:Perm.rw in
  Libmpk.mpk_mprotect mpk t0 ~vkey:1 ~prot:Perm.rw;
  Mmu.write_byte (Proc.mmu proc) (Task.core t0) ~addr:a 'x';
  (* mpk_mprotect rights are process-global: the sibling can warm its own
     core's TLB with the same page. *)
  ignore (Mmu.read_byte (Proc.mmu proc) (Task.core t1) ~addr:a);
  check_clean "both TLBs warm" mpk;
  Sched.schedule_out (Proc.sched proc) t1;
  Libmpk.mpk_munmap mpk t0 ~vkey:1;
  Alcotest.(check bool) "flush deferred to switch-in" true (Task.tlb_flush_pending t1);
  check_clean "lazy window (sibling off-cpu, group gone)" mpk;
  Sched.schedule_in (Proc.sched proc) t1;
  Alcotest.(check bool) "flush debt settled" false (Task.tlb_flush_pending t1);
  check_clean "sibling rescheduled" mpk

(* --- nested begin/end across two tasks with a single hardware key --- *)

let test_nested_begin_two_tasks_one_key () =
  let mpk, _proc, tasks = make_env ~threads:2 ~hw_keys:1 () in
  let t0 = tasks.(0) and t1 = tasks.(1) in
  ignore (Libmpk.mpk_mmap mpk t0 ~vkey:1 ~len:page ~prot:Perm.rw);
  check_clean "mmap v1 (takes the only key)" mpk;
  (* Second group cannot attach at creation: no key is free. *)
  ignore (Libmpk.mpk_mmap mpk t1 ~vkey:2 ~len:page ~prot:Perm.rw);
  check_clean "mmap v2 (no key free)" mpk;
  (match Libmpk.find_group mpk 2 with
  | Some g -> Alcotest.(check bool) "v2 starts unmapped" true (g.Libmpk.Group.state = Libmpk.Group.Unmapped)
  | None -> Alcotest.fail "v2 group missing");
  (* Nested domains: t0 twice, t1 once — depth 3, pin count 3. *)
  Libmpk.mpk_begin mpk t0 ~vkey:1 ~prot:Perm.rw;
  check_clean "begin v1 @t0" mpk;
  Libmpk.mpk_begin mpk t1 ~vkey:1 ~prot:Perm.r;
  check_clean "begin v1 @t1" mpk;
  Libmpk.mpk_begin mpk t0 ~vkey:1 ~prot:Perm.rw;
  check_clean "nested begin v1 @t0" mpk;
  Alcotest.(check int) "pin count is 3" 3 (Libmpk.Key_cache.pins (Libmpk.cache mpk) 1);
  (* The only key is pinned: a domain on v2 must be refused ... *)
  (match Libmpk.mpk_begin mpk t1 ~vkey:2 ~prot:Perm.rw with
  | () -> Alcotest.fail "begin v2 should raise Key_exhausted"
  | exception Libmpk.Key_exhausted -> ());
  check_clean "Key_exhausted left no residue" mpk;
  (* ... and mpk_mprotect on v2 must fall back to plain mprotect (the
     eviction-declined path): permission changes, no key attached. *)
  Libmpk.mpk_mprotect mpk t1 ~vkey:2 ~prot:Perm.r;
  check_clean "mprotect v2 fallback" mpk;
  (match Libmpk.find_group mpk 2 with
  | Some g ->
      Alcotest.(check bool) "v2 still unmapped after fallback" true
        (g.Libmpk.Group.state = Libmpk.Group.Unmapped);
      Alcotest.(check string) "v2 permission updated" "r--" (Perm.to_string g.Libmpk.Group.prot)
  | None -> Alcotest.fail "v2 group missing");
  (* Unwind the domains one by one; the key stays pinned until the last end. *)
  Libmpk.mpk_end mpk t0 ~vkey:1;
  check_clean "first end" mpk;
  Libmpk.mpk_end mpk t1 ~vkey:1;
  check_clean "second end" mpk;
  Alcotest.(check int) "still pinned once" 1 (Libmpk.Key_cache.pins (Libmpk.cache mpk) 1);
  Libmpk.mpk_end mpk t0 ~vkey:1;
  check_clean "last end" mpk;
  Alcotest.(check int) "unpinned" 0 (Libmpk.Key_cache.pins (Libmpk.cache mpk) 1);
  (* Now the domain on v2 can evict v1 and take the key. *)
  Libmpk.mpk_begin mpk t1 ~vkey:2 ~prot:Perm.r;
  check_clean "begin v2 after unpin (evicts v1)" mpk;
  (match Libmpk.find_group mpk 1 with
  | Some g -> Alcotest.(check bool) "v1 was evicted" true (g.Libmpk.Group.state = Libmpk.Group.Unmapped)
  | None -> Alcotest.fail "v1 group missing");
  Libmpk.mpk_end mpk t1 ~vkey:2;
  check_clean "end v2" mpk

(* --- execute-only lifecycle: reserve, share, leave, reclaim --- *)

let test_xonly_lifecycle () =
  let mpk, _proc, tasks = make_env ~threads:2 ~hw_keys:4 () in
  let t0 = tasks.(0) in
  ignore (Libmpk.mpk_mmap mpk t0 ~vkey:1 ~len:page ~prot:Perm.rwx);
  ignore (Libmpk.mpk_mmap mpk t0 ~vkey:2 ~len:page ~prot:Perm.rwx);
  check_clean "two rwx groups" mpk;
  Libmpk.mpk_mprotect mpk t0 ~vkey:1 ~prot:Perm.x_only;
  check_clean "v1 goes execute-only" mpk;
  let reserve =
    match Libmpk.xonly_key mpk with
    | Some k -> k
    | None -> Alcotest.fail "no execute-only reserve after x_only mprotect"
  in
  Libmpk.mpk_mprotect mpk t0 ~vkey:2 ~prot:Perm.x_only;
  check_clean "v2 shares the reserve" mpk;
  Alcotest.(check int) "two xonly groups" 2 (Libmpk.xonly_group_count mpk);
  (match Libmpk.find_group mpk 2 with
  | Some { Libmpk.Group.state = Libmpk.Group.Mapped k; _ } ->
      Alcotest.(check int) "same reserved key" (Pkey.to_int reserve) (Pkey.to_int k)
  | _ -> Alcotest.fail "v2 not mapped to the reserve");
  Alcotest.(check int) "one key withdrawn from the cache" 1
    (Libmpk.Key_cache.reserved_count (Libmpk.cache mpk));
  Alcotest.(check int) "capacity conserved" (Libmpk.hw_keys mpk)
    (Libmpk.Key_cache.capacity (Libmpk.cache mpk));
  (* mpk_begin on an execute-only group is refused. *)
  (match Libmpk.mpk_begin mpk t0 ~vkey:1 ~prot:Perm.r with
  | () -> Alcotest.fail "begin on xonly group should fail"
  | exception Errno.Error _ -> ());
  check_clean "refused begin left no residue" mpk;
  (* Leaving execute-only through an ordinary mprotect. *)
  Libmpk.mpk_mprotect mpk t0 ~vkey:1 ~prot:Perm.rw;
  check_clean "v1 left execute-only" mpk;
  Alcotest.(check int) "one xonly group left" 1 (Libmpk.xonly_group_count mpk);
  Alcotest.(check bool) "reserve still held" true (Libmpk.xonly_key mpk <> None);
  (* Unmapping the last execute-only group reclaims the reserve. *)
  Libmpk.mpk_munmap mpk t0 ~vkey:2;
  check_clean "last xonly group unmapped" mpk;
  Alcotest.(check bool) "reserve reclaimed" true (Libmpk.xonly_key mpk = None);
  Alcotest.(check int) "nothing reserved" 0
    (Libmpk.Key_cache.reserved_count (Libmpk.cache mpk));
  Libmpk.mpk_munmap mpk t0 ~vkey:1;
  check_clean "teardown" mpk

(* --- the auditor detects tampering behind libmpk's back --- *)

let test_detects_residual_pkru_rights () =
  let mpk, _proc, tasks = make_env ~threads:2 ~hw_keys:4 () in
  check_clean "init" mpk;
  let free =
    match Libmpk.Key_cache.free_keys (Libmpk.cache mpk) with
    | k :: _ -> k
    | [] -> Alcotest.fail "no free key"
  in
  (* A free-list key suddenly readable by task 1: the use-after-free the
     paper's pkey_unmap_group closes. *)
  let core = Task.core tasks.(1) in
  Cpu.set_pkru_direct core (Pkru.set_rights (Cpu.pkru core) free Pkru.Read_write);
  check_flags "PKRU tamper on a free key" 1 mpk

let test_detects_stale_pte_tag () =
  let mpk, proc, tasks = make_env ~hw_keys:4 () in
  let t0 = tasks.(0) in
  let a = Libmpk.mpk_mmap mpk t0 ~vkey:1 ~len:page ~prot:Perm.rw in
  Libmpk.mpk_mprotect mpk t0 ~vkey:1 ~prot:Perm.rw;
  Mmu.write_byte (Proc.mmu proc) (Task.core t0) ~addr:a 'x';  (* materialize the PTE *)
  check_clean "materialized group" mpk;
  (* Retag the group's page with a key it does not own. *)
  let stranger =
    match Libmpk.Key_cache.free_keys (Libmpk.cache mpk) with
    | k :: _ -> k
    | [] -> Alcotest.fail "no free key"
  in
  let pt = Mm.page_table (Proc.mm proc) in
  ignore (Page_table.set_pkey_range pt ~vpn:(Page_table.vpn_of_addr a) ~pages:1 stranger);
  check_flags "PTE tag tamper" 2 mpk

let test_detects_stale_tlb_entry () =
  let mpk, proc, tasks = make_env ~hw_keys:4 () in
  let t0 = tasks.(0) in
  let a = Libmpk.mpk_mmap mpk t0 ~vkey:1 ~len:page ~prot:Perm.rw in
  Libmpk.mpk_mprotect mpk t0 ~vkey:1 ~prot:Perm.rw;
  Mmu.write_byte (Proc.mmu proc) (Task.core t0) ~addr:a 'x';  (* fills the TLB *)
  check_clean "TLB warm" mpk;
  (* Change the PTE without shooting down the TLB: the cached translation
     is now stale. *)
  let pt = Mm.page_table (Proc.mm proc) in
  let vpn = Page_table.vpn_of_addr a in
  ignore (Page_table.update pt ~vpn (fun pte -> Pte.with_perm pte Perm.r));
  check_flags "stale TLB entry" 4 mpk

(* --- key-cache regression fixes --- *)

let keys n = List.filteri (fun i _ -> i < n) Pkey.allocatable

let test_release_refuses_pinned () =
  let c = Libmpk.Key_cache.create ~keys:(keys 2) () in
  ignore (Libmpk.Key_cache.acquire c 1);
  Libmpk.Key_cache.pin c 1;
  (match Libmpk.Key_cache.release c 1 with
  | () -> Alcotest.fail "release of a pinned mapping must raise"
  | exception Invalid_argument _ -> ());
  Alcotest.(check int) "mapping survived" 1
    (List.length (Libmpk.Key_cache.mappings c));
  Libmpk.Key_cache.unpin c 1;
  Libmpk.Key_cache.release c 1;
  Alcotest.(check int) "released after unpin" 0
    (List.length (Libmpk.Key_cache.mappings c));
  Alcotest.(check int) "capacity intact" 2 (Libmpk.Key_cache.capacity c)

let test_reserve_conserves_capacity () =
  let c = Libmpk.Key_cache.create ~keys:(keys 3) () in
  ignore (Libmpk.Key_cache.acquire c 1);
  (match Libmpk.Key_cache.reserve c with
  | Some (k, None) ->
      Alcotest.(check int) "capacity conserved" 3 (Libmpk.Key_cache.capacity c);
      Alcotest.(check (list int)) "reserved key tracked" [ Pkey.to_int k ]
        (List.map Pkey.to_int (Libmpk.Key_cache.reserved_keys c));
      Libmpk.Key_cache.add_key c k;
      Alcotest.(check int) "capacity after return" 3 (Libmpk.Key_cache.capacity c);
      Alcotest.(check int) "nothing reserved" 0 (Libmpk.Key_cache.reserved_count c)
  | Some (_, Some _) -> Alcotest.fail "no eviction expected: free keys existed"
  | None -> Alcotest.fail "reserve failed with free keys available")

let test_percentile_rejects_nan () =
  (match Mpk_util.Stats.percentile [| 1.0; Float.nan; 3.0 |] 50.0 with
  | (_ : float) -> Alcotest.fail "percentile must reject NaN samples"
  | exception Invalid_argument _ -> ());
  (* Float.compare orders negative values correctly (the polymorphic
     compare on boxed floats did too, but only by accident). *)
  Alcotest.(check (float 1e-9)) "median of mixed signs" (-1.0)
    (Mpk_util.Stats.percentile [| 3.0; -1.0; -5.0 |] 50.0)

(* --- key-cache counter conservation ---

   Every miss either inserts a mapping or returns Full; every inserted
   mapping is still present, was capacity-evicted, or was invalidated by
   a release. So at any instant:

     misses = in_use + evictions + invalidations + full

   Checked after every op of a seeded random API run, so any accounting
   hole (a removal path that forgets its counter) surfaces at the exact
   op that opened it. *)

let test_cache_counter_conservation () =
  let mpk, _proc, tasks = make_env ~threads:2 ~hw_keys:4 () in
  let t0 = tasks.(0) and t1 = tasks.(1) in
  let prng = Mpk_util.Prng.create ~seed:7L in
  let check_identity step =
    let c = Libmpk.cache mpk in
    let misses = Libmpk.Key_cache.misses c in
    let rhs =
      Libmpk.Key_cache.in_use c + Libmpk.Key_cache.evictions c
      + Libmpk.Key_cache.invalidations c
      + Libmpk.Key_cache.full_misses c
    in
    if misses <> rhs then
      Alcotest.fail
        (Printf.sprintf
           "conservation broken after op %d: misses=%d <> in_use+evictions+\
            invalidations+full=%d"
           step misses rhs);
    let s = Libmpk.stats mpk in
    if s.Libmpk.cache_hit_rate < 0.0 || s.Libmpk.cache_hit_rate > 1.0 then
      Alcotest.fail "hit rate outside [0,1]"
  in
  let benign f =
    try f ()
    with Errno.Error _ | Libmpk.Key_exhausted | Libmpk.Unregistered_vkey _ -> ()
  in
  for step = 1 to 400 do
    let v = 1 + Mpk_util.Prng.int prng 8 in
    let t = if Mpk_util.Prng.int prng 2 = 0 then t0 else t1 in
    (match Mpk_util.Prng.int prng 6 with
    | 0 -> benign (fun () -> ignore (Libmpk.mpk_mmap mpk t ~vkey:v ~len:page ~prot:Perm.rw))
    | 1 -> benign (fun () -> Libmpk.mpk_munmap mpk t ~vkey:v)
    | 2 -> benign (fun () -> Libmpk.mpk_begin mpk t ~vkey:v ~prot:Perm.r)
    | 3 -> benign (fun () -> Libmpk.mpk_end mpk t ~vkey:v)
    | 4 -> benign (fun () -> Libmpk.mpk_mprotect mpk t ~vkey:v ~prot:Perm.rw)
    | _ -> benign (fun () -> Libmpk.mpk_mprotect mpk t ~vkey:v ~prot:Perm.x_only));
    check_identity step
  done;
  let s = Libmpk.stats mpk in
  Alcotest.(check bool) "run exercised hits, misses and invalidations" true
    (s.Libmpk.cache_hits > 0 && s.Libmpk.cache_misses > 0
    && s.Libmpk.cache_invalidations > 0);
  Alcotest.(check (float 1e-9)) "hit rate = hits / lookups"
    (float_of_int s.Libmpk.cache_hits
    /. float_of_int (s.Libmpk.cache_hits + s.Libmpk.cache_misses))
    s.Libmpk.cache_hit_rate;
  check_clean "end of counter stress" mpk

(* --- mpk_heap through the API: exhaustion, reuse, protected metadata --- *)

let test_heap_exhaustion_and_reuse () =
  let mpk, _proc, tasks = make_env () in
  let t0 = tasks.(0) in
  (* default heap is 1 MiB; 64 KiB blocks carve it exactly *)
  let block = 64 * 1024 in
  let addrs = ref [] in
  let rec fill () =
    match Libmpk.mpk_malloc mpk t0 ~vkey:5 ~size:block with
    | addr ->
        addrs := addr :: !addrs;
        fill ()
    | exception Errno.Error (Errno.ENOMEM, _) -> ()
  in
  fill ();
  Alcotest.(check int) "heap filled completely" 16 (List.length !addrs);
  check_clean "heap exhausted" mpk;
  (* free-then-realloc reuse: first-fit hands the hole back *)
  let victim = List.nth !addrs 7 in
  Libmpk.mpk_free mpk t0 ~vkey:5 ~addr:victim;
  check_clean "after free" mpk;
  let again = Libmpk.mpk_malloc mpk t0 ~vkey:5 ~size:block in
  Alcotest.(check int) "freed hole is reused" victim again;
  (* still full: the next alloc must fail again *)
  (match Libmpk.mpk_malloc mpk t0 ~vkey:5 ~size:block with
  | (_ : int) -> Alcotest.fail "heap should still be exhausted"
  | exception Errno.Error (Errno.ENOMEM, _) -> ());
  check_clean "after realloc" mpk

let test_heap_first_use_under_key_pressure () =
  (* One hardware key, pinned by an active domain: the group mpk_malloc
     creates on first use cannot attach a key (held at PROT_NONE), but
     allocation must still succeed and the auditor must stay silent. *)
  let mpk, _proc, tasks = make_env ~hw_keys:1 () in
  let t0 = tasks.(0) in
  ignore (Libmpk.mpk_mmap mpk t0 ~vkey:1 ~len:page ~prot:Perm.rw);
  Libmpk.mpk_begin mpk t0 ~vkey:1 ~prot:Perm.rw;
  let a = Libmpk.mpk_malloc mpk t0 ~vkey:2 ~size:256 in
  check_clean "first-use malloc with all keys pinned" mpk;
  Libmpk.mpk_free mpk t0 ~vkey:2 ~addr:a;
  Libmpk.mpk_end mpk t0 ~vkey:1;
  check_clean "after teardown" mpk

let test_heap_metadata_stays_protected () =
  (* Group (and heap) metadata lives in pages guarded by the reserved
     metadata pkey: a stray application write must fault, and the
     auditor must agree the fault left nothing inconsistent. *)
  let mpk, proc, tasks = make_env () in
  let t0 = tasks.(0) in
  let a = Libmpk.mpk_malloc mpk t0 ~vkey:3 ~size:512 in
  let md_base = Libmpk.Metadata.base (Libmpk.metadata mpk) in
  (match Mmu.write_byte (Proc.mmu proc) (Task.core t0) ~addr:md_base 'X' with
  | () -> Alcotest.fail "application write to libmpk metadata must fault"
  | exception Mmu.Fault _ -> ()
  | exception Signal.Killed _ -> ());
  check_clean "after blocked metadata write" mpk;
  (* the metadata the write aimed at still round-trips *)
  Libmpk.mpk_free mpk t0 ~vkey:3 ~addr:a;
  check_clean "after free" mpk

(* --- mpk_heap direct: free-list invariants under churn --- *)

let test_heap_unit_churn () =
  let h = Libmpk.Mpk_heap.create ~base:0x1000 ~len:256 in
  let a = Option.get (Libmpk.Mpk_heap.alloc h ~size:64) in
  let b = Option.get (Libmpk.Mpk_heap.alloc h ~size:64) in
  let c = Option.get (Libmpk.Mpk_heap.alloc h ~size:64) in
  let d = Option.get (Libmpk.Mpk_heap.alloc h ~size:64) in
  Alcotest.(check bool) "exhausted" true (Libmpk.Mpk_heap.alloc h ~size:16 = None);
  Alcotest.(check bool) "invariant at full" true (Libmpk.Mpk_heap.invariant h);
  (* free non-adjacent then the middle: coalescing must merge all three *)
  Libmpk.Mpk_heap.free h ~addr:b;
  Libmpk.Mpk_heap.free h ~addr:d;
  Alcotest.(check bool) "invariant after holes" true (Libmpk.Mpk_heap.invariant h);
  Libmpk.Mpk_heap.free h ~addr:c;
  Alcotest.(check bool) "invariant after coalesce" true (Libmpk.Mpk_heap.invariant h);
  (* b..d coalesced into one 192-byte run: a 192-byte alloc fits at b *)
  Alcotest.(check (option int)) "coalesced run reused" (Some b)
    (Libmpk.Mpk_heap.alloc h ~size:192);
  Libmpk.Mpk_heap.free h ~addr:a;
  Libmpk.Mpk_heap.free h ~addr:b;
  Alcotest.(check int) "all bytes back" 256 (Libmpk.Mpk_heap.free_bytes h);
  Alcotest.(check bool) "final invariant" true (Libmpk.Mpk_heap.invariant h)

(* --- randomized stress: short deterministic runs across key regimes --- *)

let test_stress_passes () =
  List.iter
    (fun hw_keys ->
      List.iter
        (fun seed ->
          let cfg = { Mpk_check.Stress.default_config with hw_keys; seed } in
          let ops = Mpk_check.Stress.gen_ops cfg 400 in
          match Mpk_check.Stress.run cfg ops with
          | Mpk_check.Stress.Passed _ -> ()
          | Mpk_check.Stress.Failed f ->
              let minimized = Mpk_check.Stress.minimize cfg ops in
              Alcotest.fail
                (Mpk_check.Stress.report cfg ~ops_total:400 f minimized))
        [ 1L; 2L; 3L ])
    [ 1; 4; 15 ]

let test_stress_deterministic () =
  let cfg = { Mpk_check.Stress.default_config with seed = 42L } in
  let show ops = String.concat "|" (List.map Mpk_check.Stress.show_op ops) in
  Alcotest.(check string) "same seed, same ops"
    (show (Mpk_check.Stress.gen_ops cfg 50))
    (show (Mpk_check.Stress.gen_ops cfg 50));
  Alcotest.(check bool) "different seeds diverge" true
    (show (Mpk_check.Stress.gen_ops cfg 50)
    <> show (Mpk_check.Stress.gen_ops { cfg with seed = 43L } 50))

let () =
  Alcotest.run "check"
    [
      ( "auditor-clean",
        [
          Alcotest.test_case "scripted lifecycle" `Quick test_scripted_lifecycle;
          Alcotest.test_case "nested begins, one key, two tasks" `Quick
            test_nested_begin_two_tasks_one_key;
          Alcotest.test_case "execute-only lifecycle" `Quick test_xonly_lifecycle;
          Alcotest.test_case "lazy shootdown stays coherent (I4)" `Quick
            test_lazy_shootdown_audited;
        ] );
      ( "auditor-detects",
        [
          Alcotest.test_case "residual PKRU rights (I1)" `Quick
            test_detects_residual_pkru_rights;
          Alcotest.test_case "stale PTE tag (I2)" `Quick test_detects_stale_pte_tag;
          Alcotest.test_case "stale TLB entry (I4)" `Quick test_detects_stale_tlb_entry;
        ] );
      ( "fixes",
        [
          Alcotest.test_case "release refuses pinned" `Quick test_release_refuses_pinned;
          Alcotest.test_case "reserve conserves capacity" `Quick
            test_reserve_conserves_capacity;
          Alcotest.test_case "percentile rejects NaN" `Quick test_percentile_rejects_nan;
        ] );
      ( "counters",
        [
          Alcotest.test_case "key-cache counter conservation" `Quick
            test_cache_counter_conservation;
        ] );
      ( "heap",
        [
          Alcotest.test_case "exhaustion and free-then-realloc reuse" `Quick
            test_heap_exhaustion_and_reuse;
          Alcotest.test_case "first-use malloc under key pressure" `Quick
            test_heap_first_use_under_key_pressure;
          Alcotest.test_case "metadata stays behind the metadata pkey" `Quick
            test_heap_metadata_stays_protected;
          Alcotest.test_case "free-list churn keeps invariants" `Quick
            test_heap_unit_churn;
        ] );
      ( "stress",
        [
          Alcotest.test_case "passes across key regimes" `Slow test_stress_passes;
          Alcotest.test_case "deterministic generation" `Quick test_stress_deterministic;
        ] );
    ]
