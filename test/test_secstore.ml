(* Tests for the OpenSSL case study: keystore storage/retrieval, the
   Heartbleed PoC (leaks when insecure, crashes when protected — paper
   §6.1), the TLS-like handshake, and the load generator. *)

open Mpk_kernel
open Mpk_secstore

let make_env ?(threads = 2) () =
  let machine = Mpk_hw.Machine.create ~cores:4 ~mem_mib:128 () in
  let proc = Proc.create machine in
  let main = Proc.spawn proc ~core_id:0 () in
  let others = List.init (threads - 1) (fun i -> Proc.spawn proc ~core_id:(i + 1) ()) in
  proc, main, others

let keypair seed =
  Mpk_crypto.Rsa.generate (Mpk_util.Prng.create ~seed) ~bits:96

(* --- Keystore --- *)

let test_keystore_roundtrip_insecure () =
  let proc, main, _ = make_env () in
  let ks = Keystore.create ~mode:Keystore.Insecure proc main () in
  let kp = keypair 1L in
  ignore (Keystore.store ks main kp);
  Keystore.with_secret ks main (fun s ->
      Alcotest.(check bool) "d preserved" true
        (Mpk_crypto.Bignum.equal s.Mpk_crypto.Rsa.d kp.Mpk_crypto.Rsa.secret.Mpk_crypto.Rsa.d))

let test_keystore_roundtrip_protected () =
  let proc, main, _ = make_env () in
  let mpk = Libmpk.init ~evict_rate:1.0 proc main in
  let ks = Keystore.create ~mode:Keystore.Protected proc main ~mpk () in
  let kp = keypair 2L in
  ignore (Keystore.store ks main kp);
  Keystore.with_secret ks main (fun s ->
      Alcotest.(check bool) "n preserved" true
        (Mpk_crypto.Bignum.equal s.Mpk_crypto.Rsa.n kp.Mpk_crypto.Rsa.secret.Mpk_crypto.Rsa.n))

let test_keystore_protected_requires_mpk () =
  let proc, main, _ = make_env () in
  Alcotest.check_raises "missing mpk"
    (Invalid_argument "Keystore.create: Protected mode requires ~mpk") (fun () ->
      ignore (Keystore.create ~mode:Keystore.Protected proc main ()))

let test_keystore_protected_key_unreadable_outside_domain () =
  let proc, main, _ = make_env () in
  let mpk = Libmpk.init ~evict_rate:1.0 proc main in
  let ks = Keystore.create ~mode:Keystore.Protected proc main ~mpk () in
  ignore (Keystore.store ks main (keypair 3L));
  let addr, len = Keystore.secret_region ks in
  match Keystore.attacker_read ks main ~addr ~len with
  | exception Signal.Killed _ -> ()
  | _ -> Alcotest.fail "secret readable outside mpk_begin"

(* --- Heartbleed --- *)

let test_heartbleed_leaks_insecure () =
  let proc, main, _ = make_env () in
  let ks = Keystore.create ~mode:Keystore.Insecure proc main () in
  ignore (Keystore.store ks main (keypair 4L));
  (* claimed_len reaches past the buffer area into the key material *)
  match Heartbleed.echo ks main ~payload:(Bytes.of_string "ping") ~claimed_len:2048 with
  | Heartbleed.Crashed f -> Alcotest.failf "insecure echo crashed: %s" f
  | Heartbleed.Leaked _ as outcome ->
      Alcotest.(check bool) "private key leaked" true (Heartbleed.leaks_secret ks main outcome)

let test_heartbleed_blocked_protected () =
  let proc, main, _ = make_env () in
  let mpk = Libmpk.init ~evict_rate:1.0 proc main in
  let ks = Keystore.create ~mode:Keystore.Protected proc main ~mpk () in
  ignore (Keystore.store ks main (keypair 5L));
  match Heartbleed.echo ks main ~payload:(Bytes.of_string "ping") ~claimed_len:8192 with
  | Heartbleed.Crashed reason ->
      Alcotest.(check bool) "killed by a fault (paper: segmentation fault)" true
        (String.length reason > 0)
  | Heartbleed.Leaked _ as outcome ->
      if Heartbleed.leaks_secret ks main outcome then
        Alcotest.fail "protected keystore leaked the private key"
      else Alcotest.fail "over-read succeeded (should have faulted)"

let test_heartbleed_honest_read_ok () =
  (* A well-behaved echo (claimed_len = payload length) works in both
     modes. *)
  List.iter
    (fun mode ->
      let proc, main, _ = make_env () in
      let mpk =
        match mode with
        | Keystore.Protected -> Some (Libmpk.init ~evict_rate:1.0 proc main)
        | Keystore.Insecure -> None
      in
      let ks = Keystore.create ~mode proc main ?mpk () in
      ignore (Keystore.store ks main (keypair 6L));
      match Heartbleed.echo ks main ~payload:(Bytes.of_string "hello") ~claimed_len:5 with
      | Heartbleed.Leaked data -> Alcotest.(check string) "echo" "hello" (Bytes.to_string data)
      | Heartbleed.Crashed f -> Alcotest.failf "honest echo crashed: %s" f)
    [ Keystore.Insecure; Keystore.Protected ]

(* --- TLS server --- *)

let test_handshake_agrees () =
  List.iter
    (fun mode ->
      let proc, main, _ = make_env () in
      let mpk =
        match mode with
        | Keystore.Protected -> Some (Libmpk.init ~evict_rate:1.0 proc main)
        | Keystore.Insecure -> None
      in
      let server = Tls_server.create ~mode proc main ?mpk ~seed:7L () in
      let prng = Mpk_util.Prng.create ~seed:9L in
      let blob, client_key = Tls_server.client_hello server prng in
      let session = Tls_server.accept server main blob in
      Alcotest.(check bytes) "session keys agree" client_key (Tls_server.session_key session))
    [ Keystore.Insecure; Keystore.Protected ]

let test_authenticated_handshake () =
  let proc, main, _ = make_env () in
  let mpk = Libmpk.init ~evict_rate:1.0 proc main in
  let server = Tls_server.create ~mode:Keystore.Protected proc main ~mpk ~seed:21L () in
  let prng = Mpk_util.Prng.create ~seed:22L in
  let client_random = Bytes.init 16 (fun _ -> Char.chr (Mpk_util.Prng.int prng 256)) in
  let blob, client_key = Tls_server.client_hello server prng in
  let session, signature = Tls_server.accept_authenticated server main ~client_random blob in
  Alcotest.(check bytes) "keys agree" client_key (Tls_server.session_key session);
  Alcotest.(check bool) "server authenticated" true
    (Tls_server.verify_server server ~client_random ~blob ~signature);
  (* a MITM replay with a different transcript fails *)
  Alcotest.(check bool) "replay rejected" false
    (Tls_server.verify_server server ~client_random:(Bytes.make 16 'x') ~blob ~signature)

let test_serve_charges_by_size () =
  let proc, main, _ = make_env () in
  let server = Tls_server.create ~mode:Keystore.Insecure proc main ~seed:8L () in
  let prng = Mpk_util.Prng.create ~seed:10L in
  let blob, _ = Tls_server.client_hello server prng in
  let session = Tls_server.accept server main blob in
  let core = Task.core main in
  let measure size =
    snd (Mpk_hw.Cpu.measure core (fun () -> ignore (Tls_server.serve server main session ~size)))
  in
  let small = measure 1024 in
  let large = measure (512 * 1024) in
  Alcotest.(check bool) "large costs more" true (large > 100.0 *. small)

let test_latency_histogram_and_stats_reply () =
  let proc, main, _ = make_env () in
  let server = Tls_server.create ~mode:Keystore.Insecure proc main ~seed:8L () in
  let h = Tls_server.latency server in
  Alcotest.(check int) "empty before traffic" 0 (Mpk_util.Stats.Histogram.count h);
  let prng = Mpk_util.Prng.create ~seed:10L in
  let blob, _ = Tls_server.client_hello server prng in
  let session = Tls_server.accept server main blob in
  ignore (Tls_server.serve server main session ~size:1024);
  ignore (Tls_server.serve server main session ~size:4096);
  ignore (Tls_server.handle_heartbeat server main ~payload:(Bytes.of_string "hb") ~claimed_len:2);
  (* one handshake + two serves + one heartbeat, each timed once *)
  Alcotest.(check int) "4 samples" 4 (Mpk_util.Stats.Histogram.count h);
  Alcotest.(check bool) "positive latency" true (Mpk_util.Stats.Histogram.minimum h > 0.0);
  let reply = Tls_server.stats_reply server in
  let get k =
    match List.assoc_opt k reply with
    | Some v -> v
    | None -> Alcotest.failf "stats_reply missing %S" k
  in
  Alcotest.(check string) "handshakes" "1" (get "handshakes");
  Alcotest.(check string) "requests" "2" (get "requests");
  Alcotest.(check string) "heartbeats" "1" (get "heartbeats");
  Alcotest.(check string) "none rejected" "0" (get "heartbeats_rejected");
  Alcotest.(check string) "sample count" "4" (get "latency_samples");
  (* percentiles only appear once there are samples, and parse as numbers *)
  List.iter
    (fun k ->
      match float_of_string_opt (get k) with
      | Some v -> Alcotest.(check bool) (k ^ " positive") true (v > 0.0)
      | None -> Alcotest.failf "%s is not a number: %s" k (get k))
    [ "latency_p50_cycles"; "latency_p95_cycles"; "latency_p99_cycles" ]

let test_rejected_heartbeat_counted () =
  let proc, main, _ = make_env () in
  let mpk = Libmpk.init ~evict_rate:1.0 proc main in
  let server = Tls_server.create ~mode:Keystore.Protected proc main ~mpk ~seed:31L () in
  (match Tls_server.handle_heartbeat server main ~payload:(Bytes.of_string "ping") ~claimed_len:65536 with
  | Tls_server.Served _ -> Alcotest.fail "probe served"
  | Tls_server.Rejected _ -> ());
  let reply = Tls_server.stats_reply server in
  Alcotest.(check (option string)) "rejection counted" (Some "1")
    (List.assoc_opt "heartbeats_rejected" reply);
  (* the rejected request still shows up in the latency histogram *)
  Alcotest.(check int) "timed anyway" 1
    (Mpk_util.Stats.Histogram.count (Tls_server.latency server))

let test_heartbeat_rejected_then_serves () =
  (* the Heartbleed probe against the hardened server: the over-read hits
     the keystore's pkey, the worker's signal handler rejects the one
     request, and the server completes a fresh handshake + request after *)
  let proc, main, _ = make_env () in
  let mpk = Libmpk.init ~evict_rate:1.0 proc main in
  let server = Tls_server.create ~mode:Keystore.Protected proc main ~mpk ~seed:31L () in
  (* the probe: claim far more than was sent — the first request buffer
     sits directly below the keystore group, so the over-read walks into
     its pkey-protected pages *)
  (match Tls_server.handle_heartbeat server main ~payload:(Bytes.of_string "ping") ~claimed_len:65536 with
  | Tls_server.Served data ->
      Alcotest.failf "probe served: leaked %d bytes" (Bytes.length data)
  | Tls_server.Rejected si -> (
      match si.Signal.code with
      | Signal.Segv_pkuerr -> ()
      | c -> Alcotest.failf "expected SEGV_PKUERR, got %s" (Signal.code_to_string c)));
  (* an honest heartbeat afterwards: served *)
  (match Tls_server.handle_heartbeat server main ~payload:(Bytes.of_string "ping") ~claimed_len:4 with
  | Tls_server.Served data -> Alcotest.(check string) "echo" "ping" (Bytes.to_string data)
  | Tls_server.Rejected si -> Alcotest.failf "honest heartbeat rejected: %s" (Signal.to_string si));
  (* the worker survived: next client is served normally *)
  let prng = Mpk_util.Prng.create ~seed:32L in
  let blob, client_key = Tls_server.client_hello server prng in
  let session = Tls_server.accept server main blob in
  Alcotest.(check bytes) "handshake after the probe" client_key (Tls_server.session_key session);
  ignore (Tls_server.serve server main session ~size:1024)

let test_loadgen_overhead_under_one_percent () =
  (* Fig 11's claim: libmpk costs < 1% of throughput. *)
  let throughput mode =
    let proc, main, others = make_env ~threads:4 () in
    let mpk =
      match mode with
      | Keystore.Protected -> Some (Libmpk.init ~evict_rate:1.0 proc main)
      | Keystore.Insecure -> None
    in
    let server = Tls_server.create ~mode proc main ?mpk ~seed:11L () in
    let result =
      Loadgen.run server (main :: others) ~clients:4 ~requests:200 ~size:4096 ()
    in
    result.Loadgen.throughput_rps
  in
  let base = throughput Keystore.Insecure in
  let prot = throughput Keystore.Protected in
  let overhead = (base -. prot) /. base in
  Alcotest.(check bool)
    (Printf.sprintf "overhead %.4f%% < 1%%" (overhead *. 100.0))
    true
    (overhead < 0.01 && overhead > -0.01)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "mpk_secstore"
    [
      ( "keystore",
        [
          tc "roundtrip insecure" `Quick test_keystore_roundtrip_insecure;
          tc "roundtrip protected" `Quick test_keystore_roundtrip_protected;
          tc "protected requires mpk" `Quick test_keystore_protected_requires_mpk;
          tc "unreadable outside domain" `Quick test_keystore_protected_key_unreadable_outside_domain;
        ] );
      ( "heartbleed",
        [
          tc "leaks when insecure" `Quick test_heartbleed_leaks_insecure;
          tc "blocked when protected" `Quick test_heartbleed_blocked_protected;
          tc "honest read ok" `Quick test_heartbleed_honest_read_ok;
        ] );
      ( "tls",
        [
          tc "handshake agrees" `Quick test_handshake_agrees;
          tc "authenticated handshake" `Quick test_authenticated_handshake;
          tc "serve charges by size" `Quick test_serve_charges_by_size;
          tc "latency histogram + stats reply" `Quick test_latency_histogram_and_stats_reply;
          tc "rejected heartbeat counted" `Quick test_rejected_heartbeat_counted;
          tc "heartbeat rejected, server survives" `Quick test_heartbeat_rejected_then_serves;
          tc "libmpk overhead <1%" `Quick test_loadgen_overhead_under_one_percent;
        ] );
    ]
