(* Pkey-fault signal delivery and fault-injection exception safety.

   Part 1 mirrors the kernel contract: an unresolved user fault becomes a
   SIGSEGV (SEGV_MAPERR / SEGV_ACCERR / SEGV_PKUERR, the latter carrying
   si_pkey) or a SIGBUS on frame exhaustion, delivered to the faulting
   task's handler; with no handler — or a handler that returns normally —
   the task is killed ([Signal.Killed]).

   Part 2 arms each registered failure point individually and checks that
   the library degrades gracefully: typed errors out, invariants intact
   (the PR-2 auditor is the oracle), and the same call succeeds once the
   fault is disarmed. *)

open Mpk_hw
open Mpk_kernel

let page = Physmem.page_size

let make_env ?(cores = 2) ?hw_keys () =
  Mpk_faultinj.reset ();
  let machine = Machine.create ~cores ~mem_mib:64 () in
  let proc = Proc.create machine in
  let main = Proc.spawn proc ~core_id:0 () in
  let mpk = Libmpk.init ?hw_keys ~evict_rate:1.0 proc main in
  (mpk, proc, main)

let read proc task ~addr = Mmu.read_byte (Proc.mmu proc) (Task.core task) ~addr
let write proc task ~addr c = Mmu.write_byte (Proc.mmu proc) (Task.core task) ~addr c

(* The siglongjmp idiom: the handler escapes by raising, the caller
   resumes at the "sigsetjmp point" with the siginfo in hand. *)
exception Recovered of Signal.siginfo

let catch_signal task f =
  match Task.with_signal_handler task (fun si -> raise (Recovered si)) f with
  | _ -> None
  | exception Recovered si -> Some si

let audit_clean what mpk =
  match Mpk_check.Audit.run mpk with
  | [] -> ()
  | vs ->
      Alcotest.failf "%s: auditor flagged %d violation(s): %s" what (List.length vs)
        (String.concat "; "
           (List.map (fun v -> Format.asprintf "%a" Mpk_check.Audit.pp_violation v) vs))

(* --- part 1: classification and delivery ------------------------------- *)

let test_pkuerr_classification () =
  let mpk, proc, main = make_env () in
  let addr = Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw in
  (* No mpk_begin: the group's key is No_access in PKRU. *)
  match catch_signal main (fun () -> ignore (read proc main ~addr)) with
  | None -> Alcotest.fail "read outside the domain should fault"
  | Some si ->
      Alcotest.(check int) "signo" Signal.sigsegv si.Signal.signo;
      (match si.Signal.code with
      | Signal.Segv_pkuerr -> ()
      | c -> Alcotest.failf "expected SEGV_PKUERR, got %s" (Signal.code_to_string c));
      Alcotest.(check int) "si_addr" addr si.Signal.addr;
      let pkey =
        match Libmpk.find_group mpk 1 with
        | Some { Libmpk.Group.state = Libmpk.Group.Mapped k; _ } -> Pkey.to_int k
        | _ -> Alcotest.fail "group should be Mapped"
      in
      Alcotest.(check int) "si_pkey is the group's key" pkey si.Signal.pkey

let test_accerr_classification () =
  let _mpk, proc, main = make_env () in
  let addr = Syscall.mmap proc main ~len:page ~prot:Perm.rw () in
  write proc main ~addr 'x';
  Syscall.mprotect proc main ~addr ~len:page ~prot:Perm.r;
  match catch_signal main (fun () -> write proc main ~addr 'y') with
  | None -> Alcotest.fail "write to a read-only page should fault"
  | Some si ->
      Alcotest.(check int) "signo" Signal.sigsegv si.Signal.signo;
      (match si.Signal.code with
      | Signal.Segv_accerr -> ()
      | c -> Alcotest.failf "expected SEGV_ACCERR, got %s" (Signal.code_to_string c));
      (match si.Signal.access with
      | Mmu.Write -> ()
      | _ -> Alcotest.fail "si should record a write access");
      Alcotest.(check int) "no pkey on ACCERR" 0 si.Signal.pkey

let test_maperr_classification () =
  let _mpk, proc, main = make_env () in
  match catch_signal main (fun () -> ignore (read proc main ~addr:0x7fff_0000)) with
  | None -> Alcotest.fail "read of an unmapped address should fault"
  | Some si -> (
      match si.Signal.code with
      | Signal.Segv_maperr -> ()
      | c -> Alcotest.failf "expected SEGV_MAPERR, got %s" (Signal.code_to_string c))

let test_sigbus_on_frame_exhaustion () =
  let _mpk, proc, main = make_env () in
  let addr = Syscall.mmap proc main ~len:page ~prot:Perm.rw () in
  Mpk_faultinj.arm "physmem.alloc_frame" (Mpk_faultinj.Once 0);
  (match catch_signal main (fun () -> ignore (read proc main ~addr)) with
  | None -> Alcotest.fail "demand paging under frame exhaustion should fault"
  | Some si ->
      Alcotest.(check int) "signo is SIGBUS" Signal.sigbus si.Signal.signo;
      (match si.Signal.code with
      | Signal.Bus_adrerr -> ()
      | c -> Alcotest.failf "expected BUS_ADRERR, got %s" (Signal.code_to_string c)));
  Mpk_faultinj.reset ();
  (* the fault left nothing behind: the same touch now succeeds *)
  ignore (read proc main ~addr)

let test_default_disposition_kills () =
  let _mpk, proc, main = make_env () in
  (match read proc main ~addr:0x7fff_0000 with
  | _ -> Alcotest.fail "expected a fatal fault"
  | exception Signal.Killed si ->
      Alcotest.(check int) "signo" Signal.sigsegv si.Signal.signo);
  Alcotest.(check int) "delivery counted" 1 (Task.signals_delivered main)

let test_handler_returning_still_kills () =
  let _mpk, proc, main = make_env () in
  let seen = ref 0 in
  Task.set_signal_handler main (fun _si -> incr seen);
  (match read proc main ~addr:0x7fff_0000 with
  | _ -> Alcotest.fail "a handler that returns cannot resolve the fault"
  | exception Signal.Killed _ -> ());
  Alcotest.(check int) "handler ran before the kill" 1 !seen;
  Task.clear_signal_handler main

let test_handler_scoping () =
  let _mpk, proc, main = make_env () in
  let outer = ref 0 in
  Task.with_signal_handler main
    (fun si -> incr outer; raise (Recovered si))
    (fun () ->
      (* the inner handler shadows, then the outer is restored *)
      (match catch_signal main (fun () -> ignore (read proc main ~addr:0x7fff_0000)) with
      | Some _ -> ()
      | None -> Alcotest.fail "inner handler should have caught");
      Alcotest.(check int) "outer handler not called while shadowed" 0 !outer;
      match read proc main ~addr:0x7fff_0000 with
      | _ -> Alcotest.fail "unreachable"
      | exception Recovered _ -> ());
  Alcotest.(check int) "outer handler restored" 1 !outer;
  (* scope over: back to the default disposition *)
  match read proc main ~addr:0x7fff_0000 with
  | _ -> Alcotest.fail "expected a fatal fault"
  | exception Signal.Killed _ -> ()

let test_fault_inside_domain () =
  let mpk, proc, main = make_env () in
  let addr = Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw in
  Libmpk.mpk_begin mpk main ~vkey:1 ~prot:Perm.r;
  Alcotest.(check char) "read allowed inside r domain" '\000' (read proc main ~addr);
  (match catch_signal main (fun () -> write proc main ~addr 'x') with
  | None -> Alcotest.fail "write inside an r-only domain should fault"
  | Some si -> (
      match si.Signal.code with
      | Signal.Segv_pkuerr -> ()
      | c -> Alcotest.failf "expected SEGV_PKUERR, got %s" (Signal.code_to_string c)));
  (* the domain survives the handled fault: still readable, end cleanly *)
  Alcotest.(check char) "domain intact after handled fault" '\000' (read proc main ~addr);
  Libmpk.mpk_end mpk main ~vkey:1;
  audit_clean "after handled in-domain fault" mpk

(* --- part 2: per-point exception safety -------------------------------- *)

let test_oom_during_mpk_mmap_rolls_back () =
  let mpk, _proc, main = make_env () in
  Mpk_faultinj.arm "physmem.alloc_frame" (Mpk_faultinj.Once 0);
  (match Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw with
  | _ -> Alcotest.fail "mpk_mmap should fail under frame exhaustion"
  | exception Errno.Error (Errno.ENOMEM, _) -> ());
  Alcotest.(check bool) "no half-created group" true (Libmpk.find_group mpk 1 = None);
  Alcotest.(check int) "group count unchanged" 0 (Libmpk.group_count mpk);
  audit_clean "after injected OOM in mpk_mmap" mpk;
  Mpk_faultinj.reset ();
  let addr = Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw in
  Alcotest.(check bool) "retry succeeds" true (addr > 0);
  audit_clean "after retry" mpk

let test_pkey_alloc_enospc () =
  Mpk_faultinj.reset ();
  let machine = Machine.create ~cores:1 ~mem_mib:16 () in
  let proc = Proc.create machine in
  let main = Proc.spawn proc ~core_id:0 () in
  Mpk_faultinj.arm "syscall.pkey_alloc" (Mpk_faultinj.Once 0);
  (match Syscall.pkey_alloc proc main ~init_rights:Pkru.Read_write with
  | _ -> Alcotest.fail "pkey_alloc should report ENOSPC"
  | exception Errno.Error (Errno.ENOSPC, _) -> ());
  Mpk_faultinj.reset ();
  let k = Syscall.pkey_alloc proc main ~init_rights:Pkru.Read_write in
  Syscall.pkey_free proc main k

let test_key_cache_full_retry_policy () =
  let mpk, _proc, main = make_env () in
  (* injected Full at mmap: the group starts Unmapped (PROT_NONE) *)
  Mpk_faultinj.arm "key_cache.full" (Mpk_faultinj.Once 0);
  let _addr = Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw in
  (match Libmpk.find_group mpk 1 with
  | Some { Libmpk.Group.state = Libmpk.Group.Unmapped; _ } -> ()
  | _ -> Alcotest.fail "group should start keyless under injected Full");
  audit_clean "after keyless mmap" mpk;
  (* Fail_fast (the default): an injected Full raises immediately. *)
  Mpk_faultinj.arm "key_cache.full" (Mpk_faultinj.Every 1);
  (match Libmpk.mpk_begin mpk main ~vkey:1 ~prot:Perm.rw with
  | () -> Alcotest.fail "Fail_fast should raise on exhaustion"
  | exception Libmpk.Key_exhausted -> ());
  audit_clean "after Fail_fast exhaustion" mpk;
  (* Retry: the first attempt hits the injected Full, the second wins. *)
  Mpk_faultinj.arm "key_cache.full" (Mpk_faultinj.Once 0);
  Libmpk.mpk_begin mpk main
    ~policy:(Libmpk.Retry { attempts = 3; backoff_cycles = 50. })
    ~vkey:1 ~prot:Perm.rw;
  (match Libmpk.find_group mpk 1 with
  | Some { Libmpk.Group.state = Libmpk.Group.Mapped _; _ } -> ()
  | _ -> Alcotest.fail "retry should have attached a key");
  Libmpk.mpk_end mpk main ~vkey:1;
  audit_clean "after successful retry" mpk;
  Mpk_faultinj.reset ()

let test_wait_for_key_policy () =
  let mpk, proc, main = make_env ~hw_keys:1 () in
  let a1 = Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw in
  ignore (Libmpk.mpk_mmap mpk main ~vkey:2 ~len:page ~prot:Perm.rw);
  Libmpk.mpk_begin mpk main ~vkey:1 ~prot:Perm.rw;  (* pins the only key *)
  let before = Cpu.cycles (Task.core main) in
  (match
     Libmpk.mpk_begin mpk main
       ~policy:(Libmpk.Wait_for_key { max_wait_cycles = 1000.; poll_cycles = 100. })
       ~vkey:2 ~prot:Perm.rw
   with
  | () -> Alcotest.fail "the only key is pinned: the wait must time out"
  | exception Libmpk.Key_exhausted -> ());
  Alcotest.(check bool) "waiting burned simulated cycles" true
    (Cpu.cycles (Task.core main) -. before >= 1000.);
  audit_clean "after wait timeout" mpk;
  write proc main ~addr:a1 'x';  (* the held domain still works *)
  Libmpk.mpk_end mpk main ~vkey:1;
  (* key released: the same begin now succeeds (evicting group 1) *)
  Libmpk.mpk_begin mpk main
    ~policy:(Libmpk.Wait_for_key { max_wait_cycles = 1000.; poll_cycles = 100. })
    ~vkey:2 ~prot:Perm.rw;
  Libmpk.mpk_end mpk main ~vkey:2;
  audit_clean "after post-release begin" mpk

let test_xonly_reserve_refusal () =
  let mpk, _proc, main = make_env () in
  ignore (Libmpk.mpk_mmap mpk main ~vkey:3 ~len:page ~prot:Perm.rw);
  Mpk_faultinj.arm "key_cache.reserve" (Mpk_faultinj.Once 0);
  (match Libmpk.mpk_mprotect mpk main ~vkey:3 ~prot:Perm.x_only with
  | () -> Alcotest.fail "reserve refusal should surface"
  | exception Libmpk.Key_exhausted -> ());
  audit_clean "after refused execute-only reserve" mpk;
  Alcotest.(check int) "no reserve leaked" 0 (Libmpk.xonly_group_count mpk);
  Mpk_faultinj.reset ();
  Libmpk.mpk_mprotect mpk main ~vkey:3 ~prot:Perm.x_only;
  Alcotest.(check int) "retry reserves" 1 (Libmpk.xonly_group_count mpk);
  audit_clean "after successful execute-only transition" mpk

let test_forced_preemption_consistency () =
  let mpk, proc, main = make_env () in
  let addr = Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw in
  Mpk_faultinj.arm "sched.preempt" (Mpk_faultinj.Every 5);
  for i = 0 to 19 do
    Libmpk.mpk_begin mpk main ~vkey:1 ~prot:Perm.rw;
    write proc main ~addr (Char.chr (Char.code 'a' + (i mod 26)));
    Libmpk.mpk_end mpk main ~vkey:1;
    Libmpk.mpk_mprotect mpk main ~vkey:1 ~prot:(if i mod 2 = 0 then Perm.r else Perm.rw);
    audit_clean (Printf.sprintf "forced preemption, iteration %d" i) mpk
  done;
  (match Mpk_faultinj.stats_of "sched.preempt" with
  | Some s -> Alcotest.(check bool) "preemptions actually fired" true (s.Mpk_faultinj.fired > 0)
  | None -> Alcotest.fail "sched.preempt not registered");
  Mpk_faultinj.reset ()

let () =
  Alcotest.run "signal"
    [
      ( "delivery",
        [
          Alcotest.test_case "SEGV_PKUERR classification" `Quick test_pkuerr_classification;
          Alcotest.test_case "SEGV_ACCERR classification" `Quick test_accerr_classification;
          Alcotest.test_case "SEGV_MAPERR classification" `Quick test_maperr_classification;
          Alcotest.test_case "SIGBUS on frame exhaustion" `Quick test_sigbus_on_frame_exhaustion;
          Alcotest.test_case "default disposition kills" `Quick test_default_disposition_kills;
          Alcotest.test_case "returning handler still kills" `Quick
            test_handler_returning_still_kills;
          Alcotest.test_case "handler install/restore scoping" `Quick test_handler_scoping;
          Alcotest.test_case "fault inside an mpk_begin domain" `Quick test_fault_inside_domain;
        ] );
      ( "exception_safety",
        [
          Alcotest.test_case "OOM during mpk_mmap rolls back" `Quick
            test_oom_during_mpk_mmap_rolls_back;
          Alcotest.test_case "pkey_alloc ENOSPC is typed" `Quick test_pkey_alloc_enospc;
          Alcotest.test_case "key-cache Full: Fail_fast and Retry" `Quick
            test_key_cache_full_retry_policy;
          Alcotest.test_case "Wait_for_key burns cycles then raises" `Quick
            test_wait_for_key_policy;
          Alcotest.test_case "execute-only reserve refusal" `Quick test_xonly_reserve_refusal;
          Alcotest.test_case "forced preemption keeps invariants" `Quick
            test_forced_preemption_consistency;
        ] );
    ]
