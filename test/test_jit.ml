(* Tests for the JIT case study: bytecode compile/execute, code cache
   under every W⊕X strategy, the race-condition attack matrix (paper
   §6.1), and Octane plumbing. *)

open Mpk_hw
open Mpk_kernel
open Mpk_jit

let qtest = QCheck_alcotest.to_alcotest

let make_env () =
  let machine = Machine.create ~cores:2 ~mem_mib:128 () in
  let proc = Proc.create machine in
  let task = Proc.spawn proc ~core_id:0 () in
  proc, task

(* --- Bytecode --- *)

let test_bytecode_simple () =
  let proc, task = make_env () in
  let f = { Bytecode.name = "add"; body = [ Bytecode.Push 2; Bytecode.Push 3; Bytecode.Add; Bytecode.Ret ] } in
  let code = Bytecode.compile f in
  let addr = Syscall.mmap proc task ~len:4096 ~prot:Perm.rwx () in
  Mmu.write_bytes (Proc.mmu proc) (Task.core task) ~addr code;
  Alcotest.(check int) "2+3" 5
    (Bytecode.execute (Proc.mmu proc) (Task.core task) ~addr ~len:(Bytes.length code))

let test_bytecode_ops () =
  let proc, task = make_env () in
  let run body =
    let code = Bytecode.compile { Bytecode.name = "t"; body } in
    let addr = Syscall.mmap proc task ~len:4096 ~prot:Perm.rwx () in
    Mmu.write_bytes (Proc.mmu proc) (Task.core task) ~addr code;
    Bytecode.execute (Proc.mmu proc) (Task.core task) ~addr ~len:(Bytes.length code)
  in
  Alcotest.(check int) "sub" 4 (run [ Bytecode.Push 7; Bytecode.Push 3; Bytecode.Sub; Bytecode.Ret ]);
  Alcotest.(check int) "mul" 21 (run [ Bytecode.Push 7; Bytecode.Push 3; Bytecode.Mul; Bytecode.Ret ]);
  Alcotest.(check int) "dup" 49 (run [ Bytecode.Push 7; Bytecode.Dup; Bytecode.Mul; Bytecode.Ret ]);
  (* after the swap the stack (top first) is [3; 7]; Sub computes 7-3 *)
  Alcotest.(check int) "swap" 4 (run [ Bytecode.Push 3; Bytecode.Push 7; Bytecode.Swap; Bytecode.Sub; Bytecode.Ret ])

let test_bytecode_locals () =
  let proc, task = make_env () in
  let run body =
    let code = Bytecode.compile { Bytecode.name = "t"; body } in
    let addr = Syscall.mmap proc task ~len:4096 ~prot:Perm.rwx () in
    Mmu.write_bytes (Proc.mmu proc) (Task.core task) ~addr code;
    Bytecode.execute (Proc.mmu proc) (Task.core task) ~addr ~len:(Bytes.length code)
  in
  Alcotest.(check int) "store/load" 11
    (run [ Bytecode.Push 11; Bytecode.Store 3; Bytecode.Load 3; Bytecode.Ret ]);
  Alcotest.(check int) "locals start zero" 0 (run [ Bytecode.Load 9; Bytecode.Ret ])

let test_bytecode_loop () =
  let proc, task = make_env () in
  (* sum = 5 iterations adding 2 each -> accumulate with Add only *)
  let f = Bytecode.synth_loop ~seed:1 ~iters:5 ~body_ops:3 in
  let code = Bytecode.compile f in
  let addr = Syscall.mmap proc task ~len:4096 ~prot:Perm.rwx () in
  Mmu.write_bytes (Proc.mmu proc) (Task.core task) ~addr code;
  let simulated =
    Bytecode.execute (Proc.mmu proc) (Task.core task) ~addr ~len:(Bytes.length code)
  in
  Alcotest.(check int) "matches host interpreter" (Bytecode.eval_host code) simulated

let test_bytecode_loop_cost_scales () =
  let proc, task = make_env () in
  let cost iters =
    let f = Bytecode.synth_loop ~seed:2 ~iters ~body_ops:6 in
    let code = Bytecode.compile f in
    let addr = Syscall.mmap proc task ~len:4096 ~prot:Perm.rwx () in
    Mmu.write_bytes (Proc.mmu proc) (Task.core task) ~addr code;
    let core = Task.core task in
    snd
      (Cpu.measure core (fun () ->
           ignore (Bytecode.execute (Proc.mmu proc) core ~addr ~len:(Bytes.length code))))
  in
  Alcotest.(check bool) "100 iters ~10x cost of 10" true (cost 100 > 5.0 *. cost 10)

let test_bytecode_fuel () =
  let proc, task = make_env () in
  (* Jmp 0 with a Push: infinite loop *)
  let code = Bytecode.compile { Bytecode.name = "spin"; body = [ Bytecode.Push 1; Bytecode.Jmp 0 ] } in
  let addr = Syscall.mmap proc task ~len:4096 ~prot:Perm.rwx () in
  Mmu.write_bytes (Proc.mmu proc) (Task.core task) ~addr code;
  match Bytecode.execute ~fuel:1000 (Proc.mmu proc) (Task.core task) ~addr ~len:(Bytes.length code) with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "runaway loop terminated?!"

let loop_matches_host =
  QCheck.Test.make ~name:"synth_loop simulated = host" ~count:50
    QCheck.(pair (int_bound 100) (pair (int_range 1 30) (int_range 1 12)))
    (fun (seed, (iters, body_ops)) ->
      let proc, task = make_env () in
      let code = Bytecode.compile (Bytecode.synth_loop ~seed ~iters ~body_ops) in
      let addr = Syscall.mmap proc task ~len:4096 ~prot:Perm.rwx () in
      Mmu.write_bytes (Proc.mmu proc) (Task.core task) ~addr code;
      Bytecode.execute (Proc.mmu proc) (Task.core task) ~addr ~len:(Bytes.length code)
      = Bytecode.eval_host code)

let test_bytecode_needs_exec () =
  let proc, task = make_env () in
  let code = Bytecode.compile { Bytecode.name = "f"; body = [ Bytecode.Push 1; Bytecode.Ret ] } in
  let addr = Syscall.mmap proc task ~len:4096 ~prot:Perm.rw () in
  Mmu.write_bytes (Proc.mmu proc) (Task.core task) ~addr code;
  match Bytecode.execute (Proc.mmu proc) (Task.core task) ~addr ~len:(Bytes.length code) with
  | exception Signal.Killed { Signal.code = Signal.Segv_accerr; _ } -> ()
  | _ -> Alcotest.fail "executed non-executable memory"

let bytecode_matches_host =
  QCheck.Test.make ~name:"jit result matches host interpreter" ~count:100
    QCheck.(pair (int_bound 1000) (int_range 3 60))
    (fun (seed, ops) ->
      let proc, task = make_env () in
      let strategy = Wx.No_wx in
      let engine = Engine.create Engine.V8 strategy proc task () in
      let name = Engine.compile engine task ~ops ~seed () in
      Engine.run engine task name = Engine.expected engine name)

(* --- Codecache strategies --- *)

let strategies = [ Wx.No_wx; Wx.Mprotect; Wx.Key_per_page; Wx.Key_per_process; Wx.Sdcg ]

let cache_env strategy =
  let proc, task = make_env () in
  let mpk =
    match strategy with
    | Wx.Key_per_page | Wx.Key_per_process -> Some (Libmpk.init ~evict_rate:1.0 proc task)
    | _ -> None
  in
  proc, task, Codecache.create strategy proc task ?mpk ()

let test_emit_and_execute_all_strategies () =
  List.iter
    (fun strategy ->
      let proc, task, cache = cache_env strategy in
      let f = { Bytecode.name = "f"; body = [ Bytecode.Push 6; Bytecode.Push 7; Bytecode.Mul; Bytecode.Ret ] } in
      let entry = Codecache.emit cache task ~name:"f" (Bytecode.compile f) in
      let v =
        Bytecode.execute (Proc.mmu proc) (Task.core task) ~addr:entry.Codecache.addr
          ~len:entry.Codecache.len
      in
      Alcotest.(check int) (Wx.to_string strategy) 42 v)
    strategies

let test_update_all_strategies () =
  List.iter
    (fun strategy ->
      let proc, task, cache = cache_env strategy in
      let mk v = Bytecode.compile { Bytecode.name = "f"; body = [ Bytecode.Push v; Bytecode.Ret ] } in
      let entry = Codecache.emit cache task ~name:"f" (mk 1) in
      Codecache.update cache task entry (mk 2) ();
      let v =
        Bytecode.execute (Proc.mmu proc) (Task.core task) ~addr:entry.Codecache.addr
          ~len:entry.Codecache.len
      in
      Alcotest.(check int) (Wx.to_string strategy) 2 v)
    strategies

let test_cache_not_writable_outside_window () =
  (* For every protecting strategy, a stray write outside the window must
     fault. *)
  List.iter
    (fun strategy ->
      let proc, task, cache = cache_env strategy in
      let entry =
        Codecache.emit cache task ~name:"f"
          (Bytecode.compile { Bytecode.name = "f"; body = [ Bytecode.Push 1; Bytecode.Ret ] })
      in
      match
        Mmu.write_byte (Proc.mmu proc) (Task.core task) ~addr:entry.Codecache.addr 'X'
      with
      | exception Signal.Killed _ -> ()
      | _ -> Alcotest.failf "%s: code writable outside update window" (Wx.to_string strategy))
    [ Wx.Mprotect; Wx.Key_per_page; Wx.Key_per_process; Wx.Sdcg ]

let test_switch_cycles_accumulate () =
  let _, task, cache = cache_env Wx.Mprotect in
  let mk = Bytecode.compile { Bytecode.name = "f"; body = [ Bytecode.Push 1; Bytecode.Ret ] } in
  let entry = Codecache.emit cache task ~name:"f" mk in
  let before = Codecache.perm_switch_cycles cache in
  Codecache.update cache task entry mk ();
  let after = Codecache.perm_switch_cycles cache in
  (* an mprotect pair is ~2 x 1094 cycles *)
  Alcotest.(check bool) "pair cost visible" true (after -. before > 2000.0);
  Codecache.reset_perm_switch_cycles cache;
  Alcotest.(check (float 1e-9)) "reset" 0.0 (Codecache.perm_switch_cycles cache)

let test_libmpk_switch_much_cheaper () =
  let cost strategy =
    let _, task, cache = cache_env strategy in
    let mk = Bytecode.compile { Bytecode.name = "f"; body = [ Bytecode.Push 1; Bytecode.Ret ] } in
    let entry = Codecache.emit cache task ~name:"f" mk in
    Codecache.reset_perm_switch_cycles cache;
    Codecache.update cache task entry mk ();
    Codecache.perm_switch_cycles cache
  in
  let mprotect = cost Wx.Mprotect in
  let libmpk = cost Wx.Key_per_process in
  Alcotest.(check bool)
    (Printf.sprintf "mpk %.0f << mprotect %.0f" libmpk mprotect)
    true
    (libmpk *. 5.0 < mprotect)

let test_key_per_page_distinct_vkeys () =
  let _, task, cache = cache_env Wx.Key_per_page in
  let big = Bytes.make 3000 '\x02' in
  let e1 = Codecache.emit cache task ~name:"f1" big in
  let e2 = Codecache.emit cache task ~name:"f2" big in
  Alcotest.(check bool) "two pages" true (Codecache.pages cache = 2);
  match e1.Codecache.page_vkey, e2.Codecache.page_vkey with
  | Some v1, Some v2 -> Alcotest.(check bool) "distinct vkeys" true (v1 <> v2)
  | _ -> Alcotest.fail "expected vkeys"

let test_key_per_process_single_vkey () =
  let _, task, cache = cache_env Wx.Key_per_process in
  let big = Bytes.make 3000 '\x02' in
  let e1 = Codecache.emit cache task ~name:"f1" big in
  let e2 = Codecache.emit cache task ~name:"f2" big in
  match e1.Codecache.page_vkey, e2.Codecache.page_vkey with
  | Some v1, Some v2 -> Alcotest.(check int) "same vkey" v1 v2
  | _ -> Alcotest.fail "expected vkeys"

(* --- The race attack (paper §6.1 / SDCG) --- *)

let test_attack_matrix () =
  let expect_injected strategy =
    match Attack.run ~strategy () with
    | Attack.Injected v ->
        Alcotest.(check int) (Wx.to_string strategy ^ " marker") Attack.shellcode_marker v
    | Attack.Blocked reason ->
        Alcotest.failf "%s should be vulnerable, got: %s" (Wx.to_string strategy) reason
  in
  let expect_blocked strategy =
    match Attack.run ~strategy () with
    | Attack.Blocked _ -> ()
    | Attack.Injected _ -> Alcotest.failf "%s: shellcode landed" (Wx.to_string strategy)
  in
  (* v8's unprotected cache and the mprotect window are exploitable... *)
  expect_injected Wx.No_wx;
  expect_injected Wx.Mprotect;
  (* ...libmpk's thread-local window and SDCG's process isolation are not. *)
  expect_blocked Wx.Key_per_page;
  expect_blocked Wx.Key_per_process;
  expect_blocked Wx.Sdcg

(* --- Engine / Octane --- *)

let test_engine_patch_preserves_semantics () =
  let proc, task = make_env () in
  let mpk = Libmpk.init ~evict_rate:1.0 proc task in
  let engine = Engine.create Engine.Chakracore Wx.Key_per_process proc task ~mpk () in
  let name = Engine.compile engine task ~ops:20 ~seed:5 () in
  let before = Engine.run engine task name in
  Engine.patch engine task name;
  Alcotest.(check int) "same result after patch" before (Engine.run engine task name)

let test_engine_profiles_switch_ratio () =
  Alcotest.(check bool) "SM batches" true (Engine.switch_ratio Engine.Spidermonkey < 1.0);
  Alcotest.(check (float 1e-9)) "CC every time" 1.0 (Engine.switch_ratio Engine.Chakracore)

let test_octane_program_table () =
  Alcotest.(check int) "17 programs" 17 (List.length Octane.programs);
  let box2d = Octane.find "Box2D" in
  let splay = Octane.find "SplayLatency" in
  Alcotest.(check bool) "Box2D patch-heavy" true (box2d.Octane.patches_per_function > 20);
  Alcotest.(check bool) "SplayLatency page-heavy" true
    (splay.Octane.hot_functions > 15 && splay.Octane.patches_per_function <= 1)

let test_octane_baseline_scores_10000 () =
  let prog = Octane.find "Richards" in
  let run = Octane.run_program Engine.V8 Wx.No_wx prog in
  Alcotest.(check (float 1.0)) "baseline = 10000" 10_000.0 run.Octane.score

let test_octane_protection_costs_something () =
  let prog = Octane.find "Box2D" in
  let reference = Octane.measure Engine.Chakracore Wx.No_wx prog in
  let mprotect = Octane.run_program Engine.Chakracore Wx.Mprotect ~reference prog in
  let libmpk = Octane.run_program Engine.Chakracore Wx.Key_per_process ~reference prog in
  Alcotest.(check bool) "mprotect < baseline" true (mprotect.Octane.score < 10_000.0);
  Alcotest.(check bool)
    (Printf.sprintf "libmpk (%.0f) beats mprotect (%.0f) on Box2D" libmpk.Octane.score
       mprotect.Octane.score)
    true
    (libmpk.Octane.score > mprotect.Octane.score)

(* --- XOM (execute-only modules) --- *)

let xom_env () =
  let machine = Machine.create ~cores:2 ~mem_mib:128 () in
  let proc = Proc.create machine in
  let task = Proc.spawn proc ~core_id:0 () in
  let other = Proc.spawn proc ~core_id:1 () in
  let mpk = Libmpk.init ~evict_rate:1.0 proc task in
  proc, task, other, Xom.create mpk

let sample_code v =
  Bytecode.compile { Bytecode.name = "m"; body = [ Bytecode.Push v; Bytecode.Ret ] }

let test_xom_load_and_execute () =
  let _, task, _, xom = xom_env () in
  let m = Xom.load xom task ~name:"mod1" (sample_code 77) in
  Xom.seal xom task m;
  Alcotest.(check int) "runs sealed" 77 (Xom.execute xom task m)

let test_xom_sealed_unreadable_all_threads () =
  let proc, task, other, xom = xom_env () in
  let m = Xom.load xom task ~name:"mod1" (sample_code 1) in
  Xom.seal xom task m;
  (* execute-only: fetch works for both threads; reads fault for both *)
  Alcotest.(check int) "other thread executes" 1 (Xom.execute xom other m);
  List.iter
    (fun t ->
      match Mmu.read_byte (Proc.mmu proc) (Task.core t) ~addr:m.Xom.base with
      | exception Signal.Killed _ -> ()
      | _ -> Alcotest.fail "sealed module readable (code disclosure!)")
    [ task; other ]

let test_xom_unseal_restores_read () =
  let proc, task, _, xom = xom_env () in
  let m = Xom.load xom task ~name:"mod1" (sample_code 2) in
  Xom.seal xom task m;
  Xom.unseal xom task m;
  ignore (Mmu.read_byte (Proc.mmu proc) (Task.core task) ~addr:m.Xom.base);
  Alcotest.(check int) "still runs" 2 (Xom.execute xom task m)

let test_xom_many_modules_one_key () =
  (* any number of sealed modules share the single reserved key *)
  let _, task, _, xom = xom_env () in
  let mods =
    List.init 20 (fun i -> Xom.load xom task ~name:(Printf.sprintf "m%d" i) (sample_code i))
  in
  List.iter (fun m -> Xom.seal xom task m) mods;
  List.iteri (fun i m -> Alcotest.(check int) m.Xom.name i (Xom.execute xom task m)) mods;
  Alcotest.(check int) "20 modules loaded" 20 (List.length (Xom.modules xom))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "mpk_jit"
    [
      ( "bytecode",
        [
          tc "simple" `Quick test_bytecode_simple;
          tc "ops" `Quick test_bytecode_ops;
          tc "locals" `Quick test_bytecode_locals;
          tc "loop" `Quick test_bytecode_loop;
          tc "loop cost scales" `Quick test_bytecode_loop_cost_scales;
          tc "fuel bounds runaway loops" `Quick test_bytecode_fuel;
          tc "needs exec" `Quick test_bytecode_needs_exec;
          qtest bytecode_matches_host;
          qtest loop_matches_host;
        ] );
      ( "codecache",
        [
          tc "emit+execute (all strategies)" `Quick test_emit_and_execute_all_strategies;
          tc "update (all strategies)" `Quick test_update_all_strategies;
          tc "sealed outside window" `Quick test_cache_not_writable_outside_window;
          tc "switch cycles accumulate" `Quick test_switch_cycles_accumulate;
          tc "libmpk switch cheaper" `Quick test_libmpk_switch_much_cheaper;
          tc "key/page distinct vkeys" `Quick test_key_per_page_distinct_vkeys;
          tc "key/process single vkey" `Quick test_key_per_process_single_vkey;
        ] );
      ("attack", [ tc "race matrix" `Quick test_attack_matrix ]);
      ( "engine_octane",
        [
          tc "patch preserves semantics" `Quick test_engine_patch_preserves_semantics;
          tc "profiles" `Quick test_engine_profiles_switch_ratio;
          tc "program table" `Quick test_octane_program_table;
          tc "baseline scores 10000" `Quick test_octane_baseline_scores_10000;
          tc "protection costs" `Quick test_octane_protection_costs_something;
        ] );
      ( "xom",
        [
          tc "load+execute" `Quick test_xom_load_and_execute;
          tc "sealed unreadable" `Quick test_xom_sealed_unreadable_all_threads;
          tc "unseal restores" `Quick test_xom_unseal_restores_read;
          tc "many modules one key" `Quick test_xom_many_modules_one_key;
        ] );
    ]
