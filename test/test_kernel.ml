(* Tests for mpk_kernel: VMA tree, pkey bitmap (use-after-free semantics),
   tasks/scheduler (lazy task_work), mm (mprotect semantics and cost
   shape), syscalls (Table 1 calibration, execute-only gap, pkey_sync). *)

open Mpk_hw
open Mpk_kernel

let qtest = QCheck_alcotest.to_alcotest

let attrs prot = { Vma.prot; pkey = Pkey.default }

(* --- Vma --- *)

let test_vma_add_find () =
  let t = Vma.create () in
  Vma.add t ~start:10 ~pages:5 (attrs Perm.rw);
  Alcotest.(check bool) "inside" true (Vma.find t 12 <> None);
  Alcotest.(check bool) "before" true (Vma.find t 9 = None);
  Alcotest.(check bool) "at end (exclusive)" true (Vma.find t 15 = None);
  Alcotest.(check int) "count" 1 (Vma.count t)

let test_vma_add_overlap_rejected () =
  let t = Vma.create () in
  Vma.add t ~start:10 ~pages:5 (attrs Perm.rw);
  Alcotest.check_raises "overlap" (Invalid_argument "Vma.add: overlaps an existing area")
    (fun () -> Vma.add t ~start:12 ~pages:2 (attrs Perm.r))

let test_vma_merge_on_add () =
  let t = Vma.create () in
  Vma.add t ~start:10 ~pages:5 (attrs Perm.rw);
  Vma.add t ~start:15 ~pages:5 (attrs Perm.rw);
  Alcotest.(check int) "merged" 1 (Vma.count t);
  Vma.add t ~start:20 ~pages:3 (attrs Perm.r);
  Alcotest.(check int) "different attrs not merged" 2 (Vma.count t);
  Alcotest.(check bool) "invariant" true (Vma.invariant t)

let test_vma_guard_gap_no_merge () =
  let t = Vma.create () in
  Vma.add t ~start:10 ~pages:2 (attrs Perm.rw);
  Vma.add t ~start:13 ~pages:2 (attrs Perm.rw);
  Alcotest.(check int) "gap keeps them apart" 2 (Vma.count t)

let test_vma_set_attrs_splits () =
  let t = Vma.create () in
  Vma.add t ~start:0 ~pages:10 (attrs Perm.rw);
  let touched, splits, _merges =
    Vma.set_attrs t ~start:3 ~pages:4 (fun a -> { a with Vma.prot = Perm.r })
  in
  Alcotest.(check int) "one vma touched" 1 touched;
  Alcotest.(check int) "two splits" 2 splits;
  Alcotest.(check int) "three areas now" 3 (Vma.count t);
  (match Vma.find t 4 with
  | Some v -> Alcotest.(check string) "middle r" "r--" (Perm.to_string v.Vma.attrs.Vma.prot)
  | None -> Alcotest.fail "middle missing");
  Alcotest.(check bool) "invariant" true (Vma.invariant t)

let test_vma_set_attrs_merges_back () =
  let t = Vma.create () in
  Vma.add t ~start:0 ~pages:10 (attrs Perm.rw);
  ignore (Vma.set_attrs t ~start:3 ~pages:4 (fun a -> { a with Vma.prot = Perm.r }));
  ignore (Vma.set_attrs t ~start:3 ~pages:4 (fun a -> { a with Vma.prot = Perm.rw }));
  Alcotest.(check int) "merged back to one" 1 (Vma.count t);
  Alcotest.(check bool) "invariant" true (Vma.invariant t)

let test_vma_set_attrs_uncovered () =
  let t = Vma.create () in
  Vma.add t ~start:0 ~pages:5 (attrs Perm.rw);
  Alcotest.check_raises "hole rejected"
    (Invalid_argument "Vma.set_attrs: range not fully covered") (fun () ->
      ignore (Vma.set_attrs t ~start:3 ~pages:5 Fun.id))

let test_vma_remove_range_splits () =
  let t = Vma.create () in
  Vma.add t ~start:0 ~pages:10 (attrs Perm.rw);
  let removed = Vma.remove_range t ~start:4 ~pages:2 in
  Alcotest.(check int) "one removed piece" 1 (List.length removed);
  Alcotest.(check int) "two remain" 2 (Vma.count t);
  Alcotest.(check bool) "hole" true (Vma.find t 5 = None);
  Alcotest.(check bool) "left intact" true (Vma.find t 3 <> None);
  Alcotest.(check bool) "right intact" true (Vma.find t 6 <> None)

let test_vma_covered () =
  let t = Vma.create () in
  Vma.add t ~start:0 ~pages:5 (attrs Perm.rw);
  Vma.add t ~start:5 ~pages:5 (attrs Perm.r);
  Alcotest.(check bool) "covered across boundary" true (Vma.covered t ~start:3 ~pages:4);
  Alcotest.(check bool) "not covered past end" false (Vma.covered t ~start:8 ~pages:5)

let test_vma_overlapping () =
  let t = Vma.create () in
  Vma.add t ~start:0 ~pages:3 (attrs Perm.rw);
  Vma.add t ~start:5 ~pages:3 (attrs Perm.r);
  Vma.add t ~start:10 ~pages:3 (attrs Perm.rx);
  Alcotest.(check int) "two overlap" 2 (List.length (Vma.overlapping t ~start:2 ~pages:5))

let vma_random_ops =
  QCheck.Test.make ~name:"vma invariant under random ops" ~count:300
    QCheck.(small_list (triple (int_bound 50) (int_range 1 8) (int_bound 2)))
    (fun ops ->
      let t = Vma.create () in
      List.iter
        (fun (start, pages, op) ->
          match op with
          | 0 -> (
              try Vma.add t ~start ~pages (attrs Perm.rw) with Invalid_argument _ -> ())
          | 1 -> ignore (Vma.remove_range t ~start ~pages)
          | _ ->
              if Vma.covered t ~start ~pages then
                ignore (Vma.set_attrs t ~start ~pages (fun a -> { a with Vma.prot = Perm.r })))
        ops;
      Vma.invariant t)

(* --- Pkey_bitmap --- *)

let test_bitmap_alloc_order () =
  let b = Pkey_bitmap.create () in
  (match Pkey_bitmap.alloc b with
  | Some k -> Alcotest.(check int) "first is 1" 1 (Pkey.to_int k)
  | None -> Alcotest.fail "alloc failed");
  match Pkey_bitmap.alloc b with
  | Some k -> Alcotest.(check int) "second is 2" 2 (Pkey.to_int k)
  | None -> Alcotest.fail "alloc failed"

let test_bitmap_exhaustion () =
  let b = Pkey_bitmap.create () in
  for _ = 1 to 15 do
    match Pkey_bitmap.alloc b with
    | Some _ -> ()
    | None -> Alcotest.fail "premature exhaustion"
  done;
  Alcotest.(check bool) "16th fails" true (Pkey_bitmap.alloc b = None);
  Alcotest.(check int) "count" 15 (Pkey_bitmap.allocated_count b)

let test_bitmap_free_reuse () =
  let b = Pkey_bitmap.create () in
  let k1 = Option.get (Pkey_bitmap.alloc b) in
  let _k2 = Option.get (Pkey_bitmap.alloc b) in
  Pkey_bitmap.free b k1;
  Alcotest.(check bool) "freed" false (Pkey_bitmap.is_allocated b k1);
  (* freed key is reused — the root of the use-after-free hazard *)
  let k3 = Option.get (Pkey_bitmap.alloc b) in
  Alcotest.(check int) "reused lowest" (Pkey.to_int k1) (Pkey.to_int k3)

let test_bitmap_free_errors () =
  let b = Pkey_bitmap.create () in
  (try
     Pkey_bitmap.free b Pkey.default;
     Alcotest.fail "key 0 freed"
   with Errno.Error (Errno.EINVAL, _) -> ());
  try
    Pkey_bitmap.free b (Pkey.of_int 5);
    Alcotest.fail "unallocated freed"
  with Errno.Error (Errno.EINVAL, _) -> ()

(* --- Task / Sched --- *)

let make_proc ?(cores = 4) () =
  let machine = Machine.create ~cores ~mem_mib:64 () in
  Proc.create machine

let test_task_pkru_save_restore () =
  let proc = make_proc () in
  let t0 = Proc.spawn proc ~core_id:0 () in
  let core = Task.core t0 in
  Cpu.wrpkru core (Pkru.of_int 0x1234);
  Sched.schedule_out (Proc.sched proc) t0;
  Alcotest.(check int) "saved" 0x1234 (Pkru.to_int (Task.saved_pkru t0));
  Cpu.set_pkru_direct core (Pkru.of_int 0xDEAD);  (* another task's value *)
  Sched.schedule_in (Proc.sched proc) t0;
  Alcotest.(check int) "restored" 0x1234 (Pkru.to_int (Cpu.pkru core))

let test_task_work_runs_on_kick () =
  let proc = make_proc () in
  let t0 = Proc.spawn proc ~core_id:0 () in
  let t1 = Proc.spawn proc ~core_id:1 () in
  let ran = ref false in
  Task.work_add t1 (fun _ -> ran := true);
  Alcotest.(check bool) "not yet" false !ran;
  Sched.kick (Proc.sched proc) ~from:t0 t1;
  Alcotest.(check bool) "ran after kick" true !ran

let test_task_work_lazy_when_off_cpu () =
  let proc = make_proc () in
  let t0 = Proc.spawn proc ~core_id:0 () in
  let t1 = Proc.spawn proc ~core_id:1 () in
  Sched.schedule_out (Proc.sched proc) t1;
  let ran = ref false in
  Task.work_add t1 (fun _ -> ran := true);
  Sched.kick (Proc.sched proc) ~from:t0 t1;
  Alcotest.(check bool) "kick ignored off-cpu" false !ran;
  Sched.schedule_in (Proc.sched proc) t1;
  Alcotest.(check bool) "ran at schedule-in" true !ran

let test_task_pkru_helpers () =
  let proc = make_proc () in
  let t0 = Proc.spawn proc ~core_id:0 () in
  Task.set_pkru t0 (Pkru.of_int 0x42);
  Alcotest.(check int) "on-cpu write hits register" 0x42 (Pkru.to_int (Cpu.pkru (Task.core t0)));
  Sched.schedule_out (Proc.sched proc) t0;
  Task.set_pkru t0 (Pkru.of_int 0x43);
  Alcotest.(check int) "off-cpu write hits task struct" 0x43 (Pkru.to_int (Task.saved_pkru t0))

let test_shootdown_flushes_remote_tlb () =
  let proc = make_proc () in
  let t0 = Proc.spawn proc ~core_id:0 () in
  let t1 = Proc.spawn proc ~core_id:1 () in
  let tlb1 = Cpu.tlb (Task.core t1) in
  Tlb.insert tlb1 ~vpn:42 (Pte.make ~frame:1 ~perm:Perm.rw ~pkey:Pkey.default);
  Sched.shootdown (Proc.sched proc) ~from:t0 t1;
  Alcotest.(check bool) "remote tlb flushed" true (Tlb.lookup tlb1 ~vpn:42 = None)

(* --- IPI accounting regressions ---

   Hand-counted against the cost table: every handshake is charged
   exactly once, on the side that actually does the work. An IPI that is
   never sent (off-CPU target) charges nobody and emits nothing. *)

let cycles_on proc core_id = Cpu.cycles (Machine.core (Proc.machine proc) core_id)

let ipi_counters = Alcotest.(list (triple int int int))

let test_kick_off_cpu_charges_nothing () =
  let proc = make_proc () in
  let t0 = Proc.spawn proc ~core_id:0 () in
  let t1 = Proc.spawn proc ~core_id:1 () in
  Sched.schedule_out (Proc.sched proc) t1;
  Task.work_add t1 (fun _ -> ());
  let c0 = cycles_on proc 0 and c1 = cycles_on proc 1 in
  Sched.kick (Proc.sched proc) ~from:t0 t1;
  Alcotest.(check (float 0.0)) "sender charged nothing" c0 (cycles_on proc 0);
  Alcotest.(check (float 0.0)) "target charged nothing" c1 (cycles_on proc 1);
  Alcotest.(check int) "no IPI recorded" 0 (Sched.ipis_sent (Proc.sched proc))

let test_kick_on_cpu_hand_model () =
  let proc = make_proc () in
  let t0 = Proc.spawn proc ~core_id:0 () in
  let t1 = Proc.spawn proc ~core_id:1 () in
  let costs = Cpu.costs (Task.core t0) in
  Task.work_add t1 (fun _ -> ());
  let c0 = cycles_on proc 0 and c1 = cycles_on proc 1 in
  Sched.kick (Proc.sched proc) ~from:t0 t1;
  Alcotest.(check (float 0.0)) "sender pays one ipi_send"
    (c0 +. costs.Costs.ipi_send) (cycles_on proc 0);
  Alcotest.(check (float 0.0)) "target pays one receive + the work"
    (c1 +. costs.Costs.ipi_receive +. costs.Costs.task_work_run)
    (cycles_on proc 1);
  Alcotest.check ipi_counters "counters" [ (0, 1, 0); (1, 0, 1) ]
    (Sched.ipis_per_core (Proc.sched proc))

let test_kick_batch_one_ipi_per_core () =
  let proc = make_proc () in
  let t0 = Proc.spawn proc ~core_id:0 () in
  let t1 = Proc.spawn proc ~core_id:1 () in
  let t2 = Proc.spawn proc ~core_id:1 () in (* shares t1's core *)
  let t3 = Proc.spawn proc ~core_id:2 () in
  let t4 = Proc.spawn proc ~core_id:3 () in
  Sched.schedule_out (Proc.sched proc) t4;
  List.iter (fun t -> Task.work_add t (fun _ -> ())) [ t1; t2; t3; t4 ];
  let costs = Cpu.costs (Task.core t0) in
  let c0 = cycles_on proc 0 and c1 = cycles_on proc 1 in
  let c2 = cycles_on proc 2 and c3 = cycles_on proc 3 in
  let batch = Sched.kick_batch (Proc.sched proc) ~from:t0 [ t1; t2; t3; t4 ] in
  Alcotest.(check int) "two cores kicked" 2 batch.Sched.cores_kicked;
  Alcotest.(check int) "three tasks reached" 3 batch.Sched.tasks_reached;
  Alcotest.(check (float 0.0)) "sender: one send per distinct core"
    (c0 +. (2.0 *. costs.Costs.ipi_send)) (cycles_on proc 0);
  Alcotest.(check (float 0.0)) "core 1: one receive drains both tasks"
    (c1 +. costs.Costs.ipi_receive +. (2.0 *. costs.Costs.task_work_run))
    (cycles_on proc 1);
  Alcotest.(check (float 0.0)) "core 2: one receive, one work item"
    (c2 +. costs.Costs.ipi_receive +. costs.Costs.task_work_run)
    (cycles_on proc 2);
  Alcotest.(check (float 0.0)) "off-cpu core untouched" c3 (cycles_on proc 3);
  Alcotest.(check int) "sleeper keeps its work parked" 1 (Task.work_pending t4);
  Alcotest.check ipi_counters "one IPI per distinct on-cpu core"
    [ (0, 2, 0); (1, 0, 1); (2, 0, 1) ]
    (Sched.ipis_per_core (Proc.sched proc))

let test_shootdown_lazy_idle_core () =
  let proc = make_proc () in
  let t0 = Proc.spawn proc ~core_id:0 () in
  let t1 = Proc.spawn proc ~core_id:1 () in
  let tlb1 = Cpu.tlb (Task.core t1) in
  Sched.schedule_out (Proc.sched proc) t1;
  Tlb.insert tlb1 ~vpn:42 (Pte.make ~frame:1 ~perm:Perm.rw ~pkey:Pkey.default);
  let costs = Cpu.costs (Task.core t1) in
  let c0 = cycles_on proc 0 and c1 = cycles_on proc 1 in
  Sched.shootdown (Proc.sched proc) ~from:t0 t1;
  Alcotest.(check (float 0.0)) "lazy: sender pays nothing" c0 (cycles_on proc 0);
  Alcotest.(check (float 0.0)) "lazy: target pays nothing yet" c1 (cycles_on proc 1);
  Alcotest.(check int) "no IPI sent" 0 (Sched.ipis_sent (Proc.sched proc));
  Alcotest.(check bool) "idle core's stale entry dropped now" true
    (Tlb.lookup tlb1 ~vpn:42 = None);
  Alcotest.(check bool) "flush still owed" true (Task.tlb_flush_pending t1);
  Sched.schedule_in (Proc.sched proc) t1;
  Alcotest.(check (float 0.0)) "switch-in pays the switch + deferred flush"
    (c1 +. costs.Costs.context_switch +. costs.Costs.tlb_flush_all)
    (cycles_on proc 1);
  Alcotest.(check bool) "debt cleared" false (Task.tlb_flush_pending t1)

let test_shootdown_lazy_busy_core () =
  (* The target's core is running another task: its live translations
     must survive a shootdown aimed at the off-CPU task; the flush lands
     when the shot-down task is next scheduled in. *)
  let proc = make_proc () in
  let t0 = Proc.spawn proc ~core_id:0 () in
  let t1 = Proc.spawn proc ~core_id:1 () in
  Sched.schedule_out (Proc.sched proc) t1;
  let t2 = Proc.spawn proc ~core_id:1 () in (* now holds the core *)
  let tlb1 = Cpu.tlb (Task.core t1) in
  Tlb.insert tlb1 ~vpn:42 (Pte.make ~frame:1 ~perm:Perm.rw ~pkey:Pkey.default);
  Sched.shootdown (Proc.sched proc) ~from:t0 t1;
  Alcotest.(check bool) "busy core keeps its entries" true
    (Tlb.lookup tlb1 ~vpn:42 <> None);
  Alcotest.(check bool) "flush owed at switch-in" true (Task.tlb_flush_pending t1);
  Sched.schedule_out (Proc.sched proc) t2;
  Sched.schedule_in (Proc.sched proc) t1;
  Alcotest.(check bool) "flushed once the task runs" true
    (Tlb.lookup tlb1 ~vpn:42 = None);
  Alcotest.(check bool) "debt cleared" false (Task.tlb_flush_pending t1)

(* --- Mm --- *)

let test_mm_mmap_read_write () =
  let proc = make_proc () in
  let task = Proc.spawn proc ~core_id:0 () in
  let core = Task.core task in
  let addr = Mm.mmap (Proc.mm proc) core ~len:8192 ~prot:Perm.rw () in
  let mmu = Proc.mmu proc in
  Mmu.write_bytes mmu core ~addr (Bytes.of_string "hello");
  Alcotest.(check string) "rw works" "hello"
    (Bytes.to_string (Mmu.read_bytes mmu core ~addr ~len:5));
  (* Demand paging: only the touched page is populated. *)
  Alcotest.(check int) "one page present after touching one" 1
    (Mm.mapped_pages (Proc.mm proc));
  Mmu.write_byte mmu core ~addr:(addr + 4096) 'x';
  Alcotest.(check int) "both present after touching both" 2
    (Mm.mapped_pages (Proc.mm proc))

let test_mm_mmap_zeroed () =
  let proc = make_proc () in
  let task = Proc.spawn proc ~core_id:0 () in
  let core = Task.core task in
  let addr = Mm.mmap (Proc.mm proc) core ~len:4096 ~prot:Perm.rw () in
  Alcotest.(check char) "zeroed" '\000' (Mmu.read_byte (Proc.mmu proc) core ~addr)

let test_mm_munmap () =
  let proc = make_proc () in
  let task = Proc.spawn proc ~core_id:0 () in
  let core = Task.core task in
  let addr = Mm.mmap (Proc.mm proc) core ~len:4096 ~prot:Perm.rw () in
  Mm.munmap (Proc.mm proc) core ~addr ~len:4096;
  (match Mmu.read_byte (Proc.mmu proc) core ~addr with
  | exception Signal.Killed { Signal.code = Signal.Segv_maperr; _ } -> ()
  | _ -> Alcotest.fail "expected not-present fault");
  Alcotest.(check int) "frames released" 0 (Physmem.frames_in_use (Machine.mem (Proc.machine proc)))

let test_mm_sparse_vs_contiguous_vmas () =
  let proc = make_proc () in
  let task = Proc.spawn proc ~core_id:0 () in
  let core = Task.core task in
  let mm = Proc.mm proc in
  let before = Vma.count (Mm.vmas mm) in
  ignore (Mm.mmap mm core ~len:(10 * 4096) ~prot:Perm.rw ());
  Alcotest.(check int) "contiguous = 1 vma" (before + 1) (Vma.count (Mm.vmas mm));
  for _ = 1 to 10 do
    ignore (Mm.mmap mm core ~len:4096 ~prot:Perm.rw ())
  done;
  Alcotest.(check int) "sparse = 10 more vmas" (before + 11) (Vma.count (Mm.vmas mm))

let test_mm_change_protection () =
  let proc = make_proc () in
  let task = Proc.spawn proc ~core_id:0 () in
  let core = Task.core task in
  let mm = Proc.mm proc in
  let addr = Mm.mmap mm core ~len:(4 * 4096) ~prot:Perm.rw () in
  Mm.populate mm core ~addr ~len:(4 * 4096);
  let r = Mm.change_protection mm core ~addr ~len:(4 * 4096) ~prot:Perm.r in
  Alcotest.(check int) "4 ptes" 4 r.Mm.ptes_touched;
  Alcotest.(check int) "1 vma" 1 r.Mm.vmas_touched;
  Alcotest.(check int) "no splits" 0 r.Mm.splits;
  match Mmu.write_byte (Proc.mmu proc) core ~addr 'x' with
  | exception Signal.Killed { Signal.code = Signal.Segv_accerr; _ } -> ()
  | _ -> Alcotest.fail "write should fault after mprotect(r)"

let test_mm_change_protection_partial () =
  let proc = make_proc () in
  let task = Proc.spawn proc ~core_id:0 () in
  let core = Task.core task in
  let mm = Proc.mm proc in
  let addr = Mm.mmap mm core ~len:(8 * 4096) ~prot:Perm.rw () in
  let r = Mm.change_protection mm core ~addr:(addr + 8192) ~len:8192 ~prot:Perm.r in
  Alcotest.(check int) "splits at both edges" 2 r.Mm.splits;
  Alcotest.(check bool) "vma invariant" true (Vma.invariant (Mm.vmas mm))

let test_mm_change_protection_flushes_tlb () =
  let proc = make_proc () in
  let task = Proc.spawn proc ~core_id:0 () in
  let core = Task.core task in
  let mm = Proc.mm proc in
  let addr = Mm.mmap mm core ~len:4096 ~prot:Perm.rw () in
  ignore (Mmu.read_byte (Proc.mmu proc) core ~addr);  (* fill TLB *)
  ignore (Mm.change_protection mm core ~addr ~len:4096 ~prot:Perm.none);
  (* Without the flush the stale TLB entry would still allow the read. *)
  match Mmu.read_byte (Proc.mmu proc) core ~addr with
  | exception Signal.Killed { Signal.code = Signal.Segv_accerr; _ } -> ()
  | _ -> Alcotest.fail "stale TLB entry allowed a revoked access"

let test_mm_unmapped_mprotect_fails () =
  let proc = make_proc () in
  let task = Proc.spawn proc ~core_id:0 () in
  let core = Task.core task in
  match Mm.change_protection (Proc.mm proc) core ~addr:0x999000 ~len:4096 ~prot:Perm.r with
  | exception Errno.Error (Errno.ENOMEM, _) -> ()
  | _ -> Alcotest.fail "expected ENOMEM"

let test_mm_assign_pkey () =
  let proc = make_proc () in
  let task = Proc.spawn proc ~core_id:0 () in
  let core = Task.core task in
  let mm = Proc.mm proc in
  let addr = Mm.mmap mm core ~len:8192 ~prot:Perm.rw () in
  Mm.populate mm core ~addr ~len:8192;
  let k = Pkey.of_int 6 in
  ignore (Mm.assign_pkey mm core ~addr ~len:8192 ~pkey:k);
  let pte = Page_table.get (Mm.page_table mm) ~vpn:(Page_table.vpn_of_addr addr) in
  Alcotest.(check int) "pte tagged" 6 (Pkey.to_int (Pte.pkey pte));
  Alcotest.(check string) "perm kept" "rw-" (Perm.to_string (Pte.perm pte))

(* --- shared memory across processes --- *)

let test_shared_mapping_visibility () =
  let machine = Machine.create ~cores:2 ~mem_mib:64 () in
  let p1 = Proc.create machine in
  let p2 = Proc.create machine in
  let t1 = Proc.spawn p1 ~core_id:0 () in
  let t2 = Proc.spawn p2 ~core_id:1 () in
  let a1 = Mm.mmap (Proc.mm p1) (Task.core t1) ~len:8192 ~prot:Perm.rw () in
  let frames = Mm.frames_of_range (Proc.mm p1) (Task.core t1) ~addr:a1 ~len:8192 in
  let a2 = Mm.mmap_frames (Proc.mm p2) (Task.core t2) ~frames ~prot:Perm.rw () in
  (* a write in p1 is visible in p2 — same physical frames *)
  Mmu.write_bytes (Proc.mmu p1) (Task.core t1) ~addr:a1 (Bytes.of_string "shared!");
  Alcotest.(check string) "cross-process visibility" "shared!"
    (Bytes.to_string (Mmu.read_bytes (Proc.mmu p2) (Task.core t2) ~addr:a2 ~len:7));
  (* and the other direction *)
  Mmu.write_byte (Proc.mmu p2) (Task.core t2) ~addr:a2 'S';
  Alcotest.(check char) "reverse direction" 'S' (Mmu.read_byte (Proc.mmu p1) (Task.core t1) ~addr:a1)

let test_shared_mapping_asymmetric_perms () =
  (* the SDCG pattern: writable in one process, read/execute-only in the
     other *)
  let machine = Machine.create ~cores:2 ~mem_mib:64 () in
  let writer = Proc.create machine in
  let executor = Proc.create machine in
  let tw = Proc.spawn writer ~core_id:0 () in
  let tx = Proc.spawn executor ~core_id:1 () in
  let aw = Mm.mmap (Proc.mm writer) (Task.core tw) ~len:4096 ~prot:Perm.rw () in
  let frames = Mm.frames_of_range (Proc.mm writer) (Task.core tw) ~addr:aw ~len:4096 in
  let ax = Mm.mmap_frames (Proc.mm executor) (Task.core tx) ~frames ~prot:Perm.rx () in
  Mmu.write_byte (Proc.mmu writer) (Task.core tw) ~addr:aw '\x90';
  ignore (Mmu.fetch (Proc.mmu executor) (Task.core tx) ~addr:ax ~len:1);
  match Mmu.write_byte (Proc.mmu executor) (Task.core tx) ~addr:ax 'x' with
  | exception Signal.Killed { Signal.code = Signal.Segv_accerr; _ } -> ()
  | _ -> Alcotest.fail "executor wrote a read-only shared mapping"

let test_shared_frames_refcounted () =
  let machine = Machine.create ~cores:2 ~mem_mib:64 () in
  let p1 = Proc.create machine in
  let p2 = Proc.create machine in
  let t1 = Proc.spawn p1 ~core_id:0 () in
  let t2 = Proc.spawn p2 ~core_id:1 () in
  let mem = Machine.mem machine in
  let a1 = Mm.mmap (Proc.mm p1) (Task.core t1) ~len:4096 ~prot:Perm.rw () in
  let frames = Mm.frames_of_range (Proc.mm p1) (Task.core t1) ~addr:a1 ~len:4096 in
  Alcotest.(check int) "one ref after alloc" 1 (Physmem.refcount mem frames.(0));
  let a2 = Mm.mmap_frames (Proc.mm p2) (Task.core t2) ~frames ~prot:Perm.r () in
  Alcotest.(check int) "two refs when shared" 2 (Physmem.refcount mem frames.(0));
  (* unmapping one side keeps the frame alive for the other *)
  Mm.munmap (Proc.mm p1) (Task.core t1) ~addr:a1 ~len:4096;
  Alcotest.(check int) "one ref left" 1 (Physmem.refcount mem frames.(0));
  Alcotest.(check int) "still in use" 1 (Physmem.frames_in_use mem);
  Mm.munmap (Proc.mm p2) (Task.core t2) ~addr:a2 ~len:4096;
  Alcotest.(check int) "freed at zero" 0 (Physmem.frames_in_use mem)

(* --- Syscall: Table 1 calibration --- *)

let calibrated name expected f =
  Alcotest.test_case name `Quick (fun () ->
      let proc = make_proc () in
      let task = Proc.spawn proc ~core_id:0 () in
      let cycles = f proc task in
      let tolerance = expected *. 0.02 in
      if Float.abs (cycles -. expected) > tolerance then
        Alcotest.failf "%s: got %.1f cycles, want %.1f (±2%%)" name cycles expected)

let measure_task task f = snd (Cpu.measure (Task.core task) f)

let table1_pkey_alloc proc task =
  measure_task task (fun () ->
      ignore (Syscall.pkey_alloc proc task ~init_rights:Pkru.Read_write))

let table1_pkey_free proc task =
  let k = Syscall.pkey_alloc proc task ~init_rights:Pkru.Read_write in
  measure_task task (fun () -> Syscall.pkey_free proc task k)

let table1_mprotect proc task =
  let addr = Syscall.mmap proc task ~len:4096 ~prot:Perm.rw () in
  Mm.populate (Proc.mm proc) (Task.core task) ~addr ~len:4096;
  measure_task task (fun () -> Syscall.mprotect proc task ~addr ~len:4096 ~prot:Perm.r)

let table1_pkey_mprotect proc task =
  let addr = Syscall.mmap proc task ~len:4096 ~prot:Perm.rw () in
  Mm.populate (Proc.mm proc) (Task.core task) ~addr ~len:4096;
  let k = Syscall.pkey_alloc proc task ~init_rights:Pkru.Read_write in
  measure_task task (fun () ->
      Syscall.pkey_mprotect proc task ~addr ~len:4096 ~prot:Perm.rw ~pkey:k)

(* --- Syscall semantics --- *)

let test_pkey_alloc_grants_rights () =
  let proc = make_proc () in
  let task = Proc.spawn proc ~core_id:0 () in
  let k = Syscall.pkey_alloc proc task ~init_rights:Pkru.Read_write in
  Alcotest.(check bool) "caller has rights" true
    (Pkru.rights (Task.pkru task) k = Pkru.Read_write)

let test_pkey_mprotect_gates_access () =
  let proc = make_proc () in
  let task = Proc.spawn proc ~core_id:0 () in
  let core = Task.core task in
  let mmu = Proc.mmu proc in
  let addr = Syscall.mmap proc task ~len:4096 ~prot:Perm.rw () in
  let k = Syscall.pkey_alloc proc task ~init_rights:Pkru.No_access in
  Syscall.pkey_mprotect proc task ~addr ~len:4096 ~prot:Perm.rw ~pkey:k;
  (match Mmu.read_byte mmu core ~addr with
  | exception Signal.Killed { Signal.code = Signal.Segv_pkuerr; _ } -> ()
  | _ -> Alcotest.fail "pkey should deny");
  Cpu.wrpkru core (Pkru.set_rights (Cpu.pkru core) k Pkru.Read_write);
  Mmu.write_byte mmu core ~addr 'y'

let test_pkey_mprotect_rejects_key0 () =
  let proc = make_proc () in
  let task = Proc.spawn proc ~core_id:0 () in
  let addr = Syscall.mmap proc task ~len:4096 ~prot:Perm.rw () in
  match Syscall.pkey_mprotect proc task ~addr ~len:4096 ~prot:Perm.rw ~pkey:Pkey.default with
  | exception Errno.Error (Errno.EINVAL, _) -> ()
  | _ -> Alcotest.fail "key 0 must be rejected"

let test_pkey_mprotect_rejects_unallocated () =
  let proc = make_proc () in
  let task = Proc.spawn proc ~core_id:0 () in
  let addr = Syscall.mmap proc task ~len:4096 ~prot:Perm.rw () in
  match
    Syscall.pkey_mprotect proc task ~addr ~len:4096 ~prot:Perm.rw ~pkey:(Pkey.of_int 9)
  with
  | exception Errno.Error (Errno.EINVAL, _) -> ()
  | _ -> Alcotest.fail "unallocated key must be rejected"

let test_pkey_use_after_free_reproduced () =
  (* The paper §3.1: pkey_free leaves PTEs tagged; a reallocated key
     inherits the old group's pages. *)
  let proc = make_proc () in
  let task = Proc.spawn proc ~core_id:0 () in
  let addr = Syscall.mmap proc task ~len:4096 ~prot:Perm.rw () in
  (* touch the page while it still carries the default key *)
  Mmu.write_byte (Proc.mmu proc) (Task.core task) ~addr 'v';
  let k = Syscall.pkey_alloc proc task ~init_rights:Pkru.No_access in
  Syscall.pkey_mprotect proc task ~addr ~len:4096 ~prot:Perm.rw ~pkey:k;
  Syscall.pkey_free proc task k;
  let pte = Page_table.get (Mm.page_table (Proc.mm proc)) ~vpn:(Page_table.vpn_of_addr addr) in
  Alcotest.(check int) "stale key in PTE" (Pkey.to_int k) (Pkey.to_int (Pte.pkey pte));
  (* Reallocation hands the same key back: the new owner's rights now
     govern the *old* pages too. *)
  let k' = Syscall.pkey_alloc proc task ~init_rights:Pkru.Read_write in
  Alcotest.(check int) "key reused" (Pkey.to_int k) (Pkey.to_int k');
  Mmu.write_byte (Proc.mmu proc) (Task.core task) ~addr 'x'  (* unintended access works *)

let test_exec_only_memory () =
  let proc = make_proc () in
  let task = Proc.spawn proc ~core_id:0 () in
  let core = Task.core task in
  let mmu = Proc.mmu proc in
  let addr = Syscall.mmap proc task ~len:4096 ~prot:Perm.rw () in
  Mmu.write_bytes mmu core ~addr (Bytes.of_string "\x90\x90\xc3");
  Syscall.mprotect proc task ~addr ~len:4096 ~prot:Perm.x_only;
  ignore (Mmu.fetch mmu core ~addr ~len:3);
  match Mmu.read_byte mmu core ~addr with
  | exception Signal.Killed { Signal.code = Signal.Segv_pkuerr; _ } -> ()
  | _ -> Alcotest.fail "exec-only page readable by owner"

let test_exec_only_gap_other_thread () =
  (* §3.3: no inter-thread synchronization — a thread holding stale
     rights for the (recycled) execute-only key can still read. *)
  let proc = make_proc () in
  let t0 = Proc.spawn proc ~core_id:0 () in
  let t1 = Proc.spawn proc ~core_id:1 () in
  (* t1 once allocated the key that will become the exec-only key. *)
  let k = Syscall.pkey_alloc proc t1 ~init_rights:Pkru.Read_write in
  Syscall.pkey_free proc t1 k;
  let addr = Syscall.mmap proc t0 ~len:4096 ~prot:Perm.rw () in
  Mmu.write_bytes (Proc.mmu proc) (Task.core t0) ~addr (Bytes.of_string "secret code");
  Syscall.mprotect proc t0 ~addr ~len:4096 ~prot:Perm.x_only;
  (* Owner cannot read... *)
  (match Mmu.read_byte (Proc.mmu proc) (Task.core t0) ~addr with
  | exception Signal.Killed _ -> ()
  | _ -> Alcotest.fail "owner read should fault");
  (* ...but t1 still can: the gap. *)
  Alcotest.(check char) "other thread reads exec-only memory" 's'
    (Mmu.read_byte (Proc.mmu proc) (Task.core t1) ~addr)

let test_pkey_sync_updates_all_threads () =
  let proc = make_proc () in
  let t0 = Proc.spawn proc ~core_id:0 () in
  let t1 = Proc.spawn proc ~core_id:1 () in
  let t2 = Proc.spawn proc ~core_id:2 () in
  let k = Syscall.pkey_alloc proc t0 ~init_rights:Pkru.Read_write in
  Syscall.pkey_sync proc t0 ~pkey:k Pkru.Read_only;
  Alcotest.(check bool) "t1 synced" true (Pkru.rights (Task.pkru t1) k = Pkru.Read_only);
  Alcotest.(check bool) "t2 synced" true (Pkru.rights (Task.pkru t2) k = Pkru.Read_only)

let test_pkey_sync_lazy_for_descheduled () =
  let proc = make_proc () in
  let t0 = Proc.spawn proc ~core_id:0 () in
  let t1 = Proc.spawn proc ~core_id:1 () in
  Sched.schedule_out (Proc.sched proc) t1;
  let k = Syscall.pkey_alloc proc t0 ~init_rights:Pkru.Read_write in
  Syscall.pkey_sync proc t0 ~pkey:k Pkru.Read_only;
  (* t1 is off-CPU: the update is queued, not applied... *)
  Alcotest.(check int) "work queued" 1 (Task.work_pending t1);
  (* ...and lands before t1 can touch memory again. *)
  Sched.schedule_in (Proc.sched proc) t1;
  Alcotest.(check bool) "applied at schedule-in" true
    (Pkru.rights (Task.pkru t1) k = Pkru.Read_only)

let test_pkey_sync_cost_independent_of_pages () =
  let proc = make_proc () in
  let t0 = Proc.spawn proc ~core_id:0 () in
  let _t1 = Proc.spawn proc ~core_id:1 () in
  let k = Syscall.pkey_alloc proc t0 ~init_rights:Pkru.Read_write in
  let c1 = measure_task t0 (fun () -> Syscall.pkey_sync proc t0 ~pkey:k Pkru.Read_only) in
  let c2 = measure_task t0 (fun () -> Syscall.pkey_sync proc t0 ~pkey:k Pkru.Read_write) in
  Alcotest.(check (float 1e-9)) "constant cost" c1 c2

let test_mprotect_cost_grows_with_pages () =
  let proc = make_proc () in
  let task = Proc.spawn proc ~core_id:0 () in
  let cost ~populate pages =
    let addr = Syscall.mmap proc task ~len:(pages * 4096) ~prot:Perm.rw () in
    if populate then Mm.populate (Proc.mm proc) (Task.core task) ~addr ~len:(pages * 4096);
    measure_task task (fun () ->
        Syscall.mprotect proc task ~addr ~len:(pages * 4096) ~prot:Perm.r)
  in
  let c1 = cost ~populate:true 1 in
  let c100 = cost ~populate:true 100 in
  let c1000 = cost ~populate:true 1000 in
  Alcotest.(check bool) "100 > 1" true (c100 > c1);
  Alcotest.(check bool) "1000 > 100" true (c1000 > c100)

let test_mprotect_untouched_vs_populated () =
  (* The Fig 10 / Fig 14 reconciliation: change_protection pays per
     present PTE, so mprotect over an untouched GB-scale mapping is
     orders cheaper than over a populated one. *)
  let proc = make_proc () in
  let task = Proc.spawn proc ~core_id:0 () in
  let pages = 10_000 in
  let cost ~populate =
    let addr = Syscall.mmap proc task ~len:(pages * 4096) ~prot:Perm.rw () in
    if populate then Mm.populate (Proc.mm proc) (Task.core task) ~addr ~len:(pages * 4096);
    measure_task task (fun () ->
        Syscall.mprotect proc task ~addr ~len:(pages * 4096) ~prot:Perm.r)
  in
  let untouched = cost ~populate:false in
  let populated = cost ~populate:true in
  Alcotest.(check bool)
    (Printf.sprintf "populated (%.0f) >> untouched (%.0f)" populated untouched)
    true
    (populated > 10.0 *. untouched)

let test_demand_paging_fault_cost () =
  let proc = make_proc () in
  let task = Proc.spawn proc ~core_id:0 () in
  let core = Task.core task in
  let addr = Syscall.mmap proc task ~len:4096 ~prot:Perm.rw () in
  let costs = Cpu.costs core in
  let first = measure_task task (fun () -> ignore (Mmu.read_byte (Proc.mmu proc) core ~addr)) in
  let second = measure_task task (fun () -> ignore (Mmu.read_byte (Proc.mmu proc) core ~addr)) in
  Alcotest.(check bool) "first touch pays the page fault" true
    (first >= costs.Costs.page_fault);
  Alcotest.(check bool) "second touch does not" true (second < 10.0)

let test_syscall_counter () =
  Syscall.reset_count ();
  let proc = make_proc () in
  let task = Proc.spawn proc ~core_id:0 () in
  ignore (Syscall.mmap proc task ~len:4096 ~prot:Perm.rw ());
  ignore (Syscall.pkey_alloc proc task ~init_rights:Pkru.No_access);
  Alcotest.(check int) "two syscalls" 2 (Syscall.count ())

(* --- pkey_sync cycle conservation (the double-charge regressions) ---

   The sum of per-core cycle deltas across a sync must equal the
   hand-counted model exactly: kernel entry on the initiator, one
   task_work_add per queued update, and each IPI handshake charged once
   — ipi_send on the sender, ipi_receive on the target, the spin-wait
   (eager only) on the initiator. *)

let sync_env () =
  (* initiator on core 0, an on-CPU sibling on core 1, a descheduled one
     on core 2 *)
  let proc = make_proc () in
  let t0 = Proc.spawn proc ~core_id:0 () in
  let t1 = Proc.spawn proc ~core_id:1 () in
  let t2 = Proc.spawn proc ~core_id:2 () in
  Sched.schedule_out (Proc.sched proc) t2;
  (proc, t0, t1, t2)

let test_eager_pkey_sync_cycle_conservation () =
  let proc, t0, _t1, _t2 = sync_env () in
  let costs = Cpu.costs (Task.core t0) in
  let c0 = cycles_on proc 0 and c1 = cycles_on proc 1 and c2 = cycles_on proc 2 in
  Syscall.pkey_sync proc t0 ~eager:true ~pkey:(Pkey.of_int 1) Pkru.Read_write;
  Alcotest.(check (float 0.0))
    "initiator: entry + 2 queues + 2 sends + 2 spin-waits, nothing twice"
    (c0 +. costs.Costs.kernel_entry_exit
    +. (2.0 *. costs.Costs.task_work_add)
    +. (2.0 *. costs.Costs.ipi_send)
    +. (2.0 *. costs.Costs.ipi_receive))
    (cycles_on proc 0);
  Alcotest.(check (float 0.0)) "on-cpu target: one receive + the work"
    (c1 +. costs.Costs.ipi_receive +. costs.Costs.task_work_run)
    (cycles_on proc 1);
  Alcotest.(check (float 0.0)) "woken target: its own switch + the work, no receive"
    (c2 +. costs.Costs.context_switch +. costs.Costs.task_work_run)
    (cycles_on proc 2)

let test_lazy_pkey_sync_batched_model () =
  let proc, t0, _t1, t2 = sync_env () in
  let costs = Cpu.costs (Task.core t0) in
  let c0 = cycles_on proc 0 and c1 = cycles_on proc 1 and c2 = cycles_on proc 2 in
  Syscall.pkey_sync proc t0 ~pkey:(Pkey.of_int 1) Pkru.Read_write;
  Alcotest.(check (float 0.0)) "initiator: entry + 2 queues + 1 send"
    (c0 +. costs.Costs.kernel_entry_exit
    +. (2.0 *. costs.Costs.task_work_add)
    +. costs.Costs.ipi_send)
    (cycles_on proc 0);
  Alcotest.(check (float 0.0)) "on-cpu core: one receive + the work"
    (c1 +. costs.Costs.ipi_receive +. costs.Costs.task_work_run)
    (cycles_on proc 1);
  Alcotest.(check (float 0.0)) "off-cpu target untouched" c2 (cycles_on proc 2);
  Alcotest.(check int) "work parked for the sleeper" 1 (Task.work_pending t2)

let test_pkey_sync_many_one_ipi_per_core () =
  let proc = make_proc () in
  let t0 = Proc.spawn proc ~core_id:0 () in
  let _t1 = Proc.spawn proc ~core_id:1 () in
  let _t2 = Proc.spawn proc ~core_id:2 () in
  let updates =
    [ (Pkey.of_int 1, Pkru.Read_write); (Pkey.of_int 2, Pkru.No_access) ]
  in
  let costs = Cpu.costs (Task.core t0) in
  let c0 = cycles_on proc 0 and c1 = cycles_on proc 1 and c2 = cycles_on proc 2 in
  Syscall.pkey_sync_many proc t0 ~updates;
  Alcotest.(check (float 0.0)) "initiator: entry + 4 queues, still 1 send per core"
    (c0 +. costs.Costs.kernel_entry_exit
    +. (4.0 *. costs.Costs.task_work_add)
    +. (2.0 *. costs.Costs.ipi_send))
    (cycles_on proc 0);
  let per_target = costs.Costs.ipi_receive +. (2.0 *. costs.Costs.task_work_run) in
  Alcotest.(check (float 0.0)) "core 1: one receive drains both updates"
    (c1 +. per_target) (cycles_on proc 1);
  Alcotest.(check (float 0.0)) "core 2: one receive drains both updates"
    (c2 +. per_target) (cycles_on proc 2);
  Alcotest.check ipi_counters "one IPI per core for the whole batch"
    [ (0, 2, 0); (1, 0, 1); (2, 0, 1) ]
    (Sched.ipis_per_core (Proc.sched proc))

(* --- trace-based sync-batch accounting --- *)

let with_tracer f =
  Mpk_trace.Tracer.enable ();
  Fun.protect
    ~finally:(fun () ->
      Mpk_trace.Tracer.disable ();
      Mpk_trace.Tracer.clear ())
    f

let ipi_targets () =
  List.filter_map
    (fun e ->
      match e.Mpk_trace.Event.ev with
      | Mpk_trace.Event.Ipi { target_core; _ } -> Some target_core
      | _ -> None)
    (Mpk_trace.Tracer.events ())

let count_ev pred =
  List.length
    (List.filter (fun e -> pred e.Mpk_trace.Event.ev) (Mpk_trace.Tracer.events ()))

let deferred_count () =
  count_ev (function Mpk_trace.Event.Pkey_sync_deferred _ -> true | _ -> false)

let executed_count () =
  count_ev (function Mpk_trace.Event.Pkey_sync_executed _ -> true | _ -> false)

let test_trace_one_ipi_per_core_per_batch () =
  (* Four sibling tasks on two cores, two PKRU updates in the batch: the
     trace must show exactly one Ipi per target core — not one per task,
     and not one per update. *)
  let proc = make_proc () in
  let t0 = Proc.spawn proc ~core_id:0 () in
  let _t1 = Proc.spawn proc ~core_id:1 () in
  let _t2 = Proc.spawn proc ~core_id:1 () in
  let _t3 = Proc.spawn proc ~core_id:2 () in
  with_tracer (fun () ->
      let updates =
        [ (Pkey.of_int 1, Pkru.Read_write); (Pkey.of_int 2, Pkru.Read_write) ]
      in
      Syscall.pkey_sync_many proc t0 ~updates;
      Alcotest.(check (list int)) "one Ipi event per target core"
        [ 1; 2 ]
        (List.sort compare (ipi_targets ()));
      Alcotest.(check int) "deferred = 3 targets x 2 updates" 6 (deferred_count ());
      Alcotest.(check int) "every deferred update executed" 6 (executed_count ()))

let test_trace_batching_conserves_sync_counts () =
  (* The same sync executed batched and per-update: identical
     deferred/executed conservation, strictly fewer Ipi events batched. *)
  let run ~batch =
    let proc, t0, _t1, t2 = sync_env () in
    Syscall.set_ipi_batching batch;
    Fun.protect
      ~finally:(fun () -> Syscall.set_ipi_batching true)
      (fun () ->
        with_tracer (fun () ->
            let updates =
              [ (Pkey.of_int 1, Pkru.Read_write); (Pkey.of_int 2, Pkru.No_access) ]
            in
            Syscall.pkey_sync_many proc t0 ~updates;
            Sched.schedule_in (Proc.sched proc) t2;
            (List.length (ipi_targets ()), deferred_count (), executed_count ())))
  in
  let ib, db, eb = run ~batch:true in
  let iu, du, eu = run ~batch:false in
  Alcotest.(check int) "batched: deferred = 2 targets x 2 updates" 4 db;
  Alcotest.(check int) "batched: all executed after the sleeper runs" 4 eb;
  Alcotest.(check int) "per-update: same deferred count" db du;
  Alcotest.(check int) "per-update: same executed count" eb eu;
  Alcotest.(check int) "batched: one Ipi for the on-cpu core" 1 ib;
  Alcotest.(check int) "per-update: one Ipi per update" 2 iu;
  Alcotest.(check bool) "batching emits strictly fewer Ipis" true (ib < iu)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "mpk_kernel"
    [
      ( "vma",
        [
          tc "add/find" `Quick test_vma_add_find;
          tc "overlap rejected" `Quick test_vma_add_overlap_rejected;
          tc "merge on add" `Quick test_vma_merge_on_add;
          tc "guard gap" `Quick test_vma_guard_gap_no_merge;
          tc "set_attrs splits" `Quick test_vma_set_attrs_splits;
          tc "set_attrs merges back" `Quick test_vma_set_attrs_merges_back;
          tc "set_attrs uncovered" `Quick test_vma_set_attrs_uncovered;
          tc "remove_range splits" `Quick test_vma_remove_range_splits;
          tc "covered" `Quick test_vma_covered;
          tc "overlapping" `Quick test_vma_overlapping;
          qtest vma_random_ops;
        ] );
      ( "pkey_bitmap",
        [
          tc "alloc order" `Quick test_bitmap_alloc_order;
          tc "exhaustion" `Quick test_bitmap_exhaustion;
          tc "free/reuse" `Quick test_bitmap_free_reuse;
          tc "free errors" `Quick test_bitmap_free_errors;
        ] );
      ( "task_sched",
        [
          tc "pkru save/restore" `Quick test_task_pkru_save_restore;
          tc "task_work on kick" `Quick test_task_work_runs_on_kick;
          tc "task_work lazy off-cpu" `Quick test_task_work_lazy_when_off_cpu;
          tc "set_pkru placement" `Quick test_task_pkru_helpers;
          tc "shootdown flushes tlb" `Quick test_shootdown_flushes_remote_tlb;
          tc "kick off-cpu is free" `Quick test_kick_off_cpu_charges_nothing;
          tc "kick on-cpu hand model" `Quick test_kick_on_cpu_hand_model;
          tc "kick_batch one IPI per core" `Quick test_kick_batch_one_ipi_per_core;
          tc "lazy shootdown, idle core" `Quick test_shootdown_lazy_idle_core;
          tc "lazy shootdown, busy core" `Quick test_shootdown_lazy_busy_core;
        ] );
      ( "mm",
        [
          tc "mmap rw" `Quick test_mm_mmap_read_write;
          tc "mmap zeroed" `Quick test_mm_mmap_zeroed;
          tc "munmap" `Quick test_mm_munmap;
          tc "sparse vs contiguous" `Quick test_mm_sparse_vs_contiguous_vmas;
          tc "change_protection" `Quick test_mm_change_protection;
          tc "partial split" `Quick test_mm_change_protection_partial;
          tc "tlb flushed" `Quick test_mm_change_protection_flushes_tlb;
          tc "unmapped fails" `Quick test_mm_unmapped_mprotect_fails;
          tc "assign pkey" `Quick test_mm_assign_pkey;
        ] );
      ( "shared_memory",
        [
          tc "cross-process visibility" `Quick test_shared_mapping_visibility;
          tc "asymmetric permissions" `Quick test_shared_mapping_asymmetric_perms;
          tc "refcounted frames" `Quick test_shared_frames_refcounted;
        ] );
      ( "table1_calibration",
        [
          calibrated "pkey_alloc = 186.3" 186.3 table1_pkey_alloc;
          calibrated "pkey_free = 137.2" 137.2 table1_pkey_free;
          calibrated "mprotect = 1094.0" 1094.0 table1_mprotect;
          calibrated "pkey_mprotect = 1104.9" 1104.9 table1_pkey_mprotect;
        ] );
      ( "syscalls",
        [
          tc "pkey_alloc rights" `Quick test_pkey_alloc_grants_rights;
          tc "pkey_mprotect gates" `Quick test_pkey_mprotect_gates_access;
          tc "rejects key 0" `Quick test_pkey_mprotect_rejects_key0;
          tc "rejects unallocated" `Quick test_pkey_mprotect_rejects_unallocated;
          tc "use-after-free reproduced" `Quick test_pkey_use_after_free_reproduced;
          tc "exec-only memory" `Quick test_exec_only_memory;
          tc "exec-only gap" `Quick test_exec_only_gap_other_thread;
          tc "pkey_sync all threads" `Quick test_pkey_sync_updates_all_threads;
          tc "pkey_sync lazy" `Quick test_pkey_sync_lazy_for_descheduled;
          tc "pkey_sync page-independent" `Quick test_pkey_sync_cost_independent_of_pages;
          tc "mprotect grows with pages" `Quick test_mprotect_cost_grows_with_pages;
          tc "untouched vs populated" `Quick test_mprotect_untouched_vs_populated;
          tc "demand paging fault cost" `Quick test_demand_paging_fault_cost;
          tc "syscall counter" `Quick test_syscall_counter;
          tc "eager sync charged once" `Quick test_eager_pkey_sync_cycle_conservation;
          tc "lazy sync batched model" `Quick test_lazy_pkey_sync_batched_model;
          tc "sync_many one IPI per core" `Quick test_pkey_sync_many_one_ipi_per_core;
          tc "trace: Ipi per core per batch" `Quick test_trace_one_ipi_per_core_per_batch;
          tc "trace: batching conserves syncs" `Quick test_trace_batching_conserves_sync_counts;
        ] );
    ]
