(* The observability layer: ring buffer, strict JSON, tracer semantics
   (including the zero-perturbation guarantee), cycle attribution, the
   Perfetto exporter and the metrics registry. *)

open Mpk_trace
open Mpk_hw
open Mpk_kernel

let reset_observability () =
  Tracer.disable ();
  Tracer.clear ();
  Tracer.clear_sinks ();
  Prof.disable ();
  Prof.reset ();
  Metrics.reset ()

(* --- ring buffer --- *)

let test_ring_basic () =
  let r = Ring.create 4 in
  Alcotest.(check int) "capacity" 4 (Ring.capacity r);
  Alcotest.(check int) "empty" 0 (Ring.length r);
  Ring.push r 1;
  Ring.push r 2;
  Alcotest.(check (list int)) "fifo order" [ 1; 2 ] (Ring.to_list r)

let test_ring_wraparound_keeps_newest () =
  let r = Ring.create 3 in
  List.iter (Ring.push r) [ 1; 2; 3; 4; 5; 6; 7 ];
  Alcotest.(check int) "length saturates" 3 (Ring.length r);
  Alcotest.(check int) "pushed counts all" 7 (Ring.pushed r);
  Alcotest.(check (list int)) "newest survive, oldest first" [ 5; 6; 7 ] (Ring.to_list r);
  Alcotest.(check (list int)) "recent 2" [ 6; 7 ] (Ring.recent r 2);
  Alcotest.(check (list int)) "recent beyond length" [ 5; 6; 7 ] (Ring.recent r 10)

(* --- strict JSON --- *)

let test_json_roundtrip () =
  let j =
    Json.Obj
      [
        "s", Json.String "a\"b\\c\n\t\x01";
        "i", Json.Int (-42);
        "f", Json.Float 1.5;
        "big", Json.Float 1e300;
        "null", Json.Null;
        "t", Json.Bool true;
        "l", Json.List [ Json.Int 1; Json.String "x"; Json.Obj [] ];
      ]
  in
  let s = Json.to_string j in
  Alcotest.(check bool) "compact round-trips" true (Json.parse_exn s = j);
  let s2 = Json.to_string ~indent:2 j in
  Alcotest.(check bool) "indented round-trips" true (Json.parse_exn s2 = j)

let test_json_rejects_malformed () =
  let rejects s =
    match Json.parse s with
    | Ok _ -> Alcotest.fail (Printf.sprintf "parser accepted %S" s)
    | Error _ -> ()
  in
  List.iter rejects
    [
      "";
      "{";
      "[1,]";
      "{\"a\":1,}";
      "{\"a\" 1}";
      "[1] trailing";
      "01";
      "1.";
      "+1";
      "nul";
      "\"unterminated";
      "\"bad \\q escape\"";
      "\"raw \x01 control\"";
      "\"lone \\ud800 surrogate\"";
      "{\"a\":}";
      "[,]";
      "nan";
    ];
  (* things the strict parser must still accept *)
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "parser rejected %S: %s" s e))
    [ "0"; "-0.5"; "1e3"; "1.25E-2"; "\"\\ud83d\\ude00\""; "[]"; "{}"; " [ 1 , 2 ] " ]

let test_json_non_finite_rejected () =
  Alcotest.check_raises "nan unprintable"
    (Invalid_argument "Json: non-finite float") (fun () ->
      ignore (Json.to_string (Json.Float Float.nan)))

(* RFC 4648 §10 test vectors. *)
let test_base64_vectors () =
  List.iter
    (fun (plain, enc) ->
      Alcotest.(check string) plain enc (Json.base64_encode (Bytes.of_string plain));
      match Json.base64_decode enc with
      | Ok b -> Alcotest.(check string) enc plain (Bytes.to_string b)
      | Error e -> Alcotest.fail e)
    [
      "", "";
      "f", "Zg==";
      "fo", "Zm8=";
      "foo", "Zm9v";
      "foob", "Zm9vYg==";
      "fooba", "Zm9vYmE=";
      "foobar", "Zm9vYmFy";
    ]

let test_base64_rejects_malformed () =
  List.iter
    (fun s ->
      match Json.base64_decode s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "decoder accepted %S" s)
      | Error _ -> ())
    [
      "Zg";  (* length not a multiple of 4 *)
      "Zg=";
      "Z===";
      "====";
      "Zm=v";  (* '=' before the end *)
      "=m9v";
      "Zm9v=A==";
      "Zm9$";  (* alphabet violation *)
      "Zm 9";
      "Zg==Zg==";  (* data after padding *)
      "Zh==";  (* non-canonical: trailing bits set *)
      "Zm9=";
    ]

let test_base64_fuzz_roundtrip () =
  let p = Mpk_util.Prng.create ~seed:0xB64L in
  for _ = 1 to 500 do
    let len = Mpk_util.Prng.int p 200 in
    let b = Bytes.init len (fun _ -> Char.chr (Mpk_util.Prng.int p 256)) in
    let enc = Json.base64_encode b in
    (match Json.base64_decode enc with
    | Ok b' ->
        if not (Bytes.equal b b') then Alcotest.failf "roundtrip failed for %S" enc
    | Error e -> Alcotest.failf "decode of own encoding failed: %s (%S)" e enc);
    (* the bytes<->Json path used by dump payloads *)
    match Json.bytes_of_json (Json.bytes_to_json b) with
    | Ok b' ->
        if not (Bytes.equal b b') then Alcotest.fail "bytes_to_json roundtrip failed"
    | Error e -> Alcotest.fail e
  done;
  (* corrupting any single character of a valid encoding must never
     silently decode to the original bytes *)
  for _ = 1 to 100 do
    let len = 1 + Mpk_util.Prng.int p 50 in
    let b = Bytes.init len (fun _ -> Char.chr (Mpk_util.Prng.int p 256)) in
    let enc = Json.base64_encode b in
    let i = Mpk_util.Prng.int p (String.length enc) in
    let c = Char.chr (33 + Mpk_util.Prng.int p 90) in
    if c <> enc.[i] then begin
      let enc' = Bytes.of_string enc in
      Bytes.set enc' i c;
      match Json.base64_decode (Bytes.to_string enc') with
      | Ok b' ->
          if Bytes.equal b b' then Alcotest.fail "corrupted encoding decoded identically"
      | Error _ -> ()
    end
  done

let test_bytes_of_json_wrong_node () =
  (match Json.bytes_of_json (Json.Int 3) with
  | Ok _ -> Alcotest.fail "accepted Int node"
  | Error _ -> ());
  match Json.bytes_of_json Json.Null with
  | Ok _ -> Alcotest.fail "accepted Null node"
  | Error _ -> ()

(* --- a small traced workload --- *)

let demo_workload () =
  let machine = Machine.create ~cores:2 ~mem_mib:64 () in
  let proc = Proc.create machine in
  let task = Proc.spawn proc ~core_id:0 () in
  let mpk = Libmpk.init ~evict_rate:1.0 proc task in
  let a = Libmpk.mpk_mmap mpk task ~vkey:1 ~len:8192 ~prot:Perm.rw in
  Libmpk.mpk_begin mpk task ~vkey:1 ~prot:Perm.rw;
  Mmu.write_byte (Proc.mmu proc) (Task.core task) ~addr:a 'x';
  Libmpk.mpk_end mpk task ~vkey:1;
  Libmpk.mpk_mprotect mpk task ~vkey:1 ~prot:Perm.none;
  Cpu.cycles (Task.core task)

let test_tracer_captures_cross_layer_events () =
  reset_observability ();
  Tracer.enable ();
  ignore (demo_workload ());
  let kinds =
    List.sort_uniq compare (List.map (fun (e : Event.t) -> Event.kind e.Event.ev) (Tracer.events ()))
  in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " present") true (List.mem k kinds))
    [
      "wrpkru";
      "syscall_enter";
      "syscall_exit";
      "tlb_miss";
      "tlb_fill";
      "page_fault";
      "context_switch";
      "cache_miss";
      "cache_pin";
      "span_begin";
      "span_end";
      "group_op";
    ];
  reset_observability ()

let test_tracer_disabled_is_cycle_identical () =
  (* The whole point of runtime-off: enabling tracing must not move the
     simulated clock by even one bit. *)
  reset_observability ();
  let off = demo_workload () in
  Tracer.enable ();
  let on_ = demo_workload () in
  Alcotest.(check bool) "events were recorded" true (Tracer.emitted () > 0);
  reset_observability ();
  Alcotest.(check bool) "bit-identical cycles" true (Float.equal off on_)

let test_tracer_profiling_is_cycle_identical () =
  reset_observability ();
  let off = demo_workload () in
  Prof.enable ();
  let on_ = demo_workload () in
  Alcotest.(check bool) "profile non-empty" true (Prof.total_recorded () > 0.0);
  reset_observability ();
  Alcotest.(check bool) "bit-identical cycles" true (Float.equal off on_)

let test_tracer_ring_bounded () =
  reset_observability ();
  Tracer.enable ~capacity:16 ();
  ignore (demo_workload ());
  Alcotest.(check bool) "many events emitted" true (Tracer.emitted () > 16);
  Alcotest.(check bool) "retention bounded by capacity per core" true
    (Tracer.retained () <= 16 * List.length (Tracer.cores ()));
  (* the black box keeps the newest events *)
  let tail = Tracer.recent 4 in
  let all = Tracer.events () in
  let last4 =
    List.filteri (fun i _ -> i >= List.length all - 4) all
  in
  Alcotest.(check bool) "recent = tail of retained" true (tail = last4);
  (* [~capacity] is sticky: restore the default for later tests *)
  Tracer.enable ~capacity:8192 ();
  reset_observability ()

let test_tracer_task_stamping () =
  reset_observability ();
  Tracer.enable ();
  ignore (demo_workload ());
  let stamped =
    List.exists (fun (e : Event.t) -> e.Event.task >= 0) (Tracer.events ())
  in
  Alcotest.(check bool) "events carry task ids" true stamped;
  reset_observability ()

(* --- cycle attribution --- *)

let test_attribution_exact () =
  reset_observability ();
  Prof.enable ();
  Cpu.reset_total_charged ();
  ignore (demo_workload ());
  let attributed = Prof.total_recorded () in
  let charged = Cpu.total_charged () in
  Alcotest.(check bool) "something was charged" true (charged > 0.0);
  Alcotest.(check bool) "attribution is exact (bit-for-bit)" true
    (Float.equal attributed charged);
  (* the tree's leaves sum back to the total (same additions, reordered:
     allow one ulp of slack per node) *)
  let leaf = Prof.leaf_sum () in
  Alcotest.(check bool) "leaves cover the total" true
    (Float.abs (leaf -. attributed) <= 1e-6 *. Float.max 1.0 attributed);
  reset_observability ()

let test_attribution_tree_nests_spans () =
  reset_observability ();
  Prof.enable ();
  ignore (demo_workload ());
  let folded = Prof.folded () in
  Alcotest.(check bool) "folded output non-empty" true (String.length folded > 0);
  (* kernel work attributed under the API span that caused it *)
  let has_nested =
    List.exists
      (fun line ->
        match String.index_opt line ' ' with
        | None -> false
        | Some i ->
            let path = String.sub line 0 i in
            String.length path > String.length "mpk_mmap;sys_"
            && String.sub path 0 9 = "mpk_mmap;")
      (String.split_on_char '\n' folded)
  in
  Alcotest.(check bool) "mpk_mmap;sys_... path present" true has_nested;
  reset_observability ()

let test_unattributed_label () =
  reset_observability ();
  Prof.enable ();
  let machine = Machine.create ~cores:1 ~mem_mib:16 () in
  let core = Machine.core machine 0 in
  Cpu.charge core 10.0;  (* no label, no span *)
  let snap = Prof.snapshot () in
  let has_unattributed =
    List.exists (fun (c : Prof.snapshot) -> c.Prof.label = Prof.unattributed) snap.Prof.children
  in
  Alcotest.(check bool) "unlabeled charge lands in (unattributed)" true has_unattributed;
  reset_observability ()

(* --- Perfetto export --- *)

let test_perfetto_roundtrip_and_monotone () =
  reset_observability ();
  Tracer.enable ();
  ignore (demo_workload ());
  ignore (demo_workload ());  (* second machine restarts its clock at 0 *)
  let events = Tracer.events () in
  let s = Export.perfetto_string events in
  reset_observability ();
  let j = Json.parse_exn s in
  let tes =
    match Option.bind (Json.member "traceEvents" j) Json.to_list with
    | Some l -> l
    | None -> Alcotest.fail "no traceEvents array"
  in
  Alcotest.(check bool) "events present" true (List.length tes > List.length events);
  (* every track's timestamps must be monotone or Perfetto draws garbage *)
  let last_ts : (float * float, float) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun te ->
      let num name = Option.bind (Json.member name te) Json.to_number in
      let str name = Option.bind (Json.member name te) Json.to_string_opt in
      match str "ph" with
      | Some "M" -> ()  (* metadata records carry no ts *)
      | _ -> (
          match num "pid", num "tid", num "ts" with
          | Some pid, Some tid, Some ts ->
              let key = (pid, tid) in
              let prev =
                Option.value ~default:Float.neg_infinity (Hashtbl.find_opt last_ts key)
              in
              if ts < prev then
                Alcotest.fail
                  (Printf.sprintf "track (%g,%g): ts %g after %g" pid tid ts prev);
              Hashtbl.replace last_ts key ts
          | _ -> Alcotest.fail "event missing pid/tid/ts"))
    tes;
  Alcotest.(check bool) "at least one track seen" true (Hashtbl.length last_ts > 0)

let test_perfetto_span_phases_balance () =
  reset_observability ();
  Tracer.enable ();
  ignore (demo_workload ());
  let events = Tracer.events () in
  let s = Export.perfetto_string events in
  reset_observability ();
  let j = Json.parse_exn s in
  let tes = Option.get (Option.bind (Json.member "traceEvents" j) Json.to_list) in
  let count ph =
    List.length
      (List.filter
         (fun te -> Option.bind (Json.member "ph" te) Json.to_string_opt = Some ph)
         tes)
  in
  Alcotest.(check bool) "has B spans" true (count "B" > 0);
  Alcotest.(check int) "B/E balanced" (count "B") (count "E");
  Alcotest.(check bool) "has instants" true (count "i" > 0)

(* --- metrics registry --- *)

let test_metrics_counter_gauge () =
  reset_observability ();
  let c = Metrics.counter ~help:"test counter" "test_total" in
  Metrics.inc c;
  Metrics.inc ~by:4.0 c;
  let g = Metrics.gauge "test_gauge" in
  Metrics.set g 2.5;
  let prom = Metrics.export_prometheus () in
  let has needle =
    let nl = String.length needle and hl = String.length prom in
    let rec go i = i + nl <= hl && (String.sub prom i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "counter line" true (has "test_total 5");
  Alcotest.(check bool) "gauge line" true (has "test_gauge 2.5");
  Alcotest.(check bool) "help line" true (has "# HELP test_total test counter");
  Alcotest.(check bool) "type line" true (has "# TYPE test_total counter");
  reset_observability ()

let test_metrics_histogram_export () =
  reset_observability ();
  let h = Metrics.histogram ~lo:1.0 ~growth:2.0 ~buckets:4 "lat_cycles" in
  List.iter (Metrics.observe h) [ 0.5; 1.5; 3.0; 100.0 ];
  let prom = Metrics.export_prometheus () in
  let has needle =
    let nl = String.length needle and hl = String.length prom in
    let rec go i = i + nl <= hl && (String.sub prom i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "le=1 bucket" true (has "lat_cycles_bucket{le=\"1\"} 1");
  Alcotest.(check bool) "le=+Inf cumulative" true (has "lat_cycles_bucket{le=\"+Inf\"} 4");
  Alcotest.(check bool) "count" true (has "lat_cycles_count 4");
  (* the JSON export is strict-parser clean *)
  let j = Json.to_string (Metrics.export_json ()) in
  Alcotest.(check bool) "json export parses" true
    (match Json.parse j with Ok _ -> true | Error _ -> false);
  reset_observability ()

let test_metrics_event_counters () =
  reset_observability ();
  Tracer.enable ();
  ignore (demo_workload ());
  Tracer.disable ();
  let j = Metrics.export_json () in
  let wrpkru =
    Option.value ~default:[] (Json.to_list j)
    |> List.find_opt (fun m ->
           Option.bind (Json.member "name" m) Json.to_string_opt
           = Some "trace_events_total{kind=\"wrpkru\"}")
  in
  (match Option.bind wrpkru (fun m -> Option.bind (Json.member "value" m) Json.to_number) with
  | Some n -> Alcotest.(check bool) "wrpkru counter positive" true (n > 0.0)
  | None -> Alcotest.fail "no trace_events_total{kind=\"wrpkru\"} counter");
  reset_observability ()

(* --- the stress harness's black box --- *)

let test_stress_failure_carries_blackbox () =
  (* An invariant violation needs a real bug to trigger, so plant a
     synthetic failure record and check the report renders its black
     box. *)
  let failure =
    {
      Mpk_check.Stress.index = 3;
      op = Mpk_check.Stress.Touch { vkey = 1; task = 0 };
      kind = Mpk_check.Stress.Crash "Boom";
      blackbox = [ "#1 fake event"; "#2 fake event" ];
    }
  in
  let report =
    Mpk_check.Stress.report Mpk_check.Stress.default_config ~ops_total:10 failure
      [ Mpk_check.Stress.Touch { vkey = 1; task = 0 } ]
  in
  let has needle =
    let nl = String.length needle and hl = String.length report in
    let rec go i = i + nl <= hl && (String.sub report i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "report names the black box" true (has "black box (last 2");
  Alcotest.(check bool) "report carries the events" true (has "#2 fake event")

let test_stress_run_leaves_tracer_off () =
  reset_observability ();
  let cfg = Mpk_check.Stress.default_config in
  (match Mpk_check.Stress.run cfg (Mpk_check.Stress.gen_ops cfg 50) with
  | Mpk_check.Stress.Passed _ -> ()
  | Mpk_check.Stress.Failed _ -> Alcotest.fail "stress run unexpectedly failed");
  Alcotest.(check bool) "tracer restored to off" false (Tracer.on ());
  Alcotest.(check int) "ring cleared" 0 (Tracer.retained ());
  reset_observability ()

let () =
  Alcotest.run "trace"
    [
      ( "ring",
        [
          Alcotest.test_case "basic" `Quick test_ring_basic;
          Alcotest.test_case "wraparound keeps newest" `Quick test_ring_wraparound_keeps_newest;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects malformed" `Quick test_json_rejects_malformed;
          Alcotest.test_case "non-finite rejected" `Quick test_json_non_finite_rejected;
          Alcotest.test_case "base64 rfc4648 vectors" `Quick test_base64_vectors;
          Alcotest.test_case "base64 rejects malformed" `Quick test_base64_rejects_malformed;
          Alcotest.test_case "base64 fuzz roundtrip" `Quick test_base64_fuzz_roundtrip;
          Alcotest.test_case "bytes_of_json wrong node" `Quick test_bytes_of_json_wrong_node;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "cross-layer events" `Quick test_tracer_captures_cross_layer_events;
          Alcotest.test_case "disabled is cycle-identical" `Quick
            test_tracer_disabled_is_cycle_identical;
          Alcotest.test_case "profiling is cycle-identical" `Quick
            test_tracer_profiling_is_cycle_identical;
          Alcotest.test_case "ring bounded" `Quick test_tracer_ring_bounded;
          Alcotest.test_case "task stamping" `Quick test_tracer_task_stamping;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "exact vs machine counter" `Quick test_attribution_exact;
          Alcotest.test_case "spans nest" `Quick test_attribution_tree_nests_spans;
          Alcotest.test_case "unattributed label" `Quick test_unattributed_label;
        ] );
      ( "perfetto",
        [
          Alcotest.test_case "roundtrip + monotone ts" `Quick
            test_perfetto_roundtrip_and_monotone;
          Alcotest.test_case "span phases balance" `Quick test_perfetto_span_phases_balance;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter + gauge" `Quick test_metrics_counter_gauge;
          Alcotest.test_case "histogram export" `Quick test_metrics_histogram_export;
          Alcotest.test_case "event counters" `Quick test_metrics_event_counters;
        ] );
      ( "blackbox",
        [
          Alcotest.test_case "failure carries blackbox" `Quick
            test_stress_failure_carries_blackbox;
          Alcotest.test_case "stress restores tracer" `Quick test_stress_run_leaves_tracer_off;
        ] );
    ]
