(* Tests for the extension features: eviction policies, restricted
   hardware key counts, eager synchronization, API statistics — plus
   regression tests for subtle behaviours found during development
   (exec-preserving eviction, bulk PTE updates). *)

open Mpk_hw
open Mpk_kernel

let qtest = QCheck_alcotest.to_alcotest

let page = Physmem.page_size

let keys n = List.filteri (fun i _ -> i < n) Pkey.allocatable

let make_env ?(threads = 1) ?policy ?hw_keys () =
  let machine = Machine.create ~cores:(threads + 1) ~mem_mib:256 () in
  let proc = Proc.create machine in
  let main = Proc.spawn proc ~core_id:0 () in
  let others = List.init (threads - 1) (fun i -> Proc.spawn proc ~core_id:(i + 1) ()) in
  let mpk = Libmpk.init ?policy ?hw_keys ~evict_rate:1.0 proc main in
  mpk, proc, main, others

(* --- eviction policies --- *)

let test_fifo_evicts_oldest () =
  let c = Libmpk.Key_cache.create ~policy:Libmpk.Key_cache.Fifo ~keys:(keys 2) () in
  ignore (Libmpk.Key_cache.acquire c 1);
  ignore (Libmpk.Key_cache.acquire c 2);
  ignore (Libmpk.Key_cache.acquire c 1);  (* LRU would now pick 2; FIFO still picks 1 *)
  match Libmpk.Key_cache.acquire c 3 with
  | Libmpk.Key_cache.Evicted (_, victim) -> Alcotest.(check int) "fifo victim" 1 victim
  | _ -> Alcotest.fail "expected eviction"

let test_random_policy_deterministic_per_seed () =
  let run seed =
    let c = Libmpk.Key_cache.create ~policy:Libmpk.Key_cache.Random ~seed ~keys:(keys 3) () in
    for v = 1 to 3 do
      ignore (Libmpk.Key_cache.acquire c v)
    done;
    List.init 10 (fun i ->
        match Libmpk.Key_cache.acquire c (100 + i) with
        | Libmpk.Key_cache.Evicted (_, victim) -> victim
        | _ -> -1)
  in
  Alcotest.(check (list int)) "same seed, same victims" (run 7L) (run 7L);
  Alcotest.(check bool) "different seeds diverge" true (run 7L <> run 8L)

let test_random_policy_respects_pins () =
  let c = Libmpk.Key_cache.create ~policy:Libmpk.Key_cache.Random ~keys:(keys 2) () in
  ignore (Libmpk.Key_cache.acquire c 1);
  ignore (Libmpk.Key_cache.acquire c 2);
  Libmpk.Key_cache.pin c 1;
  for i = 0 to 9 do
    match Libmpk.Key_cache.acquire c (100 + i) with
    | Libmpk.Key_cache.Evicted (_, victim) ->
        if victim = 1 then Alcotest.fail "random policy evicted a pinned mapping"
    | Libmpk.Key_cache.Full -> Alcotest.fail "an unpinned mapping existed"
    | _ -> ()
  done

let test_policy_plumbed_through_init () =
  let mpk, _, _, _ = make_env ~policy:Libmpk.Key_cache.Fifo () in
  Alcotest.(check bool) "policy" true
    (Libmpk.Key_cache.policy (Libmpk.cache mpk) = Libmpk.Key_cache.Fifo)

(* --- restricted hardware key counts --- *)

let test_hw_keys_limits_cache () =
  let mpk, _, _, _ = make_env ~hw_keys:4 () in
  Alcotest.(check int) "capacity 4" 4 (Libmpk.Key_cache.capacity (Libmpk.cache mpk))

let test_hw_keys_still_virtualizes () =
  (* Even with 2 hardware keys, 10 groups work (with more evictions). *)
  let mpk, proc, main, _ = make_env ~hw_keys:2 () in
  let mmu = Proc.mmu proc in
  let core = Task.core main in
  let addrs =
    List.init 10 (fun i ->
        let vkey = i + 1 in
        let addr = Libmpk.mpk_mmap mpk main ~vkey ~len:page ~prot:Perm.rw in
        Libmpk.mpk_begin mpk main ~vkey ~prot:Perm.rw;
        Mmu.write_byte mmu core ~addr (Char.chr (65 + i));
        Libmpk.mpk_end mpk main ~vkey;
        addr)
  in
  List.iteri
    (fun i addr ->
      let vkey = i + 1 in
      Libmpk.mpk_begin mpk main ~vkey ~prot:Perm.r;
      Alcotest.(check char) "data survives" (Char.chr (65 + i)) (Mmu.read_byte mmu core ~addr);
      Libmpk.mpk_end mpk main ~vkey)
    addrs;
  Alcotest.(check bool) "evictions happened" true
    (Libmpk.Key_cache.evictions (Libmpk.cache mpk) > 0)

let test_hw_keys_exhaustion_earlier () =
  let mpk, _, main, _ = make_env ~hw_keys:3 () in
  for v = 1 to 3 do
    ignore (Libmpk.mpk_mmap mpk main ~vkey:v ~len:page ~prot:Perm.rw);
    Libmpk.mpk_begin mpk main ~vkey:v ~prot:Perm.rw
  done;
  ignore (Libmpk.mpk_mmap mpk main ~vkey:4 ~len:page ~prot:Perm.rw);
  match Libmpk.mpk_begin mpk main ~vkey:4 ~prot:Perm.rw with
  | exception Libmpk.Key_exhausted -> ()
  | _ -> Alcotest.fail "expected Key_exhausted with 3 keys pinned"

(* --- eager synchronization --- *)

let test_eager_sync_same_semantics () =
  let machine = Machine.create ~cores:4 ~mem_mib:64 () in
  let proc = Proc.create machine in
  let t0 = Proc.spawn proc ~core_id:0 () in
  let t1 = Proc.spawn proc ~core_id:1 () in
  let k = Syscall.pkey_alloc proc t0 ~init_rights:Pkru.Read_write in
  Syscall.pkey_sync proc t0 ~eager:true ~pkey:k Pkru.Read_only;
  Alcotest.(check bool) "t1 synced" true (Pkru.rights (Task.pkru t1) k = Pkru.Read_only)

let test_eager_sync_costs_more () =
  let cost eager =
    let machine = Machine.create ~cores:8 ~mem_mib:64 () in
    let proc = Proc.create machine in
    let t0 = Proc.spawn proc ~core_id:0 () in
    for i = 1 to 5 do
      ignore (Proc.spawn proc ~core_id:i ())
    done;
    let k = Syscall.pkey_alloc proc t0 ~init_rights:Pkru.Read_write in
    let core = Task.core t0 in
    snd (Cpu.measure core (fun () -> Syscall.pkey_sync proc t0 ~eager ~pkey:k Pkru.Read_only))
  in
  Alcotest.(check bool) "eager slower" true (cost true > 2.0 *. cost false)

let test_eager_sync_wakes_descheduled () =
  let machine = Machine.create ~cores:4 ~mem_mib:64 () in
  let proc = Proc.create machine in
  let t0 = Proc.spawn proc ~core_id:0 () in
  let t1 = Proc.spawn proc ~core_id:1 () in
  Sched.schedule_out (Proc.sched proc) t1;
  let k = Syscall.pkey_alloc proc t0 ~init_rights:Pkru.Read_write in
  Syscall.pkey_sync proc t0 ~eager:true ~pkey:k Pkru.Read_only;
  (* eager semantics: applied immediately, no pending work *)
  Alcotest.(check int) "no pending work" 0 (Task.work_pending t1);
  Alcotest.(check bool) "applied" true (Pkru.rights (Task.pkru t1) k = Pkru.Read_only)

(* --- API statistics --- *)

let test_stats_counters () =
  let mpk, proc, main, _ = make_env () in
  ignore proc;
  ignore (Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw);
  Libmpk.mpk_begin mpk main ~vkey:1 ~prot:Perm.rw;
  Libmpk.mpk_end mpk main ~vkey:1;
  Libmpk.mpk_mprotect mpk main ~vkey:1 ~prot:Perm.r;
  Libmpk.mpk_mprotect mpk main ~vkey:1 ~prot:Perm.rw;
  let a = Libmpk.mpk_malloc mpk main ~vkey:2 ~size:64 in
  Libmpk.mpk_free mpk main ~vkey:2 ~addr:a;
  Libmpk.mpk_munmap mpk main ~vkey:1;
  let s = Libmpk.stats mpk in
  Alcotest.(check int) "mmap (1 direct + 1 via malloc)" 2 s.Libmpk.mmap_calls;
  Alcotest.(check int) "munmap" 1 s.Libmpk.munmap_calls;
  Alcotest.(check int) "begin" 1 s.Libmpk.begin_calls;
  Alcotest.(check int) "end" 1 s.Libmpk.end_calls;
  Alcotest.(check int) "mprotect" 2 s.Libmpk.mprotect_calls;
  Alcotest.(check int) "malloc" 1 s.Libmpk.malloc_calls;
  Alcotest.(check int) "free" 1 s.Libmpk.free_calls

let test_stats_cache_mirror () =
  let mpk, _, main, _ = make_env () in
  ignore (Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw);
  Libmpk.mpk_mprotect mpk main ~vkey:1 ~prot:Perm.r;
  Libmpk.mpk_mprotect mpk main ~vkey:1 ~prot:Perm.rw;
  let s = Libmpk.stats mpk in
  Alcotest.(check int) "hits mirrored" (Libmpk.Key_cache.hits (Libmpk.cache mpk))
    s.Libmpk.cache_hits

let test_pp_stats () =
  let mpk, _, main, _ = make_env () in
  ignore (Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw);
  let s = Format.asprintf "%a" Libmpk.pp_stats (Libmpk.stats mpk) in
  Alcotest.(check bool) "prints something" true (String.length s > 20)

(* --- regressions --- *)

let test_eviction_preserves_exec_bit () =
  (* Regression: an evicted rwx (code) group must stay executable —
     PKRU never gated fetch, and revoking exec broke the JIT with >15
     pages. *)
  let mpk, proc, main, _ = make_env () in
  let mmu = Proc.mmu proc in
  let core = Task.core main in
  let code_addr = Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rwx in
  Libmpk.mpk_begin mpk main ~vkey:1 ~prot:Perm.rw;
  Mmu.write_bytes mmu core ~addr:code_addr (Bytes.of_string "\x90");
  Libmpk.mpk_end mpk main ~vkey:1;
  (* force vkey 1's key to be recycled *)
  for v = 2 to 16 do
    ignore (Libmpk.mpk_mmap mpk main ~vkey:v ~len:page ~prot:Perm.rw);
    Libmpk.mpk_begin mpk main ~vkey:v ~prot:Perm.rw;
    Libmpk.mpk_end mpk main ~vkey:v
  done;
  (match Libmpk.find_group mpk 1 with
  | Some g -> Alcotest.(check bool) "group 1 evicted" true (g.Libmpk.Group.state = Libmpk.Group.Unmapped)
  | None -> Alcotest.fail "group 1 missing");
  (* fetch still works; data access still blocked *)
  ignore (Mmu.fetch mmu core ~addr:code_addr ~len:1);
  match Mmu.read_byte mmu core ~addr:code_addr with
  | exception Signal.Killed _ -> ()
  | _ -> Alcotest.fail "evicted code group readable"

let update_range_matches_per_page =
  QCheck.Test.make ~name:"update_range = per-page update" ~count:200
    QCheck.(triple (int_bound 2000) (int_range 1 600) (small_list (int_bound 2600)))
    (fun (start, pages, mapped) ->
      let mk () =
        let pt = Page_table.create () in
        List.iter
          (fun vpn ->
            Page_table.set pt ~vpn (Pte.make ~frame:(vpn land 0xFF) ~perm:Perm.rw ~pkey:Pkey.default))
          mapped;
        pt
      in
      let a = mk () and b = mk () in
      let f pte = Pte.with_perm pte Perm.r in
      let na = Page_table.update_range a ~vpn:start ~pages f in
      let nb = ref 0 in
      for vpn = start to start + pages - 1 do
        if Page_table.update b ~vpn f then incr nb
      done;
      na = !nb
      && List.for_all
           (fun vpn ->
             Pte.to_int64 (Page_table.get a ~vpn) = Pte.to_int64 (Page_table.get b ~vpn))
           mapped)

let test_update_range_counts_present_only () =
  let pt = Page_table.create () in
  Page_table.set pt ~vpn:100 (Pte.make ~frame:1 ~perm:Perm.rw ~pkey:Pkey.default);
  Page_table.set pt ~vpn:102 (Pte.make ~frame:2 ~perm:Perm.rw ~pkey:Pkey.default);
  let n = Page_table.update_range pt ~vpn:95 ~pages:20 (fun pte -> Pte.with_perm pte Perm.r) in
  Alcotest.(check int) "two present" 2 n

let test_update_range_leaf_boundaries () =
  (* exercise ranges crossing 512-entry leaf boundaries *)
  let pt = Page_table.create () in
  List.iter
    (fun vpn -> Page_table.set pt ~vpn (Pte.make ~frame:7 ~perm:Perm.rw ~pkey:Pkey.default))
    [ 510; 511; 512; 513; 1023; 1024 ];
  let n = Page_table.update_range pt ~vpn:511 ~pages:514 (fun pte -> Pte.with_perm pte Perm.r) in
  (* 511, 512, 513, 1023, 1024 are inside [511, 1025) *)
  Alcotest.(check int) "five rewritten" 5 n;
  Alcotest.(check string) "outside untouched" "rw-"
    (Perm.to_string (Pte.perm (Page_table.get pt ~vpn:510)))

let test_mpk_begin_nested () =
  let mpk, proc, main, _ = make_env () in
  let mmu = Proc.mmu proc in
  let core = Task.core main in
  let addr = Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw in
  Libmpk.mpk_begin mpk main ~vkey:1 ~prot:Perm.rw;
  Libmpk.mpk_begin mpk main ~vkey:1 ~prot:Perm.rw;
  Libmpk.mpk_end mpk main ~vkey:1;
  (* one level still open: access allowed, key pinned *)
  Mmu.write_byte mmu core ~addr 'x';
  Alcotest.(check bool) "still pinned" true (Libmpk.Key_cache.pinned (Libmpk.cache mpk) 1);
  Libmpk.mpk_end mpk main ~vkey:1;
  match Mmu.read_byte mmu core ~addr with
  | exception Signal.Killed _ -> ()
  | _ -> Alcotest.fail "accessible after final end"

let test_xonly_munmap_releases_reserve () =
  let mpk, _, main, _ = make_env () in
  ignore (Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw);
  Libmpk.mpk_mprotect mpk main ~vkey:1 ~prot:Perm.x_only;
  Alcotest.(check bool) "reserved" true (Libmpk.xonly_key mpk <> None);
  Libmpk.mpk_munmap mpk main ~vkey:1;
  Alcotest.(check bool) "released on munmap" true (Libmpk.xonly_key mpk = None);
  Alcotest.(check int) "capacity restored" 15 (Libmpk.Key_cache.capacity (Libmpk.cache mpk))

let test_begin_concurrent_threads_independent_rights () =
  (* two threads hold the same domain open; each thread's rights drop at
     its own mpk_end, not at the other's *)
  let mpk, proc, main, others = make_env ~threads:2 () in
  let other = List.hd others in
  let mmu = Proc.mmu proc in
  let addr = Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw in
  Libmpk.mpk_begin mpk main ~vkey:1 ~prot:Perm.rw;
  Libmpk.mpk_begin mpk other ~vkey:1 ~prot:Perm.r;
  Mmu.write_byte mmu (Task.core main) ~addr 'a';
  ignore (Mmu.read_byte mmu (Task.core other) ~addr);
  (* main closes its domain: main loses access, other keeps its own *)
  Libmpk.mpk_end mpk main ~vkey:1;
  (match Mmu.read_byte mmu (Task.core main) ~addr with
  | exception Signal.Killed _ -> ()
  | _ -> Alcotest.fail "main kept access after its own end");
  ignore (Mmu.read_byte mmu (Task.core other) ~addr);
  Libmpk.mpk_end mpk other ~vkey:1;
  match Mmu.read_byte mmu (Task.core other) ~addr with
  | exception Signal.Killed _ -> ()
  | _ -> Alcotest.fail "other kept access after its end"

let test_end_by_non_holder_rejected () =
  let mpk, _, main, others = make_env ~threads:2 () in
  let other = List.hd others in
  ignore (Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw);
  Libmpk.mpk_begin mpk main ~vkey:1 ~prot:Perm.rw;
  (match Libmpk.mpk_end mpk other ~vkey:1 with
  | exception Errno.Error (Errno.EINVAL, _) -> ()
  | _ -> Alcotest.fail "a thread outside the domain closed it");
  Libmpk.mpk_end mpk main ~vkey:1

let test_munmap_scrubs_recycled_key_rights () =
  (* Found by the model fuzzer: munmapping a *globally unlocked* group
     returned its hardware key to the pool while every thread still held
     read/write rights for it — the next mpk_mmap handed those rights to
     a brand-new group. *)
  let mpk, proc, main, others = make_env ~threads:2 ~hw_keys:1 () in
  let other = List.hd others in
  let mmu = Proc.mmu proc in
  ignore (Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw);
  Libmpk.mpk_mprotect mpk main ~vkey:1 ~prot:Perm.rw;  (* rights synced to everyone *)
  Libmpk.mpk_munmap mpk main ~vkey:1;
  (* the single hardware key is recycled for the new secret group *)
  let secret = Libmpk.mpk_mmap mpk main ~vkey:2 ~len:page ~prot:Perm.rw in
  List.iter
    (fun task ->
      match Mmu.read_byte mmu (Task.core task) ~addr:secret with
      | exception Signal.Killed _ -> ()
      | _ -> Alcotest.failf "thread %d inherited rights through a recycled key" (Task.id task))
    [ main; other ]

let test_begin_after_eviction_restores_prot () =
  (* an evicted domain group returns with its original page protection *)
  let mpk, proc, main, _ = make_env ~hw_keys:1 () in
  let mmu = Proc.mmu proc in
  let core = Task.core main in
  let a1 = Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw in
  Libmpk.mpk_begin mpk main ~vkey:1 ~prot:Perm.rw;
  Mmu.write_byte mmu core ~addr:a1 'v';
  Libmpk.mpk_end mpk main ~vkey:1;
  (* group 2 steals the single key *)
  ignore (Libmpk.mpk_mmap mpk main ~vkey:2 ~len:page ~prot:Perm.rw);
  Libmpk.mpk_begin mpk main ~vkey:2 ~prot:Perm.rw;
  Libmpk.mpk_end mpk main ~vkey:2;
  (* group 1 evicted: not even begin-readable until re-attached *)
  Libmpk.mpk_begin mpk main ~vkey:1 ~prot:Perm.rw;
  Alcotest.(check char) "data intact after round trip" 'v' (Mmu.read_byte mmu core ~addr:a1);
  Mmu.write_byte mmu core ~addr:a1 'w';
  Libmpk.mpk_end mpk main ~vkey:1

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "extensions"
    [
      ( "policies",
        [
          tc "fifo evicts oldest" `Quick test_fifo_evicts_oldest;
          tc "random deterministic per seed" `Quick test_random_policy_deterministic_per_seed;
          tc "random respects pins" `Quick test_random_policy_respects_pins;
          tc "policy via init" `Quick test_policy_plumbed_through_init;
        ] );
      ( "hw_keys",
        [
          tc "limits cache" `Quick test_hw_keys_limits_cache;
          tc "still virtualizes" `Quick test_hw_keys_still_virtualizes;
          tc "earlier exhaustion" `Quick test_hw_keys_exhaustion_earlier;
        ] );
      ( "eager_sync",
        [
          tc "same semantics" `Quick test_eager_sync_same_semantics;
          tc "costs more" `Quick test_eager_sync_costs_more;
          tc "wakes descheduled" `Quick test_eager_sync_wakes_descheduled;
        ] );
      ( "stats",
        [
          tc "counters" `Quick test_stats_counters;
          tc "cache mirror" `Quick test_stats_cache_mirror;
          tc "pp" `Quick test_pp_stats;
        ] );
      ( "regressions",
        [
          tc "eviction preserves exec" `Quick test_eviction_preserves_exec_bit;
          qtest update_range_matches_per_page;
          tc "update_range present only" `Quick test_update_range_counts_present_only;
          tc "update_range leaf boundaries" `Quick test_update_range_leaf_boundaries;
          tc "nested begin" `Quick test_mpk_begin_nested;
          tc "concurrent begins independent" `Quick test_begin_concurrent_threads_independent_rights;
          tc "end by non-holder rejected" `Quick test_end_by_non_holder_rejected;
          tc "xonly munmap releases reserve" `Quick test_xonly_munmap_releases_reserve;
          tc "eviction round trip" `Quick test_begin_after_eviction_restores_prot;
          tc "munmap scrubs recycled key" `Quick test_munmap_scrubs_recycled_key_rights;
        ] );
    ]
