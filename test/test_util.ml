(* Tests for mpk_util: PRNG determinism and distribution, statistics,
   table rendering. *)

open Mpk_util

let check_float = Alcotest.(check (float 1e-9))

(* --- Prng --- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:42L in
  let b = Prng.create ~seed:42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next a) (Prng.next b)
  done

let test_prng_seed_matters () =
  let a = Prng.create ~seed:1L in
  let b = Prng.create ~seed:2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next a = Prng.next b then incr same
  done;
  Alcotest.(check bool) "different streams" true (!same < 4)

let test_prng_int_bounds () =
  let p = Prng.create ~seed:7L in
  for _ = 1 to 10_000 do
    let v = Prng.int p 17 in
    Alcotest.(check bool) "in bounds" true (v >= 0 && v < 17)
  done

let test_prng_float_bounds () =
  let p = Prng.create ~seed:8L in
  for _ = 1 to 10_000 do
    let v = Prng.float p in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_prng_float_mean () =
  let p = Prng.create ~seed:9L in
  let s = Stats.create () in
  for _ = 1 to 50_000 do
    Stats.add s (Prng.float p)
  done;
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (Stats.mean s -. 0.5) < 0.01)

let test_prng_bool_extremes () =
  let p = Prng.create ~seed:10L in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always true" true (Prng.bool p ~p:1.0);
    Alcotest.(check bool) "p=0 always false" false (Prng.bool p ~p:0.0)
  done

let test_prng_bool_rate () =
  let p = Prng.create ~seed:11L in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Prng.bool p ~p:0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "rate near 0.3" true (Float.abs (rate -. 0.3) < 0.01)

let test_prng_copy_independent () =
  let a = Prng.create ~seed:5L in
  ignore (Prng.next a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.next a) (Prng.next b)

let test_prng_split_diverges () =
  let a = Prng.create ~seed:5L in
  let b = Prng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next a = Prng.next b then incr same
  done;
  Alcotest.(check bool) "split stream diverges" true (!same < 4)

let test_prng_shuffle_permutation () =
  let p = Prng.create ~seed:12L in
  let a = Array.init 100 (fun i -> i) in
  Prng.shuffle p a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 100 (fun i -> i)) sorted

(* --- Stats --- *)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count s);
  check_float "mean" 0.0 (Stats.mean s);
  check_float "stddev" 0.0 (Stats.stddev s)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_float "mean" 5.0 (Stats.mean s);
  Alcotest.(check bool) "stddev (sample)" true (Float.abs (Stats.stddev s -. 2.13809) < 1e-4);
  check_float "min" 2.0 (Stats.minimum s);
  check_float "max" 9.0 (Stats.maximum s);
  check_float "total" 40.0 (Stats.total s)

let test_stats_single () =
  let s = Stats.create () in
  Stats.add s 3.5;
  check_float "mean" 3.5 (Stats.mean s);
  check_float "stddev of one" 0.0 (Stats.stddev s)

let test_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "p0" 1.0 (Stats.percentile xs 0.0);
  check_float "p50" 3.0 (Stats.percentile xs 50.0);
  check_float "p100" 5.0 (Stats.percentile xs 100.0);
  check_float "p25" 2.0 (Stats.percentile xs 25.0);
  check_float "interpolated" 4.6 (Stats.percentile xs 90.0)

let test_percentile_unsorted () =
  let xs = [| 5.0; 1.0; 3.0; 2.0; 4.0 |] in
  check_float "p50 of unsorted" 3.0 (Stats.percentile xs 50.0)

let test_percentile_empty () =
  Alcotest.check_raises "empty raises" (Invalid_argument "Stats.percentile: empty array")
    (fun () -> ignore (Stats.percentile [||] 50.0))

let test_mean_of () =
  check_float "mean_of" 2.0 (Stats.mean_of [| 1.0; 2.0; 3.0 |]);
  check_float "stddev_of" 1.0 (Stats.stddev_of [| 1.0; 2.0; 3.0 |])

(* --- Stats.Histogram --- *)

let test_hist_buckets () =
  let h = Stats.Histogram.create ~lo:1.0 ~growth:2.0 ~buckets:4 () in
  (* bounds: 1 2 4 8, plus overflow *)
  List.iter (Stats.Histogram.add h) [ 0.5; 1.0; 1.5; 3.0; 8.0; 100.0 ];
  let bs = Stats.Histogram.buckets h in
  Alcotest.(check int) "bucket count incl overflow" 5 (Array.length bs);
  let counts = Array.map snd bs in
  Alcotest.(check (array int)) "per-bucket counts" [| 2; 1; 1; 1; 1 |] counts;
  check_float "first bound" 1.0 (fst bs.(0));
  check_float "last bound is +inf" infinity (fst bs.(4));
  Alcotest.(check int) "count" 6 (Stats.Histogram.count h);
  check_float "total" 114.0 (Stats.Histogram.total h);
  check_float "min exact" 0.5 (Stats.Histogram.minimum h);
  check_float "max exact" 100.0 (Stats.Histogram.maximum h)

let test_hist_nan_rejected () =
  let h = Stats.Histogram.create () in
  Alcotest.check_raises "NaN raises" (Invalid_argument "Stats.Histogram.add: NaN sample")
    (fun () -> Stats.Histogram.add h Float.nan)

let test_hist_percentiles () =
  let h = Stats.Histogram.create ~lo:1.0 ~growth:2.0 ~buckets:12 () in
  for i = 1 to 1000 do
    Stats.Histogram.add h (float_of_int i)
  done;
  (* Bucketed percentiles are approximate; the error is bounded by one
     bucket width, i.e. a factor of growth=2. *)
  let within name expected v =
    Alcotest.(check bool)
      (Printf.sprintf "%s: %g within 2x of %g" name v expected)
      true
      (v >= expected /. 2.0 && v <= expected *. 2.0)
  in
  within "p50" 500.0 (Stats.Histogram.p50 h);
  within "p95" 950.0 (Stats.Histogram.p95 h);
  within "p99" 990.0 (Stats.Histogram.p99 h);
  let p100 = Stats.Histogram.percentile h 100.0 in
  Alcotest.(check bool) "p100 clamped to max" true (p100 <= 1000.0)

let test_hist_percentile_empty () =
  let h = Stats.Histogram.create () in
  Alcotest.check_raises "empty raises"
    (Invalid_argument "Stats.Histogram.percentile: empty histogram")
    (fun () -> ignore (Stats.Histogram.p50 h))

let test_hist_merge () =
  let a = Stats.Histogram.create ~lo:1.0 ~growth:2.0 ~buckets:8 () in
  let b = Stats.Histogram.create ~lo:1.0 ~growth:2.0 ~buckets:8 () in
  List.iter (Stats.Histogram.add a) [ 1.0; 4.0 ];
  List.iter (Stats.Histogram.add b) [ 2.0; 300.0 ];
  Stats.Histogram.merge_into ~into:a b;
  Alcotest.(check int) "merged count" 4 (Stats.Histogram.count a);
  check_float "merged total" 307.0 (Stats.Histogram.total a);
  check_float "merged min" 1.0 (Stats.Histogram.minimum a);
  check_float "merged max" 300.0 (Stats.Histogram.maximum a);
  let c = Stats.Histogram.create ~lo:1.0 ~growth:4.0 ~buckets:8 () in
  Alcotest.check_raises "shape mismatch raises"
    (Invalid_argument "Stats.Histogram.merge_into: bucket layouts differ")
    (fun () -> Stats.Histogram.merge_into ~into:a c)

(* --- Table --- *)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec scan i = i + n <= h && (String.sub hay i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let test_table_render () =
  let s = Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "30"; "4" ] ] in
  Alcotest.(check bool) "contains header" true (contains ~needle:"bb" s);
  Alcotest.(check bool) "contains cell" true (contains ~needle:"30" s)

let test_table_pads_short_rows () =
  let s = Table.render ~header:[ "a"; "b"; "c" ] [ [ "1" ] ] in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_float_cell () =
  Alcotest.(check string) "integer" "42" (Table.float_cell 42.0);
  Alcotest.(check string) "small" "3.140" (Table.float_cell 3.14);
  Alcotest.(check string) "large" "12345.7" (Table.float_cell 12345.67)

let test_series () =
  let s =
    Table.series ~title:"Fig X" ~x_label:"n" ~y_labels:[ "a"; "b" ]
      [ "1", [ 1.0; 2.0 ]; "2", [ 3.0; 4.0 ] ]
  in
  Alcotest.(check bool) "starts with title" true (String.length s > 5 && String.sub s 0 5 = "Fig X")

(* --- Zipf --- *)

let test_zipf_bounds_and_determinism () =
  let z = Zipf.create ~theta:0.99 ~n:100 () in
  Alcotest.(check int) "n recorded" 100 (Zipf.n z);
  let draw seed =
    let p = Prng.create ~seed in
    List.init 500 (fun _ -> Zipf.sample z p)
  in
  let a = draw 9L in
  List.iter (fun r -> if r < 0 || r >= 100 then Alcotest.fail "rank out of range") a;
  Alcotest.(check bool) "deterministic for a seed" true (a = draw 9L)

let test_zipf_skews_to_low_ranks () =
  let z = Zipf.create ~theta:0.99 ~n:1000 () in
  let p = Prng.create ~seed:3L in
  let counts = Array.make 1000 0 in
  for _ = 1 to 20_000 do
    let r = Zipf.sample z p in
    counts.(r) <- counts.(r) + 1
  done;
  let head = Array.fold_left ( + ) 0 (Array.sub counts 0 100) in
  Alcotest.(check bool)
    (Printf.sprintf "top 10%% of ranks takes most samples (%d/20000)" head)
    true (head > 10_000);
  Alcotest.(check bool) "rank 0 beats rank 999" true (counts.(0) > counts.(999))

let test_zipf_theta_zero_is_uniform () =
  let z = Zipf.create ~theta:0.0 ~n:10 () in
  let p = Prng.create ~seed:4L in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let r = Zipf.sample z p in
    counts.(r) <- counts.(r) + 1
  done;
  Array.iteri
    (fun r c ->
      Alcotest.(check bool)
        (Printf.sprintf "rank %d roughly uniform (%d)" r c)
        true
        (c > 700 && c < 1300))
    counts

let test_zipf_rejects_bad_args () =
  Alcotest.check_raises "n too small" (Invalid_argument "Zipf.create: n must be >= 1")
    (fun () -> ignore (Zipf.create ~n:0 ()));
  Alcotest.check_raises "negative theta"
    (Invalid_argument "Zipf.create: theta must be >= 0") (fun () ->
      ignore (Zipf.create ~theta:(-0.5) ~n:10 ()))

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "mpk_util"
    [
      ( "prng",
        [
          tc "deterministic" `Quick test_prng_deterministic;
          tc "seed matters" `Quick test_prng_seed_matters;
          tc "int bounds" `Quick test_prng_int_bounds;
          tc "float bounds" `Quick test_prng_float_bounds;
          tc "float mean" `Quick test_prng_float_mean;
          tc "bool extremes" `Quick test_prng_bool_extremes;
          tc "bool rate" `Quick test_prng_bool_rate;
          tc "copy" `Quick test_prng_copy_independent;
          tc "split" `Quick test_prng_split_diverges;
          tc "shuffle" `Quick test_prng_shuffle_permutation;
        ] );
      ( "stats",
        [
          tc "empty" `Quick test_stats_empty;
          tc "basic" `Quick test_stats_basic;
          tc "single" `Quick test_stats_single;
          tc "percentile" `Quick test_percentile;
          tc "percentile unsorted" `Quick test_percentile_unsorted;
          tc "percentile empty" `Quick test_percentile_empty;
          tc "mean_of/stddev_of" `Quick test_mean_of;
        ] );
      ( "histogram",
        [
          tc "buckets" `Quick test_hist_buckets;
          tc "nan rejected" `Quick test_hist_nan_rejected;
          tc "percentiles" `Quick test_hist_percentiles;
          tc "percentile empty" `Quick test_hist_percentile_empty;
          tc "merge" `Quick test_hist_merge;
        ] );
      ( "table",
        [
          tc "render" `Quick test_table_render;
          tc "short rows" `Quick test_table_pads_short_rows;
          tc "float cell" `Quick test_float_cell;
          tc "series" `Quick test_series;
        ] );
      ( "zipf",
        [
          tc "bounds + determinism" `Quick test_zipf_bounds_and_determinism;
          tc "skews to low ranks" `Quick test_zipf_skews_to_low_ranks;
          tc "theta 0 is uniform" `Quick test_zipf_theta_zero_is_uniform;
          tc "rejects bad args" `Quick test_zipf_rejects_bad_args;
        ] );
    ]
