(* Tests for the libmpk core library: key cache, heap, metadata
   protection, and the eight APIs — including the security properties the
   paper claims (thread-local isolation, no key-use-after-free, metadata
   immune to corruption, synchronized mpk_mprotect, scalability past 16
   groups). *)

open Mpk_hw
open Mpk_kernel

let qtest = QCheck_alcotest.to_alcotest

let page = Physmem.page_size

let make_env ?(cores = 4) ?(threads = 1) ?vkeys ?(evict_rate = 1.0) () =
  let machine = Machine.create ~cores ~mem_mib:256 () in
  let proc = Proc.create machine in
  let main = Proc.spawn proc ~core_id:0 () in
  let others = List.init (threads - 1) (fun i -> Proc.spawn proc ~core_id:(i + 1) ()) in
  let mpk = Libmpk.init ?vkeys ~evict_rate proc main in
  mpk, proc, main, others

(* --- Key_cache --- *)

let keys n = List.filteri (fun i _ -> i < n) Pkey.allocatable

let test_cache_fresh_then_hit () =
  let c = Libmpk.Key_cache.create ~keys:(keys 2) () in
  (match Libmpk.Key_cache.acquire c 100 with
  | Libmpk.Key_cache.Fresh _ -> ()
  | _ -> Alcotest.fail "expected fresh");
  (match Libmpk.Key_cache.acquire c 100 with
  | Libmpk.Key_cache.Hit _ -> ()
  | _ -> Alcotest.fail "expected hit");
  Alcotest.(check int) "hits" 1 (Libmpk.Key_cache.hits c);
  Alcotest.(check int) "misses" 1 (Libmpk.Key_cache.misses c)

let test_cache_lru_eviction () =
  let c = Libmpk.Key_cache.create ~keys:(keys 2) () in
  ignore (Libmpk.Key_cache.acquire c 1);
  ignore (Libmpk.Key_cache.acquire c 2);
  ignore (Libmpk.Key_cache.acquire c 1);  (* 2 becomes LRU *)
  (match Libmpk.Key_cache.acquire c 3 with
  | Libmpk.Key_cache.Evicted (_, victim) -> Alcotest.(check int) "victim is 2" 2 victim
  | _ -> Alcotest.fail "expected eviction");
  Alcotest.(check int) "evictions" 1 (Libmpk.Key_cache.evictions c)

let test_cache_pin_blocks_eviction () =
  let c = Libmpk.Key_cache.create ~keys:(keys 1) () in
  ignore (Libmpk.Key_cache.acquire c 1);
  Libmpk.Key_cache.pin c 1;
  (match Libmpk.Key_cache.acquire c 2 with
  | Libmpk.Key_cache.Full -> ()
  | _ -> Alcotest.fail "pinned mapping must not be evicted");
  Libmpk.Key_cache.unpin c 1;
  match Libmpk.Key_cache.acquire c 2 with
  | Libmpk.Key_cache.Evicted (_, 1) -> ()
  | _ -> Alcotest.fail "unpinned mapping should be evictable"

let test_cache_may_evict_false () =
  let c = Libmpk.Key_cache.create ~keys:(keys 1) () in
  ignore (Libmpk.Key_cache.acquire c 1);
  match Libmpk.Key_cache.acquire c ~may_evict:false 2 with
  | Libmpk.Key_cache.Full -> ()
  | _ -> Alcotest.fail "may_evict:false must not evict"

let test_cache_release () =
  let c = Libmpk.Key_cache.create ~keys:(keys 1) () in
  ignore (Libmpk.Key_cache.acquire c 1);
  Libmpk.Key_cache.release c 1;
  match Libmpk.Key_cache.acquire c 2 with
  | Libmpk.Key_cache.Fresh _ -> ()
  | _ -> Alcotest.fail "released key should be free"

let test_cache_nested_pins () =
  let c = Libmpk.Key_cache.create ~keys:(keys 1) () in
  ignore (Libmpk.Key_cache.acquire c 1);
  Libmpk.Key_cache.pin c 1;
  Libmpk.Key_cache.pin c 1;
  Libmpk.Key_cache.unpin c 1;
  Alcotest.(check bool) "still pinned" true (Libmpk.Key_cache.pinned c 1);
  Libmpk.Key_cache.unpin c 1;
  Alcotest.(check bool) "unpinned" false (Libmpk.Key_cache.pinned c 1)

let test_cache_reserve () =
  let c = Libmpk.Key_cache.create ~keys:(keys 2) () in
  ignore (Libmpk.Key_cache.acquire c 1);
  ignore (Libmpk.Key_cache.acquire c 2);
  (match Libmpk.Key_cache.reserve c with
  | Some (_, Some _victim) -> ()
  | Some (_, None) -> Alcotest.fail "expected an eviction"
  | None -> Alcotest.fail "reserve failed");
  (* The withdrawn key stays on the books as reserved: capacity is
     conserved, circulation shrinks. *)
  Alcotest.(check int) "capacity conserved" 2 (Libmpk.Key_cache.capacity c);
  Alcotest.(check int) "one key reserved" 1 (Libmpk.Key_cache.reserved_count c);
  Alcotest.(check int) "one mapping left" 1 (Libmpk.Key_cache.in_use c)

let cache_lru_property =
  QCheck.Test.make ~name:"cache never exceeds capacity; hit after acquire" ~count:300
    QCheck.(small_list (int_bound 30))
    (fun vkeys ->
      let c = Libmpk.Key_cache.create ~keys:(keys 5) () in
      List.for_all
        (fun v ->
          (match Libmpk.Key_cache.acquire c v with
          | Libmpk.Key_cache.Full -> false
          | _ -> true)
          && Libmpk.Key_cache.in_use c <= 5
          &&
          match Libmpk.Key_cache.acquire c v with
          | Libmpk.Key_cache.Hit _ -> true
          | _ -> false)
        vkeys)

(* --- Mpk_heap --- *)

let test_heap_alloc_free () =
  let h = Libmpk.Mpk_heap.create ~base:0x1000 ~len:4096 in
  let a = Option.get (Libmpk.Mpk_heap.alloc h ~size:100) in
  let b = Option.get (Libmpk.Mpk_heap.alloc h ~size:100) in
  Alcotest.(check bool) "disjoint" true (abs (a - b) >= 100);
  Libmpk.Mpk_heap.free h ~addr:a;
  Libmpk.Mpk_heap.free h ~addr:b;
  Alcotest.(check int) "all free" 4096 (Libmpk.Mpk_heap.free_bytes h);
  Alcotest.(check bool) "invariant" true (Libmpk.Mpk_heap.invariant h)

let test_heap_exhaustion () =
  let h = Libmpk.Mpk_heap.create ~base:0 ~len:64 in
  let a = Libmpk.Mpk_heap.alloc h ~size:48 in
  Alcotest.(check bool) "first fits" true (a <> None);
  Alcotest.(check bool) "second does not" true (Libmpk.Mpk_heap.alloc h ~size:48 = None)

let test_heap_double_free () =
  let h = Libmpk.Mpk_heap.create ~base:0 ~len:256 in
  let a = Option.get (Libmpk.Mpk_heap.alloc h ~size:16) in
  Libmpk.Mpk_heap.free h ~addr:a;
  Alcotest.check_raises "double free" (Invalid_argument "Mpk_heap.free: not an allocated block")
    (fun () -> Libmpk.Mpk_heap.free h ~addr:a)

let test_heap_coalescing () =
  let h = Libmpk.Mpk_heap.create ~base:0 ~len:256 in
  let a = Option.get (Libmpk.Mpk_heap.alloc h ~size:64) in
  let b = Option.get (Libmpk.Mpk_heap.alloc h ~size:64) in
  let c = Option.get (Libmpk.Mpk_heap.alloc h ~size:64) in
  ignore c;
  Libmpk.Mpk_heap.free h ~addr:a;
  Libmpk.Mpk_heap.free h ~addr:b;
  (* a and b coalesce: a 128-byte block must fit in front *)
  Alcotest.(check bool) "coalesced" true (Libmpk.Mpk_heap.alloc h ~size:128 <> None);
  Alcotest.(check bool) "invariant" true (Libmpk.Mpk_heap.invariant h)

let heap_invariant_property =
  QCheck.Test.make ~name:"heap invariant under random alloc/free" ~count:300
    QCheck.(small_list (pair (int_range 1 200) bool))
    (fun ops ->
      let h = Libmpk.Mpk_heap.create ~base:0x4000 ~len:4096 in
      let live = ref [] in
      List.iter
        (fun (size, do_alloc) ->
          if do_alloc || !live = [] then (
            match Libmpk.Mpk_heap.alloc h ~size with
            | Some a -> live := a :: !live
            | None -> ())
          else
            match !live with
            | a :: rest ->
                Libmpk.Mpk_heap.free h ~addr:a;
                live := rest
            | [] -> ())
        ops;
      Libmpk.Mpk_heap.invariant h)

let group_serialize_roundtrip =
  QCheck.Test.make ~name:"group metadata serialize/deserialize" ~count:300
    QCheck.(quad (int_bound 10000) (int_bound 0xFFFFF) (int_range 1 1000) (int_bound 7))
    (fun (vkey, base_pages, pages, p) ->
      let prot =
        Perm.make ~read:(p land 1 <> 0) ~write:(p land 2 <> 0) ~exec:(p land 4 <> 0) ()
      in
      let g = Libmpk.Group.make ~vkey ~base:(base_pages * page) ~pages ~prot in
      match Libmpk.Group.deserialize (Libmpk.Group.serialize g) with
      | Some (v, b, n, pr, pk) ->
          v = vkey && b = base_pages * page && n = pages && Perm.equal pr prot && pk = 0
      | None -> false)

(* --- init --- *)

let test_init_takes_all_keys () =
  let mpk, proc, _, _ = make_env () in
  Alcotest.(check int) "kernel bitmap full" 15
    (Pkey_bitmap.allocated_count (Proc.pkey_bitmap proc));
  Alcotest.(check int) "cache capacity 15" 15 (Libmpk.Key_cache.capacity (Libmpk.cache mpk))

let test_init_evict_rate_default () =
  let machine = Machine.create ~cores:2 ~mem_mib:64 () in
  let proc = Proc.create machine in
  let main = Proc.spawn proc ~core_id:0 () in
  let mpk = Libmpk.init ~evict_rate:(-1.0) proc main in
  Alcotest.(check (float 1e-9)) "negative means 1.0" 1.0 (Libmpk.evict_rate mpk)

(* --- mpk_mmap / mpk_munmap --- *)

let test_mmap_creates_inaccessible_group () =
  let mpk, proc, main, _ = make_env () in
  let addr = Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw in
  (* Before mpk_begin nobody can touch the group. *)
  match Mmu.read_byte (Proc.mmu proc) (Task.core main) ~addr with
  | exception Signal.Killed { Signal.code = Signal.Segv_pkuerr; _ } -> ()
  | _ -> Alcotest.fail "group accessible before mpk_begin"

let test_mmap_duplicate_vkey_rejected () =
  let mpk, _, main, _ = make_env () in
  ignore (Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw);
  match Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw with
  | exception Errno.Error (Errno.EINVAL, _) -> ()
  | _ -> Alcotest.fail "duplicate vkey accepted"

let test_munmap_frees_everything () =
  let mpk, proc, main, _ = make_env () in
  let addr = Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw in
  Libmpk.mpk_munmap mpk main ~vkey:1;
  Alcotest.(check int) "group gone" 0 (Libmpk.group_count mpk);
  (match Mmu.read_byte (Proc.mmu proc) (Task.core main) ~addr with
  | exception Signal.Killed { Signal.code = Signal.Segv_maperr; _ } -> ()
  | _ -> Alcotest.fail "pages still mapped");
  (* vkey and hardware key are reusable afterwards *)
  ignore (Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw)

let test_munmap_missing_vkey () =
  let mpk, _, main, _ = make_env () in
  match Libmpk.mpk_munmap mpk main ~vkey:9 with
  | exception Errno.Error (Errno.ENOENT, _) -> ()
  | _ -> Alcotest.fail "expected ENOENT"

(* --- mpk_begin / mpk_end: domain isolation --- *)

let test_begin_end_basic () =
  let mpk, proc, main, _ = make_env () in
  let mmu = Proc.mmu proc in
  let core = Task.core main in
  let addr = Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw in
  Libmpk.mpk_begin mpk main ~vkey:1 ~prot:Perm.rw;
  Mmu.write_bytes mmu core ~addr (Bytes.of_string "secret");
  Alcotest.(check string) "read inside domain" "secret"
    (Bytes.to_string (Mmu.read_bytes mmu core ~addr ~len:6));
  Libmpk.mpk_end mpk main ~vkey:1;
  match Mmu.read_byte mmu core ~addr with
  | exception Signal.Killed { Signal.code = Signal.Segv_pkuerr; _ } -> ()
  | _ -> Alcotest.fail "accessible after mpk_end (paper Fig 5 says SEGFAULT)"

let test_begin_is_thread_local () =
  (* The core security property: another thread does NOT gain access when
     one thread opens a domain. *)
  let mpk, proc, main, others = make_env ~threads:2 () in
  let other = List.hd others in
  let addr = Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw in
  Libmpk.mpk_begin mpk main ~vkey:1 ~prot:Perm.rw;
  Mmu.write_byte (Proc.mmu proc) (Task.core main) ~addr 's';
  (match Mmu.read_byte (Proc.mmu proc) (Task.core other) ~addr with
  | exception Signal.Killed { Signal.code = Signal.Segv_pkuerr; _ } -> ()
  | _ -> Alcotest.fail "other thread can read an open domain");
  Libmpk.mpk_end mpk main ~vkey:1

let test_begin_read_only () =
  let mpk, proc, main, _ = make_env () in
  let addr = Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw in
  Libmpk.mpk_begin mpk main ~vkey:1 ~prot:Perm.r;
  ignore (Mmu.read_byte (Proc.mmu proc) (Task.core main) ~addr);
  (match Mmu.write_byte (Proc.mmu proc) (Task.core main) ~addr 'x' with
  | exception Signal.Killed { Signal.code = Signal.Segv_pkuerr; _ } -> ()
  | _ -> Alcotest.fail "read-only domain allowed a write");
  Libmpk.mpk_end mpk main ~vkey:1

let test_begin_beyond_group_prot () =
  let mpk, _, main, _ = make_env () in
  ignore (Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.r);
  match Libmpk.mpk_begin mpk main ~vkey:1 ~prot:Perm.rw with
  | exception Errno.Error (Errno.EACCES, _) -> ()
  | _ -> Alcotest.fail "begin exceeded group permission"

let test_end_without_begin () =
  let mpk, _, main, _ = make_env () in
  ignore (Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw);
  match Libmpk.mpk_end mpk main ~vkey:1 with
  | exception Errno.Error (Errno.EINVAL, _) -> ()
  | _ -> Alcotest.fail "mpk_end without begin accepted"

let test_key_exhaustion_exception () =
  let mpk, _, main, _ = make_env () in
  for v = 1 to 15 do
    ignore (Libmpk.mpk_mmap mpk main ~vkey:v ~len:page ~prot:Perm.rw);
    Libmpk.mpk_begin mpk main ~vkey:v ~prot:Perm.rw
  done;
  ignore (Libmpk.mpk_mmap mpk main ~vkey:16 ~len:page ~prot:Perm.rw);
  (match Libmpk.mpk_begin mpk main ~vkey:16 ~prot:Perm.rw with
  | exception Libmpk.Key_exhausted -> ()
  | _ -> Alcotest.fail "expected Key_exhausted");
  (* Ending one domain frees a key; begin now succeeds. *)
  Libmpk.mpk_end mpk main ~vkey:3;
  Libmpk.mpk_begin mpk main ~vkey:16 ~prot:Perm.rw

(* --- Scalability: more groups than hardware keys --- *)

let test_virtualization_past_16_groups () =
  let mpk, proc, main, _ = make_env () in
  let mmu = Proc.mmu proc in
  let core = Task.core main in
  let n = 40 in
  let addrs = Array.make (n + 1) 0 in
  for v = 1 to n do
    addrs.(v) <- Libmpk.mpk_mmap mpk main ~vkey:v ~len:page ~prot:Perm.rw;
    Libmpk.mpk_begin mpk main ~vkey:v ~prot:Perm.rw;
    Mmu.write_byte mmu core ~addr:addrs.(v) (Char.chr (v land 0xff));
    Libmpk.mpk_end mpk main ~vkey:v
  done;
  Alcotest.(check int) "40 groups live" n (Libmpk.group_count mpk);
  (* Every group keeps its data and its isolation, mapped or evicted. *)
  for v = 1 to n do
    (match Mmu.read_byte mmu core ~addr:addrs.(v) with
    | exception Signal.Killed _ -> ()
    | _ -> Alcotest.failf "group %d accessible outside a domain" v);
    Libmpk.mpk_begin mpk main ~vkey:v ~prot:Perm.r;
    Alcotest.(check char) "data survives eviction cycles" (Char.chr (v land 0xff))
      (Mmu.read_byte mmu core ~addr:addrs.(v));
    Libmpk.mpk_end mpk main ~vkey:v
  done

let test_no_key_use_after_free_via_libmpk () =
  (* The hazard of the raw API (see test_kernel) cannot happen through
     libmpk: recycling a hardware key scrubs rights and retags pages. *)
  let mpk, proc, main, _ = make_env () in
  let mmu = Proc.mmu proc in
  let core = Task.core main in
  (* Group 1 gets a key and an open domain... then closes. *)
  let addr1 = Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw in
  Libmpk.mpk_begin mpk main ~vkey:1 ~prot:Perm.rw;
  Libmpk.mpk_end mpk main ~vkey:1;
  (* Force 15 other groups through begin to evict group 1's key. *)
  for v = 2 to 16 do
    ignore (Libmpk.mpk_mmap mpk main ~vkey:v ~len:page ~prot:Perm.rw);
    Libmpk.mpk_begin mpk main ~vkey:v ~prot:Perm.rw;
    Libmpk.mpk_end mpk main ~vkey:v
  done;
  (* Group 1's pages must not have become accessible through any stale
     key/rights pair. *)
  match Mmu.read_byte mmu core ~addr:addr1 with
  | exception Signal.Killed _ -> ()
  | _ -> Alcotest.fail "evicted group readable: key-use-after-free through libmpk"

(* --- Metadata protection --- *)

let test_metadata_user_write_faults () =
  let mpk, proc, main, _ = make_env () in
  ignore (Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw);
  let md = Libmpk.metadata mpk in
  let addr = Libmpk.Metadata.slot_addr md ~slot:0 in
  match Mmu.write_byte (Proc.mmu proc) (Task.core main) ~addr 'X' with
  | exception Signal.Killed { Signal.code = Signal.Segv_accerr; _ } -> ()
  | _ -> Alcotest.fail "metadata writable from userspace"

let test_metadata_user_read_ok () =
  let mpk, _, main, _ = make_env () in
  ignore (Libmpk.mpk_mmap mpk main ~vkey:7 ~len:(2 * page) ~prot:Perm.rw);
  let md = Libmpk.metadata mpk in
  match Libmpk.Metadata.read_slot md main ~slot:0 with
  | Some (vkey, _, pages, prot, _) ->
      Alcotest.(check int) "vkey" 7 vkey;
      Alcotest.(check int) "pages" 2 pages;
      Alcotest.(check string) "prot" "rw-" (Perm.to_string prot)
  | None -> Alcotest.fail "slot empty"

let test_metadata_tracks_updates () =
  let mpk, _, main, _ = make_env () in
  ignore (Libmpk.mpk_mmap mpk main ~vkey:7 ~len:page ~prot:Perm.rw);
  Libmpk.mpk_mprotect mpk main ~vkey:7 ~prot:Perm.r;
  let md = Libmpk.metadata mpk in
  match Libmpk.Metadata.read_slot md main ~slot:0 with
  | Some (_, _, _, prot, _) -> Alcotest.(check string) "prot updated" "r--" (Perm.to_string prot)
  | None -> Alcotest.fail "slot empty"

let test_metadata_grows () =
  let mpk, _, main, _ = make_env () in
  let md = Libmpk.metadata mpk in
  let initial = Libmpk.Metadata.capacity_slots md in
  (* Many small groups force a doubling of the metadata region. *)
  for v = 1 to initial + 1 do
    ignore (Libmpk.mpk_mmap mpk main ~vkey:v ~len:page ~prot:Perm.rw)
  done;
  Alcotest.(check bool) "capacity doubled" true
    (Libmpk.Metadata.capacity_slots md > initial);
  Alcotest.(check int) "records preserved" (initial + 1) (Libmpk.Metadata.used_slots md)

(* --- Hardcoded vkey registry --- *)

let test_registry_rejects_unknown () =
  let mpk, _, main, _ = make_env ~vkeys:[ 100; 101 ] () in
  ignore (Libmpk.mpk_mmap mpk main ~vkey:100 ~len:page ~prot:Perm.rw);
  match Libmpk.mpk_mmap mpk main ~vkey:999 ~len:page ~prot:Perm.rw with
  | exception Libmpk.Unregistered_vkey 999 -> ()
  | _ -> Alcotest.fail "unregistered vkey accepted"

let test_registry_blocks_corrupted_key_use () =
  (* Protection-key corruption: even if an attacker overwrites a vkey an
     application stored in writable memory, using the corrupted value is
     caught by the load-time-hardcoded registry. *)
  let mpk, _, main, _ = make_env ~vkeys:[ 100 ] () in
  ignore (Libmpk.mpk_mmap mpk main ~vkey:100 ~len:page ~prot:Perm.rw);
  let corrupted = 100 + 7 in
  match Libmpk.mpk_begin mpk main ~vkey:corrupted ~prot:Perm.rw with
  | exception Libmpk.Unregistered_vkey _ -> ()
  | _ -> Alcotest.fail "corrupted vkey slipped through"

(* --- mpk_mprotect --- *)

let test_mprotect_global_semantics () =
  (* mprotect-style: the new permission binds every thread, unlike
     mpk_begin. *)
  let mpk, proc, main, others = make_env ~threads:2 () in
  let other = List.hd others in
  let mmu = Proc.mmu proc in
  let addr = Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw in
  Libmpk.mpk_mprotect mpk main ~vkey:1 ~prot:Perm.rw;
  Mmu.write_byte mmu (Task.core main) ~addr 'a';
  Mmu.write_byte mmu (Task.core other) ~addr 'b';  (* both threads can write *)
  Libmpk.mpk_mprotect mpk main ~vkey:1 ~prot:Perm.r;
  ignore (Mmu.read_byte mmu (Task.core other) ~addr);
  (match Mmu.write_byte mmu (Task.core other) ~addr 'c' with
  | exception Signal.Killed _ -> ()
  | _ -> Alcotest.fail "other thread wrote after global r--");
  match Mmu.write_byte mmu (Task.core main) ~addr 'c' with
  | exception Signal.Killed _ -> ()
  | _ -> Alcotest.fail "caller wrote after global r--"

let test_mprotect_lazy_sync_descheduled () =
  let mpk, proc, main, others = make_env ~threads:2 () in
  let other = List.hd others in
  let addr = Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw in
  Libmpk.mpk_mprotect mpk main ~vkey:1 ~prot:Perm.rw;
  Sched.schedule_out (Proc.sched proc) other;
  Libmpk.mpk_mprotect mpk main ~vkey:1 ~prot:Perm.none;
  (* other is off-CPU; the rights update is queued and applied before it
     can run again. *)
  Sched.schedule_in (Proc.sched proc) other;
  match Mmu.read_byte (Proc.mmu proc) (Task.core other) ~addr with
  | exception Signal.Killed _ -> ()
  | _ -> Alcotest.fail "descheduled thread kept stale access"

let test_mprotect_exec_bit_change () =
  let mpk, proc, main, _ = make_env () in
  let mmu = Proc.mmu proc in
  let core = Task.core main in
  let addr = Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw in
  Libmpk.mpk_mprotect mpk main ~vkey:1 ~prot:Perm.rw;
  Mmu.write_bytes mmu core ~addr (Bytes.of_string "\xc3");
  (match Mmu.fetch mmu core ~addr ~len:1 with
  | exception Signal.Killed { Signal.code = Signal.Segv_accerr; _ } -> ()
  | _ -> Alcotest.fail "fetch before exec granted");
  Libmpk.mpk_mprotect mpk main ~vkey:1 ~prot:Perm.rwx;
  ignore (Mmu.fetch mmu core ~addr ~len:1)

let test_mprotect_exec_only_reserved_key () =
  let mpk, proc, main, others = make_env ~threads:2 () in
  let other = List.hd others in
  let mmu = Proc.mmu proc in
  let addr = Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw in
  Libmpk.mpk_mprotect mpk main ~vkey:1 ~prot:Perm.rw;
  Mmu.write_bytes mmu (Task.core main) ~addr (Bytes.of_string "\x90\xc3");
  Libmpk.mpk_mprotect mpk main ~vkey:1 ~prot:Perm.x_only;
  Alcotest.(check bool) "reserved key exists" true (Libmpk.xonly_key mpk <> None);
  (* fetch works for everyone; read works for NO ONE — unlike the raw
     kernel's unsynchronized execute-only memory. *)
  ignore (Mmu.fetch mmu (Task.core main) ~addr ~len:2);
  ignore (Mmu.fetch mmu (Task.core other) ~addr ~len:2);
  (match Mmu.read_byte mmu (Task.core main) ~addr with
  | exception Signal.Killed _ -> ()
  | _ -> Alcotest.fail "owner read exec-only");
  (match Mmu.read_byte mmu (Task.core other) ~addr with
  | exception Signal.Killed _ -> ()
  | _ -> Alcotest.fail "other thread read exec-only (the gap libmpk closes)");
  (* A second exec-only group shares the reserved key. *)
  ignore (Libmpk.mpk_mmap mpk main ~vkey:2 ~len:page ~prot:Perm.rw);
  let k_before = Libmpk.xonly_key mpk in
  Libmpk.mpk_mprotect mpk main ~vkey:2 ~prot:Perm.x_only;
  Alcotest.(check bool) "same reserved key" true (Libmpk.xonly_key mpk = k_before);
  (* Leaving exec-only returns the reserve once no group uses it. *)
  Libmpk.mpk_mprotect mpk main ~vkey:1 ~prot:Perm.rw;
  Alcotest.(check bool) "still reserved (one group left)" true (Libmpk.xonly_key mpk <> None);
  Libmpk.mpk_mprotect mpk main ~vkey:2 ~prot:Perm.rw;
  Alcotest.(check bool) "reserve released" true (Libmpk.xonly_key mpk = None)

let test_mprotect_eviction_rate_zero_falls_back () =
  (* With evict_rate = 0 a miss never evicts: it must fall back to plain
     mprotect, still giving correct global semantics. *)
  let mpk, proc, main, _ = make_env ~evict_rate:0.0 () in
  let mmu = Proc.mmu proc in
  let core = Task.core main in
  (* Fill all 15 keys. *)
  for v = 1 to 15 do
    ignore (Libmpk.mpk_mmap mpk main ~vkey:v ~len:page ~prot:Perm.rw)
  done;
  let addr16 = Libmpk.mpk_mmap mpk main ~vkey:16 ~len:page ~prot:Perm.rw in
  let ev_before = Libmpk.Key_cache.evictions (Libmpk.cache mpk) in
  Libmpk.mpk_mprotect mpk main ~vkey:16 ~prot:Perm.rw;
  Mmu.write_byte mmu core ~addr:addr16 'x';
  Libmpk.mpk_mprotect mpk main ~vkey:16 ~prot:Perm.none;
  (match Mmu.read_byte mmu core ~addr:addr16 with
  | exception Signal.Killed _ -> ()
  | _ -> Alcotest.fail "permission not enforced by fallback");
  Alcotest.(check int) "no evictions happened" ev_before
    (Libmpk.Key_cache.evictions (Libmpk.cache mpk))

let test_mprotect_during_begin_rejected () =
  let mpk, _, main, _ = make_env () in
  ignore (Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw);
  Libmpk.mpk_begin mpk main ~vkey:1 ~prot:Perm.rw;
  match Libmpk.mpk_mprotect mpk main ~vkey:1 ~prot:Perm.r with
  | exception Errno.Error (Errno.EINVAL, _) -> ()
  | _ -> Alcotest.fail "mpk_mprotect inside an open domain accepted"

let test_mprotect_hit_is_fast () =
  (* Fig 8 fast path: single-thread hit ≈ user bookkeeping + WRPKRU,
     an order of magnitude under mprotect's 1094 cycles. *)
  let mpk, _, main, _ = make_env ~threads:1 () in
  ignore (Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw);
  Libmpk.mpk_mprotect mpk main ~vkey:1 ~prot:Perm.rw;  (* warm *)
  let _, cycles =
    Cpu.measure (Task.core main) (fun () ->
        Libmpk.mpk_mprotect mpk main ~vkey:1 ~prot:Perm.r)
  in
  Alcotest.(check bool)
    (Printf.sprintf "hit cost %.1f < 150 cycles" cycles)
    true (cycles < 150.0)

(* --- mpk_malloc / mpk_free --- *)

let test_malloc_free_basic () =
  let mpk, proc, main, _ = make_env () in
  let mmu = Proc.mmu proc in
  let core = Task.core main in
  let a = Libmpk.mpk_malloc mpk main ~vkey:1 ~size:128 in
  Libmpk.mpk_begin mpk main ~vkey:1 ~prot:Perm.rw;
  Mmu.write_bytes mmu core ~addr:a (Bytes.of_string "key material");
  Alcotest.(check string) "readback" "key material"
    (Bytes.to_string (Mmu.read_bytes mmu core ~addr:a ~len:12));
  Libmpk.mpk_end mpk main ~vkey:1;
  (match Mmu.read_byte mmu core ~addr:a with
  | exception Signal.Killed _ -> ()
  | _ -> Alcotest.fail "heap block accessible outside domain");
  Libmpk.mpk_free mpk main ~vkey:1 ~addr:a

let test_malloc_distinct_blocks () =
  let mpk, _, main, _ = make_env () in
  let a = Libmpk.mpk_malloc mpk main ~vkey:1 ~size:64 in
  let b = Libmpk.mpk_malloc mpk main ~vkey:1 ~size:64 in
  Alcotest.(check bool) "disjoint" true (a <> b)

let test_malloc_enomem_on_full_heap () =
  (* a 1-page default heap: the second large block cannot fit *)
  let machine = Machine.create ~cores:2 ~mem_mib:64 () in
  let proc = Proc.create machine in
  let main = Proc.spawn proc ~core_id:0 () in
  let mpk = Libmpk.init ~default_heap_bytes:page ~evict_rate:1.0 proc main in
  ignore (Libmpk.mpk_malloc mpk main ~vkey:1 ~size:3000);
  match Libmpk.mpk_malloc mpk main ~vkey:1 ~size:3000 with
  | exception Errno.Error (Errno.ENOMEM, _) -> ()
  | _ -> Alcotest.fail "expected ENOMEM from a full group heap"

let test_malloc_respects_registry () =
  let mpk, _, main, _ = make_env ~vkeys:[ 7 ] () in
  ignore (Libmpk.mpk_malloc mpk main ~vkey:7 ~size:64);
  match Libmpk.mpk_malloc mpk main ~vkey:8 ~size:64 with
  | exception Libmpk.Unregistered_vkey 8 -> ()
  | _ -> Alcotest.fail "unregistered vkey allocated"

let test_metadata_slot_reuse_after_munmap () =
  let mpk, _, main, _ = make_env () in
  ignore (Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw);
  let used_before = Libmpk.Metadata.used_slots (Libmpk.metadata mpk) in
  Libmpk.mpk_munmap mpk main ~vkey:1;
  Alcotest.(check int) "slot freed" (used_before - 1)
    (Libmpk.Metadata.used_slots (Libmpk.metadata mpk));
  ignore (Libmpk.mpk_mmap mpk main ~vkey:2 ~len:page ~prot:Perm.rw);
  Alcotest.(check int) "slot reused, no growth" used_before
    (Libmpk.Metadata.used_slots (Libmpk.metadata mpk))

let test_mprotect_then_begin_interleave () =
  (* a group can move between the global and domain usage models *)
  let mpk, proc, main, others = make_env ~threads:2 () in
  let other = List.hd others in
  let mmu = Proc.mmu proc in
  let addr = Libmpk.mpk_mmap mpk main ~vkey:1 ~len:page ~prot:Perm.rw in
  (* global phase: both threads write *)
  Libmpk.mpk_mprotect mpk main ~vkey:1 ~prot:Perm.rw;
  Mmu.write_byte mmu (Task.core other) ~addr 'g';
  (* lock globally, then open a domain for main only *)
  Libmpk.mpk_mprotect mpk main ~vkey:1 ~prot:Perm.none;
  Libmpk.mpk_begin mpk main ~vkey:1 ~prot:Perm.rw;
  Mmu.write_byte mmu (Task.core main) ~addr 'd';
  (match Mmu.read_byte mmu (Task.core other) ~addr with
  | exception Signal.Killed _ -> ()
  | _ -> Alcotest.fail "other thread saw the domain");
  Libmpk.mpk_end mpk main ~vkey:1;
  (* back to global *)
  Libmpk.mpk_mprotect mpk main ~vkey:1 ~prot:Perm.r;
  Alcotest.(check char) "data flowed through both models" 'd'
    (Mmu.read_byte mmu (Task.core other) ~addr)

let test_free_without_heap () =
  let mpk, _, main, _ = make_env () in
  match Libmpk.mpk_free mpk main ~vkey:5 ~addr:0x1234 with
  | exception Errno.Error (Errno.EINVAL, _) -> ()
  | _ -> Alcotest.fail "expected EINVAL"

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "libmpk"
    [
      ( "key_cache",
        [
          tc "fresh then hit" `Quick test_cache_fresh_then_hit;
          tc "lru eviction" `Quick test_cache_lru_eviction;
          tc "pin blocks eviction" `Quick test_cache_pin_blocks_eviction;
          tc "may_evict false" `Quick test_cache_may_evict_false;
          tc "release" `Quick test_cache_release;
          tc "nested pins" `Quick test_cache_nested_pins;
          tc "reserve" `Quick test_cache_reserve;
          qtest cache_lru_property;
        ] );
      ( "heap",
        [
          tc "alloc/free" `Quick test_heap_alloc_free;
          tc "exhaustion" `Quick test_heap_exhaustion;
          tc "double free" `Quick test_heap_double_free;
          tc "coalescing" `Quick test_heap_coalescing;
          qtest heap_invariant_property;
        ] );
      ("group", [ qtest group_serialize_roundtrip ]);
      ( "init",
        [
          tc "takes all keys" `Quick test_init_takes_all_keys;
          tc "default evict rate" `Quick test_init_evict_rate_default;
        ] );
      ( "mmap",
        [
          tc "inaccessible group" `Quick test_mmap_creates_inaccessible_group;
          tc "duplicate vkey" `Quick test_mmap_duplicate_vkey_rejected;
          tc "munmap frees" `Quick test_munmap_frees_everything;
          tc "munmap missing" `Quick test_munmap_missing_vkey;
        ] );
      ( "domain",
        [
          tc "begin/end" `Quick test_begin_end_basic;
          tc "thread local" `Quick test_begin_is_thread_local;
          tc "read-only domain" `Quick test_begin_read_only;
          tc "beyond group prot" `Quick test_begin_beyond_group_prot;
          tc "end without begin" `Quick test_end_without_begin;
          tc "key exhaustion" `Quick test_key_exhaustion_exception;
        ] );
      ( "virtualization",
        [
          tc "40 groups" `Quick test_virtualization_past_16_groups;
          tc "no key UAF via libmpk" `Quick test_no_key_use_after_free_via_libmpk;
        ] );
      ( "metadata",
        [
          tc "user write faults" `Quick test_metadata_user_write_faults;
          tc "user read ok" `Quick test_metadata_user_read_ok;
          tc "tracks updates" `Quick test_metadata_tracks_updates;
          tc "grows" `Quick test_metadata_grows;
        ] );
      ( "registry",
        [
          tc "rejects unknown" `Quick test_registry_rejects_unknown;
          tc "blocks corrupted keys" `Quick test_registry_blocks_corrupted_key_use;
        ] );
      ( "mprotect",
        [
          tc "global semantics" `Quick test_mprotect_global_semantics;
          tc "lazy sync" `Quick test_mprotect_lazy_sync_descheduled;
          tc "exec bit change" `Quick test_mprotect_exec_bit_change;
          tc "exec-only reserved key" `Quick test_mprotect_exec_only_reserved_key;
          tc "evict_rate 0 fallback" `Quick test_mprotect_eviction_rate_zero_falls_back;
          tc "rejected during begin" `Quick test_mprotect_during_begin_rejected;
          tc "hit is fast" `Quick test_mprotect_hit_is_fast;
        ] );
      ( "heap_api",
        [
          tc "malloc/free" `Quick test_malloc_free_basic;
          tc "distinct blocks" `Quick test_malloc_distinct_blocks;
          tc "ENOMEM on full heap" `Quick test_malloc_enomem_on_full_heap;
          tc "malloc respects registry" `Quick test_malloc_respects_registry;
          tc "metadata slot reuse" `Quick test_metadata_slot_reuse_after_munmap;
          tc "mprotect/begin interleave" `Quick test_mprotect_then_begin_interleave;
          tc "free without heap" `Quick test_free_without_heap;
        ] );
    ]
