(* Tests for the Memcached case study: slab allocator, in-simulated-
   memory hash table, the four protection modes (correctness + isolation),
   and the twemperf-style load generator. *)

open Mpk_hw
open Mpk_kernel
open Mpk_kvstore

let qtest = QCheck_alcotest.to_alcotest

(* --- Slab --- *)

let test_slab_classes () =
  Alcotest.(check int) "1 -> 64" 64 (Slab.class_of_size 1);
  Alcotest.(check int) "64 -> 64" 64 (Slab.class_of_size 64);
  Alcotest.(check int) "65 -> 128" 128 (Slab.class_of_size 65);
  Alcotest.(check int) "1000 -> 1024" 1024 (Slab.class_of_size 1000);
  Alcotest.(check int) "max" Slab.max_chunk (Slab.class_of_size Slab.max_chunk)

let test_slab_alloc_free () =
  let s = Slab.create ~base:0x100000 ~len:(4 * Slab.slab_bytes) in
  let a = Option.get (Slab.alloc s ~size:100) in
  let b = Option.get (Slab.alloc s ~size:100) in
  Alcotest.(check bool) "distinct" true (a <> b);
  Alcotest.(check int) "two chunks" 2 (Slab.allocated_chunks s);
  Slab.free s ~addr:a;
  Alcotest.(check int) "one chunk" 1 (Slab.allocated_chunks s);
  let c = Option.get (Slab.alloc s ~size:100) in
  Alcotest.(check int) "chunk reused" a c;
  Alcotest.(check bool) "invariant" true (Slab.invariant s)

let test_slab_classes_separate_slabs () =
  let s = Slab.create ~base:0 ~len:(4 * Slab.slab_bytes) in
  ignore (Option.get (Slab.alloc s ~size:64));
  ignore (Option.get (Slab.alloc s ~size:8192));
  Alcotest.(check int) "two slabs" 2 (Slab.slabs_in_use s)

let test_slab_exhaustion () =
  let s = Slab.create ~base:0 ~len:Slab.slab_bytes in
  (* one slab of 64 KiB chunks: 16 fit *)
  for _ = 1 to Slab.slab_bytes / Slab.max_chunk do
    match Slab.alloc s ~size:Slab.max_chunk with
    | Some _ -> ()
    | None -> Alcotest.fail "premature exhaustion"
  done;
  Alcotest.(check bool) "exhausted" true (Slab.alloc s ~size:Slab.max_chunk = None)

let test_slab_double_free () =
  let s = Slab.create ~base:0 ~len:Slab.slab_bytes in
  let a = Option.get (Slab.alloc s ~size:64) in
  Slab.free s ~addr:a;
  Alcotest.check_raises "double free" (Invalid_argument "Slab.free: not an allocated chunk")
    (fun () -> Slab.free s ~addr:a)

let slab_invariant_random =
  QCheck.Test.make ~name:"slab invariant under random ops" ~count:100
    QCheck.(small_list (pair (int_range 1 2048) bool))
    (fun ops ->
      let s = Slab.create ~base:0x1000 ~len:(8 * Slab.slab_bytes) in
      let live = ref [] in
      List.iter
        (fun (size, do_alloc) ->
          if do_alloc || !live = [] then (
            match Slab.alloc s ~size with Some a -> live := a :: !live | None -> ())
          else
            match !live with
            | a :: rest ->
                Slab.free s ~addr:a;
                live := rest
            | [] -> ())
        ops;
      Slab.invariant s)

(* --- Shash (through a plain server) --- *)

let test_hash_set_get () =
  let srv = Server.create ~mode:Server.Baseline ~workers:1 ~slab_mib:8 ~buckets:64 () in
  ignore (Server.set srv ~worker:0 ~key:"alpha" ~value:(Bytes.of_string "one") : (unit, _) result);
  ignore (Server.set srv ~worker:0 ~key:"beta" ~value:(Bytes.of_string "two") : (unit, _) result);
  Alcotest.(check (option string)) "alpha" (Some "one")
    (Option.map Bytes.to_string (Server.get srv ~worker:0 ~key:"alpha"));
  Alcotest.(check (option string)) "beta" (Some "two")
    (Option.map Bytes.to_string (Server.get srv ~worker:0 ~key:"beta"));
  Alcotest.(check (option string)) "missing" None
    (Option.map Bytes.to_string (Server.get srv ~worker:0 ~key:"gamma"))

let test_hash_overwrite () =
  let srv = Server.create ~mode:Server.Baseline ~workers:1 ~slab_mib:8 ~buckets:64 () in
  ignore (Server.set srv ~worker:0 ~key:"k" ~value:(Bytes.of_string "v1") : (unit, _) result);
  ignore (Server.set srv ~worker:0 ~key:"k" ~value:(Bytes.of_string "v2-longer") : (unit, _) result);
  Alcotest.(check (option string)) "overwritten" (Some "v2-longer")
    (Option.map Bytes.to_string (Server.get srv ~worker:0 ~key:"k"))

let test_hash_delete () =
  let srv = Server.create ~mode:Server.Baseline ~workers:1 ~slab_mib:8 ~buckets:64 () in
  ignore (Server.set srv ~worker:0 ~key:"k" ~value:(Bytes.of_string "v") : (unit, _) result);
  Alcotest.(check bool) "deleted" true (Server.delete srv ~worker:0 ~key:"k");
  Alcotest.(check bool) "gone" true (Server.get srv ~worker:0 ~key:"k" = None);
  Alcotest.(check bool) "double delete" false (Server.delete srv ~worker:0 ~key:"k")

let test_hash_collisions () =
  (* tiny bucket count forces chains *)
  let srv = Server.create ~mode:Server.Baseline ~workers:1 ~slab_mib:8 ~buckets:2 () in
  let n = 50 in
  for i = 0 to n - 1 do
    ignore
      (Server.set srv ~worker:0 ~key:(Printf.sprintf "key%d" i)
         ~value:(Bytes.of_string (string_of_int (i * i)))
        : (unit, _) result)
  done;
  for i = 0 to n - 1 do
    Alcotest.(check (option string)) (Printf.sprintf "key%d" i)
      (Some (string_of_int (i * i)))
      (Option.map Bytes.to_string (Server.get srv ~worker:0 ~key:(Printf.sprintf "key%d" i)))
  done;
  (* delete half, check the rest survive the unlinking *)
  for i = 0 to n - 1 do
    if i mod 2 = 0 then ignore (Server.delete srv ~worker:0 ~key:(Printf.sprintf "key%d" i))
  done;
  for i = 0 to n - 1 do
    let expect = if i mod 2 = 0 then None else Some (string_of_int (i * i)) in
    Alcotest.(check (option string)) (Printf.sprintf "after delete key%d" i) expect
      (Option.map Bytes.to_string (Server.get srv ~worker:0 ~key:(Printf.sprintf "key%d" i)))
  done

let hash_model_property =
  QCheck.Test.make ~name:"shash matches Hashtbl model" ~count:30
    QCheck.(small_list (triple (int_bound 20) (string_of_size (QCheck.Gen.int_range 1 30)) (int_bound 2)))
    (fun ops ->
      let srv = Server.create ~mode:Server.Baseline ~workers:1 ~slab_mib:8 ~buckets:8 () in
      let model : (string, string) Hashtbl.t = Hashtbl.create 16 in
      List.for_all
        (fun (k, v, op) ->
          let key = Printf.sprintf "k%d" k in
          match op with
          | 0 ->
              ignore (Server.set srv ~worker:0 ~key ~value:(Bytes.of_string v) : (unit, _) result);
              Hashtbl.replace model key v;
              true
          | 1 ->
              let got = Option.map Bytes.to_string (Server.get srv ~worker:0 ~key) in
              got = Hashtbl.find_opt model key
          | _ ->
              let deleted = Server.delete srv ~worker:0 ~key in
              let existed = Hashtbl.mem model key in
              Hashtbl.remove model key;
              deleted = existed)
        ops)

(* --- Protection modes --- *)

let all_modes = [ Server.Baseline; Server.Domain; Server.Sync; Server.Mprotect_sys ]

let test_all_modes_work () =
  List.iter
    (fun mode ->
      let srv = Server.create ~mode ~workers:2 ~slab_mib:8 ~buckets:64 () in
      ignore (Server.set srv ~worker:0 ~key:"k" ~value:(Bytes.of_string "v") : (unit, _) result);
      Alcotest.(check (option string)) (Server.mode_name mode) (Some "v")
        (Option.map Bytes.to_string (Server.get srv ~worker:1 ~key:"k")))
    all_modes

let test_domain_blocks_attacker () =
  let srv = Server.create ~mode:Server.Domain ~workers:2 ~slab_mib:8 ~buckets:64 () in
  ignore (Server.set srv ~worker:0 ~key:"secret" ~value:(Bytes.of_string "hunter2") : (unit, _) result);
  let attacker = Server.attacker_task srv in
  match
    Mmu.read_bytes (Proc.mmu (Server.proc srv)) (Task.core attacker)
      ~addr:(Server.slab_base srv) ~len:64
  with
  | exception Signal.Killed _ -> ()
  | _ -> Alcotest.fail "attacker read slab memory in Domain mode"

let test_sync_blocks_attacker_between_requests () =
  let srv = Server.create ~mode:Server.Sync ~workers:2 ~slab_mib:8 ~buckets:64 () in
  ignore (Server.set srv ~worker:0 ~key:"secret" ~value:(Bytes.of_string "hunter2") : (unit, _) result);
  let attacker = Server.attacker_task srv in
  match
    Mmu.read_bytes (Proc.mmu (Server.proc srv)) (Task.core attacker)
      ~addr:(Server.slab_base srv) ~len:64
  with
  | exception Signal.Killed _ -> ()
  | _ -> Alcotest.fail "attacker read slab memory in Sync mode (sealed between requests)"

let test_mprotect_blocks_attacker_between_requests () =
  let srv = Server.create ~mode:Server.Mprotect_sys ~workers:2 ~slab_mib:8 ~buckets:64 () in
  ignore (Server.set srv ~worker:0 ~key:"secret" ~value:(Bytes.of_string "hunter2") : (unit, _) result);
  let attacker = Server.attacker_task srv in
  match
    Mmu.read_bytes (Proc.mmu (Server.proc srv)) (Task.core attacker)
      ~addr:(Server.slab_base srv) ~len:64
  with
  | exception Signal.Killed _ -> ()
  | _ -> Alcotest.fail "attacker read slab memory in Mprotect mode"

let test_baseline_attacker_succeeds () =
  (* Unprotected Memcached: an arbitrary-read attacker wins (the paper's
     motivation). *)
  let srv = Server.create ~mode:Server.Baseline ~workers:1 ~slab_mib:8 ~buckets:64 () in
  ignore (Server.set srv ~worker:0 ~key:"secret" ~value:(Bytes.of_string "hunter2") : (unit, _) result);
  let attacker = Server.attacker_task srv in
  ignore
    (Mmu.read_bytes (Proc.mmu (Server.proc srv)) (Task.core attacker)
       ~addr:(Server.slab_base srv) ~len:64)

let test_populate_slab () =
  let srv = Server.create ~mode:Server.Baseline ~workers:1 ~slab_mib:16 ~buckets:64 () in
  let before = Server.resident_pages srv in
  Server.populate_slab srv ~mib:8;
  let after = Server.resident_pages srv in
  Alcotest.(check int) "8 MiB resident" (8 * 256) (after - before)

(* --- Protocol --- *)

let test_protocol_parse_set () =
  match Protocol.parse_request "set user 7 0 5\r\nhello\r\n" with
  | Ok (Protocol.Set { key; flags; exptime; data }) ->
      Alcotest.(check string) "key" "user" key;
      Alcotest.(check int) "flags" 7 flags;
      Alcotest.(check int) "exptime" 0 exptime;
      Alcotest.(check string) "data" "hello" (Bytes.to_string data)
  | Ok _ -> Alcotest.fail "wrong request"
  | Error e -> Alcotest.fail e

let test_protocol_parse_errors () =
  let bad s =
    match Protocol.parse_request s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %S" s
  in
  bad "set user 7 0 5\r\nhell\r\n";  (* short data *)
  bad "set user 7 0 5\r\nhelloworld";  (* bad terminator *)
  bad "get\r\n";
  bad "frobnicate x\r\n";
  bad "set user x 0 5\r\nhello\r\n";
  bad "no crlf"

let protocol_roundtrip =
  QCheck.Test.make ~name:"protocol request render/parse roundtrip" ~count:300
    QCheck.(
      triple (string_of_size (QCheck.Gen.int_range 1 20))
        (pair (int_bound 100) (int_bound 1000))
        (string_of_size (QCheck.Gen.int_bound 64)))
    (fun (rawkey, (flags, exptime), data) ->
      (* keys must be printable, no spaces/control chars *)
      let key =
        String.map (fun c -> if c <= ' ' || c = '\127' then 'k' else c) rawkey
      in
      let req = Protocol.Set { key; flags; exptime; data = Bytes.of_string data } in
      match Protocol.parse_request (Protocol.render_request req) with
      | Ok (Protocol.Set s) ->
          s.key = key && s.flags = flags && s.exptime = exptime
          && Bytes.to_string s.data = data
      | Ok _ | Error _ -> false)

let test_dispatch_set_get_delete () =
  let srv = Server.create ~mode:Server.Domain ~workers:1 ~slab_mib:8 ~buckets:64 () in
  let d = Server.dispatch srv ~worker:0 ~now:0.0 in
  Alcotest.(check string) "set" "STORED\r\n" (d "set k 3 0 5\r\nhello\r\n");
  Alcotest.(check string) "get" "VALUE k 3 5\r\nhello\r\nEND\r\n" (d "get k\r\n");
  Alcotest.(check string) "delete" "DELETED\r\n" (d "delete k\r\n");
  Alcotest.(check string) "get after delete" "END\r\n" (d "get k\r\n");
  Alcotest.(check string) "delete missing" "NOT_FOUND\r\n" (d "delete k\r\n");
  Alcotest.(check bool) "bad command -> SERVER_ERROR" true
    (String.length (d "bogus\r\n") > 12)

let test_dispatch_ttl () =
  let srv = Server.create ~mode:Server.Baseline ~workers:1 ~slab_mib:8 ~buckets:64 () in
  ignore (Server.dispatch srv ~worker:0 ~now:100.0 "set s 0 30 3\r\nttl\r\n");
  Alcotest.(check string) "alive before expiry" "VALUE s 0 3\r\nttl\r\nEND\r\n"
    (Server.dispatch srv ~worker:0 ~now:129.0 "get s\r\n");
  Alcotest.(check string) "expired" "END\r\n"
    (Server.dispatch srv ~worker:0 ~now:131.0 "get s\r\n");
  (* exptime 0 = never expires *)
  ignore (Server.dispatch srv ~worker:0 ~now:0.0 "set e 0 0 1\r\nx\r\n");
  Alcotest.(check string) "no expiry" "VALUE e 0 1\r\nx\r\nEND\r\n"
    (Server.dispatch srv ~worker:0 ~now:1e9 "get e\r\n")

let test_dispatch_lru_eviction () =
  (* a slab region of one 1 MiB slab: 64 KiB-class values fill it after
     16 items; further sets must evict the least-recently-used *)
  let srv = Server.create ~mode:Server.Baseline ~workers:1 ~slab_mib:1 ~buckets:64 () in
  let payload = String.make 40_000 'p' in
  for i = 0 to 19 do
    let r =
      Server.dispatch srv ~worker:0 ~now:0.0
        (Printf.sprintf "set big%d 0 0 %d\r\n%s\r\n" i (String.length payload) payload)
    in
    Alcotest.(check string) (Printf.sprintf "set %d stored" i) "STORED\r\n" r
  done;
  Alcotest.(check bool) "evictions happened" true (Server.items_evicted srv > 0);
  (* oldest items gone, newest alive *)
  Alcotest.(check string) "big0 evicted" "END\r\n"
    (Server.dispatch srv ~worker:0 ~now:0.0 "get big0\r\n");
  Alcotest.(check bool) "big19 alive" true
    (String.length (Server.dispatch srv ~worker:0 ~now:0.0 "get big19\r\n") > 10)

let test_dispatch_stats () =
  let srv = Server.create ~mode:Server.Domain ~workers:1 ~slab_mib:8 ~buckets:64 () in
  ignore (Server.dispatch srv ~worker:0 ~now:0.0 "set k 0 0 1\r\nv\r\n");
  let reply = Server.dispatch srv ~worker:0 ~now:0.0 "stats\r\n" in
  match Protocol.parse_response reply with
  | Ok (Protocol.Stats_reply kvs) ->
      Alcotest.(check (option string)) "curr_items" (Some "1") (List.assoc_opt "curr_items" kvs);
      Alcotest.(check (option string)) "mode" (Some "mpk_begin") (List.assoc_opt "mode" kvs)
  | Ok _ | Error _ -> Alcotest.fail "bad stats reply"

let test_dispatch_protected_isolation_intact () =
  (* the protocol front end must not leave the store unlocked *)
  let srv = Server.create ~mode:Server.Domain ~workers:2 ~slab_mib:8 ~buckets:64 () in
  ignore (Server.dispatch srv ~worker:0 ~now:0.0 "set k 0 0 6\r\nsecret\r\n");
  let attacker = Server.attacker_task srv in
  match
    Mmu.read_bytes (Proc.mmu (Server.proc srv)) (Task.core attacker)
      ~addr:(Server.slab_base srv) ~len:64
  with
  | exception Signal.Killed _ -> ()
  | _ -> Alcotest.fail "slab readable after a protocol request"

let test_dispatch_survives_buggy_request () =
  (* a pkey fault inside one request becomes a SERVER_ERROR response; the
     worker answers the next request as if nothing happened *)
  let srv = Server.create ~mode:Server.Domain ~workers:1 ~slab_mib:8 ~buckets:64 () in
  let d = Server.dispatch srv ~worker:0 ~now:0.0 in
  Alcotest.(check string) "set" "STORED\r\n" (d "set k 0 0 5\r\nhello\r\n");
  let reply = Server.buggy_peek srv ~worker:0 ~addr:(Server.slab_base srv) in
  Alcotest.(check bool)
    (Printf.sprintf "buggy request -> SERVER_ERROR (%S)" reply)
    true
    (String.length reply >= 12 && String.sub reply 0 12 = "SERVER_ERROR");
  Alcotest.(check string) "next request still served" "VALUE k 0 5\r\nhello\r\nEND\r\n"
    (d "get k\r\n");
  (* in Baseline there is no key on the slab: the planted bug leaks *)
  let srv = Server.create ~mode:Server.Baseline ~workers:1 ~slab_mib:8 ~buckets:64 () in
  let reply = Server.buggy_peek srv ~worker:0 ~addr:(Server.slab_base srv) in
  Alcotest.(check bool) "baseline leaks instead" true
    (String.length reply >= 5 && String.sub reply 0 5 = "VALUE")

let test_set_enospc_is_server_error () =
  (* the raw Server.set path (no LRU reclaim) surfaces slab exhaustion as
     a typed ENOSPC, not an exception; the store keeps serving reads *)
  let srv = Server.create ~mode:Server.Domain ~workers:1 ~slab_mib:1 ~buckets:64 () in
  let value = Bytes.make 60_000 'x' in  (* 64 KiB class: 16 chunks per 1 MiB slab *)
  let enospc = ref 0 in
  for i = 0 to 19 do
    match Server.set srv ~worker:0 ~key:(Printf.sprintf "k%d" i) ~value with
    | Ok () -> ()
    | Error Errno.ENOSPC -> incr enospc
    | Error e -> Alcotest.failf "expected ENOSPC, got %s" (Errno.to_string e)
  done;
  Alcotest.(check bool) "exhaustion reported as ENOSPC" true (!enospc > 0);
  Alcotest.(check bool) "earlier items still served" true
    (Server.get srv ~worker:0 ~key:"k0" <> None)

(* --- Loadgen --- *)

let test_loadgen_baseline_keeps_up () =
  let srv = Server.create ~mode:Server.Baseline ~workers:4 ~slab_mib:16 ~buckets:1024 () in
  Server.prefill srv ~items:200 ~value_size:512;
  let r = Loadgen.run srv ~conn_rate:500 ~duration_s:0.2 ~working_set:200 () in
  Alcotest.(check int) "no drops" 0 r.Loadgen.unhandled_conns;
  Alcotest.(check int) "all requests served" (r.Loadgen.handled_conns * 10) r.Loadgen.requests

let test_loadgen_mprotect_drops_when_populated () =
  (* Fig 14: with the region populated, per-request mprotect makes the
     server fall behind and drop connections. *)
  let srv = Server.create ~mode:Server.Mprotect_sys ~workers:4 ~slab_mib:256 ~buckets:1024 () in
  Server.prefill srv ~items:200 ~value_size:512;
  Server.populate_slab srv ~mib:256;
  let r = Loadgen.run srv ~conn_rate:1000 ~duration_s:0.2 ~working_set:200 () in
  Alcotest.(check bool)
    (Printf.sprintf "drops connections (%d unhandled)" r.Loadgen.unhandled_conns)
    true (r.Loadgen.unhandled_conns > 0)

let test_loadgen_protocol_path () =
  let srv = Server.create ~mode:Server.Domain ~workers:4 ~slab_mib:16 ~buckets:1024 () in
  (* prefill through the protocol so items carry the wire-format header *)
  for i = 0 to 199 do
    let wire =
      Protocol.render_request
        (Protocol.Set { key = Printf.sprintf "key-%d" i; flags = 0; exptime = 0; data = Bytes.make 512 'v' })
    in
    ignore (Server.dispatch srv ~worker:(i mod 4) ~now:0.0 wire)
  done;
  let r = Loadgen.run srv ~conn_rate:500 ~duration_s:0.1 ~working_set:200 ~protocol:true () in
  Alcotest.(check int) "no drops" 0 r.Loadgen.unhandled_conns;
  Alcotest.(check bool) "data flowed" true (r.Loadgen.data_bytes > 0);
  Alcotest.(check int) "all requests" (r.Loadgen.handled_conns * 10) r.Loadgen.requests

let test_loadgen_mpk_outperforms_mprotect () =
  (* Fig 14's headline: with ~1 GiB populated, mpk_mprotect beats
     mprotect by several x on achieved throughput. *)
  let throughput mode =
    let srv = Server.create ~mode ~workers:4 ~slab_mib:1024 ~buckets:1024 () in
    Server.prefill srv ~items:200 ~value_size:512;
    Server.populate_slab srv ~mib:1024;
    let r = Loadgen.run srv ~conn_rate:1000 ~duration_s:0.1 ~working_set:200 () in
    r.Loadgen.data_mb_s
  in
  let sync = throughput Server.Sync in
  let mprotect = throughput Server.Mprotect_sys in
  Alcotest.(check bool)
    (Printf.sprintf "mpk_mprotect (%.1f MB/s) >> mprotect (%.1f MB/s), factor %.1f" sync
       mprotect (sync /. mprotect))
    true
    (sync > 4.0 *. mprotect)

(* --- sharding --- *)

let test_sharded_matches_model () =
  let srv =
    Server.create ~mode:Server.Sync ~workers:4 ~shards:4 ~slab_mib:16
      ~buckets:(1 lsl 10) ()
  in
  Alcotest.(check int) "four shards" 4 (Server.shard_count srv);
  let model = Hashtbl.create 64 in
  let prng = Mpk_util.Prng.create ~seed:7L in
  for i = 0 to 499 do
    let key = Printf.sprintf "key-%d" (Mpk_util.Prng.int prng 120) in
    let worker = Server.shard_of_key srv key in
    match Mpk_util.Prng.int prng 3 with
    | 0 | 1 -> (
        let value = Bytes.of_string (Printf.sprintf "v%d" i) in
        match Server.set srv ~worker ~key ~value with
        | Ok () -> Hashtbl.replace model key (Bytes.to_string value)
        | Error _ -> Alcotest.fail "unexpected ENOSPC")
    | _ ->
        let got = Server.delete srv ~worker ~key in
        Alcotest.(check bool) ("delete agrees for " ^ key) (Hashtbl.mem model key) got;
        Hashtbl.remove model key
  done;
  Hashtbl.iter
    (fun key v ->
      match Server.get srv ~worker:(Server.shard_of_key srv key) ~key with
      | Some b -> Alcotest.(check string) ("get " ^ key) v (Bytes.to_string b)
      | None -> Alcotest.fail ("lost key " ^ key))
    model;
  Alcotest.(check int) "entry_count sums the shards" (Hashtbl.length model)
    (Server.entry_count srv);
  Alcotest.(check bool) "every shard slab consistent" true (Server.slab_invariants srv)

let test_shard_routing_stable () =
  let srv =
    Server.create ~mode:Server.Baseline ~workers:3 ~shards:3 ~slab_mib:8
      ~buckets:(1 lsl 9) ()
  in
  let seen = Array.make 3 0 in
  for i = 0 to 299 do
    let key = Printf.sprintf "key-%d" i in
    let s = Server.shard_of_key srv key in
    Alcotest.(check bool) "in range" true (s >= 0 && s < 3);
    Alcotest.(check int) "stable" s (Server.shard_of_key srv key);
    seen.(s) <- seen.(s) + 1
  done;
  Array.iteri
    (fun s c ->
      Alcotest.(check bool) (Printf.sprintf "shard %d gets traffic" s) true (c > 0))
    seen

let test_sharded_sync_still_blocks_attacker () =
  (* Sharding carves up the arenas but not the protection: the two keys
     still seal the whole regions between requests. *)
  let srv =
    Server.create ~mode:Server.Sync ~workers:4 ~shards:4 ~slab_mib:16
      ~buckets:(1 lsl 10) ()
  in
  ignore
    (Server.set srv ~worker:0 ~key:"secret" ~value:(Bytes.of_string "hunter2")
      : (unit, _) result);
  let attacker = Server.attacker_task srv in
  match
    Mmu.read_bytes (Proc.mmu (Server.proc srv)) (Task.core attacker)
      ~addr:(Server.slab_base srv) ~len:64
  with
  | exception Signal.Killed _ -> ()
  | _ -> Alcotest.fail "attacker read slab memory through the sharded Sync server"

(* --- scale workload --- *)

let test_run_scale_closed_loop_accounting () =
  let srv =
    Server.create ~mode:Server.Domain ~workers:2 ~shards:2 ~slab_mib:16
      ~buckets:(1 lsl 10) ()
  in
  Server.prefill srv ~items:100 ~value_size:128;
  let r =
    Loadgen.run_scale srv ~loop:(Loadgen.Closed_loop 40) ~value_size:128
      ~working_set:200 ()
  in
  Alcotest.(check int) "closed loop handles every conn" 40 r.Loadgen.s_handled_conns;
  Alcotest.(check int) "closed loop never drops" 0 r.Loadgen.s_dropped_conns;
  Alcotest.(check int) "requests = conns x reqs_per_conn" (40 * 10) r.Loadgen.s_requests;
  Alcotest.(check int) "mix adds up" r.Loadgen.s_requests
    (r.Loadgen.s_gets + r.Loadgen.s_sets);
  Alcotest.(check int) "one busy counter per worker" 2
    (Array.length r.Loadgen.per_core_busy_s);
  Alcotest.(check bool) "throughput measured" true (r.Loadgen.s_throughput_rps > 0.0);
  Alcotest.(check bool) "p99 >= p50" true (r.Loadgen.p99_cycles >= r.Loadgen.p50_cycles)

let test_run_scale_deterministic_by_seed () =
  let go seed =
    let srv =
      Server.create ~mode:Server.Sync ~workers:2 ~shards:2 ~slab_mib:16
        ~buckets:(1 lsl 10) ()
    in
    Server.prefill srv ~items:100 ~value_size:128;
    let r =
      Loadgen.run_scale srv ~loop:(Loadgen.Closed_loop 30) ~value_size:128
        ~working_set:200 ~seed ()
    in
    (r.Loadgen.s_gets, r.Loadgen.s_sets, r.Loadgen.p99_cycles, r.Loadgen.ipis)
  in
  Alcotest.(check bool) "same seed, same run" true (go 5L = go 5L)

let test_scale_report_batched_fewer_ipis () =
  Mpk_trace.Metrics.reset ();
  let report = Scale.run ~mode:Server.Sync ~cores:[ 1; 2 ] ~smoke:true () in
  Alcotest.(check (list string)) "no validation problems" [] (Scale.problems report);
  Alcotest.(check int) "one point per core count" 2 (List.length report.Scale.points);
  List.iter
    (fun (p : Scale.point) ->
      Alcotest.(check bool)
        (Printf.sprintf "cores=%d: batched (%d) < per-update (%d) Ipi events"
           p.Scale.cores p.Scale.ipi_events_batched p.Scale.ipi_events_per_update)
        true
        (p.Scale.ipi_events_batched < p.Scale.ipi_events_per_update);
      Alcotest.(check bool) "shard slabs survive the run" true p.Scale.slabs_ok;
      Alcotest.(check bool) "requests completed" true
        (p.Scale.batched.Loadgen.s_requests > 0))
    report.Scale.points;
  match Mpk_trace.Json.parse (Mpk_trace.Json.to_string (Scale.to_json report)) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("report JSON does not parse: " ^ e)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "mpk_kvstore"
    [
      ( "slab",
        [
          tc "classes" `Quick test_slab_classes;
          tc "alloc/free" `Quick test_slab_alloc_free;
          tc "class slabs" `Quick test_slab_classes_separate_slabs;
          tc "exhaustion" `Quick test_slab_exhaustion;
          tc "double free" `Quick test_slab_double_free;
          qtest slab_invariant_random;
        ] );
      ( "shash",
        [
          tc "set/get" `Quick test_hash_set_get;
          tc "overwrite" `Quick test_hash_overwrite;
          tc "delete" `Quick test_hash_delete;
          tc "collisions" `Quick test_hash_collisions;
          qtest hash_model_property;
        ] );
      ( "protection",
        [
          tc "all modes work" `Quick test_all_modes_work;
          tc "domain blocks attacker" `Quick test_domain_blocks_attacker;
          tc "sync blocks attacker" `Quick test_sync_blocks_attacker_between_requests;
          tc "mprotect blocks attacker" `Quick test_mprotect_blocks_attacker_between_requests;
          tc "baseline attacker succeeds" `Quick test_baseline_attacker_succeeds;
          tc "populate slab" `Quick test_populate_slab;
        ] );
      ( "protocol",
        [
          tc "parse set" `Quick test_protocol_parse_set;
          tc "parse errors" `Quick test_protocol_parse_errors;
          qtest protocol_roundtrip;
          tc "dispatch set/get/delete" `Quick test_dispatch_set_get_delete;
          tc "ttl" `Quick test_dispatch_ttl;
          tc "lru eviction" `Quick test_dispatch_lru_eviction;
          tc "stats" `Quick test_dispatch_stats;
          tc "isolation intact" `Quick test_dispatch_protected_isolation_intact;
          tc "survives buggy request" `Quick test_dispatch_survives_buggy_request;
          tc "ENOSPC -> SERVER_ERROR" `Quick test_set_enospc_is_server_error;
        ] );
      ( "loadgen",
        [
          tc "baseline keeps up" `Quick test_loadgen_baseline_keeps_up;
          tc "protocol path" `Quick test_loadgen_protocol_path;
          tc "mprotect drops" `Quick test_loadgen_mprotect_drops_when_populated;
          tc "mpk beats mprotect" `Quick test_loadgen_mpk_outperforms_mprotect;
        ] );
      ( "sharding",
        [
          tc "matches model" `Quick test_sharded_matches_model;
          tc "routing stable" `Quick test_shard_routing_stable;
          tc "still blocks attacker" `Quick test_sharded_sync_still_blocks_attacker;
        ] );
      ( "scale",
        [
          tc "closed-loop accounting" `Quick test_run_scale_closed_loop_accounting;
          tc "deterministic by seed" `Quick test_run_scale_deterministic_by_seed;
          tc "batched fewer IPIs" `Quick test_scale_report_batched_fewer_ipis;
        ] );
    ]
