(* Tests for mpk_crypto: bignum arithmetic (incl. properties against
   OCaml's native ints), SHA-256/ChaCha20/HMAC known-answer vectors, RSA
   roundtrips. *)

open Mpk_crypto

let qtest = QCheck_alcotest.to_alcotest

let prng () = Mpk_util.Prng.create ~seed:0xBEEFL

(* --- Bignum --- *)

let big = Alcotest.testable Bignum.pp Bignum.equal

let test_bignum_of_to_int () =
  List.iter
    (fun n ->
      Alcotest.(check (option int)) (string_of_int n) (Some n) (Bignum.to_int (Bignum.of_int n)))
    [ 0; 1; 2; 255; 256; 67108863; 67108864; 1 lsl 40; max_int / 2 ]

let test_bignum_compare () =
  Alcotest.(check bool) "0 < 1" true (Bignum.compare Bignum.zero Bignum.one < 0);
  Alcotest.(check bool) "big > small" true
    (Bignum.compare (Bignum.of_int 1000000) (Bignum.of_int 999999) > 0);
  Alcotest.(check bool) "equal" true (Bignum.equal (Bignum.of_int 42) (Bignum.of_int 42))

let arith_props =
  let gen = QCheck.(pair (int_bound 1_000_000_000) (int_bound 1_000_000_000)) in
  [
    QCheck.Test.make ~name:"add matches int" ~count:500 gen (fun (a, b) ->
        Bignum.to_int (Bignum.add (Bignum.of_int a) (Bignum.of_int b)) = Some (a + b));
    QCheck.Test.make ~name:"sub matches int" ~count:500 gen (fun (a, b) ->
        let hi = max a b and lo = min a b in
        Bignum.to_int (Bignum.sub (Bignum.of_int hi) (Bignum.of_int lo)) = Some (hi - lo));
    QCheck.Test.make ~name:"mul matches int" ~count:500
      QCheck.(pair (int_bound 1_000_000) (int_bound 1_000_000))
      (fun (a, b) ->
        Bignum.to_int (Bignum.mul (Bignum.of_int a) (Bignum.of_int b)) = Some (a * b));
    QCheck.Test.make ~name:"divmod matches int" ~count:500 gen (fun (a, b) ->
        QCheck.assume (b > 0);
        let q, r = Bignum.divmod (Bignum.of_int a) (Bignum.of_int b) in
        Bignum.to_int q = Some (a / b) && Bignum.to_int r = Some (a mod b));
    QCheck.Test.make ~name:"shift roundtrip" ~count:500
      QCheck.(pair (int_bound 1_000_000_000) (int_bound 80))
      (fun (a, k) ->
        let x = Bignum.of_int a in
        Bignum.equal (Bignum.shift_right (Bignum.shift_left x k) k) x);
    QCheck.Test.make ~name:"bytes roundtrip" ~count:500 QCheck.(int_bound max_int)
      (fun a ->
        let x = Bignum.of_int a in
        Bignum.equal (Bignum.of_bytes (Bignum.to_bytes x)) x);
    QCheck.Test.make ~name:"mod_pow matches naive" ~count:200
      QCheck.(triple (int_bound 1000) (int_bound 30) (int_range 2 1000))
      (fun (b, e, m) ->
        let rec naive acc i = if i = 0 then acc else naive (acc * b mod m) (i - 1) in
        Bignum.to_int
          (Bignum.mod_pow ~base:(Bignum.of_int b) ~exp:(Bignum.of_int e)
             ~modulus:(Bignum.of_int m))
        = Some (naive 1 e));
  ]

let test_bignum_large_mul_div () =
  let p = prng () in
  let a = Bignum.random p ~bits:300 in
  let b = Bignum.random p ~bits:200 in
  let prod = Bignum.mul a b in
  let q, r = Bignum.divmod prod b in
  Alcotest.check big "(a*b)/b = a" a q;
  Alcotest.check big "(a*b) mod b = 0" Bignum.zero r

let test_bignum_sub_negative () =
  Alcotest.check_raises "negative sub" (Invalid_argument "Bignum.sub: would be negative")
    (fun () -> ignore (Bignum.sub Bignum.one Bignum.two))

let test_bignum_invmod () =
  (* 3 * 4 = 12 ≡ 1 (mod 11) *)
  (match Bignum.invmod (Bignum.of_int 3) (Bignum.of_int 11) with
  | Some x -> Alcotest.check big "3^-1 mod 11 = 4" (Bignum.of_int 4) x
  | None -> Alcotest.fail "inverse exists");
  (* gcd(4, 8) != 1: no inverse *)
  Alcotest.(check bool) "no inverse" true (Bignum.invmod (Bignum.of_int 4) (Bignum.of_int 8) = None)

let invmod_property =
  QCheck.Test.make ~name:"invmod: a * a^-1 = 1 mod m" ~count:300
    QCheck.(pair (int_range 2 100000) (int_range 2 100000))
    (fun (a, m) ->
      match Bignum.invmod (Bignum.of_int a) (Bignum.of_int m) with
      | None -> true  (* not coprime *)
      | Some inv ->
          Bignum.to_int (Bignum.rem (Bignum.mul (Bignum.of_int a) inv) (Bignum.of_int m))
          = Some 1)

let test_bignum_random_bits () =
  let p = prng () in
  for _ = 1 to 50 do
    let x = Bignum.random p ~bits:100 in
    Alcotest.(check int) "exact bit width" 100 (Bignum.bits x)
  done

let test_bignum_padded () =
  let x = Bignum.of_int 0xABCD in
  let b = Bignum.to_bytes_padded x ~len:4 in
  Alcotest.(check string) "padded" "\x00\x00\xab\xcd" (Bytes.to_string b)

(* --- SHA-256 known-answer vectors (FIPS / NIST) --- *)

let test_sha256_vectors () =
  Alcotest.(check string) "empty"
    "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.hex (Bytes.of_string ""));
  Alcotest.(check string) "abc"
    "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.hex (Bytes.of_string "abc"));
  Alcotest.(check string) "448-bit"
    "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.hex (Bytes.of_string "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))

let test_sha256_long () =
  (* one million 'a' characters, the classic NIST vector *)
  Alcotest.(check string) "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.hex (Bytes.make 1_000_000 'a'))

(* --- ChaCha20 RFC 8439 vector --- *)

let hex_to_bytes s =
  let n = String.length s / 2 in
  Bytes.init n (fun i -> Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2)))

let bytes_to_hex b =
  let buf = Buffer.create (Bytes.length b * 2) in
  Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) b;
  Buffer.contents buf

let test_chacha20_rfc_block () =
  (* RFC 8439 §2.3.2 test vector *)
  let key = hex_to_bytes "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f" in
  let nonce = hex_to_bytes "000000090000004a00000000" in
  let ks = Chacha20.block ~key ~nonce ~counter:1 in
  Alcotest.(check string) "keystream block"
    "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4ed2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
    (bytes_to_hex ks)

let test_chacha20_rfc_encrypt () =
  (* RFC 8439 §2.4.2 *)
  let key = hex_to_bytes "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f" in
  let nonce = hex_to_bytes "000000000000004a00000000" in
  let plain =
    Bytes.of_string
      "Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it."
  in
  let ct = Chacha20.crypt ~key ~nonce ~counter:1 plain in
  Alcotest.(check string) "ciphertext head" "6e2e359a2568f98041ba0728dd0d6981"
    (bytes_to_hex (Bytes.sub ct 0 16));
  Alcotest.(check string) "roundtrip" (Bytes.to_string plain)
    (Bytes.to_string (Chacha20.crypt ~key ~nonce ~counter:1 ct))

let chacha_roundtrip =
  QCheck.Test.make ~name:"chacha20 roundtrip" ~count:100 QCheck.(string_of_size (QCheck.Gen.int_bound 500))
    (fun s ->
      let key = Bytes.make 32 'k' in
      let nonce = Bytes.make 12 'n' in
      let data = Bytes.of_string s in
      Bytes.equal (Chacha20.crypt ~key ~nonce (Chacha20.crypt ~key ~nonce data)) data)

(* --- HMAC (RFC 4231 test case 2) --- *)

let test_hmac_rfc4231 () =
  let mac = Hmac.sha256 ~key:(Bytes.of_string "Jefe") (Bytes.of_string "what do ya want for nothing?") in
  Alcotest.(check string) "tc2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (bytes_to_hex mac)

let test_hmac_long_key () =
  (* keys longer than the block size are hashed first (RFC 4231 tc6) *)
  let key = Bytes.make 131 '\xaa' in
  let mac = Hmac.sha256 ~key (Bytes.of_string "Test Using Larger Than Block-Size Key - Hash Key First") in
  Alcotest.(check string) "tc6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (bytes_to_hex mac)

let test_hmac_derive_len () =
  let d = Hmac.derive ~secret:(Bytes.of_string "s") ~label:"session" ~len:50 in
  Alcotest.(check int) "length" 50 (Bytes.length d);
  let d2 = Hmac.derive ~secret:(Bytes.of_string "s") ~label:"session" ~len:50 in
  Alcotest.(check string) "deterministic" (bytes_to_hex d) (bytes_to_hex d2);
  let d3 = Hmac.derive ~secret:(Bytes.of_string "s") ~label:"other" ~len:50 in
  Alcotest.(check bool) "label matters" false (Bytes.equal d d3)

(* --- RSA --- *)

let test_miller_rabin_known () =
  let p = prng () in
  List.iter
    (fun (n, expect) ->
      Alcotest.(check bool) (string_of_int n) expect
        (Rsa.probably_prime p (Bignum.of_int n)))
    [
      2, true; 3, true; 4, false; 17, true; 561, false (* Carmichael *);
      7919, true; 7917, false; 104729, true; 104730, false;
      2147483647, true (* 2^31-1, Mersenne prime *);
    ]

let test_rsa_roundtrip () =
  let p = prng () in
  let kp = Rsa.generate p ~bits:128 in
  let msg = Bignum.of_int 123456789 in
  let ct = Rsa.encrypt kp.Rsa.public msg in
  Alcotest.(check bool) "ciphertext differs" false (Bignum.equal ct msg);
  Alcotest.check big "decrypt" msg (Rsa.decrypt kp.Rsa.secret ct)

let test_rsa_bytes_roundtrip () =
  let p = prng () in
  let kp = Rsa.generate p ~bits:128 in
  let msg = Bytes.of_string "premaster" in
  let ct = Rsa.encrypt_bytes kp.Rsa.public msg in
  Alcotest.(check string) "roundtrip" "premaster"
    (Bytes.to_string (Rsa.decrypt_bytes kp.Rsa.secret ct))

let test_rsa_sign_verify () =
  let p = prng () in
  let kp = Rsa.generate p ~bits:128 in
  let msg = Bytes.of_string "handshake transcript" in
  let signature = Rsa.sign kp.Rsa.secret msg in
  Alcotest.(check bool) "verifies" true (Rsa.verify kp.Rsa.public ~msg ~signature);
  Alcotest.(check bool) "tampered message fails" false
    (Rsa.verify kp.Rsa.public ~msg:(Bytes.of_string "handshake transcripT") ~signature);
  let bad = Bytes.copy signature in
  Bytes.set bad (Bytes.length bad - 1)
    (Char.chr (Char.code (Bytes.get bad (Bytes.length bad - 1)) lxor 1));
  Alcotest.(check bool) "tampered signature fails" false
    (Rsa.verify kp.Rsa.public ~msg ~signature:bad)

let test_rsa_sign_wrong_key () =
  let p = prng () in
  let k1 = Rsa.generate p ~bits:128 in
  let k2 = Rsa.generate p ~bits:128 in
  let msg = Bytes.of_string "m" in
  let signature = Rsa.sign k1.Rsa.secret msg in
  Alcotest.(check bool) "other key rejects" false (Rsa.verify k2.Rsa.public ~msg ~signature)

let test_rsa_distinct_keys () =
  let p = prng () in
  let k1 = Rsa.generate p ~bits:96 in
  let k2 = Rsa.generate p ~bits:96 in
  Alcotest.(check bool) "moduli differ" false
    (Bignum.equal k1.Rsa.public.Rsa.n k2.Rsa.public.Rsa.n);
  (* decrypting with the wrong key garbles *)
  let msg = Bignum.of_int 424242 in
  let ct = Rsa.encrypt k1.Rsa.public msg in
  let wrong = Rsa.decrypt k2.Rsa.secret (Bignum.rem ct k2.Rsa.secret.Rsa.n) in
  Alcotest.(check bool) "wrong key fails" false (Bignum.equal wrong msg)

(* --- Aead (encrypt-then-MAC, the core-dump sealer) --- *)

let aead_key = Bytes.init 32 Char.chr
let aead_nonce = Bytes.init 12 Char.chr
let aead_aad = Bytes.of_string "mpk-core|kat"

(* Known answer computed with an independent implementation of the
   construction (ChaCha20 + HKDF-style derive + HMAC-SHA256 over the
   length-prefixed aad/nonce/ciphertext concatenation). *)
let test_aead_kat () =
  let ct, tag = Aead.seal ~key:aead_key ~nonce:aead_nonce ~aad:aead_aad
      (Bytes.of_string "attack at dawn")
  in
  Alcotest.(check string) "ciphertext" "c6799860edb0bda9d08a336c0767" (Mpk_util.Hex.encode ct);
  Alcotest.(check string) "tag"
    "cb83371f0f73f989e2efcf963f25535d2ae72beef05b45ba882d663210ba5e1e"
    (Mpk_util.Hex.encode tag)

let test_aead_roundtrip () =
  List.iter
    (fun len ->
      let pt = Bytes.init len (fun i -> Char.chr ((i * 7 + len) land 0xff)) in
      let ct, tag = Aead.seal ~key:aead_key ~nonce:aead_nonce ~aad:aead_aad pt in
      if len > 0 then
        Alcotest.(check bool) "ciphertext differs" false (Bytes.equal ct pt);
      match Aead.open_ ~key:aead_key ~nonce:aead_nonce ~aad:aead_aad ~tag ct with
      | Ok pt' -> Alcotest.(check bool) (Printf.sprintf "len %d" len) true (Bytes.equal pt pt')
      | Error e -> Alcotest.fail e)
    [ 0; 1; 63; 64; 65; 4096 ]

let expect_reject name ~nonce ~aad ~tag ct =
  (match Aead.open_ ~key:aead_key ~nonce ~aad ~tag ct with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "%s: forgery accepted" name);
  Alcotest.(check bool) name false (Aead.verify ~key:aead_key ~nonce ~aad ~tag ct)

let test_aead_tamper () =
  let pt = Bytes.of_string "protected page bytes" in
  let ct, tag = Aead.seal ~key:aead_key ~nonce:aead_nonce ~aad:aead_aad pt in
  (* flipped ciphertext bit *)
  let ct' = Bytes.copy ct in
  Bytes.set ct' 3 (Char.chr (Char.code (Bytes.get ct' 3) lxor 0x10));
  expect_reject "flipped ct bit" ~nonce:aead_nonce ~aad:aead_aad ~tag ct';
  (* swapped nonce *)
  let nonce' = Bytes.init 12 (fun i -> Char.chr (11 - i)) in
  expect_reject "swapped nonce" ~nonce:nonce' ~aad:aead_aad ~tag ct;
  (* truncated tag *)
  expect_reject "truncated tag" ~nonce:aead_nonce ~aad:aead_aad
    ~tag:(Bytes.sub tag 0 16) ct;
  (* altered aad *)
  expect_reject "altered aad" ~nonce:aead_nonce ~aad:(Bytes.of_string "mpk-core|kat2") ~tag ct;
  (* flipped tag bit *)
  let tag' = Bytes.copy tag in
  Bytes.set tag' 0 (Char.chr (Char.code (Bytes.get tag' 0) lxor 1));
  expect_reject "flipped tag bit" ~nonce:aead_nonce ~aad:aead_aad ~tag:tag' ct

let test_aead_wrong_key () =
  let pt = Bytes.of_string "secret" in
  let ct, tag = Aead.seal ~key:aead_key ~nonce:aead_nonce ~aad:aead_aad pt in
  let key' = Bytes.init 32 (fun i -> Char.chr (i + 1)) in
  match Aead.open_ ~key:key' ~nonce:aead_nonce ~aad:aead_aad ~tag ct with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong key accepted"

let test_aead_sizes () =
  Alcotest.check_raises "short key" (Invalid_argument "Aead: key must be 32 bytes")
    (fun () -> ignore (Aead.seal ~key:(Bytes.create 16) ~nonce:aead_nonce ~aad:aead_aad Bytes.empty));
  Alcotest.check_raises "short nonce" (Invalid_argument "Aead: nonce must be 12 bytes")
    (fun () -> ignore (Aead.seal ~key:aead_key ~nonce:(Bytes.create 8) ~aad:aead_aad Bytes.empty))

let aead_roundtrip_prop =
  QCheck.Test.make ~name:"aead seal/open roundtrip" ~count:200
    QCheck.(string_of_size (Gen.int_bound 300))
    (fun s ->
      let pt = Bytes.of_string s in
      let ct, tag = Aead.seal ~key:aead_key ~nonce:aead_nonce ~aad:aead_aad pt in
      match Aead.open_ ~key:aead_key ~nonce:aead_nonce ~aad:aead_aad ~tag ct with
      | Ok pt' -> Bytes.equal pt pt'
      | Error _ -> false)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "mpk_crypto"
    [
      ( "bignum",
        [
          tc "of/to int" `Quick test_bignum_of_to_int;
          tc "compare" `Quick test_bignum_compare;
          tc "large mul/div" `Quick test_bignum_large_mul_div;
          tc "sub negative" `Quick test_bignum_sub_negative;
          tc "invmod" `Quick test_bignum_invmod;
          tc "random bits" `Quick test_bignum_random_bits;
          tc "padded bytes" `Quick test_bignum_padded;
          qtest invmod_property;
        ]
        @ List.map qtest arith_props );
      ( "sha256",
        [ tc "vectors" `Quick test_sha256_vectors; tc "million a" `Slow test_sha256_long ] );
      ( "chacha20",
        [
          tc "rfc block" `Quick test_chacha20_rfc_block;
          tc "rfc encrypt" `Quick test_chacha20_rfc_encrypt;
          qtest chacha_roundtrip;
        ] );
      ( "hmac",
        [
          tc "rfc4231 tc2" `Quick test_hmac_rfc4231;
          tc "long key" `Quick test_hmac_long_key;
          tc "derive" `Quick test_hmac_derive_len;
        ] );
      ( "aead",
        [
          tc "known answer" `Quick test_aead_kat;
          tc "roundtrip" `Quick test_aead_roundtrip;
          tc "tamper detection" `Quick test_aead_tamper;
          tc "wrong key" `Quick test_aead_wrong_key;
          tc "size validation" `Quick test_aead_sizes;
          qtest aead_roundtrip_prop;
        ] );
      ( "rsa",
        [
          tc "miller-rabin" `Quick test_miller_rabin_known;
          tc "roundtrip" `Quick test_rsa_roundtrip;
          tc "bytes roundtrip" `Quick test_rsa_bytes_roundtrip;
          tc "sign/verify" `Quick test_rsa_sign_verify;
          tc "sign wrong key" `Quick test_rsa_sign_wrong_key;
          tc "distinct keys" `Quick test_rsa_distinct_keys;
        ] );
    ]
