(* Tests for mpk_coredump: capture classification, redaction/encryption
   policies, the sentinel no-leak guarantee, serialization round-trips,
   tamper evidence, keyed decryption, determinism, and graceful failure
   of capture itself. *)

open Mpk_kernel
module Dump = Mpk_coredump.Dump
module Capture = Mpk_coredump.Capture
module Inspect = Mpk_coredump.Inspect

let sentinel = "SENTINEL-TLS-PRIVATE-KEY-0xDEADBEEF"
let page = Mpk_hw.Physmem.page_size

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i <= h - n && (String.sub hay i n = needle || at (i + 1)) in
  n = 0 || at 0

(* The canonical crash scenario: a Protected keystore holding the
   sentinel in a pkey-tagged page, one ordinary page with a clear
   marker, then a PKRU-denied read that kills the task. *)
let scenario ?(crash = true) () =
  Mpk_faultinj.reset ();
  Mpk_trace.Tracer.clear ();
  Mpk_trace.Tracer.enable ();
  Signal.clear_last_crash ();
  let machine = Mpk_hw.Machine.create ~cores:2 ~mem_mib:64 () in
  let proc = Proc.create machine in
  let task = Proc.spawn proc ~core_id:0 () in
  let mpk = Libmpk.init ~evict_rate:1.0 proc task in
  let ks = Mpk_secstore.Keystore.create ~mode:Mpk_secstore.Keystore.Protected proc task ~mpk () in
  let secret_addr = Mpk_secstore.Keystore.store_opaque ks task (Bytes.of_string sentinel) in
  let clear_addr = Syscall.mmap proc task ~len:page ~prot:Mpk_hw.Perm.rw () in
  Mpk_hw.Mmu.write_bytes (Proc.mmu proc) (Task.core task) ~addr:clear_addr
    (Bytes.of_string "coredump-clear-page-marker");
  if crash then (
    try ignore (Mpk_hw.Mmu.read_byte (Proc.mmu proc) (Task.core task) ~addr:secret_addr)
    with Signal.Killed _ -> ());
  (proc, task, mpk, secret_addr, clear_addr)

let capture ?(policy = Dump.Redact) ?(seed = 1L) (proc, task, mpk, _, _) =
  let key = Capture.default_key ~seed in
  match Capture.capture ~proc ~task ~mpk ~key ~seed ~policy () with
  | Ok d -> (d, key)
  | Error e -> Alcotest.fail e

let find_protected d =
  match
    List.find_opt (fun (s : Dump.section) -> s.Dump.sealed <> Dump.Clear) d.Dump.sections
  with
  | Some s -> s
  | None -> Alcotest.fail "no protected section in dump"

(* --- capture + classification --- *)

let test_classification () =
  let sc = scenario () in
  let d, _ = capture sc in
  let _, _, _, secret_addr, clear_addr = sc in
  let prot = find_protected d in
  Alcotest.(check int) "protected section at the keystore page" secret_addr prot.Dump.base;
  Alcotest.(check int) "tagged with a nonzero pkey" 1 prot.Dump.pkey;
  Alcotest.(check (option int)) "attributed to the keystore vkey"
    (Some Mpk_secstore.Keystore.vkey) prot.Dump.vkey;
  match
    List.find_opt (fun (s : Dump.section) -> s.Dump.base = clear_addr) d.Dump.sections
  with
  | Some s ->
      Alcotest.(check bool) "clear page stays clear" true (s.Dump.sealed = Dump.Clear);
      Alcotest.(check int) "clear payload is the whole page" page
        (Bytes.length s.Dump.payload)
  | None -> Alcotest.fail "clear page missing from dump"

let test_redact_leaves_marker_only () =
  let d, _ = capture (scenario ()) in
  let s = find_protected d in
  (match s.Dump.sealed with
  | Dump.Redacted m -> Alcotest.(check string) "marker" "REDACTED:1" m
  | _ -> Alcotest.fail "expected a redacted section");
  Alcotest.(check int) "no payload bytes" 0 (Bytes.length s.Dump.payload)

let test_siginfo_recorded () =
  let sc = scenario () in
  let d, _ = capture sc in
  let _, _, _, secret_addr, _ = sc in
  match d.Dump.siginfo with
  | None -> Alcotest.fail "crash capture lost its siginfo"
  | Some si ->
      Alcotest.(check int) "SIGSEGV" 11 si.Dump.signo;
      Alcotest.(check string) "pkey fault" "SEGV_PKUERR" si.Dump.code;
      Alcotest.(check int) "faulting address" secret_addr si.Dump.addr;
      Alcotest.(check int) "offending pkey" 1 si.Dump.pkey

let test_killed_carries_blackbox () =
  let sc = scenario () in
  (match Signal.last_crash () with
  | None -> Alcotest.fail "default kill did not record a crash"
  | Some c ->
      Alcotest.(check bool) "black box nonempty" true (c.Signal.blackbox <> []);
      Alcotest.(check bool) "bounded by depth" true
        (List.length c.Signal.blackbox <= Signal.blackbox_depth);
      let d, _ = capture sc in
      Alcotest.(check (list string)) "dump embeds the kill-time black box"
        c.Signal.blackbox d.Dump.blackbox);
  Mpk_trace.Tracer.disable ()

(* --- the no-leak guarantee --- *)

let test_sentinel_absent_redact () =
  let d, _ = capture ~policy:Dump.Redact (scenario ()) in
  Alcotest.(check (list string)) "no hits" [] (Dump.scan ~sentinel (Dump.to_string d))

let test_sentinel_absent_encrypt () =
  let d, _ = capture ~policy:Dump.Encrypt (scenario ()) in
  Alcotest.(check (list string)) "no hits" [] (Dump.scan ~sentinel (Dump.to_string d))

let test_sentinel_found_under_none () =
  let d, _ = capture ~policy:Dump.Clear_debug (scenario ()) in
  match Dump.scan ~sentinel (Dump.to_string d) with
  | [] -> Alcotest.fail "scanner missed a deliberate leak"
  | _ :: _ -> ()

(* --- serialization + integrity --- *)

let test_json_roundtrip () =
  let d, _ = capture ~policy:Dump.Encrypt (scenario ()) in
  let s = Dump.to_string d in
  match Dump.of_string s with
  | Error e -> Alcotest.fail e
  | Ok d' ->
      Alcotest.(check string) "reserializes identically" s (Dump.to_string d');
      Alcotest.(check (list string)) "verifies clean" [] (Dump.verify d')

let test_verify_detects_tamper () =
  let d, _ = capture ~policy:Dump.Encrypt (scenario ()) in
  (* metadata tamper: move a section *)
  let sections =
    List.map
      (fun (s : Dump.section) ->
        if s.Dump.sealed = Dump.Clear then s else { s with Dump.base = s.Dump.base + page })
      d.Dump.sections
  in
  Alcotest.(check bool) "moved section fails verify" true
    (Dump.verify { d with Dump.sections } <> []);
  (* payload tamper *)
  let sections =
    List.map
      (fun (s : Dump.section) ->
        match s.Dump.sealed with
        | Dump.Encrypted _ ->
            let p = Bytes.copy s.Dump.payload in
            Bytes.set p 0 (Char.chr (Char.code (Bytes.get p 0) lxor 1));
            { s with Dump.payload = p }
        | _ -> s)
      d.Dump.sections
  in
  Alcotest.(check bool) "flipped ciphertext bit fails verify" true
    (Dump.verify { d with Dump.sections } <> []);
  (* marker tamper on a redacted dump *)
  let r, _ = capture ~policy:Dump.Redact (scenario ()) in
  let sections =
    List.map
      (fun (s : Dump.section) ->
        match s.Dump.sealed with
        | Dump.Redacted _ -> { s with Dump.sealed = Dump.Redacted "REDACTED:7" }
        | _ -> s)
      r.Dump.sections
  in
  Alcotest.(check bool) "forged marker fails verify" true
    (Dump.verify { r with Dump.sections } <> [])

let test_decrypt_roundtrip () =
  let sc = scenario () in
  let d, key = capture ~policy:Dump.Encrypt sc in
  let s = find_protected d in
  match Dump.open_section ~key d s with
  | Error e -> Alcotest.fail e
  | Ok plaintext ->
      Alcotest.(check int) "full page run" (s.Dump.pages * page) (Bytes.length plaintext);
      Alcotest.(check bool) "original bytes recovered" true
        (contains ~needle:sentinel (Bytes.to_string plaintext))

let test_wrong_key_rejected () =
  let d, _ = capture ~policy:Dump.Encrypt (scenario ()) in
  let s = find_protected d in
  let wrong = Capture.default_key ~seed:999L in
  match Dump.open_section ~key:wrong d s with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "decryption with the wrong key succeeded"

let test_redacted_section_unopenable () =
  let d, key = capture ~policy:Dump.Redact (scenario ()) in
  match Dump.open_section ~key d (find_protected d) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "redacted section yielded bytes"

let test_determinism () =
  let run () = Dump.to_string (fst (capture ~policy:Dump.Redact ~seed:42L (scenario ()))) in
  let a = run () and b = run () in
  Alcotest.(check string) "byte-identical dumps" a b;
  let enc () = Dump.to_string (fst (capture ~policy:Dump.Encrypt ~seed:42L (scenario ()))) in
  Alcotest.(check string) "byte-identical under encrypt too" (enc ()) (enc ())

(* --- inspection --- *)

let test_inspect_clean_and_silent () =
  let d, key = capture ~policy:Dump.Encrypt (scenario ()) in
  match Inspect.run ~key (Dump.to_string d) with
  | Error e -> Alcotest.fail e
  | Ok o ->
      Alcotest.(check (list string)) "no failures" [] o.Inspect.failures;
      Alcotest.(check bool) "report never prints protected plaintext" false
        (contains ~needle:sentinel o.Inspect.report)

let test_inspect_flags_leak_and_garbage () =
  let d, _ = capture ~policy:Dump.Clear_debug (scenario ()) in
  (match Inspect.run (Dump.to_string d) with
  | Error e -> Alcotest.fail e
  | Ok o ->
      Alcotest.(check bool) "policy-none dump is reported as a failure" true
        (o.Inspect.failures <> []));
  match Inspect.run "not json at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage parsed as a dump"

let test_capture_faultpoint () =
  let sc = scenario () in
  Mpk_faultinj.arm Capture.fault_point (Mpk_faultinj.Once 0);
  let proc, task, mpk, _, _ = sc in
  let key = Capture.default_key ~seed:1L in
  (match Capture.capture ~proc ~task ~mpk ~key ~seed:1L ~policy:Dump.Redact () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "armed coredump.capture did not fail");
  Mpk_faultinj.disarm Capture.fault_point;
  match Capture.capture ~proc ~task ~mpk ~key ~seed:1L ~policy:Dump.Redact () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "disarmed capture still failing: %s" e

let test_filename_and_profile () =
  let sc = scenario () in
  Mpk_trace.Prof.reset ();
  Mpk_trace.Prof.enable ();
  let d, _ = capture ~seed:7L sc in
  Mpk_trace.Prof.disable ();
  Alcotest.(check string) "filename" "CORE_t0_s7.json" (Dump.filename d);
  Alcotest.(check bool) "profile embedded while profiling" true (d.Dump.profile <> None);
  let d2, _ = capture ~seed:7L sc in
  Alcotest.(check bool) "no profile when disabled" true (d2.Dump.profile = None)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "mpk_coredump"
    [
      ( "capture",
        [
          tc "classification by pkey + group" `Quick test_classification;
          tc "redact leaves marker only" `Quick test_redact_leaves_marker_only;
          tc "siginfo recorded" `Quick test_siginfo_recorded;
          tc "kill carries black box" `Quick test_killed_carries_blackbox;
          tc "capture faultpoint degrades gracefully" `Quick test_capture_faultpoint;
          tc "filename + profile embedding" `Quick test_filename_and_profile;
        ] );
      ( "no-leak",
        [
          tc "sentinel absent under redact" `Quick test_sentinel_absent_redact;
          tc "sentinel absent under encrypt" `Quick test_sentinel_absent_encrypt;
          tc "sentinel found under policy none" `Quick test_sentinel_found_under_none;
        ] );
      ( "format",
        [
          tc "json roundtrip + clean verify" `Quick test_json_roundtrip;
          tc "verify detects tamper" `Quick test_verify_detects_tamper;
          tc "determinism: same seed, same bytes" `Quick test_determinism;
        ] );
      ( "keys",
        [
          tc "decrypt roundtrips the page bytes" `Quick test_decrypt_roundtrip;
          tc "wrong key rejected" `Quick test_wrong_key_rejected;
          tc "redacted sections cannot be opened" `Quick test_redacted_section_unopenable;
        ] );
      ( "inspect",
        [
          tc "clean report, no plaintext" `Quick test_inspect_clean_and_silent;
          tc "flags leaks and garbage" `Quick test_inspect_flags_leak_and_garbage;
        ] );
    ]
