(* Tests for the deterministic interleaving torture harness
   (Mpk_check.Torture) and the lockdep validator (Mpk_check.Lockdep):
   runs must be pure functions of (seed, schedule), the planted bugs
   must be found within a bounded budget, and the clean protocol must
   survive the sweep with zero findings. *)

open Mpk_kernel
module Torture = Mpk_check.Torture
module Lockdep = Mpk_check.Lockdep

let cfg = Torture.default_config

(* Sweep parameters known to find the planted recycle race at seed 2
   within ~20 runs; the bounded budget of the "harness finds the bug"
   guarantee. *)
let sweep_budget c = Torture.sweep ~entries:48 ~rounds:16 ~seeds:8 c

let outcome_fingerprint (o : Torture.outcome) =
  Printf.sprintf "ok=%b reason=%s ops=%d benign=%d points=%d cycles=%h log=%s"
    o.Torture.ok
    (Option.value o.Torture.reason ~default:"-")
    o.Torture.ops_applied o.Torture.benign o.Torture.points o.Torture.cycles
    (String.concat "|" o.Torture.log)

(* --- determinism: same (seed, schedule) ⇒ byte-identical outcome --- *)

let test_run_once_deterministic () =
  let schedule = [ (10, 1); (25, 3); (40, 0); (90, 2) ] in
  let a = Torture.run_once cfg ~schedule () in
  let b = Torture.run_once cfg ~schedule () in
  Alcotest.(check string)
    "identical outcome" (outcome_fingerprint a) (outcome_fingerprint b);
  Alcotest.(check bool) "clean protocol survives the schedule" true a.Torture.ok

let test_sweep_deterministic () =
  let c = { cfg with Torture.plant = Torture.Plant_recycle } in
  let fingerprint (r : Torture.sweep_result) =
    match r.Torture.failure with
    | None -> "clean"
    | Some f ->
        Printf.sprintf "%s / %s / %s"
          (Torture.schedule_to_string f.Torture.schedule)
          (Torture.schedule_to_string f.Torture.shrunk)
          f.Torture.reason
  in
  let a = sweep_budget c in
  let b = sweep_budget c in
  Alcotest.(check string)
    "same sweep twice: identical schedule, shrunk trace, and verdict"
    (fingerprint a) (fingerprint b);
  Alcotest.(check bool) "the sweep did fail" true (a.Torture.failure <> None)

(* Tracing must observe, not perturb: cycle totals are bit-identical
   with the tracer on and off. *)
let test_trace_does_not_perturb_cycles () =
  let schedule = [ (15, 2); (60, 1) ] in
  let quiet = Torture.run_once ~trace:false cfg ~schedule () in
  let traced = Torture.run_once ~trace:true cfg ~schedule () in
  Alcotest.(check bool)
    "bit-identical cycle totals under tracing" true
    (quiet.Torture.cycles = traced.Torture.cycles);
  Alcotest.(check string)
    "identical op logs under tracing"
    (String.concat "|" quiet.Torture.log)
    (String.concat "|" traced.Torture.log)

(* --- the schedule codec round-trips (replay command lines) --- *)

let test_schedule_roundtrip () =
  let s = [ (132, 3); (145, 2); (160, 1) ] in
  (match Torture.schedule_of_string (Torture.schedule_to_string s) with
  | Ok s' -> Alcotest.(check bool) "roundtrip" true (s = s')
  | Error e -> Alcotest.fail e);
  (match Torture.schedule_of_string "" with
  | Ok [] -> ()
  | Ok _ | Error _ -> Alcotest.fail "empty string is the empty schedule");
  match Torture.schedule_of_string "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not parse"

(* --- planted bugs are found within the bounded budget --- *)

let test_planted_recycle_found () =
  let c = { cfg with Torture.plant = Torture.Plant_recycle } in
  let r = sweep_budget c in
  match r.Torture.failure with
  | None -> Alcotest.fail "planted use-after-recycle not found within budget"
  | Some f ->
      Alcotest.(check bool)
        "reason names the recycle race" true
        (String.length f.Torture.reason >= 17
        && String.sub f.Torture.reason 0 17 = "use-after-recycle");
      Alcotest.(check bool)
        "ddmin produced a reproducer no longer than the original" true
        (List.length f.Torture.shrunk <= List.length f.Torture.schedule);
      Alcotest.(check bool)
        "shrunk reproducer replays byte-identically" true f.Torture.replay_identical;
      (* The reproducer is self-contained: a fresh run from just
         (seed, shrunk schedule) fails for the reported reason —
         f.cfg carries the seed that actually failed, not the sweep's
         base seed. *)
      let o = Torture.run_once f.Torture.cfg ~schedule:f.Torture.shrunk () in
      Alcotest.(check bool) "shrunk schedule still fails" false o.Torture.ok;
      Alcotest.(check (option string))
        "with the reported reason" (Some f.Torture.reason) o.Torture.reason

let test_planted_lock_order_found () =
  let c = { cfg with Torture.plant = Torture.Plant_lock_order } in
  let r = sweep_budget c in
  match r.Torture.failure with
  | None -> Alcotest.fail "planted AB/BA inversion not found"
  | Some f ->
      let mentions_inversion =
        List.exists
          (fun line ->
            String.length line >= 9
            && (let found = ref false in
                String.iteri
                  (fun i _ ->
                    if
                      i + 9 <= String.length line
                      && String.sub line i 9 = "inversion"
                    then found := true)
                  line;
                !found))
          (f.Torture.reason :: f.Torture.log_tail)
      in
      Alcotest.(check bool) "lockdep reports an ordering inversion" true
        mentions_inversion

let test_planted_release_held_found () =
  let c = { cfg with Torture.plant = Torture.Plant_release_held } in
  let r = sweep_budget c in
  match r.Torture.failure with
  | None -> Alcotest.fail "planted release-not-held not found"
  | Some f ->
      Alcotest.(check bool)
        "lockdep reports the unheld release" true
        (String.length f.Torture.reason >= 7
        && String.sub f.Torture.reason 0 7 = "release")

(* --- the clean protocol survives the full sweep --- *)

let test_clean_sweep_zero_findings () =
  let r = sweep_budget cfg in
  (match r.Torture.failure with
  | None -> ()
  | Some f -> Alcotest.fail (Torture.render_report f));
  Alcotest.(check int) "no failing runs" 0 r.Torture.stats.Torture.failures;
  Alcotest.(check bool)
    "the sweep actually exercised slab recycling" true
    (r.Torture.stats.Torture.recycled > 0)

(* --- lockdep unit checks, driven directly through Lock --- *)

let with_lockdep f =
  Lockdep.enable ();
  Fun.protect ~finally:Lockdep.disable f

let test_lockdep_inversion_direct () =
  with_lockdep (fun () ->
      let a = Lock.make ~cls:"cls_a" and b = Lock.make ~cls:"cls_b" in
      Lock.acquire a Lock.Exclusive ~actor:0;
      Lock.acquire b Lock.Exclusive ~actor:0;
      Lock.release b Lock.Exclusive ~actor:0;
      Lock.release a Lock.Exclusive ~actor:0;
      Alcotest.(check (list string)) "a→b alone is clean" []
        (List.map Lockdep.to_string (Lockdep.findings ()));
      (* The reverse order on the same classes is the AB/BA inversion.
         try_acquire suffices: lockdep judges the Attempt. *)
      Lock.acquire b Lock.Exclusive ~actor:1;
      ignore (Lock.try_acquire a Lock.Exclusive ~actor:1);
      Lock.release a Lock.Exclusive ~actor:1;
      Lock.release b Lock.Exclusive ~actor:1;
      let inversions =
        List.filter
          (function Lockdep.Inversion _ -> true | _ -> false)
          (Lockdep.findings ())
      in
      Alcotest.(check int) "exactly one inversion" 1 (List.length inversions))

let test_lockdep_release_not_held_direct () =
  with_lockdep (fun () ->
      let l = Lock.make ~cls:"cls_solo" in
      Lock.release l Lock.Exclusive ~actor:3;
      match Lockdep.findings () with
      | [ Lockdep.Release_not_held { cls = "cls_solo"; actor = 3 } ] -> ()
      | fs ->
          Alcotest.fail
            (Printf.sprintf "expected one release-not-held, got [%s]"
               (String.concat "; " (List.map Lockdep.to_string fs))))

let test_lockdep_leak_at_quiescence () =
  with_lockdep (fun () ->
      let l = Lock.make ~cls:"cls_leaky" in
      Lock.acquire l Lock.Shared ~actor:2;
      let leaks =
        List.filter
          (function Lockdep.Leak _ -> true | _ -> false)
          (Lockdep.check_quiescent ())
      in
      Alcotest.(check bool) "held lock at quiescence is a leak" true (leaks <> []);
      Lock.release l Lock.Shared ~actor:2)

(* --- explicit fiber ops (witness replay's entry point) --- *)

let test_fiber_ops_deterministic () =
  let fiber_ops =
    [|
      [ Torture.Op_mmap { slot = 0; pages = 1; ro = false } ];
      [ Torture.Op_lookup { slot = 0; off = 0 }; Torture.Op_lookup { slot = 0; off = 0 } ];
      [ Torture.Op_mmap { slot = 0; pages = 1; ro = false } ];
    |]
  in
  let schedule = [ (7, 2) ] in
  let a = Torture.run_once ~fiber_ops cfg ~schedule () in
  let b = Torture.run_once ~fiber_ops cfg ~schedule () in
  Alcotest.(check string)
    "identical outcome" (outcome_fingerprint a) (outcome_fingerprint b);
  Alcotest.(check int) "fiber count from the array, not cfg.tasks" 4
    a.Torture.ops_applied

let test_order_edges_observed () =
  let c = { cfg with Torture.tasks = 2; ops = 16; slots = 2 } in
  let (_ : Torture.outcome) = Torture.run_once c ~schedule:[] () in
  let edges = Lockdep.order_edges () in
  Alcotest.(check bool) "mm_lock -> vma_lock observed" true
    (List.mem ("mm_lock", "vma_lock") edges);
  Alcotest.(check bool) "no inversion on the clean protocol" false
    (List.mem ("vma_lock", "mm_lock") edges)

(* --- static findings replay to dynamic confirmation --- *)

module Lint = Mpk_analysis.Lint
module Mm_model = Mpk_check.Mm_model
module Witness = Mpk_check.Witness

let error_findings plant =
  Lint.analyze (Mm_model.program ~plant ())
  |> List.filter (fun f -> f.Lint.severity = Lint.Error)

let expect_confirmed plant =
  match error_findings plant with
  | [] -> Alcotest.fail (Mm_model.plant_to_string plant ^ ": no error finding")
  | f :: _ ->
      let o = Witness.confirm f in
      Alcotest.(check string)
        (Mm_model.plant_to_string plant ^ " witness confirms")
        "CONFIRMED"
        (Mpk_check.Replay.verdict_to_string o.Witness.verdict);
      Alcotest.(check bool) "a confirming schedule is returned" true
        (o.Witness.schedule <> None)

let test_witness_confirms_recycle () = expect_confirmed `Recycle
let test_witness_confirms_lock_order () = expect_confirmed `Lock_order
let test_witness_confirms_window () = expect_confirmed `Window

let test_static_covers_dynamic_inversions () =
  (* ISSUE 9 acceptance: on the planted lock-order program, the static
     cycle set must cover every inversion dynamic lockdep observes. *)
  let c =
    { cfg with Torture.tasks = 2; ops = 16; slots = 2; plant = Torture.Plant_lock_order }
  in
  let (_ : Torture.outcome) = Torture.run_once c ~schedule:[] () in
  let edges = Lockdep.order_edges () in
  let inversions =
    List.filter (fun (a, b) -> a < b && List.mem (b, a) edges) edges
  in
  Alcotest.(check bool) "the plant produced a dynamic inversion" true
    (inversions <> []);
  let cycles = Lint.static_lock_cycles (Mm_model.program ~plant:`Lock_order ()) in
  List.iter
    (fun (a, b) ->
      Alcotest.(check bool)
        (Printf.sprintf "static cycle covers {%s, %s}" a b)
        true
        (List.exists (fun c -> List.mem a c && List.mem b c) cycles))
    inversions

let () =
  Alcotest.run "torture"
    [
      ( "determinism",
        [
          Alcotest.test_case "run_once is a pure function of (seed, schedule)"
            `Quick test_run_once_deterministic;
          Alcotest.test_case "sweep verdict and shrunk trace are reproducible"
            `Quick test_sweep_deterministic;
          Alcotest.test_case "tracing does not perturb cycle totals" `Quick
            test_trace_does_not_perturb_cycles;
          Alcotest.test_case "schedule codec round-trips" `Quick
            test_schedule_roundtrip;
        ] );
      ( "plants",
        [
          Alcotest.test_case "use-after-recycle found within budget" `Quick
            test_planted_recycle_found;
          Alcotest.test_case "AB/BA inversion found" `Quick
            test_planted_lock_order_found;
          Alcotest.test_case "release-not-held found" `Quick
            test_planted_release_held_found;
        ] );
      ( "clean",
        [
          Alcotest.test_case "full sweep: zero findings, recycling exercised"
            `Quick test_clean_sweep_zero_findings;
        ] );
      ( "witness",
        [
          Alcotest.test_case "explicit fiber ops are deterministic" `Quick
            test_fiber_ops_deterministic;
          Alcotest.test_case "lock-order graph observed dynamically" `Quick
            test_order_edges_observed;
          Alcotest.test_case "planted race confirms via schedule search" `Slow
            test_witness_confirms_recycle;
          Alcotest.test_case "planted inversion confirms via lockdep" `Quick
            test_witness_confirms_lock_order;
          Alcotest.test_case "planted window confirms via schedule search" `Slow
            test_witness_confirms_window;
          Alcotest.test_case "static cycles cover dynamic inversions" `Quick
            test_static_covers_dynamic_inversions;
        ] );
      ( "lockdep",
        [
          Alcotest.test_case "AB/BA inversion (direct)" `Quick
            test_lockdep_inversion_direct;
          Alcotest.test_case "release-not-held (direct)" `Quick
            test_lockdep_release_not_held_direct;
          Alcotest.test_case "leak at quiescence (direct)" `Quick
            test_lockdep_leak_at_quiescence;
        ] );
    ]
