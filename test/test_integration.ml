(* Whole-system integration: one simulated machine, one process, ONE
   libmpk instance shared by all three case-study applications at once
   (keystore vkey 100, JIT cache vkeys 1000+, XOM modules 5000+), under
   concurrent multi-thread use — verifying that virtual-key namespaces
   compose, hardware keys are shared fairly, and every security property
   holds simultaneously. *)

open Mpk_hw
open Mpk_kernel

let test_three_apps_one_libmpk () =
  let machine = Machine.create ~cores:4 ~mem_mib:512 () in
  let proc = Proc.create machine in
  let server_thread = Proc.spawn proc ~core_id:0 () in
  let jit_thread = Proc.spawn proc ~core_id:1 () in
  let attacker = Proc.spawn proc ~core_id:2 () in
  let mpk = Libmpk.init ~evict_rate:1.0 proc server_thread in
  let mmu = Proc.mmu proc in

  (* --- app 1: the TLS keystore on thread 0 --- *)
  let tls =
    Mpk_secstore.Tls_server.create ~mode:Mpk_secstore.Keystore.Protected proc server_thread
      ~mpk ~seed:0x1AAL ()
  in
  let prng = Mpk_util.Prng.create ~seed:3L in
  let blob, client_key = Mpk_secstore.Tls_server.client_hello tls prng in
  let session = Mpk_secstore.Tls_server.accept tls server_thread blob in
  Alcotest.(check bytes) "tls handshake works" client_key
    (Mpk_secstore.Tls_server.session_key session);

  (* --- app 2: a JIT on thread 1, key-per-process --- *)
  let engine =
    Mpk_jit.Engine.create Mpk_jit.Engine.Chakracore Mpk_jit.Wx.Key_per_process proc
      jit_thread ~mpk ~cache_pages:8 ()
  in
  let fname = Mpk_jit.Engine.compile engine jit_thread ~ops:30 ~seed:9 () in
  Alcotest.(check int) "jit runs" (Mpk_jit.Engine.expected engine fname)
    (Mpk_jit.Engine.run engine jit_thread fname);

  (* --- app 3: XOM modules, also on thread 1 --- *)
  let xom = Mpk_jit.Xom.create mpk in
  let m =
    Mpk_jit.Xom.load xom jit_thread ~name:"plugin"
      (Mpk_jit.Bytecode.compile
         { Mpk_jit.Bytecode.name = "p"; body = [ Mpk_jit.Bytecode.Push 99; Mpk_jit.Bytecode.Ret ] })
  in
  Mpk_jit.Xom.seal xom jit_thread m;
  Alcotest.(check int) "sealed module runs" 99 (Mpk_jit.Xom.execute xom jit_thread m);

  (* --- cross-app security, all at once --- *)
  (* attacker can't read the TLS key... *)
  let key_addr, key_len = Mpk_secstore.Keystore.secret_region (Mpk_secstore.Tls_server.keystore tls) in
  (match Mmu.read_bytes mmu (Task.core attacker) ~addr:key_addr ~len:key_len with
  | exception Signal.Killed _ -> ()
  | _ -> Alcotest.fail "attacker read the TLS private key");
  (* ...or write the code cache... *)
  (let entry = Option.get (Mpk_jit.Codecache.find (Mpk_jit.Engine.cache engine) ~name:fname) in
   match Mmu.write_byte mmu (Task.core attacker) ~addr:entry.Mpk_jit.Codecache.addr 'X' with
   | exception Signal.Killed _ -> ()
   | _ -> Alcotest.fail "attacker wrote the JIT code cache");
  (* ...or read the sealed module... *)
  (match Mmu.read_byte mmu (Task.core attacker) ~addr:m.Mpk_jit.Xom.base with
  | exception Signal.Killed _ -> ()
  | _ -> Alcotest.fail "attacker read the XOM module");
  (* ...while everything keeps working for legitimate threads *)
  ignore (Mpk_jit.Engine.run engine jit_thread fname);
  ignore (Mpk_secstore.Tls_server.serve tls server_thread session ~size:1024);
  (* keys are genuinely shared: total groups exceeds 3, all backed by <=15 keys *)
  Alcotest.(check bool) "several groups coexist" true (Libmpk.group_count mpk >= 3);
  Alcotest.(check bool) "within hardware keys" true
    (Libmpk.Key_cache.in_use (Libmpk.cache mpk) <= 15)

let test_interleaved_domains () =
  (* keystore domain open on thread 0 while the JIT patches on thread 1:
     thread-local rights must not leak across either thread or app *)
  let machine = Machine.create ~cores:4 ~mem_mib:512 () in
  let proc = Proc.create machine in
  let t0 = Proc.spawn proc ~core_id:0 () in
  let t1 = Proc.spawn proc ~core_id:1 () in
  let mpk = Libmpk.init ~evict_rate:1.0 proc t0 in
  let mmu = Proc.mmu proc in
  let secret = Libmpk.mpk_mmap mpk t0 ~vkey:100 ~len:4096 ~prot:Perm.rw in
  let engine =
    Mpk_jit.Engine.create Mpk_jit.Engine.Chakracore Mpk_jit.Wx.Key_per_page proc t1 ~mpk ()
  in
  let f = Mpk_jit.Engine.compile engine t1 ~ops:20 ~seed:4 () in
  (* t0 opens its secret domain *)
  Libmpk.mpk_begin mpk t0 ~vkey:100 ~prot:Perm.rw;
  Mmu.write_byte mmu (Task.core t0) ~addr:secret 's';
  (* t1 patches its code cache concurrently (its own begin/end inside) *)
  Mpk_jit.Engine.patch engine t1 f;
  (* t1 must not see t0's open domain *)
  (match Mmu.read_byte mmu (Task.core t1) ~addr:secret with
  | exception Signal.Killed _ -> ()
  | _ -> Alcotest.fail "JIT thread read the open keystore domain");
  (* and t0's domain is still open and intact *)
  Alcotest.(check char) "t0 still inside its domain" 's'
    (Mmu.read_byte mmu (Task.core t0) ~addr:secret);
  Libmpk.mpk_end mpk t0 ~vkey:100;
  Alcotest.(check int) "patched function still correct"
    (Mpk_jit.Engine.expected engine f)
    (Mpk_jit.Engine.run engine t1 f)

let test_show_maps () =
  let machine = Machine.create ~cores:2 ~mem_mib:64 () in
  let proc = Proc.create machine in
  let task = Proc.spawn proc ~core_id:0 () in
  let mpk = Libmpk.init ~evict_rate:1.0 proc task in
  let addr = Libmpk.mpk_mmap mpk task ~vkey:1 ~len:8192 ~prot:Perm.rw in
  Libmpk.mpk_begin mpk task ~vkey:1 ~prot:Perm.rw;
  Mmu.write_byte (Proc.mmu proc) (Task.core task) ~addr 'x';
  Libmpk.mpk_end mpk task ~vkey:1;
  let maps = Mm.show_maps (Proc.mm proc) in
  let contains needle =
    let n = String.length needle and h = String.length maps in
    let rec scan i = i + n <= h && (String.sub maps i n = needle || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "mentions a pkey-tagged area" true (contains "pkey=1 ");
  Alcotest.(check bool) "shows partial residency" true (contains "1/2 pages resident")

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "integration"
    [
      ( "whole_system",
        [
          tc "three apps, one libmpk" `Quick test_three_apps_one_libmpk;
          tc "interleaved domains" `Quick test_interleaved_domains;
          tc "show_maps" `Quick test_show_maps;
        ] );
    ]
