(* Witness replay: execute a static finding's path witness on the live
   simulator and ask whether the violation is real.

   The static analyzer (Mpk_analysis.Lint) works on an abstract protocol
   model; this module closes the static/dynamic gap. Each finding carries
   a concrete entry-to-violation path; we build a fresh machine, drive the
   libmpk API along that path, and judge the outcome with an oracle
   specific to the violation class — the PR 2 invariant auditor where the
   damage is internal-state corruption, API errors / MMU faults where the
   simulator itself rejects the operation, and direct kernel-state probes
   (pinned keys, queued task_work, stale PKRU) for the rest. A finding
   the simulator cannot be made to exhibit is reported [Unreproduced] —
   static noise, not a bug. *)

open Mpk_hw
open Mpk_kernel
open Mpk_analysis

type verdict = Confirmed | Unreproduced

type outcome = { verdict : verdict; note : string }

let verdict_to_string = function
  | Confirmed -> "CONFIRMED"
  | Unreproduced -> "UNREPRODUCED"

let pp_outcome fmt o =
  Format.fprintf fmt "%s — %s" (verdict_to_string o.verdict) o.note

(* --- replay environment --- *)

type env = {
  mpk : Libmpk.t;
  proc : Proc.t;
  mmu : Mmu.t;
  tasks : (int, Task.t) Hashtbl.t;  (* IR tid -> simulated task *)
  main : Task.t;
}

let task env tid =
  match Hashtbl.find_opt env.tasks tid with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Replay: thread %d never spawned" tid)

let make_env (witness : Lint.step list) =
  let max_tid =
    List.fold_left
      (fun acc (s : Lint.step) ->
        let t =
          match s.Lint.sop with
          | Ir.Spawn { tid } | Ir.Join { tid } -> max s.Lint.stid tid
          | _ -> s.Lint.stid
        in
        max acc t)
      0 witness
  in
  let machine = Machine.create ~cores:(max_tid + 1) ~mem_mib:128 () in
  let proc = Proc.create machine in
  let main = Proc.spawn proc ~core_id:0 () in
  let mpk = Libmpk.init ~evict_rate:1.0 ~seed:1L proc main in
  let tasks = Hashtbl.create 4 in
  Hashtbl.replace tasks 0 main;
  { mpk; proc; mmu = Proc.mmu proc; tasks; main }

let group_base env vkey =
  match Libmpk.find_group env.mpk vkey with
  | Some g -> g.Libmpk.Group.base
  | None -> invalid_arg (Printf.sprintf "Replay: vkey %d has no group" vkey)

(* Execute one witness step. Steps that the IR treats as structural
   (labels, joins) are no-ops; spawned threads inherit the spawner's PKRU
   like a real clone(2) does, which is what makes the TOCTOU scenario
   replayable. *)
let exec_step env (s : Lint.step) =
  let t = task env s.Lint.stid in
  match s.Lint.sop with
  | Ir.Mmap { vkey; pages; prot } ->
      ignore
        (Libmpk.mpk_mmap env.mpk t ~vkey ~len:(pages * Physmem.page_size) ~prot)
  | Ir.Free { vkey } -> Libmpk.mpk_munmap env.mpk t ~vkey
  | Ir.Begin { vkey; prot } -> Libmpk.mpk_begin env.mpk t ~vkey ~prot
  | Ir.End { vkey } -> Libmpk.mpk_end env.mpk t ~vkey
  | Ir.Mprotect { vkey; prot } -> Libmpk.mpk_mprotect env.mpk t ~vkey ~prot
  | Ir.Read { vkey } ->
      ignore (Mmu.read_byte env.mmu (Task.core t) ~addr:(group_base env vkey))
  | Ir.Write { vkey } ->
      Mmu.write_byte env.mmu (Task.core t) ~addr:(group_base env vkey) 'w'
  | Ir.Emit { vkey; code } ->
      (* one placeholder byte per instruction, through the MMU so the
         write obeys (and exercises) the current PKRU state *)
      let base = group_base env vkey in
      List.iteri
        (fun i (_ : Ir.insn) ->
          Mmu.write_byte env.mmu (Task.core t) ~addr:(base + i) 'e')
        code
  | Ir.Exec { vkey } ->
      ignore (Mmu.fetch env.mmu (Task.core t) ~addr:(group_base env vkey) ~len:1)
  | Ir.Spawn { tid } ->
      if not (Hashtbl.mem env.tasks tid) then
        Hashtbl.replace env.tasks tid
          (Proc.spawn env.proc ~inherit_from:t ~core_id:tid ())
  | Ir.Join { tid = _ } | Ir.Label _ -> ()
  | Ir.Lock _ | Ir.Unlock _ | Ir.Load _ | Ir.Store _ ->
      (* kernel-internal protocol steps: the live API takes its own
         locks around its own shared state, so a witness can't drive
         them individually — Witness compiles these to torture fibers
         instead *)
      ()

(* --- oracles --- *)

exception Diverged of int * Lint.step * exn

let replay_prefix env steps =
  List.iteri
    (fun i s -> try exec_step env s with exn -> raise (Diverged (i, s, exn)))
    steps

let diverged_note (i, (s : Lint.step), exn) =
  Printf.sprintf "witness diverged at step %d: %s raised %s" i
    (Ir.op_to_string s.Lint.sop) (Printexc.to_string exn)

(* The violating op itself must be rejected by the live system: the API
   errors out or the MMU faults. *)
let expect_rejection env final =
  match exec_step env final with
  | () ->
      {
        verdict = Unreproduced;
        note =
          Printf.sprintf "final op '%s' succeeded on the simulator"
            (Ir.op_to_string final.Lint.sop);
      }
  | exception Errno.Error (e, m) ->
      {
        verdict = Confirmed;
        note = Printf.sprintf "API rejected it: %s (%s)" (Errno.to_string e) m;
      }
  | exception Libmpk.Unregistered_vkey v ->
      { verdict = Confirmed; note = Printf.sprintf "API rejected vkey %d" v }
  | exception Mmu.Fault f ->
      {
        verdict = Confirmed;
        note = Printf.sprintf "MMU fault: %s" (Mmu.fault_to_string f);
      }
  | exception Signal.Killed s ->
      {
        verdict = Confirmed;
        note = Printf.sprintf "delivered fatal signal %s" (Signal.to_string s);
      }
  | exception Invalid_argument m -> { verdict = Confirmed; note = m }

let audit_clean env = Audit.run env.mpk = []

let split_last steps =
  match List.rev steps with
  | [] -> invalid_arg "Replay: empty witness"
  | last :: rev_prefix -> (List.rev rev_prefix, last)

(* Trailing structural steps (the exit label) carry no behaviour; the
   last *operational* step is the one the oracle cares about. *)
let split_last_op steps =
  let rec strip = function
    | { Lint.sop = Ir.Label _; _ } :: rest -> strip rest
    | steps -> steps
  in
  match strip (List.rev steps) with
  | [] -> invalid_arg "Replay: witness has no operations"
  | last :: rev_prefix -> (List.rev rev_prefix, last)

let confirm (f : Lint.finding) =
  let env = make_env f.Lint.witness in
  try
    match f.Lint.detail with
    (* -- the simulator itself must reject the violating call -- *)
    | Lint.Use_after_free _ | Lint.Use_unmapped _ | Lint.Double_free _
    | Lint.Free_unmapped _ | Lint.Mmap_live _ | Lint.End_underflow _
    | Lint.Free_inside_begin _ -> (
        let prefix, final = split_last_op f.Lint.witness in
        try
          replay_prefix env prefix;
          expect_rejection env final
        with
        (* An earlier op on the same witness already got rejected: the
           path holds several lifecycle violations and the simulator
           refuses at the first one — still a real, confirmed path. *)
        | Diverged (i, s, (Errno.Error _ | Libmpk.Unregistered_vkey _ as exn)) ->
          {
            verdict = Confirmed;
            note =
              Printf.sprintf
                "an earlier violation on this witness was already rejected (step %d: \
                 %s raised %s)"
                i
                (Ir.op_to_string s.Lint.sop)
                (Printexc.to_string exn);
          })
    (* -- leak: the group outlives the program -- *)
    | Lint.Leak_on_exit { vkey } ->
        replay_prefix env f.Lint.witness;
        if Libmpk.find_group env.mpk vkey <> None && audit_clean env then
          {
            verdict = Confirmed;
            note =
              Printf.sprintf "vkey %d still holds a live page group at exit" vkey;
          }
        else
          { verdict = Unreproduced; note = "group was gone at program exit" }
    (* -- leaked begin: the hardware key stays pinned forever -- *)
    | Lint.Unbalanced { vkey; _ } ->
        replay_prefix env f.Lint.witness;
        let pins = Libmpk.Key_cache.pins (Libmpk.cache env.mpk) vkey in
        let depth =
          match Libmpk.find_group env.mpk vkey with
          | Some g -> g.Libmpk.Group.begin_depth
          | None -> 0
        in
        if pins > 0 || depth > 0 then
          {
            verdict = Confirmed;
            note =
              Printf.sprintf
                "thread exited with vkey %d still pinned (pins=%d, begin_depth=%d): \
                 the hardware key can never be recycled"
                vkey pins depth;
          }
        else
          { verdict = Unreproduced; note = "no pin survived the replayed path" }
    (* -- W^X on the mapping: both rights globally live at once -- *)
    | Lint.Wx_mapping { vkey } ->
        replay_prefix env f.Lint.witness;
        let wx =
          match Libmpk.find_group env.mpk vkey with
          | Some g -> g.Libmpk.Group.prot.Perm.write && g.Libmpk.Group.prot.Perm.exec
          | None -> false
        in
        if wx then
          {
            verdict = Confirmed;
            note =
              Printf.sprintf "group vkey %d is globally writable and executable" vkey;
          }
        else
          { verdict = Unreproduced; note = "group never held write+exec together" }
    (* -- W^X on the fetch: instruction fetch out of writable memory -- *)
    | Lint.Wx_exec_writable { vkey; _ } ->
        let prefix, final = split_last_op f.Lint.witness in
        replay_prefix env prefix;
        let t = task env final.Lint.stid in
        let writable =
          match Libmpk.find_group env.mpk vkey with
          | None -> false
          | Some g -> (
              g.Libmpk.Group.prot.Perm.write
              ||
              match g.Libmpk.Group.state with
              | Libmpk.Group.Mapped k ->
                  Pkru.allows (Pkru.rights (Task.pkru t) k) ~write:true
              | Libmpk.Group.Unmapped -> false)
        in
        (match exec_step env final with
        | () when writable ->
            {
              verdict = Confirmed;
              note =
                Printf.sprintf
                  "fetch from vkey %d succeeded while the region was writable \
                   (PKRU never gates instruction fetch)"
                  vkey;
            }
        | () -> { verdict = Unreproduced; note = "region was not writable at the fetch" }
        | exception _ ->
            { verdict = Unreproduced; note = "the fetch itself faulted" })
    (* -- WRPKRU gadget: jumping to it rewrites PKRU behind libmpk -- *)
    | Lint.Unsafe_wrpkru { vkey; offset } ->
        replay_prefix env f.Lint.witness;
        let t = env.main in
        (match Libmpk.Key_cache.free_keys (Libmpk.cache env.mpk) with
        | [] ->
            { verdict = Unreproduced; note = "no free hardware key to attack with" }
        | k :: _ ->
            (* The attacker jumps to the unchecked WRPKRU with a chosen
               eax: model the effect as a direct PKRU write granting
               rights on a key libmpk believes is out of circulation.
               The invariant auditor must notice. *)
            let before = Task.pkru t in
            Cpu.set_pkru_direct (Task.core t)
              (Pkru.set_rights before k Pkru.Read_write);
            let caught = not (audit_clean env) in
            Cpu.set_pkru_direct (Task.core t) before;
            if caught then
              {
                verdict = Confirmed;
                note =
                  Printf.sprintf
                    "gadget at offset %d of vkey %d's stream grants rights on free \
                     key %d; auditor flags the corrupted PKRU (I1)"
                    offset vkey (Pkey.to_int k);
              }
            else
              {
                verdict = Unreproduced;
                note = "auditor did not object to the forged PKRU";
              })
    (* -- TOCTOU: revocation vs a descheduled thread's lazy sync -- *)
    | Lint.Toctou { vkey; victim; access } ->
        let prefix, final = split_last_op f.Lint.witness in
        replay_prefix env prefix;
        let vt = task env victim in
        let pkey_before =
          match Libmpk.find_group env.mpk vkey with
          | Some { Libmpk.Group.state = Libmpk.Group.Mapped k; _ } -> Some k
          | _ -> None
        in
        (* Deschedule the victim; the revocation can then only queue lazy
           task_work for it (paper Fig 7). *)
        Sched.schedule_out (Proc.sched env.proc) vt;
        exec_step env final;
        let stale =
          match pkey_before with
          | None -> false
          | Some k ->
              Pkru.allows
                (Pkru.rights (Task.pkru vt) k)
                ~write:(access = Lint.A_write)
        in
        if Task.work_pending vt > 0 && stale && audit_clean env then
          {
            verdict = Confirmed;
            note =
              Printf.sprintf
                "after the revocation, descheduled thread %d still holds the revoked \
                 %s right on vkey %d's key with %d task_work item(s) queued — the \
                 window the auditor legally tolerates (I1) and the thread can use \
                 until its lazy do_pkey_sync runs"
                victim
                (Lint.access_to_string access)
                vkey (Task.work_pending vt);
          }
        else
          {
            verdict = Unreproduced;
            note =
              Printf.sprintf
                "no stale-rights window (work_pending=%d, stale=%b)"
                (Task.work_pending vt) stale;
          }
    (* -- concurrency findings need an interleaving, not a straight-line
       replay: Witness.confirm compiles them to torture schedules -- *)
    | Lint.Race _ | Lint.Deadlock _ | Lint.Atomicity _ | Lint.Unlock_unheld _ ->
        {
          verdict = Unreproduced;
          note =
            "concurrency finding: needs an adversarial schedule — replay it \
             with Witness.confirm";
        }
    (* -- imprecision findings have no single concrete failure -- *)
    | Lint.Maybe _ ->
        ignore (split_last f.Lint.witness);
        {
          verdict = Unreproduced;
          note = "imprecision finding (joined paths): nothing concrete to replay";
        }
  with
  | Diverged (i, s, exn) ->
      { verdict = Unreproduced; note = diverged_note (i, s, exn) }
  | Invalid_argument msg ->
      { verdict = Unreproduced; note = Printf.sprintf "replay setup failed: %s" msg }
