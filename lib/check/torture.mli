(** Deterministic interleaving torture harness (DESIGN.md §13).

    Runs N fibers of mmap/munmap/lookup/protect traffic against one
    shared address space, interleaved at preemption points by an
    explicit schedule. The harness reuses the simulator's single
    preemption mechanism — the ["sched.preempt"] fault-injection point
    fired by [Cpu.charge] — arming it with [Every 1] and installing a
    fiber-switching action via [Mpk_faultinj.with_preempt_action];
    fibers blocked on contended kernel locks park through
    [Lock.set_wait_hook]. A run is a pure function of
    [(seed, schedule)], which is what makes failing schedules
    ddmin-shrinkable and byte-identically replayable.

    Oracles: every lookup asserts [Vma.read_valid] on the vma the
    protocol hands out (catches use-after-recycle when
    [--plant recycle] disables the protocol's own check); lockdep
    findings at quiescence; a stall detector for deadlocked
    schedules. *)

(** What bug to plant, to prove the harness finds it. [Plant_recycle]
    disables the lookup protocol's recycle re-validation;
    [Plant_lock_order] injects a vma→mm acquisition against the
    established mm→vma order; [Plant_release_held] releases a lock that
    is not held. *)
type plant = No_plant | Plant_recycle | Plant_lock_order | Plant_release_held

val plant_of_string : string -> plant option
val plant_to_string : plant -> string

type config = {
  tasks : int;  (** concurrent fibers (one core each) *)
  ops : int;  (** ops per fiber *)
  slots : int;  (** shared mapping slots the fibers collide on *)
  seed : int64;
  plant : plant;
}

val default_config : config

(** [(at, target)]: at the [at]-th preemption point, switch to fiber
    [target]. *)
type schedule = (int * int) list

val schedule_to_string : schedule -> string
val schedule_of_string : string -> (schedule, string) result

(** One fiber operation over the shared slot table. Normally generated
    from the seed; witness replay ({!Mpk_check.Witness}) passes explicit
    per-fiber op lists instead. *)
type op =
  | Op_mmap of { slot : int; pages : int; ro : bool }
      (** map (remapping an occupied slot first unmaps it — the churn
          that feeds the typesafe free-list with recycles) *)
  | Op_munmap of { slot : int }
  | Op_lookup of { slot : int; off : int }
  | Op_protect of { slot : int; ro : bool }
  | Op_plant_lock_order  (** acquire vma→mm against the established order *)
  | Op_plant_release_held  (** release the mm lock without holding it *)

type outcome = {
  ok : bool;
  reason : string option;  (** first failure, when not [ok] *)
  findings : string list;  (** lockdep/quiescence findings *)
  ops_applied : int;
  benign : int;  (** ops that lost benign races (errno) *)
  points : int;  (** preemption points fired *)
  cycles : float;  (** cycles charged by this run *)
  log : string list;  (** deterministic op log (replay witness) *)
}

(** One deterministic run. [trace] additionally records events into the
    tracer ring (cycle totals are unaffected by tracing). [fiber_ops]
    overrides the seed-generated traffic with one explicit op list per
    fiber (fiber count then comes from the array, not [cfg.tasks], and
    no plant op is inserted — though [Plant_recycle] still disables the
    lookup re-validation); this is how compiled witnesses replay. *)
val run_once :
  ?trace:bool -> ?fiber_ops:op list array -> config -> schedule:schedule -> unit -> outcome

type report = {
  cfg : config;
  schedule : schedule;  (** the original failing schedule *)
  shrunk : schedule;  (** ddmin-minimized reproducer *)
  reason : string;
  replay_identical : bool;
      (** the shrunk reproducer replayed twice with identical verdict,
          op log and cycle total *)
  log_tail : string list;
}

type stats = {
  runs : int;
  failures : int;
  ops_applied : int;
  benign : int;
  max_points : int;
  recycled : int;  (** vma slab recycles observed during the sweep *)
}

type sweep_result = { stats : stats; failure : report option }

(** [sweep ~seeds cfg] explores [seeds] seeds × [rounds] random
    schedules of [entries] switch decisions each, stopping at the first
    failure, which it ddmin-shrinks and replays. [failure = None] means
    the whole sweep ran clean. *)
val sweep : ?entries:int -> ?rounds:int -> seeds:int -> config -> sweep_result

val render_report : report -> string
