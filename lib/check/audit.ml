open Mpk_hw
open Mpk_kernel

type violation = { invariant : int; message : string }

let pp_violation fmt v = Format.fprintf fmt "I%d: %s" v.invariant v.message

(* A group interval in vpn space, for "which key should tag this page"
   lookups. Only Mapped groups claim a key; everything else is key 0. *)
type interval = { start : int; stop : int; pkey : Pkey.t; ivkey : Libmpk.Vkey.t }

let intervals_of_groups groups =
  List.filter_map
    (fun (vkey, g, _) ->
      match g.Libmpk.Group.state with
      | Libmpk.Group.Mapped k ->
          let start = Page_table.vpn_of_addr g.Libmpk.Group.base in
          Some { start; stop = start + g.Libmpk.Group.pages; pkey = k; ivkey = vkey }
      | Libmpk.Group.Unmapped -> None)
    groups
  |> List.sort (fun a b -> compare a.start b.start)

let expected_pkey intervals vpn =
  match List.find_opt (fun iv -> vpn >= iv.start && vpn < iv.stop) intervals with
  | Some iv -> iv.pkey
  | None -> Pkey.default

let run mpk =
  let viols = ref [] in
  let fail i fmt =
    Printf.ksprintf (fun message -> viols := { invariant = i; message } :: !viols) fmt
  in
  let proc = Libmpk.proc mpk in
  let cache = Libmpk.cache mpk in
  let mm = Proc.mm proc in
  let pt = Mm.page_table mm in
  let machine = Proc.machine proc in
  let tasks = Proc.tasks proc in
  let groups = Libmpk.groups mpk in
  let free = Libmpk.Key_cache.free_keys cache in
  let reserved = Libmpk.Key_cache.reserved_keys cache in
  let mappings = Libmpk.Key_cache.mappings cache in
  let intervals = intervals_of_groups groups in

  (* Distinct group ranges are a precondition for every tag check. *)
  let rec check_disjoint = function
    | a :: (b :: _ as rest) ->
        if a.stop > b.start then
          fail 2 "groups vkey:%d and vkey:%d overlap in the address space" a.ivkey b.ivkey;
        check_disjoint rest
    | _ -> ()
  in
  check_disjoint intervals;

  (* I1 — keys out of circulation carry no residual state. A task that is
     off CPU with queued task_work may still hold stale rights: the lazy
     do_pkey_sync scrubs it before it can run (paper Fig 7). *)
  let check_no_rights i k =
    List.iter
      (fun task ->
        match Pkru.rights (Task.pkru task) k with
        | Pkru.No_access -> ()
        | r ->
            if not (Task.state task = Task.Off_cpu && Task.work_pending task > 0) then
              fail i "task %d holds %s on out-of-circulation key %d" (Task.id task)
                (Pkru.rights_to_string r) (Pkey.to_int k))
      tasks
  in
  List.iter
    (fun k ->
      check_no_rights 1 k;
      let tagged = Page_table.count_with_pkey pt k in
      if tagged > 0 then fail 1 "free key %d still tags %d PTE(s)" (Pkey.to_int k) tagged;
      List.iter
        (fun (v : Vma.vma) ->
          if Pkey.equal v.Vma.attrs.Vma.pkey k then
            fail 1 "free key %d still tags VMA at vpn %#x" (Pkey.to_int k) v.Vma.start)
        (Vma.to_list (Mm.vmas mm)))
    free;
  (* The execute-only reserve legitimately tags pages, but no thread may
     hold data rights on it: execute-only means nobody reads. *)
  List.iter (fun k -> check_no_rights 1 k) reserved;

  (* I2 — per-group tag agreement across page table, VMA tree and cache. *)
  List.iter
    (fun (vkey, g, _) ->
      let base = g.Libmpk.Group.base in
      let pages = g.Libmpk.Group.pages in
      let start = Page_table.vpn_of_addr base in
      if not (Vma.covered (Mm.vmas mm) ~start ~pages) then
        fail 2 "group vkey:%d is not fully covered by VMAs" vkey;
      match g.Libmpk.Group.state with
      | Libmpk.Group.Mapped k ->
          List.iter
            (fun (v : Vma.vma) ->
              if not (Pkey.equal v.Vma.attrs.Vma.pkey k) then
                fail 2 "group vkey:%d mapped to key %d but VMA at vpn %#x carries key %d"
                  vkey (Pkey.to_int k) v.Vma.start (Pkey.to_int v.Vma.attrs.Vma.pkey))
            (Vma.overlapping (Mm.vmas mm) ~start ~pages);
          if g.Libmpk.Group.xonly then begin
            (match Libmpk.xonly_key mpk with
            | Some xk when Pkey.equal xk k -> ()
            | Some xk ->
                fail 2 "execute-only group vkey:%d uses key %d, reserve is %d" vkey
                  (Pkey.to_int k) (Pkey.to_int xk)
            | None -> fail 2 "execute-only group vkey:%d but no reserved key" vkey);
            if List.exists (fun (v, _, _) -> v = vkey) mappings then
              fail 2 "execute-only group vkey:%d must live outside the key cache" vkey
          end
          else begin
            match List.find_opt (fun (v, _, _) -> v = vkey) mappings with
            | Some (_, ck, _) when Pkey.equal ck k -> ()
            | Some (_, ck, _) ->
                fail 2 "group vkey:%d mapped to key %d but cache says %d" vkey
                  (Pkey.to_int k) (Pkey.to_int ck)
            | None -> fail 2 "group vkey:%d mapped to key %d but absent from cache" vkey
                        (Pkey.to_int k)
          end
      | Libmpk.Group.Unmapped ->
          if List.exists (fun (v, _, _) -> v = vkey) mappings then
            fail 2 "unmapped group vkey:%d still has a cache mapping" vkey)
    groups;
  (* Cache entries with no live group behind them (agreement for live
     groups is checked from the group side above). *)
  List.iter
    (fun (vkey, ck, _) ->
      if not (List.exists (fun (v, _, _) -> v = vkey) groups) then
        fail 2 "cache maps vkey:%d to key %d but no such group exists" vkey
          (Pkey.to_int ck))
    mappings;
  (* Global sweep: every present PTE and every VMA carries exactly the key
     its page's group (if any) owns — nothing outside a group is tagged. *)
  Page_table.fold pt
    (fun vpn pte () ->
      let got = Pte.pkey pte in
      let want = expected_pkey intervals vpn in
      if not (Pkey.equal got want) then
        fail 2 "PTE at vpn %#x tagged key %d, expected %d" vpn (Pkey.to_int got)
          (Pkey.to_int want))
    ();
  List.iter
    (fun (v : Vma.vma) ->
      for vpn = v.Vma.start to v.Vma.start + v.Vma.pages - 1 do
        let want = expected_pkey intervals vpn in
        if not (Pkey.equal v.Vma.attrs.Vma.pkey want) then
          fail 2 "VMA page vpn %#x carries key %d, expected %d" vpn
            (Pkey.to_int v.Vma.attrs.Vma.pkey) (Pkey.to_int want)
      done)
    (Vma.to_list (Mm.vmas mm));

  (* I3 — begin/pin accounting. *)
  List.iter
    (fun (vkey, g, _) ->
      let depth = g.Libmpk.Group.begin_depth in
      let holders =
        Hashtbl.fold (fun _ d acc -> acc + d) g.Libmpk.Group.begin_holders 0
      in
      Hashtbl.iter
        (fun tid d ->
          if d <= 0 then fail 3 "group vkey:%d holder task %d at depth %d" vkey tid d)
        g.Libmpk.Group.begin_holders;
      if depth < 0 then fail 3 "group vkey:%d has negative begin_depth %d" vkey depth;
      if depth <> holders then
        fail 3 "group vkey:%d begin_depth %d but holders sum to %d" vkey depth holders;
      let pins = Libmpk.Key_cache.pins cache vkey in
      if pins <> depth then
        fail 3 "group vkey:%d begin_depth %d but cache pin count %d" vkey depth pins;
      if depth > 0 && g.Libmpk.Group.state = Libmpk.Group.Unmapped then
        fail 3 "group vkey:%d inside mpk_begin but unmapped" vkey)
    groups;

  (* I4 — every cached translation matches the page table. *)
  Array.iter
    (fun core ->
      Tlb.fold (Cpu.tlb core)
        (fun (e : Tlb.entry) () ->
          let current = Page_table.get pt ~vpn:e.Tlb.vpn in
          if not (Int64.equal (Pte.to_int64 e.Tlb.pte) (Pte.to_int64 current)) then
            fail 4 "core %d TLB entry for vpn %#x is stale (cached %Lx, table %Lx)"
              (Cpu.id core) e.Tlb.vpn (Pte.to_int64 e.Tlb.pte) (Pte.to_int64 current))
        ())
    (Machine.cores machine);

  (* I5 — key conservation and reserve agreement. *)
  let free_n = List.length free in
  let reserved_n = List.length reserved in
  let in_use = Libmpk.Key_cache.in_use cache in
  let hw = Libmpk.hw_keys mpk in
  if free_n + reserved_n + in_use <> hw then
    fail 5 "key conservation broken: %d free + %d reserved + %d mapped <> %d hw keys"
      free_n reserved_n in_use hw;
  if Libmpk.Key_cache.capacity cache <> hw then
    fail 5 "cache capacity %d drifted from %d hw keys" (Libmpk.Key_cache.capacity cache) hw;
  let owned = free @ reserved @ List.map (fun (_, k, _) -> k) mappings in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun k ->
      let ki = Pkey.to_int k in
      if Hashtbl.mem seen ki then fail 5 "hardware key %d owned twice" ki;
      Hashtbl.replace seen ki ();
      if not (Pkey_bitmap.is_allocated (Proc.pkey_bitmap proc) k) then
        fail 5 "cache owns key %d but the kernel bitmap says it is free" ki)
    owned;
  let xonly_groups =
    List.length (List.filter (fun (_, g, _) -> g.Libmpk.Group.xonly) groups)
  in
  if xonly_groups <> Libmpk.xonly_group_count mpk then
    fail 5 "execute-only group count %d disagrees with live groups %d"
      (Libmpk.xonly_group_count mpk) xonly_groups;
  (match Libmpk.xonly_key mpk, reserved with
  | Some k, [ r ] when Pkey.equal k r ->
      if xonly_groups = 0 then
        fail 5 "key %d reserved for execute-only but no such group is live" (Pkey.to_int k)
  | Some k, _ ->
      fail 5 "execute-only key %d not matched by the cache reserve list" (Pkey.to_int k)
  | None, [] -> ()
  | None, _ :: _ ->
      fail 5 "cache holds %d reserved key(s) but no execute-only reserve exists" reserved_n);

  (* I6 — protected metadata mirrors the live groups. *)
  let md = Libmpk.metadata mpk in
  if Libmpk.Metadata.used_slots md <> List.length groups then
    fail 6 "metadata occupancy %d but %d live groups" (Libmpk.Metadata.used_slots md)
      (List.length groups);
  let slots_seen = Hashtbl.create 16 in
  List.iter
    (fun (vkey, g, slot) ->
      if slot < 0 || slot >= Libmpk.Metadata.capacity_slots md then
        fail 6 "group vkey:%d has out-of-range metadata slot %d" vkey slot
      else begin
        if Hashtbl.mem slots_seen slot then
          fail 6 "metadata slot %d referenced by two groups" slot;
        Hashtbl.replace slots_seen slot ();
        let record =
          Mmu.kernel_read_bytes (Proc.mmu proc)
            ~addr:(Libmpk.Metadata.slot_addr md ~slot)
            ~len:Libmpk.Group.metadata_bytes
        in
        match Libmpk.Group.deserialize record with
        | None -> fail 6 "metadata slot %d for vkey:%d does not deserialize" slot vkey
        | Some (mv, mbase, mpages, mprot, mpk) ->
            let want_pk =
              match g.Libmpk.Group.state with
              | Libmpk.Group.Unmapped -> 0
              | Libmpk.Group.Mapped k -> Pkey.to_int k
            in
            if
              mv <> vkey
              || mbase <> g.Libmpk.Group.base
              || mpages <> g.Libmpk.Group.pages
              || (not (Perm.equal mprot g.Libmpk.Group.prot))
              || mpk <> want_pk
            then
              fail 6
                "metadata slot %d stale for vkey:%d (slot: vkey=%d base=%#x pages=%d \
                 prot=%s pkey=%d; group: base=%#x pages=%d prot=%s pkey=%d)"
                slot vkey mv mbase mpages (Perm.to_string mprot) mpk
                g.Libmpk.Group.base g.Libmpk.Group.pages
                (Perm.to_string g.Libmpk.Group.prot) want_pk
      end)
    groups;

  (* I7 — lock discipline. When the lockdep recorder is enabled, any
     finding it has accumulated (ordering inversion, self-deadlock,
     release-not-held, leaked hold/refcount) is an audit violation: a
     run that survived despite one only got lucky with its schedule. *)
  if Lockdep.enabled () then
    List.iter (fun f -> fail 7 "%s" (Lockdep.to_string f)) (Lockdep.findings ());

  List.rev !viols
