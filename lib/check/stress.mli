(** Randomized stress driver for the invariant auditor.

    Generates a weighted, seeded sequence of libmpk API calls —
    mmap/munmap/begin/end/mprotect (including execute-only transitions)
    /malloc/free plus benign memory touches — interleaved across several
    tasks, and runs {!Audit.run} after every operation. Everything is
    derived from [config.seed] via [Mpk_util.Prng], so a failure is
    replayable from the seed alone, and the pre-generated op list can be
    shrunk to a minimal failing trace.

    Expected API errors (key exhaustion, EINVAL on an unmatched end,
    EACCES on an over-privileged begin, …) are caught and counted; any
    other exception, or a non-empty audit, stops the run and is reported
    as a failure at that op index. *)

type config = {
  hw_keys : int;  (** keys in circulation, 1..15 *)
  tasks : int;  (** interleaved tasks, one per core *)
  evict_rate : float;  (** mpk_mprotect eviction probability *)
  vkeys : int;  (** virtual keys drawn from 1..vkeys *)
  max_pages : int;  (** group size drawn from 1..max_pages *)
  seed : int64;
  faults : (string * Mpk_faultinj.plan) list;
      (** failure points armed for the run (after setup, seeded from
          [seed]); injected failures count as benign errors, but the
          auditor still runs after every op, so a fault that corrupts
          library state is caught. Empty = no injection. *)
}

(** 15 keys, 2 tasks, evict_rate 1.0, 8 vkeys, 4 pages, seed 1,
    no fault injection. *)
val default_config : config

type op =
  | Mmap of { vkey : int; task : int; pages : int; prot_sel : int }
  | Munmap of { vkey : int; task : int }
  | Begin of { vkey : int; task : int; prot_sel : int }
  | End of { vkey : int; task : int }
  | Mprotect of { vkey : int; task : int; prot_sel : int }
  | Malloc of { vkey : int; task : int; size : int }
  | Free of { vkey : int; task : int; index : int }
      (** frees the [index]-th (mod live count) recorded allocation *)
  | Touch of { vkey : int; task : int }  (** benign read attempt *)

val show_op : op -> string

(** The static analyzer's view of one random op, as [(tid, ir_op)]:
    mmap/munmap/begin/end/mprotect/touch map to their IR counterparts,
    heap ops (no IR-level meaning) to labels. *)
val ir_of_op : op -> int * Mpk_analysis.Ir.op

(** [ir_of_trace ~name ops] — the straight-line IR program of a (usually
    minimized) trace, via [Mpk_analysis.Ir.of_trace]: per-thread chains,
    main spawning/joining the others. Re-emitted in failure reports so
    dynamic failures and static lints share one vocabulary. *)
val ir_of_trace : name:string -> op list -> Mpk_analysis.Ir.program

(** [gen_ops cfg n] — the deterministic op sequence for [cfg.seed]. *)
val gen_ops : config -> int -> op list

type kind =
  | Violations of Audit.violation list  (** the auditor flagged the state *)
  | Crash of string  (** an unexpected exception escaped the API *)

type failure = {
  index : int;
  op : op;
  kind : kind;
  blackbox : string list;
      (** the last trace events before the failing op — every [run]
          records into the {!Mpk_trace.Tracer} ring (a flight recorder),
          and a failure dumps its tail, captured before any [minimize]
          re-runs clobber the ring *)
}

type result =
  | Passed of { applied : int; benign_errors : int }
  | Failed of failure

(** [run cfg ops] applies the sequence, auditing the initial state and
    then after every operation. *)
val run : config -> op list -> result

(** Injection statistics (hits/fired per armed point) captured at the end
    of the most recent [run] — the registry itself is reset between runs,
    so this is the only way to see what actually fired. *)
val last_fault_stats : unit -> Mpk_faultinj.stats list

(** [minimize cfg ops] — a smaller op list that still fails under [cfg]
    (ddmin-style chunk removal; [ops] unchanged when it passes). *)
val minimize : config -> op list -> op list

(** [report cfg ~ops_total failure minimized] — human-readable failure
    report: the violated invariants, the replay seed/config, and the
    minimized trace. *)
val report : config -> ops_total:int -> failure -> op list -> string
