(* Generic ddmin-style chunk-halving minimizer, shared by the stress
   harness (op traces) and the torture harness (preemption schedules).

   Classic delta debugging: repeatedly try dropping chunks of the
   current candidate, keeping any reduction that still fails; halve the
   chunk size when a full pass at the current granularity removes
   nothing more. Termination: each kept candidate is strictly shorter,
   and the chunk size only shrinks. The result is 1-minimal at chunk
   size 1: removing any single remaining element makes the failure
   vanish (assuming [fails] is deterministic, which both harnesses
   guarantee by replaying from a fixed seed). *)

let minimize ~fails items =
  let current = ref items in
  let chunk = ref (max 1 (List.length items / 2)) in
  while !chunk >= 1 do
    let i = ref 0 in
    while !i < List.length !current do
      let cand = List.filteri (fun j _ -> j < !i || j >= !i + !chunk) !current in
      (* Never test the empty candidate: an empty trace "failing" would
         mean the failure predates the inputs, and keeping it would
         erase the reproducer. *)
      if cand <> [] && fails cand then current := cand else i := !i + !chunk
    done;
    chunk := (if !chunk = 1 then 0 else !chunk / 2)
  done;
  !current
