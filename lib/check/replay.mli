(** Witness replay: execute a static-analysis finding's path witness on
    the live simulator and classify it.

    [Confirmed] means the simulator exhibits the violation — the API
    rejects the call, the MMU faults, the invariant auditor (PR 2) flags
    corrupted state, or a direct kernel probe shows the damage (pinned
    key, stale PKRU with queued task_work, leaked group). [Unreproduced]
    means the witness ran but the simulator stayed healthy: static noise
    rather than a bug. *)

type verdict = Confirmed | Unreproduced

type outcome = { verdict : verdict; note : string }

val verdict_to_string : verdict -> string
val pp_outcome : Format.formatter -> outcome -> unit

(** [confirm finding] — build a fresh machine, drive the libmpk API along
    the finding's witness, and judge with the oracle matching the
    finding's violation class. *)
val confirm : Mpk_analysis.Lint.finding -> outcome
