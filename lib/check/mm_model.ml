open Mpk_analysis

(* IR model of the kernel's per-VMA locking protocol (DESIGN.md §13),
   the input program for the static concurrency passes.

   Three tasks share one mapping slot: main installs the mapping, spawns
   a lookup task and a protect task, joins them, and tears the mapping
   down. The shared locations are the VMA record (Ir.L_vma) and the
   pkey bitmap (Ir.L_pkey_bitmap); the locks are the kernel's real
   classes — "mm_lock" taken before "vma_lock", writers holding both,
   the lookup fast path holding only the per-VMA read lock (validated
   against Lock.known_classes by mpkctl).

   The clean protocol must come out of every pass with zero findings.
   Each plant reintroduces one of the PR 8 bugs at the model level:

   - [`Recycle]   the lookup drops the vma lock and keeps using the
                  record without re-validation — the use-after-recycle
                  race the torture harness's oracle catches dynamically
                  under --plant recycle (lockset pass).
   - [`Lock_order] the lookup takes the mm lock while still holding the
                  vma lock, against the established mm→vma order — the
                  inversion dynamic lockdep flags under
                  --plant lock-order (lock-order pass).
   - [`Window]    the protect path checks the VMA under the read lock,
                  drops it, then re-acquires and mutates on the stale
                  check (atomicity pass). *)

type plant = [ `Recycle | `Lock_order | `Window ]

let plant_of_string = function
  | "recycle" -> Some `Recycle
  | "lock-order" | "lock_order" -> Some `Lock_order
  | "window" -> Some `Window
  | _ -> None

let plant_to_string = function
  | `Recycle -> "recycle"
  | `Lock_order -> "lock-order"
  | `Window -> "window"

let mm = { Ir.lcls = "mm_lock"; linst = 0 }
let vma s = { Ir.lcls = "vma_lock"; linst = s }

(* The one slot all three tasks contend on. *)
let slot = 0
let l_vma = Ir.L_vma slot

let lock_classes = [ mm.Ir.lcls; (vma slot).Ir.lcls ]

let lock lk lmode = Ir.op (Ir.Lock { lk; lmode })
let unlock lk lmode = Ir.op (Ir.Unlock { lk; lmode })
let load loc = Ir.op (Ir.Load { loc })
let store loc = Ir.op (Ir.Store { loc })

(* Main's install/teardown: the VMA record is written under mm + vma
   exclusive, the pkey bitmap under the mm lock — the writer-side
   discipline every mutation in the protocol follows. *)
let mutate_slot lbl =
  [
    Ir.label lbl;
    lock mm Ir.Lk_excl;
    lock (vma slot) Ir.Lk_excl;
    store l_vma;
    unlock (vma slot) Ir.Lk_excl;
    store Ir.L_pkey_bitmap;
    unlock mm Ir.Lk_excl;
  ]

(* The recycling-safe lookup fast path: rcu walk, per-VMA read lock,
   identity re-validation under the lock, use, release. *)
let reader_clean =
  [
    Ir.Loop
      ( "lookup loop",
        [
          Ir.label "rcu walk";
          lock (vma slot) Ir.Lk_shared;
          load l_vma (* validate_read: identity check under the lock *);
          load l_vma (* use the fields, still under the lock *);
          unlock (vma slot) Ir.Lk_shared;
        ] )
  ]

(* Planted recycle: the lock is dropped after validation and the record
   is used bare — exactly what Vma.set_recycle_check false does to the
   live protocol. *)
let reader_recycle =
  [
    Ir.Loop
      ( "lookup loop",
        [
          Ir.label "rcu walk";
          lock (vma slot) Ir.Lk_shared;
          load l_vma;
          unlock (vma slot) Ir.Lk_shared;
          Ir.label "planted: use after dropping the vma lock, no re-validation";
          load l_vma;
        ] )
  ]

(* Planted inversion: an mm-lock fallback taken while still holding the
   vma read lock — vma→mm against the established mm→vma. *)
let reader_lock_order =
  [
    Ir.Loop
      ( "lookup loop",
        [
          Ir.label "rcu walk";
          lock (vma slot) Ir.Lk_shared;
          load l_vma;
          Ir.label "planted: mm fallback while still holding the vma lock";
          lock mm Ir.Lk_shared;
          load Ir.L_pkey_bitmap;
          unlock mm Ir.Lk_shared;
          unlock (vma slot) Ir.Lk_shared;
        ] )
  ]

(* The protect path: mm lock, bitmap read, then check-and-mutate the
   VMA under its write lock. *)
let writer_clean =
  [
    Ir.Loop
      ( "protect loop",
        [
          lock mm Ir.Lk_excl;
          load Ir.L_pkey_bitmap;
          lock (vma slot) Ir.Lk_excl;
          load l_vma (* check under the lock *);
          store l_vma (* act, still holding it *);
          unlock (vma slot) Ir.Lk_excl;
          unlock mm Ir.Lk_excl;
        ] )
  ]

(* Planted window: check under the read lock, drop it, re-acquire
   exclusively and mutate on the stale check. *)
let writer_window =
  [
    Ir.Loop
      ( "protect loop",
        [
          Ir.label "lookup: check under the vma read lock";
          lock (vma slot) Ir.Lk_shared;
          load l_vma;
          unlock (vma slot) Ir.Lk_shared;
          Ir.label "planted: re-acquire and mutate on the stale check";
          lock mm Ir.Lk_excl;
          lock (vma slot) Ir.Lk_excl;
          store l_vma;
          unlock (vma slot) Ir.Lk_excl;
          unlock mm Ir.Lk_excl;
        ] )
  ]

let program ?plant () =
  let reader, writer =
    match plant with
    | None -> reader_clean, writer_clean
    | Some `Recycle -> reader_recycle, writer_clean
    | Some `Lock_order -> reader_lock_order, writer_clean
    | Some `Window -> reader_clean, writer_window
  in
  let name =
    "mm-protocol"
    ^ match plant with None -> "" | Some p -> "+" ^ plant_to_string p
  in
  Ir.build ~name
    ~main:
      (mutate_slot "mmap: install the mapping"
      @ [
          Ir.op (Ir.Spawn { tid = 1 });
          Ir.op (Ir.Spawn { tid = 2 });
          Ir.op (Ir.Join { tid = 1 });
          Ir.op (Ir.Join { tid = 2 });
        ]
      @ mutate_slot "munmap: tear the mapping down")
    ~threads:[ 1, reader; 2, writer ]
    ()
