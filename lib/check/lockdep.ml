open Mpk_kernel

(* Lockdep-style lock-discipline validator (DESIGN.md §13).

   Installs itself as the kernel Lock module's event hook and tracks,
   per actor, the stack of held locks. From the held-sets it builds the
   class-level lock-order graph ("while holding A, acquired B"); an
   edge whose reverse is also witnessed — or any longer cycle found at
   the quiescent sweep — is an ordering inversion that could deadlock
   under an adversarial schedule even if this run survived. Attempts
   that would wait on the acquiring actor's own holds (shared→exclusive
   upgrades) are self-deadlocks; releases with no matching hold and
   holds outliving quiescence (leaked vm_refcnt references) round out
   the findings. Wired into the auditor as invariant I7. *)

type finding =
  | Inversion of { first : string * string; second : string * string; actor : int }
  | Cycle of { classes : string list }
  | Same_class_nesting of { cls : string; actor : int }
  | Self_deadlock of { cls : string; actor : int }
  | Release_not_held of { cls : string; actor : int }
  | Leak of { cls : string; actor : int; count : int }

let to_string = function
  | Inversion { first = a1, b1; second = a2, b2; actor } ->
      Printf.sprintf
        "lock-order inversion: %s -> %s contradicts established %s -> %s (actor %d)"
        a2 b2 a1 b1 actor
  | Cycle { classes } ->
      Printf.sprintf "lock-order cycle: %s" (String.concat " -> " classes)
  | Same_class_nesting { cls; actor } ->
      Printf.sprintf "unannotated same-class nesting of %s by actor %d" cls actor
  | Self_deadlock { cls; actor } ->
      Printf.sprintf "self-deadlock: actor %d waits on its own hold of %s" actor cls
  | Release_not_held { cls; actor } ->
      Printf.sprintf "release of %s not held by actor %d" cls actor
  | Leak { cls; actor; count } ->
      Printf.sprintf "%d %s reference(s) held by actor %d at quiescence" count cls
        actor

(* --- state --- *)

type hold = { lock_id : int; hcls : string; hmode : Lock.mode }

let enabled_flag = ref false
let held : (int, hold list ref) Hashtbl.t = Hashtbl.create 16
let edges : (string * string, unit) Hashtbl.t = Hashtbl.create 16
let findings_rev : finding list ref = ref []
let finding_keys : (string, unit) Hashtbl.t = Hashtbl.create 16

let held_of actor =
  match Hashtbl.find_opt held actor with
  | Some l -> l
  | None ->
      let l = ref [] in
      Hashtbl.replace held actor l;
      l

(* Findings are deduplicated by rendering: a buggy loop shouldn't bury
   the report under thousands of copies of the same inversion. *)
let add_finding f =
  let key = to_string f in
  if not (Hashtbl.mem finding_keys key) then begin
    Hashtbl.replace finding_keys key ();
    findings_rev := f :: !findings_rev
  end

let on_event = function
  | Lock.Attempt { lock; mode; actor } ->
      let h = !(held_of actor) in
      let lid = Lock.id lock in
      let cls = Lock.cls lock in
      (* A shared→exclusive upgrade waits for the refcount it holds
         itself; reentrant exclusive (and shared-under-own-exclusive)
         are granted by the lock and are fine. *)
      (match mode with
      | Lock.Exclusive ->
          if
            List.exists (fun hd -> hd.lock_id = lid && hd.hmode = Lock.Shared) h
            && not
                 (List.exists
                    (fun hd -> hd.lock_id = lid && hd.hmode = Lock.Exclusive)
                    h)
          then add_finding (Self_deadlock { cls; actor })
      | Lock.Shared -> ());
      List.iter
        (fun hd ->
          if hd.lock_id <> lid then
            if hd.hcls = cls then
              (* Same-class nesting needs an ordering annotation real
                 lockdep would demand; we simply forbid it. *)
              add_finding (Same_class_nesting { cls; actor })
            else begin
              Hashtbl.replace edges (hd.hcls, cls) ();
              if Hashtbl.mem edges (cls, hd.hcls) then
                add_finding
                  (Inversion
                     { first = (cls, hd.hcls); second = (hd.hcls, cls); actor })
            end)
        h
  | Lock.Acquired { lock; mode; actor } ->
      let h = held_of actor in
      h := { lock_id = Lock.id lock; hcls = Lock.cls lock; hmode = mode } :: !h
  | Lock.Contended _ -> ()
  | Lock.Released { lock; mode; actor } ->
      let h = held_of actor in
      let lid = Lock.id lock in
      let rec drop = function
        | [] -> None
        | hd :: rest when hd.lock_id = lid && hd.hmode = mode -> Some rest
        | hd :: rest -> Option.map (fun r -> hd :: r) (drop rest)
      in
      (match drop !h with
      | Some rest -> h := rest
      | None -> add_finding (Release_not_held { cls = Lock.cls lock; actor }))

(* --- lifecycle --- *)

let reset () =
  Hashtbl.reset held;
  Hashtbl.reset edges;
  Hashtbl.reset finding_keys;
  findings_rev := []

let enable () =
  reset ();
  Lock.set_hook on_event;
  enabled_flag := true

let disable () =
  Lock.clear_hook ();
  enabled_flag := false

let enabled () = !enabled_flag

let findings () = List.rev !findings_rev

(* The class-level order graph as observed dynamically: "while holding
   A, attempted B". Exported so the static lock-order pass can check
   that its all-paths graph covers what a run actually witnessed,
   instead of re-deriving the edges from raw lock events. *)
let order_edges () =
  Hashtbl.fold (fun e () acc -> e :: acc) edges [] |> List.sort compare

(* --- quiescent checks --- *)

(* Full-graph cycle sweep: pairwise detection above only catches
   2-cycles as they form; longer cycles surface here. *)
let cycle_sweep () =
  let nodes = Hashtbl.create 8 in
  Hashtbl.iter
    (fun (a, b) () ->
      Hashtbl.replace nodes a ();
      Hashtbl.replace nodes b ())
    edges;
  let succs a =
    Hashtbl.fold (fun (x, y) () acc -> if x = a then y :: acc else acc) edges []
  in
  let color = Hashtbl.create 8 in
  (* 0 = unvisited (absent), 1 = on stack, 2 = done *)
  let rec visit path a =
    match Hashtbl.find_opt color a with
    | Some 2 -> ()
    | Some 1 ->
        (* [path] holds the DFS stack newest-first; the cycle is the
           suffix from the repeated node. *)
        let rec suffix = function
          | [] -> []
          | x :: _ when x = a -> [ x ]
          | x :: rest -> x :: suffix rest
        in
        add_finding (Cycle { classes = List.rev (suffix path) @ [ a ] })
    | _ ->
        Hashtbl.replace color a 1;
        List.iter (visit (a :: path)) (List.sort compare (succs a));
        Hashtbl.replace color a 2
  in
  Hashtbl.iter (fun a () -> visit [] a) nodes

let check_quiescent () =
  Hashtbl.iter
    (fun actor holds ->
      let by_cls = Hashtbl.create 4 in
      List.iter
        (fun hd ->
          let prev = Option.value (Hashtbl.find_opt by_cls hd.hcls) ~default:0 in
          Hashtbl.replace by_cls hd.hcls (prev + 1))
        !holds;
      Hashtbl.iter
        (fun cls count -> add_finding (Leak { cls; actor; count }))
        by_cls)
    held;
  (* vm_refcnt puts against a recycled vma must have pinned (and then
     dropped) the foreign owner; a nonzero net grab count means a drop
     went missing. *)
  let grabs = Vma.grabs_outstanding () in
  if grabs <> 0 then add_finding (Leak { cls = "mm_grab"; actor = -1; count = grabs });
  cycle_sweep ();
  findings ()
