(** Generic ddmin-style (delta debugging) list minimizer.

    Shared by the stress harness (minimizing failing op traces) and the
    torture harness (minimizing failing preemption schedules). *)

val minimize : fails:('a list -> bool) -> 'a list -> 'a list
(** [minimize ~fails items] returns a sublist of [items] (order
    preserved) on which [fails] still holds, shrunk by chunk-halving
    until no single element can be removed. [fails items] is assumed to
    hold on entry; [fails] must be deterministic for the result to be
    meaningful. The empty list is never tested, so the result is
    nonempty. *)
