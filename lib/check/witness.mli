(** Concurrency-witness replay: compile a static race/deadlock/atomicity
    finding ({!Mpk_analysis.Lint}) into a torture-harness run
    ({!Torture.run_once} with explicit [fiber_ops]) and search for the
    adversarial schedule the finding claims exists.

    The witness's per-thread Load/Store steps become per-fiber harness
    ops (victim: lookup/protect; adversaries: remap churn), the run is
    planted with [Plant_recycle] so the lookup protocol has the same
    discipline hole the finding describes, and the harness's own
    oracles (the lookup's [Vma.read_valid] check, dynamic lockdep, the
    stall detector) judge each schedule. A dry run is tried first, then
    every single-switch schedule up to the dry run's preemption-point
    horizon.

    Sequential findings (typestate, balance, W^X, gadget, TOCTOU) are
    delegated to {!Replay.confirm} unchanged. *)

type outcome = {
  verdict : Replay.verdict;
  schedule : Torture.schedule option;
      (** the confirming schedule, when [Confirmed] — replayable with
          [mpkctl torture --schedule] *)
  runs : int;  (** harness runs spent searching *)
  note : string;
}

val pp_outcome : Format.formatter -> outcome -> unit

val confirm : Mpk_analysis.Lint.finding -> outcome
