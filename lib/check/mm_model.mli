(** IR model of the kernel's per-VMA locking protocol (DESIGN.md §13),
    the input program for the static concurrency passes
    ({!Mpk_analysis.Lint}).

    Main installs a mapping, spawns a lookup task (tid 1) and a protect
    task (tid 2), joins both, and tears the mapping down. The clean
    protocol yields zero lint findings; each {!plant} reintroduces one
    of the PR 8 torture-harness bugs at the model level so the static
    passes (and {!Witness} replay) can be validated against dynamic
    ground truth. *)

type plant =
  [ `Recycle  (** use of the VMA after dropping its lock → lockset race *)
  | `Lock_order  (** vma→mm acquisition against mm→vma → deadlock cycle *)
  | `Window  (** check under the read lock, mutate after re-acquire → atomicity *)
  ]

val plant_of_string : string -> plant option
val plant_to_string : plant -> string

val slot : int
(** The one mapping slot all three tasks contend on (0). *)

val lock_classes : string list
(** Lock classes the model uses; mpkctl validates these against the
    kernel's {!Mpk_kernel.Lock.known_classes}. *)

val program : ?plant:plant -> unit -> Mpk_analysis.Ir.program
