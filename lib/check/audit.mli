(** Cross-layer invariant auditor.

    libmpk's promise is that virtualizing 15 hardware keys never leaks
    residual PKRU rights or stale PTE tags across evictions (paper §3.1).
    That agreement spans three layers — hardware (PKRU registers, PTE
    tags, TLBs), kernel (VMA tree, pkey bitmap) and libmpk (key cache,
    page groups, protected metadata) — and this module checks all of it
    against a single [Libmpk.t]:

    - I1 {e scrubbed free keys}: every hardware key on the cache free
      list (or in the execute-only reserve) carries [No_access] in every
      task's PKRU and tags zero PTEs and zero VMAs. A task that is off
      CPU with pending task_work is exempt — the paper's lazy
      [do_pkey_sync] updates it before it can touch memory.
    - I2 {e tag agreement}: for every [Group.Mapped pkey] group, the
      group's pages are tagged [pkey] in both the VMA tree and every
      present PTE, no page outside the group carries it, and the key
      cache maps exactly the non-execute-only mapped groups.
    - I3 {e pin accounting}: per group, [begin_depth] equals the sum
      over [begin_holders] and equals the cache pin count.
    - I4 {e TLB coherence}: every cached TLB entry on every core matches
      the page table's current PTE for that page.
    - I5 {e key conservation}: free + mapped + reserved keys always sum
      to the [hw_keys] handed over at init; every owned key is allocated
      in the kernel bitmap; no key is owned twice; the execute-only
      reserve agrees with the live execute-only group count.
    - I6 {e metadata agreement}: every group's protected-metadata slot
      deserializes to the group's current (vkey, base, pages, prot,
      pkey), slots are distinct, and occupancy equals the group count.

    The audit is purely observational: it reads through kernel-privileged
    paths and the new read-only iterators, charges no cycles and never
    perturbs LRU/pin/statistics state. It assumes the machine hosts a
    single process (TLBs are checked against that process's page table)
    and is meant to run at quiescent points — between API calls, as the
    stress driver does. *)

type violation = { invariant : int; message : string }

val pp_violation : Format.formatter -> violation -> unit

(** [run mpk] — all detected violations, empty when the state is
    consistent. *)
val run : Libmpk.t -> violation list
