open Mpk_hw
open Mpk_kernel

type config = {
  hw_keys : int;
  tasks : int;
  evict_rate : float;
  vkeys : int;
  max_pages : int;
  seed : int64;
  faults : (string * Mpk_faultinj.plan) list;
}

let default_config =
  {
    hw_keys = 15;
    tasks = 2;
    evict_rate = 1.0;
    vkeys = 8;
    max_pages = 4;
    seed = 1L;
    faults = [];
  }

type op =
  | Mmap of { vkey : int; task : int; pages : int; prot_sel : int }
  | Munmap of { vkey : int; task : int }
  | Begin of { vkey : int; task : int; prot_sel : int }
  | End of { vkey : int; task : int }
  | Mprotect of { vkey : int; task : int; prot_sel : int }
  | Malloc of { vkey : int; task : int; size : int }
  | Free of { vkey : int; task : int; index : int }
  | Touch of { vkey : int; task : int }

let mmap_prot = function 0 -> Perm.rw | 1 -> Perm.r | _ -> Perm.rwx
let begin_prot = function 0 -> Perm.r | 1 -> Perm.rw | _ -> Perm.rx

(* Selector 4 is the execute-only transition (served by the reserved key). *)
let mprotect_prot = function
  | 0 -> Perm.none
  | 1 -> Perm.r
  | 2 -> Perm.rw
  | 3 -> Perm.rx
  | _ -> Perm.x_only

let show_op = function
  | Mmap { vkey; task; pages; prot_sel } ->
      Printf.sprintf "mmap v%d %dp %s @t%d" vkey pages
        (Perm.to_string (mmap_prot prot_sel)) task
  | Munmap { vkey; task } -> Printf.sprintf "munmap v%d @t%d" vkey task
  | Begin { vkey; task; prot_sel } ->
      Printf.sprintf "begin v%d %s @t%d" vkey (Perm.to_string (begin_prot prot_sel)) task
  | End { vkey; task } -> Printf.sprintf "end v%d @t%d" vkey task
  | Mprotect { vkey; task; prot_sel } ->
      Printf.sprintf "mprotect v%d %s @t%d" vkey
        (Perm.to_string (mprotect_prot prot_sel)) task
  | Malloc { vkey; task; size } -> Printf.sprintf "malloc v%d %dB @t%d" vkey size task
  | Free { vkey; task; index } -> Printf.sprintf "free v%d #%d @t%d" vkey index task
  | Touch { vkey; task } -> Printf.sprintf "touch v%d @t%d" vkey task

let gen_ops cfg n =
  let prng = Mpk_util.Prng.create ~seed:cfg.seed in
  let vkey () = 1 + Mpk_util.Prng.int prng (max 1 cfg.vkeys) in
  let task () = Mpk_util.Prng.int prng (max 1 cfg.tasks) in
  List.init n (fun _ ->
      let r = Mpk_util.Prng.int prng 100 in
      if r < 14 then
        Mmap
          {
            vkey = vkey ();
            task = task ();
            pages = 1 + Mpk_util.Prng.int prng (max 1 cfg.max_pages);
            prot_sel = Mpk_util.Prng.int prng 3;
          }
      else if r < 22 then Munmap { vkey = vkey (); task = task () }
      else if r < 42 then
        Begin { vkey = vkey (); task = task (); prot_sel = Mpk_util.Prng.int prng 3 }
      else if r < 62 then End { vkey = vkey (); task = task () }
      else if r < 74 then
        Mprotect { vkey = vkey (); task = task (); prot_sel = Mpk_util.Prng.int prng 5 }
      else if r < 82 then
        Malloc { vkey = vkey (); task = task (); size = 16 + Mpk_util.Prng.int prng 2048 }
      else if r < 88 then
        Free { vkey = vkey (); task = task (); index = Mpk_util.Prng.int prng 8 }
      else Touch { vkey = vkey (); task = task () })

(* Each random op has a static-analyzer counterpart: a minimized failing
   trace re-emits as an Mpk_analysis.Ir program, so a dynamic failure can
   be cross-examined with the same vocabulary (and passes) the lints use.
   Heap ops have no IR-level meaning and become labels. *)
let ir_of_op op =
  let open Mpk_analysis in
  match op with
  | Mmap { vkey; task; pages; prot_sel } ->
      (task, Ir.Mmap { vkey; pages; prot = mmap_prot prot_sel })
  | Munmap { vkey; task } -> (task, Ir.Free { vkey })
  | Begin { vkey; task; prot_sel } ->
      (task, Ir.Begin { vkey; prot = begin_prot prot_sel })
  | End { vkey; task } -> (task, Ir.End { vkey })
  | Mprotect { vkey; task; prot_sel } ->
      (task, Ir.Mprotect { vkey; prot = mprotect_prot prot_sel })
  | Touch { vkey; task } -> (task, Ir.Read { vkey })
  | Malloc { task; _ } | Free { task; _ } -> (task, Ir.Label (show_op op))

let ir_of_trace ~name ops = Mpk_analysis.Ir.of_trace ~name (List.map ir_of_op ops)

let last_fault_stats_ref : Mpk_faultinj.stats list ref = ref []
let last_fault_stats () = !last_fault_stats_ref

type kind = Violations of Audit.violation list | Crash of string

type failure = { index : int; op : op; kind : kind; blackbox : string list }

type result =
  | Passed of { applied : int; benign_errors : int }
  | Failed of failure

exception Stop of failure

(* How many trailing trace events a failure report carries — the same
   depth the kernel's default-kill crash record uses, so a stress report
   and a core dump show identically-sized black boxes. *)
let blackbox_depth = Signal.blackbox_depth

(* The flight recorder's last words, rendered before [minimize] re-runs
   clobber the ring. *)
let blackbox () =
  List.map Mpk_trace.Event.to_line (Mpk_trace.Tracer.recent blackbox_depth)

let run cfg ops =
  let tasks = max 1 cfg.tasks in
  (* Injection must not perturb setup, so arming happens after init; and
     every run re-seeds and re-arms from the config, so a given
     (cfg, ops) pair is fully deterministic — which is what lets
     [minimize] replay candidate traces meaningfully. *)
  Mpk_faultinj.reset ();
  (* Fresh vma slab: replayability from (cfg, ops) must not depend on
     what earlier runs left on the process-global free-list. *)
  Vma.slab_reset ();
  (* Flight recorder: every run traces into a fresh ring so a failure can
     dump the events leading up to it. Event emission charges no cycles,
     so enabling it here cannot perturb the (deterministic) run itself. *)
  let trace_was_on = Mpk_trace.Tracer.on () in
  Mpk_trace.Tracer.clear ();
  Mpk_trace.Tracer.enable ();
  (* Lock-discipline watchdog: the post-op audit folds lockdep findings
     in as I7, so a stress run also vets lock ordering on every path it
     exercises. Callers that already run their own recorder (torture)
     keep it. *)
  let lockdep_was_on = Lockdep.enabled () in
  if not lockdep_was_on then Lockdep.enable ();
  let machine = Machine.create ~cores:tasks ~mem_mib:128 () in
  let proc = Proc.create machine in
  let threads = Array.init tasks (fun i -> Proc.spawn proc ~core_id:i ()) in
  let mpk =
    Libmpk.init ~hw_keys:cfg.hw_keys ~evict_rate:cfg.evict_rate
      ~default_heap_bytes:(16 * Physmem.page_size) ~seed:cfg.seed proc threads.(0)
  in
  Mpk_faultinj.set_seed cfg.seed;
  List.iter (fun (name, plan) -> Mpk_faultinj.arm name plan) cfg.faults;
  let mmu = Proc.mmu proc in
  let allocs : (int, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let benign = ref 0 in
  let audit index op =
    match Audit.run mpk with
    | [] -> ()
    | violations ->
        raise (Stop { index; op; kind = Violations violations; blackbox = blackbox () })
  in
  let apply op =
    match op with
    | Mmap { vkey; task; pages; prot_sel } ->
        ignore
          (Libmpk.mpk_mmap mpk threads.(task) ~vkey
             ~len:(pages * Physmem.page_size)
             ~prot:(mmap_prot prot_sel))
    | Munmap { vkey; task } ->
        Libmpk.mpk_munmap mpk threads.(task) ~vkey;
        Hashtbl.remove allocs vkey
    | Begin { vkey; task; prot_sel } ->
        Libmpk.mpk_begin mpk threads.(task) ~vkey ~prot:(begin_prot prot_sel)
    | End { vkey; task } -> Libmpk.mpk_end mpk threads.(task) ~vkey
    | Mprotect { vkey; task; prot_sel } ->
        Libmpk.mpk_mprotect mpk threads.(task) ~vkey ~prot:(mprotect_prot prot_sel)
    | Malloc { vkey; task; size } ->
        let addr = Libmpk.mpk_malloc mpk threads.(task) ~vkey ~size in
        let live =
          match Hashtbl.find_opt allocs vkey with
          | Some l -> l
          | None ->
              let l = ref [] in
              Hashtbl.replace allocs vkey l;
              l
        in
        live := addr :: !live
    | Free { vkey; task; index } -> (
        match Hashtbl.find_opt allocs vkey with
        | Some live when !live <> [] ->
            let n = List.length !live in
            let addr = List.nth !live (index mod n) in
            live := List.filter (fun a -> a <> addr) !live;
            Libmpk.mpk_free mpk threads.(task) ~vkey ~addr
        | Some _ | None -> ()  (* nothing recorded to free *))
    | Touch { vkey; task } -> (
        match Libmpk.find_group mpk vkey with
        | Some g -> (
            match
              Mmu.read_byte mmu (Task.core threads.(task)) ~addr:g.Libmpk.Group.base
            with
            | (_ : char) -> ()
            | exception Mmu.Fault _ -> ()  (* denial is a legal outcome *)
            | exception Signal.Killed _ -> ())  (* ditto, as a signal *)
        | None -> ())
  in
  let finish () =
    last_fault_stats_ref := List.filter (fun s -> s.Mpk_faultinj.armed) (Mpk_faultinj.stats ());
    Mpk_faultinj.reset ();
    if not lockdep_was_on then Lockdep.disable ();
    if not trace_was_on then begin
      Mpk_trace.Tracer.disable ();
      Mpk_trace.Tracer.clear ()
    end
  in
  Fun.protect ~finally:finish @@ fun () ->
  try
    audit (-1) (Touch { vkey = 0; task = 0 });  (* initial state must be clean *)
    List.iteri
      (fun index op ->
        (match apply op with
        | () -> ()
        | exception Libmpk.Key_exhausted -> incr benign
        | exception Errno.Error _ -> incr benign
        | exception Libmpk.Unregistered_vkey _ -> incr benign
        (* Injected faults surface as signals (pkey/OOM kills) or raw
           OOM from the allocator; the API must stay consistent after
           them — which the post-op audit checks — but the errors
           themselves are expected. *)
        | exception Signal.Killed _ -> incr benign
        | exception Out_of_memory -> incr benign
        | exception exn ->
            raise
              (Stop
                 {
                   index;
                   op;
                   kind = Crash (Printexc.to_string exn);
                   blackbox = blackbox ();
                 }));
        audit index op)
      ops;
    Passed { applied = List.length ops; benign_errors = !benign }
  with Stop f -> Failed f

let fails cfg ops = match run cfg ops with Failed _ -> true | Passed _ -> false

let minimize cfg ops =
  match run cfg ops with
  | Passed _ -> ops
  | Failed f ->
      (* Everything after the failing op is irrelevant; ddmin does the rest. *)
      Ddmin.minimize ~fails:(fails cfg) (List.filteri (fun i _ -> i <= f.index) ops)

let report cfg ~ops_total failure minimized =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "audit FAILED at op %d: %s\n" failure.index (show_op failure.op));
  (match failure.kind with
  | Violations vs ->
      List.iter
        (fun v -> Buffer.add_string buf (Format.asprintf "  %a\n" Audit.pp_violation v))
        vs
  | Crash msg -> Buffer.add_string buf (Printf.sprintf "  unexpected exception: %s\n" msg));
  let spec =
    match cfg.faults with
    | [] -> ""
    | faults ->
        Printf.sprintf " --spec '%s'"
          (String.concat ","
             (List.map (fun (n, p) -> n ^ Mpk_faultinj.plan_to_string p) faults))
  in
  Buffer.add_string buf
    (Printf.sprintf
       "replay: mpkctl %s --ops %d --seed %Ld --hw-keys %d --tasks %d --evict-rate %g%s\n"
       (if cfg.faults = [] then "audit" else "faults")
       ops_total cfg.seed cfg.hw_keys cfg.tasks cfg.evict_rate spec);
  Buffer.add_string buf
    (Printf.sprintf "minimized trace (%d ops):\n" (List.length minimized));
  List.iteri
    (fun i op -> Buffer.add_string buf (Printf.sprintf "  %3d: %s\n" i (show_op op)))
    minimized;
  Buffer.add_string buf "as analyzer IR (mpkctl lint vocabulary):\n";
  Buffer.add_string buf
    (Format.asprintf "%a" Mpk_analysis.Ir.pp_program
       (ir_of_trace ~name:"minimized-stress-trace" minimized));
  (match failure.blackbox with
  | [] -> ()
  | lines ->
      Buffer.add_string buf
        (Printf.sprintf "black box (last %d trace events before the failure):\n"
           (List.length lines));
      List.iter (fun l -> Buffer.add_string buf ("  " ^ l ^ "\n")) lines);
  Buffer.contents buf
