open Mpk_hw
open Mpk_kernel

(* Deterministic interleaving torture harness (DESIGN.md §13).

   N fibers of mmap/munmap/lookup/protect traffic run against one shared
   address space, interleaved by a seeded schedule of preemption
   decisions. The harness borrows the simulator's single preemption
   mechanism: it arms the existing ["sched.preempt"] fault-injection
   point (evaluated by [Cpu.charge], i.e. between any two charged
   events) with [Every 1] and installs its own action via
   [Mpk_faultinj.with_preempt_action] — exactly where [Sched.preempt]
   would bounce a task, the torture scheduler may switch fibers instead.
   Fibers are OCaml effect handlers: a switch performs [Yield], the
   trampoline parks the continuation and resumes the schedule's target.
   A fiber that blocks on a contended kernel lock parks the same way,
   through [Lock.set_wait_hook], and retries when next resumed.

   A schedule is a sparse list of [(at, target)] pairs — "at the [at]-th
   preemption point of the run, switch to fiber [target]" — so a run is
   a pure function of [(seed, schedule)]: the op mix derives from the
   seed, the interleaving from the schedule, and everything else
   (addresses, cycle charges, the op log) is deterministic. That is what
   lets [sweep] shrink a failing schedule with ddmin and replay the
   shrunk reproducer byte-identically.

   Failures come from three oracles: a per-lookup assertion that the vma
   handed out by [Mm.find_vma_read] really covers the looked-up page
   ([Vma.read_valid] — the planted [--plant recycle] bug disables the
   protocol's own recycle check and this oracle catches what it misses);
   the lockdep validator's findings at quiescence; and a stall detector
   for schedules that deadlock. *)

(* --- configuration --- *)

type plant = No_plant | Plant_recycle | Plant_lock_order | Plant_release_held

let plant_of_string = function
  | "none" -> Some No_plant
  | "recycle" -> Some Plant_recycle
  | "lock-order" | "lock_order" -> Some Plant_lock_order
  | "release-held" | "release_held" -> Some Plant_release_held
  | _ -> None

let plant_to_string = function
  | No_plant -> "none"
  | Plant_recycle -> "recycle"
  | Plant_lock_order -> "lock-order"
  | Plant_release_held -> "release-held"

type config = { tasks : int; ops : int; slots : int; seed : int64; plant : plant }

let default_config = { tasks = 4; ops = 48; slots = 4; seed = 1L; plant = No_plant }

(* --- schedules --- *)

type schedule = (int * int) list

let schedule_to_string s =
  String.concat "," (List.map (fun (at, t) -> Printf.sprintf "%d:%d" at t) s)

let schedule_of_string str =
  if String.trim str = "" then Ok []
  else
    try
      Ok
        (String.split_on_char ',' str
        |> List.map (fun entry ->
               match String.split_on_char ':' (String.trim entry) with
               | [ at; t ] -> (int_of_string at, int_of_string t)
               | _ -> failwith entry))
    with _ -> Error (Printf.sprintf "bad schedule %S (want AT:TARGET,AT:TARGET,...)" str)

(* --- per-fiber op traffic --- *)

type op =
  | Op_mmap of { slot : int; pages : int; ro : bool }
  | Op_munmap of { slot : int }
  | Op_lookup of { slot : int; off : int }
  | Op_protect of { slot : int; ro : bool }
  | Op_plant_lock_order
  | Op_plant_release_held

let gen_ops prng ~ops ~slots =
  List.init ops (fun _ ->
      let slot = Mpk_util.Prng.int prng slots in
      let r = Mpk_util.Prng.int prng 100 in
      if r < 30 then
        Op_mmap
          {
            slot;
            pages = 1 + Mpk_util.Prng.int prng 3;
            ro = Mpk_util.Prng.int prng 4 = 0;
          }
      else if r < 50 then Op_munmap { slot }
      else if r < 80 then Op_lookup { slot; off = Mpk_util.Prng.int prng 4 }
      else Op_protect { slot; ro = Mpk_util.Prng.int prng 2 = 0 })

let insert_mid l x =
  let n = List.length l / 2 in
  List.filteri (fun i _ -> i < n) l @ (x :: List.filteri (fun i _ -> i >= n) l)

(* --- fibers --- *)

type _ Effect.t += Yield : unit Effect.t

type fstate =
  | Start of (unit -> unit)
  | Paused of (unit, unit) Effect.Deep.continuation
  | Running
  | Done

type fiber = { mutable state : fstate }

let handler (f : fiber) =
  {
    Effect.Deep.retc = (fun () -> f.state <- Done);
    exnc =
      (fun e ->
        f.state <- Done;
        raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Yield ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) -> f.state <- Paused k)
        | _ -> None);
  }

(* Run the fiber until it yields, finishes, or raises. *)
let exec (f : fiber) =
  match f.state with
  | Start thunk ->
      f.state <- Running;
      Effect.Deep.match_with thunk () (handler f)
  | Paused k ->
      f.state <- Running;
      Effect.Deep.continue k ()
  | Running | Done -> ()

(* --- one run --- *)

type outcome = {
  ok : bool;
  reason : string option;
  findings : string list;
  ops_applied : int;
  benign : int;
  points : int;
  cycles : float;
  log : string list;
}

exception Torture_failure of string

let run_once ?(trace = false) ?fiber_ops cfg ~schedule () =
  let tasks =
    match fiber_ops with
    | Some a -> max 1 (Array.length a)
    | None -> max 1 cfg.tasks
  in
  let op_count = max 1 cfg.ops in
  let slot_count = max 1 cfg.slots in
  Mpk_faultinj.reset ();
  (* A fresh slab makes the run a pure function of (seed, schedule):
     which record gets recycled must not depend on what earlier runs —
     possibly in another process — left on the free-list. *)
  Vma.slab_reset ();
  let trace_was_on = Mpk_trace.Tracer.on () in
  if trace then begin
    Mpk_trace.Tracer.clear ();
    Mpk_trace.Tracer.enable ()
  end;
  (* Fresh lockdep state per run: findings must belong to this
     (seed, schedule), not to whatever ran before. *)
  let lockdep_was_on = Lockdep.enabled () in
  Lockdep.enable ();
  let machine = Machine.create ~cores:tasks ~mem_mib:64 () in
  let proc = Proc.create machine in
  let mm = Proc.mm proc in
  let vmas = Mm.vmas mm in
  let cores = Array.init tasks (Machine.core machine) in
  let cycles0 = Cpu.total_charged () in
  let unbalanced0 = Lock.unbalanced () in
  (* Shared slot table: the ops of different fibers collide on these
     slots, which is where the mmap/munmap/lookup races come from. *)
  let slots = Array.make slot_count None in
  let fiber_ops =
    (* An explicit per-fiber op list (witness replay) takes the ops as
       given — no seed-derived traffic, no plant-op insertion; the only
       plant effect that still applies is Plant_recycle's disabled
       re-validation below. *)
    match fiber_ops with
    | Some a -> a
    | None ->
        let base = Mpk_util.Prng.create ~seed:cfg.seed in
        let a =
          Array.init tasks (fun _ ->
              gen_ops (Mpk_util.Prng.split base) ~ops:op_count ~slots:slot_count)
        in
        (match cfg.plant with
        | Plant_lock_order -> a.(0) <- insert_mid a.(0) Op_plant_lock_order
        | Plant_release_held -> a.(0) <- insert_mid a.(0) Op_plant_release_held
        | No_plant | Plant_recycle -> ());
        a
  in
  (* The planted protocol bug: lookups skip the recycle re-validation. *)
  Vma.set_recycle_check (cfg.plant <> Plant_recycle);
  let switches : (int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (at, target) ->
      if not (Hashtbl.mem switches at) then Hashtbl.add switches at target)
    schedule;
  let point = ref 0 in
  let current = ref 0 in
  let switch_to = ref None in
  let ops_applied = ref 0 in
  let benign_count = ref 0 in
  let log_rev = ref [] in
  let logf fi fmt =
    Printf.ksprintf (fun s -> log_rev := Printf.sprintf "t%d %s" fi s :: !log_rev) fmt
  in
  let benign fi what e =
    incr benign_count;
    logf fi "%s: %s" what (Errno.to_string e)
  in
  let page = Physmem.page_size in
  let exec_op fi op =
    let core = cores.(fi) in
    match op with
    | Op_mmap { slot; pages; ro } -> (
        (* Remap semantics on an occupied slot: maximal unmap/map churn
           is what feeds the typesafe free-list. *)
        (match slots.(slot) with
        | Some (addr, p) -> (
            slots.(slot) <- None;
            match Mm.munmap mm core ~addr ~len:(p * page) with
            | () -> logf fi "remap slot%d: unmapped 0x%x" slot addr
            | exception Errno.Error (e, _) -> benign fi "remap-unmap" e)
        | None -> ());
        let prot = if ro then Perm.r else Perm.rw in
        match Mm.mmap mm core ~len:(pages * page) ~prot () with
        | addr -> (
            slots.(slot) <- Some (addr, pages);
            logf fi "mmap slot%d %dp %s -> 0x%x" slot pages (Perm.to_string prot) addr;
            match Mm.populate mm core ~addr ~len:(pages * page) with
            | () -> ()
            | exception Errno.Error (e, _) -> benign fi "populate" e)
        | exception Errno.Error (e, _) -> benign fi "mmap" e)
    | Op_munmap { slot } -> (
        match slots.(slot) with
        | None -> logf fi "munmap slot%d: empty" slot
        | Some (addr, p) -> (
            slots.(slot) <- None;
            match Mm.munmap mm core ~addr ~len:(p * page) with
            | () -> logf fi "munmap slot%d 0x%x" slot addr
            | exception Errno.Error (e, _) -> benign fi "munmap" e))
    | Op_lookup { slot; off } -> (
        match slots.(slot) with
        | None -> logf fi "lookup slot%d: empty" slot
        | Some (addr, p) -> (
            let vpn = Page_table.vpn_of_addr addr + (off mod p) in
            (* The oracle: whatever vma the lookup protocol hands us must
               really cover the page. With the protocol intact this holds
               by construction; with [--plant recycle] the skipped
               re-validation lets a recycled (or detached) record through
               and the oracle catches the use-after-recycle. *)
            match
              Mm.find_vma_read mm (Some core) ~vpn (fun v ->
                  if not (Vma.read_valid vmas v vpn) then
                    raise
                      (Torture_failure
                         (Printf.sprintf
                            "use-after-recycle: t%d looked up vpn %#x but was handed \
                             vma [%#x,+%d)%s"
                            fi vpn v.Vma.start v.Vma.pages
                            (if v.Vma.detached then " (detached)" else ""))))
            with
            | Some () -> logf fi "lookup slot%d vpn %#x: hit" slot vpn
            | None -> logf fi "lookup slot%d vpn %#x: unmapped" slot vpn))
    | Op_protect { slot; ro } -> (
        match slots.(slot) with
        | None -> logf fi "protect slot%d: empty" slot
        | Some (addr, p) -> (
            let prot = if ro then Perm.r else Perm.rw in
            match Mm.change_protection mm core ~addr ~len:(p * page) ~prot with
            | (_ : Mm.protect_result) ->
                logf fi "protect slot%d %s" slot (Perm.to_string prot)
            | exception Errno.Error (e, _) -> benign fi "protect" e))
    | Op_plant_lock_order -> (
        (* Deterministically witness the legitimate mm_lock → vma_lock
           order (munmap detaches under the mm lock), then acquire in
           the reverse order: vma read lock held across an mm-lock
           attempt. [try_acquire] keeps the inversion from actually
           deadlocking this run — lockdep flags the Attempt either
           way, which is the point. *)
        let actor = Cpu.id core in
        (match Mm.mmap mm core ~len:page ~prot:Perm.rw () with
        | addr -> (
            try Mm.munmap mm core ~addr ~len:page with Errno.Error _ -> ())
        | exception Errno.Error _ -> ());
        match Mm.mmap mm core ~len:page ~prot:Perm.rw () with
        | addr -> (
            (match Vma.find vmas (Page_table.vpn_of_addr addr) with
            | Some v when Vma.start_read v ~actor ->
                let ml = Vma.mm_lock vmas in
                if Lock.try_acquire ml Lock.Shared ~actor then
                  Lock.release ml Lock.Shared ~actor;
                Vma.end_read vmas v ~actor;
                logf fi "planted lock-order inversion"
            | Some _ | None -> logf fi "plant lock-order: vma lost");
            try Mm.munmap mm core ~addr ~len:page with Errno.Error _ -> ())
        | exception Errno.Error _ -> logf fi "plant lock-order: mmap failed")
    | Op_plant_release_held ->
        Lock.release (Vma.mm_lock vmas) Lock.Exclusive ~actor:(Cpu.id core);
        logf fi "planted release-not-held"
  in
  let fibers =
    Array.init tasks (fun fi ->
        {
          state =
            Start
              (fun () ->
                List.iter
                  (fun op ->
                    exec_op fi op;
                    incr ops_applied)
                  fiber_ops.(fi));
        })
  in
  (* The single preemption mechanism: the same ["sched.preempt"] firing
     that lets fault injection bounce a task through Sched.preempt is,
     under torture, the only place a fiber switch can happen. *)
  let on_preempt _core_id =
    let p = !point in
    point := p + 1;
    match Hashtbl.find_opt switches p with
    | Some target
      when target <> !current
           && target >= 0
           && target < tasks
           && fibers.(target).state <> Done ->
        switch_to := Some target;
        Effect.perform Yield
    | Some _ | None -> ()
  in
  let all_done () = Array.for_all (fun f -> f.state = Done) fibers in
  let next_runnable from =
    let rec go i tries =
      if tries >= tasks then None
      else if fibers.(i mod tasks).state <> Done then Some (i mod tasks)
      else go (i + 1) (tries + 1)
    in
    go from 0
  in
  (* Deadlock/livelock detector: dispatches that advance neither the
     preemption-point counter nor the op counter are fibers bouncing off
     locks nobody will release. *)
  let stall = ref 0 in
  let last_progress = ref (-1) in
  let stall_budget = (16 * tasks) + 64 in
  let rec drive idx =
    let progress = !point + !ops_applied in
    if progress = !last_progress then begin
      incr stall;
      if !stall > stall_budget then
        raise
          (Torture_failure
             "deadlock: every live task is parked on a lock and none can make \
              progress")
    end
    else begin
      last_progress := progress;
      stall := 0
    end;
    current := idx;
    switch_to := None;
    exec fibers.(idx);
    if not (all_done ()) then
      let next =
        match !switch_to with
        | Some t when fibers.(t).state <> Done -> t
        | Some _ | None -> (
            match next_runnable ((idx + 1) mod tasks) with
            | Some i -> i
            | None -> idx (* unreachable: not all_done *))
      in
      drive next
  in
  Mpk_faultinj.set_seed cfg.seed;
  Mpk_faultinj.arm "sched.preempt" (Mpk_faultinj.Every 1);
  let failure =
    Fun.protect
      ~finally:(fun () ->
        Lock.clear_wait_hook ();
        Mpk_faultinj.reset ();
        Vma.set_recycle_check true)
      (fun () ->
        Lock.set_wait_hook (fun _lock ~actor:_ -> Effect.perform Yield);
        Mpk_faultinj.with_preempt_action on_preempt (fun () ->
            match drive 0 with
            | () -> None
            | exception Torture_failure msg -> Some msg
            | exception e -> Some ("crash: " ^ Printexc.to_string e)))
  in
  let findings =
    match failure with
    | Some _ ->
        (* Abandoned fibers still hold locks; quiescent leak checks would
           only echo the abort. Report what lockdep saw up to it. *)
        List.map Lockdep.to_string (Lockdep.findings ())
    | None ->
        let fs = List.map Lockdep.to_string (Lockdep.check_quiescent ()) in
        let fs =
          if Vma.invariant vmas then fs
          else fs @ [ "vma tree invariant violated at quiescence" ]
        in
        let unbalanced = Lock.unbalanced () - unbalanced0 in
        if unbalanced > 0 then
          fs @ [ Printf.sprintf "%d unbalanced lock release(s)" unbalanced ]
        else fs
  in
  if not lockdep_was_on then Lockdep.disable ();
  if trace && not trace_was_on then begin
    Mpk_trace.Tracer.disable ();
    Mpk_trace.Tracer.clear ()
  end;
  let reason =
    match failure, findings with
    | Some r, _ -> Some r
    | None, f :: _ -> Some f
    | None, [] -> None
  in
  {
    ok = reason = None;
    reason;
    findings;
    ops_applied = !ops_applied;
    benign = !benign_count;
    points = !point;
    cycles = Cpu.total_charged () -. cycles0;
    log = List.rev !log_rev;
  }

(* --- sweep: explore, shrink, replay --- *)

type report = {
  cfg : config;
  schedule : schedule;
  shrunk : schedule;
  reason : string;
  replay_identical : bool;
  log_tail : string list;
}

type stats = {
  runs : int;
  failures : int;
  ops_applied : int;
  benign : int;
  max_points : int;
  recycled : int;
}

type sweep_result = { stats : stats; failure : report option }

let gen_schedule prng ~horizon ~tasks ~entries =
  List.init entries (fun _ ->
      (Mpk_util.Prng.int prng (max 1 horizon), Mpk_util.Prng.int prng (max 1 tasks)))
  |> List.sort_uniq compare

let last n l =
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let sweep ?(entries = 48) ?(rounds = 16) ~seeds cfg =
  let recycled0 = Vma.slab_recycled () in
  let runs = ref 0 in
  let failures = ref 0 in
  let ops_total = ref 0 in
  let benign_total = ref 0 in
  let max_points = ref 0 in
  let found = ref None in
  let note o =
    incr runs;
    if not o.ok then incr failures;
    ops_total := !ops_total + o.ops_applied;
    benign_total := !benign_total + o.benign;
    max_points := max !max_points o.points
  in
  let fails cfg_s sched = not (run_once cfg_s ~schedule:sched ()).ok in
  let mk_report cfg_s schedule (o : outcome) =
    (* Switch decisions past the failure point never fired; drop them
       before ddmin so the minimizer starts from the relevant prefix. *)
    let relevant = List.filter (fun (at, _) -> at <= o.points) schedule in
    let shrunk = Ddmin.minimize ~fails:(fails cfg_s) relevant in
    (* The reproducer must replay byte-identically from (seed, schedule):
       same verdict, same op log, same cycle total — twice. *)
    let a = run_once cfg_s ~schedule:shrunk () in
    let b = run_once cfg_s ~schedule:shrunk () in
    let replay_identical =
      (not a.ok) && a.reason = b.reason && a.log = b.log && a.cycles = b.cycles
    in
    (* Describe the shrunk reproducer — the failure the replay line
       reproduces — not the original schedule's manifestation, which may
       be a different instance of the same bug. *)
    let reason =
      match a.reason, o.reason with
      | Some r, _ | None, Some r -> r
      | None, None -> "failed"
    in
    {
      cfg = cfg_s;
      schedule;
      shrunk;
      reason;
      replay_identical;
      log_tail = last 12 a.log;
    }
  in
  (try
     for s = 0 to max 1 seeds - 1 do
       let seed = Int64.add cfg.seed (Int64.of_int s) in
       let cfg_s = { cfg with seed } in
       (* Dry run: measures this seed's preemption-point horizon so
          schedule entries land on points that exist. Plants that need no
          interleaving (lock-order, release-not-held) already fail here,
          with the empty schedule as their reproducer. *)
       let dry = run_once cfg_s ~schedule:[] () in
       note dry;
       if not dry.ok then begin
         found := Some (mk_report cfg_s [] dry);
         raise Exit
       end;
       let horizon = dry.points in
       for round = 1 to max 1 rounds do
         let prng =
           Mpk_util.Prng.create
             ~seed:
               (Int64.logxor seed
                  (Int64.mul (Int64.of_int round) 0x9E3779B97F4A7C15L))
         in
         let schedule = gen_schedule prng ~horizon ~tasks:cfg.tasks ~entries in
         let o = run_once cfg_s ~schedule () in
         note o;
         if not o.ok then begin
           found := Some (mk_report cfg_s schedule o);
           raise Exit
         end
       done
     done
   with Exit -> ());
  {
    stats =
      {
        runs = !runs;
        failures = !failures;
        ops_applied = !ops_total;
        benign = !benign_total;
        max_points = !max_points;
        recycled = Vma.slab_recycled () - recycled0;
      };
    failure = !found;
  }

let render_report r =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "torture FAILURE (seed %Ld, plant %s)\n" r.cfg.seed
       (plant_to_string r.cfg.plant));
  Buffer.add_string buf (Printf.sprintf "  reason: %s\n" r.reason);
  Buffer.add_string buf
    (Printf.sprintf "  schedule: %d switch(es), shrunk to %d: %s\n"
       (List.length r.schedule) (List.length r.shrunk)
       (match r.shrunk with [] -> "(none needed)" | s -> schedule_to_string s));
  Buffer.add_string buf
    (Printf.sprintf "  replay byte-identical: %b\n" r.replay_identical);
  Buffer.add_string buf
    (Printf.sprintf
       "  replay: mpkctl torture --tasks %d --ops %d --seed %Ld --plant %s \
        --schedule '%s'\n"
       r.cfg.tasks r.cfg.ops r.cfg.seed (plant_to_string r.cfg.plant)
       (schedule_to_string r.shrunk));
  if r.log_tail <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "  op log (last %d before the failure):\n"
         (List.length r.log_tail));
    List.iter (fun l -> Buffer.add_string buf ("    " ^ l ^ "\n")) r.log_tail
  end;
  Buffer.contents buf
