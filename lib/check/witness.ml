open Mpk_analysis

(* Concurrency-witness replay: compile a static race/deadlock/atomicity
   witness (Lint) into a torture-harness run and search for the
   adversarial schedule the finding claims exists.

   The compilation is per-fiber: the witness's steps are grouped by
   thread, each thread's Load/Store ops on a mapping slot become the
   harness ops that exercise the same protocol paths —

     victim thread     Load (vma s)  -> Op_lookup   (find_vma_read walk)
                       Store (vma s) -> Op_protect  (locked mutation)
     all other threads Store (vma s) -> Op_mmap     (remap = unmap+map,
                                                     the recycle churn)
                       Load (vma s)  -> Op_lookup

   with cfg.plant = Plant_recycle so the harness's lookup protocol skips
   re-validation, exactly the discipline hole the static finding
   describes. The harness's own oracle (Vma.read_valid inside every
   lookup) is then the judge: if some schedule makes it fire, the
   static finding is Confirmed by a concrete interleaving; the schedule
   is returned so `mpkctl torture --schedule` can replay it.

   Deadlock witnesses compile to the harness's lock-order plant op,
   which performs the inverted acquisition natively; dynamic lockdep is
   the judge there.

   The search itself is the simplest one that can work: a dry run
   (empty schedule = run-to-completion per fiber), then every
   single-switch schedule [(p, t)] up to the dry run's preemption-point
   horizon. One preemption inside the victim's lookup window is all
   these races need — the same reason the torture sweep's random
   schedules find them. *)

type outcome = {
  verdict : Replay.verdict;
  schedule : Torture.schedule option;  (* the confirming schedule, when Confirmed *)
  runs : int;  (* harness runs spent searching *)
  note : string;
}

let pp_outcome fmt (o : outcome) =
  Format.fprintf fmt "%s (%d run%s)%s%s"
    (Replay.verdict_to_string o.verdict)
    o.runs
    (if o.runs = 1 then "" else "s")
    (match o.schedule with
    | Some s -> Printf.sprintf " schedule=[%s]" (Torture.schedule_to_string s)
    | None -> "")
    (if o.note = "" then "" else ": " ^ o.note)

(* --- compilation --- *)

let slot_of_loc = function Ir.L_vma s -> Some s | _ -> None

let op_of_step ~victim (s : Lint.step) =
  match s.Lint.sop with
  | Ir.Load { loc } ->
      Option.map (fun slot -> Torture.Op_lookup { slot; off = 0 }) (slot_of_loc loc)
  | Ir.Store { loc } ->
      Option.map
        (fun slot ->
          if s.Lint.stid = victim then Torture.Op_protect { slot; ro = true }
          else Torture.Op_mmap { slot; pages = 1; ro = false })
        (slot_of_loc loc)
  | _ -> None

(* Group the witness by thread into per-fiber op lists. Fiber 0 is
   always main (tid 0): it runs first under the empty schedule, so its
   Op_mmap installs the mapping before anyone looks it up. *)
let fibers_of_witness ~victim (witness : Lint.step list) =
  let tids =
    List.sort_uniq compare (0 :: List.map (fun s -> s.Lint.stid) witness)
  in
  let ops_of tid =
    List.filter_map
      (fun s -> if s.Lint.stid = tid then op_of_step ~victim s else None)
      witness
  in
  Array.of_list (List.map ops_of tids)

let has_adversary_store ~victim (witness : Lint.step list) =
  List.exists
    (fun (s : Lint.step) ->
      s.Lint.stid <> victim
      && s.Lint.stid <> 0
      && match s.Lint.sop with Ir.Store _ -> true | _ -> false)
    witness

(* --- schedule search --- *)

let reason_mentions (o : Torture.outcome) needles =
  let mentions hay =
    List.exists
      (fun needle ->
        let nl = String.length needle and hl = String.length hay in
        let rec at i = i + nl <= hl && (String.sub hay i nl = needle || at (i + 1)) in
        at 0)
      needles
  in
  (match o.Torture.reason with Some r -> mentions r | None -> false)
  || List.exists mentions o.Torture.findings

let max_horizon = 2048

(* Dry run first, then every single-switch schedule [(p, t)] for p up to
   the dry run's point count. Returns (outcome, runs). *)
let search ~fiber_ops ~cfg ~matches =
  let run schedule =
    Torture.run_once ~fiber_ops cfg ~schedule ()
  in
  let runs = ref 1 in
  let dry = run [] in
  if matches dry then Replay.Confirmed, Some [], !runs
  else begin
    let horizon = min (dry.Torture.points + 8) max_horizon in
    let tasks = Array.length fiber_ops in
    let found = ref None in
    let p = ref 0 in
    while !found = None && !p < horizon do
      let t = ref 1 in
      while !found = None && !t < tasks do
        let schedule = [ !p, !t ] in
        incr runs;
        if matches (run schedule) then found := Some schedule;
        incr t
      done;
      incr p
    done;
    match !found with
    | Some s -> Replay.Confirmed, Some s, !runs
    | None -> Replay.Unreproduced, None, !runs
  end

let unreproduced note = { verdict = Replay.Unreproduced; schedule = None; runs = 0; note }

let confirm_recycle_race ~loc ~witness ~victim ~note_confirmed =
  match slot_of_loc loc with
  | None ->
      unreproduced
        (Printf.sprintf "no harness mapping for shared location %s"
           (Ir.loc_to_string loc))
  | Some slot ->
      let fiber_ops = fibers_of_witness ~victim witness in
      (* An atomicity witness carries only main + the victim; give it
         the adversary the finding postulates — remap churn on the
         contended slot. *)
      let fiber_ops =
        if has_adversary_store ~victim witness then fiber_ops
        else
          Array.append fiber_ops
            [| [ Torture.Op_mmap { slot; pages = 1; ro = false } ] |]
      in
      let cfg =
        {
          Torture.default_config with
          Torture.slots = slot + 1;
          seed = 1L;
          plant = Torture.Plant_recycle;
        }
      in
      let matches o = reason_mentions o [ "use-after-recycle" ] in
      let verdict, schedule, runs = search ~fiber_ops ~cfg ~matches in
      {
        verdict;
        schedule;
        runs;
        note =
          (match verdict with
          | Replay.Confirmed -> note_confirmed
          | Replay.Unreproduced ->
              "no single-switch schedule fired the lookup oracle");
      }

let confirm (f : Lint.finding) : outcome =
  match f.Lint.detail with
  | Lint.Race { loc; _ } ->
      confirm_recycle_race ~loc ~witness:f.Lint.witness ~victim:f.Lint.tid
        ~note_confirmed:
          "the schedule preempts the victim's lookup, the adversary recycles \
           the record, and the harness oracle catches the stale use"
  | Lint.Atomicity { loc; _ } ->
      confirm_recycle_race ~loc ~witness:f.Lint.witness ~victim:f.Lint.tid
        ~note_confirmed:
          "the schedule lands in the dropped-lock window and invalidates the \
           checked record before the mutation"
  | Lint.Deadlock { cycle } ->
      if List.mem "mm_lock" cycle && List.mem "vma_lock" cycle then begin
        let fiber_ops = [| [ Torture.Op_plant_lock_order ] |] in
        let cfg = { Torture.default_config with Torture.plant = Torture.Plant_lock_order } in
        let matches o =
          reason_mentions o [ "inversion"; "lock-order cycle"; "deadlock" ]
        in
        let verdict, schedule, runs = search ~fiber_ops ~cfg ~matches in
        {
          verdict;
          schedule;
          runs;
          note =
            (match verdict with
            | Replay.Confirmed ->
                "dynamic lockdep flags the same inverted acquisition order"
            | Replay.Unreproduced -> "lockdep did not flag the inversion");
        }
      end
      else
        unreproduced
          (Printf.sprintf "no harness mapping for cycle %s"
             (String.concat " -> " cycle))
  | Lint.Unlock_unheld { lk } ->
      if lk.Ir.lcls = "mm_lock" then begin
        let fiber_ops = [| [ Torture.Op_plant_release_held ] |] in
        let cfg = Torture.default_config in
        let matches o = reason_mentions o [ "release" ] in
        let verdict, schedule, runs = search ~fiber_ops ~cfg ~matches in
        {
          verdict;
          schedule;
          runs;
          note =
            (match verdict with
            | Replay.Confirmed -> "the kernel lock layer rejects the release"
            | Replay.Unreproduced -> "the release was not flagged");
        }
      end
      else
        unreproduced
          (Printf.sprintf "no harness mapping for lock class %s" lk.Ir.lcls)
  | _ ->
      (* Sequential findings already have a replay engine. *)
      let r = Replay.confirm f in
      { verdict = r.Replay.verdict; schedule = None; runs = 1; note = r.Replay.note }
