(** Lockdep-style lock-discipline validator (DESIGN.md §13, invariant
    I7).

    When enabled, installs itself as the kernel {!Mpk_kernel.Lock}
    event hook and tracks per-actor held-sets. From them it builds the
    class-level lock-order graph and reports:
    - {b ordering inversions} — an acquire whose held-set implies an
      A→B edge when B→A is already established (plus a full-graph
      cycle sweep at quiescence for longer cycles);
    - {b same-class nesting} — two instances of one class held at once
      (would need an ordering annotation in real lockdep);
    - {b self-deadlocks} — waiting on one's own hold (shared→exclusive
      upgrade);
    - {b releases-not-held};
    - {b leaks} — holds (vm_refcnt references) outliving quiescence,
      including unbalanced mmgrab pins.

    Findings are deduplicated and preserved until {!reset}/{!enable};
    the auditor folds them in as I7 whenever the recorder is enabled. *)

type finding =
  | Inversion of { first : string * string; second : string * string; actor : int }
  | Cycle of { classes : string list }
  | Same_class_nesting of { cls : string; actor : int }
  | Self_deadlock of { cls : string; actor : int }
  | Release_not_held of { cls : string; actor : int }
  | Leak of { cls : string; actor : int; count : int }

val to_string : finding -> string

val enable : unit -> unit
(** Reset state and install the recorder as the Lock event hook. *)

val disable : unit -> unit
(** Uninstall the hook. Findings survive until the next [enable]. *)

val enabled : unit -> bool
val reset : unit -> unit

val findings : unit -> finding list
(** Findings recorded so far, oldest first. *)

val order_edges : unit -> (string * string) list
(** The class-level lock-order graph observed so far — [(a, b)] means
    "while holding class [a], some actor attempted class [b]" — sorted.
    Survives {!disable}, like findings, until the next {!enable}. The
    static lock-order pass ({!Mpk_analysis.Lint}) cross-checks its
    all-paths graph against these dynamic observations. *)

val check_quiescent : unit -> finding list
(** Run the end-of-run checks (held-lock/refcount leaks, mmgrab
    balance, full cycle sweep) and return all findings. Call only when
    every task has finished its critical sections. *)
