(* Forward abstract interpretation over one thread's CFG.

   Classic worklist fixpoint: state flows along edges, joins at merge
   points (loop heads included), iterates until stable. Domains must
   have finite height — counters saturate (see [Interval]).

   Two things are non-standard but load-bearing:

   - Escape edges propagate the *incoming* state of their source node,
     not the transferred one: a signal escape leaves the op before it
     completes, so e.g. an interrupted mpk_begin has not yet taken its
     pin on that path.

   - Every node carries a representative *path witness*: one concrete
     entry-to-node path realizing (a contributor to) its abstract state.
     When a join changes a node's state, the witness is replaced by the
     path that caused the change, so the witness for "depth may be 1 at
     exit" is a path that actually leaks the begin. Witnesses are what
     the --confirm replay executes on the simulator. *)

type 'a result = {
  in_state : (int, 'a) Hashtbl.t;  (* node id -> state on entry *)
  witness : (int, int list) Hashtbl.t;  (* node id -> path of node ids (excl. node) *)
}

let state r n = Hashtbl.find_opt r.in_state n
let path_to r n = Option.value ~default:[] (Hashtbl.find_opt r.witness n) @ [ n ]

(* [transfer node st] is the post-state of executing [node.op] in [st].
   It must be monotone and pure. *)
let forward (p : Ir.program) ~(entry : int) ~init ~equal ~join ~transfer =
  let in_state = Hashtbl.create 64 in
  let witness = Hashtbl.create 64 in
  let work = Queue.create () in
  Hashtbl.replace in_state entry init;
  Hashtbl.replace witness entry [];
  Queue.add entry work;
  (* Guard against non-converging domains: |nodes| * height budget. *)
  let budget = ref (Array.length p.nodes * 512) in
  while not (Queue.is_empty work) do
    decr budget;
    if !budget < 0 then failwith "Dataflow.forward: fixpoint budget exhausted (domain not finite-height?)";
    let id = Queue.pop work in
    let node = Ir.node p id in
    let st = Hashtbl.find in_state id in
    let path = Hashtbl.find witness id in
    let out = transfer node st in
    List.iter
      (fun (edge, succ) ->
        let propagated = if edge = Ir.Escape then st else out in
        let updated =
          match Hashtbl.find_opt in_state succ with
          | None -> Some propagated
          | Some old ->
              let joined = join old propagated in
              if equal joined old then None else Some joined
        in
        match updated with
        | None -> ()
        | Some st' ->
            Hashtbl.replace in_state succ st';
            Hashtbl.replace witness succ (path @ [ id ]);
            Queue.add succ work)
      node.Ir.succs
  done;
  { in_state; witness }

(* Nodes of the thread that were reached, in id order. *)
let reached (p : Ir.program) r tid =
  Ir.thread_nodes p tid |> List.filter (fun n -> Hashtbl.mem r.in_state n.Ir.id)

(* --- saturating interval counter, the workhorse lattice --- *)

module Interval = struct
  (* [lo, hi] with hi saturating at [cap]: join is the hull, so loops
     converge in at most cap steps. *)
  let cap = 8

  type t = int * int

  let zero = 0, 0
  let equal (a, b) (c, d) = a = c && b = d
  let join (a, b) (c, d) = min a c, max b d
  let incr (lo, hi) = min (lo + 1) cap, min (hi + 1) cap
  let decr (lo, hi) = max (lo - 1) 0, max (hi - 1) 0
  let to_string (lo, hi) = if lo = hi then string_of_int lo else Printf.sprintf "[%d,%d]" lo hi
end

(* --- must/may set pairs, for held-lock and thread-liveness domains --- *)

module MustMay (Ord : Set.OrderedType) = struct
  module S = Set.Make (Ord)

  (* [must] = members on every path to here, [may] = on some path. Entry
     states are exact (must = may); joins intersect [must] and union
     [may], so over a finite universe the lattice has finite height. *)
  type t = { must : S.t; may : S.t }

  let exact s = { must = s; may = s }
  let empty = exact S.empty
  let equal a b = S.equal a.must b.must && S.equal a.may b.may
  let join a b = { must = S.inter a.must b.must; may = S.union a.may b.may }
  let add x t = { must = S.add x t.must; may = S.add x t.may }
  let remove x t = { must = S.remove x t.must; may = S.remove x t.may }
end

(* --- int-keyed maps with a default, for per-vkey state --- *)

module VMap = struct
  include Map.Make (Int)

  let find_d ~default k m = Option.value ~default (find_opt k m)

  let equal_d ~default eq a b =
    let keys m = fold (fun k _ acc -> k :: acc) m [] in
    List.for_all
      (fun k -> eq (find_d ~default k a) (find_d ~default k b))
      (List.sort_uniq Stdlib.compare (keys a @ keys b))

  let join_d ~default j a b =
    merge
      (fun _ x y ->
        Some (j (Option.value ~default x) (Option.value ~default y)))
      a b
end
