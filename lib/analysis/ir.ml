(* A small CFG-based IR for libmpk *client protocols*.

   A client program is the shape of an application's use of the libmpk
   API — which vkeys it maps, where it opens and closes domains, which
   regions it reads/writes/executes, what code its JIT emits, which
   threads it spawns — with the data computation abstracted away. The
   static analyzer (Lint) proves protocol properties over this IR before
   a single simulated cycle runs; the dynamic stress driver emits the
   same IR for its minimized failing traces, so the two tools share one
   vocabulary.

   Control flow is explicit: branch/merge, loop back edges, and
   signal-escape edges (an op that can fault may transfer control to a
   handler block *before* completing — the siglongjmp idiom from the
   PR 3 signal layer, which is how an mpk_end gets skipped in real
   code). *)

open Mpk_hw

(* --- simulated instruction stream (for the ERIM-style gadget scan) --- *)

(* The JIT case study emits instruction streams into its code cache. For
   the WRPKRU gadget scan we only care which instructions occur, not
   their encodings: a WRPKRU occurrence is *safe* (ERIM §3.1) only when
   it is immediately followed by a check that the loaded PKRU value is
   the intended one, with a branch to a trusted error path otherwise. *)
type insn =
  | I_op of string  (* ordinary computation, opaque to the scan *)
  | I_wrpkru  (* writes PKRU from a register *)
  | I_cmp_pkru  (* compares PKRU against the expected constant *)
  | I_br_trusted  (* branches to the trusted mediation path on mismatch *)
  | I_ret

let insn_to_string = function
  | I_op s -> s
  | I_wrpkru -> "wrpkru"
  | I_cmp_pkru -> "cmp-pkru"
  | I_br_trusted -> "br-trusted"
  | I_ret -> "ret"

(* --- locks and shared kernel locations (concurrency analysis) --- *)

(* Lock identity is class + instance, mirroring lib/kernel/lock.ml: the
   classes are the kernel's ("mm_lock", "vma_lock"), and the instance
   distinguishes e.g. the per-VMA locks of different slots. The lockset
   pass works over full lockrefs; the lock-order pass projects onto
   classes, exactly like lockdep. *)
type lockref = { lcls : string; linst : int }

let lockref_to_string l =
  if l.linst = 0 then l.lcls else Printf.sprintf "%s#%d" l.lcls l.linst

type lmode = Lk_shared | Lk_excl

let lmode_to_string = function Lk_shared -> "shared" | Lk_excl -> "excl"

(* Shared kernel state the concurrency passes track accesses to. These
   are *kernel-internal* locations (protected by locks), as opposed to
   Read/Write's client data accesses (protected by MPK domains). *)
type loc = L_vma of int | L_pkey_bitmap | L_key_cache of int

let loc_to_string = function
  | L_vma s -> Printf.sprintf "vma[%d]" s
  | L_pkey_bitmap -> "pkey_bitmap"
  | L_key_cache i -> Printf.sprintf "key_cache[%d]" i

(* --- operations --- *)

type op =
  | Mmap of { vkey : int; pages : int; prot : Perm.t }  (* mpk_mmap *)
  | Free of { vkey : int }  (* mpk_free / mpk_munmap: vkey leaves circulation *)
  | Begin of { vkey : int; prot : Perm.t }  (* mpk_begin *)
  | End of { vkey : int }  (* mpk_end *)
  | Mprotect of { vkey : int; prot : Perm.t }  (* mpk_mprotect: global, synchronized *)
  | Read of { vkey : int }  (* data read of the region *)
  | Write of { vkey : int }  (* data write into the region *)
  | Exec of { vkey : int }  (* instruction fetch from the region *)
  | Emit of { vkey : int; code : insn list }  (* JIT: write an instruction stream *)
  | Spawn of { tid : int }  (* start thread [tid] (its CFG is in the program) *)
  | Join of { tid : int }  (* wait for thread [tid] *)
  | Lock of { lk : lockref; lmode : lmode }  (* kernel lock acquire *)
  | Unlock of { lk : lockref; lmode : lmode }  (* kernel lock release *)
  | Load of { loc : loc }  (* read of shared kernel state *)
  | Store of { loc : loc }  (* write of shared kernel state *)
  | Label of string  (* structural no-op: branch points, loop heads, comments *)

let op_to_string = function
  | Mmap { vkey; pages; prot } ->
      Printf.sprintf "mmap v%d %dp %s" vkey pages (Perm.to_string prot)
  | Free { vkey } -> Printf.sprintf "free v%d" vkey
  | Begin { vkey; prot } -> Printf.sprintf "begin v%d %s" vkey (Perm.to_string prot)
  | End { vkey } -> Printf.sprintf "end v%d" vkey
  | Mprotect { vkey; prot } -> Printf.sprintf "mprotect v%d %s" vkey (Perm.to_string prot)
  | Read { vkey } -> Printf.sprintf "read v%d" vkey
  | Write { vkey } -> Printf.sprintf "write v%d" vkey
  | Exec { vkey } -> Printf.sprintf "exec v%d" vkey
  | Emit { vkey; code } ->
      Printf.sprintf "emit v%d [%s]" vkey
        (String.concat "; " (List.map insn_to_string code))
  | Spawn { tid } -> Printf.sprintf "spawn t%d" tid
  | Join { tid } -> Printf.sprintf "join t%d" tid
  | Lock { lk; lmode } ->
      Printf.sprintf "lock %s %s" (lockref_to_string lk) (lmode_to_string lmode)
  | Unlock { lk; lmode } ->
      Printf.sprintf "unlock %s %s" (lockref_to_string lk) (lmode_to_string lmode)
  | Load { loc } -> Printf.sprintf "load %s" (loc_to_string loc)
  | Store { loc } -> Printf.sprintf "store %s" (loc_to_string loc)
  | Label s -> Printf.sprintf "# %s" s

(* --- control-flow graph --- *)

type edge =
  | Seq  (* fall-through *)
  | Branch  (* one arm of a conditional, or a loop head decision *)
  | Back  (* loop back edge *)
  | Escape  (* signal escape: taken *during* the source op, before it completes *)

let edge_to_string = function
  | Seq -> "seq"
  | Branch -> "branch"
  | Back -> "back"
  | Escape -> "escape"

type node = {
  id : int;
  tid : int;
  op : op;
  mutable succs : (edge * int) list;  (* empty = thread exit *)
}

type thread = { tid : int; entry : int }

type program = {
  pname : string;
  nodes : node array;  (* indexed by node id *)
  threads : thread list;  (* head = main (tid 0) *)
}

let node p id = p.nodes.(id)

let thread_nodes p tid =
  Array.to_list p.nodes |> List.filter (fun (n : node) -> n.tid = tid)

let main_thread p =
  match p.threads with
  | t :: _ -> t
  | [] -> invalid_arg "Ir.main_thread: empty program"

let find_thread p tid = List.find_opt (fun t -> t.tid = tid) p.threads

(* --- structured builder --- *)

(* App models are written as structured statements; lowering produces the
   CFG. [Guard] models a per-request signal guard: every op in its body
   gets an escape edge into the handler (control leaves the op before it
   completes — the balance pass sees the pre-op state on that edge). *)
type stmt =
  | Op of op
  | If of string * stmt list * stmt list
  | Loop of string * stmt list
  | Guard of stmt list * stmt list  (* body, signal handler *)

let op o = Op o
let label s = Op (Label s)

type builder = { mutable rev_nodes : node list; mutable next : int }

let add_node b tid o succs =
  let n = { id = b.next; tid; op = o; succs } in
  b.next <- b.next + 1;
  b.rev_nodes <- n :: b.rev_nodes;
  n

(* Lower [stmts] so that execution continues at node [k]; returns the
   entry node id of the lowered chain. Built back-to-front: every
   statement knows its continuation. *)
let rec lower_seq b tid stmts k =
  List.fold_right (fun s k -> lower_stmt b tid s k) stmts k

and lower_stmt b tid s k =
  match s with
  | Op o -> (add_node b tid o [ Seq, k ]).id
  | If (lbl, a, bb) ->
      let ka = lower_seq b tid a k in
      let kb = lower_seq b tid bb k in
      (add_node b tid (Label lbl) [ Branch, ka; Branch, kb ]).id
  | Loop (lbl, body) ->
      (* The head decides: iterate (into the body, whose continuation is
         the head again — the back edge) or leave (to [k]). *)
      let head = add_node b tid (Label lbl) [] in
      let kb = lower_seq b tid body head.id in
      (* mark the edge returning to the head as the back edge *)
      List.iter
        (fun n ->
          n.succs <-
            List.map
              (fun (e, t) -> if t = head.id && e = Seq then Back, t else e, t)
              n.succs)
        b.rev_nodes;
      head.succs <- [ Branch, kb; Branch, k ];
      head.id
  | Guard (body, handler) ->
      let kh = lower_seq b tid handler k in
      let before = b.next in
      let kb = lower_seq b tid body k in
      (* Memory accesses lowered for the body can escape into the
         handler mid-op (a pkey fault delivered as a signal). API calls
         report failure by exception, not signal, so they get no escape
         edge. *)
      let faultable n =
        match n.op with
        | Read _ | Write _ | Exec _ | Emit _ -> true
        | _ -> false
      in
      List.iter
        (fun n ->
          if n.id >= before && faultable n && not (List.mem (Escape, kh) n.succs) then
            n.succs <- n.succs @ [ Escape, kh ])
        b.rev_nodes;
      kb

let build ~name ~main ?(threads = []) () =
  let b = { rev_nodes = []; next = 0 } in
  let lower tid stmts =
    let exit_node = add_node b tid (Label "exit") [] in
    let entry = lower_seq b tid stmts exit_node.id in
    { tid; entry }
  in
  let main_t = lower 0 main in
  let rest = List.map (fun (tid, stmts) -> lower tid stmts) threads in
  let nodes =
    List.sort (fun a b -> compare a.id b.id) b.rev_nodes |> Array.of_list
  in
  Array.iteri
    (fun i n -> if n.id <> i then invalid_arg "Ir.build: node ids not dense")
    nodes;
  { pname = name; nodes; threads = main_t :: rest }

(* A straight-line program from a flat (tid, op) trace: each thread's ops
   in order, the main thread spawning every other thread up front and
   joining them at the end. This is how minimized stress traces are
   re-emitted as IR programs. *)
let of_trace ~name steps =
  let tids =
    List.filter_map (fun (tid, _) -> if tid <> 0 then Some tid else None) steps
    |> List.sort_uniq compare
  in
  let ops_of tid = List.filter_map (fun (t, o) -> if t = tid then Some (Op o) else None) steps in
  let main =
    List.map (fun tid -> Op (Spawn { tid })) tids
    @ ops_of 0
    @ List.map (fun tid -> Op (Join { tid })) tids
  in
  build ~name ~main ~threads:(List.map (fun tid -> tid, ops_of tid) tids) ()

(* --- lifting lock traces into analyzable programs --- *)

(* Trace events carry the lock *class* but deliberately no instance id
   (event.ml: instance ids come from a process-global counter and would
   make trace bytes depend on process history), so lifted locks collapse
   to instance 0 of their class. That is exactly the granularity the
   lock-order pass needs — its graph is built over classes, like
   lockdep's — and a sound coarsening for the lockset pass: distinct
   instances of one class become one abstract lock, so a lifted lockset
   only ever over-approximates the consistently-held set. Lock actors
   are core ids in practice; an event with no core context (actor -1,
   kernel metadata walks) is attributed to the main thread. *)
let lift_lock_events (events : Mpk_trace.Event.t list) =
  List.filter_map
    (fun (e : Mpk_trace.Event.t) ->
      let lift ctor cls excl actor =
        let lk = { lcls = cls; linst = 0 } in
        let lmode = if excl then Lk_excl else Lk_shared in
        Some (max actor 0, ctor lk lmode)
      in
      match e.Mpk_trace.Event.ev with
      | Mpk_trace.Event.Lock_acquire { cls; excl; actor } ->
          lift (fun lk lmode -> Lock { lk; lmode }) cls excl actor
      | Mpk_trace.Event.Lock_release { cls; excl; actor } ->
          lift (fun lk lmode -> Unlock { lk; lmode }) cls excl actor
      | _ -> None)
    events

(* A real execution's lock trace as a straight-line program: what
   `mpkctl torture --trace`-style runs feed the static passes. *)
let of_trace_events ~name events = of_trace ~name (lift_lock_events events)

(* --- pretty-printing --- *)

let pp_node fmt n =
  let succs =
    n.succs
    |> List.map (fun (e, t) ->
           match e with Seq -> string_of_int t | _ -> Printf.sprintf "%s:%d" (edge_to_string e) t)
    |> String.concat ","
  in
  Format.fprintf fmt "%3d: %-28s -> %s" n.id (op_to_string n.op)
    (if succs = "" then "exit" else succs)

let pp_program fmt p =
  Format.fprintf fmt "program %s@." p.pname;
  List.iter
    (fun t ->
      Format.fprintf fmt " thread %d (entry %d):@." t.tid t.entry;
      List.iter
        (fun n -> Format.fprintf fmt "  %a@." pp_node n)
        (List.sort (fun a b -> compare a.id b.id) (thread_nodes p t.tid)))
    p.threads
