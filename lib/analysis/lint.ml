(* Static domain-safety lints over libmpk client IR programs.

   Five passes, each a forward abstract interpretation (Dataflow.forward)
   over every thread CFG:

   - typestate   key lifecycle: use-after-free, double-free, mmap of a
                 live vkey, leak-on-exit (libmpk §4.1 lifecycle)
   - balance     mpk_begin/mpk_end pairing on *all* paths, including
                 early returns and signal-escape edges (§4.2; a leaked
                 begin pins its hardware key forever)
   - wx          W^X: no abstract state in which a page group is both
                 writable and executable, and no instruction fetch while
                 the group is writable (§6.1 JIT case study)
   - gadget      ERIM-style unsafe-WRPKRU scan over the instruction
                 streams the JIT emits (ERIM §3.1: every WRPKRU must be
                 followed by a check of the loaded value)
   - toctou      lazy do_pkey_sync hazard: a global revocation
                 (mpk_mprotect) races a concurrently live thread whose
                 access is not covered by its own mpk_begin — until the
                 victim's deferred task_work runs, its PKRU still grants
                 the revoked right (§4.2, Fig 7)

   Findings carry a severity and a concrete path witness; Mpk_check.Replay
   executes witnesses on the simulator with the PR 2 auditor as oracle. *)

open Mpk_hw

type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "ERROR"
  | Warning -> "WARNING"
  | Info -> "INFO"

type access = A_read | A_write

let access_to_string = function A_read -> "read" | A_write -> "write"

type detail =
  | Use_after_free of { vkey : int }
  | Use_unmapped of { vkey : int }
  | Double_free of { vkey : int }
  | Free_unmapped of { vkey : int }
  | Mmap_live of { vkey : int }
  | Leak_on_exit of { vkey : int }
  | Unbalanced of { vkey : int; definite : bool }
  | End_underflow of { vkey : int }
  | Free_inside_begin of { vkey : int }
  | Wx_mapping of { vkey : int }
  | Wx_exec_writable of { vkey : int; window : bool }
  | Unsafe_wrpkru of { vkey : int; offset : int }
  | Toctou of { vkey : int; victim : int; access : access }
  | Race of { loc : Ir.loc; t1 : int; t2 : int; write : bool }
  | Deadlock of { cycle : string list }  (* lock classes, cyclically ordered *)
  | Atomicity of { loc : Ir.loc; dropped : Ir.lockref }
  | Unlock_unheld of { lk : Ir.lockref }
  | Maybe of string  (* imprecision-only findings (joined states) *)

type step = { stid : int; sop : Ir.op }

type finding = {
  pass : string;
  severity : severity;
  detail : detail;
  tid : int;  (* thread of the violating node *)
  node : int;
  message : string;
  witness : step list;  (* program-start-to-violation path *)
}

let pp_finding fmt f =
  Format.fprintf fmt "[%s] %s (t%d, node %d): %s" (severity_to_string f.severity)
    f.pass f.tid f.node f.message

let pp_witness fmt f =
  List.iter
    (fun s ->
      match s.sop with
      | Ir.Label _ -> ()
      | o -> Format.fprintf fmt "    t%d: %s@." s.stid (Ir.op_to_string o))
    f.witness

let has_errors findings = List.exists (fun f -> f.severity = Error) findings

(* --- shared per-thread analysis driver --- *)

(* Run one pass over every thread. The main thread starts from
   [init_main]; a spawned thread starts from [derive_init] applied to the
   main state at its (first reached) Spawn node, and its witnesses are
   prefixed with the main path to that spawn. Threads never spawned are
   dead code and are skipped. *)
let thread_runs (p : Ir.program) ~init_main ~derive_init ~equal ~join ~transfer =
  let main = Ir.main_thread p in
  let rmain =
    Dataflow.forward p ~entry:main.Ir.entry ~init:init_main ~equal ~join ~transfer
  in
  let steps_of tid ids =
    List.map (fun id -> { stid = tid; sop = (Ir.node p id).Ir.op }) ids
  in
  let spawn_node tid =
    Dataflow.reached p rmain 0
    |> List.find_opt (fun n ->
           match n.Ir.op with Ir.Spawn { tid = t } -> t = tid | _ -> false)
  in
  let others =
    List.filter_map
      (fun (t : Ir.thread) ->
        if t.Ir.tid = 0 then None
        else
          match spawn_node t.Ir.tid with
          | None -> None
          | Some sn -> (
              match Dataflow.state rmain sn.Ir.id with
              | None -> None
              | Some st ->
                  let r =
                    Dataflow.forward p ~entry:t.Ir.entry ~init:(derive_init st)
                      ~equal ~join ~transfer
                  in
                  Some (t.Ir.tid, r, steps_of 0 (Dataflow.path_to rmain sn.Ir.id))))
      p.Ir.threads
  in
  (0, rmain, []) :: others

(* Evaluate [check] on the final abstract state of every reached node. *)
let collect p runs ~check =
  List.concat_map
    (fun (tid, r, prefix) ->
      Dataflow.reached p r tid
      |> List.concat_map (fun n ->
             match Dataflow.state r n.Ir.id with
             | None -> []
             | Some st ->
                 let witness path_tid =
                   prefix
                   @ List.map
                       (fun id -> { stid = path_tid; sop = (Ir.node p id).Ir.op })
                       (Dataflow.path_to r n.Ir.id)
                 in
                 check ~tid ~node:n ~state:st ~witness:(fun () -> witness tid)))
    runs

let mk ~pass ~severity ~detail ~tid ~node ~message ~witness =
  { pass; severity; detail; tid; node = node.Ir.id; message; witness = witness () }

(* --- pass 1: key-lifecycle typestate --- *)

module Typestate = struct
  type ts = Unmapped | Mapped | Freed | Top

  let ts_to_string = function
    | Unmapped -> "unmapped"
    | Mapped -> "mapped"
    | Freed -> "freed"
    | Top -> "unknown"

  let join_ts a b = if a = b then a else Top

  let default = Unmapped
  let equal = Dataflow.VMap.equal_d ~default ( = )
  let join = Dataflow.VMap.join_d ~default join_ts

  let transfer (n : Ir.node) st =
    match n.Ir.op with
    | Ir.Mmap { vkey; _ } -> Dataflow.VMap.add vkey Mapped st
    | Ir.Free { vkey } -> Dataflow.VMap.add vkey Freed st
    | _ -> st

  let run p =
    let runs =
      thread_runs p ~init_main:Dataflow.VMap.empty ~derive_init:Fun.id ~equal ~join
        ~transfer
    in
    let pass = "typestate" in
    let check ~tid ~node ~state ~witness =
      let ts v = Dataflow.VMap.find_d ~default v state in
      let use v what =
        match ts v with
        | Freed ->
            [
              mk ~pass ~severity:Error ~detail:(Use_after_free { vkey = v }) ~tid ~node
                ~message:(Printf.sprintf "%s of freed vkey %d (use-after-free)" what v)
                ~witness;
            ]
        | Unmapped ->
            [
              mk ~pass ~severity:Error ~detail:(Use_unmapped { vkey = v }) ~tid ~node
                ~message:(Printf.sprintf "%s of vkey %d before mpk_mmap" what v)
                ~witness;
            ]
        | Top ->
            [
              mk ~pass ~severity:Warning ~detail:(Maybe "use of possibly-freed vkey")
                ~tid ~node
                ~message:
                  (Printf.sprintf "%s of vkey %d whose lifecycle state depends on the path"
                     what v)
                ~witness;
            ]
        | Mapped -> []
      in
      match node.Ir.op with
      | Ir.Mmap { vkey; _ } -> (
          match ts vkey with
          | Mapped ->
              [
                mk ~pass ~severity:Error ~detail:(Mmap_live { vkey }) ~tid ~node
                  ~message:
                    (Printf.sprintf "mpk_mmap of vkey %d which already has a page group"
                       vkey)
                  ~witness;
              ]
          | Top ->
              [
                mk ~pass ~severity:Warning ~detail:(Maybe "mmap of possibly-live vkey")
                  ~tid ~node
                  ~message:(Printf.sprintf "mpk_mmap of vkey %d may already be mapped" vkey)
                  ~witness;
              ]
          | Unmapped | Freed -> [])
      | Ir.Free { vkey } -> (
          match ts vkey with
          | Freed ->
              [
                mk ~pass ~severity:Error ~detail:(Double_free { vkey }) ~tid ~node
                  ~message:(Printf.sprintf "double free of vkey %d" vkey) ~witness;
              ]
          | Unmapped ->
              [
                mk ~pass ~severity:Error ~detail:(Free_unmapped { vkey }) ~tid ~node
                  ~message:(Printf.sprintf "free of vkey %d which was never mapped" vkey)
                  ~witness;
              ]
          | Top ->
              [
                mk ~pass ~severity:Warning ~detail:(Maybe "free of possibly-freed vkey")
                  ~tid ~node
                  ~message:
                    (Printf.sprintf "free of vkey %d in %s state" vkey
                       (ts_to_string Top))
                  ~witness;
              ]
          | Mapped -> [])
      | Ir.Begin { vkey; _ } -> use vkey "mpk_begin"
      | Ir.End { vkey } -> use vkey "mpk_end"
      | Ir.Mprotect { vkey; _ } -> use vkey "mpk_mprotect"
      | Ir.Read { vkey } -> use vkey "read"
      | Ir.Write { vkey } -> use vkey "write"
      | Ir.Exec { vkey } -> use vkey "exec"
      | Ir.Emit { vkey; _ } -> use vkey "emit"
      | Ir.Label _ when node.Ir.succs = [] && tid = 0 ->
          (* main exit: everything still mapped leaks its group (and,
             transitively, a hardware key's worth of cache pressure) *)
          Dataflow.VMap.fold
            (fun v ts acc ->
              match ts with
              | Mapped | Top ->
                  mk ~pass ~severity:Warning ~detail:(Leak_on_exit { vkey = v }) ~tid
                    ~node
                    ~message:
                      (Printf.sprintf "vkey %d still mapped at program exit (leak)" v)
                    ~witness
                  :: acc
              | Unmapped | Freed -> acc)
            state []
      | _ -> []
    in
    collect p runs ~check
end

(* --- pass 2: begin/end balance --- *)

module Balance = struct
  let default = Dataflow.Interval.zero
  let equal = Dataflow.VMap.equal_d ~default Dataflow.Interval.equal
  let join = Dataflow.VMap.join_d ~default Dataflow.Interval.join

  let transfer (n : Ir.node) st =
    match n.Ir.op with
    | Ir.Begin { vkey; _ } ->
        Dataflow.VMap.add vkey
          (Dataflow.Interval.incr (Dataflow.VMap.find_d ~default vkey st))
          st
    | Ir.End { vkey } ->
        Dataflow.VMap.add vkey
          (Dataflow.Interval.decr (Dataflow.VMap.find_d ~default vkey st))
          st
    | _ -> st

  (* Spawned threads hold no begins at birth: pins are per-thread. *)
  let run p =
    let runs =
      thread_runs p ~init_main:Dataflow.VMap.empty
        ~derive_init:(fun _ -> Dataflow.VMap.empty)
        ~equal ~join ~transfer
    in
    let pass = "balance" in
    let check ~tid ~node ~state ~witness =
      let depth v = Dataflow.VMap.find_d ~default v state in
      match node.Ir.op with
      | Ir.End { vkey } -> (
          match depth vkey with
          | 0, 0 ->
              [
                mk ~pass ~severity:Error ~detail:(End_underflow { vkey }) ~tid ~node
                  ~message:
                    (Printf.sprintf "mpk_end of vkey %d without a matching mpk_begin" vkey)
                  ~witness;
              ]
          | 0, _ ->
              [
                mk ~pass ~severity:Warning ~detail:(Maybe "possible end underflow") ~tid
                  ~node
                  ~message:
                    (Printf.sprintf "mpk_end of vkey %d may lack a matching begin on \
                                     some path"
                       vkey)
                  ~witness;
              ]
          | _ -> [])
      | Ir.Free { vkey } -> (
          match depth vkey with
          | lo, _ when lo > 0 ->
              [
                mk ~pass ~severity:Error ~detail:(Free_inside_begin { vkey }) ~tid ~node
                  ~message:
                    (Printf.sprintf "mpk_free of vkey %d while inside mpk_begin" vkey)
                  ~witness;
              ]
          | 0, hi when hi > 0 ->
              [
                mk ~pass ~severity:Warning ~detail:(Maybe "free possibly inside begin")
                  ~tid ~node
                  ~message:
                    (Printf.sprintf "mpk_free of vkey %d may still be inside mpk_begin"
                       vkey)
                  ~witness;
              ]
          | _ -> [])
      | Ir.Begin { vkey; _ } when snd (depth vkey) >= Dataflow.Interval.cap ->
          [
            mk ~pass ~severity:Warning ~detail:(Maybe "unbounded begin nesting") ~tid
              ~node
              ~message:
                (Printf.sprintf
                   "mpk_begin of vkey %d nests without bound (begin inside a loop \
                    with no end?)"
                   vkey)
              ~witness;
          ]
      | Ir.Label _ when node.Ir.succs = [] ->
          (* thread exit: every vkey must be back to depth 0 on every
             path — a leaked begin pins its hardware key forever *)
          Dataflow.VMap.fold
            (fun v iv acc ->
              match iv with
              | lo, _ when lo > 0 ->
                  mk ~pass ~severity:Error ~detail:(Unbalanced { vkey = v; definite = true })
                    ~tid ~node
                    ~message:
                      (Printf.sprintf
                         "thread exits with mpk_begin of vkey %d unmatched on every path \
                          (depth %s)"
                         v
                         (Dataflow.Interval.to_string iv))
                    ~witness
                  :: acc
              | 0, hi when hi > 0 ->
                  mk ~pass ~severity:Error
                    ~detail:(Unbalanced { vkey = v; definite = false }) ~tid ~node
                    ~message:
                      (Printf.sprintf
                         "thread exits with mpk_begin of vkey %d unmatched on some path \
                          (early return or signal escape skips mpk_end)"
                         v)
                    ~witness
                  :: acc
              | _ -> acc)
            state []
      | _ -> []
    in
    collect p runs ~check
end

(* --- pass 3: W^X --- *)

module Wx = struct
  type vstate = {
    xp_must : bool;  (* page-level exec bit definitely set *)
    xp_may : bool;
    gw_must : bool;  (* global (synchronized) write rights definitely granted *)
    gw_may : bool;
    win : Dataflow.Interval.t;  (* this thread's open write-window depth *)
  }

  let default =
    { xp_must = false; xp_may = false; gw_must = false; gw_may = false;
      win = Dataflow.Interval.zero }

  let equal_v a b =
    a.xp_must = b.xp_must && a.xp_may = b.xp_may && a.gw_must = b.gw_must
    && a.gw_may = b.gw_may
    && Dataflow.Interval.equal a.win b.win

  let join_v a b =
    {
      xp_must = a.xp_must && b.xp_must;
      xp_may = a.xp_may || b.xp_may;
      gw_must = a.gw_must && b.gw_must;
      gw_may = a.gw_may || b.gw_may;
      win = Dataflow.Interval.join a.win b.win;
    }

  let equal = Dataflow.VMap.equal_d ~default equal_v
  let join = Dataflow.VMap.join_d ~default join_v

  let transfer (n : Ir.node) st =
    let get v = Dataflow.VMap.find_d ~default v st in
    match n.Ir.op with
    | Ir.Mmap { vkey; prot; _ } ->
        (* declared prot is max_prot: the group starts with no data
           access granted (PKRU defaults to no-access), only the
           page-level exec bit is live *)
        Dataflow.VMap.add vkey
          { default with xp_must = prot.Perm.exec; xp_may = prot.Perm.exec }
          st
    | Ir.Mprotect { vkey; prot } ->
        let v = get vkey in
        Dataflow.VMap.add vkey
          {
            v with
            xp_must = prot.Perm.exec;
            xp_may = prot.Perm.exec;
            gw_must = prot.Perm.write;
            gw_may = prot.Perm.write;
          }
          st
    | Ir.Begin { vkey; prot } when prot.Perm.write ->
        let v = get vkey in
        Dataflow.VMap.add vkey { v with win = Dataflow.Interval.incr v.win } st
    | Ir.End { vkey } ->
        let v = get vkey in
        Dataflow.VMap.add vkey { v with win = Dataflow.Interval.decr v.win } st
    | Ir.Free { vkey } -> Dataflow.VMap.add vkey default st
    | _ -> st

  let run p =
    let runs =
      thread_runs p ~init_main:Dataflow.VMap.empty
        ~derive_init:
          (Dataflow.VMap.map (fun v -> { v with win = Dataflow.Interval.zero }))
        ~equal ~join ~transfer
    in
    let pass = "wx" in
    let check ~tid ~node ~state ~witness =
      let get v = Dataflow.VMap.find_d ~default v state in
      match node.Ir.op with
      | Ir.Mprotect { vkey; prot } when prot.Perm.write && prot.Perm.exec ->
          [
            mk ~pass ~severity:Error ~detail:(Wx_mapping { vkey }) ~tid ~node
              ~message:
                (Printf.sprintf
                   "mpk_mprotect makes vkey %d globally writable AND executable (W^X \
                    violated for every thread)"
                   vkey)
              ~witness;
          ]
      | Ir.Exec { vkey } -> (
          let v = get vkey in
          if v.gw_must then
            [
              mk ~pass ~severity:Error
                ~detail:(Wx_exec_writable { vkey; window = false }) ~tid ~node
                ~message:
                  (Printf.sprintf
                     "instruction fetch from vkey %d while it is globally writable" vkey)
                ~witness;
            ]
          else if fst v.win > 0 then
            [
              mk ~pass ~severity:Error ~detail:(Wx_exec_writable { vkey; window = true })
                ~tid ~node
                ~message:
                  (Printf.sprintf
                     "instruction fetch from vkey %d inside this thread's own write \
                      window (mpk_begin rw not yet ended)"
                     vkey)
                ~witness;
            ]
          else if v.gw_may || snd v.win > 0 then
            [
              mk ~pass ~severity:Warning ~detail:(Maybe "exec of possibly-writable region")
                ~tid ~node
                ~message:
                  (Printf.sprintf
                     "instruction fetch from vkey %d which may be writable on some path"
                     vkey)
                ~witness;
            ]
          else [])
      | _ -> []
    in
    collect p runs ~check
end

(* --- pass 4: ERIM-style WRPKRU gadget scan --- *)

module Gadget = struct
  (* An occurrence of WRPKRU in an emitted stream is safe only when the
     next two instructions validate the loaded value and divert to the
     trusted path on mismatch; anything else is a gadget an attacker can
     jump to with a chosen eax (ERIM §3.1, which libmpk §6 relies on). *)
  let unsafe_offsets code =
    let arr = Array.of_list code in
    let n = Array.length arr in
    let bad = ref [] in
    Array.iteri
      (fun i insn ->
        match insn with
        | Ir.I_wrpkru ->
            let checked =
              i + 2 < n && arr.(i + 1) = Ir.I_cmp_pkru && arr.(i + 2) = Ir.I_br_trusted
            in
            if not checked then bad := i :: !bad
        | _ -> ())
      arr;
    List.rev !bad

  let run p =
    let runs =
      thread_runs p ~init_main:() ~derive_init:Fun.id ~equal:( = ) ~join:(fun _ _ -> ())
        ~transfer:(fun _ st -> st)
    in
    let pass = "gadget" in
    let check ~tid ~node ~state:_ ~witness =
      match node.Ir.op with
      | Ir.Emit { vkey; code } ->
          List.map
            (fun offset ->
              mk ~pass ~severity:Error ~detail:(Unsafe_wrpkru { vkey; offset }) ~tid
                ~node
                ~message:
                  (Printf.sprintf
                     "emitted stream for vkey %d contains an unchecked WRPKRU at \
                      offset %d (exploitable gadget: a jump here with chosen eax \
                      rewrites PKRU)"
                     vkey offset)
                ~witness)
            (unsafe_offsets code)
      | _ -> []
    in
    collect p runs ~check
end

(* --- pass 5: lazy do_pkey_sync TOCTOU across spawned threads --- *)

module Toctou = struct
  module ISet = Set.Make (Int)

  type granted = { gr_must : bool; gw_must : bool }

  let g_default = { gr_must = false; gw_must = false }

  type state = {
    live_must : ISet.t;
    live_may : ISet.t;
    rights : granted Dataflow.VMap.t;  (* per-vkey global rights from mpk_mprotect *)
  }

  let init = { live_must = ISet.empty; live_may = ISet.empty; rights = Dataflow.VMap.empty }

  let equal a b =
    ISet.equal a.live_must b.live_must
    && ISet.equal a.live_may b.live_may
    && Dataflow.VMap.equal_d ~default:g_default ( = ) a.rights b.rights

  let join a b =
    {
      live_must = ISet.inter a.live_must b.live_must;
      live_may = ISet.union a.live_may b.live_may;
      rights =
        Dataflow.VMap.join_d ~default:g_default
          (fun x y -> { gr_must = x.gr_must && y.gr_must; gw_must = x.gw_must && y.gw_must })
          a.rights b.rights;
    }

  let transfer (n : Ir.node) st =
    match n.Ir.op with
    | Ir.Spawn { tid } ->
        { st with live_must = ISet.add tid st.live_must; live_may = ISet.add tid st.live_may }
    | Ir.Join { tid } ->
        { st with live_must = ISet.remove tid st.live_must; live_may = ISet.remove tid st.live_may }
    | Ir.Mmap { vkey; _ } | Ir.Free { vkey } ->
        (* a fresh group starts with no global rights; a freed one has none *)
        { st with rights = Dataflow.VMap.add vkey g_default st.rights }
    | Ir.Mprotect { vkey; prot } ->
        {
          st with
          rights =
            Dataflow.VMap.add vkey
              { gr_must = prot.Perm.read; gw_must = prot.Perm.write }
              st.rights;
        }
    | _ -> st

  (* Accesses a thread performs while *not* inside its own mpk_begin for
     that vkey ("bare" accesses: they rely entirely on the global rights
     and therefore race a revocation's lazy sync). Computed with the
     balance domain per thread. *)
  type bare = { rd_def : bool; rd_may : bool; wr_def : bool; wr_may : bool }

  let bare_default = { rd_def = false; rd_may = false; wr_def = false; wr_may = false }

  let bare_accesses p (t : Ir.thread) =
    let r =
      Dataflow.forward p ~entry:t.Ir.entry ~init:Dataflow.VMap.empty
        ~equal:Balance.equal ~join:Balance.join ~transfer:Balance.transfer
    in
    List.fold_left
      (fun acc (n : Ir.node) ->
        let upd vkey kind =
          match Dataflow.state r n.Ir.id with
          | None -> acc
          | Some st ->
              let lo, hi =
                Dataflow.VMap.find_d ~default:Dataflow.Interval.zero vkey st
              in
              let b = Dataflow.VMap.find_d ~default:bare_default vkey acc in
              let b =
                match kind with
                | A_read ->
                    { b with rd_def = b.rd_def || hi = 0; rd_may = b.rd_may || lo = 0 }
                | A_write ->
                    { b with wr_def = b.wr_def || hi = 0; wr_may = b.wr_may || lo = 0 }
              in
              Dataflow.VMap.add vkey b acc
        in
        match n.Ir.op with
        | Ir.Read { vkey } -> upd vkey A_read
        | Ir.Write { vkey } | Ir.Emit { vkey; _ } -> upd vkey A_write
        | _ -> acc)
      Dataflow.VMap.empty (Ir.thread_nodes p t.Ir.tid)

  let run p =
    let main = Ir.main_thread p in
    let bare =
      List.filter_map
        (fun (t : Ir.thread) ->
          if t.Ir.tid = 0 then None else Some (t.Ir.tid, bare_accesses p t))
        p.Ir.threads
    in
    let r = Dataflow.forward p ~entry:main.Ir.entry ~init ~equal ~join ~transfer in
    let pass = "toctou" in
    List.concat_map
      (fun (n : Ir.node) ->
        match n.Ir.op, Dataflow.state r n.Ir.id with
        | Ir.Mprotect { vkey; prot }, Some st ->
            let prev = Dataflow.VMap.find_d ~default:g_default vkey st.rights in
            let revoked =
              (if prev.gr_must && not prot.Perm.read then [ A_read ] else [])
              @ if prev.gw_must && not prot.Perm.write then [ A_write ] else []
            in
            List.concat_map
              (fun (victim, accesses) ->
                let b = Dataflow.VMap.find_d ~default:bare_default vkey accesses in
                List.filter_map
                  (fun acc_kind ->
                    let def, may =
                      match acc_kind with
                      | A_read -> b.rd_def, b.rd_may
                      | A_write -> b.wr_def, b.wr_may
                    in
                    let witness () =
                      List.map
                        (fun id -> { stid = 0; sop = (Ir.node p id).Ir.op })
                        (Dataflow.path_to r n.Ir.id)
                    in
                    if ISet.mem victim st.live_must && def then
                      Some
                        (mk ~pass ~severity:Error
                           ~detail:(Toctou { vkey; victim; access = acc_kind })
                           ~tid:0 ~node:n
                           ~message:
                             (Printf.sprintf
                                "mpk_mprotect revokes %s on vkey %d while thread %d is \
                                 live and %ss it outside mpk_begin — until the \
                                 victim's lazy do_pkey_sync task_work runs, its PKRU \
                                 still grants the revoked right (TOCTOU)"
                                (access_to_string acc_kind) vkey victim
                                (access_to_string acc_kind))
                           ~witness)
                    else if ISet.mem victim st.live_may && may then
                      Some
                        (mk ~pass ~severity:Warning
                           ~detail:(Toctou { vkey; victim; access = acc_kind })
                           ~tid:0 ~node:n
                           ~message:
                             (Printf.sprintf
                                "mpk_mprotect may revoke %s on vkey %d while thread %d \
                                 can access it outside mpk_begin on some path"
                                (access_to_string acc_kind) vkey victim)
                           ~witness)
                    else None)
                  revoked)
              bare
        | _ -> [])
      (Dataflow.reached p r 0)
end

(* --- passes 6–8: concurrency (lockset, lock order, atomicity) --- *)

module Concurrency = struct
  (* One shared per-thread abstract interpretation feeds three passes:

     - lockset ("lockset"): Eraser's discipline — for every shared
       kernel location, the set of locks held at *every* access must be
       non-empty across all tasks reachable from Spawn. Two accesses
       from may-concurrent threads with disjoint locksets, at least one
       a Store, are a race; the finding carries a two-task witness (one
       entry-to-access path per thread).

     - lock order ("lockorder"): the may-happen lock graph — at each
       Lock node, every class that *may* be held on some CFG path to it
       contributes a held→acquired edge, so the graph covers all paths,
       not just executed ones. Cycles are potential deadlocks; the
       dynamic lockdep order graph (Lockdep.order_edges) must be covered
       by this analysis on the same program.

     - atomicity ("atomicity"): read–check–act windows — a Load made
       under locks is an observation; releasing any of those locks makes
       it stale; a Store to the location while the observation is stale
       mutates on the strength of a check another task may have
       invalidated in between (the static generalization of the PR 4
       TOCTOU lint, at lock rather than domain granularity). *)

  module Held = Dataflow.MustMay (struct
    type t = Ir.lockref

    let compare = compare
  end)

  module LSet = Held.S
  module LocMap = Map.Make (struct
    type t = Ir.loc

    let compare = compare
  end)

  let lset_to_string s =
    if LSet.is_empty s then "{}"
    else
      "{" ^ String.concat "," (List.map Ir.lockref_to_string (LSet.elements s)) ^ "}"

  (* Read–check–act status per location. *)
  type obs = Clean | Observed of LSet.t | Stale of Ir.lockref

  type cstate = { held : Held.t; obs : obs LocMap.t }

  let init = { held = Held.empty; obs = LocMap.empty }
  let obs_d loc m = Option.value ~default:Clean (LocMap.find_opt loc m)

  let obs_join a b =
    match a, b with
    | Stale l, _ | _, Stale l -> Stale l
    | Observed x, Observed y ->
        let i = LSet.inter x y in
        if LSet.is_empty i then Clean else Observed i
    | (Observed _ as o), Clean | Clean, (Observed _ as o) -> o
    | Clean, Clean -> Clean

  let equal a b =
    Held.equal a.held b.held
    &&
    let keys m = LocMap.fold (fun k _ acc -> k :: acc) m [] in
    List.for_all
      (fun k -> obs_d k a.obs = obs_d k b.obs)
      (List.sort_uniq compare (keys a.obs @ keys b.obs))

  let join a b =
    {
      held = Held.join a.held b.held;
      obs =
        LocMap.merge
          (fun _ x y ->
            Some
              (obs_join
                 (Option.value ~default:Clean x)
                 (Option.value ~default:Clean y)))
          a.obs b.obs;
    }

  let transfer (n : Ir.node) st =
    match n.Ir.op with
    | Ir.Lock { lk; _ } -> { st with held = Held.add lk st.held }
    | Ir.Unlock { lk; _ } ->
        let obs =
          LocMap.map
            (function Observed s when LSet.mem lk s -> Stale lk | o -> o)
            st.obs
        in
        { held = Held.remove lk st.held; obs }
    | Ir.Load { loc } ->
        let o =
          if LSet.is_empty st.held.Held.must then Clean
          else Observed st.held.Held.must
        in
        { st with obs = LocMap.add loc o st.obs }
    | Ir.Store { loc } -> { st with obs = LocMap.add loc Clean st.obs }
    | _ -> st

  (* -- may-concurrency between threads, from main's Spawn/Join shape -- *)

  module ISet = Set.Make (Int)

  type conc = {
    live_may_at : int -> ISet.t;  (* main node id -> threads possibly live *)
    spawn_nodes : (int * int) list;  (* tid, main node id *)
  }

  let concurrency p =
    let main = Ir.main_thread p in
    let equal (am, aM) (bm, bM) = ISet.equal am bm && ISet.equal aM bM in
    let join (am, aM) (bm, bM) = ISet.inter am bm, ISet.union aM bM in
    let transfer (n : Ir.node) (must, may) =
      match n.Ir.op with
      | Ir.Spawn { tid } -> ISet.add tid must, ISet.add tid may
      | Ir.Join { tid } -> ISet.remove tid must, ISet.remove tid may
      | _ -> must, may
    in
    let r =
      Dataflow.forward p ~entry:main.Ir.entry
        ~init:(ISet.empty, ISet.empty)
        ~equal ~join ~transfer
    in
    {
      live_may_at =
        (fun id ->
          match Dataflow.state r id with Some (_, may) -> may | None -> ISet.empty);
      spawn_nodes =
        Dataflow.reached p r 0
        |> List.filter_map (fun (n : Ir.node) ->
               match n.Ir.op with
               | Ir.Spawn { tid } -> Some (tid, n.Ir.id)
               | _ -> None);
    }

  (* May thread [a]'s access at [anode] run concurrently with thread
     [b]'s access at [bnode]? A main (tid 0) access overlaps exactly the
     threads possibly live at that main node — pre-spawn and post-join
     accesses race with nobody; two spawned threads overlap when either
     is possibly live at the other's spawn point. *)
  let may_overlap conc ~a ~anode ~b ~bnode =
    if a = b then false
    else if a = 0 then ISet.mem b (conc.live_may_at anode)
    else if b = 0 then ISet.mem a (conc.live_may_at bnode)
    else
      List.exists
        (fun (tid, id) ->
          (tid = a && ISet.mem b (conc.live_may_at id))
          || (tid = b && ISet.mem a (conc.live_may_at id)))
        conc.spawn_nodes

  (* -- the shared sweep -- *)

  type acc = {
    a_tid : int;
    a_node : int;
    a_loc : Ir.loc;
    a_kind : access;
    a_must : LSet.t;
    a_may : LSet.t;
    a_witness : step list;  (* prefix + path, ready for a finding *)
    a_path : step list;  (* this thread's path only (for 2nd witness half) *)
  }

  type sweep = {
    accesses : acc list;
    edges : ((string * string) * (int * int * step list)) list;
        (* class edge -> representative (tid, node, witness) *)
    findings : finding list;  (* same-class nesting, atomicity, unlock-unheld *)
  }

  let sweep p =
    let runs =
      thread_runs p ~init_main:init ~derive_init:(fun _ -> init) ~equal ~join
        ~transfer
    in
    let accesses = ref [] in
    let edges = ref [] in
    let findings = ref [] in
    List.iter
      (fun (tid, r, prefix) ->
        Dataflow.reached p r tid
        |> List.iter (fun (n : Ir.node) ->
               match Dataflow.state r n.Ir.id with
               | None -> ()
               | Some st ->
                   let path =
                     List.map
                       (fun id -> { stid = tid; sop = (Ir.node p id).Ir.op })
                       (Dataflow.path_to r n.Ir.id)
                   in
                   let witness () = prefix @ path in
                   let access kind loc =
                     accesses :=
                       {
                         a_tid = tid;
                         a_node = n.Ir.id;
                         a_loc = loc;
                         a_kind = kind;
                         a_must = st.held.Held.must;
                         a_may = st.held.Held.may;
                         a_witness = witness ();
                         a_path = path;
                       }
                       :: !accesses
                   in
                   (match n.Ir.op with
                   | Ir.Load { loc } -> access A_read loc
                   | Ir.Store { loc } -> (
                       access A_write loc;
                       match obs_d loc st.obs with
                       | Stale dropped ->
                           findings :=
                             mk ~pass:"atomicity" ~severity:Error
                               ~detail:(Atomicity { loc; dropped })
                               ~tid ~node:n
                               ~message:
                                 (Printf.sprintf
                                    "read–check–act window: %s was read under %s, \
                                     the lock was dropped, and this store still \
                                     acts on that check — another task can \
                                     invalidate it in the window"
                                    (Ir.loc_to_string loc)
                                    (Ir.lockref_to_string dropped))
                               ~witness
                             :: !findings
                       | Clean | Observed _ -> ())
                   | Ir.Lock { lk; _ } ->
                       LSet.iter
                         (fun h ->
                           if h.Ir.lcls = lk.Ir.lcls then begin
                             if h <> lk then
                               findings :=
                                 mk ~pass:"lockorder" ~severity:Warning
                                   ~detail:
                                     (Maybe "same-class nesting needs annotation")
                                   ~tid ~node:n
                                   ~message:
                                     (Printf.sprintf
                                        "acquire of %s while already holding %s: \
                                         same-class nesting (lockdep would demand \
                                         an ordering annotation)"
                                        (Ir.lockref_to_string lk)
                                        (Ir.lockref_to_string h))
                                   ~witness
                                 :: !findings
                           end
                           else if
                             not
                               (List.mem_assoc
                                  (h.Ir.lcls, lk.Ir.lcls)
                                  !edges)
                           then
                             edges :=
                               ((h.Ir.lcls, lk.Ir.lcls), (tid, n.Ir.id, witness ()))
                               :: !edges)
                         st.held.Held.may
                   | Ir.Unlock { lk; _ } ->
                       if not (LSet.mem lk st.held.Held.may) then
                         findings :=
                           mk ~pass:"lockset" ~severity:Warning
                             ~detail:(Unlock_unheld { lk }) ~tid ~node:n
                             ~message:
                               (Printf.sprintf
                                  "release of %s which is not held on any path here"
                                  (Ir.lockref_to_string lk))
                             ~witness
                           :: !findings
                   | _ -> ())))
      runs;
    { accesses = List.rev !accesses; edges = List.rev !edges; findings = List.rev !findings }

  (* -- lockset races -- *)

  let severity_rank' = function Error -> 0 | Warning -> 1 | Info -> 2

  let races p sw =
    let conc = concurrency p in
    let pairs = ref [] in
    List.iter
      (fun x ->
        List.iter
          (fun y ->
            if
              x.a_loc = y.a_loc
              && x.a_tid < y.a_tid
              && (x.a_kind = A_write || y.a_kind = A_write)
              && LSet.is_empty (LSet.inter x.a_must y.a_must)
              && may_overlap conc ~a:x.a_tid ~anode:x.a_node ~b:y.a_tid
                   ~bnode:y.a_node
            then pairs := (x, y) :: !pairs)
          sw.accesses)
      sw.accesses;
    (* The victim (fewer locks held) anchors the finding; the second
       thread's path is appended so the witness covers both tasks. *)
    let to_finding (x, y) =
      let victim, other =
        if LSet.cardinal x.a_must <= LSet.cardinal y.a_must then x, y else y, x
      in
      let definite = LSet.is_empty (LSet.inter x.a_may y.a_may) in
      let severity = if definite then Error else Warning in
      let detail =
        if definite then
          Race
            {
              loc = x.a_loc;
              t1 = victim.a_tid;
              t2 = other.a_tid;
              write = victim.a_kind = A_write || other.a_kind = A_write;
            }
        else Maybe "path-dependent locking discipline"
      in
      {
        pass = "lockset";
        severity;
        detail;
        tid = victim.a_tid;
        node = victim.a_node;
        message =
          Printf.sprintf
            "%s race on %s: t%d %ss it holding %s while t%d %ss it holding %s — \
             no common lock%s, so an adversarial schedule interleaves them \
             (Eraser lockset empty)"
            (if definite then "data" else "possible")
            (Ir.loc_to_string x.a_loc) victim.a_tid
            (access_to_string victim.a_kind)
            (lset_to_string victim.a_must)
            other.a_tid
            (access_to_string other.a_kind)
            (lset_to_string other.a_must)
            (if definite then "" else " on some path");
        witness = victim.a_witness @ other.a_path;
      }
    in
    (* one finding per (loc, thread pair), most severe first *)
    let all = List.map to_finding !pairs in
    let key f =
      match f.detail with
      | Race { loc; t1; t2; _ } -> Some (loc, min t1 t2, max t1 t2)
      | _ -> None
    in
    let seen = Hashtbl.create 8 in
    List.filter
      (fun f ->
        match key f with
        | None ->
            (* keep at most one Maybe per (loc, pair) too, keyed by message *)
            if Hashtbl.mem seen (`Msg f.message) then false
            else begin
              Hashtbl.replace seen (`Msg f.message) ();
              true
            end
        | Some k ->
            if Hashtbl.mem seen (`Race k) then false
            else begin
              Hashtbl.replace seen (`Race k) ();
              true
            end)
      (List.stable_sort
         (fun a b -> compare (severity_rank' a.severity) (severity_rank' b.severity))
         all)

  (* -- static lock-order cycles -- *)

  (* DFS over the class graph; cycles are canonicalized (rotated so the
     least class leads) and deduplicated. *)
  let find_cycles edges =
    let succs a =
      List.filter_map (fun ((x, y), _) -> if x = a then Some y else None) edges
      |> List.sort compare
    in
    let nodes =
      List.concat_map (fun ((a, b), _) -> [ a; b ]) edges |> List.sort_uniq compare
    in
    let cycles = ref [] in
    let canon c =
      let m = List.fold_left min (List.hd c) c in
      let rec rot = function
        | x :: rest when x <> m -> rot (rest @ [ x ])
        | l -> l
      in
      rot c
    in
    let color = Hashtbl.create 8 in
    let rec visit path a =
      match Hashtbl.find_opt color a with
      | Some 2 -> ()
      | Some 1 ->
          let rec suffix = function
            | [] -> []
            | x :: _ when x = a -> [ x ]
            | x :: rest -> x :: suffix rest
          in
          let c = canon (List.rev (suffix path)) in
          if not (List.mem c !cycles) then cycles := c :: !cycles
      | _ ->
          Hashtbl.replace color a 1;
          List.iter (visit (a :: path)) (succs a);
          Hashtbl.replace color a 2
    in
    List.iter (visit []) nodes;
    List.rev !cycles

  let deadlocks sw =
    find_cycles sw.edges
    |> List.map (fun cycle ->
           (* witness: one representative acquisition path per edge of
              the cycle, typically from different threads *)
           let edge_wits =
             let rec arcs = function
               | a :: (b :: _ as rest) -> (a, b) :: arcs rest
               | [ last ] -> [ last, List.hd cycle ]
               | [] -> []
             in
             List.filter_map (fun e -> List.assoc_opt e sw.edges) (arcs cycle)
           in
           let tid, node =
             match edge_wits with (t, n, _) :: _ -> t, n | [] -> 0, 0
           in
           {
             pass = "lockorder";
             severity = Error;
             detail = Deadlock { cycle };
             tid;
             node;
             message =
               Printf.sprintf
                 "lock-order cycle %s exists across CFG paths: two tasks taking \
                  the classes in opposite order deadlock under an adversarial \
                  schedule"
                 (String.concat " -> " (cycle @ [ List.hd cycle ]));
             witness = List.concat_map (fun (_, _, w) -> w) edge_wits;
           })

  let run p =
    let sw = sweep p in
    races p sw @ deadlocks sw @ sw.findings

  (* The class-level order graph and its cycles, for cross-checking
     against dynamic lockdep observations (Mpk_check.Lockdep). *)
  let order_edges p = List.map fst (sweep p).edges |> List.sort compare
  let cycles p = find_cycles (sweep p).edges
end

(* --- driver --- *)

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let classic_passes =
  [
    "typestate", Typestate.run;
    "balance", Balance.run;
    "wx", Wx.run;
    "gadget", Gadget.run;
    "toctou", Toctou.run;
  ]

let concurrency_passes = [ "lockset"; "lockorder"; "atomicity" ]
let pass_names = List.map fst classic_passes @ concurrency_passes

(* Stable order — severity, then tid, then node (then pass/message as
   final tie-breaks) — so CI diffs of lint output are deterministic. *)
let sort_findings fs =
  List.sort
    (fun a b ->
      compare
        (severity_rank a.severity, a.tid, a.node, a.pass, a.message)
        (severity_rank b.severity, b.tid, b.node, b.pass, b.message))
    fs

let analyze_with ~passes p =
  let wanted n = List.mem n passes in
  let classic =
    List.concat_map (fun (n, f) -> if wanted n then f p else []) classic_passes
  in
  let conc =
    if List.exists wanted concurrency_passes then
      Concurrency.run p |> List.filter (fun f -> wanted f.pass)
    else []
  in
  sort_findings (classic @ conc)

let analyze p = analyze_with ~passes:pass_names p
let analyze_concurrency p = analyze_with ~passes:concurrency_passes p
let static_lock_edges = Concurrency.order_edges
let static_lock_cycles = Concurrency.cycles
