(* Static domain-safety lints over libmpk client IR programs.

   Five passes, each a forward abstract interpretation (Dataflow.forward)
   over every thread CFG:

   - typestate   key lifecycle: use-after-free, double-free, mmap of a
                 live vkey, leak-on-exit (libmpk §4.1 lifecycle)
   - balance     mpk_begin/mpk_end pairing on *all* paths, including
                 early returns and signal-escape edges (§4.2; a leaked
                 begin pins its hardware key forever)
   - wx          W^X: no abstract state in which a page group is both
                 writable and executable, and no instruction fetch while
                 the group is writable (§6.1 JIT case study)
   - gadget      ERIM-style unsafe-WRPKRU scan over the instruction
                 streams the JIT emits (ERIM §3.1: every WRPKRU must be
                 followed by a check of the loaded value)
   - toctou      lazy do_pkey_sync hazard: a global revocation
                 (mpk_mprotect) races a concurrently live thread whose
                 access is not covered by its own mpk_begin — until the
                 victim's deferred task_work runs, its PKRU still grants
                 the revoked right (§4.2, Fig 7)

   Findings carry a severity and a concrete path witness; Mpk_check.Replay
   executes witnesses on the simulator with the PR 2 auditor as oracle. *)

open Mpk_hw

type severity = Error | Warning | Info

let severity_to_string = function
  | Error -> "ERROR"
  | Warning -> "WARNING"
  | Info -> "INFO"

type access = A_read | A_write

let access_to_string = function A_read -> "read" | A_write -> "write"

type detail =
  | Use_after_free of { vkey : int }
  | Use_unmapped of { vkey : int }
  | Double_free of { vkey : int }
  | Free_unmapped of { vkey : int }
  | Mmap_live of { vkey : int }
  | Leak_on_exit of { vkey : int }
  | Unbalanced of { vkey : int; definite : bool }
  | End_underflow of { vkey : int }
  | Free_inside_begin of { vkey : int }
  | Wx_mapping of { vkey : int }
  | Wx_exec_writable of { vkey : int; window : bool }
  | Unsafe_wrpkru of { vkey : int; offset : int }
  | Toctou of { vkey : int; victim : int; access : access }
  | Maybe of string  (* imprecision-only findings (joined states) *)

type step = { stid : int; sop : Ir.op }

type finding = {
  pass : string;
  severity : severity;
  detail : detail;
  tid : int;  (* thread of the violating node *)
  node : int;
  message : string;
  witness : step list;  (* program-start-to-violation path *)
}

let pp_finding fmt f =
  Format.fprintf fmt "[%s] %s (t%d, node %d): %s" (severity_to_string f.severity)
    f.pass f.tid f.node f.message

let pp_witness fmt f =
  List.iter
    (fun s ->
      match s.sop with
      | Ir.Label _ -> ()
      | o -> Format.fprintf fmt "    t%d: %s@." s.stid (Ir.op_to_string o))
    f.witness

let has_errors findings = List.exists (fun f -> f.severity = Error) findings

(* --- shared per-thread analysis driver --- *)

(* Run one pass over every thread. The main thread starts from
   [init_main]; a spawned thread starts from [derive_init] applied to the
   main state at its (first reached) Spawn node, and its witnesses are
   prefixed with the main path to that spawn. Threads never spawned are
   dead code and are skipped. *)
let thread_runs (p : Ir.program) ~init_main ~derive_init ~equal ~join ~transfer =
  let main = Ir.main_thread p in
  let rmain =
    Dataflow.forward p ~entry:main.Ir.entry ~init:init_main ~equal ~join ~transfer
  in
  let steps_of tid ids =
    List.map (fun id -> { stid = tid; sop = (Ir.node p id).Ir.op }) ids
  in
  let spawn_node tid =
    Dataflow.reached p rmain 0
    |> List.find_opt (fun n ->
           match n.Ir.op with Ir.Spawn { tid = t } -> t = tid | _ -> false)
  in
  let others =
    List.filter_map
      (fun (t : Ir.thread) ->
        if t.Ir.tid = 0 then None
        else
          match spawn_node t.Ir.tid with
          | None -> None
          | Some sn -> (
              match Dataflow.state rmain sn.Ir.id with
              | None -> None
              | Some st ->
                  let r =
                    Dataflow.forward p ~entry:t.Ir.entry ~init:(derive_init st)
                      ~equal ~join ~transfer
                  in
                  Some (t.Ir.tid, r, steps_of 0 (Dataflow.path_to rmain sn.Ir.id))))
      p.Ir.threads
  in
  (0, rmain, []) :: others

(* Evaluate [check] on the final abstract state of every reached node. *)
let collect p runs ~check =
  List.concat_map
    (fun (tid, r, prefix) ->
      Dataflow.reached p r tid
      |> List.concat_map (fun n ->
             match Dataflow.state r n.Ir.id with
             | None -> []
             | Some st ->
                 let witness path_tid =
                   prefix
                   @ List.map
                       (fun id -> { stid = path_tid; sop = (Ir.node p id).Ir.op })
                       (Dataflow.path_to r n.Ir.id)
                 in
                 check ~tid ~node:n ~state:st ~witness:(fun () -> witness tid)))
    runs

let mk ~pass ~severity ~detail ~tid ~node ~message ~witness =
  { pass; severity; detail; tid; node = node.Ir.id; message; witness = witness () }

(* --- pass 1: key-lifecycle typestate --- *)

module Typestate = struct
  type ts = Unmapped | Mapped | Freed | Top

  let ts_to_string = function
    | Unmapped -> "unmapped"
    | Mapped -> "mapped"
    | Freed -> "freed"
    | Top -> "unknown"

  let join_ts a b = if a = b then a else Top

  let default = Unmapped
  let equal = Dataflow.VMap.equal_d ~default ( = )
  let join = Dataflow.VMap.join_d ~default join_ts

  let transfer (n : Ir.node) st =
    match n.Ir.op with
    | Ir.Mmap { vkey; _ } -> Dataflow.VMap.add vkey Mapped st
    | Ir.Free { vkey } -> Dataflow.VMap.add vkey Freed st
    | _ -> st

  let run p =
    let runs =
      thread_runs p ~init_main:Dataflow.VMap.empty ~derive_init:Fun.id ~equal ~join
        ~transfer
    in
    let pass = "typestate" in
    let check ~tid ~node ~state ~witness =
      let ts v = Dataflow.VMap.find_d ~default v state in
      let use v what =
        match ts v with
        | Freed ->
            [
              mk ~pass ~severity:Error ~detail:(Use_after_free { vkey = v }) ~tid ~node
                ~message:(Printf.sprintf "%s of freed vkey %d (use-after-free)" what v)
                ~witness;
            ]
        | Unmapped ->
            [
              mk ~pass ~severity:Error ~detail:(Use_unmapped { vkey = v }) ~tid ~node
                ~message:(Printf.sprintf "%s of vkey %d before mpk_mmap" what v)
                ~witness;
            ]
        | Top ->
            [
              mk ~pass ~severity:Warning ~detail:(Maybe "use of possibly-freed vkey")
                ~tid ~node
                ~message:
                  (Printf.sprintf "%s of vkey %d whose lifecycle state depends on the path"
                     what v)
                ~witness;
            ]
        | Mapped -> []
      in
      match node.Ir.op with
      | Ir.Mmap { vkey; _ } -> (
          match ts vkey with
          | Mapped ->
              [
                mk ~pass ~severity:Error ~detail:(Mmap_live { vkey }) ~tid ~node
                  ~message:
                    (Printf.sprintf "mpk_mmap of vkey %d which already has a page group"
                       vkey)
                  ~witness;
              ]
          | Top ->
              [
                mk ~pass ~severity:Warning ~detail:(Maybe "mmap of possibly-live vkey")
                  ~tid ~node
                  ~message:(Printf.sprintf "mpk_mmap of vkey %d may already be mapped" vkey)
                  ~witness;
              ]
          | Unmapped | Freed -> [])
      | Ir.Free { vkey } -> (
          match ts vkey with
          | Freed ->
              [
                mk ~pass ~severity:Error ~detail:(Double_free { vkey }) ~tid ~node
                  ~message:(Printf.sprintf "double free of vkey %d" vkey) ~witness;
              ]
          | Unmapped ->
              [
                mk ~pass ~severity:Error ~detail:(Free_unmapped { vkey }) ~tid ~node
                  ~message:(Printf.sprintf "free of vkey %d which was never mapped" vkey)
                  ~witness;
              ]
          | Top ->
              [
                mk ~pass ~severity:Warning ~detail:(Maybe "free of possibly-freed vkey")
                  ~tid ~node
                  ~message:
                    (Printf.sprintf "free of vkey %d in %s state" vkey
                       (ts_to_string Top))
                  ~witness;
              ]
          | Mapped -> [])
      | Ir.Begin { vkey; _ } -> use vkey "mpk_begin"
      | Ir.End { vkey } -> use vkey "mpk_end"
      | Ir.Mprotect { vkey; _ } -> use vkey "mpk_mprotect"
      | Ir.Read { vkey } -> use vkey "read"
      | Ir.Write { vkey } -> use vkey "write"
      | Ir.Exec { vkey } -> use vkey "exec"
      | Ir.Emit { vkey; _ } -> use vkey "emit"
      | Ir.Label _ when node.Ir.succs = [] && tid = 0 ->
          (* main exit: everything still mapped leaks its group (and,
             transitively, a hardware key's worth of cache pressure) *)
          Dataflow.VMap.fold
            (fun v ts acc ->
              match ts with
              | Mapped | Top ->
                  mk ~pass ~severity:Warning ~detail:(Leak_on_exit { vkey = v }) ~tid
                    ~node
                    ~message:
                      (Printf.sprintf "vkey %d still mapped at program exit (leak)" v)
                    ~witness
                  :: acc
              | Unmapped | Freed -> acc)
            state []
      | _ -> []
    in
    collect p runs ~check
end

(* --- pass 2: begin/end balance --- *)

module Balance = struct
  let default = Dataflow.Interval.zero
  let equal = Dataflow.VMap.equal_d ~default Dataflow.Interval.equal
  let join = Dataflow.VMap.join_d ~default Dataflow.Interval.join

  let transfer (n : Ir.node) st =
    match n.Ir.op with
    | Ir.Begin { vkey; _ } ->
        Dataflow.VMap.add vkey
          (Dataflow.Interval.incr (Dataflow.VMap.find_d ~default vkey st))
          st
    | Ir.End { vkey } ->
        Dataflow.VMap.add vkey
          (Dataflow.Interval.decr (Dataflow.VMap.find_d ~default vkey st))
          st
    | _ -> st

  (* Spawned threads hold no begins at birth: pins are per-thread. *)
  let run p =
    let runs =
      thread_runs p ~init_main:Dataflow.VMap.empty
        ~derive_init:(fun _ -> Dataflow.VMap.empty)
        ~equal ~join ~transfer
    in
    let pass = "balance" in
    let check ~tid ~node ~state ~witness =
      let depth v = Dataflow.VMap.find_d ~default v state in
      match node.Ir.op with
      | Ir.End { vkey } -> (
          match depth vkey with
          | 0, 0 ->
              [
                mk ~pass ~severity:Error ~detail:(End_underflow { vkey }) ~tid ~node
                  ~message:
                    (Printf.sprintf "mpk_end of vkey %d without a matching mpk_begin" vkey)
                  ~witness;
              ]
          | 0, _ ->
              [
                mk ~pass ~severity:Warning ~detail:(Maybe "possible end underflow") ~tid
                  ~node
                  ~message:
                    (Printf.sprintf "mpk_end of vkey %d may lack a matching begin on \
                                     some path"
                       vkey)
                  ~witness;
              ]
          | _ -> [])
      | Ir.Free { vkey } -> (
          match depth vkey with
          | lo, _ when lo > 0 ->
              [
                mk ~pass ~severity:Error ~detail:(Free_inside_begin { vkey }) ~tid ~node
                  ~message:
                    (Printf.sprintf "mpk_free of vkey %d while inside mpk_begin" vkey)
                  ~witness;
              ]
          | 0, hi when hi > 0 ->
              [
                mk ~pass ~severity:Warning ~detail:(Maybe "free possibly inside begin")
                  ~tid ~node
                  ~message:
                    (Printf.sprintf "mpk_free of vkey %d may still be inside mpk_begin"
                       vkey)
                  ~witness;
              ]
          | _ -> [])
      | Ir.Begin { vkey; _ } when snd (depth vkey) >= Dataflow.Interval.cap ->
          [
            mk ~pass ~severity:Warning ~detail:(Maybe "unbounded begin nesting") ~tid
              ~node
              ~message:
                (Printf.sprintf
                   "mpk_begin of vkey %d nests without bound (begin inside a loop \
                    with no end?)"
                   vkey)
              ~witness;
          ]
      | Ir.Label _ when node.Ir.succs = [] ->
          (* thread exit: every vkey must be back to depth 0 on every
             path — a leaked begin pins its hardware key forever *)
          Dataflow.VMap.fold
            (fun v iv acc ->
              match iv with
              | lo, _ when lo > 0 ->
                  mk ~pass ~severity:Error ~detail:(Unbalanced { vkey = v; definite = true })
                    ~tid ~node
                    ~message:
                      (Printf.sprintf
                         "thread exits with mpk_begin of vkey %d unmatched on every path \
                          (depth %s)"
                         v
                         (Dataflow.Interval.to_string iv))
                    ~witness
                  :: acc
              | 0, hi when hi > 0 ->
                  mk ~pass ~severity:Error
                    ~detail:(Unbalanced { vkey = v; definite = false }) ~tid ~node
                    ~message:
                      (Printf.sprintf
                         "thread exits with mpk_begin of vkey %d unmatched on some path \
                          (early return or signal escape skips mpk_end)"
                         v)
                    ~witness
                  :: acc
              | _ -> acc)
            state []
      | _ -> []
    in
    collect p runs ~check
end

(* --- pass 3: W^X --- *)

module Wx = struct
  type vstate = {
    xp_must : bool;  (* page-level exec bit definitely set *)
    xp_may : bool;
    gw_must : bool;  (* global (synchronized) write rights definitely granted *)
    gw_may : bool;
    win : Dataflow.Interval.t;  (* this thread's open write-window depth *)
  }

  let default =
    { xp_must = false; xp_may = false; gw_must = false; gw_may = false;
      win = Dataflow.Interval.zero }

  let equal_v a b =
    a.xp_must = b.xp_must && a.xp_may = b.xp_may && a.gw_must = b.gw_must
    && a.gw_may = b.gw_may
    && Dataflow.Interval.equal a.win b.win

  let join_v a b =
    {
      xp_must = a.xp_must && b.xp_must;
      xp_may = a.xp_may || b.xp_may;
      gw_must = a.gw_must && b.gw_must;
      gw_may = a.gw_may || b.gw_may;
      win = Dataflow.Interval.join a.win b.win;
    }

  let equal = Dataflow.VMap.equal_d ~default equal_v
  let join = Dataflow.VMap.join_d ~default join_v

  let transfer (n : Ir.node) st =
    let get v = Dataflow.VMap.find_d ~default v st in
    match n.Ir.op with
    | Ir.Mmap { vkey; prot; _ } ->
        (* declared prot is max_prot: the group starts with no data
           access granted (PKRU defaults to no-access), only the
           page-level exec bit is live *)
        Dataflow.VMap.add vkey
          { default with xp_must = prot.Perm.exec; xp_may = prot.Perm.exec }
          st
    | Ir.Mprotect { vkey; prot } ->
        let v = get vkey in
        Dataflow.VMap.add vkey
          {
            v with
            xp_must = prot.Perm.exec;
            xp_may = prot.Perm.exec;
            gw_must = prot.Perm.write;
            gw_may = prot.Perm.write;
          }
          st
    | Ir.Begin { vkey; prot } when prot.Perm.write ->
        let v = get vkey in
        Dataflow.VMap.add vkey { v with win = Dataflow.Interval.incr v.win } st
    | Ir.End { vkey } ->
        let v = get vkey in
        Dataflow.VMap.add vkey { v with win = Dataflow.Interval.decr v.win } st
    | Ir.Free { vkey } -> Dataflow.VMap.add vkey default st
    | _ -> st

  let run p =
    let runs =
      thread_runs p ~init_main:Dataflow.VMap.empty
        ~derive_init:
          (Dataflow.VMap.map (fun v -> { v with win = Dataflow.Interval.zero }))
        ~equal ~join ~transfer
    in
    let pass = "wx" in
    let check ~tid ~node ~state ~witness =
      let get v = Dataflow.VMap.find_d ~default v state in
      match node.Ir.op with
      | Ir.Mprotect { vkey; prot } when prot.Perm.write && prot.Perm.exec ->
          [
            mk ~pass ~severity:Error ~detail:(Wx_mapping { vkey }) ~tid ~node
              ~message:
                (Printf.sprintf
                   "mpk_mprotect makes vkey %d globally writable AND executable (W^X \
                    violated for every thread)"
                   vkey)
              ~witness;
          ]
      | Ir.Exec { vkey } -> (
          let v = get vkey in
          if v.gw_must then
            [
              mk ~pass ~severity:Error
                ~detail:(Wx_exec_writable { vkey; window = false }) ~tid ~node
                ~message:
                  (Printf.sprintf
                     "instruction fetch from vkey %d while it is globally writable" vkey)
                ~witness;
            ]
          else if fst v.win > 0 then
            [
              mk ~pass ~severity:Error ~detail:(Wx_exec_writable { vkey; window = true })
                ~tid ~node
                ~message:
                  (Printf.sprintf
                     "instruction fetch from vkey %d inside this thread's own write \
                      window (mpk_begin rw not yet ended)"
                     vkey)
                ~witness;
            ]
          else if v.gw_may || snd v.win > 0 then
            [
              mk ~pass ~severity:Warning ~detail:(Maybe "exec of possibly-writable region")
                ~tid ~node
                ~message:
                  (Printf.sprintf
                     "instruction fetch from vkey %d which may be writable on some path"
                     vkey)
                ~witness;
            ]
          else [])
      | _ -> []
    in
    collect p runs ~check
end

(* --- pass 4: ERIM-style WRPKRU gadget scan --- *)

module Gadget = struct
  (* An occurrence of WRPKRU in an emitted stream is safe only when the
     next two instructions validate the loaded value and divert to the
     trusted path on mismatch; anything else is a gadget an attacker can
     jump to with a chosen eax (ERIM §3.1, which libmpk §6 relies on). *)
  let unsafe_offsets code =
    let arr = Array.of_list code in
    let n = Array.length arr in
    let bad = ref [] in
    Array.iteri
      (fun i insn ->
        match insn with
        | Ir.I_wrpkru ->
            let checked =
              i + 2 < n && arr.(i + 1) = Ir.I_cmp_pkru && arr.(i + 2) = Ir.I_br_trusted
            in
            if not checked then bad := i :: !bad
        | _ -> ())
      arr;
    List.rev !bad

  let run p =
    let runs =
      thread_runs p ~init_main:() ~derive_init:Fun.id ~equal:( = ) ~join:(fun _ _ -> ())
        ~transfer:(fun _ st -> st)
    in
    let pass = "gadget" in
    let check ~tid ~node ~state:_ ~witness =
      match node.Ir.op with
      | Ir.Emit { vkey; code } ->
          List.map
            (fun offset ->
              mk ~pass ~severity:Error ~detail:(Unsafe_wrpkru { vkey; offset }) ~tid
                ~node
                ~message:
                  (Printf.sprintf
                     "emitted stream for vkey %d contains an unchecked WRPKRU at \
                      offset %d (exploitable gadget: a jump here with chosen eax \
                      rewrites PKRU)"
                     vkey offset)
                ~witness)
            (unsafe_offsets code)
      | _ -> []
    in
    collect p runs ~check
end

(* --- pass 5: lazy do_pkey_sync TOCTOU across spawned threads --- *)

module Toctou = struct
  module ISet = Set.Make (Int)

  type granted = { gr_must : bool; gw_must : bool }

  let g_default = { gr_must = false; gw_must = false }

  type state = {
    live_must : ISet.t;
    live_may : ISet.t;
    rights : granted Dataflow.VMap.t;  (* per-vkey global rights from mpk_mprotect *)
  }

  let init = { live_must = ISet.empty; live_may = ISet.empty; rights = Dataflow.VMap.empty }

  let equal a b =
    ISet.equal a.live_must b.live_must
    && ISet.equal a.live_may b.live_may
    && Dataflow.VMap.equal_d ~default:g_default ( = ) a.rights b.rights

  let join a b =
    {
      live_must = ISet.inter a.live_must b.live_must;
      live_may = ISet.union a.live_may b.live_may;
      rights =
        Dataflow.VMap.join_d ~default:g_default
          (fun x y -> { gr_must = x.gr_must && y.gr_must; gw_must = x.gw_must && y.gw_must })
          a.rights b.rights;
    }

  let transfer (n : Ir.node) st =
    match n.Ir.op with
    | Ir.Spawn { tid } ->
        { st with live_must = ISet.add tid st.live_must; live_may = ISet.add tid st.live_may }
    | Ir.Join { tid } ->
        { st with live_must = ISet.remove tid st.live_must; live_may = ISet.remove tid st.live_may }
    | Ir.Mmap { vkey; _ } | Ir.Free { vkey } ->
        (* a fresh group starts with no global rights; a freed one has none *)
        { st with rights = Dataflow.VMap.add vkey g_default st.rights }
    | Ir.Mprotect { vkey; prot } ->
        {
          st with
          rights =
            Dataflow.VMap.add vkey
              { gr_must = prot.Perm.read; gw_must = prot.Perm.write }
              st.rights;
        }
    | _ -> st

  (* Accesses a thread performs while *not* inside its own mpk_begin for
     that vkey ("bare" accesses: they rely entirely on the global rights
     and therefore race a revocation's lazy sync). Computed with the
     balance domain per thread. *)
  type bare = { rd_def : bool; rd_may : bool; wr_def : bool; wr_may : bool }

  let bare_default = { rd_def = false; rd_may = false; wr_def = false; wr_may = false }

  let bare_accesses p (t : Ir.thread) =
    let r =
      Dataflow.forward p ~entry:t.Ir.entry ~init:Dataflow.VMap.empty
        ~equal:Balance.equal ~join:Balance.join ~transfer:Balance.transfer
    in
    List.fold_left
      (fun acc (n : Ir.node) ->
        let upd vkey kind =
          match Dataflow.state r n.Ir.id with
          | None -> acc
          | Some st ->
              let lo, hi =
                Dataflow.VMap.find_d ~default:Dataflow.Interval.zero vkey st
              in
              let b = Dataflow.VMap.find_d ~default:bare_default vkey acc in
              let b =
                match kind with
                | A_read ->
                    { b with rd_def = b.rd_def || hi = 0; rd_may = b.rd_may || lo = 0 }
                | A_write ->
                    { b with wr_def = b.wr_def || hi = 0; wr_may = b.wr_may || lo = 0 }
              in
              Dataflow.VMap.add vkey b acc
        in
        match n.Ir.op with
        | Ir.Read { vkey } -> upd vkey A_read
        | Ir.Write { vkey } | Ir.Emit { vkey; _ } -> upd vkey A_write
        | _ -> acc)
      Dataflow.VMap.empty (Ir.thread_nodes p t.Ir.tid)

  let run p =
    let main = Ir.main_thread p in
    let bare =
      List.filter_map
        (fun (t : Ir.thread) ->
          if t.Ir.tid = 0 then None else Some (t.Ir.tid, bare_accesses p t))
        p.Ir.threads
    in
    let r = Dataflow.forward p ~entry:main.Ir.entry ~init ~equal ~join ~transfer in
    let pass = "toctou" in
    List.concat_map
      (fun (n : Ir.node) ->
        match n.Ir.op, Dataflow.state r n.Ir.id with
        | Ir.Mprotect { vkey; prot }, Some st ->
            let prev = Dataflow.VMap.find_d ~default:g_default vkey st.rights in
            let revoked =
              (if prev.gr_must && not prot.Perm.read then [ A_read ] else [])
              @ if prev.gw_must && not prot.Perm.write then [ A_write ] else []
            in
            List.concat_map
              (fun (victim, accesses) ->
                let b = Dataflow.VMap.find_d ~default:bare_default vkey accesses in
                List.filter_map
                  (fun acc_kind ->
                    let def, may =
                      match acc_kind with
                      | A_read -> b.rd_def, b.rd_may
                      | A_write -> b.wr_def, b.wr_may
                    in
                    let witness () =
                      List.map
                        (fun id -> { stid = 0; sop = (Ir.node p id).Ir.op })
                        (Dataflow.path_to r n.Ir.id)
                    in
                    if ISet.mem victim st.live_must && def then
                      Some
                        (mk ~pass ~severity:Error
                           ~detail:(Toctou { vkey; victim; access = acc_kind })
                           ~tid:0 ~node:n
                           ~message:
                             (Printf.sprintf
                                "mpk_mprotect revokes %s on vkey %d while thread %d is \
                                 live and %ss it outside mpk_begin — until the \
                                 victim's lazy do_pkey_sync task_work runs, its PKRU \
                                 still grants the revoked right (TOCTOU)"
                                (access_to_string acc_kind) vkey victim
                                (access_to_string acc_kind))
                           ~witness)
                    else if ISet.mem victim st.live_may && may then
                      Some
                        (mk ~pass ~severity:Warning
                           ~detail:(Toctou { vkey; victim; access = acc_kind })
                           ~tid:0 ~node:n
                           ~message:
                             (Printf.sprintf
                                "mpk_mprotect may revoke %s on vkey %d while thread %d \
                                 can access it outside mpk_begin on some path"
                                (access_to_string acc_kind) vkey victim)
                           ~witness)
                    else None)
                  revoked)
              bare
        | _ -> [])
      (Dataflow.reached p r 0)
end

(* --- driver --- *)

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let analyze p =
  Typestate.run p @ Balance.run p @ Wx.run p @ Gadget.run p @ Toctou.run p
  |> List.sort (fun a b ->
         compare
           (severity_rank a.severity, a.pass, a.node)
           (severity_rank b.severity, b.pass, b.node))
