(** The versioned core-dump format: redaction/encryption policy, section
    sealing, serialization, and offline verification.

    A dump is a strict-JSON document ([CORE_<task>_<seed>.json]) holding
    the crashed task's registers, VMA map, flight-recorder black box,
    optional cycle-attribution profile, and the memory image as a list
    of {e sections} — runs of present pages with uniform protection.
    Confidentiality is a property of the artifact, not the viewer:
    pages belonging to a protection domain never appear in the clear
    (except under the deliberately misconfigured {!Clear_debug} policy
    that exists so the leak scanner can prove it would notice).

    Two independent integrity layers:

    - Every section, and the dump as a whole, carries an HMAC-SHA256
      under a key derived from the (public) dump id. Anyone can verify
      these; they are {e tamper evidence} against corruption and
      splicing, not forgery resistance — an adversary who rewrites the
      whole dump can re-MAC it.
    - Encrypted sections additionally carry an {!Mpk_crypto.Aead} tag
      binding the dump metadata (dump id, task, siginfo, pkey, page
      range, section index) as associated data, plus an HMAC of the
      plaintext under a key-derived subkey. These only verify with the
      dump key, and they do resist forgery: a section cannot be moved
      between dumps, or within a dump, and still authenticate. *)

open Mpk_trace

type policy =
  | Redact  (** protected pages are dropped, leaving a [REDACTED:<pkey>] marker *)
  | Encrypt  (** protected pages are sealed with the AEAD under the dump key *)
  | Clear_debug
      (** protected pages are dumped in the clear — a deliberate
          misconfiguration ([--policy none]) used to prove the sentinel
          scanner detects leaks; never use outside tests *)

val policy_of_string : string -> (policy, string) result
val policy_to_string : policy -> string

(** [REDACTED:<pkey>] *)
val redaction_marker : pkey:int -> string

(** Fault description, stringly-typed so the format is self-contained. *)
type sig_report = { signo : int; code : string; addr : int; access : string; pkey : int }

type core_regs = { core : int; pkru : int; cycles : float }

type vma_entry = { start : int; pages : int; prot : string; pkey : int }

(** How a section's payload was sealed. *)
type sealed =
  | Clear  (** unprotected page run, plaintext payload *)
  | Leaked  (** protected run dumped in the clear by {!Clear_debug} *)
  | Redacted of string  (** marker; payload is empty *)
  | Encrypted of { nonce : bytes; tag : bytes; ptx_hmac : bytes }
      (** payload is the ciphertext; [ptx_hmac] lets a keyed inspector
          confirm the decryption matches what was captured *)

type section = {
  index : int;
  base : int;  (** address of the first page *)
  pages : int;
  pkey : int;  (** hardware key tagged on the pages (0 = default) *)
  vkey : int option;  (** owning libmpk virtual key, when known *)
  sealed : sealed;
  payload : bytes;
  mac : bytes;  (** section HMAC under the integrity key *)
}

type t = {
  version : int;
  dump_id : string;
  task : int;
  seed : int64;
  policy : policy;
  siginfo : sig_report option;
  regs : core_regs list;
  task_pkru : int;
  vmas : vma_entry list;
  blackbox : string list;
  profile : Json.t option;
  sections : section list;
  mac : bytes;  (** dump-level HMAC over the whole serialized document *)
}

val current_version : int

(** What the capture layer hands over: page runs with plaintext data,
    already classified ([protected] = tagged with a nonzero pkey {e or}
    inside a live libmpk group — an evicted group's pages carry pkey 0
    but still hold domain secrets). *)
type raw_section = {
  raw_base : int;
  raw_pages : int;
  raw_pkey : int;
  raw_vkey : int option;
  raw_protected : bool;
  raw_data : bytes;
}

(** [seal ~key ~seed ~policy ~task ... raws] applies the policy to every
    raw section and computes all MACs. [key] must be
    {!Mpk_crypto.Aead.key_bytes} long (it is only consulted for
    {!Encrypt}, but always validated). Nonces are derived
    deterministically from the key and the section's associated data,
    so a given (key, seed, fault) capture is byte-identical — the
    "seeded nonce" test mode; a production port would mix in fresh
    randomness. *)
val seal :
  key:bytes ->
  seed:int64 ->
  policy:policy ->
  task:int ->
  ?siginfo:sig_report ->
  regs:core_regs list ->
  task_pkru:int ->
  vmas:vma_entry list ->
  blackbox:string list ->
  ?profile:Json.t ->
  raw_section list ->
  t

(** [CORE_<task>_<seed>.json] *)
val filename : t -> string

val to_json : t -> Json.t

(** Deterministic compact serialization ({!Json.to_string} of
    {!to_json} with [indent 1]). *)
val to_string : t -> string

val of_json : Json.t -> (t, string) result
val of_string : string -> (t, string) result

(** [verify t] recomputes the integrity HMACs (dump-level and one per
    section) and returns human-readable failure descriptions; [[]]
    means every HMAC checked out. Needs no key. *)
val verify : t -> string list

(** [open_section ~key t s] — verify the AEAD tag and decrypt an
    {!Encrypted} section, then check the plaintext HMAC. [Clear] and
    [Leaked] payloads are returned as-is; [Redacted] is an [Error]
    (those bytes are gone by design). *)
val open_section : key:bytes -> t -> section -> (bytes, string) result

(** [scan ~sentinel raw] — search a serialized dump for secret bytes:
    the raw document text, and every base64 [data] payload decoded.
    Returns one description per hit; [[]] means the sentinel does not
    appear anywhere, encoded or not. *)
val scan : sentinel:string -> string -> string list
