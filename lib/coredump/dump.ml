open Mpk_trace
open Mpk_crypto

type policy = Redact | Encrypt | Clear_debug

let policy_of_string = function
  | "redact" -> Ok Redact
  | "encrypt" -> Ok Encrypt
  | "none" -> Ok Clear_debug
  | s -> Error (Printf.sprintf "unknown policy %S (expected redact, encrypt, or none)" s)

let policy_to_string = function
  | Redact -> "redact"
  | Encrypt -> "encrypt"
  | Clear_debug -> "none"

let redaction_marker ~pkey = Printf.sprintf "REDACTED:%d" pkey

type sig_report = { signo : int; code : string; addr : int; access : string; pkey : int }

type core_regs = { core : int; pkru : int; cycles : float }

type vma_entry = { start : int; pages : int; prot : string; pkey : int }

type sealed =
  | Clear
  | Leaked
  | Redacted of string
  | Encrypted of { nonce : bytes; tag : bytes; ptx_hmac : bytes }

type section = {
  index : int;
  base : int;
  pages : int;
  pkey : int;
  vkey : int option;
  sealed : sealed;
  payload : bytes;
  mac : bytes;
}

type t = {
  version : int;
  dump_id : string;
  task : int;
  seed : int64;
  policy : policy;
  siginfo : sig_report option;
  regs : core_regs list;
  task_pkru : int;
  vmas : vma_entry list;
  blackbox : string list;
  profile : Json.t option;
  sections : section list;
  mac : bytes;
}

type raw_section = {
  raw_base : int;
  raw_pages : int;
  raw_pkey : int;
  raw_vkey : int option;
  raw_protected : bool;
  raw_data : bytes;
}

let current_version = 1

(* ---------- key derivation and associated data ---------- *)

(* The integrity key is derived from the (public) dump id: these HMACs
   are tamper evidence anyone can check, not forgery resistance — that
   is what the AEAD tags under the secret dump key provide. *)
let integrity_key dump_id =
  Hmac.derive ~secret:(Bytes.of_string dump_id) ~label:"mpk-core-integrity"
    ~len:Aead.key_bytes

let nonce_key key = Hmac.derive ~secret:key ~label:"mpk-core-nonce" ~len:Aead.key_bytes
let ptx_key key = Hmac.derive ~secret:key ~label:"mpk-core-ptx" ~len:Aead.key_bytes

let class_string = function
  | Clear -> "clear"
  | Leaked -> "leaked"
  | Redacted _ -> "redacted"
  | Encrypted _ -> "encrypted"

let sig_string = function
  | None -> "-"
  | Some s -> Printf.sprintf "%d,%s,0x%x,%s,%d" s.signo s.code s.addr s.access s.pkey

(* Everything that identifies the dump: a section sealed under one
   header cannot verify under another. *)
let header_aad ~version ~dump_id ~task ~siginfo ~policy =
  Printf.sprintf "mpk-core|v%d|%s|task=%d|sig=%s|policy=%s" version dump_id task
    (sig_string siginfo) (policy_to_string policy)

let section_aad ~header ~index ~base ~pages ~pkey ~vkey ~cls =
  Printf.sprintf "%s|sect=%d|base=0x%x|pages=%d|pkey=%d|vkey=%s|cls=%s" header index
    base pages pkey
    (match vkey with Some v -> string_of_int v | None -> "-")
    cls

let section_aad_of ~header (s : section) =
  section_aad ~header ~index:s.index ~base:s.base ~pages:s.pages ~pkey:s.pkey
    ~vkey:s.vkey ~cls:(class_string s.sealed)

(* What the section HMAC covers besides the aad: every sealed byte, so
   flipping anything — data, marker, nonce, tag, plaintext digest —
   breaks verification. *)
let section_mac_payload (s : section) =
  match s.sealed with
  | Clear | Leaked -> s.payload
  | Redacted marker -> Bytes.of_string marker
  | Encrypted { nonce; tag; ptx_hmac } ->
      Bytes.concat Bytes.empty [ nonce; tag; ptx_hmac; s.payload ]

let section_mac ~ikey ~header s =
  Hmac.sha256 ~key:ikey
    (Bytes.concat Bytes.empty
       [ Bytes.of_string (section_aad_of ~header s); section_mac_payload s ])

(* ---------- JSON ---------- *)

let hex = Mpk_util.Hex.encode

let json_of_sig (s : sig_report) =
  Json.Obj
    [
      "signo", Json.Int s.signo;
      "code", Json.String s.code;
      "addr", Json.Int s.addr;
      "access", Json.String s.access;
      "pkey", Json.Int s.pkey;
    ]

let json_of_section (s : section) =
  let common =
    [
      "index", Json.Int s.index;
      "base", Json.Int s.base;
      "pages", Json.Int s.pages;
      "pkey", Json.Int s.pkey;
      "vkey", (match s.vkey with Some v -> Json.Int v | None -> Json.Null);
      "class", Json.String (class_string s.sealed);
    ]
  in
  let body =
    match s.sealed with
    | Clear | Leaked -> [ "data", Json.bytes_to_json s.payload ]
    | Redacted marker -> [ "marker", Json.String marker ]
    | Encrypted { nonce; tag; ptx_hmac } ->
        [
          "nonce", Json.String (hex nonce);
          "tag", Json.String (hex tag);
          "plaintext_hmac", Json.String (hex ptx_hmac);
          "data", Json.bytes_to_json s.payload;
        ]
  in
  Json.Obj (common @ body @ [ "hmac", Json.String (hex s.mac) ])

let to_json_with_mac t mac_hex =
  Json.Obj
    [
      "format", Json.String "mpk-core";
      "version", Json.Int t.version;
      "dump_id", Json.String t.dump_id;
      "task", Json.Int t.task;
      "seed", Json.String (Int64.to_string t.seed);
      "policy", Json.String (policy_to_string t.policy);
      "siginfo", (match t.siginfo with Some s -> json_of_sig s | None -> Json.Null);
      ( "registers",
        Json.Obj
          [
            "task_pkru", Json.Int t.task_pkru;
            ( "cores",
              Json.List
                (List.map
                   (fun r ->
                     Json.Obj
                       [
                         "core", Json.Int r.core;
                         "pkru", Json.Int r.pkru;
                         "cycles", Json.Float r.cycles;
                       ])
                   t.regs) );
          ] );
      ( "vmas",
        Json.List
          (List.map
             (fun v ->
               Json.Obj
                 [
                   "start", Json.Int v.start;
                   "pages", Json.Int v.pages;
                   "prot", Json.String v.prot;
                   "pkey", Json.Int v.pkey;
                 ])
             t.vmas) );
      "blackbox", Json.List (List.map (fun l -> Json.String l) t.blackbox);
      "profile", (match t.profile with Some j -> j | None -> Json.Null);
      "sections", Json.List (List.map json_of_section t.sections);
      "hmac", Json.String mac_hex;
    ]

let to_json t = to_json_with_mac t (hex t.mac)

(* The dump-level MAC covers the complete serialized document with the
   "hmac" field pinned empty — serialization is deterministic, so the
   pre-image is reproducible at verification time. *)
let dump_mac_preimage t = Json.to_string (to_json_with_mac t "")

let compute_dump_mac t =
  Hmac.sha256 ~key:(integrity_key t.dump_id) (Bytes.of_string (dump_mac_preimage t))

let to_string t = Json.to_string ~indent:1 (to_json t)

(* ---------- sealing ---------- *)

let seal ~key ~seed ~policy ~task ?siginfo ~regs ~task_pkru ~vmas ~blackbox ?profile
    raws =
  if Bytes.length key <> Aead.key_bytes then
    invalid_arg (Printf.sprintf "Dump.seal: key must be %d bytes" Aead.key_bytes);
  let version = current_version in
  let dump_id = Printf.sprintf "mpk-core:t%d:s%Ld" task seed in
  let header = header_aad ~version ~dump_id ~task ~siginfo ~policy in
  let ikey = integrity_key dump_id in
  let seal_one index (r : raw_section) =
    let sealed, payload =
      if not r.raw_protected then (Clear, r.raw_data)
      else
        match policy with
        | Clear_debug -> (Leaked, r.raw_data)
        | Redact -> (Redacted (redaction_marker ~pkey:r.raw_pkey), Bytes.empty)
        | Encrypt ->
            let aad =
              section_aad ~header ~index ~base:r.raw_base ~pages:r.raw_pages
                ~pkey:r.raw_pkey ~vkey:r.raw_vkey ~cls:"encrypted"
            in
            (* Deterministic nonce: unique per (key, dump, section) since
               the aad embeds the dump id and section index. *)
            let nonce =
              Bytes.sub
                (Hmac.sha256 ~key:(nonce_key key) (Bytes.of_string aad))
                0 Aead.nonce_bytes
            in
            let aad_bytes = Bytes.of_string aad in
            let ciphertext, tag = Aead.seal ~key ~nonce ~aad:aad_bytes r.raw_data in
            let ptx_hmac = Hmac.sha256 ~key:(ptx_key key) r.raw_data in
            (Encrypted { nonce; tag; ptx_hmac }, ciphertext)
    in
    let s =
      {
        index;
        base = r.raw_base;
        pages = r.raw_pages;
        pkey = r.raw_pkey;
        vkey = r.raw_vkey;
        sealed;
        payload;
        mac = Bytes.empty;
      }
    in
    { s with mac = section_mac ~ikey ~header s }
  in
  let sections = List.mapi seal_one raws in
  let t =
    {
      version;
      dump_id;
      task;
      seed;
      policy;
      siginfo;
      regs;
      task_pkru;
      vmas;
      blackbox;
      profile;
      sections;
      mac = Bytes.empty;
    }
  in
  { t with mac = compute_dump_mac t }

let filename t = Printf.sprintf "CORE_t%d_s%Ld.json" t.task t.seed

(* ---------- parsing ---------- *)

let ( let* ) r f = Result.bind r f

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let as_int name = function
  | Json.Int i -> Ok i
  | _ -> Error (Printf.sprintf "field %S: expected an integer" name)

let as_string name = function
  | Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "field %S: expected a string" name)

let as_list name = function
  | Json.List l -> Ok l
  | _ -> Error (Printf.sprintf "field %S: expected an array" name)

let int_field name j = Result.bind (field name j) (as_int name)
let string_field name j = Result.bind (field name j) (as_string name)
let list_field name j = Result.bind (field name j) (as_list name)

let hex_field name j =
  let* s = string_field name j in
  Result.map_error (fun e -> Printf.sprintf "field %S: %s" name e) (Mpk_util.Hex.decode s)

let b64_field name j =
  let* v = field name j in
  Result.map_error (fun e -> Printf.sprintf "field %S: %s" name e) (Json.bytes_of_json v)

let rec collect f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = collect f rest in
      Ok (y :: ys)

let parse_sig j =
  let* signo = int_field "signo" j in
  let* code = string_field "code" j in
  let* addr = int_field "addr" j in
  let* access = string_field "access" j in
  let* pkey = int_field "pkey" j in
  Ok { signo; code; addr; access; pkey }

let parse_section j =
  let* index = int_field "index" j in
  let* base = int_field "base" j in
  let* pages = int_field "pages" j in
  let* pkey = int_field "pkey" j in
  let* vkey =
    match Json.member "vkey" j with
    | Some Json.Null | None -> Ok None
    | Some (Json.Int v) -> Ok (Some v)
    | Some _ -> Error "field \"vkey\": expected an integer or null"
  in
  let* cls = string_field "class" j in
  let* mac = hex_field "hmac" j in
  let* sealed, payload =
    match cls with
    | "clear" ->
        let* data = b64_field "data" j in
        Ok (Clear, data)
    | "leaked" ->
        let* data = b64_field "data" j in
        Ok (Leaked, data)
    | "redacted" ->
        let* marker = string_field "marker" j in
        Ok (Redacted marker, Bytes.empty)
    | "encrypted" ->
        let* nonce = hex_field "nonce" j in
        let* tag = hex_field "tag" j in
        let* ptx_hmac = hex_field "plaintext_hmac" j in
        let* data = b64_field "data" j in
        Ok (Encrypted { nonce; tag; ptx_hmac }, data)
    | c -> Error (Printf.sprintf "unknown section class %S" c)
  in
  Ok { index; base; pages; pkey; vkey; sealed; payload; mac }

let of_json j =
  let* fmt = string_field "format" j in
  if fmt <> "mpk-core" then Error (Printf.sprintf "not an mpk-core dump (format %S)" fmt)
  else
    let* version = int_field "version" j in
    if version <> current_version then
      Error (Printf.sprintf "unsupported dump version %d" version)
    else
      let* dump_id = string_field "dump_id" j in
      let* task = int_field "task" j in
      let* seed_s = string_field "seed" j in
      let* seed =
        match Int64.of_string_opt seed_s with
        | Some s -> Ok s
        | None -> Error (Printf.sprintf "field \"seed\": bad int64 %S" seed_s)
      in
      let* policy_s = string_field "policy" j in
      let* policy = policy_of_string policy_s in
      let* siginfo =
        match Json.member "siginfo" j with
        | Some Json.Null | None -> Ok None
        | Some sj -> Result.map Option.some (parse_sig sj)
      in
      let* registers = field "registers" j in
      let* task_pkru = int_field "task_pkru" registers in
      let* core_list = list_field "cores" registers in
      let* regs =
        collect
          (fun cj ->
            let* core = int_field "core" cj in
            let* pkru = int_field "pkru" cj in
            let* cycles =
              match Json.member "cycles" cj with
              | Some v -> (
                  match Json.to_number v with
                  | Some f -> Ok f
                  | None -> Error "field \"cycles\": expected a number")
              | None -> Error "missing field \"cycles\""
            in
            Ok { core; pkru; cycles })
          core_list
      in
      let* vma_list = list_field "vmas" j in
      let* vmas =
        collect
          (fun vj ->
            let* start = int_field "start" vj in
            let* pages = int_field "pages" vj in
            let* prot = string_field "prot" vj in
            let* pkey = int_field "pkey" vj in
            Ok { start; pages; prot; pkey })
          vma_list
      in
      let* bb_list = list_field "blackbox" j in
      let* blackbox = collect (as_string "blackbox") bb_list in
      let profile =
        match Json.member "profile" j with
        | Some Json.Null | None -> None
        | Some p -> Some p
      in
      let* sect_list = list_field "sections" j in
      let* sections = collect parse_section sect_list in
      let* mac = hex_field "hmac" j in
      Ok
        {
          version;
          dump_id;
          task;
          seed;
          policy;
          siginfo;
          regs;
          task_pkru;
          vmas;
          blackbox;
          profile;
          sections;
          mac;
        }

let of_string s =
  match Json.parse s with
  | Error e -> Error (Printf.sprintf "JSON: %s" e)
  | Ok j -> of_json j

(* ---------- verification ---------- *)

let verify t =
  let header =
    header_aad ~version:t.version ~dump_id:t.dump_id ~task:t.task ~siginfo:t.siginfo
      ~policy:t.policy
  in
  let ikey = integrity_key t.dump_id in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  if not (Bytes.equal t.mac (compute_dump_mac t)) then
    fail "dump HMAC mismatch (document was modified)";
  List.iter
    (fun (s : section) ->
      if not (Bytes.equal s.mac (section_mac ~ikey ~header s)) then
        fail "section #%d (base 0x%x): HMAC mismatch" s.index s.base;
      match s.sealed with
      | Redacted marker when marker <> redaction_marker ~pkey:s.pkey ->
          fail "section #%d: redaction marker %S does not match pkey %d" s.index marker
            s.pkey
      | _ -> ())
    t.sections;
  List.rev !failures

let open_section ~key t (s : section) =
  match s.sealed with
  | Clear | Leaked -> Ok s.payload
  | Redacted marker ->
      Error (Printf.sprintf "section #%d is %s: bytes were not captured" s.index marker)
  | Encrypted { nonce; tag; ptx_hmac } -> (
      let header =
        header_aad ~version:t.version ~dump_id:t.dump_id ~task:t.task
          ~siginfo:t.siginfo ~policy:t.policy
      in
      let aad = Bytes.of_string (section_aad_of ~header s) in
      match Aead.open_ ~key ~nonce ~aad ~tag s.payload with
      | Error e -> Error (Printf.sprintf "section #%d: %s" s.index e)
      | Ok plaintext ->
          if Bytes.equal (Hmac.sha256 ~key:(ptx_key key) plaintext) ptx_hmac then
            Ok plaintext
          else
            Error
              (Printf.sprintf "section #%d: decrypted bytes do not match plaintext digest"
                 s.index))

(* ---------- sentinel scanning ---------- *)

let contains ~needle hay =
  let n = Bytes.length needle and h = Bytes.length hay in
  if n = 0 then true
  else if n > h then false
  else begin
    let found = ref false in
    let i = ref 0 in
    while (not !found) && !i <= h - n do
      let j = ref 0 in
      while !j < n && Bytes.get hay (!i + !j) = Bytes.get needle !j do
        incr j
      done;
      if !j = n then found := true else incr i
    done;
    !found
  end

let scan ~sentinel raw =
  let needle = Bytes.of_string sentinel in
  let hits = ref [] in
  let hit fmt = Printf.ksprintf (fun m -> hits := m :: !hits) fmt in
  if contains ~needle (Bytes.of_string raw) then
    hit "sentinel appears verbatim in the raw dump text";
  (match of_string raw with
  | Error _ -> ()  (* raw text scan above is all we can do *)
  | Ok t ->
      List.iter
        (fun (s : section) ->
          if contains ~needle s.payload then
            hit "sentinel appears in decoded payload of section #%d (class %s, base 0x%x)"
              s.index (class_string s.sealed) s.base)
        t.sections);
  List.rev !hits
