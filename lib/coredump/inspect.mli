(** Offline dump inspection: parse, verify every HMAC, and render a
    fault report that never exposes protected plaintext.

    With a key, encrypted sections are additionally opened: the AEAD tag
    is checked, the plaintext decrypted, and its digest compared against
    the recorded plaintext HMAC — the report then shows per-section
    decrypt status (still only sizes and digests, never the bytes). *)

type outcome = {
  report : string;  (** human-readable fault report *)
  failures : string list;  (** integrity/decrypt failures; [[]] = clean *)
}

(** [run ?key raw] — [Error] means the document does not parse as a
    dump (CLI exit 2); [Ok o] with [o.failures <> []] means it parsed
    but failed verification (CLI exit 1). *)
val run : ?key:bytes -> string -> (outcome, string) result
