type outcome = { report : string; failures : string list }

let class_of (s : Dump.section) =
  match s.Dump.sealed with
  | Dump.Clear -> "clear"
  | Dump.Leaked -> "LEAKED"
  | Dump.Redacted _ -> "redacted"
  | Dump.Encrypted _ -> "encrypted"

let pkru_rights pkru =
  (* Render only keys with non-default rights to keep the line short. *)
  let p = Mpk_hw.Pkru.of_int pkru in
  let parts =
    List.filter_map
      (fun k ->
        match Mpk_hw.Pkru.rights p k with
        | Mpk_hw.Pkru.Read_write -> Some (Printf.sprintf "k%d=rw" (Mpk_hw.Pkey.to_int k))
        | Mpk_hw.Pkru.Read_only -> Some (Printf.sprintf "k%d=ro" (Mpk_hw.Pkey.to_int k))
        | Mpk_hw.Pkru.No_access -> None)
      (Mpk_hw.Pkey.default :: Mpk_hw.Pkey.allocatable)
  in
  if parts = [] then "all-denied" else String.concat "," parts

let blackbox_tail = 8

let run ?key raw =
  match Dump.of_string raw with
  | Error e -> Error e
  | Ok t ->
      let failures = ref (Dump.verify t) in
      let fail m = failures := !failures @ [ m ] in
      let buf = Buffer.create 4096 in
      let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
      line "mpk-core dump %s (version %d)" t.Dump.dump_id t.Dump.version;
      line "  task %d, seed %Ld, policy %s" t.Dump.task t.Dump.seed
        (Dump.policy_to_string t.Dump.policy);
      (match t.Dump.siginfo with
      | None -> line "  fault: none recorded (explicit capture)"
      | Some s ->
          line "  fault: signal %d code=%s addr=0x%x access=%s pkey=%d" s.Dump.signo
            s.Dump.code s.Dump.addr s.Dump.access s.Dump.pkey);
      line "  task PKRU: 0x%x (%s)" t.Dump.task_pkru (pkru_rights t.Dump.task_pkru);
      List.iter
        (fun (r : Dump.core_regs) ->
          line "  core %d: pkru=0x%x cycles=%.0f" r.Dump.core r.Dump.pkru r.Dump.cycles)
        t.Dump.regs;
      line "  vmas (%d):" (List.length t.Dump.vmas);
      List.iter
        (fun (v : Dump.vma_entry) ->
          line "    0x%x +%d pages %s pkey=%d" v.Dump.start v.Dump.pages v.Dump.prot
            v.Dump.pkey)
        t.Dump.vmas;
      line "  sections (%d):" (List.length t.Dump.sections);
      List.iter
        (fun (s : Dump.section) ->
          let status =
            match s.Dump.sealed, key with
            | Dump.Encrypted _, Some k -> (
                match Dump.open_section ~key:k t s with
                | Ok plaintext ->
                    Printf.sprintf "decrypt ok (%d bytes, digest verified)"
                      (Bytes.length plaintext)
                | Error e ->
                    fail e;
                    "decrypt FAILED")
            | Dump.Encrypted _, None -> "sealed (no key)"
            | Dump.Redacted marker, _ -> marker
            | Dump.Leaked, _ ->
                fail
                  (Printf.sprintf
                     "section #%d: protected bytes are IN THE CLEAR (policy none)"
                     s.Dump.index);
                "LEAKED"
            | Dump.Clear, _ -> Printf.sprintf "%d bytes" (Bytes.length s.Dump.payload)
          in
          line "    #%d 0x%x +%d pages pkey=%d vkey=%s %s: %s" s.Dump.index s.Dump.base
            s.Dump.pages s.Dump.pkey
            (match s.Dump.vkey with Some v -> string_of_int v | None -> "-")
            (class_of s) status)
        t.Dump.sections;
      (match t.Dump.profile with
      | Some _ -> line "  profile: embedded (cycle attribution snapshot)"
      | None -> line "  profile: absent");
      let bb = t.Dump.blackbox in
      line "  black box: %d events%s" (List.length bb)
        (if bb = [] then "" else Printf.sprintf ", last %d:" (min blackbox_tail (List.length bb)));
      let tail =
        let n = List.length bb in
        List.filteri (fun i _ -> i >= n - blackbox_tail) bb
      in
      List.iter (fun l -> line "    %s" l) tail;
      (* HMAC integrity (key-less check) always gets a verdict line. *)
      (match Dump.verify t with
      | [] -> line "  integrity: all HMACs verified"
      | fs -> List.iter (fun f -> line "  integrity FAILURE: %s" f) fs);
      Ok { report = Buffer.contents buf; failures = !failures }
