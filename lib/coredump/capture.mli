(** Snapshot a crashed (or live) task into a sealed {!Dump.t}.

    Capture walks the process's VMA tree through the page table, reads
    the bytes of every present page straight from simulated physical
    memory (the dying task cannot be trusted to run loads), classifies
    each page by its PTE protection key {e and} libmpk group metadata,
    coalesces runs of uniform classification, and hands the result to
    {!Dump.seal}.

    Classification: a page is {e protected} when its pkey is nonzero,
    or when it belongs to a live libmpk group — the latter catches
    isolated groups whose hardware key was evicted (their pages drop to
    [PROT_NONE] with pkey 0, yet still hold domain secrets). *)

open Mpk_kernel

(** The failure point ("coredump.capture") consulted at the start of a
    capture, so graceful degradation under mid-crash failure is testable
    with {!Mpk_faultinj}. *)
val fault_point : string

(** [default_key ~seed] — the dump key used when the operator supplies
    none: derived from the run seed, so a deterministic run can be
    inspected offline without a key exchange. A production port would
    read an operator-provisioned key instead. *)
val default_key : seed:int64 -> bytes

val report_of_siginfo : Signal.siginfo -> Dump.sig_report

(** [capture ~proc ~task ?mpk ?siginfo ~key ~seed ~policy ()].

    [siginfo] defaults to the pending {!Signal.last_crash} record when
    its task id matches [task] — in that case the crash record's black
    box (snapshotted at kill time) is used; otherwise the live tracer
    tail. [mpk] enables group-aware classification and should be passed
    whenever the process runs libmpk. The cycle-attribution profile is
    embedded when {!Mpk_trace.Prof} is enabled.

    Errors (never raises): the ["coredump.capture"] failure point fired,
    or the memory walk failed. *)
val capture :
  proc:Proc.t ->
  task:Task.t ->
  ?mpk:Libmpk.t ->
  ?siginfo:Signal.siginfo ->
  key:bytes ->
  seed:int64 ->
  policy:Dump.policy ->
  unit ->
  (Dump.t, string) result
