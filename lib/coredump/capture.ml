open Mpk_hw
open Mpk_kernel
open Mpk_trace
open Mpk_crypto

let fault_point = "coredump.capture"
let () = Mpk_faultinj.declare fault_point

let default_key ~seed =
  let secret = Bytes.create 8 in
  Bytes.set_int64_le secret 0 seed;
  Hmac.derive ~secret ~label:"mpk-core-key" ~len:Aead.key_bytes

let report_of_siginfo (si : Signal.siginfo) : Dump.sig_report =
  {
    Dump.signo = si.Signal.signo;
    code = Signal.code_to_string si.Signal.code;
    addr = si.Signal.addr;
    access = Mmu.access_to_string si.Signal.access;
    pkey = si.Signal.pkey;
  }

(* Per-page classification, before coalescing. *)
type page_class = { pkey : int; vkey : int option; protected : bool }

let classify mpk ~addr ~pkey =
  match mpk with
  | None -> { pkey; vkey = None; protected = pkey <> 0 }
  | Some m -> (
      match Libmpk.group_of_addr m addr with
      | Some (vk, _) -> { pkey; vkey = Some vk; protected = true }
      | None ->
          let vkey = if pkey <> 0 then Libmpk.vkey_of_pkey m (Pkey.of_int pkey) else None in
          { pkey; vkey; protected = pkey <> 0 })

type run = {
  base : int;
  cls : page_class;
  mutable next_vpn : int;  (* the vpn that would extend this run *)
  mutable chunks : bytes list;  (* page bytes, newest first *)
  mutable pages : int;
}

let finish r : Dump.raw_section =
  {
    Dump.raw_base = r.base;
    raw_pages = r.pages;
    raw_pkey = r.cls.pkey;
    raw_vkey = r.cls.vkey;
    raw_protected = r.cls.protected;
    raw_data = Bytes.concat Bytes.empty (List.rev r.chunks);
  }

(* Walk every VMA's vpn range through the page table, reading present
   pages from physical memory and coalescing consecutive pages of equal
   classification into one section. *)
let sections proc mpk =
  let mm = Proc.mm proc in
  let pt = Mm.page_table mm in
  let mem = Machine.mem (Proc.machine proc) in
  let page = Physmem.page_size in
  let out = ref [] in
  let current = ref None in
  let flush () =
    match !current with
    | None -> ()
    | Some r ->
        out := finish r :: !out;
        current := None
  in
  let visit vpn =
    let pte = Page_table.get pt ~vpn in
    if not (Pte.is_present pte) then flush ()
    else begin
      let addr = Page_table.addr_of_vpn vpn in
      let cls = classify mpk ~addr ~pkey:(Pkey.to_int (Pte.pkey pte)) in
      let data = Physmem.read_bytes mem (Pte.frame pte) 0 page in
      match !current with
      | Some r when r.next_vpn = vpn && r.cls = cls ->
          r.chunks <- data :: r.chunks;
          r.pages <- r.pages + 1;
          r.next_vpn <- vpn + 1
      | _ ->
          flush ();
          current := Some { base = addr; cls; next_vpn = vpn + 1; chunks = [ data ]; pages = 1 }
    end
  in
  List.iter
    (fun (v : Vma.vma) ->
      for vpn = v.Vma.start to v.Vma.start + v.Vma.pages - 1 do
        visit vpn
      done;
      (* VMAs are disjoint; never coalesce across a gap. *)
      flush ())
    (Vma.to_list (Mm.vmas mm));
  flush ();
  List.rev !out

let vma_entries proc =
  List.map
    (fun (v : Vma.vma) ->
      {
        Dump.start = Page_table.addr_of_vpn v.Vma.start;
        pages = v.Vma.pages;
        prot = Perm.to_string v.Vma.attrs.Vma.prot;
        pkey = Pkey.to_int v.Vma.attrs.Vma.pkey;
      })
    (Vma.to_list (Mm.vmas (Proc.mm proc)))

let regs proc =
  Array.to_list
    (Array.map
       (fun c ->
         {
           Dump.core = Cpu.id c;
           pkru = Pkru.to_int (Cpu.pkru c);
           cycles = Cpu.cycles c;
         })
       (Machine.cores (Proc.machine proc)))

let capture ~proc ~task ?mpk ?siginfo ~key ~seed ~policy () =
  if Mpk_faultinj.fire fault_point then
    Error "capture failed: injected fault at coredump.capture"
  else
    try
      (* Prefer the crash record snapshotted at kill time: the ring may
         have moved on (or been disturbed by unwinding) since. *)
      let crash =
        match Signal.last_crash () with
        | Some c when c.Signal.task = Task.id task -> Some c
        | _ -> None
      in
      let siginfo =
        match siginfo, crash with
        | Some si, _ | None, Some { Signal.si; _ } -> Some (report_of_siginfo si)
        | None, None -> None
      in
      let blackbox =
        match crash with
        | Some c -> c.Signal.blackbox
        | None -> List.map Event.to_line (Tracer.recent Signal.blackbox_depth)
      in
      let profile = if Prof.on () then Some (Prof.json_of_snapshot (Prof.snapshot ())) else None in
      let raws = sections proc mpk in
      Ok
        (Dump.seal ~key ~seed ~policy ~task:(Task.id task) ?siginfo ~regs:(regs proc)
           ~task_pkru:(Pkru.to_int (Task.pkru task)) ~vmas:(vma_entries proc) ~blackbox
           ?profile raws)
    with e -> Error (Printf.sprintf "capture failed: %s" (Printexc.to_string e))
