(** Deterministic fault injection (modeled on Linux's fault-injection
    framework, CONFIG_FAULT_INJECTION).

    Layers register named {e failure points} ([declare]) and consult them
    on their fallible paths ([fire]). A point does nothing until a test or
    the stress driver arms it with a {!plan}; every plan is evaluated
    against a per-point hit counter or the module's seeded PRNG, so a
    failure schedule is replayable from [(seed, spec)] alone.

    The registry is process-global, mirroring the simulator's single
    simulated machine per test. [reset] returns to the all-disarmed state
    and zeroes counters; drivers must call it around every armed run. *)

type plan =
  | Once of int  (** fire on the [n]-th evaluation (0-based), then never again *)
  | Every of int  (** fire on every [n]-th evaluation ([n >= 1]) *)
  | Prob of float  (** fire independently with this probability (seeded) *)

type stats = {
  name : string;
  armed : bool;
  hits : int;  (** evaluations while armed *)
  fired : int;  (** evaluations that injected the failure *)
}

(** Register a failure point. Idempotent; instrumented modules call this at
    initialization so that [points] enumerates the full surface even
    before any path is exercised. *)
val declare : string -> unit

(** [arm name plan] — activate a point (declaring it if needed) and reset
    its counters. *)
val arm : string -> plan -> unit

val disarm : string -> unit

(** Disarm every point and zero all counters. *)
val reset : unit -> unit

(** Reseed the PRNG behind [Prob] plans. *)
val set_seed : int64 -> unit

(** [fire name] — evaluate the point: true means the caller must inject
    its failure now. Unarmed (or unknown) points never fire; the disarmed
    fast path is a single integer compare, so hot paths may call this
    unconditionally. *)
val fire : string -> bool

(** Every declared point, in registration order. *)
val points : unit -> string list

val stats : unit -> stats list
val stats_of : string -> stats option

(** Parse a failure spec: comma-separated [NAME@N] (once, on the N-th
    hit), [NAME%N] (every N-th hit), [NAME~P] (probability P), or bare
    [NAME] (shorthand for [NAME@0]).
    Returns [Error message] on malformed input or an unknown plan value. *)
val parse_spec : string -> ((string * plan) list, string) result

val plan_to_string : plan -> string

(** Documentation string for the spec grammar (CLI help). *)
val spec_grammar : string

(** {2 Preemption hook}

    The ["sched.preempt"] point is evaluated by [Cpu.charge] — i.e.
    between any two charged events. The hardware layer cannot reach the
    scheduler, so the kernel installs the actual preemption action here;
    it receives the core id that charged. *)

val set_preempt_action : (int -> unit) -> unit

(** [with_preempt_action f k] — run [k] with [f] installed, restoring
    the previous action afterwards (exception-safe). The torture
    scheduler uses this to borrow the single preemption mechanism
    without leaving the hook aimed at a dead scheduler. *)
val with_preempt_action : (int -> unit) -> (unit -> 'a) -> 'a

(** Run the installed preemption action (no-op when none installed). *)
val preempt : int -> unit
