type plan =
  | Once of int
  | Every of int
  | Prob of float

type stats = { name : string; armed : bool; hits : int; fired : int }

type point = {
  name : string;
  mutable plan : plan option;
  mutable hits : int;
  mutable fired : int;
}

let table : (string, point) Hashtbl.t = Hashtbl.create 16
let order : string list ref = ref []  (* registration order, reversed *)
let armed_count = ref 0
let prng = ref (Mpk_util.Prng.create ~seed:0xFA177L)

let find_or_add name =
  match Hashtbl.find_opt table name with
  | Some p -> p
  | None ->
      let p = { name; plan = None; hits = 0; fired = 0 } in
      Hashtbl.replace table name p;
      order := name :: !order;
      p

let declare name = ignore (find_or_add name)

let arm name plan =
  (match plan with
  | Every n when n < 1 -> invalid_arg "Faultinj.arm: Every requires n >= 1"
  | Once n when n < 0 -> invalid_arg "Faultinj.arm: Once requires n >= 0"
  | Prob p when not (p >= 0.0 && p <= 1.0) ->
      invalid_arg "Faultinj.arm: Prob requires p in [0, 1]"
  | Once _ | Every _ | Prob _ -> ());
  let p = find_or_add name in
  if p.plan = None then incr armed_count;
  p.plan <- Some plan;
  p.hits <- 0;
  p.fired <- 0

let disarm name =
  match Hashtbl.find_opt table name with
  | Some p when p.plan <> None ->
      p.plan <- None;
      decr armed_count
  | Some _ | None -> ()

let reset () =
  Hashtbl.iter
    (fun _ p ->
      p.plan <- None;
      p.hits <- 0;
      p.fired <- 0)
    table;
  armed_count := 0

let set_seed seed = prng := Mpk_util.Prng.create ~seed

let fire name =
  if !armed_count = 0 then false
  else
    match Hashtbl.find_opt table name with
    | None | Some { plan = None; _ } -> false
    | Some ({ plan = Some plan; _ } as p) ->
        let n = p.hits in
        p.hits <- n + 1;
        let hit =
          match plan with
          | Once k -> n = k
          | Every k -> (n + 1) mod k = 0
          | Prob pr -> Mpk_util.Prng.bool !prng ~p:pr
        in
        if hit then begin
          p.fired <- p.fired + 1;
          (* Fault firings have no core context of their own; the tracer
             stamps them with the newest cycle time seen anywhere. *)
          if Mpk_trace.Tracer.on () then
            Mpk_trace.Tracer.emit_floating
              (Mpk_trace.Event.Fault_point_fired { point = name })
        end;
        hit

let points () = List.rev !order

let stats_of name =
  Option.map
    (fun p -> { name = p.name; armed = p.plan <> None; hits = p.hits; fired = p.fired })
    (Hashtbl.find_opt table name)

let stats () = List.filter_map stats_of (points ())

let plan_to_string = function
  | Once n -> Printf.sprintf "@%d" n
  | Every n -> Printf.sprintf "%%%d" n
  | Prob p -> Printf.sprintf "~%g" p

let spec_grammar =
  "comma-separated failure points: NAME (fire on first hit), NAME@N (fire once on the \
   N-th hit, 0-based), NAME%N (fire every N-th hit), NAME~P (fire with probability P)"

let parse_one s =
  let split c =
    match String.index_opt s c with
    | Some i -> Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> None
  in
  let with_name name plan =
    if name = "" then Error (Printf.sprintf "empty point name in %S" s) else plan name
  in
  match split '@' with
  | Some (name, n) ->
      with_name name (fun name ->
          match int_of_string_opt n with
          | Some n when n >= 0 -> Ok (name, Once n)
          | Some _ | None -> Error (Printf.sprintf "bad hit index in %S" s))
  | None -> (
      match split '%' with
      | Some (name, n) ->
          with_name name (fun name ->
              match int_of_string_opt n with
              | Some n when n >= 1 -> Ok (name, Every n)
              | Some _ | None -> Error (Printf.sprintf "bad period in %S" s))
      | None -> (
          match split '~' with
          | Some (name, p) ->
              with_name name (fun name ->
                  match float_of_string_opt p with
                  | Some p when p >= 0.0 && p <= 1.0 -> Ok (name, Prob p)
                  | Some _ | None -> Error (Printf.sprintf "bad probability in %S" s))
          | None -> with_name s (fun name -> Ok (name, Once 0))))

let parse_spec spec =
  let items =
    String.split_on_char ',' spec
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if items = [] then Error "empty failure spec"
  else
    List.fold_left
      (fun acc item ->
        match acc, parse_one item with
        | Error _, _ -> acc
        | _, Error e -> Error e
        | Ok l, Ok kv -> Ok (kv :: l))
      (Ok []) items
    |> Result.map List.rev

(* --- preemption hook --- *)

let preempt_action : (int -> unit) ref = ref (fun _ -> ())
let set_preempt_action f = preempt_action := f
let preempt core_id = !preempt_action core_id

(* Scoped override: the torture scheduler routes the one preemption
   mechanism (this point, fired from Cpu.charge) into its own fiber
   switch, then must hand the previous action back — [set_preempt_action]
   alone would leave the hook aimed at a dead scheduler. *)
let with_preempt_action f k =
  let saved = !preempt_action in
  preempt_action := f;
  Fun.protect ~finally:(fun () -> preempt_action := saved) k
