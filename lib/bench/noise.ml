type direction = Lower_better | Higher_better

let direction_to_string = function
  | Lower_better -> "lower_better"
  | Higher_better -> "higher_better"

let direction_of_string = function
  | "lower_better" -> Ok Lower_better
  | "higher_better" -> Ok Higher_better
  | s -> Error (Printf.sprintf "unknown metric direction %S" s)

type stats = {
  mean : float;
  stddev : float;
  ci95 : float;
  minimum : float;
  maximum : float;
  samples : float list;
}

let of_samples samples =
  match samples with
  | [] -> Error "no samples"
  | _ when List.exists (fun v -> not (Float.is_finite v)) samples ->
      Error "non-finite sample"
  | _ ->
      let acc = Mpk_util.Stats.create () in
      List.iter (Mpk_util.Stats.add acc) samples;
      let n = float_of_int (Mpk_util.Stats.count acc) in
      let stddev = Mpk_util.Stats.stddev acc in
      Ok
        {
          mean = Mpk_util.Stats.mean acc;
          stddev;
          ci95 = 1.96 *. stddev /. sqrt n;
          minimum = Mpk_util.Stats.minimum acc;
          maximum = Mpk_util.Stats.maximum acc;
          samples;
        }

type verdict = Improved | Unchanged | Regressed

let verdict_to_string = function
  | Improved -> "improved"
  | Unchanged -> "unchanged"
  | Regressed -> "regressed"

let threshold s ~sigma ~rel_floor =
  Float.max (rel_floor *. Float.abs s.mean) (sigma *. s.stddev)

let classify direction ~baseline ~fresh ~sigma ~rel_floor =
  let t = threshold baseline ~sigma ~rel_floor in
  let delta = fresh -. baseline.mean in
  (* [harmful] is the delta measured in the harmful direction, so one
     comparison serves both metric polarities. *)
  let harmful = match direction with Lower_better -> delta | Higher_better -> -.delta in
  let verdict =
    if harmful > t then Regressed else if harmful < -.t then Improved else Unchanged
  in
  verdict, t
