(** Per-metric noise model and threshold classification for the perf
    regression gate.

    Every benchmark metric is measured over N trials with varied
    workload seeds; the committed baseline stores the resulting sample
    set, so it carries its own noise model. A fresh value is compared
    against the baseline with a two-part threshold:

    {ul
    {- an absolute floor, [rel_floor * |mean|], so deterministic metrics
       (stddev 0 — the simulator is exact for a fixed seed) don't trip
       on sub-percent arithmetic drift;}
    {- a sigma multiple, [sigma * stddev], which widens the band for
       genuinely noisy metrics in proportion to their measured spread.}}

    The applied threshold is the max of the two. *)

type direction =
  | Lower_better  (** latencies, cycle counts *)
  | Higher_better  (** throughputs, speedup ratios *)

val direction_to_string : direction -> string
val direction_of_string : string -> (direction, string) result

type stats = {
  mean : float;
  stddev : float;  (** sample (Bessel-corrected); 0 for a single trial *)
  ci95 : float;  (** half-width of the 95% CI of the mean *)
  minimum : float;
  maximum : float;
  samples : float list;  (** per-trial values, in trial order *)
}

val of_samples : float list -> (stats, string) result
(** Errors on an empty list or any non-finite sample. *)

type verdict = Improved | Unchanged | Regressed

val verdict_to_string : verdict -> string

val threshold : stats -> sigma:float -> rel_floor:float -> float

val classify :
  direction ->
  baseline:stats ->
  fresh:float ->
  sigma:float ->
  rel_floor:float ->
  verdict * float
(** Verdict plus the threshold that was applied: a delta beyond the
    threshold in the harmful direction is [Regressed], beyond it the
    helpful way is [Improved], inside the band is [Unchanged]. *)
