module J = Mpk_trace.Json

type metric_verdict = {
  v_name : string;
  v_direction : Noise.direction;
  v_baseline : Noise.stats;
  v_fresh : float;
  v_delta : float;
  v_threshold : float;
  v_verdict : Noise.verdict;
}

type diff = {
  d_id : string;
  d_sigma : float;
  d_rel_floor : float;
  d_verdicts : metric_verdict list;
  d_missing : string list;
  d_tree : Tree.delta list;
  d_regressed : bool;
}

let diff ~(baseline : Runner.report) ~(fresh : Runner.report) ~sigma ~rel_floor =
  let fresh_mean name =
    List.find_opt (fun m -> m.Runner.ms_name = name) fresh.Runner.r_metrics
    |> Option.map (fun m -> m.Runner.ms_stats.Noise.mean)
  in
  let verdicts, baseline_only =
    List.fold_left
      (fun (vs, missing) (bm : Runner.metric_stats) ->
        match fresh_mean bm.Runner.ms_name with
        | None -> vs, ("baseline-only:" ^ bm.Runner.ms_name) :: missing
        | Some f ->
            let verdict, threshold =
              Noise.classify bm.Runner.ms_direction ~baseline:bm.Runner.ms_stats
                ~fresh:f ~sigma ~rel_floor
            in
            ( {
                v_name = bm.Runner.ms_name;
                v_direction = bm.Runner.ms_direction;
                v_baseline = bm.Runner.ms_stats;
                v_fresh = f;
                v_delta = f -. bm.Runner.ms_stats.Noise.mean;
                v_threshold = threshold;
                v_verdict = verdict;
              }
              :: vs,
              missing ))
      ([], []) baseline.Runner.r_metrics
  in
  let fresh_only =
    List.filter_map
      (fun (fm : Runner.metric_stats) ->
        if
          List.exists
            (fun (bm : Runner.metric_stats) -> bm.Runner.ms_name = fm.Runner.ms_name)
            baseline.Runner.r_metrics
        then None
        else Some ("fresh-only:" ^ fm.Runner.ms_name))
      fresh.Runner.r_metrics
  in
  let missing = List.rev baseline_only @ fresh_only in
  let verdicts = List.rev verdicts in
  let tree = Tree.diff ~base:baseline.Runner.r_profile ~cur:fresh.Runner.r_profile in
  {
    d_id = baseline.Runner.r_id;
    d_sigma = sigma;
    d_rel_floor = rel_floor;
    d_verdicts = verdicts;
    d_missing = missing;
    d_tree = tree;
    d_regressed =
      missing <> []
      || (not fresh.Runner.r_attribution_exact)
      || List.exists (fun v -> v.v_verdict = Noise.Regressed) verdicts;
  }

(* Attribution shown for a regression: frames whose self cycles grew by
   more than noise-floor-sized dust. *)
let hot_frames d = Tree.self_regressions ~min_cycles:0.5 d.d_tree

let render d =
  let cy = Mpk_util.Table.float_cell in
  let rows =
    List.map
      (fun v ->
        let s = v.v_baseline in
        [
          v.v_name;
          (match v.v_direction with
          | Noise.Lower_better -> "lower"
          | Noise.Higher_better -> "higher");
          Printf.sprintf "%s ±%s" (cy s.Noise.mean) (cy s.Noise.stddev);
          cy v.v_fresh;
          (let s = cy v.v_delta in
           if v.v_delta >= 0.0 then "+" ^ s else s);
          (match Tree.pct_change ~base:s.Noise.mean ~cur:v.v_fresh with
          | None -> "-"
          | Some p -> Printf.sprintf "%+.2f%%" p);
          cy v.v_threshold;
          Noise.verdict_to_string v.v_verdict;
        ])
      d.d_verdicts
  in
  let table =
    Mpk_util.Table.render
      ~aligns:
        Mpk_util.Table.[ Left; Left; Right; Right; Right; Right; Right; Left ]
      ~header:
        [
          "metric"; "dir"; "baseline"; "fresh"; "delta"; "d%"; "threshold"; "verdict";
        ]
      rows
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "bench diff %s: sigma=%.1f rel_floor=%.2f%%\n" d.d_id d.d_sigma
       (100.0 *. d.d_rel_floor));
  Buffer.add_string buf table;
  Buffer.add_char buf '\n';
  List.iter
    (fun m -> Buffer.add_string buf (Printf.sprintf "metric-set drift: %s\n" m))
    d.d_missing;
  if d.d_regressed then begin
    Buffer.add_string buf "attribution (self-cycle increases, largest first):\n";
    match hot_frames d with
    | [] -> Buffer.add_string buf "  (no frame grew its self cycles)\n"
    | frames ->
        List.iter
          (fun (fr : Tree.delta) ->
            Buffer.add_string buf
              (Printf.sprintf "  %-52s +%.1f cycles (calls %+d)\n"
                 (Tree.path_string fr)
                 (fr.Tree.cur_self -. fr.Tree.base_self)
                 (fr.Tree.cur_calls - fr.Tree.base_calls)))
          frames
  end;
  Buffer.add_string buf
    (Printf.sprintf "%s: %s\n" d.d_id
       (if d.d_regressed then "REGRESSED" else "ok"));
  Buffer.contents buf

let attribution_json d =
  J.List
    (List.map
       (fun (fr : Tree.delta) ->
         J.Obj
           [
             "path", J.String (Tree.path_string fr);
             "self_cycle_delta", J.Float (fr.Tree.cur_self -. fr.Tree.base_self);
             "call_delta", J.Int (fr.Tree.cur_calls - fr.Tree.base_calls);
           ])
       (hot_frames d))

let to_json d =
  J.Obj
    [
      "experiment", J.String d.d_id;
      ( "verdicts",
        J.List
          (List.map
             (fun v ->
               J.Obj
                 [
                   "name", J.String v.v_name;
                   "direction", J.String (Noise.direction_to_string v.v_direction);
                   "baseline_mean", J.Float v.v_baseline.Noise.mean;
                   "baseline_stddev", J.Float v.v_baseline.Noise.stddev;
                   "fresh", J.Float v.v_fresh;
                   "delta", J.Float v.v_delta;
                   "threshold", J.Float v.v_threshold;
                   "verdict", J.String (Noise.verdict_to_string v.v_verdict);
                 ])
             d.d_verdicts) );
      "metric_set_drift", J.List (List.map (fun s -> J.String s) d.d_missing);
      "attribution", attribution_json d;
      "regressed", J.Bool d.d_regressed;
    ]
