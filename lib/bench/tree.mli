(** Differential cycle attribution: align two {!Mpk_trace.Prof} trees by
    label path and report per-node deltas, so a regression names the
    exact frame (e.g. [mpk_mprotect/sys_pkey_sync/ipi_receive]) rather
    than a topline number.

    Alignment rules:
    {ul
    {- children of aligned parents pair by label ([Matched]);}
    {- an unpaired baseline/current pair under the same parent whose
       self cycles, total cycles and call counts all agree is treated as
       a rename ([Renamed]) — label churn, not a perf change — and its
       subtrees keep diffing;}
    {- anything else unpaired is [Added] (current only) or [Removed]
       (baseline only), reported as one row whose totals cover the whole
       subtree — never silently dropped.}} *)

type status =
  | Matched
  | Added  (** present only in the current tree *)
  | Removed  (** present only in the baseline tree *)
  | Renamed of string  (** the baseline label this current node replaced *)

type delta = {
  path : string list;
      (** path from the root, current-side labels (baseline-side for
          [Removed] nodes) *)
  status : status;
  base_self : float;
  cur_self : float;
  base_total : float;
  cur_total : float;
  base_calls : int;
  cur_calls : int;
}

val diff :
  base:Mpk_trace.Prof.snapshot -> cur:Mpk_trace.Prof.snapshot -> delta list
(** Pre-order over the aligned trees (root row excluded). *)

val pct_change : base:float -> cur:float -> float option
(** Percent change, [None] when [base = 0] — zero-cycle baselines must
    not divide-by-zero into the report. *)

val path_string : delta -> string

val self_regressions : ?limit:int -> min_cycles:float -> delta list -> delta list
(** Nodes whose self cycles grew by more than [min_cycles] ([Added]
    nodes count from zero), largest increase first — the attribution
    the gate prints for a regressed metric. *)

val render : delta list -> string
(** Human table ({!Mpk_util.Table}): per node status, baseline/current
    self and total cycles, call counts, and percent change (["-"] on a
    zero baseline). *)
