module J = Mpk_trace.Json

type kind = Bench | Bench_diff | Profile | Scale_report | Perfetto

let kind_name = function
  | Bench -> "bench report"
  | Bench_diff -> "bench diff report"
  | Profile -> "profile export"
  | Scale_report -> "scale report"
  | Perfetto -> "perfetto trace"

let ( let* ) = Result.bind

let require name shape check j =
  match J.member name j with
  | None -> Error (Printf.sprintf "missing member %S" name)
  | Some v ->
      if check v then Ok v
      else Error (Printf.sprintf "member %S is not %s" name shape)

let is_string = function J.String _ -> true | _ -> false
let is_bool = function J.Bool _ -> true | _ -> false
let is_number j = J.to_number j <> None
let is_obj = function J.Obj _ -> true | _ -> false
let is_list = function J.List _ -> true | _ -> false
let is_nonempty_list = function J.List (_ :: _) -> true | _ -> false

let unit_of r = Result.map (fun (_ : J.t) -> ()) r

let each_of_list name check j =
  match J.member name j with
  | Some (J.List items) ->
      let rec go i = function
        | [] -> Ok ()
        | item :: rest -> (
            match check item with
            | Ok () -> go (i + 1) rest
            | Error e -> Error (Printf.sprintf "%s[%d]: %s" name i e))
      in
      go 0 items
  | Some _ | None -> Error (Printf.sprintf "missing list member %S" name)

(* A bench metric entry: name/direction plus the full noise model. *)
let check_metric j =
  let* _ = require "name" "a string" is_string j in
  let* dir = require "direction" "a string" is_string j in
  let* () =
    match dir with
    | J.String s -> Result.map (fun (_ : Noise.direction) -> ()) (Noise.direction_of_string s)
    | _ -> Ok ()
  in
  let* () =
    List.fold_left
      (fun acc f ->
        let* () = acc in
        unit_of (require f "a number" is_number j))
      (Ok ())
      [ "mean"; "stddev"; "ci95"; "min"; "max" ]
  in
  unit_of (require "samples" "a non-empty list" is_nonempty_list j)

let check_verdict j =
  let* _ = require "name" "a string" is_string j in
  let* v = require "verdict" "a string" is_string j in
  match v with
  | J.String ("improved" | "unchanged" | "regressed") -> Ok ()
  | J.String s -> Error (Printf.sprintf "unknown verdict %S" s)
  | _ -> Ok ()

let validate kind j =
  let result =
    match kind with
    | Perfetto -> unit_of (require "traceEvents" "a non-empty list" is_nonempty_list j)
    | Profile ->
        let* _ = require "experiment" "a string" is_string j in
        let* _ = require "cycles_charged" "a number" is_number j in
        let* _ = require "cycles_attributed" "a number" is_number j in
        let* _ = require "attribution_exact" "a bool" is_bool j in
        let* _ = require "profile" "an object" is_obj j in
        unit_of (require "metrics" "a list" is_list j)
    | Scale_report ->
        let* b = require "bench" "a string" is_string j in
        let* () =
          match b with
          | J.String "scale" -> Ok ()
          | _ -> Error "member \"bench\" is not \"scale\""
        in
        let* _ = require "points" "a non-empty list" is_nonempty_list j in
        let* _ = require "valid" "a bool" is_bool j in
        unit_of (require "metrics" "a list" is_list j)
    | Bench ->
        let* s = require "schema" "a string" is_string j in
        let* () =
          match s with
          | J.String "bench/1" -> Ok ()
          | _ -> Error "member \"schema\" is not \"bench/1\""
        in
        let* _ = require "experiment" "a string" is_string j in
        let* _ = require "trials" "a number" is_number j in
        let* _ = require "seed" "a number" is_number j in
        let* _ = require "smoke" "a bool" is_bool j in
        let* () = each_of_list "metrics" check_metric j in
        let* _ = require "attribution_exact" "a bool" is_bool j in
        let* _ = require "profile" "an object" is_obj j in
        unit_of (require "registry" "a list" is_list j)
    | Bench_diff ->
        let* s = require "schema" "a string" is_string j in
        let* () =
          match s with
          | J.String "bench-diff/1" -> Ok ()
          | _ -> Error "member \"schema\" is not \"bench-diff/1\""
        in
        let* _ = require "sigma" "a number" is_number j in
        let* _ = require "regressed" "a bool" is_bool j in
        let* () =
          each_of_list "results"
            (fun r ->
              let* _ = require "experiment" "a string" is_string r in
              let* () = each_of_list "verdicts" check_verdict r in
              unit_of (require "regressed" "a bool" is_bool r))
            j
        in
        unit_of (require "attribution" "a list" is_list j)
  in
  Result.map_error (fun e -> Printf.sprintf "%s: %s" (kind_name kind) e) result

let write_file path content =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content)

let write_string ~path kind content =
  match J.parse content with
  | Error e -> Error (Printf.sprintf "%s does not re-parse: %s" (kind_name kind) e)
  | Ok j ->
      let* () = validate kind j in
      (match write_file path content with
      | () -> Ok ()
      | exception Sys_error e -> Error e)

let write ~path kind j =
  match J.to_string ~indent:1 j with
  | content -> write_string ~path kind content
  | exception Invalid_argument e ->
      Error (Printf.sprintf "%s does not serialize: %s" (kind_name kind) e)

let read ~path kind =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error e
  | content -> (
      match J.parse content with
      | Error e -> Error (Printf.sprintf "%s: %s: %s" path (kind_name kind) e)
      | Ok j ->
          let* () =
            Result.map_error (fun e -> Printf.sprintf "%s: %s" path e) (validate kind j)
          in
          Ok j)
