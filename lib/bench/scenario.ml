open Mpk_experiments

type metric = { name : string; value : float; direction : Noise.direction }

let ids = [ "fig8"; "table1"; "scale"; "fig14" ]
let known id = List.mem id ids

let m name direction value = { name; value; direction }

(* Distinct odd multipliers decorrelate the per-trial sub-seeds each
   scenario derives from the one trial seed. *)
let mix seed k base = Int64.of_int (base + (seed * k))

(* A begin/end pair on a group that is already mapped and stays mapped —
   the mpk_begin hot path the ROADMAP names as the first optimization
   target, measured directly so `bench diff` sees it move. *)
let begin_end_hit ~reps =
  let env = Env.make ~threads:1 () in
  let task = Env.main env in
  let mpk = Libmpk.init ~evict_rate:1.0 ~seed:0x5EEDL env.Env.proc task in
  ignore
    (Libmpk.mpk_mmap mpk task ~vkey:1 ~len:Mpk_hw.Physmem.page_size
       ~prot:Mpk_hw.Perm.rw);
  (* warm: the first begin maps the group; afterwards every pair hits *)
  Libmpk.mpk_begin mpk task ~vkey:1 ~prot:Mpk_hw.Perm.rw;
  Libmpk.mpk_end mpk task ~vkey:1;
  Env.mean_cycles ~reps task (fun _ ->
      Libmpk.mpk_begin mpk task ~vkey:1 ~prot:Mpk_hw.Perm.rw;
      Libmpk.mpk_end mpk task ~vkey:1)

let fig8 ~seed ~smoke =
  let mpk_seed = mix seed 7919 0x816 in
  let wl_seed = mix seed 104729 0x88 in
  let cell ~hit_rate ~evict_rate ~threads =
    (Exp_fig8.run_cell ~mpk_seed ~wl_seed ~hit_rate ~evict_rate ~threads ())
      .Exp_fig8.cycles
  in
  let hit = cell ~hit_rate:100 ~evict_rate:100 ~threads:1 in
  let reference = Exp_fig8.mprotect_reference ~threads:1 in
  let base =
    [
      m "fig8.hit_cycles" Noise.Lower_better hit;
      m "fig8.miss_cycles" Noise.Lower_better (cell ~hit_rate:0 ~evict_rate:100 ~threads:1);
      (* the genuinely noisy cell: the 50/50 hit/miss mix varies with the
         workload seed, so this metric carries a real stddev *)
      m "fig8.mixed50_cycles" Noise.Lower_better
        (cell ~hit_rate:50 ~evict_rate:100 ~threads:1);
      m "fig8.mprotect_ref_cycles" Noise.Lower_better reference;
      m "fig8.hit_speedup_vs_mprotect" Noise.Higher_better (reference /. hit);
      m "fig8.begin_end_hit_cycles" Noise.Lower_better (begin_end_hit ~reps:200);
    ]
  in
  if smoke then base
  else
    base
    @ [
        m "fig8.hit_cycles_t4" Noise.Lower_better
          (cell ~hit_rate:100 ~evict_rate:100 ~threads:4);
      ]

let sanitize name =
  let b = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      match Char.lowercase_ascii c with
      | ('a' .. 'z' | '0' .. '9') as c -> Buffer.add_char b c
      | _ ->
          if Buffer.length b > 0 && Buffer.nth b (Buffer.length b - 1) <> '_' then
            Buffer.add_char b '_')
    name;
  let s = Buffer.contents b in
  if String.length s > 0 && s.[String.length s - 1] = '_' then
    String.sub s 0 (String.length s - 1)
  else s

let table1 ~seed:_ ~smoke:_ =
  List.map
    (fun (r : Exp_table1.row) ->
      m ("table1." ^ sanitize r.Exp_table1.name ^ "_cycles") Noise.Lower_better
        r.Exp_table1.cycles)
    (Exp_table1.rows ())

let fig14 ~seed ~smoke =
  let slab_mib = if smoke then 64 else 1024 in
  let wl_seed = mix seed 6151 0xFEED in
  let pts = Exp_fig14.points ~slab_mib ~seed:wl_seed ~conn_rates:[ 1000 ] () in
  let mb mode =
    match
      List.find_opt (fun (p : Exp_fig14.point) -> p.Exp_fig14.mode = mode) pts
    with
    | Some p -> p.Exp_fig14.data_mb_s
    | None -> failwith "fig14: mode missing from points"
  in
  let sync = mb Mpk_kvstore.Server.Sync in
  let mprotect = mb Mpk_kvstore.Server.Mprotect_sys in
  [
    m "fig14.baseline_mb_s" Noise.Higher_better (mb Mpk_kvstore.Server.Baseline);
    m "fig14.domain_mb_s" Noise.Higher_better (mb Mpk_kvstore.Server.Domain);
    m "fig14.sync_mb_s" Noise.Higher_better sync;
    m "fig14.mprotect_mb_s" Noise.Higher_better mprotect;
    m "fig14.sync_vs_mprotect" Noise.Higher_better (sync /. Float.max 0.001 mprotect);
  ]

let scale ~seed ~smoke =
  let cores = if smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  let report =
    Mpk_kvstore.Scale.run ~mode:Mpk_kvstore.Server.Sync ~cores ~smoke
      ~seed:(mix seed 389 0xC0FE) ()
  in
  (match Mpk_kvstore.Scale.problems report with
  | [] -> ()
  | problems -> failwith ("scale: " ^ String.concat "; " problems));
  let per_point =
    List.concat_map
      (fun (p : Mpk_kvstore.Scale.point) ->
        let c = p.Mpk_kvstore.Scale.cores in
        let b = p.Mpk_kvstore.Scale.batched in
        [
          m (Printf.sprintf "scale.rps_c%d" c) Noise.Higher_better
            b.Mpk_kvstore.Loadgen.s_throughput_rps;
          m (Printf.sprintf "scale.p99_c%d" c) Noise.Lower_better
            b.Mpk_kvstore.Loadgen.p99_cycles;
        ])
      report.Mpk_kvstore.Scale.points
  in
  let ipis =
    List.fold_left
      (fun acc (p : Mpk_kvstore.Scale.point) ->
        acc + p.Mpk_kvstore.Scale.ipi_events_batched)
      0 report.Mpk_kvstore.Scale.points
  in
  per_point @ [ m "scale.ipi_events_batched" Noise.Lower_better (float_of_int ipis) ]

let run ~id ~seed ~smoke =
  match id with
  | "fig8" -> fig8 ~seed ~smoke
  | "table1" -> table1 ~seed ~smoke
  | "scale" -> scale ~seed ~smoke
  | "fig14" -> fig14 ~seed ~smoke
  | _ -> invalid_arg (Printf.sprintf "unknown bench id %S" id)
