(** The benchmark scenarios behind `mpkctl bench`: one per committed
    baseline id, each a seed-parameterized re-run of (a slice of) the
    corresponding paper experiment that returns named metrics.

    The simulator is fully deterministic for a fixed seed, so the noise
    a baseline carries is real workload variation: trial [t] runs at
    [seed + t], which re-seeds the hit/miss choice sequence (fig8), the
    zipfian key stream (scale), and the get/set request mix (fig14).
    table1 measures fixed instruction sequences and is deterministic by
    construction — its stddev is legitimately zero, which is exactly
    what the gate's absolute floor exists for. *)

type metric = { name : string; value : float; direction : Noise.direction }

val ids : string list
(** [["fig8"; "table1"; "scale"; "fig14"]]. *)

val known : string -> bool

val run : id:string -> seed:int -> smoke:bool -> metric list
(** Deterministic for a given [(id, seed, smoke)]. Raises
    [Invalid_argument] on an unknown id; any internal validation
    failure (e.g. scale auditor violations) raises [Failure]. *)
