(** The noise-aware diff behind `mpkctl bench diff`: per-metric verdicts
    against a committed baseline ({!Noise.classify}), plus a
    differential attribution tree ({!Tree.diff}) so a regressed metric
    comes with the frames whose self cycles grew. *)

type metric_verdict = {
  v_name : string;
  v_direction : Noise.direction;
  v_baseline : Noise.stats;
  v_fresh : float;  (** the fresh run's mean for this metric *)
  v_delta : float;  (** [v_fresh - v_baseline.mean] *)
  v_threshold : float;  (** the applied threshold *)
  v_verdict : Noise.verdict;
}

type diff = {
  d_id : string;
  d_sigma : float;
  d_rel_floor : float;
  d_verdicts : metric_verdict list;
  d_missing : string list;
      (** metric-set drift, each entry prefixed with [baseline-only:] or
          [fresh-only:] — drift regresses the gate rather than slipping
          a metric out of coverage *)
  d_tree : Tree.delta list;  (** baseline profile vs fresh profile *)
  d_regressed : bool;
}

val diff :
  baseline:Runner.report ->
  fresh:Runner.report ->
  sigma:float ->
  rel_floor:float ->
  diff

val hot_frames : diff -> Tree.delta list
(** The frames blamed for a regression: self-cycle increases above a
    small dust floor, largest first. *)

val render : diff -> string
(** Human output: verdict table ({!Mpk_util.Table}) plus, when anything
    regressed, the top self-cycle increases from the attribution diff. *)

val to_json : diff -> Mpk_trace.Json.t
(** One entry of the [bench-diff/1] report's [results] list. *)

val attribution_json : diff -> Mpk_trace.Json.t
(** The top self-cycle increases as a JSON list (path, cycle delta). *)
