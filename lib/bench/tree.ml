module P = Mpk_trace.Prof

type status = Matched | Added | Removed | Renamed of string

type delta = {
  path : string list;
  status : status;
  base_self : float;
  cur_self : float;
  base_total : float;
  cur_total : float;
  base_calls : int;
  cur_calls : int;
}

(* Relative tolerance for "these two nodes carry identical cycles" in
   rename detection. The simulator is deterministic, so true renames
   agree bit-for-bit; the epsilon only absorbs FP-reassociation slack in
   [total]. *)
let feq a b =
  Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let pair_delta path status (b : P.snapshot) (c : P.snapshot) =
  {
    path;
    status;
    base_self = b.P.self;
    cur_self = c.P.self;
    base_total = b.P.total;
    cur_total = c.P.total;
    base_calls = b.P.calls;
    cur_calls = c.P.calls;
  }

let added_delta path (c : P.snapshot) =
  {
    path;
    status = Added;
    base_self = 0.0;
    cur_self = c.P.self;
    base_total = 0.0;
    cur_total = c.P.total;
    base_calls = 0;
    cur_calls = c.P.calls;
  }

let removed_delta path (b : P.snapshot) =
  {
    path;
    status = Removed;
    base_self = b.P.self;
    cur_self = 0.0;
    base_total = b.P.total;
    cur_total = 0.0;
    base_calls = b.P.calls;
    cur_calls = 0;
  }

let diff ~base ~cur =
  let acc = ref [] in
  let emit d = acc := d :: !acc in
  (* Diff the child lists of an aligned pair; [path] addresses the pair. *)
  let rec children path (b : P.snapshot) (c : P.snapshot) =
    let b_matched =
      List.filter
        (fun (bc : P.snapshot) ->
          List.exists (fun (cc : P.snapshot) -> cc.P.label = bc.P.label) c.P.children)
        b.P.children
    in
    let b_unmatched =
      List.filter (fun (bc : P.snapshot) -> not (List.memq bc b_matched)) b.P.children
    in
    (* Renames: pair leftovers whose cycle/call signature is identical.
       Greedy first-match — signatures are exact, so ambiguity would
       need two identical siblings, in which case either pairing reads
       the same. *)
    let renamed = ref [] in
    let claimed = ref [] in
    List.iter
      (fun (bc : P.snapshot) ->
        match
          List.find_opt
            (fun (cc : P.snapshot) ->
              (not (List.memq cc !claimed))
              && (not
                    (List.exists
                       (fun (bc' : P.snapshot) -> bc'.P.label = cc.P.label)
                       b.P.children))
              && bc.P.calls = cc.P.calls && feq bc.P.self cc.P.self
              && feq bc.P.total cc.P.total)
            c.P.children
        with
        | Some cc ->
            claimed := cc :: !claimed;
            renamed := (bc, cc) :: !renamed
        | None -> ())
      b_unmatched;
    let renamed = List.rev !renamed in
    (* Walk current children in their (descending-total) order. *)
    List.iter
      (fun (cc : P.snapshot) ->
        let cpath = path @ [ cc.P.label ] in
        match
          List.find_opt (fun (bc : P.snapshot) -> bc.P.label = cc.P.label) b.P.children
        with
        | Some bc ->
            emit (pair_delta cpath Matched bc cc);
            children cpath bc cc
        | None -> (
            match List.find_opt (fun (_, cc') -> cc' == cc) renamed with
            | Some (bc, _) ->
                emit (pair_delta cpath (Renamed bc.P.label) bc cc);
                children cpath bc cc
            | None -> emit (added_delta cpath cc)))
      c.P.children;
    (* Baseline children with no current counterpart at all. *)
    List.iter
      (fun (bc : P.snapshot) ->
        if
          (not (List.memq bc b_matched))
          && not (List.exists (fun (bc', _) -> bc' == bc) renamed)
        then emit (removed_delta (path @ [ bc.P.label ]) bc))
      b.P.children
  in
  children [] base cur;
  List.rev !acc

let pct_change ~base ~cur = if base = 0.0 then None else Some ((cur -. base) /. base *. 100.0)

let path_string d = String.concat "/" d.path

let self_regressions ?(limit = 8) ~min_cycles deltas =
  List.filter
    (fun d ->
      (match d.status with Removed -> false | Matched | Added | Renamed _ -> true)
      && d.cur_self -. d.base_self > min_cycles)
    deltas
  |> List.stable_sort (fun a b ->
         Float.compare (b.cur_self -. b.base_self) (a.cur_self -. a.base_self))
  |> List.filteri (fun i _ -> i < limit)

let status_string = function
  | Matched -> ""
  | Added -> "+added"
  | Removed -> "-removed"
  | Renamed old -> Printf.sprintf "~renamed:%s" old

let render deltas =
  let cy = Mpk_util.Table.float_cell in
  let pct d =
    match pct_change ~base:d.base_total ~cur:d.cur_total with
    | None -> "-"
    | Some p -> Printf.sprintf "%+.1f%%" p
  in
  let rows =
    List.map
      (fun d ->
        [
          String.make (2 * (List.length d.path - 1)) ' '
          ^ List.nth d.path (List.length d.path - 1);
          status_string d.status;
          cy d.base_total;
          cy d.cur_total;
          cy (d.cur_total -. d.base_total);
          pct d;
          cy (d.cur_self -. d.base_self);
          Printf.sprintf "%+d" (d.cur_calls - d.base_calls);
        ])
      deltas
  in
  Mpk_util.Table.render
    ~aligns:
      Mpk_util.Table.[ Left; Left; Right; Right; Right; Right; Right; Right ]
    ~header:
      [
        "span/label"; "status"; "base total"; "cur total"; "d total"; "d%"; "d self";
        "d calls";
      ]
    rows
