(** Multi-trial benchmark runner: re-run a scenario across varied seeds
    under the cycle-attribution profiler, aggregate each metric into a
    noise model ({!Noise.stats}), and keep the trial-0 attribution tree
    and metrics-registry export so the whole observability surface lands
    in one artifact. *)

type metric_stats = {
  ms_name : string;
  ms_direction : Noise.direction;
  ms_stats : Noise.stats;
}

type report = {
  r_id : string;
  r_trials : int;
  r_seed : int;  (** base seed; trial [t] ran at [r_seed + t] *)
  r_smoke : bool;
  r_metrics : metric_stats list;  (** scenario order *)
  r_attribution_exact : bool;
      (** every trial's attributed total matched the machine's cycle
          counter bit-for-bit *)
  r_profile : Mpk_trace.Prof.snapshot;  (** trial 0 *)
  r_registry : Mpk_trace.Json.t;  (** trial-0 {!Mpk_trace.Metrics} export *)
}

val run :
  id:string -> trials:int -> seed:int -> smoke:bool -> (report, string) result
(** Errors on an unknown id, [trials < 1], a scenario failure, a
    non-finite metric, or trials disagreeing on the metric set. *)

val to_json : report -> Mpk_trace.Json.t
(** The [bench/1] schema ({!Io.Bench}). *)

val of_json : Mpk_trace.Json.t -> (report, string) result
(** Reload a committed baseline. Stats are recomputed from the stored
    samples, so hand-edited summary numbers cannot skew the gate. *)
