(** One entry point for every JSON artifact `mpkctl` writes or reads
    back: serialize with the strict printer, re-parse the exact bytes,
    schema-check the result, and only then touch the filesystem — so a
    malformed export can never land on disk, and a stale or truncated
    baseline can never silently gate a build. *)

type kind =
  | Bench  (** [BENCH_<id>.json] — multi-trial report with noise model *)
  | Bench_diff  (** [BENCH_diff.json] — `bench diff` verdict report *)
  | Profile  (** [PROFILE_<id>.json] — single-run attribution export *)
  | Scale_report  (** [SCALE_report.json] — `mpkctl scale` output *)
  | Perfetto  (** [TRACE_*.json] — Chrome trace_event stream *)

val kind_name : kind -> string

val validate : kind -> Mpk_trace.Json.t -> (unit, string) result
(** Structural schema check: required members present with the right
    shapes (non-empty where emptiness would make the artifact useless). *)

val write : path:string -> kind -> Mpk_trace.Json.t -> (unit, string) result
(** Serialize (indent 1), strict re-parse, {!validate}, then write. *)

val write_string : path:string -> kind -> string -> (unit, string) result
(** Same contract for content produced by another serializer (the
    Perfetto exporter renders its own string). *)

val read : path:string -> kind -> (Mpk_trace.Json.t, string) result
(** Read a file back through parse + {!validate}. *)
