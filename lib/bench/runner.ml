module J = Mpk_trace.Json

type metric_stats = {
  ms_name : string;
  ms_direction : Noise.direction;
  ms_stats : Noise.stats;
}

type report = {
  r_id : string;
  r_trials : int;
  r_seed : int;
  r_smoke : bool;
  r_metrics : metric_stats list;
  r_attribution_exact : bool;
  r_profile : Mpk_trace.Prof.snapshot;
  r_registry : J.t;
}

(* One trial under a clean observability slate: metrics registry, tracer,
   profiler and the global cycle accumulator all reset together, so the
   attribution exactness contract (Prof.total_recorded = Cpu.total_charged,
   bit-for-bit) holds per trial. *)
let trial ~id ~seed ~smoke ~keep_snapshot =
  Mpk_trace.Metrics.reset ();
  Mpk_trace.Tracer.disable ();
  Mpk_trace.Tracer.clear ();
  Mpk_trace.Prof.reset ();
  Mpk_trace.Prof.enable ();
  Mpk_hw.Cpu.reset_total_charged ();
  let metrics = Scenario.run ~id ~seed ~smoke in
  Mpk_trace.Prof.disable ();
  let exact =
    Float.equal (Mpk_trace.Prof.total_recorded ()) (Mpk_hw.Cpu.total_charged ())
  in
  let extras =
    if keep_snapshot then
      Some (Mpk_trace.Prof.snapshot (), Mpk_trace.Metrics.export_json ())
    else None
  in
  metrics, exact, extras

let run ~id ~trials ~seed ~smoke =
  if not (Scenario.known id) then Error (Printf.sprintf "unknown bench id %S" id)
  else if trials < 1 then Error "trials must be >= 1"
  else
    match
      let names = ref [] in
      let directions = ref [] in
      let samples : (string, float list ref) Hashtbl.t = Hashtbl.create 16 in
      let exact = ref true in
      let snapshot = ref None in
      for t = 0 to trials - 1 do
        let metrics, trial_exact, extras =
          trial ~id ~seed:(seed + t) ~smoke ~keep_snapshot:(t = 0)
        in
        if not trial_exact then exact := false;
        (match extras with Some e -> snapshot := Some e | None -> ());
        let trial_names = List.map (fun m -> m.Scenario.name) metrics in
        if t = 0 then begin
          names := trial_names;
          directions :=
            List.map (fun m -> m.Scenario.name, m.Scenario.direction) metrics
        end
        else if trial_names <> !names then
          failwith
            (Printf.sprintf "trial %d changed the metric set for %s" t id);
        List.iter
          (fun (m : Scenario.metric) ->
            if not (Float.is_finite m.Scenario.value) then
              failwith (Printf.sprintf "metric %s is not finite" m.Scenario.name);
            match Hashtbl.find_opt samples m.Scenario.name with
            | Some l -> l := m.Scenario.value :: !l
            | None -> Hashtbl.replace samples m.Scenario.name (ref [ m.Scenario.value ]))
          metrics
      done;
      let profile, registry =
        match !snapshot with
        | Some (p, r) -> p, r
        | None -> assert false (* trials >= 1 always keeps trial 0 *)
      in
      let metrics =
        List.map
          (fun name ->
            let values = List.rev !(Hashtbl.find samples name) in
            match Noise.of_samples values with
            | Ok s ->
                {
                  ms_name = name;
                  ms_direction = List.assoc name !directions;
                  ms_stats = s;
                }
            | Error e -> failwith (Printf.sprintf "metric %s: %s" name e))
          !names
      in
      {
        r_id = id;
        r_trials = trials;
        r_seed = seed;
        r_smoke = smoke;
        r_metrics = metrics;
        r_attribution_exact = !exact;
        r_profile = profile;
        r_registry = registry;
      }
    with
    | exception Failure msg -> Error msg
    | exception Invalid_argument msg -> Error msg
    | report -> Ok report

let to_json r =
  J.Obj
    [
      "schema", J.String "bench/1";
      "experiment", J.String r.r_id;
      "trials", J.Int r.r_trials;
      "seed", J.Int r.r_seed;
      "smoke", J.Bool r.r_smoke;
      ( "metrics",
        J.List
          (List.map
             (fun ms ->
               let s = ms.ms_stats in
               J.Obj
                 [
                   "name", J.String ms.ms_name;
                   "direction", J.String (Noise.direction_to_string ms.ms_direction);
                   "mean", J.Float s.Noise.mean;
                   "stddev", J.Float s.Noise.stddev;
                   "ci95", J.Float s.Noise.ci95;
                   "min", J.Float s.Noise.minimum;
                   "max", J.Float s.Noise.maximum;
                   "samples", J.List (List.map (fun v -> J.Float v) s.Noise.samples);
                 ])
             r.r_metrics) );
      "attribution_exact", J.Bool r.r_attribution_exact;
      "profile", Mpk_trace.Prof.json_of_snapshot r.r_profile;
      "registry", r.r_registry;
    ]

let ( let* ) = Result.bind

let member_err name j =
  match J.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing member %S" name)

let number_err name j =
  match Option.bind (J.member name j) J.to_number with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing number %S" name)

let string_err name j =
  match Option.bind (J.member name j) J.to_string_opt with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing string %S" name)

let bool_err name j =
  match J.member name j with
  | Some (J.Bool b) -> Ok b
  | Some _ | None -> Error (Printf.sprintf "missing bool %S" name)

let of_json j =
  let* id = string_err "experiment" j in
  let* trials = number_err "trials" j in
  let* seed = number_err "seed" j in
  let* smoke = bool_err "smoke" j in
  let* exact = bool_err "attribution_exact" j in
  let* metrics_json =
    match Option.bind (J.member "metrics" j) J.to_list with
    | Some l -> Ok l
    | None -> Error "missing list \"metrics\""
  in
  let* metrics =
    List.fold_left
      (fun acc mj ->
        let* acc = acc in
        let* name = string_err "name" mj in
        let* dir_s = string_err "direction" mj in
        let* dir = Noise.direction_of_string dir_s in
        let* samples =
          match Option.bind (J.member "samples" mj) J.to_list with
          | Some l ->
              List.fold_left
                (fun acc v ->
                  let* acc = acc in
                  match J.to_number v with
                  | Some f -> Ok (f :: acc)
                  | None -> Error (Printf.sprintf "metric %s: bad sample" name))
                (Ok []) l
              |> Result.map List.rev
          | None -> Error (Printf.sprintf "metric %s: missing samples" name)
        in
        let* stats =
          Result.map_error
            (fun e -> Printf.sprintf "metric %s: %s" name e)
            (Noise.of_samples samples)
        in
        Ok ({ ms_name = name; ms_direction = dir; ms_stats = stats } :: acc))
      (Ok []) metrics_json
    |> Result.map List.rev
  in
  let* profile_json = member_err "profile" j in
  let* profile = Mpk_trace.Prof.snapshot_of_json profile_json in
  let* registry = member_err "registry" j in
  Ok
    {
      r_id = id;
      r_trials = int_of_float trials;
      r_seed = int_of_float seed;
      r_smoke = smoke;
      r_metrics = metrics;
      r_attribution_exact = exact;
      r_profile = profile;
      r_registry = registry;
    }
