(** The JIT code cache: page-granular executable memory in the simulated
    address space, with pluggable W⊕X strategy.

    Permission-switch time (the quantity Fig 9 plots) is accumulated in
    [perm_switch_cycles]: for [Mprotect] it is the mprotect pair around
    each update, for the libmpk strategies the [mpk_begin]/[mpk_end]
    pair, for [Sdcg] the RPC, and zero for [No_wx]. *)

open Mpk_kernel

type t

(** vkey namespaces: pages of key/page caches start here; the key/process
    cache group uses the base key. Exposed so the static-analysis model
    of the JIT lints the same key the engine really uses. *)
val vkey_base : Libmpk.Vkey.t

type entry = { name : string; addr : int; len : int; page_vkey : Libmpk.Vkey.t option }

(** [create strategy proc task ?mpk ()] — [mpk] required for the libmpk
    strategies. [cache_pages] bounds the whole cache (default 64). *)
val create :
  Wx.t -> Proc.t -> Task.t -> ?mpk:Libmpk.t -> ?cache_pages:int -> unit -> t

val strategy : t -> Wx.t

(** [emit t task ~name code] — place [code] (≤ one page) in the cache,
    committing a fresh page when needed, and make it executable per the
    strategy. *)
val emit : t -> Task.t -> name:string -> bytes -> entry

(** [update t task entry code ?during ()] — overwrite an entry's code
    (same length or shorter), opening the strategy's write window.
    [during] runs *inside* the window — the hook the race-attack
    simulation uses. *)
val update : t -> Task.t -> entry -> bytes -> ?during:(unit -> unit) -> unit -> unit

val find : t -> name:string -> entry option

(** Pages currently committed. *)
val pages : t -> int

(** Cycles spent switching permissions so far (caller's view). *)
val perm_switch_cycles : t -> float

val reset_perm_switch_cycles : t -> unit

(** Number of mprotect-family syscalls issued for permission switching. *)
val switch_syscalls : t -> int
