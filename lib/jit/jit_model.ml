(* IR model of the JIT engine's libmpk protocol (paper §6.1, key/page).

   The code cache is one page group, mmapped with max_prot rwx (pages
   carry the exec bit; data rights stay PKRU-gated, so the group starts
   inaccessible). The compile-and-run loop opens a per-thread write
   window with mpk_begin(rw) to emit code, closes it, and only then
   executes — W^X by protocol, not by trap.

   The emitted instruction stream includes libmpk's own inlined domain
   switch: a WRPKRU immediately followed by the ERIM-style check of the
   loaded value. The gadget scan must accept it.

   Planted violations (each behind a flag, for the analyzer's CI run):
   - [`Wx]      a "fast-patch mode" that mpk_mprotects the whole cache
                rwx and keeps executing — the classic W^X break
   - [`Gadget]  an emitted stream whose WRPKRU has no check after it *)

open Mpk_analysis
open Mpk_hw

let cache_vkey = Codecache.vkey_base

(* What the engine normally emits: computation, one trusted domain
   switch (checked WRPKRU), return. *)
let trusted_stream =
  Ir.
    [
      I_op "push rbp";
      I_op "mov rax, pkru_begin";
      I_wrpkru;
      I_cmp_pkru;
      I_br_trusted;
      I_op "add rdx, rcx";
      I_ret;
    ]

(* An unchecked WRPKRU in generated code: jumping here with a chosen eax
   rewrites PKRU — exactly what ERIM's binary scan rejects. *)
let gadget_stream =
  Ir.[ I_op "mov rax, attacker"; I_wrpkru; I_op "jmp rbx"; I_ret ]

let program ?plant () =
  let open Ir in
  let emit code = op (Emit { vkey = cache_vkey; code }) in
  let serve_loop code =
    Loop
      ( "compile-and-run",
        [
          If
            ( "function hot?",
              [
                op (Begin { vkey = cache_vkey; prot = Perm.rw });
                emit code;
                op (End { vkey = cache_vkey });
              ],
              [ label "interpret bytecode" ] );
          op (Exec { vkey = cache_vkey });
        ] )
  in
  let main =
    [ op (Mmap { vkey = cache_vkey; pages = 4; prot = Perm.rwx }) ]
    @ (match plant with
      | Some `Gadget -> [ serve_loop gadget_stream ]
      | Some `Wx | None -> [ serve_loop trusted_stream ])
    @ (match plant with
      | Some `Wx ->
          (* "fast-patch mode": unlock the whole cache for in-place
             patching and keep running out of it *)
          [
            label "enable fast patching";
            op (Mprotect { vkey = cache_vkey; prot = Perm.rwx });
            op (Write { vkey = cache_vkey });
            op (Exec { vkey = cache_vkey });
          ]
      | Some `Gadget | None -> [])
    @ [ op (Free { vkey = cache_vkey }) ]
  in
  Ir.build ~name:"jit" ~main ()
