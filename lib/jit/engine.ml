open Mpk_kernel

type profile = Spidermonkey | Chakracore | V8

let profile_name = function
  | Spidermonkey -> "SpiderMonkey"
  | Chakracore -> "ChakraCore"
  | V8 -> "v8"

let switch_ratio = function Spidermonkey -> 0.3 | Chakracore -> 1.0 | V8 -> 1.0

type func_state = {
  entry : Codecache.entry;
  func : Bytecode.func;
  expected : int;
}

type t = {
  profile : profile;
  cache : Codecache.t;
  proc : Proc.t;
  funcs : (string, func_state) Hashtbl.t;
  prng : Mpk_util.Prng.t;
}

(* The reference result comes from the same interpreter core running
   host-side on the encoded bytes. *)
let eval_host (f : Bytecode.func) = Bytecode.eval_host (Bytecode.compile f)

let create profile strategy proc task ?mpk ?cache_pages () =
  {
    profile;
    cache = Codecache.create strategy proc task ?mpk ?cache_pages ();
    proc;
    funcs = Hashtbl.create 64;
    prng = Mpk_util.Prng.create ~seed:0x217L;
  }

let cache t = t.cache
let profile t = t.profile

let pad_code code pad_to =
  match pad_to with
  | Some n when n > Bytes.length code ->
      let out = Bytes.make n '\000' in
      Bytes.blit code 0 out 0 (Bytes.length code);
      out
  | Some _ | None -> code

let compile t task ~ops ~seed ?pad_to () =
  let func = Bytecode.synth ~seed ~ops in
  let code = pad_code (Bytecode.compile func) pad_to in
  let entry = Codecache.emit t.cache task ~name:func.Bytecode.name code in
  Hashtbl.replace t.funcs func.Bytecode.name { entry; func; expected = eval_host func };
  func.Bytecode.name

let get t name =
  match Hashtbl.find_opt t.funcs name with
  | Some fs -> fs
  | None -> invalid_arg ("Engine: unknown function " ^ name)

let patch t task name =
  let fs = get t name in
  if Mpk_util.Prng.float t.prng <= switch_ratio t.profile then
    (* re-emit the same code in place: a patch event *)
    Codecache.update t.cache task fs.entry (Bytecode.compile fs.func) ()

let run t task name =
  let fs = get t name in
  Bytecode.execute (Proc.mmu t.proc) (Task.core task) ~addr:fs.entry.Codecache.addr
    ~len:fs.entry.Codecache.len

let expected t name = (get t name).expected
