open Mpk_hw
open Mpk_kernel

let page = Physmem.page_size

(* vkey namespaces: pages of key/page caches start here; the key/process
   cache group uses the base key. *)
let vkey_base = 1000

type page_info = {
  addr : int;
  mutable used : int;
  vkey : Libmpk.Vkey.t option;
  mutable sealed : bool;
      (* Mprotect mode: fresh pages are committed rw and sealed rx after
         the first emit — engines don't pay a make-writable call for
         never-executed pages. *)
}

type entry = { name : string; addr : int; len : int; page_vkey : Libmpk.Vkey.t option }

type t = {
  strategy : Wx.t;
  proc : Proc.t;
  mpk : Libmpk.t option;
  cache_pages : int;
  mutable committed : page_info list;  (* newest first *)
  entries : (string, entry) Hashtbl.t;
  group_base : int;  (* key/process: the single group's base *)
  mutable group_used : int;
  mutable next_page_vkey : int;
  mutable switch_cycles : float;
  mutable switch_calls : int;
  (* SDCG: a dedicated emitter process holding the only writable view of
     the cache (shared frames, rw in the emitter's page table, rx in the
     executor's). *)
  emitter : (Proc.t * Task.t * int) option;
}

let create strategy proc task ?mpk ?(cache_pages = 64) () =
  (match strategy, mpk with
  | (Wx.Key_per_page | Wx.Key_per_process), None ->
      invalid_arg "Codecache.create: libmpk strategy requires ~mpk"
  | _ -> ());
  (* Engines reserve the whole cache region once; pages are committed
     from it as code is emitted. Only Key_per_page maps per page (it
     needs one libmpk group per page). *)
  let group_base =
    match strategy, mpk with
    | Wx.Key_per_process, Some mpk ->
        (* One protection key for the whole cache: committed pages get
           rwx page permission; writes are gated per-thread by PKRU. *)
        Libmpk.mpk_mmap mpk task ~vkey:vkey_base ~len:(cache_pages * page) ~prot:Perm.rwx
    | (Wx.No_wx | Wx.Mprotect | Wx.Sdcg), _ ->
        let prot =
          match strategy with
          | Wx.No_wx -> Perm.rwx
          | Wx.Mprotect -> Perm.rw  (* fresh pages writable until sealed *)
          | Wx.Sdcg | Wx.Key_per_page | Wx.Key_per_process -> Perm.rx
        in
        Syscall.mmap proc task ~len:(cache_pages * page) ~prot ()
    | Wx.Key_per_page, _ -> 0
    | Wx.Key_per_process, None -> assert false  (* rejected above *)
  in
  let emitter =
    match strategy with
    | Wx.Sdcg ->
        (* SDCG: spawn the emitter process and give it the only writable
           mapping of the cache region (shared physical frames). *)
        let machine = Proc.machine proc in
        let eproc = Proc.create machine in
        let etask = Proc.spawn eproc ~core_id:(Machine.core_count machine - 1) () in
        let frames =
          Mm.frames_of_range (Proc.mm proc) (Task.core etask) ~addr:group_base
            ~len:(cache_pages * page)
        in
        let ebase = Mm.mmap_frames (Proc.mm eproc) (Task.core etask) ~frames ~prot:Perm.rw () in
        Some (eproc, etask, ebase)
    | Wx.No_wx | Wx.Mprotect | Wx.Key_per_page | Wx.Key_per_process -> None
  in
  {
    strategy;
    proc;
    mpk;
    cache_pages;
    committed = [];
    entries = Hashtbl.create 64;
    group_base;
    group_used = 0;
    next_page_vkey = vkey_base + 1;
    switch_cycles = 0.0;
    switch_calls = 0;
    emitter;
  }

let strategy t = t.strategy

let mpk_exn t = match t.mpk with Some m -> m | None -> assert false

let measure_switch t task f =
  let _, cycles = Cpu.measure (Task.core task) f in
  t.switch_cycles <- t.switch_cycles +. cycles;
  t.switch_calls <- t.switch_calls + 1

(* Commit a fresh cache page per the strategy; returns its info. *)
let commit_page t task =
  if List.length t.committed >= t.cache_pages then failwith "Codecache: cache full";
  let next_addr () = t.group_base + (List.length t.committed * page) in
  let info =
    match t.strategy with
    | Wx.No_wx -> { addr = next_addr (); used = 0; vkey = None; sealed = true }
    | Wx.Mprotect -> { addr = next_addr (); used = 0; vkey = None; sealed = false }
    | Wx.Sdcg -> { addr = next_addr (); used = 0; vkey = None; sealed = true }
    | Wx.Key_per_page ->
        let vkey = t.next_page_vkey in
        t.next_page_vkey <- t.next_page_vkey + 1;
        let addr = Libmpk.mpk_mmap (mpk_exn t) task ~vkey ~len:page ~prot:Perm.rwx in
        { addr; used = 0; vkey = Some vkey; sealed = true }
    | Wx.Key_per_process ->
        (* The paper: pages committed into the cache are assigned the
           process key then — an extra pkey_mprotect-class call per
           commit, the cost it charges zlib with. *)
        let addr = next_addr () in
        Syscall.mprotect t.proc task ~addr ~len:page ~prot:Perm.rwx;
        t.group_used <- t.group_used + page;
        { addr; used = 0; vkey = Some vkey_base; sealed = true }
  in
  t.committed <- info :: t.committed;
  info

let page_of_addr t addr =
  List.find (fun (p : page_info) -> addr >= p.addr && addr < p.addr + page) t.committed

(* Open the write window, run the writes (and the optional concurrent
   attacker hook), close the window. *)
let with_write_window t task ~(info : page_info) ?during f =
  let mmu = Proc.mmu t.proc in
  ignore mmu;
  let run_hook () = match during with Some h -> h () | None -> () in
  match t.strategy with
  | Wx.No_wx ->
      f ();
      run_hook ()
  | Wx.Mprotect ->
      if not info.sealed then begin
        (* fresh page: still writable; write, then seal it executable *)
        f ();
        run_hook ();
        measure_switch t task (fun () ->
            Syscall.mprotect t.proc task ~addr:info.addr ~len:page ~prot:Perm.rx);
        info.sealed <- true
      end
      else begin
        measure_switch t task (fun () ->
            Syscall.mprotect t.proc task ~addr:info.addr ~len:page ~prot:Perm.rw);
        f ();
        run_hook ();
        measure_switch t task (fun () ->
            Syscall.mprotect t.proc task ~addr:info.addr ~len:page ~prot:Perm.rx)
      end
  | Wx.Key_per_page | Wx.Key_per_process ->
      let vkey = match info.vkey with Some v -> v | None -> assert false in
      let mpk = mpk_exn t in
      measure_switch t task (fun () -> Libmpk.mpk_begin mpk task ~vkey ~prot:Perm.rw);
      f ();
      run_hook ();
      measure_switch t task (fun () -> Libmpk.mpk_end mpk task ~vkey)
  | Wx.Sdcg ->
      (* The emitter process writes through its own mapping; the executor
         pays the RPC round trip. The hook runs while the executor-side
         page is never writable. *)
      measure_switch t task (fun () ->
          Cpu.charge ~label:"sdcg_rpc" (Task.core task) Wx.sdcg_rpc_cycles);
      run_hook ();
      f ()

let write_code t task ~(info : page_info) ~addr code ?during () =
  match t.strategy, t.emitter with
  | Wx.Sdcg, Some (eproc, etask, ebase) ->
      with_write_window t task ~info ?during (fun () ->
          (* the RPC'd emitter process writes through its own rw view of
             the shared frames; the executor never has a writable page *)
          let eaddr = ebase + (addr - t.group_base) in
          Mmu.write_bytes (Proc.mmu eproc) (Task.core etask) ~addr:eaddr code)
  | _ ->
      with_write_window t task ~info ?during (fun () ->
          Mmu.write_bytes (Proc.mmu t.proc) (Task.core task) ~addr code)

let emit t task ~name code =
  let len = Bytes.length code in
  if len > page then invalid_arg "Codecache.emit: function exceeds one page";
  let info =
    match t.committed with
    | p :: _ when p.used + len <= page -> p
    | _ -> commit_page t task
  in
  let addr = info.addr + info.used in
  info.used <- info.used + len;
  write_code t task ~info ~addr code ();
  let entry = { name; addr; len; page_vkey = info.vkey } in
  Hashtbl.replace t.entries name entry;
  entry

let update t task entry code ?during () =
  if Bytes.length code > entry.len then invalid_arg "Codecache.update: code grew";
  let info = page_of_addr t entry.addr in
  write_code t task ~info ~addr:entry.addr code ?during ()

let find t ~name = Hashtbl.find_opt t.entries name

let pages t = List.length t.committed

let perm_switch_cycles t = t.switch_cycles

let reset_perm_switch_cycles t =
  t.switch_cycles <- 0.0;
  t.switch_calls <- 0

let switch_syscalls t = t.switch_calls
