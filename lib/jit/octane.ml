open Mpk_hw
open Mpk_kernel

type program = {
  name : string;
  hot_functions : int;
  patches_per_function : int;
  execs_per_function : int;
  ops : int;
  script_cycles : float;
}

let programs =
  [
    { name = "Richards"; hot_functions = 8; patches_per_function = 3; execs_per_function = 100; ops = 40; script_cycles = 2.0e6 };
    { name = "DeltaBlue"; hot_functions = 10; patches_per_function = 3; execs_per_function = 100; ops = 40; script_cycles = 2.0e6 };
    { name = "Crypto"; hot_functions = 6; patches_per_function = 2; execs_per_function = 150; ops = 50; script_cycles = 3.0e6 };
    { name = "RayTrace"; hot_functions = 12; patches_per_function = 3; execs_per_function = 120; ops = 40; script_cycles = 2.5e6 };
    { name = "EarleyBoyer"; hot_functions = 14; patches_per_function = 4; execs_per_function = 100; ops = 45; script_cycles = 3.0e6 };
    { name = "RegExp"; hot_functions = 6; patches_per_function = 2; execs_per_function = 80; ops = 30; script_cycles = 4.0e6 };
    { name = "Splay"; hot_functions = 10; patches_per_function = 4; execs_per_function = 100; ops = 35; script_cycles = 2.0e6 };
    (* many fresh pages, almost never patched: hostile to key-per-page *)
    { name = "SplayLatency"; hot_functions = 40; patches_per_function = 1; execs_per_function = 30; ops = 35; script_cycles = 1.2e6 };
    { name = "NavierStokes"; hot_functions = 5; patches_per_function = 2; execs_per_function = 200; ops = 50; script_cycles = 3.0e6 };
    { name = "PdfJS"; hot_functions = 25; patches_per_function = 2; execs_per_function = 80; ops = 40; script_cycles = 8.0e6 };
    { name = "Mandreel"; hot_functions = 30; patches_per_function = 2; execs_per_function = 60; ops = 40; script_cycles = 8.0e6 };
    { name = "MandreelLatency"; hot_functions = 30; patches_per_function = 1; execs_per_function = 40; ops = 35; script_cycles = 4.0e6 };
    { name = "Gameboy"; hot_functions = 20; patches_per_function = 3; execs_per_function = 100; ops = 40; script_cycles = 3.0e6 };
    (* loads heaps of code, runs it briefly *)
    { name = "CodeLoad"; hot_functions = 35; patches_per_function = 1; execs_per_function = 20; ops = 30; script_cycles = 6.0e6 };
    (* small working set patched intensively: libmpk's best case *)
    { name = "Box2D"; hot_functions = 8; patches_per_function = 21; execs_per_function = 150; ops = 45; script_cycles = 2.0e6 };
    (* asm.js: many pages committed once *)
    { name = "zlib"; hot_functions = 45; patches_per_function = 0; execs_per_function = 100; ops = 50; script_cycles = 3.0e6 };
    { name = "Typescript"; hot_functions = 30; patches_per_function = 3; execs_per_function = 80; ops = 45; script_cycles = 10.0e6 };
  ]

let find name =
  match List.find_opt (fun p -> p.name = name) programs with
  | Some p -> p
  | None -> invalid_arg ("Octane.find: unknown program " ^ name)

type run = { program : string; cycles : float; score : float }

let needs_mpk = function
  | Wx.Key_per_page | Wx.Key_per_process -> true
  | Wx.No_wx | Wx.Mprotect | Wx.Sdcg -> false

(* Execute one program under (profile, strategy) on a fresh machine and
   return the cycles consumed by the engine's core. *)
let measure profile strategy prog =
  let machine = Machine.create ~cores:2 ~mem_mib:256 () in
  let proc = Proc.create machine in
  let task = Proc.spawn proc ~core_id:0 () in
  let mpk =
    if needs_mpk strategy then Some (Libmpk.init ~evict_rate:1.0 proc task) else None
  in
  let cache_pages = prog.hot_functions + 2 in
  let engine = Engine.create profile strategy proc task ?mpk ~cache_pages () in
  let core = Task.core task in
  let start = Cpu.cycles core in
  Cpu.charge ~label:"script" core prog.script_cycles;
  let names =
    List.init prog.hot_functions (fun i ->
        Engine.compile engine task ~ops:prog.ops ~seed:i ~pad_to:3900 ())
  in
  (* interleave patch and execution rounds, as a JIT does *)
  for round = 1 to prog.patches_per_function do
    ignore round;
    List.iter (fun n -> Engine.patch engine task n) names
  done;
  for _ = 1 to prog.execs_per_function do
    List.iter
      (fun n ->
        let v = Engine.run engine task n in
        assert (v = Engine.expected engine n))
      names
  done;
  Cpu.cycles core -. start

let run_program profile strategy ?reference prog =
  let cycles = measure profile strategy prog in
  let reference =
    match reference with Some r -> r | None -> measure profile Wx.No_wx prog
  in
  { program = prog.name; cycles; score = 10_000.0 *. reference /. cycles }

let total_score runs =
  (* Octane reports the geometric mean of per-program scores. *)
  match runs with
  | [] -> 0.0
  | _ ->
      let log_sum = List.fold_left (fun acc r -> acc +. log r.score) 0.0 runs in
      exp (log_sum /. float_of_int (List.length runs))
