open Mpk_hw

type instr =
  | Push of int
  | Add
  | Sub
  | Mul
  | Dup
  | Swap
  | Load of int
  | Store of int
  | Jmp of int
  | Jz of int
  | Ret

type func = { name : string; body : instr list }

let locals = 16

let instr_size = function
  | Push _ -> 5
  | Load _ | Store _ -> 2
  | Jmp _ | Jz _ -> 3
  | Add | Sub | Mul | Dup | Swap | Ret -> 1

let code_size f = List.fold_left (fun acc i -> acc + instr_size i) 0 f.body

let compile f =
  let buf = Buffer.create 64 in
  let u16 v =
    Buffer.add_char buf (Char.chr (v land 0xff));
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff))
  in
  List.iter
    (fun i ->
      match i with
      | Push v ->
          Buffer.add_char buf '\x01';
          Buffer.add_char buf (Char.chr (v land 0xff));
          Buffer.add_char buf (Char.chr ((v lsr 8) land 0xff));
          Buffer.add_char buf (Char.chr ((v lsr 16) land 0xff));
          Buffer.add_char buf (Char.chr ((v lsr 24) land 0xff))
      | Add -> Buffer.add_char buf '\x02'
      | Sub -> Buffer.add_char buf '\x03'
      | Mul -> Buffer.add_char buf '\x04'
      | Dup -> Buffer.add_char buf '\x05'
      | Swap -> Buffer.add_char buf '\x06'
      | Load i ->
          if i < 0 || i >= locals then invalid_arg "Bytecode.compile: bad local";
          Buffer.add_char buf '\x07';
          Buffer.add_char buf (Char.chr i)
      | Store i ->
          if i < 0 || i >= locals then invalid_arg "Bytecode.compile: bad local";
          Buffer.add_char buf '\x08';
          Buffer.add_char buf (Char.chr i)
      | Jmp off ->
          Buffer.add_char buf '\x09';
          u16 off
      | Jz off ->
          Buffer.add_char buf '\x0a';
          u16 off
      | Ret -> Buffer.add_char buf '\xff')
    f.body;
  Buffer.to_bytes buf

(* The interpreter core, parameterized by a per-instruction charge so the
   simulated and host-side evaluations cannot drift apart. *)
let interp ~fuel ~charge code len =
  let stack = ref [] in
  let local = Array.make locals 0 in
  let push v = stack := v :: !stack in
  let pop () =
    match !stack with
    | v :: rest ->
        stack := rest;
        v
    | [] -> failwith "Bytecode: stack underflow"
  in
  let byte i =
    if i >= len then failwith "Bytecode: truncated instruction";
    Char.code (Bytes.get code i)
  in
  let pc = ref 0 in
  let steps = ref 0 in
  let result = ref None in
  while !result = None do
    incr steps;
    if !steps > fuel then failwith "Bytecode: fuel exhausted (runaway loop?)";
    if !pc >= len then failwith "Bytecode: ran off the end";
    let op = byte !pc in
    (match op with
    | 0x01 ->
        push (byte (!pc + 1) lor (byte (!pc + 2) lsl 8) lor (byte (!pc + 3) lsl 16) lor (byte (!pc + 4) lsl 24));
        pc := !pc + 5
    | 0x02 ->
        let a = pop () and b = pop () in
        push (a + b);
        incr pc
    | 0x03 ->
        let a = pop () and b = pop () in
        push (b - a);
        incr pc
    | 0x04 ->
        let a = pop () and b = pop () in
        push (a * b);
        incr pc
    | 0x05 ->
        let a = pop () in
        push a;
        push a;
        incr pc
    | 0x06 ->
        let a = pop () and b = pop () in
        push a;
        push b;
        incr pc
    | 0x07 ->
        let i = byte (!pc + 1) in
        if i >= locals then failwith "Bytecode: bad local index";
        push local.(i);
        pc := !pc + 2
    | 0x08 ->
        let i = byte (!pc + 1) in
        if i >= locals then failwith "Bytecode: bad local index";
        local.(i) <- pop ();
        pc := !pc + 2
    | 0x09 ->
        let off = byte (!pc + 1) lor (byte (!pc + 2) lsl 8) in
        if off >= len then failwith "Bytecode: jump out of bounds";
        pc := off
    | 0x0a ->
        let off = byte (!pc + 1) lor (byte (!pc + 2) lsl 8) in
        if off >= len then failwith "Bytecode: jump out of bounds";
        if pop () = 0 then pc := off else pc := !pc + 3
    | 0xff -> result := Some (pop ())
    | op -> failwith (Printf.sprintf "Bytecode: bad opcode 0x%02x" op));
    charge ()
  done;
  match !result with Some v -> v | None -> assert false

let eval_host code = interp ~fuel:10_000_000 ~charge:ignore code (Bytes.length code)

let execute ?(fuel = 10_000_000) mmu cpu ~addr ~len =
  let code = Mmu.fetch mmu cpu ~addr ~len in
  interp ~fuel ~charge:(fun () -> Cpu.charge ~label:"interp" cpu 1.0) code len

let synth ~seed ~ops =
  let prng = Mpk_util.Prng.create ~seed:(Int64.of_int (seed * 2654435761 + 1)) in
  let body = ref [ Push (Mpk_util.Prng.int prng 1000) ] in
  (* keep the stack depth positive: every binop is preceded by a push *)
  for _ = 1 to max 0 ((ops - 2) / 2) do
    let op =
      match Mpk_util.Prng.int prng 4 with
      | 0 -> Add
      | 1 -> Sub
      | 2 -> Mul
      | _ -> Add
    in
    body := op :: Push (Mpk_util.Prng.int prng 1000) :: !body
  done;
  { name = Printf.sprintf "f%d" seed; body = List.rev (Ret :: !body) }

(* layout:  Push iters; Store 0;
   loop:    [body_ops arithmetic on an accumulator in local 1]
            Load 0; Push 1; Sub; Dup; Store 0; Jz done; Jmp loop;
   done:    Load 1; Ret *)
let synth_loop ~seed ~iters ~body_ops =
  let prng = Mpk_util.Prng.create ~seed:(Int64.of_int (seed * 40503 + 7)) in
  let body_arith =
    List.concat
      (List.init (max 1 (body_ops / 3)) (fun _ ->
           let v = 1 + Mpk_util.Prng.int prng 7 in
           let op = if Mpk_util.Prng.bool prng ~p:0.5 then Add else Mul in
           [ Load 1; Push v; op; Store 1 ]))
  in
  let prelude = [ Push iters; Store 0; Push 0; Store 1 ] in
  let latch = [ Load 0; Push 1; Sub; Dup; Store 0 ] in
  let tail = [ Load 1; Ret ] in
  (* compute byte offsets for the two jump targets *)
  let size is = List.fold_left (fun acc i -> acc + instr_size i) 0 is in
  let loop_off = size prelude in
  let done_off = loop_off + size body_arith + size latch + instr_size (Jz 0) + instr_size (Jmp 0) in
  {
    name = Printf.sprintf "loop%d" seed;
    body = prelude @ body_arith @ latch @ [ Jz done_off; Jmp loop_off ] @ tail;
  }
