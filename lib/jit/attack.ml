open Mpk_hw
open Mpk_kernel

type outcome = Injected of int | Blocked of string

let shellcode_marker = 0x5EED

(* push shellcode_marker; ret *)
let shellcode =
  Bytecode.compile { Bytecode.name = "shell"; body = [ Bytecode.Push shellcode_marker; Bytecode.Ret ] }

let needs_mpk = function
  | Wx.Key_per_page | Wx.Key_per_process -> true
  | Wx.No_wx | Wx.Mprotect | Wx.Sdcg -> false

let run ~strategy () =
  let machine = Machine.create ~cores:2 ~mem_mib:64 () in
  let proc = Proc.create machine in
  let compiler = Proc.spawn proc ~core_id:0 () in
  let attacker = Proc.spawn proc ~core_id:1 () in
  let mpk =
    if needs_mpk strategy then Some (Libmpk.init ~evict_rate:1.0 proc compiler) else None
  in
  let engine = Engine.create Engine.Chakracore strategy proc compiler ?mpk () in
  let name = Engine.compile engine compiler ~ops:10 ~seed:1 () in
  let entry =
    match Codecache.find (Engine.cache engine) ~name with
    | Some e -> e
    | None -> assert false
  in
  (* The patch opens the write window; the attacker races inside it. *)
  let attack_result = ref (Blocked "window never opened") in
  let racing_write () =
    match
      Mmu.write_bytes (Proc.mmu proc) (Task.core attacker) ~addr:entry.Codecache.addr
        shellcode
    with
    | () -> attack_result := Injected 0
    | exception Mmu.Fault f -> attack_result := Blocked (Mmu.fault_to_string f)
    | exception Signal.Killed si -> attack_result := Blocked (Signal.to_string si)
  in
  (* the legitimate patch re-emits the function's own code *)
  let fs_code = Bytecode.compile (Bytecode.synth ~seed:1 ~ops:10) in
  Codecache.update (Engine.cache engine) compiler entry fs_code ~during:racing_write ();
  match !attack_result with
  | Blocked _ as b -> b
  | Injected _ ->
      (* Did the shellcode actually take effect? Execute the function. *)
      let v = Engine.run engine compiler name in
      if v = shellcode_marker then Injected v
      else Blocked "write landed but code unchanged"
