open Mpk_hw
open Mpk_kernel

exception Key_exhausted
exception Unregistered_vkey of Vkey.t

type begin_policy =
  | Fail_fast
  | Retry of { attempts : int; backoff_cycles : float }
  | Wait_for_key of { max_wait_cycles : float; poll_cycles : float }

let check_policy = function
  | Fail_fast -> ()
  | Retry { attempts; backoff_cycles } ->
      if attempts < 1 then invalid_arg "begin_policy: Retry needs attempts >= 1";
      if backoff_cycles < 0.0 then invalid_arg "begin_policy: negative backoff"
  | Wait_for_key { max_wait_cycles; poll_cycles } ->
      if poll_cycles <= 0.0 then invalid_arg "begin_policy: poll_cycles must be positive";
      if max_wait_cycles < 0.0 then invalid_arg "begin_policy: negative max_wait"

(* Debug tracing: enable with Logs.Src.set_level Api.log_src (Some Debug). *)
let log_src = Logs.Src.create "libmpk" ~doc:"libmpk key-management events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  proc : Proc.t;
  hw_keys : int;  (* keys handed to the cache at init — the conserved total *)
  evict_rate : float;
  begin_policy : begin_policy;  (* default when mpk_begin gets no override *)
  prng : Mpk_util.Prng.t;
  cache : Key_cache.t;
  metadata : Metadata.t;
  groups : (Vkey.t, Group.t * int) Hashtbl.t;  (* vkey -> group, metadata slot *)
  heaps : (Vkey.t, Mpk_heap.t) Hashtbl.t;
  registry : (Vkey.t, unit) Hashtbl.t option;
  default_heap_bytes : int;
  mutable xonly_reserved : Pkey.t option;
  mutable xonly_groups : int;
  counters : int array;  (* indexed by counter below *)
}

(* counter indices *)
let c_mmap = 0
and c_munmap = 1
and c_begin = 2
and c_end = 3
and c_mprotect = 4
and c_malloc = 5
and c_free = 6

let count t c = t.counters.(c) <- t.counters.(c) + 1

type stats = {
  mmap_calls : int;
  munmap_calls : int;
  begin_calls : int;
  end_calls : int;
  mprotect_calls : int;
  malloc_calls : int;
  free_calls : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_invalidations : int;
  cache_full : int;
  cache_hit_rate : float;
  cache_reserved : int;
}

(* Userspace bookkeeping per API call: a fixed dispatch cost plus one
   hashmap probe per vkey-keyed lookup the entry point performs. Most
   entry points resolve the vkey three times (registry check, group map,
   slot sync) for the historical 60 cycles; mpk_begin/mpk_end reuse the
   (group, slot) pair from their first probe and charge two. With WRPKRU
   (23.3) the three-probe cost keeps the Fig 8 hit path near the paper's
   12.2x-faster-than-mprotect point. *)
let user_base_cycles = 15.0
let user_lookup_cycles = 15.0

let charge_user ?(lookups = 3) task =
  Cpu.charge ~label:"libmpk_user" (Task.core task)
    (user_base_cycles +. (float_of_int lookups *. user_lookup_cycles))

(* Tracing shims: every public API call runs inside a span named after
   it, and key-cache traffic / heap ops emit typed events. All of it is
   behind the tracer's one-branch disabled check. *)
let span task name f = Cpu.span (Task.core task) name f

let temit task ev = Cpu.emit (Task.core task) ev

let emit_acquire task vkey result =
  if Mpk_trace.Tracer.on () then
    match result with
    | Key_cache.Hit pkey ->
        temit task (Mpk_trace.Event.Cache_hit { vkey; pkey = Pkey.to_int pkey })
    | Key_cache.Fresh _ -> temit task (Mpk_trace.Event.Cache_miss { vkey })
    | Key_cache.Evicted (pkey, victim) ->
        temit task (Mpk_trace.Event.Cache_miss { vkey });
        temit task
          (Mpk_trace.Event.Cache_evict { vkey; victim; pkey = Pkey.to_int pkey })
    | Key_cache.Full -> temit task (Mpk_trace.Event.Cache_full { vkey })

let emit_group_op task op vkey =
  if Mpk_trace.Tracer.on () then temit task (Mpk_trace.Event.Group_op { op; vkey })

let init ?vkeys ?(default_heap_bytes = 1 lsl 20) ?(seed = 0xC0FFEEL)
    ?(policy = Key_cache.Lru) ?(hw_keys = 15) ?(begin_policy = Fail_fast) ~evict_rate
    proc task =
  check_policy begin_policy;
  let evict_rate = if evict_rate < 0.0 then 1.0 else Float.min evict_rate 1.0 in
  let hw_keys = max 1 (min 15 hw_keys) in
  (* Take every hardware key away from the kernel so nothing else in the
     process can create groups behind libmpk's back; only the first
     [hw_keys] of them go into circulation. *)
  let keys =
    List.map
      (fun _ -> Syscall.pkey_alloc proc task ~init_rights:Pkru.No_access)
      Pkey.allocatable
    |> List.filteri (fun i _ -> i < hw_keys)
  in
  {
    proc;
    hw_keys;
    evict_rate;
    begin_policy;
    prng = Mpk_util.Prng.create ~seed;
    cache = Key_cache.create ~policy ~seed ~keys ();
    metadata = Metadata.create proc task;
    groups = Hashtbl.create 64;
    heaps = Hashtbl.create 16;
    registry =
      Option.map
        (fun vkeys ->
          let h = Hashtbl.create (List.length vkeys) in
          List.iter (fun v -> Hashtbl.replace h v ()) vkeys;
          h)
        vkeys;
    default_heap_bytes;
    xonly_reserved = None;
    xonly_groups = 0;
    counters = Array.make 7 0;
  }

let proc t = t.proc
let hw_keys t = t.hw_keys
let evict_rate t = t.evict_rate
let group_count t = Hashtbl.length t.groups
let find_group t vkey = Option.map fst (Hashtbl.find_opt t.groups vkey)
let cache t = t.cache
let metadata t = t.metadata
let xonly_key t = t.xonly_reserved
let xonly_group_count t = t.xonly_groups

let groups t =
  Hashtbl.fold (fun vkey (g, slot) acc -> (vkey, g, slot) :: acc) t.groups []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

let vkey_of_pkey t pkey =
  Hashtbl.fold
    (fun vkey (g, _) acc ->
      match acc with
      | Some _ -> acc
      | None -> (
          match g.Group.state with
          | Group.Mapped k when k = pkey -> Some vkey
          | Group.Mapped _ | Group.Unmapped -> None))
    t.groups None

let group_of_addr t addr =
  Hashtbl.fold
    (fun vkey (g, _) acc ->
      match acc with
      | Some _ -> acc
      | None ->
          if addr >= g.Group.base && addr < g.Group.base + Group.len g then
            Some (vkey, g)
          else None)
    t.groups None

let stats t =
  {
    mmap_calls = t.counters.(c_mmap);
    munmap_calls = t.counters.(c_munmap);
    begin_calls = t.counters.(c_begin);
    end_calls = t.counters.(c_end);
    mprotect_calls = t.counters.(c_mprotect);
    malloc_calls = t.counters.(c_malloc);
    free_calls = t.counters.(c_free);
    cache_hits = Key_cache.hits t.cache;
    cache_misses = Key_cache.misses t.cache;
    cache_evictions = Key_cache.evictions t.cache;
    cache_invalidations = Key_cache.invalidations t.cache;
    cache_full = Key_cache.full_misses t.cache;
    cache_hit_rate = Key_cache.hit_rate t.cache;
    cache_reserved = Key_cache.reserved_count t.cache;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "mmap:%d munmap:%d begin:%d end:%d mprotect:%d malloc:%d free:%d | cache hit:%d \
     miss:%d evict:%d invalidate:%d full:%d hit-rate:%.2f reserved:%d"
    s.mmap_calls s.munmap_calls s.begin_calls s.end_calls s.mprotect_calls s.malloc_calls
    s.free_calls s.cache_hits s.cache_misses s.cache_evictions s.cache_invalidations
    s.cache_full s.cache_hit_rate s.cache_reserved

let check_vkey t vkey =
  match t.registry with
  | Some reg when not (Hashtbl.mem reg vkey) -> raise (Unregistered_vkey vkey)
  | Some _ | None -> ()

let group_slot t vkey =
  match Hashtbl.find_opt t.groups vkey with
  | Some pair -> pair
  | None -> Errno.fail ENOENT "libmpk: no page group for vkey %d" vkey

let sync_slot t task vkey =
  let group, slot = group_slot t vkey in
  Metadata.update_slot t.metadata task ~slot group

(* Page-level permission used while a group is Mapped: data rights are
   carried by PKRU, so pages stay readable/writable; the execute bit
   cannot be expressed in PKRU and stays at page level. *)
let mapped_page_perm (prot : Perm.t) : Perm.t = { read = true; write = true; exec = prot.exec }

let set_own_rights task pkey rights =
  let core = Task.core task in
  Cpu.wrpkru core (Pkru.set_rights (Cpu.pkru core) pkey rights)

let multi_threaded t = match Proc.tasks t.proc with [] | [ _ ] -> false | _ -> true

(* Memory-side work of evicting [victim] from hardware key [pkey]. An
   isolated (domain) group loses all data access, but keeps its execute
   bit: PKRU never gated instruction fetch, so revoking it would break
   running code (the JIT case) without adding protection. *)
let evict_group t task ~victim ~pkey =
  let group, _ = group_slot t victim in
  let prot =
    if group.Group.isolated then Perm.make ~exec:group.Group.prot.Perm.exec ()
    else group.Group.prot
  in
  Log.debug (fun m ->
      m "evict vkey:%d from %a (isolated:%b)" victim Pkey.pp pkey group.Group.isolated);
  Syscall.pkey_unmap_group t.proc task ~addr:group.Group.base ~len:(Group.len group)
    ~prot ~old_pkey:pkey;
  group.Group.state <- Group.Unmapped;
  sync_slot t task victim

(* Map [group] onto hardware key [pkey]: tag its pages and set page-level
   permission for the target protection. *)
let attach_group t task group ~pkey ~page_prot =
  Log.debug (fun m ->
      m "attach vkey:%d -> %a (pages:%d prot:%a)" group.Group.vkey Pkey.pp pkey
        group.Group.pages Perm.pp page_prot);
  Syscall.pkey_mprotect t.proc task ~addr:group.Group.base ~len:(Group.len group)
    ~prot:page_prot ~pkey;
  group.Group.state <- Group.Mapped pkey

let mpk_mmap t task ~vkey ~len ~prot =
  span task "mpk_mmap" @@ fun () ->
  check_vkey t vkey;
  charge_user task;
  count t c_mmap;
  emit_group_op task "mmap" vkey;
  if Hashtbl.mem t.groups vkey then
    Errno.fail EINVAL "mpk_mmap: vkey %d already has a page group" vkey;
  let addr = Syscall.mmap t.proc task ~len ~prot () in
  let pages = Mm.pages_of_len len in
  let group = Group.make ~vkey ~base:addr ~pages ~prot in
  try
    (* Attach a hardware key when one is free so the group starts gated by
       PKRU (inaccessible: every thread's rights default to no-access).
       Without a free key, hold the pages at PROT_NONE instead. *)
    (let result = Key_cache.acquire t.cache ~may_evict:false vkey in
     emit_acquire task vkey result;
     match result with
    | Key_cache.Fresh pkey ->
        attach_group t task group ~pkey ~page_prot:(mapped_page_perm prot)
    | Key_cache.Hit _ -> assert false  (* group did not exist *)
    | Key_cache.Evicted _ -> assert false  (* may_evict:false *)
    | Key_cache.Full ->
        Syscall.mprotect t.proc task ~addr ~len ~prot:Perm.none;
        group.Group.state <- Group.Unmapped);
    let slot = Metadata.alloc_slot t.metadata task group in
    Hashtbl.replace t.groups vkey (group, slot);
    addr
  with e ->
    (* Roll back to the pre-call state: the mapping is destroyed (which
       also drops any freshly tagged PTEs) and the hardware key — never
       yet granted to anyone — returns to the cache's free list. The
       caller sees the failure with no half-created group behind it. *)
    let bt = Printexc.get_raw_backtrace () in
    Log.warn (fun m ->
        m "mpk_mmap vkey:%d failed (%s) — rolling back" vkey (Printexc.to_string e));
    Key_cache.release t.cache vkey;
    (try Syscall.munmap t.proc task ~addr ~len with _ -> ());
    Printexc.raise_with_backtrace e bt

let reclaim_xonly_reserve t =
  if t.xonly_groups = 0 then (
    match t.xonly_reserved with
    | Some k ->
        Key_cache.add_key t.cache k;
        t.xonly_reserved <- None
    | None -> ())

(* Propagate [rights] for [pkey] to every thread: the caller by WRPKRU,
   the rest through the kernel's lazy do_pkey_sync. *)
let sync_rights t task pkey rights =
  set_own_rights task pkey rights;
  if multi_threaded t then Syscall.pkey_sync t.proc task ~pkey rights

(* A hardware key leaving circulation must carry no residual rights in
   any thread's PKRU, or its next owner inherits them — the very
   use-after-free class libmpk exists to close. *)
let scrub_rights t task pkey =
  set_own_rights task pkey Pkru.No_access;
  if multi_threaded t then Syscall.pkey_sync t.proc task ~pkey Pkru.No_access

let mpk_munmap t task ~vkey =
  span task "mpk_munmap" @@ fun () ->
  check_vkey t vkey;
  charge_user task;
  count t c_munmap;
  emit_group_op task "munmap" vkey;
  let group, slot = group_slot t vkey in
  if group.Group.begin_depth > 0 then
    Errno.fail EINVAL "mpk_munmap: vkey %d still inside mpk_begin" vkey;
  (match group.Group.state with
  | Group.Mapped _ when group.Group.xonly ->
      t.xonly_groups <- t.xonly_groups - 1;
      reclaim_xonly_reserve t
  | Group.Mapped pkey ->
      scrub_rights t task pkey;
      Key_cache.release t.cache vkey
  | Group.Unmapped -> ());
  Syscall.munmap t.proc task ~addr:group.Group.base ~len:(Group.len group);
  Metadata.free_slot t.metadata task ~slot;
  Hashtbl.remove t.groups vkey;
  Hashtbl.remove t.heaps vkey

(* One attempt to guarantee [group] holds a hardware key, evicting if
   necessary; [None] when every key is pinned. A globally-unlocked group
   re-attached to a (possibly recycled) key must re-synchronize
   everyone's rights, or other threads would lose the global permission
   the moment a domain is opened on the group. *)
let try_map_for_begin t task group =
  let restore_global_rights pkey =
    if not group.Group.isolated then
      sync_rights t task pkey (Pkru.rights_of_perm group.Group.prot)
  in
  match group.Group.state with
  | Group.Mapped pkey -> Some pkey
  | Group.Unmapped -> (
      let result = Key_cache.acquire t.cache ~may_evict:true group.Group.vkey in
      emit_acquire task group.Group.vkey result;
      match result with
      | Key_cache.Hit pkey | Key_cache.Fresh pkey ->
          attach_group t task group ~pkey ~page_prot:(mapped_page_perm group.Group.prot);
          restore_global_rights pkey;
          Some pkey
      | Key_cache.Evicted (pkey, victim) ->
          evict_group t task ~victim ~pkey;
          attach_group t task group ~pkey ~page_prot:(mapped_page_perm group.Group.prot);
          restore_global_rights pkey;
          Some pkey
      | Key_cache.Full -> None)

let exhausted group =
  Log.warn (fun m ->
      m "mpk_begin vkey:%d: every hardware key pinned — Key_exhausted" group.Group.vkey);
  raise Key_exhausted

(* Degradation policy for key exhaustion: fail fast (the paper's
   behaviour — "mpk_begin raises an exception and lets the calling thread
   handle it"), retry with backoff a bounded number of times, or poll
   until a cycle budget runs out. Retrying charges cycles, so injected
   preemptions fire inside the wait and other threads' task_work can
   release pins. *)
let ensure_mapped_for_begin t task ~policy group =
  match try_map_for_begin t task group with
  | Some pkey -> pkey
  | None -> (
      match policy with
      | Fail_fast -> exhausted group
      | Retry { attempts; backoff_cycles } ->
          let rec go n =
            if n >= attempts then exhausted group
            else begin
              Cpu.charge ~label:"begin_backoff" (Task.core task) backoff_cycles;
              match try_map_for_begin t task group with
              | Some pkey ->
                  Log.debug (fun m ->
                      m "mpk_begin vkey:%d: key appeared after %d retries"
                        group.Group.vkey (n + 1));
                  pkey
              | None -> go (n + 1)
            end
          in
          go 0
      | Wait_for_key { max_wait_cycles; poll_cycles } ->
          let deadline = Cpu.cycles (Task.core task) +. max_wait_cycles in
          let rec go () =
            if Cpu.cycles (Task.core task) >= deadline then exhausted group
            else begin
              Cpu.charge ~label:"begin_poll" (Task.core task) poll_cycles;
              match try_map_for_begin t task group with
              | Some pkey -> pkey
              | None -> go ()
            end
          in
          go ())

let mpk_begin ?policy t task ~vkey ~prot =
  span task "mpk_begin" @@ fun () ->
  check_vkey t vkey;
  charge_user ~lookups:2 task;
  count t c_begin;
  let group, slot = group_slot t vkey in
  if group.Group.xonly then
    Errno.fail EACCES "mpk_begin: vkey %d is execute-only" vkey;
  if not (Perm.subsumes group.Group.max_prot prot) then
    Errno.fail EACCES "mpk_begin: requested %s exceeds group permission %s"
      (Perm.to_string prot)
      (Perm.to_string group.Group.max_prot);
  let policy =
    match policy with
    | Some p ->
        check_policy p;
        p
    | None -> t.begin_policy
  in
  let pkey = ensure_mapped_for_begin t task ~policy group in
  Key_cache.pin t.cache vkey;
  if Mpk_trace.Tracer.on () then temit task (Mpk_trace.Event.Cache_pin { vkey });
  group.Group.begin_depth <- group.Group.begin_depth + 1;
  let id = Task.id task in
  Hashtbl.replace group.Group.begin_holders id
    (1 + Option.value ~default:0 (Hashtbl.find_opt group.Group.begin_holders id));
  (* note: [isolated] is not touched — a begin on a globally-unlocked
     group is a temporary elevation, not a switch of usage model *)
  set_own_rights task pkey (Pkru.rights_of_perm prot);
  Metadata.update_slot t.metadata task ~slot group

let mpk_end t task ~vkey =
  span task "mpk_end" @@ fun () ->
  check_vkey t vkey;
  charge_user ~lookups:2 task;
  count t c_end;
  let group, slot = group_slot t vkey in
  let id = Task.id task in
  let own_depth = Option.value ~default:0 (Hashtbl.find_opt group.Group.begin_holders id) in
  (match group.Group.state with
  | Group.Mapped pkey when own_depth > 0 ->
      group.Group.begin_depth <- group.Group.begin_depth - 1;
      if own_depth = 1 then begin
        Hashtbl.remove group.Group.begin_holders id;
        (* this thread's outermost end: fall back to the group's global
           permission — no access for a domain group, the last
           mpk_mprotect grant otherwise *)
        let base_rights =
          if group.Group.isolated then Pkru.No_access
          else Pkru.rights_of_perm group.Group.prot
        in
        set_own_rights task pkey base_rights
      end
      else Hashtbl.replace group.Group.begin_holders id (own_depth - 1);
      Key_cache.unpin t.cache vkey;
      if Mpk_trace.Tracer.on () then temit task (Mpk_trace.Event.Cache_unpin { vkey })
  | Group.Mapped _ | Group.Unmapped ->
      Errno.fail EINVAL "mpk_end: calling thread is not inside mpk_begin for vkey %d" vkey);
  Metadata.update_slot t.metadata task ~slot group

(* Reserve (lazily) the execute-only key; every execute-only group shares
   it and it is never evicted while such groups exist. *)
let reserve_xonly t task =
  match t.xonly_reserved with
  | Some k -> k
  | None -> (
      match Key_cache.reserve t.cache with
      | None -> raise Key_exhausted
      | Some (k, victim) ->
          (match victim with
          | Some v -> evict_group t task ~victim:v ~pkey:k
          | None -> ());
          t.xonly_reserved <- Some k;
          k)

(* Transition a group out of execute-only: untag its pages from the shared
   reserved key (keeping them rx at page level until the caller installs
   the new protection) and release the reserve when it was the last. *)
let leave_xonly t task group =
  if group.Group.xonly then begin
    (match group.Group.state with
    | Group.Mapped k ->
        Syscall.pkey_unmap_group t.proc task ~addr:group.Group.base
          ~len:(Group.len group) ~prot:Perm.rx ~old_pkey:k
    | Group.Unmapped -> ());
    group.Group.state <- Group.Unmapped;
    group.Group.xonly <- false;
    t.xonly_groups <- t.xonly_groups - 1;
    reclaim_xonly_reserve t
  end

let mprotect_xonly t task group =
  let pkey = reserve_xonly t task in
  (* The group leaves the ordinary cache: the reserved key is shared by
     all execute-only groups and pinned until they disappear. *)
  (match group.Group.state with
  | Group.Mapped old_pkey when not group.Group.xonly ->
      scrub_rights t task old_pkey;
      Key_cache.release t.cache group.Group.vkey
  | Group.Mapped _ | Group.Unmapped -> ());
  Syscall.pkey_mprotect t.proc task ~addr:group.Group.base ~len:(Group.len group)
    ~prot:Perm.rx ~pkey;
  if not group.Group.xonly then begin
    group.Group.xonly <- true;
    t.xonly_groups <- t.xonly_groups + 1
  end;
  group.Group.state <- Group.Mapped pkey;
  group.Group.prot <- Perm.x_only;
  group.Group.isolated <- false;
  (* No thread may read an execute-only group: synchronize everyone. *)
  sync_rights t task pkey Pkru.No_access

let mpk_mprotect t task ~vkey ~prot =
  span task "mpk_mprotect" @@ fun () ->
  check_vkey t vkey;
  charge_user task;
  count t c_mprotect;
  emit_group_op task "mprotect" vkey;
  let group, _ = group_slot t vkey in
  if group.Group.begin_depth > 0 then
    Errno.fail EINVAL "mpk_mprotect: vkey %d is inside mpk_begin" vkey;
  (if Perm.equal prot Perm.x_only then mprotect_xonly t task group
   else begin
     leave_xonly t task group;
     let rights = Pkru.rights_of_perm prot in
     match group.Group.state with
     | Group.Mapped pkey ->
         (* Cache hit: flip the exec bit at page level only if it changed;
            data rights travel by PKRU. *)
         emit_acquire task vkey (Key_cache.acquire t.cache vkey);  (* LRU bump + stats *)
         if group.Group.prot.Perm.exec <> prot.Perm.exec then
           Syscall.mprotect t.proc task ~addr:group.Group.base
             ~len:(Group.len group) ~prot:(mapped_page_perm prot);
         group.Group.prot <- prot;
         group.Group.isolated <- false;
         sync_rights t task pkey rights
     | Group.Unmapped -> (
         let may_evict = Mpk_util.Prng.bool t.prng ~p:t.evict_rate in
         let result = Key_cache.acquire t.cache ~may_evict vkey in
         emit_acquire task vkey result;
         match result with
         | Key_cache.Hit pkey | Key_cache.Fresh pkey ->
             attach_group t task group ~pkey ~page_prot:(mapped_page_perm prot);
             group.Group.prot <- prot;
             group.Group.isolated <- false;
             sync_rights t task pkey rights
         | Key_cache.Evicted (pkey, victim) ->
             evict_group t task ~victim ~pkey;
             attach_group t task group ~pkey ~page_prot:(mapped_page_perm prot);
             group.Group.prot <- prot;
             group.Group.isolated <- false;
             sync_rights t task pkey rights
         | Key_cache.Full ->
             (* Eviction declined (or impossible): plain mprotect carries
                the permission at page level, synchronized by nature. *)
             Syscall.mprotect t.proc task ~addr:group.Group.base
               ~len:(Group.len group) ~prot;
             group.Group.prot <- prot;
             group.Group.isolated <- false)
   end);
  sync_slot t task vkey

(* Batched protection change: apply every (vkey, prot) update, then
   propagate all the PKRU changes to other threads with one batched
   do_pkey_sync — one kernel entry and one IPI per target core — instead
   of one sync per update. Only the hot path (a mapped, non-execute-only
   group whose exec bit is unchanged) can defer its sync; anything else
   (unmapped groups, execute-only transitions, exec-bit flips) falls back
   to the full [mpk_mprotect], whose own synchronization is part of its
   semantics. *)
let mpk_mprotect_many t task ~updates =
  span task "mpk_mprotect_many" @@ fun () ->
  let deferred = ref [] in
  List.iter
    (fun ((vkey, prot) : int * Perm.t) ->
      let fast =
        (not (Perm.equal prot Perm.x_only))
        &&
        match Hashtbl.find_opt t.groups vkey with
        | Some (group, _) ->
            (not group.Group.xonly)
            && group.Group.begin_depth = 0
            && group.Group.prot.Perm.exec = prot.Perm.exec
            && (match group.Group.state with
               | Group.Mapped _ -> true
               | Group.Unmapped -> false)
        | None -> false
      in
      if not fast then mpk_mprotect t task ~vkey ~prot
      else begin
        check_vkey t vkey;
        charge_user task;
        count t c_mprotect;
        emit_group_op task "mprotect" vkey;
        let group, _ = group_slot t vkey in
        (match group.Group.state with
        | Group.Mapped pkey ->
            emit_acquire task vkey (Key_cache.acquire t.cache vkey);  (* LRU bump + stats *)
            group.Group.prot <- prot;
            group.Group.isolated <- false;
            let rights = Pkru.rights_of_perm prot in
            set_own_rights task pkey rights;
            deferred := (pkey, rights) :: !deferred
        | Group.Unmapped -> assert false);
        sync_slot t task vkey
      end)
    updates;
  match List.rev !deferred with
  | [] -> ()
  | ds -> if multi_threaded t then Syscall.pkey_sync_many t.proc task ~updates:ds

let mpk_malloc t task ~vkey ~size =
  span task "mpk_malloc" @@ fun () ->
  check_vkey t vkey;
  charge_user task;
  count t c_malloc;
  let group =
    match Hashtbl.find_opt t.groups vkey with
    | Some (g, _) -> g
    | None ->
        let len = max t.default_heap_bytes (Mm.pages_of_len size * Physmem.page_size) in
        ignore (mpk_mmap t task ~vkey ~len ~prot:Perm.rw);
        fst (group_slot t vkey)
  in
  let heap =
    match Hashtbl.find_opt t.heaps vkey with
    | Some h -> h
    | None ->
        let h = Mpk_heap.create ~base:group.Group.base ~len:(Group.len group) in
        Hashtbl.replace t.heaps vkey h;
        h
  in
  match Mpk_heap.alloc heap ~size with
  | Some addr ->
      if Mpk_trace.Tracer.on () then
        temit task (Mpk_trace.Event.Heap_alloc { vkey; size; addr });
      addr
  | None -> Errno.fail ENOMEM "mpk_malloc: group %d heap exhausted" vkey

let mpk_free t task ~vkey ~addr =
  span task "mpk_free" @@ fun () ->
  check_vkey t vkey;
  charge_user task;
  count t c_free;
  match Hashtbl.find_opt t.heaps vkey with
  | Some heap ->
      Mpk_heap.free heap ~addr;
      if Mpk_trace.Tracer.on () then temit task (Mpk_trace.Event.Heap_free { vkey; addr })
  | None -> Errno.fail EINVAL "mpk_free: vkey %d has no heap" vkey
