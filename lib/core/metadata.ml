open Mpk_hw
open Mpk_kernel

let initial_bytes = 32 * 1024  (* the paper's pre-allocated 32 KiB *)

type t = {
  proc : Proc.t;
  mutable base : int;
  mutable bytes : int;
  mutable used : bool array;  (* slot occupancy, tracked library-side *)
}

let slots_of_bytes bytes = bytes / Group.metadata_bytes

let create proc task =
  let base = Syscall.mmap proc task ~len:initial_bytes ~prot:Perm.r () in
  { proc; base; bytes = initial_bytes; used = Array.make (slots_of_bytes initial_bytes) false }

let base t = t.base
let capacity_slots t = slots_of_bytes t.bytes
let used_slots t = Array.fold_left (fun acc u -> if u then acc + 1 else acc) 0 t.used

let slot_addr t ~slot = t.base + (slot * Group.metadata_bytes)

(* A privileged copy can still run out of physical frames while demand
   paging; that surfaces as the syscall-shaped ENOMEM, not a raw MMU
   fault — metadata writes happen inside kernel-mediated calls. *)
let kernel_write t ~slot data =
  try Mmu.kernel_write_bytes (Proc.mmu t.proc) ~addr:(slot_addr t ~slot) data
  with Mmu.Fault { Mmu.cause = Mmu.No_memory; _ } ->
    Errno.fail ENOMEM "metadata: out of physical frames"

let grow t task =
  let new_bytes = t.bytes * 2 in
  let new_base = Syscall.mmap t.proc task ~len:new_bytes ~prot:Perm.r () in
  (* The kernel migrates the records to the larger region. *)
  (try
     let old = Mmu.kernel_read_bytes (Proc.mmu t.proc) ~addr:t.base ~len:t.bytes in
     Mmu.kernel_write_bytes (Proc.mmu t.proc) ~addr:new_base old
   with Mmu.Fault { Mmu.cause = Mmu.No_memory; _ } ->
     (* failed migration: drop the half-populated new region, keep the
        old one — the caller sees ENOMEM against an intact store *)
     (try Syscall.munmap t.proc task ~addr:new_base ~len:new_bytes with _ -> ());
     Errno.fail ENOMEM "metadata grow: out of physical frames");
  Syscall.munmap t.proc task ~addr:t.base ~len:t.bytes;
  let new_used = Array.make (slots_of_bytes new_bytes) false in
  Array.blit t.used 0 new_used 0 (Array.length t.used);
  t.base <- new_base;
  t.bytes <- new_bytes;
  t.used <- new_used

let find_free t =
  let n = Array.length t.used in
  let rec scan i = if i >= n then None else if not t.used.(i) then Some i else scan (i + 1) in
  scan 0

let alloc_slot t task group =
  let slot =
    match find_free t with
    | Some s -> s
    | None ->
        grow t task;
        (match find_free t with
        | Some s -> s
        | None -> assert false)
  in
  (* Write before marking the slot used: if the kernel write throws
     (frame exhaustion during demand paging), the slot map still agrees
     with the protected region (auditor invariant I6). *)
  kernel_write t ~slot (Group.serialize group);
  t.used.(slot) <- true;
  slot

let update_slot t _task ~slot group =
  if slot < 0 || slot >= Array.length t.used || not t.used.(slot) then
    invalid_arg "Metadata.update_slot: bad slot";
  kernel_write t ~slot (Group.serialize group)

let free_slot t _task ~slot =
  if slot < 0 || slot >= Array.length t.used || not t.used.(slot) then
    invalid_arg "Metadata.free_slot: bad slot";
  t.used.(slot) <- false;
  kernel_write t ~slot (Bytes.make Group.metadata_bytes '\000')

let read_slot t task ~slot =
  if slot < 0 || slot >= Array.length t.used then invalid_arg "Metadata.read_slot: bad slot";
  let data =
    Mmu.read_bytes (Proc.mmu t.proc) (Task.core task) ~addr:(slot_addr t ~slot)
      ~len:Group.metadata_bytes
  in
  if not t.used.(slot) then None else Group.deserialize data
