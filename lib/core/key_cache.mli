(** The virtual-key → hardware-key cache (paper Fig 6).

    Hardware keys are treated like cache slots for virtual keys: a lookup
    hit returns the mapped key cheaply; a miss either takes a free key,
    evicts the least-recently-used unpinned mapping, or reports the cache
    full (every key pinned by an active [mpk_begin]). *)

open Mpk_hw

type t

(** Victim-selection policy. The paper uses LRU; FIFO and random are
    provided for the eviction-policy ablation. *)
type policy = Lru | Fifo | Random

(** [create ~keys] with the hardware keys handed over by [mpk_init].
    [seed] only matters for [Random]. *)
val create : ?policy:policy -> ?seed:int64 -> keys:Pkey.t list -> unit -> t

val policy : t -> policy

(** Withdraw one key from circulation (the execute-only reserve). Prefers
    a free key; evicts an unpinned LRU mapping if needed; [None] when
    everything is pinned. Returns the key plus the evicted vkey, if any.
    The key is tracked as *reserved* — still owned by the cache for
    accounting ([capacity] is conserved) — until [add_key] returns it. *)
val reserve : t -> (Pkey.t * Vkey.t option) option

type acquire_result =
  | Hit of Pkey.t  (** vkey already mapped *)
  | Fresh of Pkey.t  (** mapped to a previously free key *)
  | Evicted of Pkey.t * Vkey.t  (** mapped after evicting the LRU victim *)
  | Full  (** no free key and eviction unavailable *)

(** [acquire t vkey ~may_evict] maps (or finds) a hardware key for [vkey],
    updating LRU order and hit/miss/eviction statistics. With
    [may_evict:false] a miss with no free key reports [Full] instead of
    evicting (the eviction-rate fallback of [mpk_mprotect]). On [Evicted]
    the caller must do the memory-side work of the eviction. *)
val acquire : t -> ?may_evict:bool -> Vkey.t -> acquire_result

(** Return a previously reserved key to the free pool. *)
val add_key : t -> Pkey.t -> unit

(** [lookup t vkey] — non-mutating except for the LRU bump; no stats. *)
val lookup : t -> Vkey.t -> Pkey.t option

(** Pin/unpin a mapping against eviction (nested: counted). *)
val pin : t -> Vkey.t -> unit

val unpin : t -> Vkey.t -> unit
val pinned : t -> Vkey.t -> bool

(** [release t vkey] drops the mapping, returning the key to the free
    list. No-op when unmapped. Raises [Invalid_argument] when the entry
    is pinned: a pinned key backs a live [mpk_begin] domain, and handing
    it to another group would leak the holder's rights. *)
val release : t -> Vkey.t -> unit

(** Total keys owned: free + mapped + reserved. Conserved across
    [acquire]/[release]/[reserve]/[add_key]. *)
val capacity : t -> int

val in_use : t -> int

(** Keys currently on the free list. *)
val free_keys : t -> Pkey.t list

(** Keys withdrawn by [reserve] and not yet returned. *)
val reserved_keys : t -> Pkey.t list

val reserved_count : t -> int

(** [pins t vkey] — the entry's pin count, 0 when unmapped. *)
val pins : t -> Vkey.t -> int

(** Mappings as (vkey, pkey, pin-count) triples, ascending vkey. Purely
    observational (no LRU bump, no stats). *)
val mappings : t -> (Vkey.t * Pkey.t * int) list
val hits : t -> int
val misses : t -> int
val evictions : t -> int

(** Mappings removed by [release] — the invalidation an [mpk_free] /
    [mpk_munmap] triggers, as opposed to a capacity eviction. *)
val invalidations : t -> int

(** Misses that returned [Full] (no mapping was created). Together with
    the other counters this closes the conservation identity
    [misses = in_use + evictions + invalidations + full_misses]: every
    miss either inserted a mapping (still present, later evicted, or
    later invalidated) or returned [Full]. *)
val full_misses : t -> int

(** hits / (hits + misses); 0 before any lookup. *)
val hit_rate : t -> float

val reset_stats : t -> unit

(** Mappings as (vkey, pkey, pinned) triples, LRU first. *)
val dump : t -> (Vkey.t * Pkey.t * bool) list
