open Mpk_hw

type entry = {
  pkey : Pkey.t;
  mutable stamp : int;  (* last access (LRU) *)
  inserted : int;  (* insertion order (FIFO) *)
  mutable pins : int;
}

type policy = Lru | Fifo | Random

type t = {
  policy : policy;
  prng : Mpk_util.Prng.t;
  mutable free : Pkey.t list;
  mutable reserved : Pkey.t list;  (* withdrawn from circulation, still owned *)
  map : (Vkey.t, entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;  (* mappings removed by [release] (mpk_free path) *)
  mutable full : int;  (* misses that returned [Full] (no mapping created) *)
}

(* Fault injection: force the miss path to find no usable key ("cache
   full": all entries pinned), or make [reserve] refuse. Exercises the
   Key_exhausted / degradation paths that a well-provisioned cache never
   reaches naturally. *)
let fp_full = "key_cache.full"
let fp_reserve = "key_cache.reserve"

let () =
  Mpk_faultinj.declare fp_full;
  Mpk_faultinj.declare fp_reserve

let create ?(policy = Lru) ?(seed = 0x5EEDL) ~keys () =
  {
    policy;
    prng = Mpk_util.Prng.create ~seed;
    free = keys;
    reserved = [];
    map = Hashtbl.create 16;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
    full = 0;
  }

let policy t = t.policy

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let min_by metric t =
  Hashtbl.fold
    (fun vkey e best ->
      if e.pins > 0 then best
      else
        match best with
        | Some (_, b) when metric b <= metric e -> best
        | _ -> Some (vkey, e))
    t.map None

let lru_victim t =
  match t.policy with
  | Lru -> min_by (fun e -> e.stamp) t
  | Fifo -> min_by (fun e -> e.inserted) t
  | Random -> (
      let unpinned =
        Hashtbl.fold (fun vkey e acc -> if e.pins = 0 then (vkey, e) :: acc else acc) t.map []
      in
      match unpinned with
      | [] -> None
      | _ -> Some (List.nth unpinned (Mpk_util.Prng.int t.prng (List.length unpinned))))

type acquire_result =
  | Hit of Pkey.t
  | Fresh of Pkey.t
  | Evicted of Pkey.t * Vkey.t
  | Full

let acquire t ?(may_evict = true) vkey =
  match Hashtbl.find_opt t.map vkey with
  | Some e ->
      e.stamp <- tick t;
      t.hits <- t.hits + 1;
      Hit e.pkey
  | None -> (
      t.misses <- t.misses + 1;
      let full () =
        t.full <- t.full + 1;
        Full
      in
      if Mpk_faultinj.fire fp_full then full ()
      else
      match t.free with
      | pkey :: rest ->
          t.free <- rest;
          let now = tick t in
          Hashtbl.replace t.map vkey { pkey; stamp = now; inserted = now; pins = 0 };
          Fresh pkey
      | [] ->
          if not may_evict then full ()
          else (
            match lru_victim t with
            | None -> full ()
            | Some (victim, e) ->
                Hashtbl.remove t.map victim;
                let now = tick t in
                Hashtbl.replace t.map vkey { pkey = e.pkey; stamp = now; inserted = now; pins = 0 };
                t.evictions <- t.evictions + 1;
                Evicted (e.pkey, victim)))

let add_key t pkey =
  t.reserved <- List.filter (fun k -> not (Pkey.equal k pkey)) t.reserved;
  t.free <- pkey :: t.free

let lookup t vkey =
  match Hashtbl.find_opt t.map vkey with
  | Some e ->
      e.stamp <- tick t;
      Some e.pkey
  | None -> None

let reserve t =
  if Mpk_faultinj.fire fp_reserve then None
  else
  match t.free with
  | pkey :: rest ->
      t.free <- rest;
      t.reserved <- pkey :: t.reserved;
      Some (pkey, None)
  | [] -> (
      match lru_victim t with
      | None -> None
      | Some (victim, e) ->
          Hashtbl.remove t.map victim;
          t.evictions <- t.evictions + 1;
          t.reserved <- e.pkey :: t.reserved;
          Some (e.pkey, Some victim))

let pin t vkey =
  match Hashtbl.find_opt t.map vkey with
  | Some e -> e.pins <- e.pins + 1
  | None -> invalid_arg "Key_cache.pin: vkey not mapped"

let unpin t vkey =
  match Hashtbl.find_opt t.map vkey with
  | Some e when e.pins > 0 -> e.pins <- e.pins - 1
  | Some _ -> invalid_arg "Key_cache.unpin: not pinned"
  | None -> invalid_arg "Key_cache.unpin: vkey not mapped"

let pinned t vkey =
  match Hashtbl.find_opt t.map vkey with Some e -> e.pins > 0 | None -> false

let release t vkey =
  match Hashtbl.find_opt t.map vkey with
  | Some e when e.pins > 0 ->
      (* Recycling a pinned key would hand an mpk_begin holder's rights to
         the next group mapped onto it — refuse loudly instead. *)
      invalid_arg (Printf.sprintf "Key_cache.release: vkey %d is pinned" vkey)
  | Some e ->
      Hashtbl.remove t.map vkey;
      t.invalidations <- t.invalidations + 1;
      t.free <- e.pkey :: t.free
  | None -> ()

let capacity t = List.length t.free + List.length t.reserved + Hashtbl.length t.map
let in_use t = Hashtbl.length t.map
let free_keys t = t.free
let reserved_keys t = t.reserved
let reserved_count t = List.length t.reserved

let pins t vkey =
  match Hashtbl.find_opt t.map vkey with Some e -> e.pins | None -> 0

let mappings t =
  Hashtbl.fold (fun vkey e acc -> (vkey, e.pkey, e.pins) :: acc) t.map []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions
let invalidations t = t.invalidations
let full_misses t = t.full

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.invalidations <- 0;
  t.full <- 0

let dump t =
  Hashtbl.fold (fun vkey e acc -> (vkey, e.pkey, e.pins > 0, e.stamp) :: acc) t.map []
  |> List.sort (fun (_, _, _, a) (_, _, _, b) -> compare a b)
  |> List.map (fun (v, p, pinned, _) -> v, p, pinned)
