(** The libmpk API (paper Table 2).

    Eight entry points over the simulated kernel:

    - [init] — grab all hardware keys, set up protected metadata.
    - [mpk_mmap] / [mpk_munmap] — create/destroy a page group for a
      virtual key.
    - [mpk_begin] / [mpk_end] — thread-local domain isolation: unlock a
      group for the calling thread only.
    - [mpk_mprotect] — process-global permission change, a fast
      [mprotect] substitute with the same synchronization semantics.
    - [mpk_malloc] / [mpk_free] — heap allocation inside a group.

    Virtual keys are meant to be hardcoded constants; passing
    [~vkeys:[...]] to [init] enables the load-time check that rejects any
    other key (defence against protection-key corruption, §4.3). *)

open Mpk_hw
open Mpk_kernel

type t

(** Raised by [mpk_begin] when every hardware key is pinned by an active
    domain (the paper: "mpk_begin raises an exception and lets the
    calling thread handle it"). *)
exception Key_exhausted

(** Raised when the hardcoded-vkey check rejects a key. *)
exception Unregistered_vkey of Vkey.t

(** What [mpk_begin] does when every hardware key is pinned by another
    active domain (graceful degradation under key pressure):

    - [Fail_fast] — raise [Key_exhausted] immediately (the paper's
      behaviour, and the default).
    - [Retry] — re-attempt up to [attempts] times, charging
      [backoff_cycles] to the calling core between attempts; then raise.
    - [Wait_for_key] — poll every [poll_cycles] until a key frees up or
      [max_wait_cycles] have been burned; then raise.

    Waiting charges real (simulated) cycles, so injected preemptions can
    fire inside the wait and pending task_work on the caller's core
    drains — which is how a key pinned by a descheduled thread can
    actually become free. *)
type begin_policy =
  | Fail_fast
  | Retry of { attempts : int; backoff_cycles : float }
  | Wait_for_key of { max_wait_cycles : float; poll_cycles : float }

(** [init proc task ~evict_rate ()] — pre-allocate all 15 hardware keys
    and initialize metadata. [evict_rate] is the probability that an
    [mpk_mprotect] cache miss evicts a key rather than falling back to
    [mprotect]; a negative value means 1.0 (the paper's default). *)
val init :
  ?vkeys:Vkey.t list ->
  ?default_heap_bytes:int ->
  ?seed:int64 ->
  ?policy:Key_cache.policy ->
  ?hw_keys:int ->
  ?begin_policy:begin_policy ->
  evict_rate:float ->
  Proc.t ->
  Task.t ->
  t
(** [hw_keys] (default 15, the x86 maximum) restricts how many hardware
    keys libmpk manages — the "what if the ISA had fewer/more keys"
    ablation of §3.2. Values above 15 are clamped. *)

val proc : t -> Proc.t
val evict_rate : t -> float

(** [mpk_mmap t task ~vkey ~len ~prot] — allocate a page group. The group
    starts inaccessible to every thread (a free hardware key is attached
    when available; otherwise pages are held at PROT_NONE until first
    use). Returns the base address. Exception-safe: a mid-call failure
    (e.g. frame exhaustion while writing metadata) unwinds the mapping
    and the key before re-raising — no half-created group survives. *)
val mpk_mmap : t -> Task.t -> vkey:Vkey.t -> len:int -> prot:Perm.t -> int

(** [mpk_munmap t task ~vkey] — unmap all pages of a group, free its
    virtual key, hardware key and metadata. *)
val mpk_munmap : t -> Task.t -> vkey:Vkey.t -> unit

(** [mpk_begin t task ~vkey ~prot] — obtain [prot] access to the group for
    the calling thread only. Guaranteed to hold a hardware key on return
    (evicting if necessary); when all keys are pinned by other active
    domains, behaves per [?policy] (default: the [begin_policy] given to
    [init]), ultimately raising [Key_exhausted]. *)
val mpk_begin : ?policy:begin_policy -> t -> Task.t -> vkey:Vkey.t -> prot:Perm.t -> unit

(** [mpk_end t task ~vkey] — drop the calling thread's access. *)
val mpk_end : t -> Task.t -> vkey:Vkey.t -> unit

(** [mpk_mprotect t task ~vkey ~prot] — change the group's permission for
    *all* threads, with [mprotect]'s semantics but (on a key-cache hit)
    only a PKRU write plus lazy inter-thread synchronization.
    Execute-only requests are served by the reserved execute-only key. *)
val mpk_mprotect : t -> Task.t -> vkey:Vkey.t -> prot:Perm.t -> unit

(** [mpk_mprotect_many t task ~updates] — apply every [(vkey, prot)]
    change, deferring the inter-thread PKRU synchronization of the
    mapped-group fast path into one batched [do_pkey_sync] at the end:
    one kernel entry and one IPI per target core for the whole batch.
    Updates that cannot defer (unmapped groups, execute-only transitions,
    exec-bit flips) fall back to [mpk_mprotect] individually. *)
val mpk_mprotect_many : t -> Task.t -> updates:(Vkey.t * Perm.t) list -> unit

(** [mpk_malloc t task ~vkey ~size] — allocate from the group's heap,
    creating a default-sized group on first use of [vkey]. *)
val mpk_malloc : t -> Task.t -> vkey:Vkey.t -> size:int -> int

(** [mpk_free t task ~vkey ~addr] — release a block from [mpk_malloc]. *)
val mpk_free : t -> Task.t -> vkey:Vkey.t -> addr:int -> unit

(* Introspection (tests, experiments). *)

val group_count : t -> int
val find_group : t -> Vkey.t -> Group.t option
val cache : t -> Key_cache.t
val metadata : t -> Metadata.t
val xonly_key : t -> Pkey.t option

(** Hardware keys handed to the key cache at [init] — the conserved
    total that free + mapped + reserved must always sum to. *)
val hw_keys : t -> int

(** Number of live execute-only groups (they share the reserved key). *)
val xonly_group_count : t -> int

(** All live page groups as (vkey, group, metadata slot) triples,
    ascending vkey. Read-only view for auditing. *)
val groups : t -> (Vkey.t * Group.t * int) list

(** The virtual key whose group currently holds hardware key [pkey], if
    any — how the core-dump classifier labels a protected page with the
    owning domain. *)
val vkey_of_pkey : t -> Pkey.t -> Vkey.t option

(** The live group containing [addr], if any. Group membership is the
    authoritative "is this protected memory" test: an evicted isolated
    group's pages carry pkey 0 and PROT_NONE, yet still belong to a
    protection domain and must never appear in a dump in the clear. *)
val group_of_addr : t -> int -> (Vkey.t * Group.t) option

(** Userspace bookkeeping cost model: each API call charges
    [user_base_cycles] plus [user_lookup_cycles] per vkey-keyed hashmap
    probe it performs. Most entry points probe three times;
    [mpk_begin]/[mpk_end] reuse their first (group, slot) probe and
    charge two. *)
val user_base_cycles : float

val user_lookup_cycles : float

(** Cumulative API-call counters (observability / experiments). *)
type stats = {
  mmap_calls : int;
  munmap_calls : int;
  begin_calls : int;
  end_calls : int;
  mprotect_calls : int;
  malloc_calls : int;
  free_calls : int;
  cache_hits : int;
  cache_misses : int;
  cache_evictions : int;
  cache_invalidations : int;  (** evictions triggered by mpk_free/munmap *)
  cache_full : int;  (** misses that found no usable key *)
  cache_hit_rate : float;  (** hits / (hits + misses), 0 before any lookup *)
  cache_reserved : int;  (** keys withdrawn for the execute-only reserve *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

(** Debug tracing of key-management events (attach/evict/exhaustion):
    [Logs.Src.set_level log_src (Some Logs.Debug)]. *)
val log_src : Logs.src
