(** Reader/writer lock with per-actor hold counts — the primitive behind
    the mm-wide lock and the per-VMA locks (DESIGN.md §13).

    The simulator is single-threaded, so no atomics: the value of the
    lock is its {e observability} (every transition runs the event hook,
    which the lockdep validator installs into) and its
    {e schedulability} (a contended acquire calls the wait hook, which
    the torture scheduler replaces to park the acquiring fiber). The
    default wait hook raises {!Would_block}: in sequential mode nothing
    can release a lock behind the caller's back, so contention is a
    self-deadlock by construction.

    Actors are plain ints — core ids in practice ([-1] for lock use with
    no core context, e.g. kernel metadata walks). *)

type mode = Shared | Exclusive

type t

type event =
  | Attempt of { lock : t; mode : mode; actor : int }
  | Acquired of { lock : t; mode : mode; actor : int }
  | Contended of { lock : t; mode : mode; actor : int }
  | Released of { lock : t; mode : mode; actor : int }

exception Would_block of string

val make : cls:string -> t
(** [cls] is the lock class ("mm_lock", "vma_lock", ...): lockdep's
    ordering graph is built over classes, not instances. *)

val id : t -> int
val cls : t -> string

val known_classes : unit -> string list
(** Every class a lock was ever constructed with, sorted. The static
    concurrency analyzer validates its protocol models against this. *)

val set_hook : (event -> unit) -> unit
(** Install the lockdep recorder. Exactly one hook; [clear_hook]
    restores the no-op. *)

val clear_hook : unit -> unit

val set_wait_hook : (t -> actor:int -> unit) -> unit
(** Install the scheduler's contention action (torture parks the fiber
    and retries after the next resume). *)

val clear_wait_hook : unit -> unit

val acquire : t -> mode -> actor:int -> unit
(** Blocking acquire. Reentrant for [Exclusive] by the same actor;
    [Shared] under own [Exclusive] is granted. A shared→exclusive
    upgrade waits on itself (flagged by lockdep, fatal without a
    scheduler). *)

val try_acquire : t -> mode -> actor:int -> bool
(** Non-blocking acquire ([vma_start_read]): no wait, no [Contended]
    event on failure. *)

val release : t -> mode -> actor:int -> unit
(** Releasing a lock not held in [mode] is counted in {!unbalanced}
    (and surfaces as a lockdep finding) rather than raising, mirroring
    real lockdep's WARN. *)

val reader_count : t -> int
val write_locked : t -> bool
val held_exclusive : t -> actor:int -> bool
val held_shared : t -> actor:int -> bool

val unbalanced : unit -> int
(** Releases-not-held observed since process start (monotonic; compare
    deltas). *)
