type code = Segv_maperr | Segv_accerr | Segv_pkuerr | Bus_adrerr

type siginfo = {
  signo : int;
  code : code;
  addr : int;
  access : Mpk_hw.Mmu.access;
  pkey : int;
}

exception Killed of siginfo

let sigsegv = 11
let sigbus = 7

let code_to_string = function
  | Segv_maperr -> "SEGV_MAPERR"
  | Segv_accerr -> "SEGV_ACCERR"
  | Segv_pkuerr -> "SEGV_PKUERR"
  | Bus_adrerr -> "BUS_ADRERR"

let signo_to_string = function
  | 11 -> "SIGSEGV"
  | 7 -> "SIGBUS"
  | n -> Printf.sprintf "signal %d" n

let to_string si =
  Printf.sprintf "%s (%s) %s at 0x%x%s" (signo_to_string si.signo)
    (code_to_string si.code)
    (Mpk_hw.Mmu.access_to_string si.access)
    si.addr
    (if si.code = Segv_pkuerr then Printf.sprintf " pkey=%d" si.pkey else "")

let of_fault (f : Mpk_hw.Mmu.fault) ~pkey =
  match f.cause with
  | Not_present ->
      { signo = sigsegv; code = Segv_maperr; addr = f.addr; access = f.access; pkey = 0 }
  | Page_perm ->
      { signo = sigsegv; code = Segv_accerr; addr = f.addr; access = f.access; pkey = 0 }
  | Pkey_denied ->
      { signo = sigsegv; code = Segv_pkuerr; addr = f.addr; access = f.access; pkey }
  | No_memory ->
      { signo = sigbus; code = Bus_adrerr; addr = f.addr; access = f.access; pkey = 0 }

type handler = siginfo -> unit

(* --- default-kill crash record --- *)

let blackbox_depth = 64

type crash = { task : int; si : siginfo; blackbox : string list }

let last_crash_ref : crash option ref = ref None

let record_kill ~task si =
  (* Snapshot the flight recorder *now*: by the time anyone asks, a
     handler or test harness may have cleared or clobbered the ring. An
     empty list just means tracing was off. *)
  let blackbox =
    List.map Mpk_trace.Event.to_line (Mpk_trace.Tracer.recent blackbox_depth)
  in
  last_crash_ref := Some { task; si; blackbox }

let last_crash () = !last_crash_ref
let clear_last_crash () = last_crash_ref := None

let () =
  Printexc.register_printer (function
    | Killed si -> Some (Printf.sprintf "Signal.Killed(%s)" (to_string si))
    | _ -> None)
