open Mpk_hw

type t = {
  table : Page_table.t;
  vmas : Vma.t;
  mem : Physmem.t;
  mmu : Mmu.t;
  mutable bump : int;  (* next free vpn for address allocation *)
}

let bump_base_vpn = 0x10000  (* user mappings start at 256 MiB *)

(* Lock plumbing. Acquisitions charge zero cycles — the simulator's cost
   model folds lock traffic into the operations themselves — but each
   charge is a preemption point, which is what lets the torture
   scheduler interleave other fibers exactly where a real kernel could
   be preempted while (or before) holding the lock. *)
let lock_point cpu label =
  match cpu with Some cpu -> Cpu.charge ~label cpu 0.0 | None -> ()

let actor_of cpu = match cpu with Some cpu -> Cpu.id cpu | None -> -1

let with_mm_lock ?cpu t mode f =
  let actor = actor_of cpu in
  lock_point cpu "mm_lock";
  let lock = Vma.mm_lock t.vmas in
  Lock.acquire lock mode ~actor;
  Fun.protect ~finally:(fun () -> Lock.release lock mode ~actor) f

let with_write_lock t cpu f = with_mm_lock ~cpu t Lock.Exclusive f

(* Recycling-safe lookup (the lock_vma_under_rcu() shape, SNIPPETS.md
   §2): walk the current tree snapshot with no lock, try to take the
   vma's read lock, then re-validate identity/liveness/range — the
   walk's result may have been unmapped and its record recycled (even
   into another address space) between the walk and the refcount bump.
   Any failure falls back to a walk under the mm read lock, which
   excludes writers. [f] runs with the vma read-held. *)
let find_vma_read t cpu ~vpn f =
  let actor = actor_of cpu in
  lock_point cpu "vma_walk";
  let fast =
    match Vma.find t.vmas vpn with
    | None -> `Fallback  (* racing unmap? only the mm lock can say *)
    | Some v ->
        lock_point cpu "vma_start_read";
        if not (Vma.start_read v ~actor) then `Fallback
        else begin
          lock_point cpu "vma_validate";
          if Vma.validate_read t.vmas v vpn then
            `Hit
              (Fun.protect
                 ~finally:(fun () -> Vma.end_read t.vmas v ~actor)
                 (fun () -> f v))
          else begin
            (* Lost the race: drop the reference (recycled-owner-safe)
               and retry under the lock. *)
            Vma.end_read t.vmas v ~actor;
            `Fallback
          end
        end
  in
  match fast with
  | `Hit r -> Some r
  | `Fallback ->
      with_mm_lock ?cpu t Lock.Shared (fun () ->
          match Vma.find t.vmas vpn with
          | None -> None
          | Some v -> Some (f v))

(* Demand paging: a not-present fault inside a VMA materializes a zeroed
   frame with the VMA's protection and key; anything else is a real
   segfault. Frame exhaustion refuses the fault with [No_memory], which
   the MMU delivers in place of the original (SIGBUS upstream). The VMA
   lookup takes the lock-free path: faults are the hot concurrent
   readers racing mmap/munmap. *)
let fault_handler t cpu (fault : Mmu.fault) =
  let vpn = Page_table.vpn_of_addr fault.Mmu.addr in
  let service (v : Vma.vma) =
    (match cpu with
    | Some cpu ->
        Cpu.charge ~label:"page_fault" cpu (Cpu.costs cpu).page_fault;
        if Mpk_trace.Tracer.on () then
          Cpu.emit cpu
            (Mpk_trace.Event.Page_fault
               { addr = fault.Mmu.addr; cause = "demand_paging" })
    | None -> ());
    let frame =
      try Physmem.alloc_frame t.mem
      with Out_of_memory -> raise (Mmu.Fault { fault with Mmu.cause = Mmu.No_memory })
    in
    Page_table.set t.table ~vpn
      (Pte.make ~frame ~perm:v.Vma.attrs.Vma.prot ~pkey:v.Vma.attrs.Vma.pkey)
  in
  match find_vma_read t cpu ~vpn service with
  | Some () -> true
  | None -> false

let create mem =
  let table = Page_table.create () in
  let t =
    { table; vmas = Vma.create (); mem; mmu = Mmu.create table mem; bump = bump_base_vpn }
  in
  Mmu.set_fault_handler t.mmu (fault_handler t);
  t

let mmu t = t.mmu
let vmas t = t.vmas
let page_table t = t.table

let pages_of_len len = (len + Physmem.page_size - 1) / Physmem.page_size

let check_aligned addr =
  if addr land (Physmem.page_size - 1) <> 0 then
    Errno.fail EINVAL "address 0x%x is not page-aligned" addr

let vpn_range ~addr ~len =
  check_aligned addr;
  if len <= 0 then Errno.fail EINVAL "length must be positive";
  Page_table.vpn_of_addr addr, pages_of_len len

let mmap t cpu ?at ~len ~prot () =
  let pages = pages_of_len len in
  if pages <= 0 then Errno.fail EINVAL "mmap: empty mapping";
  let start =
    match at with
    | Some addr ->
        check_aligned addr;
        Page_table.vpn_of_addr addr
    | None ->
        let s = t.bump in
        (* Guard gap keeps distinct mmap calls in distinct VMAs. *)
        t.bump <- t.bump + pages + 1;
        s
  in
  with_write_lock t cpu @@ fun () ->
  (match Vma.overlapping t.vmas ~start ~pages with
  | [] -> ()
  | _ -> Errno.fail ENOMEM "mmap: range overlaps an existing mapping");
  let costs = Cpu.costs cpu in
  Cpu.charge ~label:"vma" cpu (costs.vma_find +. costs.vma_update);
  (* Lazy: no frames or PTEs until first touch. *)
  Vma.add ~actor:(Cpu.id cpu) t.vmas ~start ~pages { prot; pkey = Pkey.default };
  Page_table.addr_of_vpn start

let free_present t cpu ~start ~pages =
  let costs = Cpu.costs cpu in
  let freed = ref 0 in
  for vpn = start to start + pages - 1 do
    let pte = Page_table.get t.table ~vpn in
    if Pte.is_present pte then begin
      Physmem.free_frame t.mem (Pte.frame pte);
      Page_table.set t.table ~vpn Pte.absent;
      Cpu.charge ~label:"pte_update" cpu costs.pte_update;
      incr freed
    end
  done;
  !freed

let munmap t cpu ~addr ~len =
  let start, pages = vpn_range ~addr ~len in
  with_write_lock t cpu @@ fun () ->
  let costs = Cpu.costs cpu in
  Cpu.charge ~label:"vma" cpu costs.vma_find;
  let removed = Vma.remove_range ~actor:(Cpu.id cpu) t.vmas ~start ~pages in
  if removed = [] then Errno.fail EINVAL "munmap: nothing mapped at 0x%x" addr;
  let freed = ref 0 in
  List.iter
    (fun (v : Vma.vma) ->
      Cpu.charge ~label:"vma" cpu costs.vma_update;
      freed := !freed + free_present t cpu ~start:v.Vma.start ~pages:v.Vma.pages)
    removed;
  (* Only now — frames freed, PTEs cleared — may the detached vmas hit
     the typesafe free-list and be recycled by a concurrent mmap. *)
  Vma.free_detached removed;
  if Mpk_trace.Tracer.on () then
    Cpu.emit cpu (Mpk_trace.Event.Pte_update { pages; present = !freed });
  Cpu.charge ~label:"tlb_flush" cpu (Costs.tlb_invalidate costs ~pages);
  Tlb.flush_all (Cpu.tlb cpu);
  if Mpk_trace.Tracer.on () then
    Cpu.emit cpu (Mpk_trace.Event.Tlb_flush { pages; all = true })

type protect_result = {
  vmas_touched : int;
  splits : int;
  merges : int;
  ptes_touched : int;
}

let flush_local cpu ~start ~pages =
  let costs = Cpu.costs cpu in
  Cpu.charge ~label:"tlb_flush" cpu (Costs.tlb_invalidate costs ~pages);
  if pages <= costs.tlb_flush_ceiling then begin
    for vpn = start to start + pages - 1 do
      Tlb.flush_page (Cpu.tlb cpu) ~vpn
    done;
    if Mpk_trace.Tracer.on () then
      Cpu.emit cpu (Mpk_trace.Event.Tlb_flush { pages; all = false })
  end
  else begin
    Tlb.flush_all (Cpu.tlb cpu);
    if Mpk_trace.Tracer.on () then
      Cpu.emit cpu (Mpk_trace.Event.Tlb_flush { pages; all = true })
  end

let change_range t cpu ~addr ~len ~attr_f ~pte_f =
  let start, pages = vpn_range ~addr ~len in
  with_write_lock t cpu @@ fun () ->
  if not (Vma.covered t.vmas ~start ~pages) then
    Errno.fail ENOMEM "mprotect: range 0x%x+%d not fully mapped" addr len;
  let costs = Cpu.costs cpu in
  Cpu.charge ~label:"vma" cpu costs.vma_find;
  let vmas_touched, splits, merges =
    Vma.set_attrs ~actor:(Cpu.id cpu) t.vmas ~start ~pages attr_f
  in
  Cpu.charge ~label:"vma_split_merge" cpu
    ((float_of_int (splits + merges) *. costs.vma_split_merge)
    +. (float_of_int vmas_touched *. costs.vma_update));
  (* Rewrite present PTEs; absent slots cost only the scan and will
     materialize later from the updated VMA attributes. *)
  let ptes_touched = Page_table.update_range t.table ~vpn:start ~pages pte_f in
  Cpu.charge ~label:"pte_update" cpu
    ((float_of_int pages *. costs.pte_scan)
    +. (float_of_int ptes_touched *. costs.pte_update));
  if Mpk_trace.Tracer.on () then
    Cpu.emit cpu (Mpk_trace.Event.Pte_update { pages; present = ptes_touched });
  flush_local cpu ~start ~pages;
  { vmas_touched; splits; merges; ptes_touched }

let change_protection t cpu ~addr ~len ~prot =
  change_range t cpu ~addr ~len
    ~attr_f:(fun a -> { a with Vma.prot })
    ~pte_f:(fun pte -> Pte.with_perm pte prot)

let change_protection_pkey t cpu ~addr ~len ~prot ~pkey =
  change_range t cpu ~addr ~len
    ~attr_f:(fun _ -> { Vma.prot; pkey })
    ~pte_f:(fun pte -> Pte.with_pkey (Pte.with_perm pte prot) pkey)

let assign_pkey t cpu ~addr ~len ~pkey =
  change_range t cpu ~addr ~len
    ~attr_f:(fun a -> { a with Vma.pkey })
    ~pte_f:(fun pte -> Pte.with_pkey pte pkey)

let mapped_pages t = Page_table.mapped_pages t.table

let show_maps t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (v : Vma.vma) ->
      let resident = ref 0 in
      for vpn = v.Vma.start to v.Vma.start + v.Vma.pages - 1 do
        if Pte.is_present (Page_table.get t.table ~vpn) then incr resident
      done;
      Buffer.add_string buf
        (Printf.sprintf "%08x-%08x %s pkey=%-2d %d/%d pages resident\n"
           (Page_table.addr_of_vpn v.Vma.start)
           (Page_table.addr_of_vpn (v.Vma.start + v.Vma.pages))
           (Perm.to_string v.Vma.attrs.Vma.prot)
           (Pkey.to_int v.Vma.attrs.Vma.pkey)
           !resident v.Vma.pages))
    (Vma.to_list t.vmas);
  Buffer.contents buf

let frames_of_range t cpu ~addr ~len =
  let start, pages = vpn_range ~addr ~len in
  Array.init pages (fun i ->
      let vpn = start + i in
      let pte = Page_table.get t.table ~vpn in
      let pte =
        if Pte.is_present pte then pte
        else begin
          (match
             fault_handler t (Some cpu)
               { Mmu.addr = Page_table.addr_of_vpn vpn; access = Mmu.Read; cause = Mmu.Not_present }
           with
          | true -> ()
          | false ->
              Errno.fail ENOMEM "frames_of_range: 0x%x not mapped" (Page_table.addr_of_vpn vpn)
          | exception Mmu.Fault { Mmu.cause = Mmu.No_memory; _ } ->
              Errno.fail ENOMEM "frames_of_range: out of physical frames");
          Page_table.get t.table ~vpn
        end
      in
      Pte.frame pte)

let mmap_frames t cpu ?at ~frames ~prot () =
  let pages = Array.length frames in
  if pages = 0 then Errno.fail EINVAL "mmap_frames: empty mapping";
  let start =
    match at with
    | Some addr ->
        check_aligned addr;
        Page_table.vpn_of_addr addr
    | None ->
        let s = t.bump in
        t.bump <- t.bump + pages + 1;
        s
  in
  with_write_lock t cpu @@ fun () ->
  (match Vma.overlapping t.vmas ~start ~pages with
  | [] -> ()
  | _ -> Errno.fail ENOMEM "mmap_frames: range overlaps an existing mapping");
  let costs = Cpu.costs cpu in
  Cpu.charge ~label:"vma" cpu (costs.vma_find +. costs.vma_update);
  Vma.add ~actor:(Cpu.id cpu) t.vmas ~start ~pages { prot; pkey = Pkey.default };
  (* shared mappings are installed eagerly: the frames already exist *)
  Array.iteri
    (fun i frame ->
      Physmem.ref_frame t.mem frame;
      Page_table.set t.table ~vpn:(start + i) (Pte.make ~frame ~perm:prot ~pkey:Pkey.default);
      Cpu.charge ~label:"pte_update" cpu costs.pte_update)
    frames;
  Page_table.addr_of_vpn start

(* Pre-fault a range, as a store touching its memory would. *)
let populate t cpu ~addr ~len =
  let start, pages = vpn_range ~addr ~len in
  for vpn = start to start + pages - 1 do
    let pte = Page_table.get t.table ~vpn in
    if not (Pte.is_present pte) then
      match
        fault_handler t (Some cpu)
          { Mmu.addr = Page_table.addr_of_vpn vpn; access = Mmu.Read; cause = Mmu.Not_present }
      with
      | true -> ()
      | false -> Errno.fail ENOMEM "populate: 0x%x not mapped" (Page_table.addr_of_vpn vpn)
      | exception Mmu.Fault { Mmu.cause = Mmu.No_memory; _ } ->
          Errno.fail ENOMEM "populate: out of physical frames"
  done
