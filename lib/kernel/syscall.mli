(** The user-facing syscall layer. Every call charges a kernel entry/exit
    domain switch to the calling task's core, then performs the kernel
    work. Mirrors Linux 4.14 + the paper's [do_pkey_sync] extension.

    All calls are made *by* a task: permission updates touch that task's
    PKRU, and multi-core costs (TLB shootdowns, reschedule kicks) are
    charged relative to it. *)

open Mpk_hw

(** [mmap proc task ?at ~len ~prot ()] — anonymous private mapping. *)
val mmap : Proc.t -> Task.t -> ?at:int -> len:int -> prot:Perm.t -> unit -> int

val munmap : Proc.t -> Task.t -> addr:int -> len:int -> unit

(** [mprotect proc task ~addr ~len ~prot] — with the Linux 4.9+ twist: a
    [PROT_EXEC]-only request is implemented with MPK (allocate the
    process's execute-only key, tag the pages, deny access in the
    *caller's* PKRU only — the unsynchronized semantic gap of §3.3). *)
val mprotect : Proc.t -> Task.t -> addr:int -> len:int -> prot:Perm.t -> unit

(** [pkey_alloc proc task ~init_rights] — lowest free key; sets the
    caller's PKRU rights for it. Raises [Errno.Error ENOSPC] when all 15
    keys are taken. *)
val pkey_alloc : Proc.t -> Task.t -> init_rights:Pkru.rights -> Pkey.t

(** [pkey_free proc task key] — clears the bitmap bit only. PTEs tagged
    with [key] are deliberately left alone (the use-after-free hazard). *)
val pkey_free : Proc.t -> Task.t -> Pkey.t -> unit

(** [pkey_mprotect proc task ~addr ~len ~prot ~pkey] — change protection
    and tag the range with [pkey]. Key 0 and unallocated keys are
    rejected. *)
val pkey_mprotect : Proc.t -> Task.t -> addr:int -> len:int -> prot:Perm.t -> pkey:Pkey.t -> unit

(** [pkey_sync proc task ~pkey ~rights] — the paper's [do_pkey_sync]
    kernel extension (Fig 7): registers a task_work callback on every
    other thread that updates its PKRU rights for [pkey], kicks running
    threads with reschedule IPIs, and returns. Descheduled threads update
    lazily at their next schedule-in; by the time they can touch memory
    the new rights are in force. The caller's own PKRU must be updated in
    userspace (WRPKRU) by the caller.

    With IPI batching on (the default), the lazy path sends one IPI per
    distinct core holding a running target instead of one per target per
    update. Each handshake is charged exactly once: lazily the kick pays
    [ipi_send] (sender) + [ipi_receive] (target core); off-CPU targets
    cost nothing until their next schedule-in.

    [eager:true] models the strawman the paper rejects: a synchronous
    handshake where the caller spin-waits for each running thread to
    acknowledge before returning (used by the lazy-vs-eager ablation).
    Per on-CPU target the sender pays [ipi_send] plus an
    [ipi_receive]-latency spin and the target core pays [ipi_receive];
    per off-CPU target the sender pays the wakeup IPI + spin and the
    target pays its own context switch inside [schedule_in]. *)
val pkey_sync : Proc.t -> Task.t -> ?eager:bool -> pkey:Pkey.t -> Pkru.rights -> unit

(** [pkey_sync_many proc task ~updates] — batched [do_pkey_sync]: queue
    every (pkey, rights) update in [updates] on every other thread, then
    kick each target core once (with batching on). One kernel entry, one
    IPI per core, regardless of [List.length updates]. *)
val pkey_sync_many : Proc.t -> Task.t -> updates:(Pkey.t * Pkru.rights) list -> unit

(** IPI batching toggle for the lazy sync paths ([pkey_sync],
    [pkey_sync_many], [pkey_unmap_group]). On by default; turning it off
    restores the per-update broadcast (one kick per target per update,
    plus a separate shootdown IPI on eviction) as a reference point for
    scaling comparisons. *)
val ipi_batching : unit -> bool

val set_ipi_batching : bool -> unit

(** [pkey_unmap_group proc task ~addr ~len ~prot ~old_pkey] — libmpk's
    kernel-side eviction primitive: retag the range with the default key,
    set its page protection to [prot] (PROT_NONE for domain groups, the
    group's logical protection for mprotect-style groups), reset every
    thread's PKRU rights for [old_pkey] to no-access (so the recycled key
    carries no stale rights — the fix for protection-key-use-after-free),
    and shoot down stale TLB entries. One kernel entry. *)
val pkey_unmap_group :
  Proc.t -> Task.t -> addr:int -> len:int -> prot:Perm.t -> old_pkey:Pkey.t -> unit

(** Number of simulated syscalls performed so far (all kinds). *)
val count : unit -> int

val reset_count : unit -> unit
