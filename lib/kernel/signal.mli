(** POSIX-shaped signal delivery for memory faults.

    The real kernel turns an unresolved page fault into a [SIGSEGV] (or
    [SIGBUS]) with a [siginfo_t] describing the faulting address and
    cause; MPK violations are distinguished by [si_code = SEGV_PKUERR]
    and carry the offending protection key (Linux since 4.6). This
    module is the simulated analogue: [Proc] installs an [Mmu] fault
    sink that converts hardware faults to a {!siginfo} and delivers it
    to the current task via [Task.deliver_signal].

    Handler semantics follow POSIX as closely as a simulation can:
    a task with no handler installed is killed ({!Killed} escapes to
    the top — the simulation's analogue of the default disposition
    terminating the process). A handler may escape by raising its own
    exception (the [siglongjmp] idiom real MPK programs use to survive
    pkey faults); if it returns normally the access would simply
    refault, so the task is killed anyway. *)

(** [si_code] values for [SIGSEGV]/[SIGBUS], mirroring Linux. *)
type code =
  | Segv_maperr  (** address not mapped to object *)
  | Segv_accerr  (** invalid permissions for mapped object *)
  | Segv_pkuerr  (** access denied by protection keys (PKRU) *)
  | Bus_adrerr  (** nonexistent physical address — frame exhaustion *)

type siginfo = {
  signo : int;  (** 11 = SIGSEGV; 7 = SIGBUS *)
  code : code;
  addr : int;  (** faulting address ([si_addr]) *)
  access : Mpk_hw.Mmu.access;  (** what the instruction attempted *)
  pkey : int;  (** offending pkey for [Segv_pkuerr] ([si_pkey]); 0 otherwise *)
}

(** Default disposition: the task was killed by the signal. *)
exception Killed of siginfo

val sigsegv : int
val sigbus : int

val code_to_string : code -> string
val signo_to_string : int -> string
val to_string : siginfo -> string

(** Classify a hardware fault the way the kernel's fault handler does.
    [pkey] is the key tagged on the faulting page (only meaningful for
    [Pkey_denied]; pass 0 when unknown). *)
val of_fault : Mpk_hw.Mmu.fault -> pkey:int -> siginfo

(** A per-task handler, as installed with [Task.set_signal_handler]. *)
type handler = siginfo -> unit

(** {2 Default-kill crash record}

    A real kernel snapshots crash context (registers, maps) the moment
    the default disposition fires, because the dying thread's state is
    gone afterwards. The simulated analogue: just before {!Killed} is
    raised, [Task.deliver_signal] records the siginfo together with the
    tail of the {!Mpk_trace.Tracer} ring — the stress harness's flight
    recorder — so any default-kill carries its last-N-events black box.
    The core-dump capturer ([Mpk_coredump.Capture]) reuses this record
    rather than re-reading a ring the unwinding may have disturbed. *)

(** Events the black box retains (the flight-recorder depth the stress
    harness also uses for its failure reports). *)
val blackbox_depth : int

type crash = {
  task : int;
  si : siginfo;
  blackbox : string list;  (** rendered trace events, oldest first *)
}

(** Called by [Task.deliver_signal] on the default-kill path only — a
    handler that escapes by raising is a survival, not a crash. *)
val record_kill : task:int -> siginfo -> unit

(** The most recent default-kill, if any since [clear_last_crash]. *)
val last_crash : unit -> crash option

val clear_last_crash : unit -> unit
