(** POSIX-shaped signal delivery for memory faults.

    The real kernel turns an unresolved page fault into a [SIGSEGV] (or
    [SIGBUS]) with a [siginfo_t] describing the faulting address and
    cause; MPK violations are distinguished by [si_code = SEGV_PKUERR]
    and carry the offending protection key (Linux since 4.6). This
    module is the simulated analogue: [Proc] installs an [Mmu] fault
    sink that converts hardware faults to a {!siginfo} and delivers it
    to the current task via [Task.deliver_signal].

    Handler semantics follow POSIX as closely as a simulation can:
    a task with no handler installed is killed ({!Killed} escapes to
    the top — the simulation's analogue of the default disposition
    terminating the process). A handler may escape by raising its own
    exception (the [siglongjmp] idiom real MPK programs use to survive
    pkey faults); if it returns normally the access would simply
    refault, so the task is killed anyway. *)

(** [si_code] values for [SIGSEGV]/[SIGBUS], mirroring Linux. *)
type code =
  | Segv_maperr  (** address not mapped to object *)
  | Segv_accerr  (** invalid permissions for mapped object *)
  | Segv_pkuerr  (** access denied by protection keys (PKRU) *)
  | Bus_adrerr  (** nonexistent physical address — frame exhaustion *)

type siginfo = {
  signo : int;  (** 11 = SIGSEGV; 7 = SIGBUS *)
  code : code;
  addr : int;  (** faulting address ([si_addr]) *)
  access : Mpk_hw.Mmu.access;  (** what the instruction attempted *)
  pkey : int;  (** offending pkey for [Segv_pkuerr] ([si_pkey]); 0 otherwise *)
}

(** Default disposition: the task was killed by the signal. *)
exception Killed of siginfo

val sigsegv : int
val sigbus : int

val code_to_string : code -> string
val signo_to_string : int -> string
val to_string : siginfo -> string

(** Classify a hardware fault the way the kernel's fault handler does.
    [pkey] is the key tagged on the faulting page (only meaningful for
    [Pkey_denied]; pass 0 when unknown). *)
val of_fault : Mpk_hw.Mmu.fault -> pkey:int -> siginfo

(** A per-task handler, as installed with [Task.set_signal_handler]. *)
type handler = siginfo -> unit
