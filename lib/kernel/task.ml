open Mpk_hw

type state = On_cpu | Off_cpu

type t = {
  id : int;
  core : Cpu.t;
  mutable state : state;
  mutable saved_pkru : Pkru.t;
  work : (t -> unit) Queue.t;
  mutable tlb_flush_pending : bool;
  mutable sig_handler : Signal.handler option;
  mutable sig_delivered : int;
}

let create ~id ~core () =
  {
    id;
    core;
    state = Off_cpu;
    saved_pkru = Pkru.init;
    work = Queue.create ();
    tlb_flush_pending = false;
    sig_handler = None;
    sig_delivered = 0;
  }

let id t = t.id
let core t = t.core
let state t = t.state
let set_state t s = t.state <- s

let pkru t =
  match t.state with
  | On_cpu -> Cpu.pkru t.core
  | Off_cpu -> t.saved_pkru

let set_pkru t v =
  match t.state with
  | On_cpu -> Cpu.set_pkru_direct t.core v
  | Off_cpu -> t.saved_pkru <- v

let saved_pkru t = t.saved_pkru
let set_saved_pkru t v = t.saved_pkru <- v

let mark_tlb_flush t = t.tlb_flush_pending <- true
let clear_tlb_flush t = t.tlb_flush_pending <- false
let tlb_flush_pending t = t.tlb_flush_pending

let set_signal_handler t h = t.sig_handler <- Some h
let clear_signal_handler t = t.sig_handler <- None
let signals_delivered t = t.sig_delivered

let with_signal_handler t h f =
  let prev = t.sig_handler in
  t.sig_handler <- Some h;
  Fun.protect ~finally:(fun () -> t.sig_handler <- prev) f

let deliver_signal t (si : Signal.siginfo) =
  t.sig_delivered <- t.sig_delivered + 1;
  if Mpk_trace.Tracer.on () then
    Cpu.emit t.core
      (Mpk_trace.Event.Signal_delivered
         { task = t.id; signo = si.signo; code = Signal.code_to_string si.code });
  (match t.sig_handler with
  | Some handler -> handler si  (* escape by raising = siglongjmp idiom *)
  | None -> ());
  (* No handler, or the handler returned: the access would refault
     forever, so the default disposition kills the task. Record the
     crash (siginfo + flight-recorder black box) first — the core-dump
     capturer reads it after the unwind. *)
  Signal.record_kill ~task:t.id si;
  raise (Signal.Killed si)

let work_add t f = Queue.add f t.work

let work_pending t = Queue.length t.work

let work_run t =
  let costs = Cpu.costs t.core in
  while not (Queue.is_empty t.work) do
    let f = Queue.pop t.work in
    Cpu.charge ~label:"task_work_run" t.core costs.task_work_run;
    f t
  done
