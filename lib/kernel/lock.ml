(* Kernel locking primitive: a reader/writer lock with per-actor hold
   counts, used for the mm-wide lock and the per-VMA locks (where the
   shared side doubles as Linux's vm_refcnt).

   The simulator is single-threaded, so the lock does not need atomics;
   what it needs is *observability* and *schedulability*:
   - every transition is reported through an event hook so the lockdep
     validator (lib/check/lockdep.ml) can track held-sets and ordering
     without the kernel depending on the check layer;
   - a contended acquire calls the wait hook instead of spinning, so the
     torture scheduler can park the acquiring fiber until the holder
     runs again. Outside torture nothing can release a lock behind the
     caller's back, so the default wait hook raises [Would_block]:
     contention in sequential mode is by definition a self-deadlock. *)

type mode = Shared | Exclusive

type t = {
  id : int;
  cls : string;
  mutable writer : int option;  (* actor holding exclusively *)
  mutable write_depth : int;  (* reentrant exclusive holds *)
  mutable readers : (int * int) list;  (* actor -> shared hold count *)
}

type event =
  | Attempt of { lock : t; mode : mode; actor : int }
  | Acquired of { lock : t; mode : mode; actor : int }
  | Contended of { lock : t; mode : mode; actor : int }
  | Released of { lock : t; mode : mode; actor : int }

exception Would_block of string

let next_id = ref 0

(* Class registry: every class ever constructed. Tools that model the
   lock hierarchy (the static concurrency analyzer's protocol programs)
   validate their class names against this, so a model can't silently
   drift from the kernel's real classes. *)
let classes : (string, unit) Hashtbl.t = Hashtbl.create 8

let known_classes () =
  Hashtbl.fold (fun c () acc -> c :: acc) classes [] |> List.sort compare

let make ~cls =
  incr next_id;
  Hashtbl.replace classes cls ();
  { id = !next_id; cls; writer = None; write_depth = 0; readers = [] }

let id t = t.id
let cls t = t.cls

(* --- observation hooks --- *)

let hook : (event -> unit) ref = ref ignore
let set_hook f = hook := f
let clear_hook () = hook := ignore

let default_wait t ~actor =
  raise
    (Would_block
       (Printf.sprintf "%s#%d: actor %d blocked with no scheduler installed" t.cls
          t.id actor))

let wait_hook : (t -> actor:int -> unit) ref = ref default_wait
let set_wait_hook f = wait_hook := f
let clear_wait_hook () = wait_hook := default_wait

(* Releases of locks not held: counted rather than fatal (real lockdep
   WARNs); the validator turns the event into a finding. *)
let unbalanced_releases = ref 0
let unbalanced () = !unbalanced_releases

let mode_excl = function Shared -> false | Exclusive -> true

let emit_ev ctor t mode ~actor =
  if Mpk_trace.Tracer.on () then
    Mpk_trace.Tracer.emit_floating (ctor ~cls:t.cls ~excl:(mode_excl mode) ~actor)

let emit_acquire =
  emit_ev (fun ~cls ~excl ~actor -> Mpk_trace.Event.Lock_acquire { cls; excl; actor })

let emit_release =
  emit_ev (fun ~cls ~excl ~actor -> Mpk_trace.Event.Lock_release { cls; excl; actor })

let emit_contended =
  emit_ev (fun ~cls ~excl ~actor ->
      Mpk_trace.Event.Lock_contended { cls; excl; actor })

(* --- state queries --- *)

let reader_count t = List.fold_left (fun acc (_, c) -> acc + c) 0 t.readers

let reader_count_of t ~actor =
  match List.assoc_opt actor t.readers with Some c -> c | None -> 0

let write_locked t = t.writer <> None
let held_exclusive t ~actor = t.writer = Some actor
let held_shared t ~actor = reader_count_of t ~actor > 0

(* --- transitions --- *)

let bump_reader t actor delta =
  let current = reader_count_of t ~actor in
  let next = current + delta in
  let rest = List.remove_assoc actor t.readers in
  t.readers <- (if next > 0 then (actor, next) :: rest else rest)

let try_transition t mode ~actor =
  match mode with
  | Shared -> (
      match t.writer with
      | Some w when w <> actor -> false
      | Some _ | None ->
          bump_reader t actor 1;
          true)
  | Exclusive -> (
      match t.writer with
      | Some w when w = actor ->
          t.write_depth <- t.write_depth + 1;
          true
      | Some _ -> false
      | None ->
          (* Readers (including our own: an upgrade would wait on itself)
             must drain first. *)
          if reader_count t > 0 then false
          else begin
            t.writer <- Some actor;
            t.write_depth <- 1;
            true
          end)

let try_acquire t mode ~actor =
  !hook (Attempt { lock = t; mode; actor });
  if try_transition t mode ~actor then begin
    !hook (Acquired { lock = t; mode; actor });
    emit_acquire t mode ~actor;
    true
  end
  else false

let acquire t mode ~actor =
  !hook (Attempt { lock = t; mode; actor });
  if not (try_transition t mode ~actor) then begin
    !hook (Contended { lock = t; mode; actor });
    emit_contended t mode ~actor;
    while not (try_transition t mode ~actor) do
      !wait_hook t ~actor
    done
  end;
  !hook (Acquired { lock = t; mode; actor });
  emit_acquire t mode ~actor

let release t mode ~actor =
  !hook (Released { lock = t; mode; actor });
  emit_release t mode ~actor;
  match mode with
  | Shared ->
      if reader_count_of t ~actor > 0 then bump_reader t actor (-1)
      else incr unbalanced_releases
  | Exclusive ->
      if t.writer = Some actor then begin
        t.write_depth <- t.write_depth - 1;
        if t.write_depth = 0 then t.writer <- None
      end
      else incr unbalanced_releases
