(** Task scheduling: context switches (saving/restoring PKRU), the
    return-to-userspace path that drains [task_work], and reschedule IPIs.

    The simulator is sequential; "concurrency" means multiple tasks holding
    per-task register state on distinct cores, with IPIs modelled as
    synchronous cost charges plus a forced trip through the kernel-exit
    path on the target core. *)

open Mpk_hw

type t

val create : Machine.t -> t

val machine : t -> Machine.t

(** [spawn t ~core_id] creates a task pinned to a core and schedules it in
    (restoring its PKRU into the core register). *)
val spawn : t -> core_id:int -> Task.t

val tasks : t -> Task.t list

(** The task currently scheduled on the given core, if any. *)
val task_on : t -> core_id:int -> Task.t option

(** Forced preemption (used by fault injection): schedule the on-CPU task
    on [core_id] out and immediately back in — PKRU is saved and restored
    and pending task_work drains, exactly as a real involuntary context
    switch would. No-op if the core is idle or a preemption is already in
    progress (context switches charge cycles, which are themselves
    preemption points). *)
val preempt : t -> core_id:int -> unit

(** [schedule_out t task] saves PKRU into the task struct and marks the
    task off-CPU; charges a context switch. *)
val schedule_out : t -> Task.t -> unit

(** [schedule_in t task] loads the saved PKRU into the core register, runs
    pending task_work (return-to-userspace), marks the task on-CPU. *)
val schedule_in : t -> Task.t -> unit

(** [kick t ~from target] sends a reschedule IPI to an on-CPU target: the
    sender pays [ipi_send]; the target core pays [ipi_receive] and
    immediately passes through return-to-userspace, draining its
    task_work. Off-CPU targets see no IPI at all — nothing is charged and
    no [Ipi] event is emitted; their work runs at the next
    [schedule_in]. *)
val kick : t -> from:Task.t -> Task.t -> unit

type batch = { cores_kicked : int; tasks_reached : int }

(** [kick_batch t ~from targets] coalesces reschedule IPIs: one IPI per
    distinct core holding at least one on-CPU target (sender pays
    [ipi_send] per core, each target core pays [ipi_receive] once), and
    every on-CPU target on that core drains its task_work under that
    single interrupt. Off-CPU targets are skipped as in [kick].

    [flush_tlb] additionally flushes each kicked core's TLB (emitting
    [Tlb_flush]) and marks off-CPU targets for a deferred flush at their
    next [schedule_in]. [sync] models the initiator spin-waiting for the
    acknowledgements: the sends overlap, so it costs a single
    [ipi_receive]-latency wait regardless of fan-out. *)
val kick_batch :
  t -> from:Task.t -> ?kind:string -> ?flush_tlb:bool -> ?sync:bool -> Task.t list -> batch

(** [shootdown t ~from target] sends a synchronous TLB-shootdown IPI: the
    sender pays send + wait, the target core pays [ipi_receive] and
    flushes its TLB. Off-CPU targets get no IPI; they are marked so their
    next [schedule_in] charges [tlb_flush_all] and flushes (and an idle
    core's stale entries are dropped immediately, for free, so the
    visible TLB state always matches the eager path). *)
val shootdown : t -> from:Task.t -> Task.t -> unit

(** Total IPIs sent since the scheduler was created (reschedule kicks,
    batched sync kicks, and TLB shootdowns). *)
val ipis_sent : t -> int

(** Per-core IPI counters as [(core_id, sent, received)], sorted by core.
    Cores that never saw an IPI are absent. *)
val ipis_per_core : t -> (int * int * int) list
