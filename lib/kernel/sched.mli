(** Task scheduling: context switches (saving/restoring PKRU), the
    return-to-userspace path that drains [task_work], and reschedule IPIs.

    The simulator is sequential; "concurrency" means multiple tasks holding
    per-task register state on distinct cores, with IPIs modelled as
    synchronous cost charges plus a forced trip through the kernel-exit
    path on the target core. *)

open Mpk_hw

type t

val create : Machine.t -> t

val machine : t -> Machine.t

(** [spawn t ~core_id] creates a task pinned to a core and schedules it in
    (restoring its PKRU into the core register). *)
val spawn : t -> core_id:int -> Task.t

val tasks : t -> Task.t list

(** The task currently scheduled on the given core, if any. *)
val task_on : t -> core_id:int -> Task.t option

(** Forced preemption (used by fault injection): schedule the on-CPU task
    on [core_id] out and immediately back in — PKRU is saved and restored
    and pending task_work drains, exactly as a real involuntary context
    switch would. No-op if the core is idle or a preemption is already in
    progress (context switches charge cycles, which are themselves
    preemption points). *)
val preempt : t -> core_id:int -> unit

(** [schedule_out t task] saves PKRU into the task struct and marks the
    task off-CPU; charges a context switch. *)
val schedule_out : t -> Task.t -> unit

(** [schedule_in t task] loads the saved PKRU into the core register, runs
    pending task_work (return-to-userspace), marks the task on-CPU. *)
val schedule_in : t -> Task.t -> unit

(** [kick t ~from target] sends a reschedule IPI: the sender pays
    [ipi_send]; the target core pays [ipi_receive] and immediately passes
    through return-to-userspace, draining its task_work. Off-CPU targets
    ignore the kick (their work runs at the next [schedule_in]). *)
val kick : t -> from:Task.t -> Task.t -> unit

(** [shootdown t ~from target] sends a synchronous TLB-shootdown IPI: the
    sender pays send + wait, the target core pays [ipi_receive] and
    flushes its TLB. Off-CPU targets are skipped (their TLB state is dead).
*)
val shootdown : t -> from:Task.t -> Task.t -> unit
