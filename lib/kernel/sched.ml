open Mpk_hw

type t = { machine : Machine.t; mutable tasks : Task.t list; mutable next_id : int }

let create machine = { machine; tasks = []; next_id = 0 }

let machine t = t.machine

let return_to_user task = Task.work_run task

let schedule_in _t task =
  match Task.state task with
  | Task.On_cpu -> ()
  | Task.Off_cpu ->
      let core = Task.core task in
      Cpu.charge ~label:"context_switch" core (Cpu.costs core).context_switch;
      Cpu.set_pkru_direct core (Task.saved_pkru task);
      Task.set_state task On_cpu;
      (* Keep the tracer's core→task registry current even while tracing
         is off, so enabling mid-run stamps events correctly. *)
      Mpk_trace.Tracer.set_task_on_core ~core:(Cpu.id core) ~task:(Task.id task);
      if Mpk_trace.Tracer.on () then
        Cpu.emit core (Mpk_trace.Event.Context_switch { task = Task.id task; onto = true });
      return_to_user task

let schedule_out _t task =
  match Task.state task with
  | Task.Off_cpu -> ()
  | Task.On_cpu ->
      let core = Task.core task in
      Cpu.charge ~label:"context_switch" core (Cpu.costs core).context_switch;
      Task.set_saved_pkru task (Cpu.pkru core);
      Task.set_state task Off_cpu;
      if Mpk_trace.Tracer.on () then
        Cpu.emit core (Mpk_trace.Event.Context_switch { task = Task.id task; onto = false });
      Mpk_trace.Tracer.set_task_on_core ~core:(Cpu.id core) ~task:(-1)

let spawn t ~core_id =
  let core = Machine.core t.machine core_id in
  let task = Task.create ~id:t.next_id ~core () in
  t.next_id <- t.next_id + 1;
  t.tasks <- t.tasks @ [ task ];
  schedule_in t task;
  task

let tasks t = t.tasks

let task_on t ~core_id =
  List.find_opt
    (fun task -> Task.state task = Task.On_cpu && Cpu.id (Task.core task) = core_id)
    t.tasks

(* Forced preemption (fault injection): bounce the on-CPU task through a
   schedule_out/schedule_in pair. Context switches themselves charge
   cycles — and charged events are where forced preemption fires — so a
   reentrancy guard keeps the bounce from recursing. *)
let preempting = ref false

let preempt t ~core_id =
  if not !preempting then
    match task_on t ~core_id with
    | None -> ()
    | Some task ->
        preempting := true;
        Fun.protect
          ~finally:(fun () -> preempting := false)
          (fun () ->
            schedule_out t task;
            schedule_in t task)

let kick _t ~from target =
  let sender = Task.core from in
  Cpu.charge ~label:"ipi_send" sender (Cpu.costs sender).ipi_send;
  if Mpk_trace.Tracer.on () then
    Cpu.emit sender
      (Mpk_trace.Event.Ipi { kind = "resched_kick"; target_core = Cpu.id (Task.core target) });
  match Task.state target with
  | Task.Off_cpu -> ()  (* lazy: work runs when it is next scheduled *)
  | Task.On_cpu ->
      let core = Task.core target in
      Cpu.charge ~label:"ipi_receive" core (Cpu.costs core).ipi_receive;
      return_to_user target

let shootdown _t ~from target =
  match Task.state target with
  | Task.Off_cpu -> ()
  | Task.On_cpu ->
      let sender = Task.core from in
      let costs = Cpu.costs sender in
      (* The initiator spin-waits for the acknowledgement. *)
      Cpu.charge ~label:"ipi_send" sender (costs.ipi_send +. costs.ipi_receive);
      let core = Task.core target in
      if Mpk_trace.Tracer.on () then
        Cpu.emit sender
          (Mpk_trace.Event.Ipi { kind = "tlb_shootdown"; target_core = Cpu.id core });
      Cpu.charge ~label:"ipi_receive" core (Cpu.costs core).ipi_receive;
      Tlb.flush_all (Cpu.tlb core);
      if Mpk_trace.Tracer.on () then
        Cpu.emit core (Mpk_trace.Event.Tlb_flush { pages = 0; all = true })
